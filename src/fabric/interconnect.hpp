// rsf::fabric — the inter-rack spine.
//
// An Interconnect models the links *between* racks of a fleet: spine
// cables with a configurable rate and propagation latency, each
// connecting a designated gateway node in one rack to a gateway node
// in another. Since PR 3 the spine is a first-class packet-switched
// layer: the fleet transport streams individual packets through
// send_packet() (per-packet FIFO busy-until serialization, propagation
// latency, and Bernoulli loss sampled from the link's loss_prob), while
// the legacy bulk transfer() remains as the store-and-forward
// comparison baseline.
//
// Rack-level routing is cost-aware shortest path over the rack graph
// (Dijkstra; unit costs degenerate to breadth-first order) skipping
// administratively-down links, with deterministic tie-breaking:
// equal-cost candidates prefer fewer hops, then the expansion from
// the lowest-id rack, then the lowest-id edge out of it — every run
// picks the same route. Routes are memoized per
// (src_rack, dst_rack) against a monotonically increasing spine
// version; add_link, set_link_up and set_link_cost (the controller's
// repricing hook) bump the version, so cached routes are invalidated
// exactly when the graph or its prices change.
//
// Metrics land in the owning registry under "spine.*", including
// per-link packet counters ("spine.link3.packets") the fleet
// controller tests assert traffic shifts against.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "phy/types.hpp"
#include "phy/units.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"

namespace rsf::fabric {

/// A (rack, node) address in a multi-rack fleet.
struct RackNode {
  std::uint32_t rack = 0;
  phy::NodeId node = phy::kInvalidNode;

  friend bool operator==(const RackNode&, const RackNode&) = default;
};

using SpineLinkId = std::uint32_t;

struct SpineLinkParams {
  /// The two gateway endpoints. a.rack != b.rack.
  RackNode a;
  RackNode b;
  phy::DataRate rate = phy::DataRate::gbps(400);
  /// One-way propagation between the racks (spine cables are long).
  rsf::sim::SimTime latency = rsf::sim::SimTime::microseconds(1);
  /// Per-packet loss probability on this hop (uncorrectable errors at
  /// fleet scale). Sampled by send_packet(); 0 keeps runs loss-free.
  double loss_prob = 0.0;
  /// Initial routing cost (> 0). The FleetController reprices live.
  double cost = 1.0;
};

class Interconnect {
 public:
  /// cb(arrival): the transfer's last bit reaches the far gateway.
  using DeliveryCallback = std::function<void(rsf::sim::SimTime arrival)>;
  /// cb(arrival, delivered): the packet's last bit reaches the far
  /// gateway (delivered == false when the hop lost it — the sender
  /// owns retransmission).
  using PacketCallback = std::function<void(rsf::sim::SimTime arrival, bool delivered)>;

  /// Metrics go to `registry` under "spine.*" (never null; the
  /// FleetRuntime hands the fleet registry in). `seed` feeds the loss
  /// sampler; equal seeds reproduce loss patterns bit-for-bit.
  Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry,
               std::uint64_t seed = 1);

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  SpineLinkId add_link(SpineLinkParams params);
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const SpineLinkParams& link(SpineLinkId id) const;

  /// Administrative state: a down spine link carries nothing and is
  /// invisible to route(). Opens the spine-failure scenario family.
  void set_link_up(SpineLinkId id, bool up);
  [[nodiscard]] bool link_up(SpineLinkId id) const;

  /// Live routing cost of `id`. Starts at params.cost; repriced by the
  /// FleetController. Setting a changed cost bumps the spine version.
  void set_link_cost(SpineLinkId id, double cost);
  [[nodiscard]] double link_cost(SpineLinkId id) const;

  /// Monotonic version of the rack graph + its prices. Bumped by
  /// add_link, by set_link_up, and by set_link_cost when the cost
  /// actually changes; the route cache keys on it.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// The far endpoint of `id` as seen from `from_rack`.
  [[nodiscard]] const RackNode& far_end(SpineLinkId id, std::uint32_t from_rack) const;

  /// Cheapest up-link path src_rack -> dst_rack over the rack graph
  /// (cost-weighted; ties prefer fewer hops, then the lowest-id rack's
  /// expansion, then its lowest-id edge, so routes are deterministic).
  /// nullopt when unreachable; empty
  /// when src == dst. Memoized per (src, dst) against version() —
  /// the per-packet hot path resolves routes through here.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> route(std::uint32_t src_rack,
                                                              std::uint32_t dst_rack) const;

  /// The uncached computation behind route(); exposed so tests can
  /// assert the cache hit path returns exactly what a fresh search
  /// would.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> compute_route(
      std::uint32_t src_rack, std::uint32_t dst_rack) const;

  /// Occupy `id` in the direction leaving `from_rack` for one packet
  /// of `size` bytes: FIFO serialization at the link rate, then
  /// propagation; loss sampled from the link's loss_prob. `cb` fires
  /// at arrival either way. Returns false (no callback) when the link
  /// is down.
  bool send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                   PacketCallback cb);

  /// Bulk store-and-forward transfer: the whole payload occupies the
  /// direction for its serialization time. Comparison baseline for
  /// the packetized path (FleetConfig::transport selects). `cb` fires
  /// at arrival. Returns false (no callback) when the link is down.
  bool transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                DeliveryCallback cb);

  /// Cumulative time direction (`id`, leaving `from_rack`) has spent
  /// serializing — the spine utilisation input the FleetController
  /// diffs between epochs.
  [[nodiscard]] rsf::sim::SimTime busy_time(SpineLinkId id, std::uint32_t from_rack) const;
  /// How far ahead of now the direction's FIFO is booked — the queue
  /// depth (in time) the FleetController prices against.
  [[nodiscard]] rsf::sim::SimTime queue_backlog(SpineLinkId id,
                                                std::uint32_t from_rack) const;
  /// Packets sent on direction (`id`, leaving `from_rack`).
  [[nodiscard]] std::uint64_t link_packets(SpineLinkId id, std::uint32_t from_rack) const;
  /// Packets lost on direction (`id`, leaving `from_rack`).
  [[nodiscard]] std::uint64_t link_drops(SpineLinkId id, std::uint32_t from_rack) const;

  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

 private:
  struct Direction {
    rsf::sim::SimTime busy_until = rsf::sim::SimTime::zero();
    rsf::sim::SimTime busy_total = rsf::sim::SimTime::zero();
    std::uint64_t packets = 0;
    std::uint64_t drops = 0;
  };
  struct SpineLink {
    SpineLinkParams params;
    bool up = true;
    double cost = 1.0;
    /// Cached registry slot for "spine.link<N>.packets" so the
    /// per-packet hot path never builds strings or walks the map.
    std::uint64_t* packets_slot = nullptr;
    Direction dir[2];  // [0]: a->b, [1]: b->a
  };

  [[nodiscard]] const SpineLink& at(SpineLinkId id) const;
  /// 0 when leaving params.a.rack, 1 when leaving params.b.rack.
  [[nodiscard]] int direction_index(const SpineLink& l, std::uint32_t from_rack) const;
  /// Book one serialization on the direction; returns the arrival time.
  rsf::sim::SimTime occupy(SpineLink& l, int d, phy::DataSize size);

  rsf::sim::Simulator* sim_;
  std::vector<SpineLink> links_;
  std::uint32_t max_rack_ = 0;
  std::uint64_t version_ = 1;
  rsf::sim::RandomStream rng_;
  // Route memoization: cleared lazily when version_ moves past the
  // stamp, so set_link_up / repricing cost one O(1) bump, not a walk.
  mutable std::uint64_t cache_version_ = 0;
  mutable std::map<std::uint64_t, std::optional<std::vector<SpineLinkId>>> route_cache_;
  telemetry::CounterSet& counters_;
  // Hot-path counter slots (stable references into counters_).
  std::uint64_t& packets_slot_;
  std::uint64_t& bytes_slot_;
  std::uint64_t& drops_slot_;
  telemetry::Histogram& transfer_latency_;
  telemetry::Histogram& queue_delay_;
};

}  // namespace rsf::fabric
