// rsf::fabric — the inter-rack spine.
//
// An Interconnect models the links *between* racks of a fleet: spine
// cables with a configurable rate and propagation latency, each
// connecting a designated gateway node in one rack to a gateway node
// in another. The spine is deliberately coarser than the intra-rack
// fabric — a transfer occupies a spine direction for its serialization
// time (busy-until FIFO arithmetic, the same model Network uses for
// switch ports) and arrives one propagation latency later. Rack-level
// routing is shortest-path over the rack graph, skipping
// administratively-down links so spine-failure scenarios reroute.
//
// Metrics land in the owning registry under "spine.*".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "phy/types.hpp"
#include "phy/units.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"

namespace rsf::fabric {

/// A (rack, node) address in a multi-rack fleet.
struct RackNode {
  std::uint32_t rack = 0;
  phy::NodeId node = phy::kInvalidNode;

  friend bool operator==(const RackNode&, const RackNode&) = default;
};

using SpineLinkId = std::uint32_t;

struct SpineLinkParams {
  /// The two gateway endpoints. a.rack != b.rack.
  RackNode a;
  RackNode b;
  phy::DataRate rate = phy::DataRate::gbps(400);
  /// One-way propagation between the racks (spine cables are long).
  rsf::sim::SimTime latency = rsf::sim::SimTime::microseconds(1);
};

class Interconnect {
 public:
  /// cb(arrival): the transfer's last bit reaches the far gateway.
  using DeliveryCallback = std::function<void(rsf::sim::SimTime arrival)>;

  /// Metrics go to `registry` under "spine.*" (never null; the
  /// FleetRuntime hands the fleet registry in).
  Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry);

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  SpineLinkId add_link(SpineLinkParams params);
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const SpineLinkParams& link(SpineLinkId id) const;

  /// Administrative state: a down spine link carries nothing and is
  /// invisible to route(). Opens the spine-failure scenario family.
  void set_link_up(SpineLinkId id, bool up);
  [[nodiscard]] bool link_up(SpineLinkId id) const;

  /// The far endpoint of `id` as seen from `from_rack`.
  [[nodiscard]] const RackNode& far_end(SpineLinkId id, std::uint32_t from_rack) const;

  /// Shortest up-link path src_rack -> dst_rack over the rack graph
  /// (BFS, fewest spine hops; ties break on lowest link id for
  /// determinism). nullopt when unreachable; empty when src == dst.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> route(std::uint32_t src_rack,
                                                              std::uint32_t dst_rack) const;

  /// Occupy `id` in the direction leaving `from_rack` for `size`
  /// bytes: FIFO serialization at the link rate, then propagation.
  /// `cb` fires at arrival. Returns false (no callback) when the link
  /// is down.
  bool transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                DeliveryCallback cb);

  /// Cumulative time direction (`id`, leaving `from_rack`) has spent
  /// serializing — the spine utilisation input for future controllers.
  [[nodiscard]] rsf::sim::SimTime busy_time(SpineLinkId id, std::uint32_t from_rack) const;

  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

 private:
  struct Direction {
    rsf::sim::SimTime busy_until = rsf::sim::SimTime::zero();
    rsf::sim::SimTime busy_total = rsf::sim::SimTime::zero();
  };
  struct SpineLink {
    SpineLinkParams params;
    bool up = true;
    Direction dir[2];  // [0]: a->b, [1]: b->a
  };

  [[nodiscard]] const SpineLink& at(SpineLinkId id) const;
  /// 0 when leaving params.a.rack, 1 when leaving params.b.rack.
  [[nodiscard]] int direction_index(const SpineLink& l, std::uint32_t from_rack) const;

  rsf::sim::Simulator* sim_;
  std::vector<SpineLink> links_;
  std::uint32_t max_rack_ = 0;
  telemetry::CounterSet& counters_;
  telemetry::Histogram& transfer_latency_;
  telemetry::Histogram& queue_delay_;
};

}  // namespace rsf::fabric
