// rsf::fabric — the inter-rack spine.
//
// An Interconnect models the links *between* racks of a fleet: spine
// cables with a configurable rate and propagation latency, each
// connecting a designated gateway node in one rack to a gateway node
// in another. Since PR 3 the spine is a first-class packet-switched
// layer: the fleet transport streams individual packets through
// send_packet() (per-packet FIFO busy-until serialization, propagation
// latency, and Bernoulli loss sampled from the link's loss_prob), while
// the legacy bulk transfer() remains as the store-and-forward
// comparison baseline.
//
// Rack-level routing is cost-aware shortest path over the rack graph
// (Dijkstra; unit costs degenerate to breadth-first order) skipping
// administratively-down links, with deterministic tie-breaking:
// equal-cost candidates prefer fewer hops, then the expansion from
// the lowest-id rack, then the lowest-id edge out of it — every run
// picks the same route. Routes are memoized per
// (src_rack, dst_rack) against a monotonically increasing spine
// version; add_link, set_link_up and set_link_cost (the controller's
// repricing hook) bump the version, so cached routes are invalidated
// exactly when the graph or its prices change.
//
// Circuit-style capacity can be carved on top of the packetized
// spine: reserve(src, dst, fraction) pins the current cheapest route
// for a (rack, rack) pair and dedicates `fraction` of every crossed
// link's capacity — in the direction of travel only — to that pair.
// Packets sent under the reservation's versioned handle serialize on
// the reservation's private per-hop FIFO at the carved rate,
// bypassing the shared FIFO's contention, while unreserved traffic
// sees the link's residual rate (rate × (1 − reserved fraction)).
// Reservations survive repricing (the route is pinned) but are torn
// down when any crossed link fails — their traffic falls back to the
// shared residual via the stale-handle check. With no reservations
// configured the shared path is arithmetically identical to the
// pre-reservation spine: the packetized default is untouched.
//
// Metrics land in the owning registry under "spine.*", including
// per-link packet counters ("spine.link3.packets") the fleet
// controller tests assert traffic shifts against.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/slot_pool.hpp"
#include "core/small_function.hpp"
#include "fabric/slot_calendar.hpp"
#include "phy/types.hpp"
#include "phy/units.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"

namespace rsf::fabric {

/// A (rack, node) address in a multi-rack fleet.
struct RackNode {
  std::uint32_t rack = 0;
  phy::NodeId node = phy::kInvalidNode;

  friend bool operator==(const RackNode&, const RackNode&) = default;
};

using SpineLinkId = std::uint32_t;

/// Versioned handle to a spine circuit reservation. Slots are
/// recycled; the generation detects a handle that outlived its
/// reservation (released, or preempted by a link failure) — stale
/// handles are safely inert everywhere they are accepted.
struct SpineReservationHandle {
  static constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;
  std::uint32_t id = kInvalidId;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return id != kInvalidId; }
  friend bool operator==(const SpineReservationHandle&,
                         const SpineReservationHandle&) = default;
};

/// Versioned handle to a spine slot schedule (the TDMA regime's
/// counterpart of SpineReservationHandle): same recycled-slot +
/// generation staleness contract — released, expired, or preempted
/// schedules leave holders with an inert handle.
struct SpineScheduleHandle {
  static constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;
  std::uint32_t id = kInvalidId;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return id != kInvalidId; }
  friend bool operator==(const SpineScheduleHandle&,
                         const SpineScheduleHandle&) = default;
};

struct SpineLinkParams {
  /// The two gateway endpoints. a.rack != b.rack.
  RackNode a;
  RackNode b;
  phy::DataRate rate = phy::DataRate::gbps(400);
  /// One-way propagation between the racks (spine cables are long).
  rsf::sim::SimTime latency = rsf::sim::SimTime::microseconds(1);
  /// Per-packet loss probability on this hop (uncorrectable errors at
  /// fleet scale). Sampled by send_packet(); 0 keeps runs loss-free.
  double loss_prob = 0.0;
  /// Initial routing cost (> 0). The FleetController reprices live.
  double cost = 1.0;
};

class Interconnect {
 public:
  /// cb(arrival): the transfer's last bit reaches the far gateway.
  /// SmallFunction (not std::function) keeps the scheduled completion
  /// continuation trivially copyable, so it rides the Simulator's
  /// inline event arm — per-packet spine sends never allocate.
  using DeliveryCallback = core::SmallFunction<void(rsf::sim::SimTime arrival)>;
  /// cb(arrival, delivered): the packet's last bit reaches the far
  /// gateway (delivered == false when the hop lost it — the sender
  /// owns retransmission).
  using PacketCallback =
      core::SmallFunction<void(rsf::sim::SimTime arrival, bool delivered)>;

  /// Metrics go to `registry` under "spine.*" (never null; the
  /// FleetRuntime hands the fleet registry in). `seed` feeds the loss
  /// sampler; equal seeds reproduce loss patterns bit-for-bit.
  Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry,
               std::uint64_t seed = 1);

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  SpineLinkId add_link(SpineLinkParams params);
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const SpineLinkParams& link(SpineLinkId id) const;

  /// Administrative state: a down spine link carries nothing and is
  /// invisible to route(). Opens the spine-failure scenario family.
  /// Idempotent: repeating the current state is a no-op (no counter
  /// transition, no version bump, no preemption walk) — overlapping
  /// shared-risk groups cut the same link twice routinely.
  void set_link_up(SpineLinkId id, bool up);
  [[nodiscard]] bool link_up(SpineLinkId id) const;

  // --- shared-risk groups (correlated failure) ---

  using SrlgId = std::uint32_t;

  /// Register a shared-risk link group: links that fail together (a
  /// conduit, a power domain, a trench). One set_group_up(id, false)
  /// cuts every member; membership may overlap between groups (link
  /// administrative state is last-writer-wins, which set_link_up's
  /// idempotence keeps counter-exact). Links must already exist; a
  /// group must not be empty.
  SrlgId add_shared_risk_group(std::vector<SpineLinkId> links);

  /// Cut (up == false) or repair (up == true) every member link.
  /// Idempotent at group granularity: repeating the group's current
  /// state is a no-op and the spine.srlg_cuts / spine.srlg_repairs
  /// counters advance once per actual transition.
  void set_group_up(SrlgId group, bool up);
  [[nodiscard]] bool group_up(SrlgId group) const;
  [[nodiscard]] const std::vector<SpineLinkId>& shared_risk_group(SrlgId group) const;
  [[nodiscard]] std::size_t shared_risk_group_count() const { return srlgs_.size(); }

  /// Every spine link with an endpoint gateway in `rack`, ascending by
  /// id — the rack's spine attachments. Failing all of them is a
  /// rack-wide brownout (the chaos harness's second correlated-failure
  /// primitive).
  [[nodiscard]] std::vector<SpineLinkId> rack_attachments(std::uint32_t rack) const;

  /// Live routing cost of `id`. Starts at params.cost; repriced by the
  /// FleetController. Setting a changed cost bumps the spine version.
  void set_link_cost(SpineLinkId id, double cost);
  [[nodiscard]] double link_cost(SpineLinkId id) const;

  /// Monotonic version of the rack graph + its prices. Bumped by
  /// add_link, by set_link_up, and by set_link_cost when the cost
  /// actually changes; the route cache keys on it.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Conservative-PDES lookahead of one spine link: the minimum delay
  /// between a send decision at one gateway and any observable effect
  /// at the far one (the link's propagation latency; serialization
  /// only adds to it).
  [[nodiscard]] rsf::sim::SimTime lookahead(SpineLinkId id) const {
    return link(id).latency;
  }
  /// The fleet-wide lookahead floor: the minimum lookahead over every
  /// spine link (infinity when there are none — unlinked racks never
  /// interact). The parallel fleet engine derives its sync horizon
  /// from this and FleetRuntime refuses workers > 1 when it is zero.
  [[nodiscard]] rsf::sim::SimTime min_lookahead() const;

  /// The far endpoint of `id` as seen from `from_rack`.
  [[nodiscard]] const RackNode& far_end(SpineLinkId id, std::uint32_t from_rack) const;

  /// Cheapest up-link path src_rack -> dst_rack over the rack graph
  /// (cost-weighted; ties prefer fewer hops, then the lowest-id rack's
  /// expansion, then its lowest-id edge, so routes are deterministic).
  /// nullopt when unreachable; empty
  /// when src == dst. Memoized per (src, dst) against version() —
  /// the per-packet hot path resolves routes through here.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> route(std::uint32_t src_rack,
                                                              std::uint32_t dst_rack) const;

  /// The uncached computation behind route(); exposed so tests can
  /// assert the cache hit path returns exactly what a fresh search
  /// would.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> compute_route(
      std::uint32_t src_rack, std::uint32_t dst_rack) const;

  /// compute_route with an avoid-set: links in `avoid` are skipped as
  /// if administratively down. The multi-path schedule split uses it
  /// to find a second route link-disjoint from the first.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> compute_route_avoiding(
      std::uint32_t src_rack, std::uint32_t dst_rack,
      const std::vector<SpineLinkId>& avoid) const;

  // --- circuit reservations ---

  /// Carve `fraction` (0 < fraction < 1) of per-direction capacity for
  /// the pair (src_rack, dst_rack) along the current cheapest route,
  /// which is pinned for the reservation's lifetime. Fails (nullopt)
  /// when src == dst, no route exists, the pair already holds a
  /// reservation, or any crossed direction lacks the headroom (the
  /// total carved fraction per direction must stay below 1). Bumps the
  /// reservation version so transports re-check their pair bindings.
  std::optional<SpineReservationHandle> reserve(std::uint32_t src_rack,
                                                std::uint32_t dst_rack,
                                                double bandwidth_fraction);

  /// Tear the reservation down and return its capacity to the shared
  /// residual. Stale handles are a no-op (release is idempotent and
  /// races with failure-driven preemption are benign).
  void release(SpineReservationHandle handle);

  /// True while `handle` names a live reservation (same generation).
  [[nodiscard]] bool reservation_active(SpineReservationHandle handle) const;

  /// The live reservation for (src_rack, dst_rack), if any.
  [[nodiscard]] std::optional<SpineReservationHandle> find_reservation(
      std::uint32_t src_rack, std::uint32_t dst_rack) const;

  /// The pinned route of a live reservation (crossing order).
  /// Throws on stale handles — check reservation_active first.
  [[nodiscard]] const std::vector<SpineLinkId>& reservation_route(
      SpineReservationHandle handle) const;
  [[nodiscard]] double reservation_fraction(SpineReservationHandle handle) const;

  /// Live reservations right now.
  [[nodiscard]] std::size_t reservation_count() const {
    return reservations_.size() - reservations_.free_count();
  }

  /// Monotonic version of the reservation table: bumped by reserve(),
  /// release(), and failure-driven preemption. Transports poll it to
  /// adopt or drop a pair's reservation without a per-packet lookup.
  /// Stays 0 while reservations are never used.
  [[nodiscard]] std::uint64_t reservation_version() const { return reservation_version_; }

  /// Fraction of direction (`id`, leaving `from_rack`) currently
  /// carved out by reservations.
  [[nodiscard]] double reserved_fraction(SpineLinkId id, std::uint32_t from_rack) const;

  /// The rate shared (unreserved) traffic actually sees on direction
  /// (`id`, leaving `from_rack`): the nameplate rate minus every
  /// carve crossing it — rate × (1 − reserved_fraction). This is what
  /// the FleetController prices against; with nothing carved it is
  /// exactly the nameplate rate.
  [[nodiscard]] phy::DataRate residual_rate(SpineLinkId id, std::uint32_t from_rack) const;

  // --- slot schedules (the TDMA regime) ---

  /// Wall-clock length of one calendar slot; slot s of the repeating
  /// frame covers [s·d, (s+1)·d) modulo kFrameSlots·d. Changing it
  /// mid-run is refused while any schedule is live (booked slot sets
  /// would silently shift under their owners).
  void set_slot_duration(rsf::sim::SimTime d);
  [[nodiscard]] rsf::sim::SimTime slot_duration() const { return slot_duration_; }

  /// Inactivity window after which a schedule self-expires: a pair
  /// that stopped sending returns its slots without controller help
  /// (each slotted send renews the lease). Applies to schedules booked
  /// after the call.
  void set_slot_timeout(rsf::sim::SimTime timeout);
  [[nodiscard]] rsf::sim::SimTime slot_timeout() const { return slot_timeout_; }

  /// Book a periodic slot schedule for (src_rack, dst_rack): `duty`
  /// owned offsets per `period` slots (period divides
  /// SlotCalendar::kFrameSlots) on every link-direction of the pinned
  /// route — the cheapest current route, or the cheapest avoiding
  /// `avoid`'s links when given (the multi-path split). Admission is
  /// all-or-nothing through the SlotCalendar: any third-party overlap
  /// on any crossed direction refuses the whole booking (nullopt,
  /// "spine.slot_refusals") and leaves no partial claim. A booked
  /// schedule subtracts duty/period from every crossed direction's
  /// shared residual and expires on its own after slot_timeout() of
  /// inactivity. Bumps the schedule version.
  std::optional<SpineScheduleHandle> reserve_slots(
      std::uint32_t src_rack, std::uint32_t dst_rack, int period, int duty,
      const std::vector<SpineLinkId>& avoid = {});

  /// Tear the schedule down and return its slots and residual
  /// fraction. Stale handles are a no-op (idempotent; races with
  /// expiry and failure-driven preemption are benign).
  void release_slots(SpineScheduleHandle handle);

  /// True while `handle` names a live schedule (same generation).
  [[nodiscard]] bool schedule_active(SpineScheduleHandle handle) const;

  /// Every live schedule of (src_rack, dst_rack), booking order — one
  /// pair may hold several (the multi-path split books one per route).
  [[nodiscard]] std::vector<SpineScheduleHandle> find_schedules(
      std::uint32_t src_rack, std::uint32_t dst_rack) const;

  /// The pinned route / owned slot set / capacity share of a live
  /// schedule. Throw on stale handles — check schedule_active first.
  [[nodiscard]] const std::vector<SpineLinkId>& schedule_route(
      SpineScheduleHandle handle) const;
  [[nodiscard]] SlotMask schedule_mask(SpineScheduleHandle handle) const;
  [[nodiscard]] double schedule_fraction(SpineScheduleHandle handle) const;

  /// Live schedules right now.
  [[nodiscard]] std::size_t schedule_count() const {
    return schedules_.size() - schedules_.free_count();
  }

  /// Monotonic version of the schedule table: bumped by
  /// reserve_slots(), release_slots(), expiry, and failure-driven
  /// preemption. Transports poll it to adopt or drop a pair's
  /// schedules without a per-packet lookup. Stays 0 while slot
  /// schedules are never used.
  [[nodiscard]] std::uint64_t schedule_version() const { return schedule_version_; }

  /// Fraction of direction (`id`, leaving `from_rack`) currently owned
  /// by slot schedules (the sum of their duty/period shares).
  [[nodiscard]] double slotted_fraction(SpineLinkId id, std::uint32_t from_rack) const;

  /// The slot-admission ledger (tests assert occupancy against it).
  [[nodiscard]] const SlotCalendar& slot_calendar() const { return calendar_; }

  // --- per-pair demand (the controller's promotion input) ---

  /// Stable reference to the pair's cumulative offered cross-rack
  /// load (created at zero). The unit is byte·hops — payload bytes
  /// weighted by the spine hops the route crosses, the pair's spine
  /// resource footprint — so a long-haul pair is not under-ranked
  /// against short-haul bursts whose small RTT lets them dominate
  /// shared FIFOs. std::map nodes never move, so the FleetRuntime
  /// resolves the slot once per route (re)resolution and bumps it per
  /// packet with no map lookup (the CounterSet::slot idiom); the
  /// FleetController diffs the totals between epochs to find
  /// persistently hot pairs.
  [[nodiscard]] std::uint64_t& pair_demand_slot(std::uint32_t src_rack,
                                                std::uint32_t dst_rack) {
    return pair_demand_[pair_key(src_rack, dst_rack)];
  }
  /// Cumulative demand per pair in byte·hops, keyed (src << 32) | dst.
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& pair_demand() const {
    return pair_demand_;
  }

  // --- packet / bulk transport ---

  /// Occupy `id` in the direction leaving `from_rack` for one packet
  /// of `size` bytes: FIFO serialization at the link rate, then
  /// propagation; loss sampled from the link's loss_prob. `cb` fires
  /// at arrival either way. Returns false (no callback) when the link
  /// is down.
  ///
  /// When `reservation` is live and its pinned route crosses `id`
  /// leaving `from_rack`, the packet serializes on the reservation's
  /// private per-hop FIFO at the carved rate instead of the shared
  /// residual FIFO. A stale or foreign handle falls back to the
  /// shared residual — preempted traffic degrades, never errors.
  bool send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                   SpineReservationHandle reservation, PacketCallback cb);
  bool send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                   PacketCallback cb) {
    return send_packet(id, from_rack, size, SpineReservationHandle{}, std::move(cb));
  }

  /// Slotted variant: when `schedule` is live and its pinned route
  /// crosses `id` leaving `from_rack`, the packet waits for the
  /// pair's next owned calendar slot on that hop and serializes at the
  /// full link rate inside it — collision-free by the calendar's
  /// admission rule — and the send renews the schedule's inactivity
  /// lease. A stale or foreign handle falls back to the shared
  /// residual: expired or preempted traffic degrades, never errors.
  bool send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                   SpineScheduleHandle schedule, PacketCallback cb);

  /// Bulk store-and-forward transfer: the whole payload occupies the
  /// direction for its serialization time. Comparison baseline for
  /// the packetized path (FleetConfig::transport selects). `cb` fires
  /// at arrival. Returns false (no callback) when the link is down.
  bool transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                DeliveryCallback cb);

  /// Cumulative time direction (`id`, leaving `from_rack`) has spent
  /// serializing — the spine utilisation input the FleetController
  /// diffs between epochs.
  [[nodiscard]] rsf::sim::SimTime busy_time(SpineLinkId id, std::uint32_t from_rack) const;
  /// How far ahead of now the direction's FIFO is booked — the queue
  /// depth (in time) the FleetController prices against.
  [[nodiscard]] rsf::sim::SimTime queue_backlog(SpineLinkId id,
                                                std::uint32_t from_rack) const;
  /// Packets sent on direction (`id`, leaving `from_rack`).
  [[nodiscard]] std::uint64_t link_packets(SpineLinkId id, std::uint32_t from_rack) const;
  /// Packets lost on direction (`id`, leaving `from_rack`).
  [[nodiscard]] std::uint64_t link_drops(SpineLinkId id, std::uint32_t from_rack) const;

  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

 private:
  struct Direction {
    rsf::sim::SimTime busy_until = rsf::sim::SimTime::zero();
    rsf::sim::SimTime busy_total = rsf::sim::SimTime::zero();
    std::uint64_t packets = 0;
    std::uint64_t drops = 0;
    /// Capacity carved out by reservations crossing this direction.
    /// The shared FIFO serializes at rate × (1 − reserved_fraction −
    /// slotted_fraction); 0 keeps the arithmetic identical to the
    /// unreserved spine.
    double reserved_fraction = 0.0;
    /// Capacity owned by slot schedules crossing this direction (the
    /// sum of their duty/period shares). Same residual arithmetic as
    /// reserved_fraction; 0 while slot schedules are unused.
    double slotted_fraction = 0.0;
  };
  struct Reservation {
    std::uint32_t src_rack = 0;
    std::uint32_t dst_rack = 0;
    double fraction = 0.0;
    /// Pinned route and, per hop, the direction index on that link
    /// and the private FIFO's booking horizon. Liveness and the
    /// stale-handle generation live in the SlotPool.
    std::vector<SpineLinkId> route;
    std::vector<int> hop_dir;
    std::vector<rsf::sim::SimTime> hop_busy_until;
  };
  /// A shared-risk group's membership and its own up/down state. The
  /// group state tracks set_group_up calls only — individual
  /// set_link_up calls on members do not move it (the group models the
  /// shared conduit, not the union of its cables' states).
  struct SharedRiskGroup {
    std::vector<SpineLinkId> links;
    bool up = true;
    /// Members this group's cut actually transitioned down (links an
    /// overlapping group or a direct set_link_up had already failed
    /// are not claimed). Repair restores exactly this set; a repair
    /// whose cut took nothing down is a pure no-op (counted as
    /// "spine.srlg_noop_repairs") instead of a phantom version bump
    /// that would resurrect links another group still holds down.
    std::vector<SpineLinkId> took_down;
  };
  struct SpineLink {
    SpineLinkParams params;
    bool up = true;
    double cost = 1.0;
    /// Cached registry slot for "spine.link<N>.packets" so the
    /// per-packet hot path never builds strings or walks the map.
    std::uint64_t* packets_slot = nullptr;
    Direction dir[2];  // [0]: a->b, [1]: b->a
  };

  [[nodiscard]] const SpineLink& at(SpineLinkId id) const;
  /// 0 when leaving params.a.rack, 1 when leaving params.b.rack.
  [[nodiscard]] int direction_index(const SpineLink& l, std::uint32_t from_rack) const;
  /// Book one serialization on the FIFO behind `busy_until` at `rate`;
  /// returns the arrival time and maintains the shared byte/latency
  /// instruments.
  rsf::sim::SimTime occupy_fifo(rsf::sim::SimTime& busy_until, phy::DataRate rate,
                                rsf::sim::SimTime latency, phy::DataSize size);
  /// Book one serialization on the shared residual FIFO of (l, d).
  rsf::sim::SimTime occupy(SpineLink& l, int d, phy::DataSize size);
  /// The shared send_packet tail: per-direction and per-link packet
  /// counters, the loss draw, and the completion event. The ordering
  /// (counters, then the RNG draw, then the scheduled callback) is
  /// part of the determinism contract — every overload shares it.
  bool finish_packet(SpineLink& ml, int d, rsf::sim::SimTime arrival, PacketCallback cb);
  [[nodiscard]] const Reservation* live_reservation(SpineReservationHandle h) const {
    // SpineReservationHandle::kInvalidId is SlotPool's invalid index,
    // so stale, foreign and never-valid handles all fail is_live.
    return reservations_.get_live(h.id, h.generation);
  }
  /// Tear one reservation down and return its carve (shared by
  /// release() and failure-driven preemption).
  void teardown_reservation(std::uint32_t idx);

  /// One pair's periodic slot schedule: a SlotCalendar booking plus
  /// the pinned route, the per-hop slotted FIFO horizon, and the
  /// inactivity lease. Liveness and the stale-handle generation live
  /// in the SlotPool.
  struct SlotSchedule {
    std::uint32_t src_rack = 0;
    std::uint32_t dst_rack = 0;
    /// duty / period — the capacity share subtracted from every
    /// crossed direction's shared residual while the schedule lives.
    double fraction = 0.0;
    SlotCalendar::Handle booking;
    SlotMask mask = 0;
    std::vector<SpineLinkId> route;
    std::vector<int> hop_dir;
    /// Per-hop booking horizon of the schedule's private slotted
    /// FIFO (successive packets of the pair queue behind each other
    /// inside their own slots, never against third parties).
    std::vector<rsf::sim::SimTime> hop_busy_until;
    /// Inactivity lease: bumped by every slotted send; the weak
    /// expiry event tears the schedule down when it goes stale.
    rsf::sim::SimTime last_activity = rsf::sim::SimTime::zero();
    rsf::sim::SimTime timeout = rsf::sim::SimTime::zero();
  };

  [[nodiscard]] const SlotSchedule* live_schedule(SpineScheduleHandle h) const {
    return schedules_.get_live(h.id, h.generation);
  }
  /// Tear one schedule down and return its slots + residual share
  /// (shared by release_slots(), expiry, and failure preemption).
  void teardown_schedule(std::uint32_t idx);
  /// Arm (or re-arm) the schedule's weak inactivity-expiry event.
  void arm_schedule_expiry(std::uint32_t idx, std::uint32_t generation);
  /// The earliest instant >= `from` inside a slot `mask` owns.
  [[nodiscard]] rsf::sim::SimTime next_owned_time(rsf::sim::SimTime from,
                                                  SlotMask mask) const;
  /// The calendar line of (`link`, direction d).
  [[nodiscard]] static SlotCalendar::LineId line_of(SpineLinkId link, int d) {
    return (static_cast<SlotCalendar::LineId>(link) << 1) | static_cast<unsigned>(d);
  }
  [[nodiscard]] static std::uint64_t pair_key(std::uint32_t src, std::uint32_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  rsf::sim::Simulator* sim_;
  std::vector<SpineLink> links_;
  std::vector<SharedRiskGroup> srlgs_;
  std::uint32_t max_rack_ = 0;
  std::uint64_t version_ = 1;
  rsf::sim::RandomStream rng_;
  // Route memoization: cleared lazily when version_ moves past the
  // stamp, so set_link_up / repricing cost one O(1) bump, not a walk.
  mutable std::uint64_t cache_version_ = 0;
  mutable std::map<std::uint64_t, std::optional<std::vector<SpineLinkId>>> route_cache_;
  // Reservation table: a SlotPool whose per-slot generation makes
  // recycled SpineReservationHandles detectably stale.
  core::SlotPool<Reservation> reservations_;
  std::map<std::uint64_t, std::uint32_t> reservation_by_pair_;
  std::uint64_t reservation_version_ = 0;
  // Slot-schedule table: same SlotPool staleness contract as the
  // reservation table; a pair may hold several schedules (multi-path).
  core::SlotPool<SlotSchedule> schedules_;
  std::map<std::uint64_t, std::vector<std::uint32_t>> schedules_by_pair_;
  std::uint64_t schedule_version_ = 0;
  SlotCalendar calendar_;
  rsf::sim::SimTime slot_duration_ = rsf::sim::SimTime::microseconds(1);
  rsf::sim::SimTime slot_timeout_ = rsf::sim::SimTime::microseconds(150);
  std::map<std::uint64_t, std::uint64_t> pair_demand_;
  telemetry::CounterSet& counters_;
  // Hot-path counter slots (stable references into counters_).
  std::uint64_t& packets_slot_;
  std::uint64_t& bytes_slot_;
  std::uint64_t& drops_slot_;
  std::uint64_t& reserved_bytes_slot_;
  std::uint64_t& slotted_bytes_slot_;
  telemetry::Histogram& transfer_latency_;
  telemetry::Histogram& queue_delay_;
};

}  // namespace rsf::fabric
