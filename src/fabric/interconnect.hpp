// rsf::fabric — the inter-rack spine.
//
// An Interconnect models the links *between* racks of a fleet: spine
// cables with a configurable rate and propagation latency, each
// connecting a designated gateway node in one rack to a gateway node
// in another. Since PR 3 the spine is a first-class packet-switched
// layer: the fleet transport streams individual packets through
// send_packet() (per-packet FIFO busy-until serialization, propagation
// latency, and Bernoulli loss sampled from the link's loss_prob), while
// the legacy bulk transfer() remains as the store-and-forward
// comparison baseline.
//
// Rack-level routing is cost-aware shortest path over the rack graph
// (Dijkstra; unit costs degenerate to breadth-first order) skipping
// administratively-down links, with deterministic tie-breaking:
// equal-cost candidates prefer fewer hops, then the expansion from
// the lowest-id rack, then the lowest-id edge out of it — every run
// picks the same route. Routes are memoized per
// (src_rack, dst_rack) against a monotonically increasing spine
// version; add_link, set_link_up and set_link_cost (the controller's
// repricing hook) bump the version, so cached routes are invalidated
// exactly when the graph or its prices change.
//
// Circuit-style capacity can be carved on top of the packetized
// spine: reserve(src, dst, fraction) pins the current cheapest route
// for a (rack, rack) pair and dedicates `fraction` of every crossed
// link's capacity — in the direction of travel only — to that pair.
// Packets sent under the reservation's versioned handle serialize on
// the reservation's private per-hop FIFO at the carved rate,
// bypassing the shared FIFO's contention, while unreserved traffic
// sees the link's residual rate (rate × (1 − reserved fraction)).
// Reservations survive repricing (the route is pinned) but are torn
// down when any crossed link fails — their traffic falls back to the
// shared residual via the stale-handle check. With no reservations
// configured the shared path is arithmetically identical to the
// pre-reservation spine: the packetized default is untouched.
//
// Metrics land in the owning registry under "spine.*", including
// per-link packet counters ("spine.link3.packets") the fleet
// controller tests assert traffic shifts against.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/slot_pool.hpp"
#include "core/small_function.hpp"
#include "phy/types.hpp"
#include "phy/units.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"

namespace rsf::fabric {

/// A (rack, node) address in a multi-rack fleet.
struct RackNode {
  std::uint32_t rack = 0;
  phy::NodeId node = phy::kInvalidNode;

  friend bool operator==(const RackNode&, const RackNode&) = default;
};

using SpineLinkId = std::uint32_t;

/// Versioned handle to a spine circuit reservation. Slots are
/// recycled; the generation detects a handle that outlived its
/// reservation (released, or preempted by a link failure) — stale
/// handles are safely inert everywhere they are accepted.
struct SpineReservationHandle {
  static constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;
  std::uint32_t id = kInvalidId;
  std::uint32_t generation = 0;

  [[nodiscard]] bool valid() const { return id != kInvalidId; }
  friend bool operator==(const SpineReservationHandle&,
                         const SpineReservationHandle&) = default;
};

struct SpineLinkParams {
  /// The two gateway endpoints. a.rack != b.rack.
  RackNode a;
  RackNode b;
  phy::DataRate rate = phy::DataRate::gbps(400);
  /// One-way propagation between the racks (spine cables are long).
  rsf::sim::SimTime latency = rsf::sim::SimTime::microseconds(1);
  /// Per-packet loss probability on this hop (uncorrectable errors at
  /// fleet scale). Sampled by send_packet(); 0 keeps runs loss-free.
  double loss_prob = 0.0;
  /// Initial routing cost (> 0). The FleetController reprices live.
  double cost = 1.0;
};

class Interconnect {
 public:
  /// cb(arrival): the transfer's last bit reaches the far gateway.
  /// SmallFunction (not std::function) keeps the scheduled completion
  /// continuation trivially copyable, so it rides the Simulator's
  /// inline event arm — per-packet spine sends never allocate.
  using DeliveryCallback = core::SmallFunction<void(rsf::sim::SimTime arrival)>;
  /// cb(arrival, delivered): the packet's last bit reaches the far
  /// gateway (delivered == false when the hop lost it — the sender
  /// owns retransmission).
  using PacketCallback =
      core::SmallFunction<void(rsf::sim::SimTime arrival, bool delivered)>;

  /// Metrics go to `registry` under "spine.*" (never null; the
  /// FleetRuntime hands the fleet registry in). `seed` feeds the loss
  /// sampler; equal seeds reproduce loss patterns bit-for-bit.
  Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry,
               std::uint64_t seed = 1);

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  SpineLinkId add_link(SpineLinkParams params);
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const SpineLinkParams& link(SpineLinkId id) const;

  /// Administrative state: a down spine link carries nothing and is
  /// invisible to route(). Opens the spine-failure scenario family.
  /// Idempotent: repeating the current state is a no-op (no counter
  /// transition, no version bump, no preemption walk) — overlapping
  /// shared-risk groups cut the same link twice routinely.
  void set_link_up(SpineLinkId id, bool up);
  [[nodiscard]] bool link_up(SpineLinkId id) const;

  // --- shared-risk groups (correlated failure) ---

  using SrlgId = std::uint32_t;

  /// Register a shared-risk link group: links that fail together (a
  /// conduit, a power domain, a trench). One set_group_up(id, false)
  /// cuts every member; membership may overlap between groups (link
  /// administrative state is last-writer-wins, which set_link_up's
  /// idempotence keeps counter-exact). Links must already exist; a
  /// group must not be empty.
  SrlgId add_shared_risk_group(std::vector<SpineLinkId> links);

  /// Cut (up == false) or repair (up == true) every member link.
  /// Idempotent at group granularity: repeating the group's current
  /// state is a no-op and the spine.srlg_cuts / spine.srlg_repairs
  /// counters advance once per actual transition.
  void set_group_up(SrlgId group, bool up);
  [[nodiscard]] bool group_up(SrlgId group) const;
  [[nodiscard]] const std::vector<SpineLinkId>& shared_risk_group(SrlgId group) const;
  [[nodiscard]] std::size_t shared_risk_group_count() const { return srlgs_.size(); }

  /// Every spine link with an endpoint gateway in `rack`, ascending by
  /// id — the rack's spine attachments. Failing all of them is a
  /// rack-wide brownout (the chaos harness's second correlated-failure
  /// primitive).
  [[nodiscard]] std::vector<SpineLinkId> rack_attachments(std::uint32_t rack) const;

  /// Live routing cost of `id`. Starts at params.cost; repriced by the
  /// FleetController. Setting a changed cost bumps the spine version.
  void set_link_cost(SpineLinkId id, double cost);
  [[nodiscard]] double link_cost(SpineLinkId id) const;

  /// Monotonic version of the rack graph + its prices. Bumped by
  /// add_link, by set_link_up, and by set_link_cost when the cost
  /// actually changes; the route cache keys on it.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Conservative-PDES lookahead of one spine link: the minimum delay
  /// between a send decision at one gateway and any observable effect
  /// at the far one (the link's propagation latency; serialization
  /// only adds to it).
  [[nodiscard]] rsf::sim::SimTime lookahead(SpineLinkId id) const {
    return link(id).latency;
  }
  /// The fleet-wide lookahead floor: the minimum lookahead over every
  /// spine link (infinity when there are none — unlinked racks never
  /// interact). The parallel fleet engine derives its sync horizon
  /// from this and FleetRuntime refuses workers > 1 when it is zero.
  [[nodiscard]] rsf::sim::SimTime min_lookahead() const;

  /// The far endpoint of `id` as seen from `from_rack`.
  [[nodiscard]] const RackNode& far_end(SpineLinkId id, std::uint32_t from_rack) const;

  /// Cheapest up-link path src_rack -> dst_rack over the rack graph
  /// (cost-weighted; ties prefer fewer hops, then the lowest-id rack's
  /// expansion, then its lowest-id edge, so routes are deterministic).
  /// nullopt when unreachable; empty
  /// when src == dst. Memoized per (src, dst) against version() —
  /// the per-packet hot path resolves routes through here.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> route(std::uint32_t src_rack,
                                                              std::uint32_t dst_rack) const;

  /// The uncached computation behind route(); exposed so tests can
  /// assert the cache hit path returns exactly what a fresh search
  /// would.
  [[nodiscard]] std::optional<std::vector<SpineLinkId>> compute_route(
      std::uint32_t src_rack, std::uint32_t dst_rack) const;

  // --- circuit reservations ---

  /// Carve `fraction` (0 < fraction < 1) of per-direction capacity for
  /// the pair (src_rack, dst_rack) along the current cheapest route,
  /// which is pinned for the reservation's lifetime. Fails (nullopt)
  /// when src == dst, no route exists, the pair already holds a
  /// reservation, or any crossed direction lacks the headroom (the
  /// total carved fraction per direction must stay below 1). Bumps the
  /// reservation version so transports re-check their pair bindings.
  std::optional<SpineReservationHandle> reserve(std::uint32_t src_rack,
                                                std::uint32_t dst_rack,
                                                double bandwidth_fraction);

  /// Tear the reservation down and return its capacity to the shared
  /// residual. Stale handles are a no-op (release is idempotent and
  /// races with failure-driven preemption are benign).
  void release(SpineReservationHandle handle);

  /// True while `handle` names a live reservation (same generation).
  [[nodiscard]] bool reservation_active(SpineReservationHandle handle) const;

  /// The live reservation for (src_rack, dst_rack), if any.
  [[nodiscard]] std::optional<SpineReservationHandle> find_reservation(
      std::uint32_t src_rack, std::uint32_t dst_rack) const;

  /// The pinned route of a live reservation (crossing order).
  /// Throws on stale handles — check reservation_active first.
  [[nodiscard]] const std::vector<SpineLinkId>& reservation_route(
      SpineReservationHandle handle) const;
  [[nodiscard]] double reservation_fraction(SpineReservationHandle handle) const;

  /// Live reservations right now.
  [[nodiscard]] std::size_t reservation_count() const {
    return reservations_.size() - reservations_.free_count();
  }

  /// Monotonic version of the reservation table: bumped by reserve(),
  /// release(), and failure-driven preemption. Transports poll it to
  /// adopt or drop a pair's reservation without a per-packet lookup.
  /// Stays 0 while reservations are never used.
  [[nodiscard]] std::uint64_t reservation_version() const { return reservation_version_; }

  /// Fraction of direction (`id`, leaving `from_rack`) currently
  /// carved out by reservations.
  [[nodiscard]] double reserved_fraction(SpineLinkId id, std::uint32_t from_rack) const;

  /// The rate shared (unreserved) traffic actually sees on direction
  /// (`id`, leaving `from_rack`): the nameplate rate minus every
  /// carve crossing it — rate × (1 − reserved_fraction). This is what
  /// the FleetController prices against; with nothing carved it is
  /// exactly the nameplate rate.
  [[nodiscard]] phy::DataRate residual_rate(SpineLinkId id, std::uint32_t from_rack) const;

  // --- per-pair demand (the controller's promotion input) ---

  /// Stable reference to the pair's cumulative offered cross-rack
  /// load (created at zero). The unit is byte·hops — payload bytes
  /// weighted by the spine hops the route crosses, the pair's spine
  /// resource footprint — so a long-haul pair is not under-ranked
  /// against short-haul bursts whose small RTT lets them dominate
  /// shared FIFOs. std::map nodes never move, so the FleetRuntime
  /// resolves the slot once per route (re)resolution and bumps it per
  /// packet with no map lookup (the CounterSet::slot idiom); the
  /// FleetController diffs the totals between epochs to find
  /// persistently hot pairs.
  [[nodiscard]] std::uint64_t& pair_demand_slot(std::uint32_t src_rack,
                                                std::uint32_t dst_rack) {
    return pair_demand_[pair_key(src_rack, dst_rack)];
  }
  /// Cumulative demand per pair in byte·hops, keyed (src << 32) | dst.
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& pair_demand() const {
    return pair_demand_;
  }

  // --- packet / bulk transport ---

  /// Occupy `id` in the direction leaving `from_rack` for one packet
  /// of `size` bytes: FIFO serialization at the link rate, then
  /// propagation; loss sampled from the link's loss_prob. `cb` fires
  /// at arrival either way. Returns false (no callback) when the link
  /// is down.
  ///
  /// When `reservation` is live and its pinned route crosses `id`
  /// leaving `from_rack`, the packet serializes on the reservation's
  /// private per-hop FIFO at the carved rate instead of the shared
  /// residual FIFO. A stale or foreign handle falls back to the
  /// shared residual — preempted traffic degrades, never errors.
  bool send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                   SpineReservationHandle reservation, PacketCallback cb);
  bool send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                   PacketCallback cb) {
    return send_packet(id, from_rack, size, SpineReservationHandle{}, std::move(cb));
  }

  /// Bulk store-and-forward transfer: the whole payload occupies the
  /// direction for its serialization time. Comparison baseline for
  /// the packetized path (FleetConfig::transport selects). `cb` fires
  /// at arrival. Returns false (no callback) when the link is down.
  bool transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                DeliveryCallback cb);

  /// Cumulative time direction (`id`, leaving `from_rack`) has spent
  /// serializing — the spine utilisation input the FleetController
  /// diffs between epochs.
  [[nodiscard]] rsf::sim::SimTime busy_time(SpineLinkId id, std::uint32_t from_rack) const;
  /// How far ahead of now the direction's FIFO is booked — the queue
  /// depth (in time) the FleetController prices against.
  [[nodiscard]] rsf::sim::SimTime queue_backlog(SpineLinkId id,
                                                std::uint32_t from_rack) const;
  /// Packets sent on direction (`id`, leaving `from_rack`).
  [[nodiscard]] std::uint64_t link_packets(SpineLinkId id, std::uint32_t from_rack) const;
  /// Packets lost on direction (`id`, leaving `from_rack`).
  [[nodiscard]] std::uint64_t link_drops(SpineLinkId id, std::uint32_t from_rack) const;

  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

 private:
  struct Direction {
    rsf::sim::SimTime busy_until = rsf::sim::SimTime::zero();
    rsf::sim::SimTime busy_total = rsf::sim::SimTime::zero();
    std::uint64_t packets = 0;
    std::uint64_t drops = 0;
    /// Capacity carved out by reservations crossing this direction.
    /// The shared FIFO serializes at rate × (1 − reserved_fraction);
    /// 0 keeps the arithmetic identical to the unreserved spine.
    double reserved_fraction = 0.0;
  };
  struct Reservation {
    std::uint32_t src_rack = 0;
    std::uint32_t dst_rack = 0;
    double fraction = 0.0;
    /// Pinned route and, per hop, the direction index on that link
    /// and the private FIFO's booking horizon. Liveness and the
    /// stale-handle generation live in the SlotPool.
    std::vector<SpineLinkId> route;
    std::vector<int> hop_dir;
    std::vector<rsf::sim::SimTime> hop_busy_until;
  };
  /// A shared-risk group's membership and its own up/down state. The
  /// group state tracks set_group_up calls only — individual
  /// set_link_up calls on members do not move it (the group models the
  /// shared conduit, not the union of its cables' states).
  struct SharedRiskGroup {
    std::vector<SpineLinkId> links;
    bool up = true;
  };
  struct SpineLink {
    SpineLinkParams params;
    bool up = true;
    double cost = 1.0;
    /// Cached registry slot for "spine.link<N>.packets" so the
    /// per-packet hot path never builds strings or walks the map.
    std::uint64_t* packets_slot = nullptr;
    Direction dir[2];  // [0]: a->b, [1]: b->a
  };

  [[nodiscard]] const SpineLink& at(SpineLinkId id) const;
  /// 0 when leaving params.a.rack, 1 when leaving params.b.rack.
  [[nodiscard]] int direction_index(const SpineLink& l, std::uint32_t from_rack) const;
  /// Book one serialization on the FIFO behind `busy_until` at `rate`;
  /// returns the arrival time and maintains the shared byte/latency
  /// instruments.
  rsf::sim::SimTime occupy_fifo(rsf::sim::SimTime& busy_until, phy::DataRate rate,
                                rsf::sim::SimTime latency, phy::DataSize size);
  /// Book one serialization on the shared residual FIFO of (l, d).
  rsf::sim::SimTime occupy(SpineLink& l, int d, phy::DataSize size);
  [[nodiscard]] const Reservation* live_reservation(SpineReservationHandle h) const {
    // SpineReservationHandle::kInvalidId is SlotPool's invalid index,
    // so stale, foreign and never-valid handles all fail is_live.
    return reservations_.get_live(h.id, h.generation);
  }
  /// Tear one reservation down and return its carve (shared by
  /// release() and failure-driven preemption).
  void teardown_reservation(std::uint32_t idx);
  [[nodiscard]] static std::uint64_t pair_key(std::uint32_t src, std::uint32_t dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  rsf::sim::Simulator* sim_;
  std::vector<SpineLink> links_;
  std::vector<SharedRiskGroup> srlgs_;
  std::uint32_t max_rack_ = 0;
  std::uint64_t version_ = 1;
  rsf::sim::RandomStream rng_;
  // Route memoization: cleared lazily when version_ moves past the
  // stamp, so set_link_up / repricing cost one O(1) bump, not a walk.
  mutable std::uint64_t cache_version_ = 0;
  mutable std::map<std::uint64_t, std::optional<std::vector<SpineLinkId>>> route_cache_;
  // Reservation table: a SlotPool whose per-slot generation makes
  // recycled SpineReservationHandles detectably stale.
  core::SlotPool<Reservation> reservations_;
  std::map<std::uint64_t, std::uint32_t> reservation_by_pair_;
  std::uint64_t reservation_version_ = 0;
  std::map<std::uint64_t, std::uint64_t> pair_demand_;
  telemetry::CounterSet& counters_;
  // Hot-path counter slots (stable references into counters_).
  std::uint64_t& packets_slot_;
  std::uint64_t& bytes_slot_;
  std::uint64_t& drops_slot_;
  std::uint64_t& reserved_bytes_slot_;
  telemetry::Histogram& transfer_latency_;
  telemetry::Histogram& queue_delay_;
};

}  // namespace rsf::fabric
