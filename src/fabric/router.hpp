// rsf::fabric — routing.
//
// The router answers one question per hop: given a packet at `node`
// heading for `dst`, which usable link should it take? Two policies:
//
//  * kMinCost — Dijkstra over per-link costs. The default cost is the
//    link's unloaded one-way latency for a reference frame plus a
//    per-hop switching penalty; the Closed Ring Control overrides it
//    with live price tags (paper §3.2), making routing congestion-,
//    health- and power-aware.
//  * kDimensionOrder — classic X-then-Y over grid/torus coordinates;
//    the static baseline the paper's adaptive fabric is compared to.
//
// Distance tables are cached per destination and invalidated when the
// topology version or the price generation changes.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fabric/topology.hpp"
#include "phy/types.hpp"
#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::fabric {

enum class RoutingPolicy { kMinCost, kDimensionOrder };

class Router {
 public:
  /// Cost of crossing a link, in arbitrary but consistent units.
  using PriceFn = std::function<double(phy::LinkId)>;

  Router(const Topology* topo, RoutingPolicy policy = RoutingPolicy::kMinCost);

  [[nodiscard]] RoutingPolicy policy() const { return policy_; }
  void set_policy(RoutingPolicy p);

  /// Install live prices (CRC). Pass nullptr to restore the default
  /// unloaded-latency cost. Bumps the price generation.
  void set_price_fn(PriceFn fn);
  /// Invalidate caches after in-place price changes.
  void bump_prices() { ++price_generation_; }

  /// Next usable link from `at` toward `dst`, or nullopt if
  /// unreachable right now.
  [[nodiscard]] std::optional<phy::LinkId> next_hop(phy::NodeId at, phy::NodeId dst);

  /// Total min-cost from src to dst under current prices (kMinCost
  /// semantics regardless of policy); nullopt if unreachable.
  [[nodiscard]] std::optional<double> path_cost(phy::NodeId src, phy::NodeId dst);

  /// Links of the current min-cost path (empty if unreachable).
  [[nodiscard]] std::vector<phy::LinkId> path(phy::NodeId src, phy::NodeId dst);

  /// Hop count of the current min-cost path; -1 if unreachable.
  [[nodiscard]] int hop_count(phy::NodeId src, phy::NodeId dst);

  /// The default (unloaded latency) cost of a link; exposed so the CRC
  /// can build price tags as latency + penalties.
  [[nodiscard]] double default_cost(phy::LinkId link) const;

  /// Per-hop switching penalty included in default costs (ns units).
  void set_hop_penalty_ns(double ns) {
    hop_penalty_ns_ = ns;
    ++price_generation_;
  }

 private:
  struct DistTable {
    std::uint64_t topo_version = 0;
    std::uint64_t price_generation = 0;
    // dist[node] = min cost node -> dst; kUnreachable if none.
    std::vector<double> dist;
    // next[node] = memoized argmin next link node -> dst, filled
    // lazily by next_hop_min_cost (kNextUnknown until asked, kNextNone
    // when no usable hop exists). Shares the table's validity stamps:
    // topology-version bumps — including reservation changes, which
    // notify the plant's change observers — and price-generation
    // bumps reset it with dist.
    std::vector<phy::LinkId> next;
  };

  /// next[] sentinels. Real LinkIds are dense small integers; these
  /// two top values can never be allocated.
  static constexpr phy::LinkId kNextUnknown = phy::kInvalidLink;
  static constexpr phy::LinkId kNextNone = phy::kInvalidLink - 1;

  [[nodiscard]] double cost(phy::LinkId link) const;
  DistTable& table_for(phy::NodeId dst);

  const Topology* topo_;
  RoutingPolicy policy_;
  PriceFn price_fn_;
  std::uint64_t price_generation_ = 1;
  double hop_penalty_ns_ = 450.0;  // cut-through pipeline, see SwitchParams
  // Destination-indexed (node ids are dense): the per-hop table lookup
  // is a single vector index instead of a hash probe.
  std::vector<DistTable> tables_;

  [[nodiscard]] std::optional<phy::LinkId> next_hop_min_cost(phy::NodeId at, phy::NodeId dst);
  [[nodiscard]] std::optional<phy::LinkId> next_hop_dimension_order(phy::NodeId at,
                                                                    phy::NodeId dst) const;
};

}  // namespace rsf::fabric
