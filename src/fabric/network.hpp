// rsf::fabric — the packet transport engine.
//
// Network simulates packet movement over the topology at packet-event
// granularity (one event per hop). The switch model is cut-through:
// a packet's head can leave a node `switch_latency` after it arrives,
// while its tail is still streaming in, subject to (a) output-port
// serialization (ports are modelled with busy-until arithmetic, FIFO)
// and (b) the no-underrun constraint — a hop may not *finish*
// transmitting before the tail has arrived. Store-and-forward mode is
// available as the comparison baseline (Figure 1's dominant term).
//
// Sources are window-limited: a flow keeps at most `flow_window`
// packets in flight, modelling the lossless backpressure a rack fabric
// provides without simulating per-hop credits. Frames lost to
// uncorrectable FEC errors (sampled per hop from the link's analytic
// loss probability) are retransmitted from the source.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fabric/packet.hpp"
#include "fabric/router.hpp"
#include "fabric/topology.hpp"
#include "phy/plant.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"

namespace rsf::fabric {

struct SwitchParams {
  /// Per-hop pipeline latency of the switching element (cut-through
  /// lookup + crossbar). State-of-the-art L2 cut-through, ~450 ns.
  rsf::sim::SimTime switch_latency = rsf::sim::SimTime::nanoseconds(450);
  /// Injection / delivery overhead at the end hosts' NICs.
  rsf::sim::SimTime nic_latency = rsf::sim::SimTime::nanoseconds(300);
  bool cut_through = true;
  /// Static power per switch port that is in switching (non-bypassed)
  /// use, and dynamic energy per switched bit.
  double port_static_w = 1.5;
  double pj_per_bit = 15.0;
};

struct NetworkConfig {
  SwitchParams switch_params;
  /// Max packets a flow keeps in flight (source backpressure window).
  int flow_window = 16;
  /// Give up after this many retransmits of one packet.
  int max_retries = 16;
  /// Drop packets that have crossed this many hops (routing-loop
  /// backstop; transient loops can occur while tables refresh).
  int max_hops = 64;
  /// Delay before a retransmit or a no-route retry re-enters the NIC.
  rsf::sim::SimTime retry_delay = rsf::sim::SimTime::microseconds(5);
  std::uint64_t seed = 1;
};

class Network {
 public:
  using FlowCallback = std::function<void(const FlowResult&)>;
  using ProbeCallback =
      std::function<void(rsf::sim::SimTime latency, int hops, bool delivered)>;

  Network(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant, Topology* topo,
          Router* router, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a flow; packets start at spec.start. The callback fires
  /// on completion (or failure after retry exhaustion).
  void start_flow(const FlowSpec& spec, FlowCallback on_complete = nullptr);

  /// One tracer packet; callback fires at delivery (or drop).
  void send_probe(phy::NodeId src, phy::NodeId dst, phy::DataSize size,
                  ProbeCallback cb);

  // --- observability ---

  [[nodiscard]] const telemetry::Histogram& packet_latency() const { return packet_latency_; }
  [[nodiscard]] const telemetry::Histogram& flow_completion() const { return flow_completion_; }
  [[nodiscard]] const telemetry::Histogram& hop_counts() const { return hop_counts_; }
  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

  /// Cumulative time link `id` spent transmitting (sum over both
  /// directions). The CRC diffs this between control epochs to get
  /// utilisation.
  [[nodiscard]] rsf::sim::SimTime link_busy_time(phy::LinkId id) const;
  /// Mean queueing delay experienced at link `id` since start.
  [[nodiscard]] rsf::sim::SimTime link_mean_queue_delay(phy::LinkId id) const;
  /// Cumulative count of packets that crossed link `id`.
  [[nodiscard]] std::uint64_t link_packets(phy::LinkId id) const;

  /// Switching-element power right now: static per in-use port plus
  /// dynamic switching power from the recent bit rate. `window` sets
  /// how far back "recent" looks.
  [[nodiscard]] double switch_power_watts(
      rsf::sim::SimTime window = rsf::sim::SimTime::milliseconds(1)) const;

  [[nodiscard]] std::uint64_t flows_completed() const { return flows_completed_; }
  [[nodiscard]] std::uint64_t flows_failed() const { return flows_failed_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  struct FlowState {
    FlowSpec spec;
    FlowCallback on_complete;
    std::uint64_t packets_total = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t delivered = 0;
    std::uint64_t retransmits = 0;
    int inflight = 0;
    rsf::sim::SimTime started = rsf::sim::SimTime::zero();
    bool failed = false;
    bool done = false;
  };

  struct PortState {
    rsf::sim::SimTime busy_until = rsf::sim::SimTime::zero();
  };

  struct LinkUse {
    rsf::sim::SimTime busy = rsf::sim::SimTime::zero();
    rsf::sim::SimTime queue_delay_sum = rsf::sim::SimTime::zero();
    std::uint64_t queue_delay_samples = 0;
    std::uint64_t packets = 0;
    std::uint64_t bits = 0;
  };

  struct ProbeState {
    ProbeCallback cb;
  };

  void pump_flow(FlowState& flow);
  void inject(Packet pkt, rsf::sim::SimTime when);
  /// Head of `pkt` is available at `node` at head_ready (switch/NIC
  /// latency already applied); tail fully arrived at tail_ready.
  void hop(Packet pkt, phy::NodeId node, rsf::sim::SimTime head_ready,
           rsf::sim::SimTime tail_ready);
  void deliver(const Packet& pkt, rsf::sim::SimTime when);
  void drop(const Packet& pkt, const char* reason);
  void retransmit(Packet pkt);
  void flow_packet_delivered(FlowId id);
  void finish_flow(FlowState& flow, bool failed);

  [[nodiscard]] std::uint64_t port_key(phy::NodeId node, phy::LinkId link) const {
    return (static_cast<std::uint64_t>(node) << 32) | link;
  }

  rsf::sim::Simulator* sim_;
  phy::PhysicalPlant* plant_;
  Topology* topo_;
  Router* router_;
  NetworkConfig config_;
  rsf::sim::RandomStream rng_;
  rsf::sim::Logger log_;

  std::unordered_map<std::uint64_t, PortState> ports_;
  std::unordered_map<phy::LinkId, LinkUse> link_use_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::unordered_map<std::uint64_t, ProbeState> probes_;  // packet id -> probe
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_failed_ = 0;

  // Sliding window accounting for dynamic switch power.
  std::uint64_t switched_bits_total_ = 0;
  mutable std::vector<std::pair<rsf::sim::SimTime, std::uint64_t>> switched_bits_log_;

  telemetry::Histogram packet_latency_;
  telemetry::Histogram flow_completion_;
  telemetry::Histogram hop_counts_;
  telemetry::CounterSet counters_;
};

}  // namespace rsf::fabric
