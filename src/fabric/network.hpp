// rsf::fabric — the packet transport engine.
//
// Network simulates packet movement over the topology at packet-event
// granularity (one event per hop). The switch model is cut-through:
// a packet's head can leave a node `switch_latency` after it arrives,
// while its tail is still streaming in, subject to (a) output-port
// serialization (ports are modelled with busy-until arithmetic, FIFO)
// and (b) the no-underrun constraint — a hop may not *finish*
// transmitting before the tail has arrived. Store-and-forward mode is
// available as the comparison baseline (Figure 1's dominant term).
//
// Sources are window-limited: a flow keeps at most `flow_window`
// packets in flight, modelling the lossless backpressure a rack fabric
// provides without simulating per-hop credits. Frames lost to
// uncorrectable FEC errors (sampled per hop from the link's analytic
// loss probability) are retransmitted from the source.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/slot_pool.hpp"
#include "fabric/packet.hpp"
#include "fabric/router.hpp"
#include "fabric/topology.hpp"
#include "phy/plant.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"

namespace rsf::fabric {

struct SwitchParams {
  /// Per-hop pipeline latency of the switching element (cut-through
  /// lookup + crossbar). State-of-the-art L2 cut-through, ~450 ns.
  rsf::sim::SimTime switch_latency = rsf::sim::SimTime::nanoseconds(450);
  /// Injection / delivery overhead at the end hosts' NICs.
  rsf::sim::SimTime nic_latency = rsf::sim::SimTime::nanoseconds(300);
  bool cut_through = true;
  /// Static power per switch port that is in switching (non-bypassed)
  /// use, and dynamic energy per switched bit.
  double port_static_w = 1.5;
  double pj_per_bit = 15.0;
};

struct NetworkConfig {
  SwitchParams switch_params;
  /// Max packets a flow keeps in flight (source backpressure window).
  int flow_window = 16;
  /// Give up after this many retransmits of one packet.
  int max_retries = 16;
  /// Drop packets that have crossed this many hops (routing-loop
  /// backstop; transient loops can occur while tables refresh).
  int max_hops = 64;
  /// Delay before a retransmit or a no-route retry re-enters the NIC.
  rsf::sim::SimTime retry_delay = rsf::sim::SimTime::microseconds(5);
  std::uint64_t seed = 1;
};

class Network {
 public:
  using FlowCallback = std::function<void(const FlowResult&)>;
  using ProbeCallback =
      std::function<void(rsf::sim::SimTime latency, int hops, bool delivered)>;

  /// Metrics land in `registry` under "net.*" when one is supplied
  /// (the FabricRuntime hands every component its registry); without
  /// one the network owns a private registry, so direct construction
  /// in unit tests keeps working.
  Network(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant, Topology* topo,
          Router* router, NetworkConfig config = {},
          telemetry::Registry* registry = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a flow; packets start at spec.start. The callback fires
  /// on completion (or failure after retry exhaustion).
  void start_flow(const FlowSpec& spec, FlowCallback on_complete = nullptr);

  /// One tracer packet; callback fires at delivery (or drop).
  void send_probe(phy::NodeId src, phy::NodeId dst, phy::DataSize size,
                  ProbeCallback cb);

  // --- observability ---

  [[nodiscard]] const telemetry::Histogram& packet_latency() const { return packet_latency_; }
  [[nodiscard]] const telemetry::Histogram& flow_completion() const { return flow_completion_; }
  [[nodiscard]] const telemetry::Histogram& hop_counts() const { return hop_counts_; }
  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

  /// Cumulative time link `id` spent transmitting (sum over both
  /// directions). The CRC diffs this between control epochs to get
  /// utilisation.
  [[nodiscard]] rsf::sim::SimTime link_busy_time(phy::LinkId id) const;
  /// Mean queueing delay experienced at link `id` since start.
  [[nodiscard]] rsf::sim::SimTime link_mean_queue_delay(phy::LinkId id) const;
  /// Cumulative count of packets that crossed link `id`.
  [[nodiscard]] std::uint64_t link_packets(phy::LinkId id) const;

  /// Switching-element power right now: static per in-use port plus
  /// dynamic switching power from the recent bit rate. `window` sets
  /// how far back "recent" looks.
  [[nodiscard]] double switch_power_watts(
      rsf::sim::SimTime window = rsf::sim::SimTime::milliseconds(1)) const;

  [[nodiscard]] std::uint64_t flows_completed() const { return flows_completed_; }
  [[nodiscard]] std::uint64_t flows_failed() const { return flows_failed_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// Flow-slot pool observability: total slots ever allocated and how
  /// many are currently free. A long-lived service churning millions
  /// of flows holds slots() at its peak concurrency, not its flow
  /// count — completed slots recycle through a SlotPool like probes.
  [[nodiscard]] std::size_t flow_slots() const { return flows_.size(); }
  [[nodiscard]] std::size_t free_flow_slots() const { return flows_.free_count(); }

  /// Physical switching ports currently in use (one per cable end that
  /// terminates in switching logic). Cached against the topology
  /// version — lane-state and reconfig mutations invalidate it.
  [[nodiscard]] std::size_t switching_port_count() const;

 private:
  struct FlowState {
    FlowSpec spec;
    FlowCallback on_complete;
    std::uint64_t packets_total = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t delivered = 0;
    std::uint64_t retransmits = 0;
    /// Packets injected and not yet delivered or dropped (a lost
    /// packet awaiting retransmit still counts). A slot recycles only
    /// at done && inflight == 0, so no in-flight packet can ever see
    /// its slot reused.
    int inflight = 0;
    rsf::sim::SimTime started = rsf::sim::SimTime::zero();
    bool failed = false;
    bool done = false;
  };

  struct PortState {
    rsf::sim::SimTime busy_until = rsf::sim::SimTime::zero();
  };

  struct LinkUse {
    rsf::sim::SimTime busy = rsf::sim::SimTime::zero();
    rsf::sim::SimTime queue_delay_sum = rsf::sim::SimTime::zero();
    std::uint64_t queue_delay_samples = 0;
    std::uint64_t packets = 0;
    std::uint64_t bits = 0;
  };

  struct ProbeState {
    ProbeCallback cb;
  };

  /// SlotPool recycle gate for flows_: a slot returns to the free list
  /// only when the flow is done AND its last in-flight packet (a lost
  /// packet awaiting retransmit included) has drained.
  struct FlowDrained {
    [[nodiscard]] bool operator()(const FlowState& f) const {
      return f.done && f.inflight == 0;
    }
  };

  void pump_flow(std::uint32_t flow_idx);
  void inject(Packet pkt, rsf::sim::SimTime when);
  /// Head of `pkt` is available at `node` at head_ready (switch/NIC
  /// latency already applied); tail fully arrived at tail_ready.
  void hop(Packet pkt, phy::NodeId node, rsf::sim::SimTime head_ready,
           rsf::sim::SimTime tail_ready);
  void deliver(const Packet& pkt, rsf::sim::SimTime when);
  void drop(const Packet& pkt, const char* reason);
  void retransmit(Packet pkt);
  void flow_packet_delivered(std::uint32_t flow_idx);
  void finish_flow(std::uint32_t flow_idx, bool failed);
  /// Release the slot to the free list once the flow is done and its
  /// last straggler packet has drained.
  void maybe_recycle_flow(std::uint32_t flow_idx);
  /// The flow a packet belongs to, or nullptr when the slot has been
  /// recycled since (defensive: the id generation check makes stale
  /// dense indices harmless).
  [[nodiscard]] FlowState* live_flow(const Packet& pkt) {
    if (pkt.flow_idx < 0) return nullptr;
    const auto idx = static_cast<std::uint32_t>(pkt.flow_idx);
    if (idx >= flows_.size() || flows_[idx].spec.id != pkt.flow) return nullptr;
    return &flows_[idx];
  }
  void record_switched_bits(const Packet& pkt);

  /// A port is one cable end in switching use: every link has exactly
  /// two, so (link, side) indexes a dense pool with no hashing.
  [[nodiscard]] PortState& port_at(phy::NodeId node, phy::LinkId link,
                                   const phy::LogicalLink& l) {
    const std::size_t idx = static_cast<std::size_t>(link) * 2 + (l.end_a() == node ? 0 : 1);
    if (idx >= ports_.size()) ports_.resize((static_cast<std::size_t>(link) + 1) * 2);
    return ports_[idx];
  }
  [[nodiscard]] LinkUse& link_use_at(phy::LinkId link) {
    if (link >= link_use_.size()) link_use_.resize(link + 1);
    return link_use_[link];
  }

  rsf::sim::Simulator* sim_;
  phy::PhysicalPlant* plant_;
  Topology* topo_;
  Router* router_;
  NetworkConfig config_;
  rsf::sim::RandomStream rng_;
  rsf::sim::Logger log_;

  // Hot-path state is vector-indexed: ports and link usage by (dense,
  // monotonically assigned) LinkId, flow and probe state by the dense
  // index each Packet carries. The only hash map left is the cold
  // FlowId -> index resolver used at start_flow time.
  std::vector<PortState> ports_;   // 2 slots per link: [link*2 + side]
  std::vector<LinkUse> link_use_;  // by LinkId
  // Flow and probe state live in shared SlotPools addressed by the
  // dense index each Packet carries; flow slots recycle at
  // done + last-straggler-drained (the FlowDrained gate), probe slots
  // at their terminal callback.
  core::SlotPool<FlowState, std::uint64_t, FlowDrained> flows_;
  core::SlotPool<ProbeState> probes_;
  // rsf-lint: order-insensitive(cold point lookups at start_flow/recycle; never iterated)
  std::unordered_map<FlowId, std::uint32_t> flow_index_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_failed_ = 0;

  // Sliding window accounting for dynamic switch power. The log keeps
  // only the trailing retention window (the largest window any power
  // query has asked for): entries age out on append, so the log stays
  // bounded over arbitrarily long runs.
  std::uint64_t switched_bits_total_ = 0;
  std::deque<std::pair<rsf::sim::SimTime, std::uint64_t>> switched_bits_log_;
  /// Cumulative bits (and timestamp) at the newest pruned entry: the
  /// baseline for a query whose window spans the whole retained log,
  /// and the start of the span the log actually covers.
  std::uint64_t switched_bits_pruned_ = 0;
  rsf::sim::SimTime switched_bits_pruned_time_ = rsf::sim::SimTime::zero();
  mutable rsf::sim::SimTime power_retention_ = rsf::sim::SimTime::milliseconds(1);

  // Static switching-end count, cached against the topology version
  // (0 = never computed; real versions start at 1). Lane-state and
  // reconfig mutations bump the version and invalidate it.
  mutable std::uint64_t switching_ends_version_ = 0;
  mutable std::size_t switching_ends_ = 0;

  // Instruments live in the registry (owned locally only when the
  // caller supplied none). Declared after own_registry_ so the
  // references initialize against a live registry.
  std::unique_ptr<telemetry::Registry> own_registry_;
  telemetry::Registry* registry_;
  telemetry::Histogram& packet_latency_;
  telemetry::Histogram& flow_completion_;
  telemetry::Histogram& hop_counts_;
  telemetry::CounterSet& counters_;
  // Per-packet hot-path counter slots (stable references into
  // counters_; see CounterSet::slot).
  std::uint64_t& injected_slot_;
  std::uint64_t& delivered_slot_;
  std::uint64_t& probes_slot_;
};

}  // namespace rsf::fabric
