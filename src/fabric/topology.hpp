// rsf::fabric — the topology view.
//
// Topology is the routing-facing projection of the physical plant: the
// set of nodes and the logical links currently connecting them. It
// stays synchronised with PLP reconfigurations by observing the engine
// (split/bundle/bypass change the link set at simulation time) and
// exposes a monotonically increasing version so routers know when to
// invalidate caches.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "phy/plant.hpp"
#include "phy/types.hpp"
#include "plp/engine.hpp"

namespace rsf::fabric {

/// Grid/torus coordinates attached to nodes by the builders; used by
/// dimension-order routing and by pretty-printers.
struct Coord {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

class Topology {
 public:
  /// Builds the view and subscribes to the engine's change feed.
  /// `plant` and `engine` must outlive the topology.
  Topology(phy::PhysicalPlant* plant, plp::PlpEngine* engine, std::uint32_t node_count);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] std::uint32_t node_count() const { return node_count_; }
  [[nodiscard]] const phy::PhysicalPlant& plant() const { return *plant_; }

  /// Logical links terminating at `node` (any readiness state).
  [[nodiscard]] const std::vector<phy::LinkId>& links_at(phy::NodeId node) const {
    return node < links_at_.size() ? links_at_[node] : empty_;
  }

  /// A link is usable when all its lanes are up and no PLP command is
  /// actuating on it.
  [[nodiscard]] bool usable(phy::LinkId link) const;

  /// All usable links terminating at `node`.
  [[nodiscard]] std::vector<phy::LinkId> usable_links_at(phy::NodeId node) const;

  /// Any usable link between the two nodes (lowest id if several).
  [[nodiscard]] std::optional<phy::LinkId> link_between(phy::NodeId a, phy::NodeId b) const;

  /// Bumped on any structural or readiness change.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  void set_coord(phy::NodeId node, Coord c);
  [[nodiscard]] std::optional<Coord> coord(phy::NodeId node) const {
    return node < coords_.size() ? coords_[node] : std::nullopt;
  }

  /// Grid/torus extents, set by the builders; needed by wrap-aware
  /// dimension-order routing.
  void set_grid_dims(int w, int h) {
    grid_w_ = w;
    grid_h_ = h;
  }
  [[nodiscard]] int grid_w() const { return grid_w_; }
  [[nodiscard]] int grid_h() const { return grid_h_; }

  /// Whether the built topology provides wraparound links per
  /// dimension. Dimension-order routing needs this: on a torus the
  /// shorter ring direction may cross the wrap, on a grid it must not
  /// (preferring a nonexistent wrap ping-pongs packets at the edges).
  void set_wraps(bool x, bool y) {
    wrap_x_ = x;
    wrap_y_ = y;
  }
  [[nodiscard]] bool wrap_x() const { return wrap_x_; }
  [[nodiscard]] bool wrap_y() const { return wrap_y_; }

  /// Force a full rebuild from the plant (builders call this after
  /// creating links outside the engine).
  void rebuild();

 private:
  void on_links_changed(const std::vector<phy::LinkId>& removed,
                        const std::vector<phy::LinkId>& created);

  phy::PhysicalPlant* plant_;
  plp::PlpEngine* engine_;
  std::uint32_t node_count_;
  // Node ids are dense [0, node_count): adjacency and coordinates are
  // plain vectors so the per-hop links_at()/coord() lookups are one
  // index each.
  std::vector<std::vector<phy::LinkId>> links_at_;
  std::vector<std::optional<Coord>> coords_;
  std::uint64_t version_ = 1;
  int grid_w_ = 0;
  int grid_h_ = 0;
  bool wrap_x_ = false;
  bool wrap_y_ = false;
  std::vector<phy::LinkId> empty_;
};

}  // namespace rsf::fabric
