// rsf::fabric — the per-link-direction TDMA slot calendar.
//
// A SlotCalendar is the admission ledger behind the spine's third
// transport regime (beside fraction-carves and pure packet sharing):
// periodic slot schedules over a fixed planning horizon. Time is
// divided into repeating frames of kFrameSlots slots; a booking owns a
// concrete *periodic* slot set — `duty` offsets out of every `period`
// consecutive slots, period dividing the frame so the pattern tiles
// the frame exactly — on one or more *lines* (a line is one spine
// link-direction; the Interconnect keys them (link << 1) | dir).
//
// The calendar is deliberately pure bookkeeping: no simulator, no
// clock, no floating point. The Interconnect maps slot indices to
// simulated time through its slot_duration; tests compare the calendar
// against a brute-force per-slot reference without standing up a
// fleet. Everything is deterministic — propose() scans offsets
// ascending, so equal demand always yields the same slot set.
//
// Admission rule (the mcsotdma ReservationTable discipline): a
// proposed slot set is admitted only when every slot of it is free on
// *every* line it crosses — any third-party contention overlap refuses
// the whole proposal, and book() commits atomically, so a refused or
// failed booking never leaves a partial claim behind. Owners therefore
// never overlap on a line, which is what makes slotted transmission
// collision-free by construction.
//
// Bookings live in a core::SlotPool: handles are generation-stamped,
// so a handle that outlived its booking (released, expired, preempted)
// is detectably stale and inert everywhere it is accepted.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/slot_pool.hpp"

namespace rsf::fabric {

/// One frame's slot ownership as a bitmask: bit s set = slot s of the
/// frame is claimed. The frame is exactly the mask width, so per-line
/// admission is a single AND.
using SlotMask = std::uint64_t;

class SlotCalendar {
 public:
  /// Slots per frame. A power of two equal to the SlotMask width:
  /// every valid period divides it, and the whole frame's occupancy is
  /// one machine word per line.
  static constexpr int kFrameSlots = 64;

  /// A line is one direction of one spine link (or any other
  /// serialized resource the caller keys). The calendar itself only
  /// compares keys.
  using LineId = std::uint64_t;

  /// Versioned handle to a booking. Slots are recycled; the generation
  /// detects a handle that outlived its booking.
  struct Handle {
    static constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;
    std::uint32_t id = kInvalidId;
    std::uint32_t generation = 0;

    [[nodiscard]] bool valid() const { return id != kInvalidId; }
    friend bool operator==(const Handle&, const Handle&) = default;
  };

  /// The periodic mask of one offset: slots {offset, offset + period,
  /// offset + 2·period, ...} within the frame. Throws unless
  /// 0 <= offset < period and period validly divides the frame.
  [[nodiscard]] static SlotMask periodic_mask(int period, int offset);

  /// Propose a slot set with `duty` owned offsets per `period` slots,
  /// free on every line of `lines` simultaneously: offsets are scanned
  /// ascending and the first `duty` contention-free ones win
  /// (deterministic). Returns 0 when fewer than `duty` offsets are
  /// free — the caller must treat 0 as a refusal, never book it.
  /// Throws on invalid period/duty (period must divide kFrameSlots,
  /// 1 <= duty <= period).
  [[nodiscard]] SlotMask propose(const std::vector<LineId>& lines, int period,
                                 int duty) const;

  /// Book `mask` on every line of `lines` atomically. Refuses
  /// (invalid handle) when the mask is 0, `lines` is empty, a line
  /// repeats, or any line already has any of the mask's slots claimed
  /// — no partial booking ever happens. A booked handle stays valid
  /// until release().
  [[nodiscard]] Handle book(std::vector<LineId> lines, SlotMask mask);

  /// Release the booking and return exactly its booked slots on every
  /// line. Stale handles are an inert no-op (returns false).
  bool release(Handle h);

  /// True while `h` names a live booking (same generation).
  [[nodiscard]] bool active(Handle h) const { return live(h) != nullptr; }
  /// The booking's slot set (0 for a stale handle).
  [[nodiscard]] SlotMask mask(Handle h) const;
  /// The booking's lines. Throws on stale handles — check active().
  [[nodiscard]] const std::vector<LineId>& lines(Handle h) const;

  /// Claimed slots of `line` (0 for a line never booked).
  [[nodiscard]] SlotMask occupancy(LineId line) const;
  /// Free slots of `line` out of kFrameSlots.
  [[nodiscard]] int free_slots(LineId line) const;

  /// Live bookings right now.
  [[nodiscard]] std::size_t booking_count() const {
    return bookings_.size() - bookings_.free_count();
  }

  /// Test seam: force a booking slot's generation so wrap-around
  /// staleness is coverable without 2^32 book/release cycles.
  void set_generation_for_test(std::uint32_t index, std::uint32_t generation) {
    bookings_.set_generation_for_test(index, generation);
  }

 private:
  struct Booking {
    std::vector<LineId> lines;
    SlotMask mask = 0;
  };

  [[nodiscard]] const Booking* live(Handle h) const {
    return bookings_.get_live(h.id, h.generation);
  }
  static void validate_shape(int period, int duty);

  core::SlotPool<Booking> bookings_;
  /// Per-line occupancy; absent means fully free. Entries are erased
  /// when they return to 0, so a drained calendar leaves no residue.
  std::map<LineId, SlotMask> lines_;
};

}  // namespace rsf::fabric
