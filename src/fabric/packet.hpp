// rsf::fabric — packets and flows.
#pragma once

#include <cstdint>

#include "phy/types.hpp"
#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::fabric {

using FlowId = std::uint64_t;
inline constexpr FlowId kNoFlow = 0;

/// A packet in flight. Packets are passed by value through hop events;
/// there is no central packet table.
struct Packet {
  std::uint64_t id = 0;
  FlowId flow = kNoFlow;
  std::uint64_t seq = 0;  // sequence within the flow
  phy::NodeId src = phy::kInvalidNode;
  phy::NodeId dst = phy::kInvalidNode;
  phy::DataSize size = phy::DataSize::zero();
  rsf::sim::SimTime injected = rsf::sim::SimTime::zero();
  int hops = 0;
  int retries = 0;
  /// Dense index of the owning flow (or probe) in the transport's
  /// id-indexed pools; resolved once at injection so the per-hop path
  /// never hashes the 64-bit flow id. < 0 means "none".
  std::int32_t flow_idx = -1;
  std::int32_t probe_idx = -1;
};

/// A flow request: `size` bytes from src to dst, injected as
/// `packet_size` packets starting at `start`.
struct FlowSpec {
  FlowId id = kNoFlow;
  phy::NodeId src = phy::kInvalidNode;
  phy::NodeId dst = phy::kInvalidNode;
  phy::DataSize size = phy::DataSize::zero();
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
};

/// Completion record for a finished flow.
struct FlowResult {
  FlowSpec spec;
  rsf::sim::SimTime started = rsf::sim::SimTime::zero();
  rsf::sim::SimTime finished = rsf::sim::SimTime::zero();
  std::uint64_t packets = 0;
  std::uint64_t retransmits = 0;
  bool failed = false;

  [[nodiscard]] rsf::sim::SimTime completion_time() const { return finished - started; }
};

}  // namespace rsf::fabric
