#include "fabric/slot_calendar.hpp"

#include <bit>
#include <stdexcept>

namespace rsf::fabric {

void SlotCalendar::validate_shape(int period, int duty) {
  if (period < 1 || period > kFrameSlots || kFrameSlots % period != 0) {
    throw std::invalid_argument("SlotCalendar: period must divide the frame");
  }
  if (duty < 1 || duty > period) {
    throw std::invalid_argument("SlotCalendar: duty outside [1, period]");
  }
}

SlotMask SlotCalendar::periodic_mask(int period, int offset) {
  validate_shape(period, 1);
  if (offset < 0 || offset >= period) {
    throw std::invalid_argument("SlotCalendar: offset outside [0, period)");
  }
  SlotMask m = 0;
  for (int s = offset; s < kFrameSlots; s += period) m |= SlotMask{1} << s;
  return m;
}

SlotMask SlotCalendar::propose(const std::vector<LineId>& lines, int period,
                               int duty) const {
  validate_shape(period, duty);
  SlotMask combined = 0;
  int found = 0;
  for (int offset = 0; offset < period && found < duty; ++offset) {
    const SlotMask candidate = periodic_mask(period, offset);
    bool free = true;
    for (const LineId line : lines) {
      if ((occupancy(line) & candidate) != 0) {
        free = false;
        break;
      }
    }
    if (free) {
      combined |= candidate;
      ++found;
    }
  }
  return found == duty ? combined : 0;
}

SlotCalendar::Handle SlotCalendar::book(std::vector<LineId> lines, SlotMask mask) {
  if (mask == 0 || lines.empty()) return {};
  // A repeated line would double-claim the same slots against itself
  // and release() would then clear them twice — refuse the malformed
  // booking outright instead.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      if (lines[i] == lines[j]) return {};
    }
  }
  // Admission before any mutation: an overlap on the last line must
  // leave the first line's occupancy untouched.
  for (const LineId line : lines) {
    if ((occupancy(line) & mask) != 0) return {};
  }
  for (const LineId line : lines) lines_[line] |= mask;
  const auto slot = bookings_.claim();
  Booking& b = bookings_[slot.index];
  b.lines = std::move(lines);
  b.mask = mask;
  return Handle{slot.index, slot.generation};
}

bool SlotCalendar::release(Handle h) {
  const Booking* b = live(h);
  if (b == nullptr) return false;  // stale: idempotent no-op
  for (const LineId line : b->lines) {
    const auto it = lines_.find(line);
    it->second &= ~b->mask;
    if (it->second == 0) lines_.erase(it);
  }
  bookings_.recycle(h.id);
  return true;
}

SlotMask SlotCalendar::mask(Handle h) const {
  const Booking* b = live(h);
  return b != nullptr ? b->mask : 0;
}

const std::vector<SlotCalendar::LineId>& SlotCalendar::lines(Handle h) const {
  const Booking* b = live(h);
  if (b == nullptr) throw std::invalid_argument("SlotCalendar: stale booking handle");
  return b->lines;
}

SlotMask SlotCalendar::occupancy(LineId line) const {
  const auto it = lines_.find(line);
  return it != lines_.end() ? it->second : 0;
}

int SlotCalendar::free_slots(LineId line) const {
  return kFrameSlots - std::popcount(occupancy(line));
}

}  // namespace rsf::fabric
