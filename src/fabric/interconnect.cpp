#include "fabric/interconnect.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

namespace rsf::fabric {

using rsf::sim::SimTime;

namespace {
/// Validated before the member initializers dereference it.
telemetry::Registry& checked(telemetry::Registry* registry) {
  if (registry == nullptr) throw std::invalid_argument("Interconnect: null registry");
  return *registry;
}
}  // namespace

Interconnect::Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry)
    : sim_(sim),
      counters_(checked(registry).counters("spine")),
      transfer_latency_(registry->histogram("spine.transfer_latency")),
      queue_delay_(registry->histogram("spine.queue_delay")) {
  if (sim_ == nullptr) {
    throw std::invalid_argument("Interconnect: null simulator");
  }
}

SpineLinkId Interconnect::add_link(SpineLinkParams params) {
  if (params.a.rack == params.b.rack) {
    throw std::invalid_argument("Interconnect: spine link must join two racks");
  }
  if (params.rate.gbps_value() <= 0) {
    throw std::invalid_argument("Interconnect: non-positive spine rate");
  }
  const auto id = static_cast<SpineLinkId>(links_.size());
  max_rack_ = std::max({max_rack_, params.a.rack, params.b.rack});
  links_.push_back(SpineLink{params, true, {}});
  counters_.add("spine.links_added");
  return id;
}

const Interconnect::SpineLink& Interconnect::at(SpineLinkId id) const {
  if (id >= links_.size()) throw std::invalid_argument("Interconnect: unknown spine link");
  return links_[id];
}

const SpineLinkParams& Interconnect::link(SpineLinkId id) const { return at(id).params; }

void Interconnect::set_link_up(SpineLinkId id, bool up) {
  at(id);  // validate
  links_[id].up = up;
  counters_.add(up ? "spine.links_restored" : "spine.links_failed");
}

bool Interconnect::link_up(SpineLinkId id) const { return at(id).up; }

int Interconnect::direction_index(const SpineLink& l, std::uint32_t from_rack) const {
  if (from_rack == l.params.a.rack) return 0;
  if (from_rack == l.params.b.rack) return 1;
  throw std::invalid_argument("Interconnect: rack is not an endpoint of the spine link");
}

const RackNode& Interconnect::far_end(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return direction_index(l, from_rack) == 0 ? l.params.b : l.params.a;
}

std::optional<std::vector<SpineLinkId>> Interconnect::route(std::uint32_t src_rack,
                                                            std::uint32_t dst_rack) const {
  if (src_rack == dst_rack) return std::vector<SpineLinkId>{};
  // Racks are few (a fleet is N racks, not N nodes): a fresh BFS per
  // query is cheaper than keeping an adjacency index coherent.
  const std::size_t racks = static_cast<std::size_t>(max_rack_) + 1;
  if (src_rack >= racks || dst_rack >= racks) return std::nullopt;
  constexpr SpineLinkId kNone = static_cast<SpineLinkId>(-1);
  std::vector<SpineLinkId> via(racks, kNone);
  std::vector<bool> seen(racks, false);
  std::queue<std::uint32_t> frontier;
  seen[src_rack] = true;
  frontier.push(src_rack);
  while (!frontier.empty() && !seen[dst_rack]) {
    const std::uint32_t rack = frontier.front();
    frontier.pop();
    // Link ids ascend, so the first edge reaching a rack is the
    // lowest-id edge at the shortest depth: deterministic ties.
    for (SpineLinkId id = 0; id < links_.size(); ++id) {
      const SpineLink& l = links_[id];
      if (!l.up) continue;
      std::uint32_t next;
      if (l.params.a.rack == rack) {
        next = l.params.b.rack;
      } else if (l.params.b.rack == rack) {
        next = l.params.a.rack;
      } else {
        continue;
      }
      if (seen[next]) continue;
      seen[next] = true;
      via[next] = id;
      frontier.push(next);
    }
  }
  if (!seen[dst_rack]) return std::nullopt;
  std::vector<SpineLinkId> path;
  for (std::uint32_t rack = dst_rack; rack != src_rack;) {
    const SpineLinkId id = via[rack];
    path.push_back(id);
    const SpineLink& l = links_[id];
    rack = l.params.a.rack == rack ? l.params.b.rack : l.params.a.rack;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool Interconnect::transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                            DeliveryCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.transfers_refused");
    return false;
  }
  Direction& dir = links_[id].dir[d];
  const SimTime now = sim_->now();
  const SimTime start = std::max(now, dir.busy_until);
  const SimTime serialization = phy::transmission_time(size, l.params.rate);
  dir.busy_until = start + serialization;
  dir.busy_total += serialization;
  const SimTime arrival = dir.busy_until + l.params.latency;
  counters_.add("spine.transfers");
  counters_.add("spine.bytes",
                static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8)));
  queue_delay_.record(start - now);
  transfer_latency_.record(arrival - now);
  if (cb) {
    sim_->schedule_at(arrival, [cb = std::move(cb), arrival] { cb(arrival); });
  }
  return true;
}

SimTime Interconnect::busy_time(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].busy_total;
}

}  // namespace rsf::fabric
