#include "fabric/interconnect.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace rsf::fabric {

using rsf::sim::SimTime;

namespace {
/// Validated before the member initializers dereference it.
telemetry::Registry& checked(telemetry::Registry* registry) {
  if (registry == nullptr) throw std::invalid_argument("Interconnect: null registry");
  return *registry;
}

constexpr SpineLinkId kNone = static_cast<SpineLinkId>(-1);
}  // namespace

Interconnect::Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry,
                           std::uint64_t seed)
    : sim_(sim),
      rng_(seed, "spine"),
      counters_(checked(registry).counters("spine")),
      packets_slot_(counters_.slot("spine.packets")),
      bytes_slot_(counters_.slot("spine.bytes")),
      drops_slot_(counters_.slot("spine.packet_drops")),
      transfer_latency_(registry->histogram("spine.transfer_latency")),
      queue_delay_(registry->histogram("spine.queue_delay")) {
  if (sim_ == nullptr) {
    throw std::invalid_argument("Interconnect: null simulator");
  }
}

SpineLinkId Interconnect::add_link(SpineLinkParams params) {
  if (params.a.rack == params.b.rack) {
    throw std::invalid_argument("Interconnect: spine link must join two racks");
  }
  if (params.rate.gbps_value() <= 0) {
    throw std::invalid_argument("Interconnect: non-positive spine rate");
  }
  if (params.cost <= 0) {
    throw std::invalid_argument("Interconnect: non-positive spine cost");
  }
  if (params.loss_prob < 0 || params.loss_prob >= 1) {
    throw std::invalid_argument("Interconnect: loss_prob outside [0, 1)");
  }
  const auto id = static_cast<SpineLinkId>(links_.size());
  max_rack_ = std::max({max_rack_, params.a.rack, params.b.rack});
  SpineLink l;
  l.params = params;
  l.cost = params.cost;
  l.packets_slot = &counters_.slot("spine.link" + std::to_string(id) + ".packets");
  links_.push_back(std::move(l));
  ++version_;
  counters_.add("spine.links_added");
  return id;
}

const Interconnect::SpineLink& Interconnect::at(SpineLinkId id) const {
  if (id >= links_.size()) throw std::invalid_argument("Interconnect: unknown spine link");
  return links_[id];
}

const SpineLinkParams& Interconnect::link(SpineLinkId id) const { return at(id).params; }

void Interconnect::set_link_up(SpineLinkId id, bool up) {
  static_cast<void>(at(id));  // validate
  links_[id].up = up;
  ++version_;
  counters_.add(up ? "spine.links_restored" : "spine.links_failed");
}

bool Interconnect::link_up(SpineLinkId id) const { return at(id).up; }

void Interconnect::set_link_cost(SpineLinkId id, double cost) {
  static_cast<void>(at(id));  // validate
  if (cost <= 0) throw std::invalid_argument("Interconnect: non-positive spine cost");
  if (links_[id].cost == cost) return;
  links_[id].cost = cost;
  ++version_;
  counters_.add("spine.reprices");
}

double Interconnect::link_cost(SpineLinkId id) const { return at(id).cost; }

int Interconnect::direction_index(const SpineLink& l, std::uint32_t from_rack) const {
  if (from_rack == l.params.a.rack) return 0;
  if (from_rack == l.params.b.rack) return 1;
  throw std::invalid_argument("Interconnect: rack is not an endpoint of the spine link");
}

const RackNode& Interconnect::far_end(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return direction_index(l, from_rack) == 0 ? l.params.b : l.params.a;
}

std::optional<std::vector<SpineLinkId>> Interconnect::route(std::uint32_t src_rack,
                                                            std::uint32_t dst_rack) const {
  if (cache_version_ != version_) {
    route_cache_.clear();
    cache_version_ = version_;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(src_rack) << 32) | dst_rack;
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    counters_.add("spine.route_cache_hits");
    return it->second;
  }
  counters_.add("spine.route_cache_misses");
  auto r = compute_route(src_rack, dst_rack);
  route_cache_.emplace(key, r);
  return r;
}

std::optional<std::vector<SpineLinkId>> Interconnect::compute_route(
    std::uint32_t src_rack, std::uint32_t dst_rack) const {
  if (src_rack == dst_rack) return std::vector<SpineLinkId>{};
  // Racks are few (a fleet is N racks, not N nodes): a fresh search
  // per miss is cheaper than keeping an adjacency index coherent, and
  // route() memoizes the result anyway.
  const std::size_t racks = static_cast<std::size_t>(max_rack_) + 1;
  if (src_rack >= racks || dst_rack >= racks) return std::nullopt;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(racks, kInf);
  std::vector<int> hops(racks, std::numeric_limits<int>::max());
  std::vector<SpineLinkId> via(racks, kNone);
  // (cost, hops, rack) min-heap: ties resolve toward fewer hops, then
  // toward the expansion from the lowest-id rack (pop order), and
  // relaxation scans link ids ascending, so among equal candidates
  // out of one rack the lowest-id edge wins. Deterministic — every
  // run picks the same route for the same graph and costs.
  using Item = std::tuple<double, int, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  cost[src_rack] = 0;
  hops[src_rack] = 0;
  frontier.emplace(0.0, 0, src_rack);
  while (!frontier.empty()) {
    const auto [c, h, rack] = frontier.top();
    frontier.pop();
    if (c > cost[rack] || (c == cost[rack] && h > hops[rack])) continue;  // stale
    if (rack == dst_rack) break;
    for (SpineLinkId id = 0; id < links_.size(); ++id) {
      const SpineLink& l = links_[id];
      if (!l.up) continue;
      std::uint32_t next;
      if (l.params.a.rack == rack) {
        next = l.params.b.rack;
      } else if (l.params.b.rack == rack) {
        next = l.params.a.rack;
      } else {
        continue;
      }
      const double nc = c + l.cost;
      const int nh = h + 1;
      if (nc < cost[next] || (nc == cost[next] && nh < hops[next])) {
        cost[next] = nc;
        hops[next] = nh;
        via[next] = id;
        frontier.emplace(nc, nh, next);
      }
    }
  }
  if (via[dst_rack] == kNone) return std::nullopt;
  std::vector<SpineLinkId> path;
  for (std::uint32_t rack = dst_rack; rack != src_rack;) {
    const SpineLinkId id = via[rack];
    path.push_back(id);
    const SpineLink& l = links_[id];
    rack = l.params.a.rack == rack ? l.params.b.rack : l.params.a.rack;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

SimTime Interconnect::occupy(SpineLink& l, int d, phy::DataSize size) {
  Direction& dir = l.dir[d];
  const SimTime now = sim_->now();
  const SimTime start = std::max(now, dir.busy_until);
  const SimTime serialization = phy::transmission_time(size, l.params.rate);
  dir.busy_until = start + serialization;
  dir.busy_total += serialization;
  const SimTime arrival = dir.busy_until + l.params.latency;
  bytes_slot_ += static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8));
  queue_delay_.record(start - now);
  transfer_latency_.record(arrival - now);
  return arrival;
}

bool Interconnect::send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                               PacketCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.packets_refused");
    return false;
  }
  SpineLink& ml = links_[id];
  const SimTime arrival = occupy(ml, d, size);
  ++ml.dir[d].packets;
  ++packets_slot_;
  ++*ml.packets_slot;
  // Loss is decided at send time but observed at arrival (the far
  // gateway's FEC decoder gives up on the mangled frame there).
  const bool lost = ml.params.loss_prob > 0.0 && rng_.bernoulli(ml.params.loss_prob);
  if (lost) {
    ++ml.dir[d].drops;
    ++drops_slot_;
  }
  if (cb) {
    sim_->schedule_at(arrival,
                      [cb = std::move(cb), arrival, lost] { cb(arrival, !lost); });
  }
  return true;
}

bool Interconnect::transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                            DeliveryCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.transfers_refused");
    return false;
  }
  const SimTime arrival = occupy(links_[id], d, size);
  counters_.add("spine.transfers");
  if (cb) {
    sim_->schedule_at(arrival, [cb = std::move(cb), arrival] { cb(arrival); });
  }
  return true;
}

SimTime Interconnect::busy_time(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].busy_total;
}

SimTime Interconnect::queue_backlog(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  const SimTime until = l.dir[direction_index(l, from_rack)].busy_until;
  return until > sim_->now() ? until - sim_->now() : SimTime::zero();
}

std::uint64_t Interconnect::link_packets(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].packets;
}

std::uint64_t Interconnect::link_drops(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].drops;
}

}  // namespace rsf::fabric
