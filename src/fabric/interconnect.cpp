#include "fabric/interconnect.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace rsf::fabric {

using rsf::sim::SimTime;

namespace {
/// Validated before the member initializers dereference it.
telemetry::Registry& checked(telemetry::Registry* registry) {
  if (registry == nullptr) throw std::invalid_argument("Interconnect: null registry");
  return *registry;
}

constexpr SpineLinkId kNone = static_cast<SpineLinkId>(-1);
}  // namespace

Interconnect::Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry,
                           std::uint64_t seed)
    : sim_(sim),
      rng_(seed, "spine"),
      counters_(checked(registry).counters("spine")),
      packets_slot_(counters_.slot("spine.packets")),
      bytes_slot_(counters_.slot("spine.bytes")),
      drops_slot_(counters_.slot("spine.packet_drops")),
      reserved_bytes_slot_(counters_.slot("spine.reserved_bytes")),
      slotted_bytes_slot_(counters_.slot("spine.slotted_bytes")),
      transfer_latency_(registry->histogram("spine.transfer_latency")),
      queue_delay_(registry->histogram("spine.queue_delay")) {
  if (sim_ == nullptr) {
    throw std::invalid_argument("Interconnect: null simulator");
  }
}

SpineLinkId Interconnect::add_link(SpineLinkParams params) {
  if (params.a.rack == params.b.rack) {
    throw std::invalid_argument("Interconnect: spine link must join two racks");
  }
  if (params.rate.gbps_value() <= 0) {
    throw std::invalid_argument("Interconnect: non-positive spine rate");
  }
  if (params.cost <= 0) {
    throw std::invalid_argument("Interconnect: non-positive spine cost");
  }
  // The closed interval: loss_prob == 1 is a blackhole link — a
  // legitimate chaos configuration (the retransmit path above it is
  // bounded by max_retries), not a misconfiguration.
  if (params.loss_prob < 0 || params.loss_prob > 1) {
    throw std::invalid_argument("Interconnect: loss_prob outside [0, 1]");
  }
  const auto id = static_cast<SpineLinkId>(links_.size());
  max_rack_ = std::max({max_rack_, params.a.rack, params.b.rack});
  SpineLink l;
  l.params = params;
  l.cost = params.cost;
  l.packets_slot = &counters_.slot("spine.link" + std::to_string(id) + ".packets");
  links_.push_back(std::move(l));
  ++version_;
  counters_.add("spine.links_added");
  return id;
}

const Interconnect::SpineLink& Interconnect::at(SpineLinkId id) const {
  if (id >= links_.size()) throw std::invalid_argument("Interconnect: unknown spine link");
  return links_[id];
}

const SpineLinkParams& Interconnect::link(SpineLinkId id) const { return at(id).params; }

rsf::sim::SimTime Interconnect::min_lookahead() const {
  rsf::sim::SimTime floor = rsf::sim::SimTime::infinity();
  // Administrative state is ignored on purpose: a down link can come
  // back up mid-run, and the horizon must already have accounted for
  // it (lookahead is a static property of the fabric, not of the
  // moment's routing table).
  for (const SpineLink& l : links_) floor = std::min(floor, l.params.latency);
  return floor;
}

void Interconnect::set_link_up(SpineLinkId id, bool up) {
  static_cast<void>(at(id));  // validate
  // Idempotent: overlapping shared-risk groups legitimately fail the
  // same link twice. A repeated set must not double-count the
  // links_failed/restored transition, invalidate routes, or re-walk
  // the (already emptied) preemption scan.
  if (links_[id].up == up) return;
  links_[id].up = up;
  ++version_;
  counters_.add(up ? "spine.links_restored" : "spine.links_failed");
  if (!up) {
    // A failed link preempts every reservation pinned across it: the
    // carve returns to the residual and holders' handles go stale, so
    // their traffic falls back to the shared FIFO of whatever route
    // the transport re-plans.
    for (std::uint32_t idx = 0; idx < reservations_.size(); ++idx) {
      if (!reservations_.live(idx)) continue;
      const Reservation& r = reservations_[idx];
      if (std::find(r.route.begin(), r.route.end(), id) == r.route.end()) continue;
      teardown_reservation(idx);
      counters_.add("spine.reservation_preemptions");
    }
    // Slot schedules pinned across the dead link are preempted the
    // same way: slots return to the calendar, the residual share
    // comes back, and holders degrade through the stale handle.
    for (std::uint32_t idx = 0; idx < schedules_.size(); ++idx) {
      if (!schedules_.live(idx)) continue;
      const SlotSchedule& s = schedules_[idx];
      if (std::find(s.route.begin(), s.route.end(), id) == s.route.end()) continue;
      teardown_schedule(idx);
      counters_.add("spine.slot_preemptions");
    }
  }
}

bool Interconnect::link_up(SpineLinkId id) const { return at(id).up; }

Interconnect::SrlgId Interconnect::add_shared_risk_group(std::vector<SpineLinkId> links) {
  if (links.empty()) {
    throw std::invalid_argument("Interconnect: empty shared-risk group");
  }
  for (const SpineLinkId id : links) static_cast<void>(at(id));  // validate
  const auto gid = static_cast<SrlgId>(srlgs_.size());
  srlgs_.push_back(SharedRiskGroup{std::move(links), true});
  return gid;
}

void Interconnect::set_group_up(SrlgId group, bool up) {
  if (group >= srlgs_.size()) {
    throw std::invalid_argument("Interconnect: unknown shared-risk group");
  }
  SharedRiskGroup& g = srlgs_[group];
  if (g.up == up) return;  // idempotent at group granularity
  g.up = up;
  if (!up) {
    // Record which members this cut actually transitioned: links an
    // overlapping group (or a direct set_link_up) already failed are
    // not this group's to restore.
    g.took_down.clear();
    for (const SpineLinkId id : g.links) {
      if (!links_[id].up) continue;
      set_link_up(id, false);
      g.took_down.push_back(id);
    }
    counters_.add("spine.srlg_cuts");
    return;
  }
  // Repair restores exactly the members the cut took down. A cut that
  // took nothing down (every member was already failed by an
  // overlapping group) repairs as a pure no-op — no link transition,
  // no version bump, no route-cache flush — instead of resurrecting
  // links a still-cut group holds; the counter keeps the phantom
  // visible to chaos timelines that emit one.
  if (g.took_down.empty()) {
    counters_.add("spine.srlg_noop_repairs");
    return;
  }
  counters_.add("spine.srlg_repairs");
  for (const SpineLinkId id : g.took_down) set_link_up(id, true);
  g.took_down.clear();
}

bool Interconnect::group_up(SrlgId group) const {
  if (group >= srlgs_.size()) {
    throw std::invalid_argument("Interconnect: unknown shared-risk group");
  }
  return srlgs_[group].up;
}

const std::vector<SpineLinkId>& Interconnect::shared_risk_group(SrlgId group) const {
  if (group >= srlgs_.size()) {
    throw std::invalid_argument("Interconnect: unknown shared-risk group");
  }
  return srlgs_[group].links;
}

std::vector<SpineLinkId> Interconnect::rack_attachments(std::uint32_t rack) const {
  std::vector<SpineLinkId> out;
  for (SpineLinkId id = 0; id < links_.size(); ++id) {
    const SpineLinkParams& p = links_[id].params;
    if (p.a.rack == rack || p.b.rack == rack) out.push_back(id);
  }
  return out;
}

void Interconnect::set_link_cost(SpineLinkId id, double cost) {
  static_cast<void>(at(id));  // validate
  if (cost <= 0) throw std::invalid_argument("Interconnect: non-positive spine cost");
  if (links_[id].cost == cost) return;
  links_[id].cost = cost;
  ++version_;
  counters_.add("spine.reprices");
}

double Interconnect::link_cost(SpineLinkId id) const { return at(id).cost; }

int Interconnect::direction_index(const SpineLink& l, std::uint32_t from_rack) const {
  if (from_rack == l.params.a.rack) return 0;
  if (from_rack == l.params.b.rack) return 1;
  throw std::invalid_argument("Interconnect: rack is not an endpoint of the spine link");
}

const RackNode& Interconnect::far_end(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return direction_index(l, from_rack) == 0 ? l.params.b : l.params.a;
}

std::optional<std::vector<SpineLinkId>> Interconnect::route(std::uint32_t src_rack,
                                                            std::uint32_t dst_rack) const {
  if (cache_version_ != version_) {
    route_cache_.clear();
    cache_version_ = version_;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(src_rack) << 32) | dst_rack;
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    counters_.add("spine.route_cache_hits");
    return it->second;
  }
  counters_.add("spine.route_cache_misses");
  auto r = compute_route(src_rack, dst_rack);
  route_cache_.emplace(key, r);
  return r;
}

std::optional<std::vector<SpineLinkId>> Interconnect::compute_route(
    std::uint32_t src_rack, std::uint32_t dst_rack) const {
  return compute_route_avoiding(src_rack, dst_rack, {});
}

std::optional<std::vector<SpineLinkId>> Interconnect::compute_route_avoiding(
    std::uint32_t src_rack, std::uint32_t dst_rack,
    const std::vector<SpineLinkId>& avoid) const {
  if (src_rack == dst_rack) return std::vector<SpineLinkId>{};
  // Racks are few (a fleet is N racks, not N nodes): a fresh search
  // per miss is cheaper than keeping an adjacency index coherent, and
  // route() memoizes the result anyway.
  const std::size_t racks = static_cast<std::size_t>(max_rack_) + 1;
  if (src_rack >= racks || dst_rack >= racks) return std::nullopt;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(racks, kInf);
  std::vector<int> hops(racks, std::numeric_limits<int>::max());
  std::vector<SpineLinkId> via(racks, kNone);
  // (cost, hops, rack) min-heap: ties resolve toward fewer hops, then
  // toward the expansion from the lowest-id rack (pop order), and
  // relaxation scans link ids ascending, so among equal candidates
  // out of one rack the lowest-id edge wins. Deterministic — every
  // run picks the same route for the same graph and costs.
  using Item = std::tuple<double, int, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  cost[src_rack] = 0;
  hops[src_rack] = 0;
  frontier.emplace(0.0, 0, src_rack);
  while (!frontier.empty()) {
    const auto [c, h, rack] = frontier.top();
    frontier.pop();
    if (c > cost[rack] || (c == cost[rack] && h > hops[rack])) continue;  // stale
    if (rack == dst_rack) break;
    for (SpineLinkId id = 0; id < links_.size(); ++id) {
      const SpineLink& l = links_[id];
      if (!l.up) continue;
      if (std::find(avoid.begin(), avoid.end(), id) != avoid.end()) continue;
      std::uint32_t next;
      if (l.params.a.rack == rack) {
        next = l.params.b.rack;
      } else if (l.params.b.rack == rack) {
        next = l.params.a.rack;
      } else {
        continue;
      }
      const double nc = c + l.cost;
      const int nh = h + 1;
      if (nc < cost[next] || (nc == cost[next] && nh < hops[next])) {
        cost[next] = nc;
        hops[next] = nh;
        via[next] = id;
        frontier.emplace(nc, nh, next);
      }
    }
  }
  if (via[dst_rack] == kNone) return std::nullopt;
  std::vector<SpineLinkId> path;
  for (std::uint32_t rack = dst_rack; rack != src_rack;) {
    const SpineLinkId id = via[rack];
    path.push_back(id);
    const SpineLink& l = links_[id];
    rack = l.params.a.rack == rack ? l.params.b.rack : l.params.a.rack;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// ---------------------------------------------------------------------------
// Circuit reservations.
// ---------------------------------------------------------------------------

std::optional<SpineReservationHandle> Interconnect::reserve(std::uint32_t src_rack,
                                                            std::uint32_t dst_rack,
                                                            double bandwidth_fraction) {
  if (bandwidth_fraction <= 0 || bandwidth_fraction >= 1) {
    throw std::invalid_argument("Interconnect: reservation fraction outside (0, 1)");
  }
  if (src_rack == dst_rack) return std::nullopt;
  if (reservation_by_pair_.contains(pair_key(src_rack, dst_rack))) return std::nullopt;
  auto route_opt = compute_route(src_rack, dst_rack);
  if (!route_opt || route_opt->empty()) return std::nullopt;
  const std::vector<SpineLinkId>& route = *route_opt;
  // Admission: every crossed direction must keep a positive residual
  // after the carve. Checked before any mutation, so a refused
  // reservation leaves no partial carve behind.
  std::vector<int> hop_dir(route.size());
  std::uint32_t rack = src_rack;
  for (std::size_t h = 0; h < route.size(); ++h) {
    const SpineLink& l = at(route[h]);
    const int d = direction_index(l, rack);
    if (l.dir[d].reserved_fraction + l.dir[d].slotted_fraction + bandwidth_fraction >=
        1.0) {
      counters_.add("spine.reservations_refused");
      return std::nullopt;
    }
    hop_dir[h] = d;
    rack = far_end(route[h], rack).rack;
  }
  for (std::size_t h = 0; h < route.size(); ++h) {
    links_[route[h]].dir[hop_dir[h]].reserved_fraction += bandwidth_fraction;
  }
  const auto slot = reservations_.claim();
  Reservation& r = reservations_[slot.index];
  r.src_rack = src_rack;
  r.dst_rack = dst_rack;
  r.fraction = bandwidth_fraction;
  r.route = route;
  r.hop_dir = std::move(hop_dir);
  r.hop_busy_until.assign(route.size(), SimTime::zero());
  reservation_by_pair_[pair_key(src_rack, dst_rack)] = slot.index;
  ++reservation_version_;
  counters_.add("spine.reservations");
  return SpineReservationHandle{slot.index, slot.generation};
}

void Interconnect::teardown_reservation(std::uint32_t idx) {
  const Reservation& r = reservations_[idx];
  for (std::size_t h = 0; h < r.route.size(); ++h) {
    double& carved = links_[r.route[h]].dir[r.hop_dir[h]].reserved_fraction;
    carved -= r.fraction;
    // Float hygiene: a direction whose last reservation left must
    // serialize at exactly the full link rate again.
    if (carved < 1e-12) carved = 0.0;
  }
  reservation_by_pair_.erase(pair_key(r.src_rack, r.dst_rack));
  // The recycle bumps the slot generation, stale-ifying every
  // outstanding handle.
  reservations_.recycle(idx);
  ++reservation_version_;
}

void Interconnect::release(SpineReservationHandle handle) {
  if (live_reservation(handle) == nullptr) return;  // stale: idempotent no-op
  teardown_reservation(handle.id);
  counters_.add("spine.reservation_releases");
}

bool Interconnect::reservation_active(SpineReservationHandle handle) const {
  return live_reservation(handle) != nullptr;
}

std::optional<SpineReservationHandle> Interconnect::find_reservation(
    std::uint32_t src_rack, std::uint32_t dst_rack) const {
  const auto it = reservation_by_pair_.find(pair_key(src_rack, dst_rack));
  if (it == reservation_by_pair_.end()) return std::nullopt;
  return SpineReservationHandle{it->second, reservations_.generation(it->second)};
}

const std::vector<SpineLinkId>& Interconnect::reservation_route(
    SpineReservationHandle handle) const {
  const Reservation* r = live_reservation(handle);
  if (r == nullptr) throw std::invalid_argument("Interconnect: stale reservation handle");
  return r->route;
}

double Interconnect::reservation_fraction(SpineReservationHandle handle) const {
  const Reservation* r = live_reservation(handle);
  if (r == nullptr) throw std::invalid_argument("Interconnect: stale reservation handle");
  return r->fraction;
}

double Interconnect::reserved_fraction(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].reserved_fraction;
}

phy::DataRate Interconnect::residual_rate(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  // Same expression occupy() serializes shared traffic at: × (1 − 0.0
  // − 0.0) is exact, so an uncarved, unslotted direction advertises
  // the nameplate rate.
  const Direction& dir = l.dir[direction_index(l, from_rack)];
  return l.params.rate * (1.0 - dir.reserved_fraction - dir.slotted_fraction);
}

// ---------------------------------------------------------------------------
// Slot schedules (the TDMA regime).
// ---------------------------------------------------------------------------

void Interconnect::set_slot_duration(SimTime d) {
  if (d <= SimTime::zero()) {
    throw std::invalid_argument("Interconnect: non-positive slot duration");
  }
  if (schedule_count() > 0) {
    throw std::logic_error(
        "Interconnect: slot duration cannot change under live schedules");
  }
  slot_duration_ = d;
}

void Interconnect::set_slot_timeout(SimTime timeout) {
  if (timeout <= SimTime::zero()) {
    throw std::invalid_argument("Interconnect: non-positive slot timeout");
  }
  slot_timeout_ = timeout;
}

std::optional<SpineScheduleHandle> Interconnect::reserve_slots(
    std::uint32_t src_rack, std::uint32_t dst_rack, int period, int duty,
    const std::vector<SpineLinkId>& avoid) {
  // Shape errors are caller bugs and throw; everything below is a
  // legitimate runtime refusal and returns nullopt.
  if (period < 1 || period > SlotCalendar::kFrameSlots ||
      SlotCalendar::kFrameSlots % period != 0 || duty < 1 || duty > period) {
    throw std::invalid_argument("Interconnect: invalid slot schedule shape");
  }
  if (src_rack == dst_rack) return std::nullopt;
  auto route_opt = avoid.empty() ? compute_route(src_rack, dst_rack)
                                 : compute_route_avoiding(src_rack, dst_rack, avoid);
  if (!route_opt || route_opt->empty()) {
    counters_.add("spine.slot_refusals");
    return std::nullopt;
  }
  const std::vector<SpineLinkId>& route = *route_opt;
  const double fraction = static_cast<double>(duty) / static_cast<double>(period);
  // Admission, phase 1 — headroom: every crossed direction must keep a
  // positive shared residual after the schedule's share leaves it
  // (duty == period therefore always refuses: a schedule may not starve
  // the shared FIFO outright). Checked before any mutation.
  std::vector<int> hop_dir(route.size());
  std::vector<SlotCalendar::LineId> lines(route.size());
  std::uint32_t rack = src_rack;
  for (std::size_t h = 0; h < route.size(); ++h) {
    const SpineLink& l = at(route[h]);
    const int d = direction_index(l, rack);
    if (l.dir[d].reserved_fraction + l.dir[d].slotted_fraction + fraction >= 1.0) {
      counters_.add("spine.slot_refusals");
      return std::nullopt;
    }
    hop_dir[h] = d;
    lines[h] = line_of(route[h], d);
    rack = far_end(route[h], rack).rack;
  }
  // Admission, phase 2 — contention: the calendar must find `duty`
  // offsets free on every crossed line simultaneously. A refusal here
  // (third-party overlap) also leaves no partial state behind.
  const SlotMask mask = calendar_.propose(lines, period, duty);
  if (mask == 0) {
    counters_.add("spine.slot_refusals");
    return std::nullopt;
  }
  const SlotCalendar::Handle booking =
      calendar_.book(std::vector<SlotCalendar::LineId>(lines), mask);
  if (!booking.valid()) {
    // Unreachable after a successful propose() (same lines, same
    // mask, no mutation in between), but refuse defensively rather
    // than leak an untracked claim.
    counters_.add("spine.slot_refusals");
    return std::nullopt;
  }
  for (std::size_t h = 0; h < route.size(); ++h) {
    links_[route[h]].dir[hop_dir[h]].slotted_fraction += fraction;
  }
  const auto slot = schedules_.claim();
  SlotSchedule& s = schedules_[slot.index];
  s.src_rack = src_rack;
  s.dst_rack = dst_rack;
  s.fraction = fraction;
  s.booking = booking;
  s.mask = mask;
  s.route = route;
  s.hop_dir = std::move(hop_dir);
  s.hop_busy_until.assign(route.size(), SimTime::zero());
  s.last_activity = sim_->now();
  s.timeout = slot_timeout_;
  schedules_by_pair_[pair_key(src_rack, dst_rack)].push_back(slot.index);
  ++schedule_version_;
  counters_.add("spine.slot_reservations");
  arm_schedule_expiry(slot.index, slot.generation);
  return SpineScheduleHandle{slot.index, slot.generation};
}

void Interconnect::teardown_schedule(std::uint32_t idx) {
  const SlotSchedule& s = schedules_[idx];
  calendar_.release(s.booking);
  for (std::size_t h = 0; h < s.route.size(); ++h) {
    double& slotted = links_[s.route[h]].dir[s.hop_dir[h]].slotted_fraction;
    slotted -= s.fraction;
    // Float hygiene: a direction whose last schedule left must
    // serialize shared traffic at exactly the full residual again.
    if (slotted < 1e-12) slotted = 0.0;
  }
  const auto it = schedules_by_pair_.find(pair_key(s.src_rack, s.dst_rack));
  std::vector<std::uint32_t>& pair = it->second;
  pair.erase(std::find(pair.begin(), pair.end(), idx));
  if (pair.empty()) schedules_by_pair_.erase(it);
  // The recycle bumps the slot generation, stale-ifying every
  // outstanding handle (and disarming the pending expiry event).
  schedules_.recycle(idx);
  ++schedule_version_;
}

void Interconnect::release_slots(SpineScheduleHandle handle) {
  if (live_schedule(handle) == nullptr) return;  // stale: idempotent no-op
  teardown_schedule(handle.id);
  counters_.add("spine.slot_releases");
}

bool Interconnect::schedule_active(SpineScheduleHandle handle) const {
  return live_schedule(handle) != nullptr;
}

std::vector<SpineScheduleHandle> Interconnect::find_schedules(
    std::uint32_t src_rack, std::uint32_t dst_rack) const {
  std::vector<SpineScheduleHandle> out;
  const auto it = schedules_by_pair_.find(pair_key(src_rack, dst_rack));
  if (it == schedules_by_pair_.end()) return out;
  out.reserve(it->second.size());
  for (const std::uint32_t idx : it->second) {
    out.push_back(SpineScheduleHandle{idx, schedules_.generation(idx)});
  }
  return out;
}

const std::vector<SpineLinkId>& Interconnect::schedule_route(
    SpineScheduleHandle handle) const {
  const SlotSchedule* s = live_schedule(handle);
  if (s == nullptr) throw std::invalid_argument("Interconnect: stale schedule handle");
  return s->route;
}

SlotMask Interconnect::schedule_mask(SpineScheduleHandle handle) const {
  const SlotSchedule* s = live_schedule(handle);
  if (s == nullptr) throw std::invalid_argument("Interconnect: stale schedule handle");
  return s->mask;
}

double Interconnect::schedule_fraction(SpineScheduleHandle handle) const {
  const SlotSchedule* s = live_schedule(handle);
  if (s == nullptr) throw std::invalid_argument("Interconnect: stale schedule handle");
  return s->fraction;
}

double Interconnect::slotted_fraction(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].slotted_fraction;
}

SimTime Interconnect::next_owned_time(SimTime from, SlotMask mask) const {
  const std::int64_t d = slot_duration_.ps();
  const std::int64_t slot = from.ps() / d;
  if ((mask >> (slot % SlotCalendar::kFrameSlots)) & 1) return from;
  // Scan forward to the next owned slot boundary; the mask is non-zero
  // (booked schedules own at least one offset), so k < kFrameSlots.
  for (int k = 1; k < SlotCalendar::kFrameSlots; ++k) {
    if ((mask >> ((slot + k) % SlotCalendar::kFrameSlots)) & 1) {
      return SimTime::picoseconds((slot + k) * d);
    }
  }
  return from;  // unreachable for a live schedule's mask
}

void Interconnect::arm_schedule_expiry(std::uint32_t idx, std::uint32_t generation) {
  const SlotSchedule& s = schedules_[idx];
  const SimTime deadline = s.last_activity + s.timeout;
  // Weak: a fleet idling toward drain must not be kept alive by lease
  // housekeeping. The generation capture disarms the event when the
  // schedule is released/preempted and the slot recycled before it
  // fires — possibly into a different pair's schedule.
  sim_->schedule_weak_at(deadline, [this, idx, generation] {
    if (schedules_.get_live(idx, generation) == nullptr) return;
    const SlotSchedule& sched = schedules_[idx];
    if (sim_->now() >= sched.last_activity + sched.timeout) {
      teardown_schedule(idx);
      counters_.add("spine.slot_expirations");
      return;
    }
    // A send renewed the lease since this was armed; chase the new
    // deadline.
    arm_schedule_expiry(idx, generation);
  });
}

// ---------------------------------------------------------------------------
// Transport.
// ---------------------------------------------------------------------------

SimTime Interconnect::occupy_fifo(SimTime& busy_until, phy::DataRate rate,
                                  SimTime latency, phy::DataSize size) {
  const SimTime now = sim_->now();
  const SimTime start = std::max(now, busy_until);
  const SimTime serialization = phy::transmission_time(size, rate);
  busy_until = start + serialization;
  const SimTime arrival = busy_until + latency;
  bytes_slot_ += static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8));
  queue_delay_.record(start - now);
  transfer_latency_.record(arrival - now);
  return arrival;
}

SimTime Interconnect::occupy(SpineLink& l, int d, phy::DataSize size) {
  Direction& dir = l.dir[d];
  const SimTime before = dir.busy_until;
  // × (1 − 0.0 − 0.0) is exact in IEEE arithmetic: with nothing
  // reserved and nothing slotted the residual serialization is
  // bit-identical to the full-rate spine.
  const SimTime arrival = occupy_fifo(
      dir.busy_until,
      l.params.rate * (1.0 - dir.reserved_fraction - dir.slotted_fraction),
      l.params.latency, size);
  dir.busy_total += dir.busy_until - std::max(sim_->now(), before);
  return arrival;
}

bool Interconnect::send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                               SpineReservationHandle reservation, PacketCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.packets_refused");
    return false;
  }
  SpineLink& ml = links_[id];
  SimTime arrival = SimTime::zero();
  bool reserved_slice = false;
  if (const Reservation* r = live_reservation(reservation)) {
    // The packet rides its circuit only on hops the reservation
    // actually pinned in this direction; anything else (a re-planned
    // detour, a stale handle) shares the residual like everyone.
    for (std::size_t h = 0; h < r->route.size(); ++h) {
      if (r->route[h] == id && r->hop_dir[h] == d) {
        Reservation& mr = reservations_[reservation.id];
        arrival = occupy_fifo(mr.hop_busy_until[h], ml.params.rate * r->fraction,
                              ml.params.latency, size);
        reserved_slice = true;
        reserved_bytes_slot_ +=
            static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8));
        break;
      }
    }
  }
  if (!reserved_slice) arrival = occupy(ml, d, size);
  return finish_packet(ml, d, arrival, std::move(cb));
}

bool Interconnect::send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                               SpineScheduleHandle schedule, PacketCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.packets_refused");
    return false;
  }
  SpineLink& ml = links_[id];
  SimTime arrival = SimTime::zero();
  bool slotted = false;
  if (const SlotSchedule* s = live_schedule(schedule)) {
    // The packet rides its slots only on hops the schedule actually
    // pinned in this direction; anything else (a re-planned detour, a
    // stale handle) shares the residual like everyone.
    for (std::size_t h = 0; h < s->route.size(); ++h) {
      if (s->route[h] == id && s->hop_dir[h] == d) {
        SlotSchedule& ms = schedules_[schedule.id];
        // Wait for the pair's next owned calendar slot past both now
        // and the schedule's own per-hop FIFO, then serialize at the
        // FULL link rate inside it — the calendar's admission rule
        // guarantees nobody else owns these slots, so the hop is
        // collision-free.
        const SimTime start =
            next_owned_time(std::max(sim_->now(), ms.hop_busy_until[h]), ms.mask);
        ms.hop_busy_until[h] = start;
        arrival = occupy_fifo(ms.hop_busy_until[h], ml.params.rate, ml.params.latency,
                              size);
        // Each slotted send renews the inactivity lease.
        ms.last_activity = sim_->now();
        slotted = true;
        slotted_bytes_slot_ +=
            static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8));
        break;
      }
    }
  }
  if (!slotted) arrival = occupy(ml, d, size);
  return finish_packet(ml, d, arrival, std::move(cb));
}

bool Interconnect::finish_packet(SpineLink& ml, int d, SimTime arrival,
                                 PacketCallback cb) {
  ++ml.dir[d].packets;
  ++packets_slot_;
  ++*ml.packets_slot;
  // Loss is decided at send time but observed at arrival (the far
  // gateway's FEC decoder gives up on the mangled frame there).
  const bool lost = ml.params.loss_prob > 0.0 && rng_.bernoulli(ml.params.loss_prob);
  if (lost) {
    ++ml.dir[d].drops;
    ++drops_slot_;
  }
  if (cb) {
    const auto complete = [cb = std::move(cb), arrival, lost] { cb(arrival, !lost); };
    static_assert(sim::is_inline_event_v<decltype(complete)>,
                  "the spine packet completion must stay on the inline event arm");
    sim_->schedule_at(arrival, complete);
  }
  return true;
}

bool Interconnect::transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                            DeliveryCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.transfers_refused");
    return false;
  }
  const SimTime arrival = occupy(links_[id], d, size);
  counters_.add("spine.transfers");
  if (cb) {
    sim_->schedule_at(arrival, [cb = std::move(cb), arrival] { cb(arrival); });
  }
  return true;
}

SimTime Interconnect::busy_time(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].busy_total;
}

SimTime Interconnect::queue_backlog(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  const SimTime until = l.dir[direction_index(l, from_rack)].busy_until;
  return until > sim_->now() ? until - sim_->now() : SimTime::zero();
}

std::uint64_t Interconnect::link_packets(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].packets;
}

std::uint64_t Interconnect::link_drops(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].drops;
}

}  // namespace rsf::fabric
