#include "fabric/interconnect.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace rsf::fabric {

using rsf::sim::SimTime;

namespace {
/// Validated before the member initializers dereference it.
telemetry::Registry& checked(telemetry::Registry* registry) {
  if (registry == nullptr) throw std::invalid_argument("Interconnect: null registry");
  return *registry;
}

constexpr SpineLinkId kNone = static_cast<SpineLinkId>(-1);
}  // namespace

Interconnect::Interconnect(rsf::sim::Simulator* sim, telemetry::Registry* registry,
                           std::uint64_t seed)
    : sim_(sim),
      rng_(seed, "spine"),
      counters_(checked(registry).counters("spine")),
      packets_slot_(counters_.slot("spine.packets")),
      bytes_slot_(counters_.slot("spine.bytes")),
      drops_slot_(counters_.slot("spine.packet_drops")),
      reserved_bytes_slot_(counters_.slot("spine.reserved_bytes")),
      transfer_latency_(registry->histogram("spine.transfer_latency")),
      queue_delay_(registry->histogram("spine.queue_delay")) {
  if (sim_ == nullptr) {
    throw std::invalid_argument("Interconnect: null simulator");
  }
}

SpineLinkId Interconnect::add_link(SpineLinkParams params) {
  if (params.a.rack == params.b.rack) {
    throw std::invalid_argument("Interconnect: spine link must join two racks");
  }
  if (params.rate.gbps_value() <= 0) {
    throw std::invalid_argument("Interconnect: non-positive spine rate");
  }
  if (params.cost <= 0) {
    throw std::invalid_argument("Interconnect: non-positive spine cost");
  }
  // The closed interval: loss_prob == 1 is a blackhole link — a
  // legitimate chaos configuration (the retransmit path above it is
  // bounded by max_retries), not a misconfiguration.
  if (params.loss_prob < 0 || params.loss_prob > 1) {
    throw std::invalid_argument("Interconnect: loss_prob outside [0, 1]");
  }
  const auto id = static_cast<SpineLinkId>(links_.size());
  max_rack_ = std::max({max_rack_, params.a.rack, params.b.rack});
  SpineLink l;
  l.params = params;
  l.cost = params.cost;
  l.packets_slot = &counters_.slot("spine.link" + std::to_string(id) + ".packets");
  links_.push_back(std::move(l));
  ++version_;
  counters_.add("spine.links_added");
  return id;
}

const Interconnect::SpineLink& Interconnect::at(SpineLinkId id) const {
  if (id >= links_.size()) throw std::invalid_argument("Interconnect: unknown spine link");
  return links_[id];
}

const SpineLinkParams& Interconnect::link(SpineLinkId id) const { return at(id).params; }

rsf::sim::SimTime Interconnect::min_lookahead() const {
  rsf::sim::SimTime floor = rsf::sim::SimTime::infinity();
  // Administrative state is ignored on purpose: a down link can come
  // back up mid-run, and the horizon must already have accounted for
  // it (lookahead is a static property of the fabric, not of the
  // moment's routing table).
  for (const SpineLink& l : links_) floor = std::min(floor, l.params.latency);
  return floor;
}

void Interconnect::set_link_up(SpineLinkId id, bool up) {
  static_cast<void>(at(id));  // validate
  // Idempotent: overlapping shared-risk groups legitimately fail the
  // same link twice. A repeated set must not double-count the
  // links_failed/restored transition, invalidate routes, or re-walk
  // the (already emptied) preemption scan.
  if (links_[id].up == up) return;
  links_[id].up = up;
  ++version_;
  counters_.add(up ? "spine.links_restored" : "spine.links_failed");
  if (!up) {
    // A failed link preempts every reservation pinned across it: the
    // carve returns to the residual and holders' handles go stale, so
    // their traffic falls back to the shared FIFO of whatever route
    // the transport re-plans.
    for (std::uint32_t idx = 0; idx < reservations_.size(); ++idx) {
      if (!reservations_.live(idx)) continue;
      const Reservation& r = reservations_[idx];
      if (std::find(r.route.begin(), r.route.end(), id) == r.route.end()) continue;
      teardown_reservation(idx);
      counters_.add("spine.reservation_preemptions");
    }
  }
}

bool Interconnect::link_up(SpineLinkId id) const { return at(id).up; }

Interconnect::SrlgId Interconnect::add_shared_risk_group(std::vector<SpineLinkId> links) {
  if (links.empty()) {
    throw std::invalid_argument("Interconnect: empty shared-risk group");
  }
  for (const SpineLinkId id : links) static_cast<void>(at(id));  // validate
  const auto gid = static_cast<SrlgId>(srlgs_.size());
  srlgs_.push_back(SharedRiskGroup{std::move(links), true});
  return gid;
}

void Interconnect::set_group_up(SrlgId group, bool up) {
  if (group >= srlgs_.size()) {
    throw std::invalid_argument("Interconnect: unknown shared-risk group");
  }
  SharedRiskGroup& g = srlgs_[group];
  if (g.up == up) return;  // idempotent at group granularity
  g.up = up;
  counters_.add(up ? "spine.srlg_repairs" : "spine.srlg_cuts");
  // Members a concurrent cut (another overlapping group, a direct
  // set_link_up) already moved are absorbed by the per-link
  // idempotence — the per-link transition counters stay exact.
  for (const SpineLinkId id : g.links) set_link_up(id, up);
}

bool Interconnect::group_up(SrlgId group) const {
  if (group >= srlgs_.size()) {
    throw std::invalid_argument("Interconnect: unknown shared-risk group");
  }
  return srlgs_[group].up;
}

const std::vector<SpineLinkId>& Interconnect::shared_risk_group(SrlgId group) const {
  if (group >= srlgs_.size()) {
    throw std::invalid_argument("Interconnect: unknown shared-risk group");
  }
  return srlgs_[group].links;
}

std::vector<SpineLinkId> Interconnect::rack_attachments(std::uint32_t rack) const {
  std::vector<SpineLinkId> out;
  for (SpineLinkId id = 0; id < links_.size(); ++id) {
    const SpineLinkParams& p = links_[id].params;
    if (p.a.rack == rack || p.b.rack == rack) out.push_back(id);
  }
  return out;
}

void Interconnect::set_link_cost(SpineLinkId id, double cost) {
  static_cast<void>(at(id));  // validate
  if (cost <= 0) throw std::invalid_argument("Interconnect: non-positive spine cost");
  if (links_[id].cost == cost) return;
  links_[id].cost = cost;
  ++version_;
  counters_.add("spine.reprices");
}

double Interconnect::link_cost(SpineLinkId id) const { return at(id).cost; }

int Interconnect::direction_index(const SpineLink& l, std::uint32_t from_rack) const {
  if (from_rack == l.params.a.rack) return 0;
  if (from_rack == l.params.b.rack) return 1;
  throw std::invalid_argument("Interconnect: rack is not an endpoint of the spine link");
}

const RackNode& Interconnect::far_end(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return direction_index(l, from_rack) == 0 ? l.params.b : l.params.a;
}

std::optional<std::vector<SpineLinkId>> Interconnect::route(std::uint32_t src_rack,
                                                            std::uint32_t dst_rack) const {
  if (cache_version_ != version_) {
    route_cache_.clear();
    cache_version_ = version_;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(src_rack) << 32) | dst_rack;
  if (auto it = route_cache_.find(key); it != route_cache_.end()) {
    counters_.add("spine.route_cache_hits");
    return it->second;
  }
  counters_.add("spine.route_cache_misses");
  auto r = compute_route(src_rack, dst_rack);
  route_cache_.emplace(key, r);
  return r;
}

std::optional<std::vector<SpineLinkId>> Interconnect::compute_route(
    std::uint32_t src_rack, std::uint32_t dst_rack) const {
  if (src_rack == dst_rack) return std::vector<SpineLinkId>{};
  // Racks are few (a fleet is N racks, not N nodes): a fresh search
  // per miss is cheaper than keeping an adjacency index coherent, and
  // route() memoizes the result anyway.
  const std::size_t racks = static_cast<std::size_t>(max_rack_) + 1;
  if (src_rack >= racks || dst_rack >= racks) return std::nullopt;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(racks, kInf);
  std::vector<int> hops(racks, std::numeric_limits<int>::max());
  std::vector<SpineLinkId> via(racks, kNone);
  // (cost, hops, rack) min-heap: ties resolve toward fewer hops, then
  // toward the expansion from the lowest-id rack (pop order), and
  // relaxation scans link ids ascending, so among equal candidates
  // out of one rack the lowest-id edge wins. Deterministic — every
  // run picks the same route for the same graph and costs.
  using Item = std::tuple<double, int, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  cost[src_rack] = 0;
  hops[src_rack] = 0;
  frontier.emplace(0.0, 0, src_rack);
  while (!frontier.empty()) {
    const auto [c, h, rack] = frontier.top();
    frontier.pop();
    if (c > cost[rack] || (c == cost[rack] && h > hops[rack])) continue;  // stale
    if (rack == dst_rack) break;
    for (SpineLinkId id = 0; id < links_.size(); ++id) {
      const SpineLink& l = links_[id];
      if (!l.up) continue;
      std::uint32_t next;
      if (l.params.a.rack == rack) {
        next = l.params.b.rack;
      } else if (l.params.b.rack == rack) {
        next = l.params.a.rack;
      } else {
        continue;
      }
      const double nc = c + l.cost;
      const int nh = h + 1;
      if (nc < cost[next] || (nc == cost[next] && nh < hops[next])) {
        cost[next] = nc;
        hops[next] = nh;
        via[next] = id;
        frontier.emplace(nc, nh, next);
      }
    }
  }
  if (via[dst_rack] == kNone) return std::nullopt;
  std::vector<SpineLinkId> path;
  for (std::uint32_t rack = dst_rack; rack != src_rack;) {
    const SpineLinkId id = via[rack];
    path.push_back(id);
    const SpineLink& l = links_[id];
    rack = l.params.a.rack == rack ? l.params.b.rack : l.params.a.rack;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// ---------------------------------------------------------------------------
// Circuit reservations.
// ---------------------------------------------------------------------------

std::optional<SpineReservationHandle> Interconnect::reserve(std::uint32_t src_rack,
                                                            std::uint32_t dst_rack,
                                                            double bandwidth_fraction) {
  if (bandwidth_fraction <= 0 || bandwidth_fraction >= 1) {
    throw std::invalid_argument("Interconnect: reservation fraction outside (0, 1)");
  }
  if (src_rack == dst_rack) return std::nullopt;
  if (reservation_by_pair_.contains(pair_key(src_rack, dst_rack))) return std::nullopt;
  auto route_opt = compute_route(src_rack, dst_rack);
  if (!route_opt || route_opt->empty()) return std::nullopt;
  const std::vector<SpineLinkId>& route = *route_opt;
  // Admission: every crossed direction must keep a positive residual
  // after the carve. Checked before any mutation, so a refused
  // reservation leaves no partial carve behind.
  std::vector<int> hop_dir(route.size());
  std::uint32_t rack = src_rack;
  for (std::size_t h = 0; h < route.size(); ++h) {
    const SpineLink& l = at(route[h]);
    const int d = direction_index(l, rack);
    if (l.dir[d].reserved_fraction + bandwidth_fraction >= 1.0) {
      counters_.add("spine.reservations_refused");
      return std::nullopt;
    }
    hop_dir[h] = d;
    rack = far_end(route[h], rack).rack;
  }
  for (std::size_t h = 0; h < route.size(); ++h) {
    links_[route[h]].dir[hop_dir[h]].reserved_fraction += bandwidth_fraction;
  }
  const auto slot = reservations_.claim();
  Reservation& r = reservations_[slot.index];
  r.src_rack = src_rack;
  r.dst_rack = dst_rack;
  r.fraction = bandwidth_fraction;
  r.route = route;
  r.hop_dir = std::move(hop_dir);
  r.hop_busy_until.assign(route.size(), SimTime::zero());
  reservation_by_pair_[pair_key(src_rack, dst_rack)] = slot.index;
  ++reservation_version_;
  counters_.add("spine.reservations");
  return SpineReservationHandle{slot.index, slot.generation};
}

void Interconnect::teardown_reservation(std::uint32_t idx) {
  const Reservation& r = reservations_[idx];
  for (std::size_t h = 0; h < r.route.size(); ++h) {
    double& carved = links_[r.route[h]].dir[r.hop_dir[h]].reserved_fraction;
    carved -= r.fraction;
    // Float hygiene: a direction whose last reservation left must
    // serialize at exactly the full link rate again.
    if (carved < 1e-12) carved = 0.0;
  }
  reservation_by_pair_.erase(pair_key(r.src_rack, r.dst_rack));
  // The recycle bumps the slot generation, stale-ifying every
  // outstanding handle.
  reservations_.recycle(idx);
  ++reservation_version_;
}

void Interconnect::release(SpineReservationHandle handle) {
  if (live_reservation(handle) == nullptr) return;  // stale: idempotent no-op
  teardown_reservation(handle.id);
  counters_.add("spine.reservation_releases");
}

bool Interconnect::reservation_active(SpineReservationHandle handle) const {
  return live_reservation(handle) != nullptr;
}

std::optional<SpineReservationHandle> Interconnect::find_reservation(
    std::uint32_t src_rack, std::uint32_t dst_rack) const {
  const auto it = reservation_by_pair_.find(pair_key(src_rack, dst_rack));
  if (it == reservation_by_pair_.end()) return std::nullopt;
  return SpineReservationHandle{it->second, reservations_.generation(it->second)};
}

const std::vector<SpineLinkId>& Interconnect::reservation_route(
    SpineReservationHandle handle) const {
  const Reservation* r = live_reservation(handle);
  if (r == nullptr) throw std::invalid_argument("Interconnect: stale reservation handle");
  return r->route;
}

double Interconnect::reservation_fraction(SpineReservationHandle handle) const {
  const Reservation* r = live_reservation(handle);
  if (r == nullptr) throw std::invalid_argument("Interconnect: stale reservation handle");
  return r->fraction;
}

double Interconnect::reserved_fraction(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].reserved_fraction;
}

phy::DataRate Interconnect::residual_rate(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  // Same expression occupy() serializes shared traffic at: × (1 − 0.0)
  // is exact, so an uncarved direction advertises the nameplate rate.
  return l.params.rate * (1.0 - l.dir[direction_index(l, from_rack)].reserved_fraction);
}

// ---------------------------------------------------------------------------
// Transport.
// ---------------------------------------------------------------------------

SimTime Interconnect::occupy_fifo(SimTime& busy_until, phy::DataRate rate,
                                  SimTime latency, phy::DataSize size) {
  const SimTime now = sim_->now();
  const SimTime start = std::max(now, busy_until);
  const SimTime serialization = phy::transmission_time(size, rate);
  busy_until = start + serialization;
  const SimTime arrival = busy_until + latency;
  bytes_slot_ += static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8));
  queue_delay_.record(start - now);
  transfer_latency_.record(arrival - now);
  return arrival;
}

SimTime Interconnect::occupy(SpineLink& l, int d, phy::DataSize size) {
  Direction& dir = l.dir[d];
  const SimTime before = dir.busy_until;
  // × (1 − 0.0) is exact in IEEE arithmetic: with nothing reserved the
  // residual serialization is bit-identical to the full-rate spine.
  const SimTime arrival = occupy_fifo(
      dir.busy_until, l.params.rate * (1.0 - dir.reserved_fraction), l.params.latency,
      size);
  dir.busy_total += dir.busy_until - std::max(sim_->now(), before);
  return arrival;
}

bool Interconnect::send_packet(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                               SpineReservationHandle reservation, PacketCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.packets_refused");
    return false;
  }
  SpineLink& ml = links_[id];
  SimTime arrival = SimTime::zero();
  bool reserved_slice = false;
  if (const Reservation* r = live_reservation(reservation)) {
    // The packet rides its circuit only on hops the reservation
    // actually pinned in this direction; anything else (a re-planned
    // detour, a stale handle) shares the residual like everyone.
    for (std::size_t h = 0; h < r->route.size(); ++h) {
      if (r->route[h] == id && r->hop_dir[h] == d) {
        Reservation& mr = reservations_[reservation.id];
        arrival = occupy_fifo(mr.hop_busy_until[h], ml.params.rate * r->fraction,
                              ml.params.latency, size);
        reserved_slice = true;
        reserved_bytes_slot_ +=
            static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8));
        break;
      }
    }
  }
  if (!reserved_slice) arrival = occupy(ml, d, size);
  ++ml.dir[d].packets;
  ++packets_slot_;
  ++*ml.packets_slot;
  // Loss is decided at send time but observed at arrival (the far
  // gateway's FEC decoder gives up on the mangled frame there).
  const bool lost = ml.params.loss_prob > 0.0 && rng_.bernoulli(ml.params.loss_prob);
  if (lost) {
    ++ml.dir[d].drops;
    ++drops_slot_;
  }
  if (cb) {
    const auto complete = [cb = std::move(cb), arrival, lost] { cb(arrival, !lost); };
    static_assert(sim::is_inline_event_v<decltype(complete)>,
                  "the spine packet completion must stay on the inline event arm");
    sim_->schedule_at(arrival, complete);
  }
  return true;
}

bool Interconnect::transfer(SpineLinkId id, std::uint32_t from_rack, phy::DataSize size,
                            DeliveryCallback cb) {
  const SpineLink& l = at(id);
  const int d = direction_index(l, from_rack);
  if (!l.up) {
    counters_.add("spine.transfers_refused");
    return false;
  }
  const SimTime arrival = occupy(links_[id], d, size);
  counters_.add("spine.transfers");
  if (cb) {
    sim_->schedule_at(arrival, [cb = std::move(cb), arrival] { cb(arrival); });
  }
  return true;
}

SimTime Interconnect::busy_time(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].busy_total;
}

SimTime Interconnect::queue_backlog(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  const SimTime until = l.dir[direction_index(l, from_rack)].busy_until;
  return until > sim_->now() ? until - sim_->now() : SimTime::zero();
}

std::uint64_t Interconnect::link_packets(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].packets;
}

std::uint64_t Interconnect::link_drops(SpineLinkId id, std::uint32_t from_rack) const {
  const SpineLink& l = at(id);
  return l.dir[direction_index(l, from_rack)].drops;
}

}  // namespace rsf::fabric
