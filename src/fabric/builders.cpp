#include "fabric/builders.hpp"

#include <numeric>
#include <stdexcept>

namespace rsf::fabric {

namespace {

std::vector<int> first_lanes(int k) {
  std::vector<int> lanes(static_cast<std::size_t>(k));
  std::iota(lanes.begin(), lanes.end(), 0);
  return lanes;
}

Rack make_rack_shell(rsf::sim::Simulator* sim, RackParams params) {
  if (sim == nullptr) throw std::invalid_argument("build: null simulator");
  if (params.width <= 0 || params.height <= 0) {
    throw std::invalid_argument("build: non-positive dimensions");
  }
  if (params.lanes_per_link <= 0 || params.lanes_per_link > params.lanes_per_cable) {
    throw std::invalid_argument("build: lanes_per_link must be in [1, lanes_per_cable]");
  }
  Rack rack;
  rack.sim = sim;
  rack.params = params;
  rack.plant = std::make_unique<phy::PhysicalPlant>(params.plant_config);
  return rack;
}

void finish_rack(Rack& rack, const std::vector<phy::LinkId>& initial_links) {
  const RackParams& p = rack.params;
  rack.engine = std::make_unique<plp::PlpEngine>(rack.sim, rack.plant.get(), p.plp_timings,
                                                 p.plp_caps);
  for (phy::LinkId id : initial_links) rack.engine->instant_bring_up(id);
  rack.topology = std::make_unique<Topology>(
      rack.plant.get(), rack.engine.get(),
      static_cast<std::uint32_t>(p.width * p.height));
  rack.topology->set_grid_dims(p.width, p.height);
  for (int y = 0; y < p.height; ++y) {
    for (int x = 0; x < p.width; ++x) {
      rack.topology->set_coord(static_cast<phy::NodeId>(y * p.width + x), Coord{x, y});
    }
  }
  rack.router = std::make_unique<Router>(rack.topology.get(), p.routing);
  rack.router->set_hop_penalty_ns(p.net_config.switch_params.switch_latency.ns());
  rack.network = std::make_unique<Network>(rack.sim, rack.plant.get(), rack.topology.get(),
                                           rack.router.get(), p.net_config, p.registry);
}

/// Creates the cable a->b and (optionally) its initial adjacent link.
void wire(Rack& rack, phy::NodeId a, phy::NodeId b, double meters,
          std::vector<phy::LinkId>& links_out) {
  const RackParams& p = rack.params;
  const phy::CableId cable =
      rack.plant->add_cable(a, b, meters, p.medium, p.lanes_per_cable, p.lane_rate,
                            p.lane_power, p.initial_ber);
  links_out.push_back(rack.plant->create_adjacent_link(cable, first_lanes(p.lanes_per_link),
                                                       phy::FecSpec::of(p.fec)));
}

}  // namespace

phy::NodeId Rack::node_at(int x, int y) const {
  if (x < 0 || x >= params.width || y < 0 || y >= params.height) {
    throw std::out_of_range("Rack::node_at: coordinates outside grid");
  }
  return static_cast<phy::NodeId>(y * params.width + x);
}

double Rack::total_power_watts() const {
  return plant->total_power_watts() + network->switch_power_watts();
}

Rack build_grid(rsf::sim::Simulator* sim, RackParams params) {
  Rack rack = make_rack_shell(sim, params);
  std::vector<phy::LinkId> links;
  const int w = params.width;
  const int h = params.height;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto n = static_cast<phy::NodeId>(y * w + x);
      if (x + 1 < w) wire(rack, n, n + 1, params.hop_meters, links);
      if (y + 1 < h) wire(rack, n, n + static_cast<phy::NodeId>(w), params.hop_meters, links);
    }
  }
  finish_rack(rack, links);
  return rack;
}

Rack build_torus(rsf::sim::Simulator* sim, RackParams params) {
  Rack rack = make_rack_shell(sim, params);
  std::vector<phy::LinkId> links;
  const int w = params.width;
  const int h = params.height;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto n = static_cast<phy::NodeId>(y * w + x);
      if (x + 1 < w) wire(rack, n, n + 1, params.hop_meters, links);
      if (y + 1 < h) wire(rack, n, n + static_cast<phy::NodeId>(w), params.hop_meters, links);
    }
  }
  // Wraparound cables: physically they run the length of the row or
  // column.
  for (int y = 0; y < h && w > 2; ++y) {
    const auto west = static_cast<phy::NodeId>(y * w);
    const auto east = static_cast<phy::NodeId>(y * w + (w - 1));
    wire(rack, east, west, params.hop_meters * (w - 1), links);
  }
  for (int x = 0; x < w && h > 2; ++x) {
    const auto north = static_cast<phy::NodeId>(x);
    const auto south = static_cast<phy::NodeId>((h - 1) * w + x);
    wire(rack, south, north, params.hop_meters * (h - 1), links);
  }
  finish_rack(rack, links);
  rack.topology->set_wraps(w > 2, h > 2);
  return rack;
}

Rack build_chain(rsf::sim::Simulator* sim, int n, RackParams params) {
  if (n < 2) throw std::invalid_argument("build_chain: need >= 2 nodes");
  params.width = n;
  params.height = 1;
  Rack rack = make_rack_shell(sim, params);
  std::vector<phy::LinkId> links;
  for (int i = 0; i + 1 < n; ++i) {
    wire(rack, static_cast<phy::NodeId>(i), static_cast<phy::NodeId>(i + 1),
         params.hop_meters, links);
  }
  finish_rack(rack, links);
  return rack;
}

Rack build_ring(rsf::sim::Simulator* sim, int n, RackParams params) {
  if (n < 3) throw std::invalid_argument("build_ring: need >= 3 nodes");
  params.width = n;
  params.height = 1;
  Rack rack = make_rack_shell(sim, params);
  std::vector<phy::LinkId> links;
  for (int i = 0; i + 1 < n; ++i) {
    wire(rack, static_cast<phy::NodeId>(i), static_cast<phy::NodeId>(i + 1),
         params.hop_meters, links);
  }
  wire(rack, static_cast<phy::NodeId>(n - 1), 0, params.hop_meters * (n - 1), links);
  finish_rack(rack, links);
  rack.topology->set_wraps(true, false);
  return rack;
}

}  // namespace rsf::fabric
