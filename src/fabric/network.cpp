#include "fabric/network.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace rsf::fabric {

using rsf::sim::SimTime;

namespace {
/// Head flit size: how much of a packet must arrive before a
/// cut-through switch can act on it (addresses live in the first bytes).
constexpr auto kHeader = rsf::phy::DataSize::bytes(64);
}  // namespace

Network::Network(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant, Topology* topo,
                 Router* router, NetworkConfig config, telemetry::Registry* registry)
    : sim_(sim),
      plant_(plant),
      topo_(topo),
      router_(router),
      config_(config),
      rng_(config.seed, "network"),
      log_(sim, "net"),
      own_registry_(registry ? nullptr : std::make_unique<telemetry::Registry>()),
      registry_(registry ? registry : own_registry_.get()),
      packet_latency_(registry_->histogram("net.packet_latency")),
      flow_completion_(registry_->histogram("net.flow_completion")),
      hop_counts_(registry_->histogram("net.hop_counts")),
      counters_(registry_->counters("net")),
      injected_slot_(counters_.slot("net.packets_injected")),
      delivered_slot_(counters_.slot("net.packets_delivered")),
      probes_slot_(counters_.slot("net.probes")) {
  if (sim_ == nullptr || plant_ == nullptr || topo_ == nullptr || router_ == nullptr) {
    throw std::invalid_argument("Network: null dependency");
  }
  if (config_.flow_window < 1) throw std::invalid_argument("Network: flow_window < 1");
}

void Network::start_flow(const FlowSpec& spec, FlowCallback on_complete) {
  if (spec.id == kNoFlow) throw std::invalid_argument("start_flow: flow id 0 reserved");
  if (flow_index_.contains(spec.id)) {
    throw std::invalid_argument("start_flow: duplicate flow id");
  }
  if (spec.size.bit_count() <= 0 || spec.packet_size.bit_count() <= 0) {
    throw std::invalid_argument("start_flow: non-positive sizes");
  }
  FlowState state;
  state.spec = spec;
  state.on_complete = std::move(on_complete);
  state.packets_total =
      static_cast<std::uint64_t>(spec.size.packet_count(spec.packet_size));
  // Claim a slot from the pool (a drained slot when one is free —
  // bounded pool under flow churn — else the dense pool grows).
  const auto handle = flows_.claim();
  const std::uint32_t idx = handle.index;
  flows_[idx] = std::move(state);
  flow_index_.emplace(spec.id, idx);
  counters_.add("net.flows_started");
  // A start time already in the past means "now". The start event can
  // outlive the slot (a zero-packet flow drains and recycles before a
  // deferred start fires), so it carries the claim generation and
  // evaporates against a reused slot instead of starting a stranger.
  sim_->schedule_at(std::max(spec.start, sim_->now()),
                    [this, idx, gen = handle.generation] {
                      if (!flows_.is_live(idx, gen)) return;
                      flows_[idx].started = sim_->now();
                      pump_flow(idx);
                    });
}

void Network::pump_flow(std::uint32_t flow_idx) {
  // Index, not reference: inject() only schedules (no synchronous
  // re-entry), but flows_ may have grown between packets.
  while (true) {
    FlowState& flow = flows_[flow_idx];
    if (flow.done || flow.inflight >= config_.flow_window ||
        flow.next_seq >= flow.packets_total) {
      return;
    }
    Packet pkt;
    pkt.id = next_packet_id_++;
    pkt.flow = flow.spec.id;
    pkt.flow_idx = static_cast<std::int32_t>(flow_idx);
    pkt.seq = flow.next_seq++;
    pkt.src = flow.spec.src;
    pkt.dst = flow.spec.dst;
    pkt.size = flow.spec.size.packet_at(static_cast<std::int64_t>(pkt.seq),
                                        flow.spec.packet_size);
    ++flow.inflight;
    inject(pkt, sim_->now());
  }
}

void Network::send_probe(phy::NodeId src, phy::NodeId dst, phy::DataSize size,
                         ProbeCallback cb) {
  Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.src = src;
  pkt.dst = dst;
  pkt.size = size;
  const std::uint32_t slot = probes_.claim().index;
  probes_[slot].cb = std::move(cb);
  pkt.probe_idx = static_cast<std::int32_t>(slot);
  ++probes_slot_;
  inject(pkt, sim_->now());
}

void Network::inject(Packet pkt, SimTime when) {
  pkt.injected = when;
  pkt.hops = 0;
  ++injected_slot_;
  const SimTime ready = when + config_.switch_params.nic_latency;
  // The whole packet sits in host memory: head and tail both available.
  sim_->schedule_at(ready, [this, pkt, ready] { hop(pkt, pkt.src, ready, ready); });
}

void Network::record_switched_bits(const Packet& pkt) {
  // Dynamic switching energy is charged at the sending node's element
  // (the source NIC for hop 0).
  switched_bits_total_ += static_cast<std::uint64_t>(pkt.size.bit_count());
  switched_bits_log_.emplace_back(sim_->now(), switched_bits_total_);
  // Age out entries older than the retention window so the log stays
  // bounded however long the run is.
  const SimTime cutoff = sim_->now() - power_retention_;
  while (!switched_bits_log_.empty() && switched_bits_log_.front().first < cutoff) {
    switched_bits_pruned_ = switched_bits_log_.front().second;
    switched_bits_pruned_time_ = switched_bits_log_.front().first;
    switched_bits_log_.pop_front();
  }
}

void Network::hop(Packet pkt, phy::NodeId node, SimTime head_ready, SimTime tail_ready) {
  if (node == pkt.dst) {
    deliver(pkt, tail_ready + config_.switch_params.nic_latency);
    return;
  }
  if (pkt.hops >= config_.max_hops) {
    // Routing-loop backstop: retransmit from the source rather than
    // orbit (stale tables self-correct within a version bump).
    retransmit(pkt);
    return;
  }
  // A flow that owns a reserved circuit from here toward its
  // destination takes it unconditionally (the CRC built it for us).
  std::optional<phy::LinkId> link_opt;
  if (pkt.flow != kNoFlow) {
    for (phy::LinkId id : topo_->links_at(node)) {
      if (!topo_->usable(id)) continue;
      const phy::LogicalLink& l = plant_->link(id);
      if (l.reserved_for() == pkt.flow && l.other_end(node) == pkt.dst) {
        link_opt = id;
        break;
      }
    }
  }
  if (!link_opt) link_opt = router_->next_hop(node, pkt.dst);
  if (!link_opt) {
    // No usable path right now (e.g. mid-reconfiguration): retry from
    // here with exponential backoff, bounded by the retry budget. The
    // backoff matters during large reconfigurations (a grid -> torus
    // move keeps links retraining for hundreds of microseconds).
    if (pkt.retries < config_.max_retries) {
      const int shift = std::min(pkt.retries, 6);
      const SimTime wait = config_.retry_delay * (std::int64_t{1} << shift);
      ++pkt.retries;
      counters_.add("net.reroute_waits");
      sim_->schedule_after(wait, [this, pkt, node] {
        const SimTime t = sim_->now();
        hop(pkt, node, t, t);
      });
    } else {
      drop(pkt, "no_route");
    }
    return;
  }
  const phy::LinkId link = *link_opt;
  const phy::LogicalLink& l = plant_->link(link);
  const phy::NodeId next = l.other_end(node);

  const SimTime ser = l.serialization_delay(pkt.size);
  const SimTime header_ser = l.serialization_delay(std::min(kHeader, pkt.size));
  const SimTime prop = l.propagation_delay() + l.fec().latency;

  PortState& port = port_at(node, link, l);
  // Start rule: head available (head_ready already includes the
  // switch/NIC pipeline), port free, and the no-underrun constraint
  // (transmission may not finish before the tail has arrived here).
  SimTime start = std::max(head_ready, port.busy_until);
  if (tail_ready - ser > start) start = tail_ready - ser;
  port.busy_until = start + ser;

  LinkUse& use = link_use_at(link);
  use.busy += ser;
  use.queue_delay_sum += start - std::max(head_ready, tail_ready - ser);
  ++use.queue_delay_samples;
  ++use.packets;
  use.bits += static_cast<std::uint64_t>(pkt.size.bit_count());
  // Per-lane PLP #5 accounting, including sampled FEC decoder
  // telemetry (corrected codewords) for the BER estimator.
  plant_->account_frame(link, pkt.size, rng_);

  record_switched_bits(pkt);

  // Loss is decided per-link from the analytic FEC model.
  const double loss_p = l.frame_loss_prob(pkt.size);
  const bool lost = loss_p > 0.0 && rng_.bernoulli(loss_p);

  const SimTime head_arrival = start + header_ser + prop;
  const SimTime tail_arrival = start + ser + prop;
  ++pkt.hops;

  if (lost) {
    counters_.add("net.frames_corrupted");
    sim_->schedule_at(tail_arrival, [this, pkt] { retransmit(pkt); });
    return;
  }
  // Cut-through forwards once the head has cleared the switch
  // pipeline; store-and-forward must buffer the whole packet first.
  const SimTime basis = config_.switch_params.cut_through ? head_arrival : tail_arrival;
  const SimTime next_head_ready = basis + config_.switch_params.switch_latency;
  // One event per hop, fired when the packet becomes actionable at the
  // next element.
  const auto continue_hop = [this, pkt, next, next_head_ready, tail_arrival] {
    hop(pkt, next, next_head_ready, tail_arrival);
  };
  static_assert(sim::is_inline_event_v<decltype(continue_hop)>,
                "the per-hop continuation sizes kInlineEventBytes; growing it off "
                "the inline arm would put an allocation on every simulated hop");
  sim_->schedule_at(basis, continue_hop);
}

void Network::deliver(const Packet& pkt, SimTime when) {
  const auto finalize = [this, pkt, when] {
    packet_latency_.record(when - pkt.injected);
    hop_counts_.record(static_cast<double>(pkt.hops));
    ++delivered_slot_;
    if (pkt.probe_idx >= 0) {
      const auto slot = static_cast<std::uint32_t>(pkt.probe_idx);
      // rsf-lint: unguarded-slot-ok(a probe slot has exactly one in-flight packet and recycles only here, at its terminal callback)
      auto cb = std::move(probes_[slot].cb);
      probes_.recycle(slot);  // before the callback: chained probes reuse it
      if (cb) cb(when - pkt.injected, pkt.hops, true);
      return;
    }
    if (live_flow(pkt) != nullptr) {
      flow_packet_delivered(static_cast<std::uint32_t>(pkt.flow_idx));
    }
  };
  if (when > sim_->now()) {
    sim_->schedule_at(when, finalize);
  } else {
    finalize();
  }
}

void Network::drop(const Packet& pkt, const char* reason) {
  counters_.add(std::string("net.drops.") + reason);
  log_.debug("drop packet ", pkt.id, " (", reason, ")");
  if (pkt.probe_idx >= 0) {
    const auto slot = static_cast<std::uint32_t>(pkt.probe_idx);
    auto cb = std::move(probes_[slot].cb);
    probes_.recycle(slot);  // before the callback: chained probes reuse it
    if (cb) cb(SimTime::zero(), pkt.hops, false);
    return;
  }
  if (live_flow(pkt) != nullptr) {
    const auto idx = static_cast<std::uint32_t>(pkt.flow_idx);
    --flows_[idx].inflight;  // the dropped packet leaves flight here
    if (!flows_[idx].done) finish_flow(idx, /*failed=*/true);
    maybe_recycle_flow(idx);
  }
}

void Network::retransmit(Packet pkt) {
  if (pkt.retries >= config_.max_retries) {
    drop(pkt, "retries_exhausted");
    return;
  }
  if (FlowState* flow = live_flow(pkt); flow != nullptr && flow->done) {
    // The flow already failed (another packet exhausted its budget):
    // don't keep retransmitting into a dead flow — account the packet
    // out of flight so the slot can recycle.
    --flow->inflight;
    maybe_recycle_flow(static_cast<std::uint32_t>(pkt.flow_idx));
    return;
  }
  ++pkt.retries;
  counters_.add("net.retransmits");
  if (FlowState* flow = live_flow(pkt)) ++flow->retransmits;
  sim_->schedule_after(config_.retry_delay, [this, pkt]() mutable {
    pkt.hops = 0;
    const SimTime ready = sim_->now() + config_.switch_params.nic_latency;
    sim_->schedule_at(ready, [this, pkt, ready] { hop(pkt, pkt.src, ready, ready); });
  });
}

void Network::flow_packet_delivered(std::uint32_t flow_idx) {
  FlowState& flow = flows_[flow_idx];
  --flow.inflight;
  if (flow.done) {  // straggler of an already-failed flow drains
    maybe_recycle_flow(flow_idx);
    return;
  }
  ++flow.delivered;
  if (flow.delivered == flow.packets_total) {
    finish_flow(flow_idx, /*failed=*/false);
    return;
  }
  pump_flow(flow_idx);
}

void Network::finish_flow(std::uint32_t flow_idx, bool failed) {
  FlowState& flow = flows_[flow_idx];
  flow.done = true;
  flow.failed = failed;
  FlowResult result;
  result.spec = flow.spec;
  result.started = flow.started;
  result.finished = sim_->now();
  result.packets = flow.delivered;
  result.retransmits = flow.retransmits;
  result.failed = failed;
  if (failed) {
    ++flows_failed_;
    counters_.add("net.flows_failed");
  } else {
    ++flows_completed_;
    counters_.add("net.flows_completed");
    flow_completion_.record(result.completion_time());
  }
  // Move the callback out before invoking it: a completion callback may
  // start new flows, growing flows_ and invalidating `flow`. Recycle
  // first, so a callback that immediately restarts the same flow id
  // finds it free.
  auto cb = std::move(flow.on_complete);
  flow.on_complete = nullptr;
  maybe_recycle_flow(flow_idx);
  if (cb) cb(result);
}

void Network::maybe_recycle_flow(std::uint32_t flow_idx) {
  // The FlowDrained gate holds the slot until done + last straggler
  // drained; the pool's reset makes spec.id kNoFlow, so any
  // (impossible by the inflight gate, but cheap to guard) stale dense
  // index fails the live_flow() id-echo check instead of corrupting a
  // new flow.
  flows_.maybe_recycle(flow_idx,
                       [this](FlowState& flow) { flow_index_.erase(flow.spec.id); });
}

SimTime Network::link_busy_time(phy::LinkId id) const {
  return id < link_use_.size() ? link_use_[id].busy : SimTime::zero();
}

SimTime Network::link_mean_queue_delay(phy::LinkId id) const {
  if (id >= link_use_.size() || link_use_[id].queue_delay_samples == 0) {
    return SimTime::zero();
  }
  return link_use_[id].queue_delay_sum /
         static_cast<std::int64_t>(link_use_[id].queue_delay_samples);
}

std::uint64_t Network::link_packets(phy::LinkId id) const {
  return id < link_use_.size() ? link_use_[id].packets : 0;
}

std::size_t Network::switching_port_count() const {
  // A port is *physical* — one per cable end that terminates in
  // switching logic. A link's first segment pays at end_a, its last
  // at end_b; interior (bypassed) cable ends pay nothing — that is the
  // power saving PLP #2 buys. Splitting a link in two does not mint
  // ports: both halves terminate on the same cable ends (deduplicated
  // here), and dark cables cost nothing.
  //
  // The count only changes when the link set does, and every mutation
  // that can change it (PLP reconfigs, lane failures/repairs, manual
  // rebuilds) bumps the topology version — so the O(links) set walk
  // runs once per version instead of once per power query (the CRC
  // asks every epoch).
  if (switching_ends_version_ != topo_->version()) {
    std::set<std::uint64_t> switching_ends;
    for (phy::LinkId id : plant_->link_ids()) {
      const phy::LogicalLink& l = plant_->link(id);
      const auto key = [](phy::CableId c, phy::NodeId n) {
        return (static_cast<std::uint64_t>(c) << 32) | n;
      };
      switching_ends.insert(key(l.segments().front().cable, l.end_a()));
      switching_ends.insert(key(l.segments().back().cable, l.end_b()));
    }
    switching_ends_ = switching_ends.size();
    switching_ends_version_ = topo_->version();
  }
  return switching_ends_;
}

double Network::switch_power_watts(SimTime window) const {
  // Static: every cable end in switching use costs a port (cached
  // against the topology version; see switching_port_count).
  const double static_w =
      config_.switch_params.port_static_w * static_cast<double>(switching_port_count());
  // Dynamic: bits switched in the trailing window. Remember the widest
  // window ever queried so the append-side pruning keeps enough log.
  power_retention_ = std::max(power_retention_, window);
  const SimTime now = sim_->now();
  const SimTime from = now >= window ? now - window : SimTime::zero();
  // A window wider than the retained history can only be answered for
  // the covered span [pruned_time, now]: clamp the window start there
  // and normalise by the covered duration, so the rate is exact over
  // what was observed instead of silently under-counting. (Subsequent
  // queries get full coverage — retention was widened above.)
  const SimTime covered_from = std::max(from, switched_bits_pruned_time_);
  // Baseline: cumulative bits at the last entry before the (covered)
  // window starts. If every retained entry is inside the window the
  // baseline is whatever was pruned off the front.
  std::uint64_t bits_before = switched_bits_pruned_;
  for (const auto& [t, bits] : switched_bits_log_) {
    if (t >= covered_from) break;
    bits_before = bits;
  }
  const double bits_in_window = static_cast<double>(switched_bits_total_ - bits_before);
  const double seconds = covered_from > from
                             ? std::max((now - covered_from).sec(), 1e-12)
                             : std::max(window.sec(), 1e-12);
  const double dynamic_w = bits_in_window * config_.switch_params.pj_per_bit * 1e-12 / seconds;
  return static_w + dynamic_w;
}

}  // namespace rsf::fabric
