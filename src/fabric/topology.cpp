#include "fabric/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsf::fabric {

Topology::Topology(phy::PhysicalPlant* plant, plp::PlpEngine* engine,
                   std::uint32_t node_count)
    : plant_(plant), engine_(engine), node_count_(node_count) {
  if (plant_ == nullptr || engine_ == nullptr) {
    throw std::invalid_argument("Topology: null plant or engine");
  }
  engine_->add_topology_observer(
      [this](const std::vector<phy::LinkId>& removed, const std::vector<phy::LinkId>& created) {
        on_links_changed(removed, created);
      });
  engine_->add_readiness_observer([this](phy::LinkId, bool) { ++version_; });
  // Physical failures change link usability without changing the link
  // set: bump the version so routing tables refresh.
  plant_->add_change_observer([this] { ++version_; });
  rebuild();
}

void Topology::rebuild() {
  links_at_.assign(node_count_, {});
  for (phy::LinkId id : plant_->link_ids()) {
    const phy::LogicalLink& l = plant_->link(id);
    if (l.end_a() < node_count_) links_at_[l.end_a()].push_back(id);
    if (l.end_b() < node_count_) links_at_[l.end_b()].push_back(id);
  }
  // link_ids() is sorted, so each adjacency list already is.
  ++version_;
}

void Topology::on_links_changed(const std::vector<phy::LinkId>&,
                                const std::vector<phy::LinkId>&) {
  // Change sets are small but touch arbitrary nodes; a full rebuild is
  // O(links) and reconfigurations are rare relative to packet events.
  rebuild();
}

void Topology::set_coord(phy::NodeId node, Coord c) {
  if (node >= coords_.size()) coords_.resize(std::max<std::size_t>(node + 1, node_count_));
  coords_[node] = c;
}

bool Topology::usable(phy::LinkId link) const {
  return plant_->has_link(link) && plant_->link(link).ready() && !engine_->link_busy(link);
}

std::vector<phy::LinkId> Topology::usable_links_at(phy::NodeId node) const {
  std::vector<phy::LinkId> out;
  for (phy::LinkId id : links_at(node)) {
    if (usable(id)) out.push_back(id);
  }
  return out;
}

std::optional<phy::LinkId> Topology::link_between(phy::NodeId a, phy::NodeId b) const {
  for (phy::LinkId id : links_at(a)) {
    const phy::LogicalLink& l = plant_->link(id);
    if (l.connects(b) && usable(id)) return id;
  }
  return std::nullopt;
}

}  // namespace rsf::fabric
