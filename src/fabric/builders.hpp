// rsf::fabric — rack builders.
//
// Builders assemble a PhysicalPlant (cables + initial logical links)
// and its Topology for the standard rack shapes the experiments use:
//
//  * grid  — W x H mesh, the paper's Figure 2 starting point;
//  * torus — grid + wraparound links (built natively, for baselines;
//            the adaptive fabric *reaches* this shape via PLP instead);
//  * ring / chain — 1-D shapes for latency breakdown experiments.
//
// All cables get `lanes_per_cable` lanes, but only `lanes_per_link`
// are claimed by the initial links — the rest stay free (dark) for the
// CRC to provision. Figure 2's "grid at two lanes per link" is
// grid(w, h, lanes_per_cable=2, lanes_per_link=2).
#pragma once

#include <memory>
#include <vector>

#include "fabric/network.hpp"
#include "fabric/router.hpp"
#include "fabric/topology.hpp"
#include "phy/plant.hpp"
#include "plp/engine.hpp"
#include "sim/simulator.hpp"

namespace rsf::fabric {

struct RackParams {
  int width = 4;
  int height = 4;
  /// Physical lanes in every cable.
  int lanes_per_cable = 2;
  /// Lanes claimed by each initial logical link (<= lanes_per_cable).
  int lanes_per_link = 2;
  phy::DataRate lane_rate = phy::DataRate::gbps(25);
  /// Distance between adjacent nodes (the paper assumes a switching
  /// element every ~2 m of rack).
  double hop_meters = 2.0;
  phy::Medium medium = phy::Medium::kFiber;
  phy::LanePowerParams lane_power{};
  double initial_ber = 1e-12;
  phy::FecScheme fec = phy::FecScheme::kRsKr4;
  phy::PlantConfig plant_config{};
  plp::PlpTimings plp_timings{};
  plp::PlpCapabilities plp_caps = plp::PlpCapabilities::all();
  NetworkConfig net_config{};
  RoutingPolicy routing = RoutingPolicy::kMinCost;
  /// Optional shared metric registry handed to the Network (and by the
  /// runtime to every component). Must outlive the rack. nullptr lets
  /// the network own a private one.
  telemetry::Registry* registry = nullptr;
};

/// Everything a bench needs, wired together. Members are declared in
/// dependency order so destruction is safe.
struct Rack {
  rsf::sim::Simulator* sim = nullptr;
  std::unique_ptr<phy::PhysicalPlant> plant;
  std::unique_ptr<plp::PlpEngine> engine;
  std::unique_ptr<Topology> topology;
  std::unique_ptr<Router> router;
  std::unique_ptr<Network> network;
  RackParams params;

  [[nodiscard]] phy::NodeId node_at(int x, int y) const;
  [[nodiscard]] int node_count() const { return params.width * params.height; }

  /// Total electrical power: plant (lanes + bypass) plus switching.
  [[nodiscard]] double total_power_watts() const;
};

/// W x H mesh; every adjacent pair joined by a cable; initial links are
/// adjacent links over the first `lanes_per_link` lanes, brought up
/// instantly (bring-up happens before the experiment clock matters).
[[nodiscard]] Rack build_grid(rsf::sim::Simulator* sim, RackParams params);

/// Same as build_grid but adds wraparound cables and links: a native
/// torus baseline.
[[nodiscard]] Rack build_torus(rsf::sim::Simulator* sim, RackParams params);

/// N nodes in a line (width=N, height=1), cable per adjacent pair.
[[nodiscard]] Rack build_chain(rsf::sim::Simulator* sim, int n, RackParams params);

/// N nodes in a ring.
[[nodiscard]] Rack build_ring(rsf::sim::Simulator* sim, int n, RackParams params);

}  // namespace rsf::fabric
