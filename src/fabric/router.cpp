#include "fabric/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace rsf::fabric {

namespace {
constexpr double kUnreachable = std::numeric_limits<double>::infinity();
/// Reference frame used to convert a link into an unloaded-latency cost.
constexpr auto kRefFrame = rsf::phy::DataSize::bytes(1024);
}  // namespace

Router::Router(const Topology* topo, RoutingPolicy policy) : topo_(topo), policy_(policy) {
  if (topo_ == nullptr) throw std::invalid_argument("Router: null topology");
  tables_.resize(topo_->node_count());
}

void Router::set_policy(RoutingPolicy p) { policy_ = p; }

void Router::set_price_fn(PriceFn fn) {
  price_fn_ = std::move(fn);
  ++price_generation_;
}

double Router::default_cost(phy::LinkId link) const {
  const phy::LogicalLink& l = topo_->plant().link(link);
  // Unloaded one-way latency of the reference frame, in nanoseconds,
  // plus the switching penalty paid at the hop's receiving node.
  return l.one_way_latency(kRefFrame).ns() + hop_penalty_ns_;
}

double Router::cost(phy::LinkId link) const {
  if (price_fn_) {
    const double p = price_fn_(link);
    // +inf means "priced out" and must exclude the link, not fall back
    // to the default cost. Only NaN (no opinion) falls through.
    if (!std::isnan(p)) return std::max(p, 0.0) + hop_penalty_ns_;
  }
  return default_cost(link);
}

Router::DistTable& Router::table_for(phy::NodeId dst) {
  // Callers guarantee dst < node_count(); tables_ is sized to match at
  // construction (node count is fixed for a rack's lifetime).
  DistTable& t = tables_[dst];
  if (t.topo_version == topo_->version() && t.price_generation == price_generation_ &&
      !t.dist.empty()) {
    return t;
  }
  const std::uint32_t n = topo_->node_count();
  t.topo_version = topo_->version();
  t.price_generation = price_generation_;
  t.dist.assign(n, kUnreachable);
  t.next.assign(n, kNextUnknown);

  using Item = std::pair<double, phy::NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[dst] = 0.0;
  pq.emplace(0.0, dst);
  while (!pq.empty()) {
    const auto [d, node] = pq.top();
    pq.pop();
    if (d > t.dist[node]) continue;
    for (phy::LinkId id : topo_->links_at(node)) {
      if (!topo_->usable(id)) continue;
      // Reserved links are private circuits, invisible to public
      // routing (their owner takes them directly in the transport).
      if (topo_->plant().link(id).reserved_for().has_value()) continue;
      const phy::NodeId next = topo_->plant().link(id).other_end(node);
      if (next >= n) continue;
      const double nd = d + cost(id);
      if (nd < t.dist[next]) {
        t.dist[next] = nd;
        pq.emplace(nd, next);
      }
    }
  }
  return t;
}

std::optional<phy::LinkId> Router::next_hop(phy::NodeId at, phy::NodeId dst) {
  if (at == dst) return std::nullopt;
  if (policy_ == RoutingPolicy::kDimensionOrder) {
    return next_hop_dimension_order(at, dst);
  }
  return next_hop_min_cost(at, dst);
}

std::optional<phy::LinkId> Router::next_hop_min_cost(phy::NodeId at, phy::NodeId dst) {
  if (dst >= tables_.size()) return std::nullopt;
  DistTable& t = table_for(dst);
  if (at >= t.dist.size() || t.dist[at] == kUnreachable) return std::nullopt;
  // The per-(node, dst) argmin is memoized alongside dist and shares
  // its validity: any topology-version bump (lane state, reconfig,
  // reservations — set_reservation notifies the plant's observers) or
  // price bump rebuilt the table above and reset next[] with it.
  if (t.next[at] != kNextUnknown) {
    return t.next[at] == kNextNone ? std::nullopt : std::optional(t.next[at]);
  }
  double best = kUnreachable;
  std::optional<phy::LinkId> best_link;
  for (phy::LinkId id : topo_->links_at(at)) {
    if (!topo_->usable(id)) continue;
    if (topo_->plant().link(id).reserved_for().has_value()) continue;
    const phy::NodeId next = topo_->plant().link(id).other_end(at);
    if (next >= t.dist.size() || t.dist[next] == kUnreachable) continue;
    const double through = cost(id) + t.dist[next];
    if (through < best) {
      best = through;
      best_link = id;
    }
  }
  t.next[at] = best_link.value_or(kNextNone);
  return best_link;
}

namespace {
/// Signed step (-1, 0, +1) that moves `from` toward `to`: the shorter
/// ring direction when the dimension wraps, the plain sign otherwise.
int dim_step(int from, int to, int n, bool wraps) {
  if (from == to) return 0;
  if (!wraps) return to > from ? +1 : -1;
  const int fwd = ((to - from) % n + n) % n;   // steps going +1
  const int back = n - fwd;                    // steps going -1
  return fwd <= back ? +1 : -1;
}
}  // namespace

std::optional<phy::LinkId> Router::next_hop_dimension_order(phy::NodeId at,
                                                            phy::NodeId dst) const {
  const auto ac = topo_->coord(at);
  const auto dc = topo_->coord(dst);
  const int w = topo_->grid_w();
  const int h = topo_->grid_h();
  if (!ac || !dc || w <= 0 || h <= 0) return std::nullopt;

  // X first, then Y. Strict dimension-order: only the wanted
  // direction is acceptable — falling back to the opposite direction
  // would let two adjacent nodes bounce a packet forever. If the
  // wanted link is unusable (mid-reconfiguration) the transport layer
  // waits and retries.
  const int want_dx = dim_step(ac->x, dc->x, w, topo_->wrap_x());
  const int want_dy = want_dx == 0 ? dim_step(ac->y, dc->y, h, topo_->wrap_y()) : 0;
  if (want_dx == 0 && want_dy == 0) return std::nullopt;

  for (phy::LinkId id : topo_->links_at(at)) {
    if (!topo_->usable(id)) continue;
    const phy::LogicalLink& l = topo_->plant().link(id);
    // Dimension-order is the packet-switched baseline: it only uses
    // single-segment (adjacent) links.
    if (l.bypass_joints() != 0) continue;
    if (l.reserved_for().has_value()) continue;
    const auto oc = topo_->coord(l.other_end(at));
    if (!oc) continue;
    const int dx = oc->x - ac->x;
    const int dy = oc->y - ac->y;
    // Normalise wrap moves (e.g. x: 0 -> w-1 is a -1 step).
    const int sx = dx == 0 ? 0 : (std::abs(dx) == 1 ? dx : (dx > 0 ? -1 : +1));
    const int sy = dy == 0 ? 0 : (std::abs(dy) == 1 ? dy : (dy > 0 ? -1 : +1));
    if (want_dx != 0 && sx == want_dx && sy == 0) return id;
    if (want_dx == 0 && want_dy != 0 && sy == want_dy && sx == 0) return id;
  }
  return std::nullopt;
}

std::optional<double> Router::path_cost(phy::NodeId src, phy::NodeId dst) {
  if (src == dst) return 0.0;
  if (dst >= tables_.size()) return std::nullopt;
  const DistTable& t = table_for(dst);
  if (src >= t.dist.size() || t.dist[src] == kUnreachable) return std::nullopt;
  return t.dist[src];
}

std::vector<phy::LinkId> Router::path(phy::NodeId src, phy::NodeId dst) {
  std::vector<phy::LinkId> out;
  phy::NodeId at = src;
  // Bounded walk to guard against (impossible under consistent tables)
  // loops.
  for (std::uint32_t i = 0; i <= topo_->node_count() && at != dst; ++i) {
    const auto link = next_hop_min_cost(at, dst);
    if (!link) return {};
    out.push_back(*link);
    at = topo_->plant().link(*link).other_end(at);
  }
  return at == dst ? out : std::vector<phy::LinkId>{};
}

int Router::hop_count(phy::NodeId src, phy::NodeId dst) {
  if (src == dst) return 0;
  const auto p = path(src, dst);
  return p.empty() ? -1 : static_cast<int>(p.size());
}

}  // namespace rsf::fabric
