#include "workload/crossrack.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/fleet.hpp"

namespace rsf::workload {

using rsf::sim::SimTime;

CrossRackJob::CrossRackJob(runtime::FleetRuntime* fleet, phy::DataSize packet_size,
                           SimTime start)
    : fleet_(fleet), packet_size_(packet_size), start_(start) {
  if (fleet_ == nullptr) throw std::invalid_argument("CrossRackJob: null fleet");
}

void CrossRackJob::launch(
    const std::vector<std::pair<fabric::RackNode, fabric::RackNode>>& pairs,
    phy::DataSize bytes_per_pair, DoneCallback on_done) {
  if (outstanding_ > 0 || finished_) {
    throw std::logic_error("CrossRackJob: run() called twice");
  }
  if (pairs.empty()) throw std::invalid_argument("CrossRackJob: no (src, dst) pairs");
  on_done_ = std::move(on_done);
  outstanding_ = pairs.size();
  completion_times_.reserve(pairs.size());
  fabric::FlowId job_flow = 1;
  for (const auto& [src, dst] : pairs) {
    runtime::FleetFlowSpec spec;
    spec.id = job_flow++;
    spec.src = src;
    spec.dst = dst;
    spec.size = bytes_per_pair;
    spec.packet_size = packet_size_;
    spec.start = start_;
    if (src.rack != dst.rack) ++result_.cross_rack_flows;
    fleet_->start_flow(spec, [this](const runtime::FleetFlowResult& r) {
      ++result_.flows;
      if (r.failed) {
        ++result_.failed;
      } else {
        completion_times_.push_back(r.completion_time());
        result_.max_flow = std::max(result_.max_flow, r.completion_time());
        result_.job_completion = std::max(result_.job_completion, r.finished);
      }
      result_.spine_hops += static_cast<std::uint64_t>(r.spine_hops);
      result_.retransmits += r.retransmits;
      if (--outstanding_ == 0) {
        std::sort(completion_times_.begin(), completion_times_.end());
        if (!completion_times_.empty()) {
          result_.median_flow = completion_times_[completion_times_.size() / 2];
        }
        finished_ = true;
        if (on_done_) on_done_(result_);
      }
    });
  }
}

CrossRackShuffle::CrossRackShuffle(runtime::FleetRuntime* fleet,
                                   CrossRackShuffleConfig config)
    : CrossRackJob(fleet, config.packet_size, config.start), config_(std::move(config)) {
  if (config_.mappers.empty() || config_.reducers.empty()) {
    throw std::invalid_argument("CrossRackShuffle: need mappers and reducers");
  }
}

void CrossRackShuffle::run(DoneCallback on_done) {
  std::vector<std::pair<fabric::RackNode, fabric::RackNode>> pairs;
  pairs.reserve(config_.mappers.size() * config_.reducers.size());
  for (const fabric::RackNode& m : config_.mappers) {
    for (const fabric::RackNode& r : config_.reducers) {
      if (m == r) continue;  // a node keeps its own partition locally
      pairs.emplace_back(m, r);
    }
  }
  if (pairs.empty()) {
    throw std::invalid_argument("CrossRackShuffle: every mapper is its own reducer");
  }
  launch(pairs, config_.bytes_per_pair, std::move(on_done));
}

CrossRackIncast::CrossRackIncast(runtime::FleetRuntime* fleet, CrossRackIncastConfig config)
    : CrossRackJob(fleet, config.packet_size, config.start), config_(std::move(config)) {
  if (config_.sources.empty()) {
    throw std::invalid_argument("CrossRackIncast: need sources");
  }
}

void CrossRackIncast::run(DoneCallback on_done) {
  std::vector<std::pair<fabric::RackNode, fabric::RackNode>> pairs;
  pairs.reserve(config_.sources.size());
  for (const fabric::RackNode& s : config_.sources) {
    if (s == config_.sink) continue;
    pairs.emplace_back(s, config_.sink);
  }
  if (pairs.empty()) {
    throw std::invalid_argument("CrossRackIncast: sink is the only source");
  }
  launch(pairs, config_.bytes_per_source, std::move(on_done));
}

}  // namespace rsf::workload
