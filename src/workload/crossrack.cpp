#include "workload/crossrack.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/fleet.hpp"

namespace rsf::workload {

using rsf::sim::SimTime;

CrossRackJob::CrossRackJob(runtime::FleetRuntime* fleet, phy::DataSize packet_size,
                           SimTime start)
    : fleet_(fleet), packet_size_(packet_size), start_(start) {
  if (fleet_ == nullptr) throw std::invalid_argument("CrossRackJob: null fleet");
}

void CrossRackJob::launch(
    const std::vector<std::pair<fabric::RackNode, fabric::RackNode>>& pairs,
    phy::DataSize bytes_per_pair, DoneCallback on_done) {
  if (outstanding_ > 0 || finished_) {
    throw std::logic_error("CrossRackJob: run() called twice");
  }
  if (pairs.empty()) throw std::invalid_argument("CrossRackJob: no (src, dst) pairs");
  on_done_ = std::move(on_done);
  outstanding_ = pairs.size();
  completion_times_.reserve(pairs.size());
  fabric::FlowId job_flow = 1;
  for (const auto& [src, dst] : pairs) {
    runtime::FleetFlowSpec spec;
    spec.id = job_flow++;
    spec.src = src;
    spec.dst = dst;
    spec.size = bytes_per_pair;
    spec.packet_size = packet_size_;
    spec.start = start_;
    if (src.rack != dst.rack) ++result_.cross_rack_flows;
    fleet_->start_flow(spec, [this](const runtime::FleetFlowResult& r) {
      ++result_.flows;
      if (r.failed) {
        ++result_.failed;
      } else {
        completion_times_.push_back(r.completion_time());
        result_.max_flow = std::max(result_.max_flow, r.completion_time());
        result_.job_completion = std::max(result_.job_completion, r.finished);
      }
      result_.spine_hops += static_cast<std::uint64_t>(r.spine_hops);
      result_.retransmits += r.retransmits;
      if (--outstanding_ == 0) {
        std::sort(completion_times_.begin(), completion_times_.end());
        if (!completion_times_.empty()) {
          result_.median_flow = completion_times_[completion_times_.size() / 2];
        }
        finished_ = true;
        if (on_done_) on_done_(result_);
      }
    });
  }
}

CrossRackShuffle::CrossRackShuffle(runtime::FleetRuntime* fleet,
                                   CrossRackShuffleConfig config)
    : CrossRackJob(fleet, config.packet_size, config.start), config_(std::move(config)) {
  if (config_.mappers.empty() || config_.reducers.empty()) {
    throw std::invalid_argument("CrossRackShuffle: need mappers and reducers");
  }
}

void CrossRackShuffle::run(DoneCallback on_done) {
  std::vector<std::pair<fabric::RackNode, fabric::RackNode>> pairs;
  pairs.reserve(config_.mappers.size() * config_.reducers.size());
  for (const fabric::RackNode& m : config_.mappers) {
    for (const fabric::RackNode& r : config_.reducers) {
      if (m == r) continue;  // a node keeps its own partition locally
      pairs.emplace_back(m, r);
    }
  }
  if (pairs.empty()) {
    throw std::invalid_argument("CrossRackShuffle: every mapper is its own reducer");
  }
  launch(pairs, config_.bytes_per_pair, std::move(on_done));
}

CrossRackIncast::CrossRackIncast(runtime::FleetRuntime* fleet, CrossRackIncastConfig config)
    : CrossRackJob(fleet, config.packet_size, config.start), config_(std::move(config)) {
  if (config_.sources.empty()) {
    throw std::invalid_argument("CrossRackIncast: need sources");
  }
}

void CrossRackIncast::run(DoneCallback on_done) {
  std::vector<std::pair<fabric::RackNode, fabric::RackNode>> pairs;
  pairs.reserve(config_.sources.size());
  for (const fabric::RackNode& s : config_.sources) {
    if (s == config_.sink) continue;
    pairs.emplace_back(s, config_.sink);
  }
  if (pairs.empty()) {
    throw std::invalid_argument("CrossRackIncast: sink is the only source");
  }
  launch(pairs, config_.bytes_per_source, std::move(on_done));
}

// ---------------------------------------------------------------------------
// Skewed-fleet scenarios.
// ---------------------------------------------------------------------------

namespace {

runtime::RackSpec grid_rack(int w, int h) {
  runtime::RackSpec rack;
  rack.config.shape = runtime::RackShape::kGrid;
  rack.config.rack.width = w;
  rack.config.rack.height = h;
  rack.config.enable_crc = false;  // isolate the fleet-scope control loop
  return rack;
}

runtime::SpineSpec spine_link(std::uint32_t a, std::uint32_t b, double gbps,
                              double loss_prob) {
  runtime::SpineSpec s;
  s.rack_a = a;
  s.rack_b = b;
  s.rate = phy::DataRate::gbps(gbps);
  s.latency = rsf::sim::SimTime::microseconds(2);
  s.loss_prob = loss_prob;
  return s;
}

runtime::FleetConfig scenario_fleet(const SkewedScenarioConfig& cfg) {
  runtime::FleetConfig fc;
  switch (cfg.kind) {
    case SkewedScenarioKind::kHotRackIncast:
      // A line 0 - 1 - 2 - 3: rack 3 swarms rack 0 while racks 1 and
      // 2 feed background into the same inbound legs — the 1 -> 0 leg
      // carries everything and the hot pair's statistical share there
      // drops to half.
      for (int i = 0; i < 4; ++i) fc.racks.push_back(grid_rack(4, 4));
      fc.spine.push_back(spine_link(0, 1, 25, cfg.loss_prob));
      fc.spine.push_back(spine_link(1, 2, 25, cfg.loss_prob));
      fc.spine.push_back(spine_link(2, 3, 25, cfg.loss_prob));
      break;
    case SkewedScenarioKind::kSlowSpineLeg:
      // A ring whose 0 <-> 1 leg runs at a fifth of its siblings':
      // the hot pair's 1-hop route crosses the slow leg while a 2-hop
      // detour through rack 2 exists. Without repricing a reservation
      // pins the (then-cheapest) slow leg — the circuit pitfall; with
      // repricing the promotion lands on the detour and contends with
      // the background on the 2 -> 0 leg instead.
      for (int i = 0; i < 3; ++i) fc.racks.push_back(grid_rack(4, 4));
      fc.spine.push_back(spine_link(0, 1, 5, cfg.loss_prob));
      fc.spine.push_back(spine_link(1, 2, 25, cfg.loss_prob));
      fc.spine.push_back(spine_link(2, 0, 25, cfg.loss_prob));
      break;
    case SkewedScenarioKind::kMixedRackSizes:
      // Mixed sizes on a line 0 - 1 - 2: a small edge rack, a big
      // compute rack, and a mid-size rack — the skew the single
      // spanning shuffle runs on, with a background incast transiting
      // the big rack into the same 1 -> 0 leg.
      fc.racks.push_back(grid_rack(2, 2));
      fc.racks.push_back(grid_rack(4, 4));
      fc.racks.push_back(grid_rack(3, 3));
      fc.spine.push_back(spine_link(0, 1, 25, cfg.loss_prob));
      fc.spine.push_back(spine_link(1, 2, 25, cfg.loss_prob));
      break;
  }
  fc.seed = cfg.seed;
  fc.workers = cfg.workers;
  fc.enable_controller = true;
  fc.controller.epoch = rsf::sim::SimTime::microseconds(20);
  fc.controller.utilization_weight = cfg.utilization_weight;
  // "Weight 0 freezes prices" must mean it: zero the backlog term too,
  // or its 0.25 default keeps repricing behind the sweep's back.
  if (cfg.utilization_weight == 0.0) fc.controller.backlog_weight_per_us = 0.0;
  fc.controller.reservations.enable = cfg.reservations;
  fc.controller.reservations.fraction = cfg.reservation_fraction;
  // Low enough that a multi-hop pair still filling its pipeline keeps
  // its hot streak; the cumulative-demand ranking picks the winner.
  fc.controller.reservations.hot_bytes_per_epoch = 8 * 1024;
  fc.controller.reservations.idle_bytes_per_epoch = 1024;
  fc.controller.reservations.promote_after = 2;
  fc.controller.reservations.demote_after = 6;
  // One scarce circuit: the hottest pair wins it, everyone else
  // shares the residual — the crossover the ext9 sweep quantifies.
  fc.controller.reservations.max_reservations = 1;
  return fc;
}

}  // namespace

SkewedFleetScenario::SkewedFleetScenario(SkewedScenarioConfig config)
    : config_(config),
      fleet_(std::make_unique<runtime::FleetRuntime>(scenario_fleet(config))) {
  if (config_.hot_bytes.bit_count() <= 0) {
    throw std::invalid_argument("SkewedFleetScenario: non-positive hot_bytes");
  }
}

SkewedFleetScenario::~SkewedFleetScenario() = default;

SkewedScenarioResult SkewedFleetScenario::run() {
  if (ran_) throw std::logic_error("SkewedFleetScenario: run() called twice");
  ran_ = true;
  runtime::FleetRuntime& f = *fleet_;
  const phy::DataSize bg_bytes = config_.hot_bytes;

  CrossRackJob* hot = nullptr;
  CrossRackJob* background = nullptr;
  switch (config_.kind) {
    case SkewedScenarioKind::kHotRackIncast: {
      // Hot: rack 3's row-0 nodes swarm one sink in rack 0 — the
      // fleet's hottest pair, crossing every inbound leg.
      CrossRackIncastConfig hot_cfg;
      for (int x = 0; x < 4; ++x) hot_cfg.sources.push_back(f.at(3, x, 0));
      hot_cfg.sink = f.at(0, 0, 0);
      hot_cfg.bytes_per_source = config_.hot_bytes;
      auto& hj = f.add_incast(hot_cfg);
      // Background: racks 1 and 2 feed the same victim rack — each
      // pair at half the hot pair's demand, together dominating the
      // shared 1 -> 0 leg.
      CrossRackIncastConfig bg_cfg;
      bg_cfg.sources = {f.at(1, 0, 3), f.at(1, 3, 3), f.at(2, 0, 3), f.at(2, 3, 3)};
      bg_cfg.sink = f.at(0, 3, 3);
      bg_cfg.bytes_per_source = bg_bytes;
      auto& bj = f.add_incast(bg_cfg);
      hot = &hj;
      background = &bj;
      break;
    }
    case SkewedScenarioKind::kSlowSpineLeg: {
      // Hot: rack 1 -> rack 0 across the slow leg (or its detour).
      CrossRackIncastConfig hot_cfg;
      for (int x = 0; x < 4; ++x) hot_cfg.sources.push_back(f.at(1, x, 0));
      hot_cfg.sink = f.at(0, 0, 0);
      hot_cfg.bytes_per_source = config_.hot_bytes;
      auto& hj = f.add_incast(hot_cfg);
      // Background: rack 2 -> rack 0 on the fast 2 -> 0 leg — the
      // detour's victim when repricing pushes hot traffic around.
      CrossRackIncastConfig bg_cfg;
      bg_cfg.sources = {f.at(2, 0, 0), f.at(2, 1, 0), f.at(2, 2, 0)};
      bg_cfg.sink = f.at(0, 3, 3);
      bg_cfg.bytes_per_source = bg_bytes;
      auto& bj = f.add_incast(bg_cfg);
      hot = &hj;
      background = &bj;
      break;
    }
    case SkewedScenarioKind::kMixedRackSizes: {
      // Hot: the mid rack transits the big rack into the edge rack's
      // sink — pair (2, 0) crosses two legs, the fleet's biggest
      // spine consumer in byte·hops and the promotion target.
      CrossRackIncastConfig hot_cfg;
      hot_cfg.sources = {f.at(2, 0, 0), f.at(2, 1, 0), f.at(2, 2, 0)};
      hot_cfg.sink = f.at(0, 0, 0);
      hot_cfg.bytes_per_source = config_.hot_bytes;
      auto& hj = f.add_incast(hot_cfg);
      // Background: one shuffle spanning all three rack sizes — the
      // big rack's mappers fan out to reducers in the small and mid
      // racks (pairs (1, 0) and (1, 2)); its (1, 0) flows share the
      // 1 -> 0 leg with the hot transit pair.
      CrossRackShuffleConfig bg_cfg;
      bg_cfg.mappers = {f.at(1, 0, 0), f.at(1, 1, 0), f.at(1, 2, 0)};
      bg_cfg.reducers = {f.at(0, 1, 1), f.at(2, 2, 2)};
      bg_cfg.bytes_per_pair = bg_bytes;
      auto& bj = f.add_shuffle(bg_cfg);
      hot = &hj;
      background = &bj;
      break;
    }
  }

  SkewedScenarioResult result;
  hot->run([&result](const CrossRackResult& r) { result.hot = r; });
  background->run([&result](const CrossRackResult& r) { result.background = r; });
  f.start();
  f.run_until();
  f.stop();
  f.run_until();  // drain anything the stop released
  if (!hot->finished() || !background->finished()) {
    throw std::logic_error("SkewedFleetScenario: jobs did not drain");
  }
  result.promotions = f.controller().promotions();
  result.demotions = f.controller().demotions();
  const telemetry::CounterSet& c = f.spine().counters();
  result.preemptions = c.get("spine.reservation_preemptions");
  result.reserved_bytes = c.get("spine.reserved_bytes");
  return result;
}

}  // namespace rsf::workload
