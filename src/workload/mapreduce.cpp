#include "workload/mapreduce.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsf::workload {

using rsf::sim::SimTime;

ShuffleJob::ShuffleJob(rsf::sim::Simulator* sim, fabric::Network* net, ShuffleConfig config)
    : sim_(sim), net_(net), config_(std::move(config)) {
  if (sim_ == nullptr || net_ == nullptr) {
    throw std::invalid_argument("ShuffleJob: null dependency");
  }
  if (config_.mappers.empty() || config_.reducers.empty()) {
    throw std::invalid_argument("ShuffleJob: need mappers and reducers");
  }
}

void ShuffleJob::run(DoneCallback on_done) {
  if (outstanding_ != 0 || finished_) throw std::logic_error("ShuffleJob: already run");
  on_done_ = std::move(on_done);
  // A start time in the past means "now" — and the job completion is
  // measured from the effective start, not the stale one.
  config_.start = std::max(config_.start, sim_->now());
  fabric::FlowId id = config_.first_flow_id;
  for (phy::NodeId m : config_.mappers) {
    for (phy::NodeId r : config_.reducers) {
      if (m == r) continue;  // co-located mapper/reducer: free
      fabric::FlowSpec spec;
      spec.id = id++;
      spec.src = m;
      spec.dst = r;
      spec.size = config_.bytes_per_pair;
      spec.packet_size = config_.packet_size;
      spec.start = config_.start;
      ++outstanding_;
      net_->start_flow(spec,
                       [this](const fabric::FlowResult& res) { on_flow_done(res); });
    }
  }
  if (outstanding_ == 0) {
    // Degenerate job (all co-located): completes instantly.
    finished_ = true;
    if (on_done_) on_done_(result_);
  }
}

void ShuffleJob::on_flow_done(const fabric::FlowResult& r) {
  ++result_.flows;
  if (r.failed) {
    ++result_.failed;
  } else {
    completion_times_.push_back(r.completion_time());
  }
  if (--outstanding_ > 0) return;

  finished_ = true;
  if (!completion_times_.empty()) {
    std::sort(completion_times_.begin(), completion_times_.end());
    result_.median_flow = completion_times_[completion_times_.size() / 2];
    result_.max_flow = completion_times_.back();
    // The barrier clears when the last transfer lands, measured from
    // the common start.
    result_.job_completion = SimTime::picoseconds(
        (sim_->now() - config_.start).ps());
  }
  if (on_done_) on_done_(result_);
}

}  // namespace rsf::workload
