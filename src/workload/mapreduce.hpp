// rsf::workload — MapReduce shuffle jobs.
//
// The paper's motivating example (§2): a reducer must wait for data
// from *all* mappers, so the slowest path gates the whole job. A
// ShuffleJob runs the all-to-all transfer and reports both the job
// completion time (max over flows) and the straggler gap (max/median),
// quantifying the slowest-link effect the adaptive fabric attacks.
#pragma once

#include <functional>
#include <vector>

#include "fabric/network.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rsf::workload {

struct ShuffleConfig {
  std::vector<phy::NodeId> mappers;
  std::vector<phy::NodeId> reducers;
  /// Bytes each mapper sends to each reducer.
  phy::DataSize bytes_per_pair = phy::DataSize::megabytes(1);
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
  fabric::FlowId first_flow_id = 1'000'000;  // keep clear of other generators
};

struct ShuffleResult {
  rsf::sim::SimTime job_completion = rsf::sim::SimTime::zero();
  rsf::sim::SimTime median_flow = rsf::sim::SimTime::zero();
  rsf::sim::SimTime max_flow = rsf::sim::SimTime::zero();
  std::uint64_t flows = 0;
  std::uint64_t failed = 0;

  /// Straggler gap: how much the slowest transfer lags the median.
  [[nodiscard]] double straggler_ratio() const {
    return median_flow.ps() > 0
               ? static_cast<double>(max_flow.ps()) / static_cast<double>(median_flow.ps())
               : 0.0;
  }
};

class ShuffleJob {
 public:
  using DoneCallback = std::function<void(const ShuffleResult&)>;

  ShuffleJob(rsf::sim::Simulator* sim, fabric::Network* net, ShuffleConfig config);

  /// Launch all mapper->reducer flows at config.start. The callback
  /// fires when the last flow lands (the reducer barrier clears).
  void run(DoneCallback on_done);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const ShuffleResult& result() const { return result_; }

 private:
  void on_flow_done(const fabric::FlowResult& r);

  rsf::sim::Simulator* sim_;
  fabric::Network* net_;
  ShuffleConfig config_;
  DoneCallback on_done_;
  std::vector<rsf::sim::SimTime> completion_times_;
  std::uint64_t outstanding_ = 0;
  bool finished_ = false;
  ShuffleResult result_;
};

}  // namespace rsf::workload
