#include "workload/chaos.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/fleet.hpp"
#include "sim/random.hpp"

namespace rsf::workload {

using rsf::sim::SimTime;

namespace {

constexpr std::uint32_t kRacks = 4;
constexpr std::uint32_t kGroups = 2;  // trench A, trench B

std::uint64_t byte_count(phy::DataSize size) {
  return static_cast<std::uint64_t>(std::max<std::int64_t>(0, size.bit_count() / 8));
}

runtime::RackSpec chaos_rack() {
  runtime::RackSpec rack;
  rack.config.shape = runtime::RackShape::kGrid;
  rack.config.rack.width = 4;
  rack.config.rack.height = 4;
  rack.config.enable_crc = false;  // isolate the fleet-scope story
  return rack;
}

runtime::SpineSpec chaos_link(std::uint32_t a, std::uint32_t b, double cost) {
  runtime::SpineSpec s;
  s.rack_a = a;
  s.rack_b = b;
  s.rate = phy::DataRate::gbps(25);
  s.latency = SimTime::microseconds(2);
  s.cost = cost;
  return s;
}

/// The fixed chaos fleet: a four-rack line 0 - 1 - 2 - 3 with TWO
/// parallel links per adjacency — links 0, 2, 4 ride trench A and
/// links 1, 3, 5 trench B — plus link 6, a pricier 0 - 2 bypass
/// outside both trenches. Cutting one trench leaves the line whole on
/// the other; cutting both partitions rack 3; a rack-1 brownout
/// (links 0..3) still leaves 2 -> 0 and 3 -> 0 routable over the
/// bypass. Every latency is equal, so the parallel drive's lookahead
/// is uniform.
runtime::FleetConfig chaos_fleet(const ChaosScenarioConfig& cfg) {
  runtime::FleetConfig fc;
  for (std::uint32_t i = 0; i < kRacks; ++i) fc.racks.push_back(chaos_rack());
  fc.spine.push_back(chaos_link(0, 1, 1.0));  // 0: trench A
  fc.spine.push_back(chaos_link(0, 1, 1.0));  // 1: trench B
  fc.spine.push_back(chaos_link(1, 2, 1.0));  // 2: trench A
  fc.spine.push_back(chaos_link(1, 2, 1.0));  // 3: trench B
  fc.spine.push_back(chaos_link(2, 3, 1.0));  // 4: trench A
  fc.spine.push_back(chaos_link(2, 3, 1.0));  // 5: trench B
  fc.spine.push_back(chaos_link(0, 2, 2.5));  // 6: the brownout bypass
  for (runtime::SpineSpec& s : fc.spine) s.loss_prob = cfg.loss_prob;
  fc.seed = cfg.seed;
  fc.workers = cfg.workers;
  fc.enable_controller = true;
  fc.controller.epoch = SimTime::microseconds(20);
  fc.controller.reservations.enable = cfg.reservations;
  fc.controller.reservations.fraction = 0.6;
  fc.controller.reservations.hot_bytes_per_epoch = 8 * 1024;
  fc.controller.reservations.idle_bytes_per_epoch = 1024;
  fc.controller.reservations.promote_after = 2;
  fc.controller.reservations.demote_after = 6;
  fc.controller.reservations.max_reservations = 1;
  return fc;
}

/// Merge the scripted timeline with the seeded-random one and sort by
/// time (stable: scripted events keep their relative order on ties,
/// random events follow in draw order). Pure — same config and seed,
/// same timeline, on every worker count.
std::vector<ChaosEvent> resolve_timeline(const ChaosScenarioConfig& cfg) {
  std::vector<ChaosEvent> events = cfg.timeline;
  if (cfg.random.enable) {
    const ChaosRandomTimeline& r = cfg.random;
    if (r.window_end < r.window_start || r.repair_delay <= SimTime::zero()) {
      throw std::invalid_argument("ChaosScenario: bad random timeline window");
    }
    rsf::sim::RandomStream rng(cfg.seed, "chaos");
    for (int i = 0; i < r.cuts; ++i) {
      const std::int64_t span = (r.window_end - r.window_start).ps();
      const SimTime cut =
          r.window_start + SimTime::picoseconds(span > 0 ? rng.uniform_int(0, span) : 0);
      const auto group =
          static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<std::int64_t>(kGroups) - 1));
      events.push_back({cut, ChaosAction::kCutGroup, group});
      SimTime up = cut + r.repair_delay;
      events.push_back({up, ChaosAction::kRepairGroup, group});
      // The flap tail: the same trench bounces flap_cycles more times
      // at flap_period spacing — down for half the period, up for the
      // other half — ending up. Tuned against demote_after × epoch
      // this defeats the controller's hysteresis on purpose.
      for (int c = 0; c < r.flap_cycles; ++c) {
        const SimTime down = up + r.flap_period;
        events.push_back({down, ChaosAction::kCutGroup, group});
        up = down + r.flap_period / 2;
        events.push_back({up, ChaosAction::kRepairGroup, group});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return events;
}

}  // namespace

ChaosScenario::ChaosScenario(ChaosScenarioConfig config)
    : config_(std::move(config)),
      fleet_(std::make_unique<runtime::FleetRuntime>(chaos_fleet(config_))),
      timeline_(resolve_timeline(config_)) {
  if (config_.hot_bytes.bit_count() <= 0) {
    throw std::invalid_argument("ChaosScenario: non-positive hot_bytes");
  }
  if (config_.horizon <= SimTime::zero()) {
    throw std::invalid_argument("ChaosScenario: non-positive horizon");
  }
  // Resolve the chaos counter set now, while no worker threads exist:
  // metrics() snapshots every rack registry, which event handlers on
  // the parallel drive must never do mid-run.
  chaos_counters_ = &fleet_->metrics().counters("chaos");
  fabric::Interconnect& spine = fleet_->spine();
  const auto a = spine.add_shared_risk_group({0, 2, 4});
  const auto b = spine.add_shared_risk_group({1, 3, 5});
  if (a != kTrenchA || b != kTrenchB) {
    throw std::logic_error("ChaosScenario: unexpected SRLG ids");
  }
  for (const ChaosEvent& e : timeline_) {
    const bool group_action =
        e.action == ChaosAction::kCutGroup || e.action == ChaosAction::kRepairGroup;
    const bool rack_action =
        e.action == ChaosAction::kBrownoutRack || e.action == ChaosAction::kRestoreRack;
    if ((group_action && e.target >= kGroups) || (rack_action && e.target >= kRacks)) {
      throw std::invalid_argument("ChaosScenario: timeline event targets nothing");
    }
  }
}

ChaosScenario::~ChaosScenario() = default;

void ChaosScenario::launch_flow(const fabric::RackNode& src, const fabric::RackNode& dst,
                                bool hot) {
  runtime::FleetFlowSpec spec;
  spec.id = static_cast<fabric::FlowId>(tally_.flows_offered + 1);
  spec.src = src;
  spec.dst = dst;
  spec.size = config_.hot_bytes;
  spec.packet_size = phy::DataSize::bytes(1024);
  const std::uint64_t bytes = byte_count(spec.size);
  ++tally_.flows_offered;
  tally_.bytes_offered += bytes;
  fleet_->start_flow(spec, [this, bytes, hot](const runtime::FleetFlowResult& fr) {
    if (fr.failed) {
      ++tally_.flows_failed;
      tally_.bytes_failed += bytes;
      return;
    }
    ++tally_.flows_delivered;
    tally_.bytes_delivered += bytes;
    completions_.push_back(fr.completion_time());
    SimTime& job = hot ? tally_.hot_job : tally_.background_job;
    job = std::max(job, fr.finished);
  });
}

void ChaosScenario::apply(const ChaosEvent& e) {
  fabric::Interconnect& spine = fleet_->spine();
  telemetry::CounterSet& chaos = *chaos_counters_;
  switch (e.action) {
    case ChaosAction::kCutGroup:
      spine.set_group_up(e.target, false);
      chaos.add("chaos.cuts");
      break;
    case ChaosAction::kRepairGroup:
      spine.set_group_up(e.target, true);
      chaos.add("chaos.repairs");
      break;
    case ChaosAction::kBrownoutRack:
      for (const fabric::SpineLinkId id : spine.rack_attachments(e.target)) {
        spine.set_link_up(id, false);
      }
      chaos.add("chaos.brownouts");
      break;
    case ChaosAction::kRestoreRack:
      for (const fabric::SpineLinkId id : spine.rack_attachments(e.target)) {
        spine.set_link_up(id, true);
      }
      chaos.add("chaos.rack_restores");
      break;
    case ChaosAction::kKillController:
      // Idempotent at scenario level: a second kill before the restart
      // is a no-op rather than an error, like repeating a cut.
      if (fleet_->has_controller()) fleet_->kill_controller();
      break;
    case ChaosAction::kRestartController:
      if (!fleet_->has_controller()) {
        const bool from_ckpt = e.with_checkpoint && has_ckpt_;
        fleet_->restart_controller(from_ckpt ? &last_ckpt_ : nullptr);
        arm_relearn_probe();
      }
      break;
  }
}

void ChaosScenario::take_checkpoint() {
  if (fleet_->has_controller()) {
    last_ckpt_ = fleet_->controller().checkpoint();
    has_ckpt_ = true;
    chaos_counters_->add("chaos.checkpoints");
  }
  // The cadence survives a dead controller (weak: it dies with the
  // workload, not the other way around).
  fleet_->sim().schedule_weak_after(config_.checkpoint_every, [this] { take_checkpoint(); });
}

void ChaosScenario::arm_relearn_probe() {
  probing_ = true;
  probe_epochs_ = 0;
  tally_.reservation_relearned = false;
  tally_.relearn_epochs = -1;
  schedule_probe();
}

void ChaosScenario::schedule_probe() {
  // One probe per controller epoch, scheduled *after* the restarted
  // controller armed its own tick at the same epoch boundary (the
  // restart event applied first), so each probe observes that tick's
  // promotion decision at the same instant, right after it — and the
  // ordering is preserved tick-to-tick because both reschedule from
  // within their own handler.
  const SimTime epoch = fleet_->config().controller.epoch;
  fleet_->sim().schedule_weak_after(epoch, [this] {
    if (!probing_) return;
    ++probe_epochs_;
    if (fleet_->spine().find_reservation(kHotSrcRack, kHotDstRack).has_value()) {
      tally_.reservation_relearned = true;
      tally_.relearn_epochs = probe_epochs_;
      probing_ = false;
      return;
    }
    if (probe_epochs_ >= config_.relearn_probe_limit) {
      probing_ = false;
      return;
    }
    schedule_probe();
  });
}

ChaosScenarioResult ChaosScenario::run() {
  if (ran_) throw std::logic_error("ChaosScenario: run() called twice");
  ran_ = true;
  runtime::FleetRuntime& f = *fleet_;

  // Hot incast: rack 3's row-0 nodes swarm one sink in rack 0 — the
  // (3, 0) pair crosses every adjacency, the promotion target and the
  // re-learn probe's subject.
  for (int x = 0; x < 4; ++x) {
    launch_flow(f.at(kHotSrcRack, x, 0), f.at(kHotDstRack, 0, 0), true);
  }
  // Background: racks 1 and 2 feed a second sink in rack 0, sharing
  // the 1 -> 0 adjacency with everything the hot pair sends.
  launch_flow(f.at(1, 0, 3), f.at(0, 3, 3), false);
  launch_flow(f.at(1, 3, 3), f.at(0, 3, 3), false);
  launch_flow(f.at(2, 0, 3), f.at(0, 3, 3), false);
  launch_flow(f.at(2, 3, 3), f.at(0, 3, 3), false);

  // The timeline rides weak fleet-ring events: chaos never keeps a
  // drained fleet alive, and the conservative-PDES merge replays the
  // exact oracle order, so runs stay byte-identical across workers.
  for (const ChaosEvent& e : timeline_) {
    f.sim().schedule_weak_at(e.at, [this, e] { apply(e); });
  }
  if (config_.checkpoint_every > SimTime::zero()) {
    f.sim().schedule_weak_after(config_.checkpoint_every, [this] { take_checkpoint(); });
  }

  f.start();
  // The bounded-run watchdog: nothing executes past the horizon. A
  // hang (a flow that neither delivers nor fails) shows up as
  // in-flight-at-cutoff, never as a wedged process.
  f.run_until(config_.horizon);
  f.stop();
  f.run_until(config_.horizon);  // drain anything the stop released

  ChaosScenarioResult& r = tally_;
  const std::uint64_t terminal_flows = r.flows_delivered + r.flows_failed;
  const std::uint64_t terminal_bytes = r.bytes_delivered + r.bytes_failed;
  r.completed_before_horizon = terminal_flows == r.flows_offered;
  r.flows_inflight_at_cutoff =
      terminal_flows <= r.flows_offered ? r.flows_offered - terminal_flows : 0;
  r.bytes_inflight_at_cutoff =
      terminal_bytes <= r.bytes_offered ? r.bytes_offered - terminal_bytes : 0;
  // Conservation: the callback-level tally must sum back to what was
  // offered AND agree with the runtime's own completion accounting —
  // a lost callback, a double completion, or a leaked flow breaks one
  // of the two.
  r.conservation_ok =
      terminal_flows <= r.flows_offered && terminal_bytes <= r.bytes_offered &&
      r.flows_delivered + r.flows_failed + r.flows_inflight_at_cutoff == r.flows_offered &&
      r.bytes_delivered + r.bytes_failed + r.bytes_inflight_at_cutoff == r.bytes_offered &&
      r.flows_delivered == f.flows_completed() && r.flows_failed == f.flows_failed();
  // Stale-handle / leak check: a quiesced fleet must have every flow
  // and packet slot back on the free list.
  r.slots_at_baseline = r.completed_before_horizon &&
                        f.free_flow_slots() == f.flow_slots() &&
                        f.free_packet_slots() == f.packet_slots();
  r.flows_failed_pct =
      r.flows_offered > 0 ? 100.0 * static_cast<double>(r.flows_failed) /
                                static_cast<double>(r.flows_offered)
                          : 0.0;
  if (!completions_.empty()) {
    std::sort(completions_.begin(), completions_.end());
    const std::size_t idx =
        std::min(completions_.size() - 1, (completions_.size() * 99) / 100);
    r.flow_p99 = completions_[idx];
  }

  const telemetry::CounterSet& spine_c = f.spine().counters();
  r.srlg_cuts = spine_c.get("spine.srlg_cuts");
  r.preemptions = spine_c.get("spine.reservation_preemptions");
  r.reroutes = spine_c.get("spine.packet_reroutes");
  r.retransmits = spine_c.get("spine.retransmits");
  const telemetry::CounterSet& fleet_c = f.metrics().counters("fleet");
  r.controller_restarts = fleet_c.get("fleet.controller_restarts");
  r.promotions = fleet_c.get("fleet.promotions");
  r.demotions = fleet_c.get("fleet.demotions");
  return r;
}

}  // namespace rsf::workload
