// rsf::workload — the slotted-transport crossover scenario family.
//
// The ext9 sweep compares two spine-sharing regimes end-to-end: pure
// packet (statistical FIFO sharing) and fraction carves (the
// controller's reservation policy). This file adds the third regime —
// per-link TDMA slot schedules (Interconnect::reserve_slots + the
// FleetController schedule policy) — and a scenario family built to
// expose where each wins:
//
//  * kSkew  — a persistently hot rack pair sharing one spine leg with
//    continuous background traffic. Sustained contention: both carves
//    and slots pay off, and multipath slotting aggregates two parallel
//    legs where a carve pins one.
//  * kChurn — the hot pair sends in waves separated by gaps longer
//    than the fabric's slot inactivity timeout but shorter than the
//    carve's demote window. Slots self-expire inside every gap and
//    hand the capacity back to the background; the carve sits on it.
//  * kFlap  — sustained contention while one of the parallel hot legs
//    flaps down and up. Exercises failure-driven slot preemption and
//    the controller's re-book path.
//
// Every arm runs under each of the three regimes on a fixed topology:
// racks 0, 1, 2 with two parallel 25 Gbps legs 1 <-> 0 and two
// parallel 50 Gbps feeders 2 <-> 1. The hot incast is the transit
// pair rack 2 -> rack 0 — two hops, the fleet's biggest byte·hops
// consumer and therefore what both policies' demand ranking promotes;
// its multipath split lands on the fully disjoint second route
// (feeder + leg). Background is rack 1 -> rack 0, one hop on the same
// leg the hot primary crosses. Prices are frozen (utilisation weight
// 0) so the regimes differ only in how they share capacity, not in
// where routes land.
//
// Deterministic: same config and seed, byte-identical metrics across
// FleetConfig::workers 1 vs N (the property test and the ext11
// determinism gate both diff exactly that).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/units.hpp"
#include "sim/time.hpp"
#include "workload/crossrack.hpp"

namespace rsf::runtime {
class FleetRuntime;
}  // namespace rsf::runtime

namespace rsf::workload {

enum class SlottedArm {
  kSkew,
  kChurn,
  kFlap,
};

enum class SlottedRegime {
  /// Statistical sharing only (the repricing controller still runs).
  kPacket,
  /// Fraction carves: the controller's reservation policy.
  kCarve,
  /// TDMA slot schedules: the controller's schedule policy, with
  /// multipath splitting across the parallel hot legs.
  kSlotted,
};

struct SlottedScenarioConfig {
  SlottedArm arm = SlottedArm::kSkew;
  SlottedRegime regime = SlottedRegime::kPacket;
  /// Per-packet loss probability on every spine link.
  double loss_prob = 0.0;
  /// Seeds the fleet (spine loss sampler); same seed, same bytes.
  std::uint64_t seed = 1;
  /// FleetConfig::workers passthrough (1 = the serial oracle).
  int workers = 1;
  /// Bytes each hot source moves in total (split across waves in the
  /// churn arm — each wave must span several flow windows, or the
  /// whole wave's demand lands in one epoch and never builds a
  /// promote streak). Background sources each move twice this, so the
  /// background outlasts the hot job on the shared leg.
  phy::DataSize hot_bytes = phy::DataSize::kilobytes(96);
  /// kCarve: per-direction fraction carved for the promoted pair.
  double carve_fraction = 0.6;
  /// kSlotted: slots owned per frame period. The controller splits
  /// the duty across the two parallel hot legs (multipath), so the
  /// pair's aggregate share is duty/period spread over both links.
  int slot_period = 8;
  int slot_duty = 6;
  /// kSlotted: fabric-level inactivity window after which a booked
  /// schedule self-expires. The churn arm's wave gaps are tuned to
  /// exceed this while staying inside the carve's demote window.
  rsf::sim::SimTime slot_timeout = rsf::sim::SimTime::microseconds(30);
};

/// Aggregate view of one finished slotted-crossover run: the hot job
/// against the background job, plus the regime-mechanics counters the
/// ext11 sweep reports.
struct SlottedScenarioResult {
  CrossRackResult hot;
  CrossRackResult background;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t schedule_splits = 0;
  std::uint64_t slot_reservations = 0;
  std::uint64_t slot_expirations = 0;
  std::uint64_t slot_preemptions = 0;
  std::uint64_t slot_refusals = 0;
  std::uint64_t slotted_bytes = 0;
  std::uint64_t reserved_bytes = 0;
  std::uint64_t reservation_preemptions = 0;
};

/// Builds the fixed three-rack fleet for one (arm, regime) cell,
/// drives the hot and background jobs to completion on one shared
/// clock, and aggregates the result. Deterministic: same config and
/// seed, byte-identical metrics (tested).
class SlottedFleetScenario {
 public:
  explicit SlottedFleetScenario(SlottedScenarioConfig config);
  ~SlottedFleetScenario();

  SlottedFleetScenario(const SlottedFleetScenario&) = delete;
  SlottedFleetScenario& operator=(const SlottedFleetScenario&) = delete;

  /// Run the scenario to completion; call once.
  SlottedScenarioResult run();

  /// The underlying fleet (valid for the scenario's lifetime) — tests
  /// byte-diff fleet().metrics_table() across seeds and workers.
  [[nodiscard]] runtime::FleetRuntime& fleet() { return *fleet_; }

  /// The hot transit pair every regime's policy promotes.
  static constexpr std::uint32_t kHotSrcRack = 2;
  static constexpr std::uint32_t kHotDstRack = 0;
  /// The first parallel 1 <-> 0 leg (SpineLinkId 0) — the hot
  /// primary's second hop, and the flap target.
  static constexpr std::uint32_t kFlapLink = 0;

 private:
  SlottedScenarioConfig config_;
  std::unique_ptr<runtime::FleetRuntime> fleet_;
  bool ran_ = false;
};

}  // namespace rsf::workload
