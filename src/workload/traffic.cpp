#include "workload/traffic.hpp"

#include <numeric>
#include <stdexcept>

namespace rsf::workload {

TrafficMatrix::TrafficMatrix(std::uint32_t nodes) : n_(nodes) {
  if (nodes == 0) throw std::invalid_argument("TrafficMatrix: zero nodes");
  w_.assign(static_cast<std::size_t>(nodes) * nodes, 0.0);
}

std::size_t TrafficMatrix::idx(phy::NodeId s, phy::NodeId d) const {
  if (s >= n_ || d >= n_) throw std::out_of_range("TrafficMatrix: node out of range");
  return static_cast<std::size_t>(s) * n_ + d;
}

double TrafficMatrix::demand(phy::NodeId s, phy::NodeId d) const { return w_[idx(s, d)]; }

void TrafficMatrix::set_demand(phy::NodeId s, phy::NodeId d, double weight) {
  if (weight < 0) throw std::invalid_argument("TrafficMatrix: negative demand");
  w_[idx(s, d)] = weight;
}

void TrafficMatrix::add_demand(phy::NodeId s, phy::NodeId d, double weight) {
  w_[idx(s, d)] += weight;
}

double TrafficMatrix::row_sum(phy::NodeId s) const {
  const std::size_t base = idx(s, 0);
  return std::accumulate(w_.begin() + static_cast<long>(base),
                         w_.begin() + static_cast<long>(base + n_), 0.0);
}

double TrafficMatrix::total() const { return std::accumulate(w_.begin(), w_.end(), 0.0); }

phy::NodeId TrafficMatrix::sample_dst(phy::NodeId src, rsf::sim::RandomStream& rng) const {
  const double sum = row_sum(src);
  if (sum <= 0) return src;
  double draw = rng.uniform(0.0, sum);
  const std::size_t base = idx(src, 0);
  for (std::uint32_t d = 0; d < n_; ++d) {
    draw -= w_[base + d];
    if (draw <= 0) return d;
  }
  return n_ - 1;
}

void TrafficMatrix::normalize() {
  const double sum = total();
  if (sum <= 0) return;
  for (double& v : w_) v /= sum;
}

TrafficMatrix TrafficMatrix::uniform(std::uint32_t nodes) {
  TrafficMatrix m(nodes);
  for (std::uint32_t s = 0; s < nodes; ++s) {
    for (std::uint32_t d = 0; d < nodes; ++d) {
      if (s != d) m.set_demand(s, d, 1.0);
    }
  }
  return m;
}

TrafficMatrix TrafficMatrix::permutation(std::uint32_t nodes, rsf::sim::RandomStream& rng) {
  TrafficMatrix m(nodes);
  std::vector<phy::NodeId> perm(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) perm[i] = i;
  // Fisher-Yates, then rotate self-mappings away.
  for (std::uint32_t i = nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.uniform_int(0, i));
    std::swap(perm[i], perm[j]);
  }
  for (std::uint32_t i = 0; i < nodes; ++i) {
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % nodes]);
  }
  for (std::uint32_t i = 0; i < nodes; ++i) {
    if (perm[i] != i) m.set_demand(i, perm[i], 1.0);
  }
  return m;
}

TrafficMatrix TrafficMatrix::hotspot(std::uint32_t nodes, phy::NodeId hot_node,
                                     double hot_fraction) {
  if (hot_fraction < 0 || hot_fraction > 1) {
    throw std::invalid_argument("hotspot: fraction outside [0,1]");
  }
  TrafficMatrix m(nodes);
  const double uniform_share = (1.0 - hot_fraction) / std::max(1u, nodes - 1);
  for (std::uint32_t s = 0; s < nodes; ++s) {
    for (std::uint32_t d = 0; d < nodes; ++d) {
      if (s == d) continue;
      double w = uniform_share;
      if (d == hot_node) w += hot_fraction;
      m.set_demand(s, d, w);
    }
  }
  return m;
}

TrafficMatrix TrafficMatrix::incast(std::uint32_t nodes, phy::NodeId sink) {
  TrafficMatrix m(nodes);
  for (std::uint32_t s = 0; s < nodes; ++s) {
    if (s != sink) m.set_demand(s, sink, 1.0);
  }
  return m;
}

TrafficMatrix TrafficMatrix::opposite(std::uint32_t nodes) {
  TrafficMatrix m(nodes);
  for (std::uint32_t s = 0; s < nodes; ++s) {
    const phy::NodeId d = (s + nodes / 2) % nodes;
    if (d != s) m.set_demand(s, d, 1.0);
  }
  return m;
}

TrafficMatrix TrafficMatrix::shuffle(std::uint32_t nodes,
                                     const std::vector<phy::NodeId>& mappers,
                                     const std::vector<phy::NodeId>& reducers) {
  TrafficMatrix m(nodes);
  for (phy::NodeId s : mappers) {
    for (phy::NodeId d : reducers) {
      if (s != d) m.set_demand(s, d, 1.0);
    }
  }
  return m;
}

}  // namespace rsf::workload
