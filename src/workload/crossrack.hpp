// rsf::workload — cross-rack traffic patterns.
//
// The intra-rack workloads (ShuffleJob, FlowGenerator) address nodes
// of one Network; these patterns address (rack, node) pairs of a whole
// fleet and deliberately pick sources and destinations in *different*
// shards, because rate allocation, spine queueing and tail latency
// only show up once traffic crosses the rack boundary:
//
//  * CrossRackShuffle — the MapReduce barrier stretched over racks:
//    every mapper sends to every reducer, mappers and reducers living
//    in different shards (shuffle-between-racks);
//  * CrossRackIncast  — all-to-all incast: many sources across the
//    fleet converge on one sink node, the spine's pathological case.
//
// Both drive FleetRuntime::start_flow and aggregate per-flow results
// into a job view (completion, straggler gap, spine hop counts).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fabric/interconnect.hpp"
#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::runtime {
class FleetRuntime;
}  // namespace rsf::runtime

namespace rsf::workload {

struct CrossRackShuffleConfig {
  std::vector<fabric::RackNode> mappers;
  std::vector<fabric::RackNode> reducers;
  /// Bytes each mapper sends to each reducer.
  phy::DataSize bytes_per_pair = phy::DataSize::megabytes(1);
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
};

struct CrossRackIncastConfig {
  std::vector<fabric::RackNode> sources;
  fabric::RackNode sink;
  /// Bytes each source sends to the sink.
  phy::DataSize bytes_per_source = phy::DataSize::kilobytes(256);
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
};

/// Aggregate view of one finished cross-rack job.
struct CrossRackResult {
  rsf::sim::SimTime job_completion = rsf::sim::SimTime::zero();
  rsf::sim::SimTime median_flow = rsf::sim::SimTime::zero();
  rsf::sim::SimTime max_flow = rsf::sim::SimTime::zero();
  std::uint64_t flows = 0;
  std::uint64_t failed = 0;
  /// Flows whose endpoints were in different racks.
  std::uint64_t cross_rack_flows = 0;
  /// Total spine links crossed, summed over flows.
  std::uint64_t spine_hops = 0;
  /// Fleet-level retransmits (spine losses, rack-leg drops), summed.
  std::uint64_t retransmits = 0;

  /// Straggler gap: how much the slowest transfer lags the median.
  [[nodiscard]] double straggler_ratio() const {
    return median_flow.ps() > 0
               ? static_cast<double>(max_flow.ps()) / static_cast<double>(median_flow.ps())
               : 0.0;
  }
};

/// Shared fan-out/fan-in engine: launches one fleet flow per (src,
/// dst) pair at `start`, fires the done callback when the last lands.
class CrossRackJob {
 public:
  using DoneCallback = std::function<void(const CrossRackResult&)>;

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const CrossRackResult& result() const { return result_; }

 protected:
  CrossRackJob(runtime::FleetRuntime* fleet, phy::DataSize packet_size,
               rsf::sim::SimTime start);

  /// Launch every (src, dst, bytes) tuple; call once.
  void launch(const std::vector<std::pair<fabric::RackNode, fabric::RackNode>>& pairs,
              phy::DataSize bytes_per_pair, DoneCallback on_done);

 private:
  runtime::FleetRuntime* fleet_;
  phy::DataSize packet_size_;
  rsf::sim::SimTime start_;
  DoneCallback on_done_;
  std::vector<rsf::sim::SimTime> completion_times_;
  std::uint64_t outstanding_ = 0;
  bool finished_ = false;
  CrossRackResult result_;
};

class CrossRackShuffle : public CrossRackJob {
 public:
  CrossRackShuffle(runtime::FleetRuntime* fleet, CrossRackShuffleConfig config);

  /// Launch all mapper->reducer flows at config.start. The callback
  /// fires when the last flow lands (the reducer barrier clears).
  void run(DoneCallback on_done);

 private:
  CrossRackShuffleConfig config_;
};

class CrossRackIncast : public CrossRackJob {
 public:
  CrossRackIncast(runtime::FleetRuntime* fleet, CrossRackIncastConfig config);

  /// Launch all source->sink flows at config.start.
  void run(DoneCallback on_done);

 private:
  CrossRackIncastConfig config_;
};

}  // namespace rsf::workload
