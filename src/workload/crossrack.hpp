// rsf::workload — cross-rack traffic patterns.
//
// The intra-rack workloads (ShuffleJob, FlowGenerator) address nodes
// of one Network; these patterns address (rack, node) pairs of a whole
// fleet and deliberately pick sources and destinations in *different*
// shards, because rate allocation, spine queueing and tail latency
// only show up once traffic crosses the rack boundary:
//
//  * CrossRackShuffle — the MapReduce barrier stretched over racks:
//    every mapper sends to every reducer, mappers and reducers living
//    in different shards (shuffle-between-racks);
//  * CrossRackIncast  — all-to-all incast: many sources across the
//    fleet converge on one sink node, the spine's pathological case.
//
// Both drive FleetRuntime::start_flow and aggregate per-flow results
// into a job view (completion, straggler gap, spine hop counts).
//
// On top of the primitives sits the skewed-fleet scenario family
// (SkewedFleetScenario): canned fleets whose load is deliberately
// *not* uniform — a hot rack pair swamping one spine direction while
// background traffic shares it, one spine leg running at a fraction
// of its siblings' rate, and mixed rack sizes under a single
// spanning shuffle. Every scenario runs with the controller's
// reservation policy on or off, which is how the repro compares the
// paper's circuit-style (reserved capacity) and packet-style
// (statistical sharing) regimes end-to-end at fleet scale.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "fabric/interconnect.hpp"
#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::runtime {
class FleetRuntime;
}  // namespace rsf::runtime

namespace rsf::workload {

struct CrossRackShuffleConfig {
  std::vector<fabric::RackNode> mappers;
  std::vector<fabric::RackNode> reducers;
  /// Bytes each mapper sends to each reducer.
  phy::DataSize bytes_per_pair = phy::DataSize::megabytes(1);
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
};

struct CrossRackIncastConfig {
  std::vector<fabric::RackNode> sources;
  fabric::RackNode sink;
  /// Bytes each source sends to the sink.
  phy::DataSize bytes_per_source = phy::DataSize::kilobytes(256);
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
};

/// Aggregate view of one finished cross-rack job.
struct CrossRackResult {
  rsf::sim::SimTime job_completion = rsf::sim::SimTime::zero();
  rsf::sim::SimTime median_flow = rsf::sim::SimTime::zero();
  rsf::sim::SimTime max_flow = rsf::sim::SimTime::zero();
  std::uint64_t flows = 0;
  std::uint64_t failed = 0;
  /// Flows whose endpoints were in different racks.
  std::uint64_t cross_rack_flows = 0;
  /// Total spine links crossed, summed over flows.
  std::uint64_t spine_hops = 0;
  /// Fleet-level retransmits (spine losses, rack-leg drops), summed.
  std::uint64_t retransmits = 0;

  /// Straggler gap: how much the slowest transfer lags the median.
  [[nodiscard]] double straggler_ratio() const {
    return median_flow.ps() > 0
               ? static_cast<double>(max_flow.ps()) / static_cast<double>(median_flow.ps())
               : 0.0;
  }
};

/// Shared fan-out/fan-in engine: launches one fleet flow per (src,
/// dst) pair at `start`, fires the done callback when the last lands.
class CrossRackJob {
 public:
  using DoneCallback = std::function<void(const CrossRackResult&)>;

  virtual ~CrossRackJob() = default;

  /// Launch the job's flows at its configured start; the callback
  /// fires when the last flow lands. Call once.
  virtual void run(DoneCallback on_done) = 0;

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const CrossRackResult& result() const { return result_; }

 protected:
  CrossRackJob(runtime::FleetRuntime* fleet, phy::DataSize packet_size,
               rsf::sim::SimTime start);

  /// Launch every (src, dst, bytes) tuple; call once.
  void launch(const std::vector<std::pair<fabric::RackNode, fabric::RackNode>>& pairs,
              phy::DataSize bytes_per_pair, DoneCallback on_done);

 private:
  runtime::FleetRuntime* fleet_;
  phy::DataSize packet_size_;
  rsf::sim::SimTime start_;
  DoneCallback on_done_;
  std::vector<rsf::sim::SimTime> completion_times_;
  std::uint64_t outstanding_ = 0;
  bool finished_ = false;
  CrossRackResult result_;
};

class CrossRackShuffle : public CrossRackJob {
 public:
  CrossRackShuffle(runtime::FleetRuntime* fleet, CrossRackShuffleConfig config);

  /// Launch all mapper->reducer flows at config.start. The callback
  /// fires when the last flow lands (the reducer barrier clears).
  void run(DoneCallback on_done) override;

 private:
  CrossRackShuffleConfig config_;
};

class CrossRackIncast : public CrossRackJob {
 public:
  CrossRackIncast(runtime::FleetRuntime* fleet, CrossRackIncastConfig config);

  /// Launch all source->sink flows at config.start.
  void run(DoneCallback on_done) override;

 private:
  CrossRackIncastConfig config_;
};

// ---------------------------------------------------------------------------
// Skewed-fleet scenarios: circuit vs. packet regimes under skew.
// ---------------------------------------------------------------------------

enum class SkewedScenarioKind {
  /// One rack's nodes swarm a single victim rack (a persistently hot
  /// (src, dst) pair) while background flows share the same spine
  /// direction — the canonical promotion target.
  kHotRackIncast,
  /// A spine ring where one leg runs at a fraction of its siblings'
  /// rate; the hot pair's direct route crosses the slow leg, so
  /// repricing and reservations pull in different directions.
  kSlowSpineLeg,
  /// Racks of different sizes (2x2, 4x4, 3x3) under one spanning
  /// shuffle, with a background incast fighting for the same spine.
  kMixedRackSizes,
};

struct SkewedScenarioConfig {
  SkewedScenarioKind kind = SkewedScenarioKind::kHotRackIncast;
  /// Reservation policy on the fleet controller. Off = pure packet
  /// sharing (the repricing controller itself always runs).
  bool reservations = false;
  /// Per-direction capacity carved per promoted pair. The circuit
  /// only beats statistical sharing when the carve exceeds the share
  /// the hot pair would win in the shared FIFO, so the default is a
  /// deliberate majority carve.
  double reservation_fraction = 0.6;
  /// Per-packet loss probability applied to every spine link.
  double loss_prob = 0.0;
  /// Controller utilisation repricing weight. 0 freezes prices
  /// entirely (the backlog repricing term is zeroed with it).
  double utilization_weight = 8.0;
  /// Seeds the fleet (spine loss sampler); same seed, same bytes.
  std::uint64_t seed = 1;
  /// FleetConfig::workers passthrough: 1 is the serial oracle, N > 1
  /// the conservative-PDES drive. Byte-identical results either way
  /// (the CI determinism gate diffs them on every scenario).
  int workers = 1;
  /// Bytes the hot job moves per (src, dst) pair. Background pairs
  /// move the same amount, so the contention is sustained for the
  /// whole hot job — the regime where circuits pay off.
  phy::DataSize hot_bytes = phy::DataSize::kilobytes(192);
};

/// Aggregate view of one finished skewed scenario: the skewed (hot)
/// job against the background traffic sharing its spine, plus the
/// reservation-control outcome.
struct SkewedScenarioResult {
  CrossRackResult hot;
  CrossRackResult background;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t reserved_bytes = 0;
};

/// Builds the fleet for one SkewedScenarioKind, drives the hot and
/// background jobs to completion on one shared clock, and aggregates
/// the result. Deterministic: same config and seed, byte-identical
/// metrics (tested).
class SkewedFleetScenario {
 public:
  explicit SkewedFleetScenario(SkewedScenarioConfig config);
  ~SkewedFleetScenario();

  SkewedFleetScenario(const SkewedFleetScenario&) = delete;
  SkewedFleetScenario& operator=(const SkewedFleetScenario&) = delete;

  /// Run the scenario to completion; call once.
  SkewedScenarioResult run();

  /// The underlying fleet (valid for the scenario's lifetime).
  [[nodiscard]] runtime::FleetRuntime& fleet() { return *fleet_; }

 private:
  SkewedScenarioConfig config_;
  std::unique_ptr<runtime::FleetRuntime> fleet_;
  bool ran_ = false;
};

}  // namespace rsf::workload
