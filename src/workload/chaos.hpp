// rsf::workload — the correlated-failure chaos harness.
//
// Single-link failures (set_link_up in a test) exercise the spine's
// failure mechanisms one at a time; production failures are
// correlated. A ChaosScenario drives a fixed four-rack fleet through a
// *timeline* of correlated failure events — shared-risk group cuts
// (one trench takes every member link with it), repair, flap periods
// tuned to defeat hysteresis, rack-wide brownouts (every spine
// attachment of one rack), and mid-epoch FleetController kill/restart
// (cold, or from a FleetControllerCheckpoint) — while a hot incast and
// background traffic keep the spine under load.
//
// Timelines are scripted (an explicit ChaosEvent vector), seeded-
// random (a RandomStream draws cut targets and times; same seed, same
// timeline, byte-identical run), or both. Every event is scheduled as
// a weak fleet-ring event: chaos never keeps a drained fleet alive,
// and under the conservative-PDES drive the events merge at exactly
// the oracle's position — chaos runs are byte-identical at workers
// 1 vs 4 like everything else (CI diffs one).
//
// Every run is wrapped in an invariant verifier:
//  * no hangs — the run is bounded by a horizon watchdog; flows still
//    non-terminal at the cutoff are reported, never waited for;
//  * conservation — offered = delivered + failed + in-flight-at-
//    cutoff, in flows and in bytes, cross-checked against the
//    FleetRuntime's own completion counters;
//  * no leaked or stale slots — after a quiesced run the flow and
//    packet SlotPool gauges must be back at baseline (free == total).
//
// The scenario also measures the restart story end-to-end: after a
// kRestartController event it probes once per controller epoch for
// the hot pair's reservation and reports how many epochs the restarted
// controller needed to re-earn it (the mcsotdma renewal model: leases
// died with the old controller; intent, not handles, survives in the
// checkpoint).
//
// The fixed topology (see chaos.cpp) is a four-rack line with two
// parallel links per adjacency split across two shared-risk trenches,
// plus one bypass link 0 - 2 outside both trenches: cutting one trench
// degrades, cutting both partitions, and a rack-1 brownout reroutes
// over the bypass instead of partitioning.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/interconnect.hpp"
#include "phy/units.hpp"
#include "runtime/fleet_controller.hpp"
#include "sim/time.hpp"

namespace rsf::runtime {
class FleetRuntime;
}  // namespace rsf::runtime

namespace rsf::workload {

enum class ChaosAction {
  /// Fail / repair every link of a shared-risk group (target = SRLG
  /// id; the scenario registers group 0 = trench A, 1 = trench B).
  kCutGroup,
  kRepairGroup,
  /// Fail / restore every spine attachment of one rack (target =
  /// rack id).
  kBrownoutRack,
  kRestoreRack,
  /// Crash the fleet controller mid-epoch (leases expire) / bring a
  /// new one up (cold, or from the latest periodic checkpoint when
  /// with_checkpoint is set and one exists).
  kKillController,
  kRestartController,
};

struct ChaosEvent {
  rsf::sim::SimTime at = rsf::sim::SimTime::zero();
  ChaosAction action = ChaosAction::kCutGroup;
  /// SRLG id or rack id; ignored by the controller actions.
  std::uint32_t target = 0;
  /// kRestartController only: restore from the latest checkpoint.
  bool with_checkpoint = false;
};

/// Seeded-random timeline generation, layered on top of (and merged
/// with) the scripted events. Each cut draws a group and a cut time,
/// repairs after repair_delay, then flaps the same group
/// `flap_cycles` more times with `flap_period` spacing — the
/// hysteresis-defeating pattern.
struct ChaosRandomTimeline {
  bool enable = false;
  int cuts = 2;
  rsf::sim::SimTime window_start = rsf::sim::SimTime::microseconds(60);
  rsf::sim::SimTime window_end = rsf::sim::SimTime::microseconds(220);
  rsf::sim::SimTime repair_delay = rsf::sim::SimTime::microseconds(60);
  int flap_cycles = 0;
  rsf::sim::SimTime flap_period = rsf::sim::SimTime::microseconds(24);
};

struct ChaosScenarioConfig {
  /// Seeds the fleet (spine loss) and the random timeline's draws.
  std::uint64_t seed = 1;
  /// FleetConfig::workers passthrough (1 = the serial oracle).
  int workers = 1;
  /// Per-packet loss probability on every spine link.
  double loss_prob = 0.0;
  /// Bytes per hot-incast source (background sources move the same).
  phy::DataSize hot_bytes = phy::DataSize::kilobytes(96);
  /// Reservation policy on the controller (the repricing loop always
  /// runs); the hot pair (rack 3 -> rack 0) is the promotion target.
  bool reservations = true;
  /// Scripted events, any order (the scenario sorts a merged copy).
  std::vector<ChaosEvent> timeline;
  ChaosRandomTimeline random;
  /// Bounded-run watchdog: the run never executes past this horizon.
  /// Flows still in flight there are counted, not waited for.
  rsf::sim::SimTime horizon = rsf::sim::SimTime::milliseconds(20);
  /// Checkpoint the controller this often (zero = never). A
  /// with_checkpoint restart restores the latest one — possibly
  /// stale, which is the realistic case.
  rsf::sim::SimTime checkpoint_every = rsf::sim::SimTime::zero();
  /// Give up probing for the re-learned reservation after this many
  /// post-restart epochs.
  int relearn_probe_limit = 64;
};

struct ChaosScenarioResult {
  // --- conservation (offered = delivered + failed + in-flight) ---
  std::uint64_t flows_offered = 0;
  std::uint64_t flows_delivered = 0;
  std::uint64_t flows_failed = 0;
  std::uint64_t flows_inflight_at_cutoff = 0;
  std::uint64_t bytes_offered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t bytes_failed = 0;
  std::uint64_t bytes_inflight_at_cutoff = 0;
  /// The sums above hold AND the callback-level accounting matches
  /// the FleetRuntime's own flows_completed / flows_failed counters.
  bool conservation_ok = false;
  /// Every flow reached a terminal state before the horizon cutoff.
  bool completed_before_horizon = false;
  /// Quiesced runs only: flow and packet SlotPool gauges back at
  /// baseline (free == total). False when flows were still in flight
  /// at the cutoff (nothing to assert then).
  bool slots_at_baseline = false;

  // --- degraded-mode SLOs ---
  double flows_failed_pct = 0.0;
  /// Over delivered flows' completion times (zero when none).
  rsf::sim::SimTime flow_p99 = rsf::sim::SimTime::zero();
  rsf::sim::SimTime hot_job = rsf::sim::SimTime::zero();
  rsf::sim::SimTime background_job = rsf::sim::SimTime::zero();

  // --- reservation re-learning after a controller restart ---
  bool reservation_relearned = false;
  /// Controller epochs from the restart until the hot pair's
  /// reservation was held again (-1: no restart happened, or the
  /// probe limit ran out).
  int relearn_epochs = -1;

  // --- counter snapshot (fleet registry; survives restarts) ---
  std::uint64_t srlg_cuts = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t controller_restarts = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
};

class ChaosScenario {
 public:
  explicit ChaosScenario(ChaosScenarioConfig config);
  ~ChaosScenario();

  ChaosScenario(const ChaosScenario&) = delete;
  ChaosScenario& operator=(const ChaosScenario&) = delete;

  /// Run the scenario to the horizon (or drain); call once.
  ChaosScenarioResult run();

  /// The underlying fleet (valid for the scenario's lifetime) — tests
  /// byte-diff fleet().metrics_table() across seeds and workers.
  [[nodiscard]] runtime::FleetRuntime& fleet() { return *fleet_; }

  /// The merged scripted + seeded-random timeline, sorted by time —
  /// what run() will actually apply.
  [[nodiscard]] const std::vector<ChaosEvent>& timeline() const { return timeline_; }

  /// The hot pair whose reservation the re-learn probe watches.
  static constexpr std::uint32_t kHotSrcRack = 3;
  static constexpr std::uint32_t kHotDstRack = 0;
  /// SRLG ids the scenario registers (two parallel trenches).
  static constexpr std::uint32_t kTrenchA = 0;
  static constexpr std::uint32_t kTrenchB = 1;

 private:
  void apply(const ChaosEvent& e);
  void launch_flow(const fabric::RackNode& src, const fabric::RackNode& dst, bool hot);
  void arm_relearn_probe();
  void schedule_probe();
  void take_checkpoint();

  ChaosScenarioConfig config_;
  std::unique_ptr<runtime::FleetRuntime> fleet_;
  std::vector<ChaosEvent> timeline_;
  /// Cached at construction: event handlers must not walk the fleet's
  /// rack snapshots mid-run (FleetRuntime::metrics() reads every shard
  /// registry — not for the parallel drive's event handlers).
  telemetry::CounterSet* chaos_counters_ = nullptr;
  bool ran_ = false;

  // Flow accounting (the conservation invariant's inputs).
  ChaosScenarioResult tally_;
  std::vector<rsf::sim::SimTime> completions_;

  // Controller checkpoint/restart machinery.
  runtime::FleetControllerCheckpoint last_ckpt_;
  bool has_ckpt_ = false;
  bool probing_ = false;
  int probe_epochs_ = 0;
};

}  // namespace rsf::workload
