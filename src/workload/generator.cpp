#include "workload/generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsf::workload {

using rsf::sim::SimTime;

phy::DataSize SizeDistribution::sample(rsf::sim::RandomStream& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return fixed;
    case Kind::kBoundedPareto: {
      const double bytes = rng.bounded_pareto(pareto_alpha, pareto_min_bytes, pareto_max_bytes);
      return phy::DataSize::bytes(static_cast<std::int64_t>(bytes));
    }
  }
  return fixed;
}

FlowGenerator::FlowGenerator(rsf::sim::Simulator* sim, fabric::Network* net,
                             TrafficMatrix matrix, GeneratorConfig config)
    : sim_(sim),
      net_(net),
      matrix_(std::move(matrix)),
      config_(config),
      rng_(config.seed, "flowgen"),
      next_flow_id_(config.first_flow_id) {
  if (sim_ == nullptr || net_ == nullptr) {
    throw std::invalid_argument("FlowGenerator: null dependency");
  }
  if (config_.mean_interarrival <= SimTime::zero()) {
    throw std::invalid_argument("FlowGenerator: non-positive interarrival");
  }
}

void FlowGenerator::start(SimTime start) {
  for (std::uint32_t src = 0; src < matrix_.nodes(); ++src) {
    if (matrix_.row_sum(src) <= 0) continue;
    const SimTime first =
        start + SimTime::picoseconds(static_cast<std::int64_t>(
                    rng_.exponential(static_cast<double>(config_.mean_interarrival.ps()))));
    if (first > config_.horizon) continue;
    sim_->schedule_at(first, [this, src] { fire(src); });
  }
}

void FlowGenerator::arm_next(phy::NodeId src) {
  const SimTime gap = SimTime::picoseconds(static_cast<std::int64_t>(
      rng_.exponential(static_cast<double>(config_.mean_interarrival.ps()))));
  const SimTime when = sim_->now() + gap;
  if (when > config_.horizon) return;
  sim_->schedule_at(when, [this, src] { fire(src); });
}

void FlowGenerator::fire(phy::NodeId src) {
  const phy::NodeId dst = matrix_.sample_dst(src, rng_);
  if (dst != src) {
    fabric::FlowSpec spec;
    spec.id = next_flow_id_++;
    spec.src = src;
    spec.dst = dst;
    spec.size = config_.sizes.sample(rng_);
    spec.packet_size = config_.packet_size;
    spec.start = sim_->now();
    ++generated_;
    net_->start_flow(spec,
                     [this](const fabric::FlowResult& r) { results_.push_back(r); });
  }
  arm_next(src);
}

telemetry::Histogram FlowGenerator::completion_histogram() const {
  telemetry::Histogram h;
  for (const auto& r : results_) {
    if (!r.failed) h.record(r.completion_time());
  }
  return h;
}

double FlowGenerator::goodput_gbps() const {
  if (results_.empty()) return 0.0;
  SimTime first = SimTime::infinity();
  SimTime last = SimTime::zero();
  double bits = 0;
  for (const auto& r : results_) {
    if (r.failed) continue;
    first = std::min(first, r.started);
    last = std::max(last, r.finished);
    bits += static_cast<double>(r.spec.size.bit_count());
  }
  if (last <= first) return 0.0;
  return bits / (last - first).sec() / 1e9;
}

}  // namespace rsf::workload
