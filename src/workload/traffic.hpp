// rsf::workload — traffic matrices and destination patterns.
//
// A TrafficMatrix gives the relative demand between every (src, dst)
// pair. The standard rack-scale patterns are provided; the CRC's
// reconfiguration planner consumes the same matrices to decide where
// bypass capacity pays off.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/types.hpp"
#include "sim/random.hpp"

namespace rsf::workload {

class TrafficMatrix {
 public:
  explicit TrafficMatrix(std::uint32_t nodes);

  [[nodiscard]] std::uint32_t nodes() const { return n_; }

  [[nodiscard]] double demand(phy::NodeId src, phy::NodeId dst) const;
  void set_demand(phy::NodeId src, phy::NodeId dst, double weight);
  void add_demand(phy::NodeId src, phy::NodeId dst, double weight);

  /// Total outbound demand of `src`.
  [[nodiscard]] double row_sum(phy::NodeId src) const;
  /// Total demand in the matrix.
  [[nodiscard]] double total() const;

  /// Draw a destination for `src` proportional to demand(src, *).
  /// Returns src itself if the row is empty (callers skip those).
  [[nodiscard]] phy::NodeId sample_dst(phy::NodeId src, rsf::sim::RandomStream& rng) const;

  /// Scale all entries so total() == 1.
  void normalize();

  // --- Canonical patterns ---

  /// Every ordered pair equally likely.
  [[nodiscard]] static TrafficMatrix uniform(std::uint32_t nodes);
  /// A random permutation: node i talks only to p(i).
  [[nodiscard]] static TrafficMatrix permutation(std::uint32_t nodes,
                                                 rsf::sim::RandomStream& rng);
  /// `hot_fraction` of all demand targets `hot_node`; rest uniform.
  [[nodiscard]] static TrafficMatrix hotspot(std::uint32_t nodes, phy::NodeId hot_node,
                                             double hot_fraction);
  /// All nodes send to one node (the MapReduce reducer pathology).
  [[nodiscard]] static TrafficMatrix incast(std::uint32_t nodes, phy::NodeId sink);
  /// node i -> node (i + nodes/2) mod nodes: maximises grid distance,
  /// the pattern wraparound links help most.
  [[nodiscard]] static TrafficMatrix opposite(std::uint32_t nodes);
  /// All-to-all shuffle between two node sets (mappers -> reducers).
  [[nodiscard]] static TrafficMatrix shuffle(std::uint32_t nodes,
                                             const std::vector<phy::NodeId>& mappers,
                                             const std::vector<phy::NodeId>& reducers);

 private:
  [[nodiscard]] std::size_t idx(phy::NodeId s, phy::NodeId d) const;

  std::uint32_t n_;
  std::vector<double> w_;
};

}  // namespace rsf::workload
