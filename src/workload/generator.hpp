// rsf::workload — open-loop flow generation.
//
// FlowGenerator injects flows into a Network as a Poisson process:
// per-source exponential inter-arrivals, destinations drawn from a
// TrafficMatrix, sizes from a configurable distribution (fixed or
// bounded-Pareto heavy tail, the empirical shape of data-centre flow
// sizes). The generator tracks every result so benches can report
// completion-time distributions per experiment.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fabric/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/histogram.hpp"
#include "workload/traffic.hpp"

namespace rsf::workload {

struct SizeDistribution {
  enum class Kind { kFixed, kBoundedPareto };
  Kind kind = Kind::kFixed;
  phy::DataSize fixed = phy::DataSize::kilobytes(64);
  /// Bounded-Pareto parameters (bytes).
  double pareto_alpha = 1.2;
  double pareto_min_bytes = 1e3;
  double pareto_max_bytes = 1e7;

  [[nodiscard]] phy::DataSize sample(rsf::sim::RandomStream& rng) const;

  [[nodiscard]] static SizeDistribution fixed_size(phy::DataSize s) {
    SizeDistribution d;
    d.kind = Kind::kFixed;
    d.fixed = s;
    return d;
  }
  [[nodiscard]] static SizeDistribution heavy_tail(double alpha, double min_bytes,
                                                   double max_bytes) {
    SizeDistribution d;
    d.kind = Kind::kBoundedPareto;
    d.pareto_alpha = alpha;
    d.pareto_min_bytes = min_bytes;
    d.pareto_max_bytes = max_bytes;
    return d;
  }
};

struct GeneratorConfig {
  /// Mean flow inter-arrival per source node.
  rsf::sim::SimTime mean_interarrival = rsf::sim::SimTime::microseconds(100);
  SizeDistribution sizes;
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  std::uint64_t seed = 7;
  /// Stop generating after this time (generation only; flows drain).
  rsf::sim::SimTime horizon = rsf::sim::SimTime::milliseconds(10);
  /// First flow id used; set distinct bases when several generators
  /// share one Network (ids must be unique per network).
  fabric::FlowId first_flow_id = 1;
};

class FlowGenerator {
 public:
  FlowGenerator(rsf::sim::Simulator* sim, fabric::Network* net, TrafficMatrix matrix,
                GeneratorConfig config);

  /// Arm per-source arrival processes from `start`.
  void start(rsf::sim::SimTime start = rsf::sim::SimTime::zero());

  [[nodiscard]] std::uint64_t flows_generated() const { return generated_; }
  [[nodiscard]] const std::vector<fabric::FlowResult>& results() const { return results_; }
  [[nodiscard]] telemetry::Histogram completion_histogram() const;
  /// Aggregate goodput over completed flows: bytes / (last finish -
  /// first start).
  [[nodiscard]] double goodput_gbps() const;

 private:
  void arm_next(phy::NodeId src);
  void fire(phy::NodeId src);

  rsf::sim::Simulator* sim_;
  fabric::Network* net_;
  TrafficMatrix matrix_;
  GeneratorConfig config_;
  rsf::sim::RandomStream rng_;
  std::uint64_t generated_ = 0;
  fabric::FlowId next_flow_id_;
  std::vector<fabric::FlowResult> results_;
};

}  // namespace rsf::workload
