#include "workload/slotted.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/fleet.hpp"

namespace rsf::workload {

using rsf::sim::SimTime;

namespace {

// The churn arm splits each hot source's bytes into this many waves,
// started on a fixed cadence. The inter-wave gap (cadence minus the
// wave's transfer time) is what the regimes disagree about: it exceeds
// the fabric's slot inactivity timeout — slots self-expire and hand
// the capacity back — but stays inside the carve's demote window, so
// the carve holds its fraction through every gap.
constexpr int kChurnWaves = 3;
constexpr SimTime kChurnCadence = SimTime::microseconds(240);

// Flap cycle on the first hot leg: down inside the steady state, back
// up well before the jobs drain, twice. Schedules crossing the leg
// are preempted on every cut; the controller re-books on the next
// epoch, split across whatever legs are still up.
constexpr SimTime kFlapDown1 = SimTime::microseconds(100);
constexpr SimTime kFlapUp1 = SimTime::microseconds(170);
constexpr SimTime kFlapDown2 = SimTime::microseconds(280);
constexpr SimTime kFlapUp2 = SimTime::microseconds(350);

runtime::RackSpec grid_rack(int w, int h) {
  runtime::RackSpec rack;
  rack.config.shape = runtime::RackShape::kGrid;
  rack.config.rack.width = w;
  rack.config.rack.height = h;
  rack.config.enable_crc = false;  // isolate the fleet-scope control loop
  return rack;
}

runtime::SpineSpec spine_link(std::uint32_t a, std::uint32_t b, double gbps,
                              double loss_prob) {
  runtime::SpineSpec s;
  s.rack_a = a;
  s.rack_b = b;
  s.rate = phy::DataRate::gbps(gbps);
  s.latency = SimTime::microseconds(2);
  s.loss_prob = loss_prob;
  return s;
}

runtime::FleetConfig scenario_fleet(const SlottedScenarioConfig& cfg) {
  runtime::FleetConfig fc;
  // Racks 0, 1, 2 with two parallel 25 Gbps legs 1 <-> 0 (link ids 0
  // and 1) and two parallel 50 Gbps feeders 2 <-> 1 (ids 2 and 3).
  // The hot transit pair (2 -> 0) crosses one feeder and one leg; its
  // multipath split lands on the fully disjoint other pair of links.
  // Frozen prices put every default route on the lowest-id link of a
  // tie, so the background (1 -> 0) and the hot primary share leg 0 —
  // and leg 0 is the flap target.
  for (int i = 0; i < 3; ++i) fc.racks.push_back(grid_rack(4, 4));
  fc.spine.push_back(spine_link(1, 0, 25, cfg.loss_prob));
  fc.spine.push_back(spine_link(1, 0, 25, cfg.loss_prob));
  fc.spine.push_back(spine_link(2, 1, 50, cfg.loss_prob));
  fc.spine.push_back(spine_link(2, 1, 50, cfg.loss_prob));
  fc.seed = cfg.seed;
  fc.workers = cfg.workers;
  fc.enable_controller = true;
  fc.controller.epoch = SimTime::microseconds(20);
  // Freeze prices (backlog term included): the three regimes must
  // differ only in how they share the hot leg, not in where the route
  // cache lands after a repricing epoch.
  fc.controller.utilization_weight = 0.0;
  fc.controller.backlog_weight_per_us = 0.0;
  // Shared hysteresis shape for both policies: promote fast, demote
  // slower than the churn arm's wave gap — the carve is *supposed* to
  // sit on its fraction through every gap while the fabric-level slot
  // timeout returns the slotted capacity on its own. Both policies
  // cap at two grants: the background pair's sustained demand earns
  // promotion alongside the hot transit pair, and the regimes split
  // on admission — two 0.6 carves cannot share a leg (headroom), but
  // two duty-3 slot masks tile the same calendar collision-free.
  switch (cfg.regime) {
    case SlottedRegime::kPacket:
      break;
    case SlottedRegime::kCarve:
      fc.controller.reservations.enable = true;
      fc.controller.reservations.fraction = cfg.carve_fraction;
      fc.controller.reservations.hot_bytes_per_epoch = 8 * 1024;
      fc.controller.reservations.idle_bytes_per_epoch = 1024;
      fc.controller.reservations.promote_after = 2;
      fc.controller.reservations.demote_after = 8;
      fc.controller.reservations.max_reservations = 2;
      break;
    case SlottedRegime::kSlotted:
      fc.controller.schedules.enable = true;
      fc.controller.schedules.period = cfg.slot_period;
      fc.controller.schedules.duty = cfg.slot_duty;
      fc.controller.schedules.hot_bytes_per_epoch = 8 * 1024;
      fc.controller.schedules.idle_bytes_per_epoch = 1024;
      fc.controller.schedules.promote_after = 2;
      fc.controller.schedules.demote_after = 8;
      fc.controller.schedules.max_schedules = 2;
      fc.controller.schedules.multipath = true;
      break;
  }
  return fc;
}

// Fold one job's result into a running aggregate: byte/flow tallies
// add, completion times take the max across waves, and the median is
// the worst wave's median (the sweep only compares job completions,
// which the max makes exact).
void fold(CrossRackResult& into, const CrossRackResult& r) {
  into.job_completion = std::max(into.job_completion, r.job_completion);
  into.median_flow = std::max(into.median_flow, r.median_flow);
  into.max_flow = std::max(into.max_flow, r.max_flow);
  into.flows += r.flows;
  into.failed += r.failed;
  into.cross_rack_flows += r.cross_rack_flows;
  into.spine_hops += r.spine_hops;
  into.retransmits += r.retransmits;
}

}  // namespace

SlottedFleetScenario::SlottedFleetScenario(SlottedScenarioConfig config)
    : config_(config),
      fleet_(std::make_unique<runtime::FleetRuntime>(scenario_fleet(config))) {
  if (config_.hot_bytes.bit_count() <= 0) {
    throw std::invalid_argument("SlottedFleetScenario: non-positive hot_bytes");
  }
  fleet_->spine().set_slot_timeout(config_.slot_timeout);
}

SlottedFleetScenario::~SlottedFleetScenario() = default;

SlottedScenarioResult SlottedFleetScenario::run() {
  if (ran_) throw std::logic_error("SlottedFleetScenario: run() called twice");
  ran_ = true;
  runtime::FleetRuntime& f = *fleet_;

  // Hot: two full rows of the transit rack swarm one sink in rack 0.
  // Two hops per packet make this the fleet's biggest byte·hops
  // consumer — the pair both policies' demand ranking promotes. The
  // churn arm splits the same bytes into waves on a fixed cadence;
  // the other arms send them in one continuous job.
  std::vector<CrossRackJob*> hot_jobs;
  const int waves = config_.arm == SlottedArm::kChurn ? kChurnWaves : 1;
  const phy::DataSize wave_bytes =
      phy::DataSize::bits(config_.hot_bytes.bit_count() / waves);
  for (int w = 0; w < waves; ++w) {
    CrossRackIncastConfig hot_cfg;
    hot_cfg.sources.reserve(8);
    for (int y = 0; y < 2; ++y) {
      for (int x = 0; x < 4; ++x) hot_cfg.sources.push_back(f.at(kHotSrcRack, x, y));
    }
    hot_cfg.sink = f.at(kHotDstRack, 0, 0);
    hot_cfg.bytes_per_source = wave_bytes;
    hot_cfg.start = SimTime::picoseconds(kChurnCadence.ps() * w);
    hot_jobs.push_back(&f.add_incast(hot_cfg));
  }

  // Background: rack 1 -> rack 0, one hop on the leg the hot primary
  // crosses — the traffic the carve starves and the slot calendar
  // admits beside the hot pair. Two full rows at twice the hot
  // per-source bytes: enough demand to outlast every hot wave on the
  // shared leg while its single hop keeps it below the hot pair in
  // byte·hops.
  CrossRackIncastConfig bg_cfg;
  bg_cfg.sources.reserve(8);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 4; ++x) bg_cfg.sources.push_back(f.at(1, x, y));
  }
  bg_cfg.sink = f.at(kHotDstRack, 3, 3);
  bg_cfg.bytes_per_source = phy::DataSize::bits(config_.hot_bytes.bit_count() * 2);
  CrossRackJob& background = f.add_incast(bg_cfg);

  SlottedScenarioResult result;
  std::vector<CrossRackResult> hot_results(hot_jobs.size());
  for (std::size_t w = 0; w < hot_jobs.size(); ++w) {
    hot_jobs[w]->run([&hot_results, w](const CrossRackResult& r) { hot_results[w] = r; });
  }
  background.run([&result](const CrossRackResult& r) { result.background = r; });

  if (config_.arm == SlottedArm::kFlap) {
    // Weak events: the flap never keeps a drained fleet alive, and
    // under the conservative-PDES drive it merges at the oracle's
    // exact position — runs stay byte-identical across workers.
    fabric::Interconnect& spine = f.spine();
    for (const auto& [at, up] :
         {std::pair{kFlapDown1, false}, std::pair{kFlapUp1, true},
          std::pair{kFlapDown2, false}, std::pair{kFlapUp2, true}}) {
      f.sim().schedule_weak_at(
          at, [&spine, up = up] { spine.set_link_up(kFlapLink, up); });
    }
  }

  f.start();
  f.run_until();
  f.stop();
  f.run_until();  // drain anything the stop released
  for (CrossRackJob* job : hot_jobs) {
    if (!job->finished()) {
      throw std::logic_error("SlottedFleetScenario: hot job did not drain");
    }
  }
  if (!background.finished()) {
    throw std::logic_error("SlottedFleetScenario: background did not drain");
  }
  for (const CrossRackResult& r : hot_results) fold(result.hot, r);

  result.promotions = f.controller().promotions();
  result.demotions = f.controller().demotions();
  result.schedule_splits = f.controller().counters().get("fleet.schedule_splits");
  const telemetry::CounterSet& c = f.spine().counters();
  result.slot_reservations = c.get("spine.slot_reservations");
  result.slot_expirations = c.get("spine.slot_expirations");
  result.slot_preemptions = c.get("spine.slot_preemptions");
  result.slot_refusals = c.get("spine.slot_refusals");
  result.slotted_bytes = c.get("spine.slotted_bytes");
  result.reserved_bytes = c.get("spine.reserved_bytes");
  result.reservation_preemptions = c.get("spine.reservation_preemptions");
  return result;
}

}  // namespace rsf::workload
