#include "telemetry/series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rsf::telemetry {

using rsf::sim::SimTime;

double TimeSeries::value_at(SimTime t, double fallback) const {
  double v = fallback;
  for (const Sample& s : samples_) {
    if (s.time > t) break;
    v = s.value;
  }
  return v;
}

double TimeSeries::time_weighted_mean(SimTime from, SimTime to, double fallback) const {
  if (samples_.empty() || to <= from) return fallback;
  double acc = 0;
  SimTime cursor = from;
  double current = value_at(from, fallback);
  for (const Sample& s : samples_) {
    if (s.time <= from) continue;
    if (s.time >= to) break;
    acc += current * static_cast<double>((s.time - cursor).ps());
    cursor = s.time;
    current = s.value;
  }
  acc += current * static_cast<double>((to - cursor).ps());
  return acc / static_cast<double>((to - from).ps());
}

SimTime TimeSeries::first_reach(double target, double tol, SimTime from) const {
  for (const Sample& s : samples_) {
    if (s.time < from) continue;
    if (std::abs(s.value - target) <= tol) return s.time;
  }
  return SimTime::infinity();
}

double TimeSeries::max_value() const {
  double v = -std::numeric_limits<double>::infinity();
  for (const Sample& s : samples_) v = std::max(v, s.value);
  return samples_.empty() ? 0.0 : v;
}

double TimeSeries::min_value() const {
  double v = std::numeric_limits<double>::infinity();
  for (const Sample& s : samples_) v = std::min(v, s.value);
  return samples_.empty() ? 0.0 : v;
}

}  // namespace rsf::telemetry
