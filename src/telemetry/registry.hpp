// rsf::telemetry — the metric registry.
//
// A Registry is one named home for every metric the components of a
// runtime emit: histograms, counter sets and time series, keyed by a
// dotted path ("net.packet_latency", "crc.rack_power_w"). Components
// obtain their instruments from the registry their owner hands them,
// so any experiment can look a metric up by name or dump the whole
// rack's telemetry as one unified table, instead of chasing accessors
// across six subsystems. Instruments are owned by the registry and
// pointer-stable for its lifetime.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/series.hpp"
#include "telemetry/table.hpp"

namespace rsf::telemetry {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. References stay valid for the registry's lifetime.
  Histogram& histogram(std::string_view name);
  CounterSet& counters(std::string_view name);
  TimeSeries& series(std::string_view name);

  /// Lookup without creating; nullptr when absent.
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;
  [[nodiscard]] const CounterSet* find_counters(std::string_view name) const;
  [[nodiscard]] const TimeSeries* find_series(std::string_view name) const;

  [[nodiscard]] std::size_t size() const {
    return histograms_.size() + counters_.size() + series_.size();
  }

  /// The unified metrics dump: every counter, gauge, histogram and
  /// series in one sorted table.
  [[nodiscard]] Table to_table(std::string title = "metrics") const;

  /// Snapshot-import every instrument of `other` into this registry
  /// under `prefix` + name ("rack0." + "net.packet_latency"). Existing
  /// instruments with the same prefixed name are overwritten in place,
  /// so repeated imports refresh the snapshot instead of
  /// double-counting, and references handed out earlier stay valid.
  /// This is how a fleet merges its shards' metric tables.
  void import_prefixed(const Registry& other, std::string_view prefix);

 private:
  // unique_ptr for reference stability across rehashing inserts.
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<CounterSet>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<TimeSeries>, std::less<>> series_;
};

}  // namespace rsf::telemetry
