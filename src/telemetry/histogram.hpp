// rsf::telemetry — streaming latency histogram.
//
// Log-linear bucketing (HDR-histogram style): values are bucketed into
// powers of two, each power split into kSubBuckets linear sub-buckets,
// giving a bounded relative error (< 1/kSubBuckets) at every scale from
// picoseconds to seconds with a few KB of memory and O(1) insert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rsf::telemetry {

class Histogram {
 public:
  Histogram() = default;

  void record(double value);
  void record(rsf::sim::SimTime t) { record(static_cast<double>(t.ps())); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Value at quantile q in [0,1]; q=0.5 is the median. Returns the
  /// representative (upper edge) of the containing bucket, so the
  /// result is an upper bound within the bucket's relative error.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p90() const { return quantile(0.90); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }

  void merge(const Histogram& other);
  void reset();

  /// A copy of the current state, for phase measurements: take a
  /// snapshot before the window, then `now.since(before)` after it.
  [[nodiscard]] Histogram snapshot() const { return *this; }

  /// The distribution of values recorded after `earlier` was
  /// snapshotted from *this same histogram*. Count, mean and stddev of
  /// the window are exact; min/max (and therefore quantile clamping)
  /// are bucket-resolution bounds, since per-value extremes cannot be
  /// attributed to a window after the fact.
  [[nodiscard]] Histogram since(const Histogram& earlier) const;

  /// One-line summary, e.g. "n=1000 mean=4.2us p50=... p99=...",
  /// interpreting stored values as picoseconds.
  [[nodiscard]] std::string summary_time() const;
  /// Same but with raw unitless values.
  [[nodiscard]] std::string summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets => <1.6% error
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  [[nodiscard]] static std::size_t bucket_index(double v);
  [[nodiscard]] static double bucket_upper_edge(std::size_t idx);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::uint64_t zero_or_negative_ = 0;
};

}  // namespace rsf::telemetry
