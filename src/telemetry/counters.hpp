// rsf::telemetry — named counters and gauges.
//
// A CounterSet is a flat registry of named monotonic counters and
// last-value gauges. Components own their sets; benches snapshot and
// diff them between measurement windows.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace rsf::telemetry {

class CounterSet {
 public:
  /// Add `delta` to counter `name`, creating it at zero first.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Stable reference to counter `name` (created at zero). std::map
  /// nodes never move, so per-packet hot paths cache the reference
  /// once and bump it without the per-call name lookup.
  [[nodiscard]] std::uint64_t& slot(std::string_view name);

  /// Set gauge `name` to `value`.
  void set_gauge(std::string_view name, double value);

  [[nodiscard]] std::uint64_t get(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const;

  /// Counters in `this` minus counters in `earlier` (missing = 0).
  [[nodiscard]] CounterSet diff(const CounterSet& earlier) const;

  void merge(const CounterSet& other);
  void reset();

  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }

  /// "a=1 b=2 ..." rendering for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

}  // namespace rsf::telemetry
