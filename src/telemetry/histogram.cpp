#include "telemetry/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace rsf::telemetry {

std::size_t Histogram::bucket_index(double v) {
  // v >= 1 guaranteed by caller (zero_or_negative_ handles the rest;
  // values in (0,1) clamp to bucket 0).
  if (v < 1.0) return 0;
  const int exponent = std::min(62, static_cast<int>(std::floor(std::log2(v))));
  const double base = std::exp2(exponent);
  int sub = static_cast<int>((v - base) / base * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return static_cast<std::size_t>(exponent) * kSubBuckets + static_cast<std::size_t>(sub);
}

double Histogram::bucket_upper_edge(std::size_t idx) {
  const std::size_t exponent = idx / kSubBuckets;
  const std::size_t sub = idx % kSubBuckets;
  const double base = std::exp2(static_cast<double>(exponent));
  return base + base * static_cast<double>(sub + 1) / kSubBuckets;
}

void Histogram::record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  if (value < 1.0) {
    ++zero_or_negative_;
    return;
  }
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(count_) - m * m;
  return var <= 0 ? 0.0 : std::sqrt(var);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = zero_or_negative_;
  if (seen >= target && target > 0) return std::min(max_, 1.0);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(max_, bucket_upper_edge(i));
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  zero_or_negative_ += other.zero_or_negative_;
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::reset() { *this = Histogram(); }

Histogram Histogram::since(const Histogram& earlier) const {
  Histogram d;
  if (count_ <= earlier.count_) return d;  // empty window (or not a predecessor)
  d.count_ = count_ - earlier.count_;
  d.sum_ = sum_ - earlier.sum_;
  d.sum_sq_ = std::max(0.0, sum_sq_ - earlier.sum_sq_);
  // Clamped subtraction throughout: if `earlier` is unrelated rather
  // than a true predecessor, the result is a best-effort diff instead
  // of unsigned wraparound garbage.
  d.zero_or_negative_ = zero_or_negative_ >= earlier.zero_or_negative_
                            ? zero_or_negative_ - earlier.zero_or_negative_
                            : 0;
  d.buckets_.resize(buckets_.size(), 0);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t before = i < earlier.buckets_.size() ? earlier.buckets_[i] : 0;
    d.buckets_[i] = buckets_[i] >= before ? buckets_[i] - before : 0;
  }
  // Window extremes at bucket resolution: the edges of the outermost
  // buckets that gained samples.
  d.min_ = 0.0;
  d.max_ = 0.0;
  if (d.zero_or_negative_ > 0) d.min_ = std::min(min_, 0.0);
  bool min_set = d.zero_or_negative_ > 0;
  for (std::size_t i = 0; i < d.buckets_.size(); ++i) {
    if (d.buckets_[i] == 0) continue;
    if (!min_set) {
      d.min_ = i == 0 ? std::max(min_, 0.0) : bucket_upper_edge(i - 1);
      min_set = true;
    }
    d.max_ = std::min(max_, bucket_upper_edge(i));
  }
  if (d.max_ == 0.0) d.max_ = std::min(max_, 1.0);  // all window samples below 1
  return d;
}

namespace {
std::string fmt_time_ps(double ps) {
  return rsf::sim::SimTime::picoseconds(static_cast<std::int64_t>(ps)).to_string();
}
}  // namespace

std::string Histogram::summary_time() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%s p50=%s p99=%s p999=%s max=%s",
                static_cast<unsigned long long>(count_), fmt_time_ps(mean()).c_str(),
                fmt_time_ps(p50()).c_str(), fmt_time_ps(p99()).c_str(),
                fmt_time_ps(p999()).c_str(), fmt_time_ps(max()).c_str());
  return buf;
}

std::string Histogram::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.3f p50=%.3f p99=%.3f p999=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(), p50(), p99(), p999(), max());
  return buf;
}

}  // namespace rsf::telemetry
