// rsf::telemetry — result tables.
//
// Benches build a Table and render it as aligned text (for the console,
// matching the rows/series a paper figure reports) and as CSV (for
// re-plotting). Cells are strings; numeric helpers format consistently.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rsf::telemetry {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Aligned, boxed text rendering.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing separators).
  void write_csv(std::ostream& os) const;
  /// Convenience: print() to stdout.
  void print() const;
  /// The print() rendering as a string (tests diff tables byte-wise).
  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rsf::telemetry
