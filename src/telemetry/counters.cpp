#include "telemetry/counters.hpp"

#include <sstream>

namespace rsf::telemetry {

void CounterSet::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t& CounterSet::slot(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

void CounterSet::set_gauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

std::uint64_t CounterSet::get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double CounterSet::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool CounterSet::has(std::string_view name) const {
  return counters_.find(name) != counters_.end() || gauges_.find(name) != gauges_.end();
}

CounterSet CounterSet::diff(const CounterSet& earlier) const {
  CounterSet out;
  for (const auto& [name, value] : counters_) {
    const std::uint64_t before = earlier.get(name);
    out.counters_.emplace(name, value >= before ? value - before : 0);
  }
  out.gauges_ = gauges_;
  return out;
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [name, value] : other.counters_) add(name, value);
  for (const auto& [name, value] : other.gauges_) set_gauge(name, value);
}

void CounterSet::reset() {
  // Zero in place rather than clear(): slot() references handed to
  // hot paths must survive a reset.
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : gauges_) value = 0;
}

std::string CounterSet::to_string() const {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) oss << ' ';
    oss << name << '=' << value;
    first = false;
  }
  for (const auto& [name, value] : gauges_) {
    if (!first) oss << ' ';
    oss << name << '=' << value;
    first = false;
  }
  return oss.str();
}

}  // namespace rsf::telemetry
