// rsf::telemetry — time series recorder.
//
// Records (time, value) samples for quantities that evolve during a
// run (power draw, per-link utilisation, CRC decisions) so benches can
// print reaction timelines.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rsf::telemetry {

struct Sample {
  rsf::sim::SimTime time;
  double value = 0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(rsf::sim::SimTime t, double value) { samples_.push_back({t, value}); }

  /// Replace this series' samples with a copy of `other`'s (the name
  /// is kept). Used by Registry::import_prefixed to snapshot a series
  /// under a new name without touching the source.
  void copy_samples_from(const TimeSeries& other) { samples_ = other.samples_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Last value at or before `t`; `fallback` if none.
  [[nodiscard]] double value_at(rsf::sim::SimTime t, double fallback = 0.0) const;

  /// Time-weighted mean over [from, to] treating the series as a step
  /// function (last-value-holds). Returns `fallback` with no samples.
  [[nodiscard]] double time_weighted_mean(rsf::sim::SimTime from, rsf::sim::SimTime to,
                                          double fallback = 0.0) const;

  /// Earliest time >= `from` at which the value satisfies
  /// |value - target| <= tol, or SimTime::infinity() if never. Used to
  /// measure the CRC's reaction/settling time.
  [[nodiscard]] rsf::sim::SimTime first_reach(double target, double tol,
                                              rsf::sim::SimTime from =
                                                  rsf::sim::SimTime::zero()) const;

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace rsf::telemetry
