#include "telemetry/registry.hpp"

#include <utility>

namespace rsf::telemetry {

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

CounterSet& Registry::counters(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<CounterSet>()).first;
  }
  return *it->second;
}

TimeSeries& Registry::series(std::string_view name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(std::string(name), std::make_unique<TimeSeries>(std::string(name)))
             .first;
  }
  return *it->second;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const CounterSet* Registry::find_counters(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const TimeSeries* Registry::find_series(std::string_view name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

namespace {
/// Components conventionally prefix their counter names with their
/// registry key already ("net.flows_started" in set "net"); avoid
/// rendering the prefix twice.
std::string qualify(const std::string& set_name, const std::string& metric) {
  if (metric.starts_with(set_name + ".")) return metric;
  return set_name + "." + metric;
}
}  // namespace

void Registry::import_prefixed(const Registry& other, std::string_view prefix) {
  const std::string pfx(prefix);
  for (const auto& [name, h] : other.histograms_) {
    histogram(pfx + name) = *h;
  }
  for (const auto& [name, set] : other.counters_) {
    CounterSet& dst = counters(pfx + name);
    dst.reset();
    // Canonicalise inner keys to their fully qualified form first, so
    // the prefixed set renders them under its own (prefixed) name.
    for (const auto& [counter, value] : set->counters()) {
      dst.add(pfx + qualify(name, counter), value);
    }
    for (const auto& [gauge, value] : set->gauges()) {
      dst.set_gauge(pfx + qualify(name, gauge), value);
    }
  }
  for (const auto& [name, s] : other.series_) {
    series(pfx + name).copy_samples_from(*s);
  }
}

Table Registry::to_table(std::string title) const {
  Table table(std::move(title), {"metric", "type", "value", "detail"});
  for (const auto& [name, set] : counters_) {
    for (const auto& [counter, value] : set->counters()) {
      table.row().cell(qualify(name, counter)).cell("counter").cell(value).cell("");
    }
    for (const auto& [gauge, value] : set->gauges()) {
      table.row().cell(qualify(name, gauge)).cell("gauge").cell(value, 3).cell("");
    }
  }
  for (const auto& [name, h] : histograms_) {
    table.row()
        .cell(name)
        .cell("histogram")
        .cell(h->count())
        .cell(h->count() > 0 ? h->summary() : "empty");
  }
  for (const auto& [name, s] : series_) {
    const std::size_t n = s->samples().size();
    std::string detail;
    if (n > 0) {
      detail = "last=" + std::to_string(s->samples().back().value) +
               " min=" + std::to_string(s->min_value()) +
               " max=" + std::to_string(s->max_value());
    }
    table.row()
        .cell(name)
        .cell("series")
        .cell(static_cast<std::uint64_t>(n))
        .cell(n > 0 ? detail : "empty");
  }
  return table;
}

}  // namespace rsf::telemetry
