#include "telemetry/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rsf::telemetry {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: need at least one column");
}

Table& Table::row() {
  if (!rows_.empty() && rows_.back().size() != columns_.size()) {
    throw std::logic_error("Table: previous row incomplete (" + title_ + ")");
  }
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("Table: cell() before row()");
  if (rows_.back().size() >= columns_.size()) {
    throw std::logic_error("Table: too many cells in row (" + title_ + ")");
  }
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  auto hline = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << ' ' << v << std::string(widths[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  os << "== " << title_ << " ==\n";
  hline();
  print_row(columns_);
  hline();
  for (const auto& r : rows_) print_row(r);
  hline();
}

void Table::print() const { print(std::cout); }

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

namespace {
void csv_field(std::ostream& os, const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) {
    os << v;
    return;
  }
  os << '"';
  for (char ch : v) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    csv_field(os, columns_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      csv_field(os, r[c]);
    }
    os << '\n';
  }
}

}  // namespace rsf::telemetry
