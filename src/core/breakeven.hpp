// rsf::core — the reconfiguration break-even model (paper §3.2).
//
// "The problem that arises in all reconfigurable fabrics is finding
// the minimum flow size for which reconfiguration is worth the cost."
// This module answers it in closed form. Reconfiguring costs a dead
// time T (PLP actuation + retraining) during which the affected
// capacity is unusable; afterwards the flow runs at a better rate
// and/or lower per-hop latency. A flow of S bits should trigger
// reconfiguration iff finishing at the new rate after paying T beats
// finishing at the old rate immediately:
//
//     S/R_new + T  <=  S/R_old      =>      S* = T / (1/R_old - 1/R_new)
//
// The same inequality with per-bit latency gains covers bypass chains
// whose win is switching latency rather than bandwidth.
#pragma once

#include <optional>

#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::core {

/// Minimum flow size (bits) for which moving from `old_rate` to
/// `new_rate` pays back `reconfig_time`. nullopt when new_rate does
/// not exceed old_rate (no break-even exists). old_rate of zero (no
/// current path) makes any flow worth it: returns 0 bits.
[[nodiscard]] std::optional<phy::DataSize> break_even_size(phy::DataRate old_rate,
                                                           phy::DataRate new_rate,
                                                           rsf::sim::SimTime reconfig_time);

/// True if a flow of `size` finishes sooner by reconfiguring.
[[nodiscard]] bool worth_reconfiguring(phy::DataSize size, phy::DataRate old_rate,
                                       phy::DataRate new_rate,
                                       rsf::sim::SimTime reconfig_time);

/// Completion time of `size` bits at `rate` after waiting `setup`.
[[nodiscard]] rsf::sim::SimTime completion_time(phy::DataSize size, phy::DataRate rate,
                                                rsf::sim::SimTime setup);

/// Generalised gate for latency-dominated reconfigurations (e.g. a
/// bypass chain saving `saved_per_packet` per packet): the number of
/// packets after which dead time T is repaid.
[[nodiscard]] std::optional<std::uint64_t> break_even_packets(
    rsf::sim::SimTime saved_per_packet, rsf::sim::SimTime reconfig_time);

}  // namespace rsf::core
