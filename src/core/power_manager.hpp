// rsf::core — the power manager (PLP #1 + #3 driver).
//
// Rack-scale systems inherit a traditional rack's power budget
// (paper §2). The power manager enforces a cap by *lane shedding*:
// when the rack is over budget it splits a lane off the least
// utilised multi-lane link and powers it down; when there is headroom
// and links run hot it powers shed lanes back up and re-bundles them.
// Capacity therefore degrades and recovers gracefully instead of the
// rack browning out.
#pragma once

#include <cstdint>
#include <vector>

#include "core/observations.hpp"
#include "phy/plant.hpp"
#include "plp/engine.hpp"

namespace rsf::core {

struct PowerManagerConfig {
  double cap_watts = 1e18;  // effectively uncapped by default
  /// Restore lanes only when projected power stays below
  /// cap - restore_margin (anti-flap gap).
  double restore_margin_watts = 10.0;
  /// Links hotter than this are candidates for lane restoration.
  double restore_utilization = 0.6;
  /// Never shed below this many lanes on a link.
  int min_lanes = 1;
  /// Max shed/restore operations per epoch (actuation budget).
  int max_ops_per_epoch = 2;
};

class PowerManager {
 public:
  PowerManager(plp::PlpEngine* engine, phy::PhysicalPlant* plant,
               PowerManagerConfig config = {});

  /// Inspect the snapshot and submit shed/restore command chains.
  /// Returns the number of operations started.
  int apply(const RackSnapshot& snapshot);

  [[nodiscard]] std::size_t shed_lane_count() const { return shed_.size(); }
  [[nodiscard]] std::uint64_t sheds() const { return sheds_; }
  [[nodiscard]] std::uint64_t restores() const { return restores_; }
  [[nodiscard]] const PowerManagerConfig& config() const { return config_; }

  /// Adjust the cap at runtime. Callers that size the cap relative to
  /// the built rack's draw (e.g. "95% of uncapped") set it after
  /// construction; the next epoch enforces it.
  void set_cap(double cap_watts) { config_.cap_watts = cap_watts; }

 private:
  struct ShedRecord {
    phy::LinkId spare = phy::kInvalidLink;   // dark link (1 lane)
    phy::LinkId partner = phy::kInvalidLink; // live sibling to re-bundle with
  };

  void shed_one(const RackSnapshot& snapshot);
  void restore_one();

  plp::PlpEngine* engine_;
  phy::PhysicalPlant* plant_;
  PowerManagerConfig config_;
  std::vector<ShedRecord> shed_;
  std::uint64_t sheds_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace rsf::core
