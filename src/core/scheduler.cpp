#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/reconfig.hpp"

namespace rsf::core {

using rsf::phy::DataRate;
using rsf::phy::DataSize;
using rsf::sim::SimTime;

CircuitScheduler::CircuitScheduler(rsf::sim::Simulator* sim, plp::PlpEngine* engine,
                                   phy::PhysicalPlant* plant, fabric::Topology* topo,
                                   fabric::Router* router, fabric::Network* net,
                                   CircuitSchedulerConfig config)
    : sim_(sim),
      engine_(engine),
      plant_(plant),
      topo_(topo),
      router_(router),
      net_(net),
      config_(config) {
  if (sim_ == nullptr || engine_ == nullptr || plant_ == nullptr || topo_ == nullptr ||
      router_ == nullptr || net_ == nullptr) {
    throw std::invalid_argument("CircuitScheduler: null dependency");
  }
}

std::optional<CircuitScheduler::CircuitPlan> CircuitScheduler::plan_for(
    const fabric::FlowSpec& spec) {
  const std::vector<phy::LinkId> path = router_->path(spec.src, spec.dst);
  if (path.size() < 2) return std::nullopt;  // already adjacent (or unreachable)

  CircuitPlan plan;
  plan.path_links = path;
  DataRate bottleneck = DataRate::gbps(1e9);
  DataRate circuit_rate = DataRate::gbps(1e9);
  SimTime prop_total = SimTime::zero();
  const SimTime lifetime = sim_->now();
  for (phy::LinkId id : path) {
    const phy::LogicalLink& l = plant_->link(id);
    // A circuit needs a spare lane on an adjacent, idle-to-actuate link.
    if (l.bypass_joints() != 0 || l.lane_count() < 2 || engine_->link_busy(id)) {
      return std::nullopt;
    }
    // What the packet fabric can actually give this flow is the link's
    // effective rate minus what competing traffic already consumes
    // (PLP #5 utilisation). The circuit, in contrast, is dedicated.
    double util = 0.0;
    if (lifetime > SimTime::zero()) {
      util = std::clamp(net_->link_busy_time(id).ratio(lifetime), 0.0, 0.95);
    }
    bottleneck = std::min(bottleneck, l.effective_rate() * (1.0 - util));
    // The spare circuit gets 1 of the link's lanes.
    circuit_rate = std::min(
        circuit_rate, l.fec().effective_rate(l.raw_rate() *
                                             (1.0 / static_cast<double>(l.lane_count()))));
    prop_total += l.propagation_delay();
  }
  plan.packet_rate = bottleneck;
  plan.circuit_rate = circuit_rate;

  const auto& net_cfg = net_->config();
  const auto hops = static_cast<std::int64_t>(path.size());
  plan.packet_latency_overhead =
      prop_total + net_cfg.switch_params.switch_latency * (hops - 1) +
      net_cfg.switch_params.nic_latency * std::int64_t{2};
  plan.circuit_prop =
      prop_total +
      plant_->config().bypass_latency * (hops - 1) + net_cfg.switch_params.nic_latency * std::int64_t{2};

  // Setup: all splits run concurrently, joins tree-reduce.
  const auto& t = engine_->timings();
  const SimTime split_stage = t.command_overhead + t.split;
  const auto join_rounds = static_cast<std::int64_t>(
      std::ceil(std::log2(static_cast<double>(path.size()))));
  const SimTime join_stage =
      (t.command_overhead + t.bypass_setup + t.lane_retrain) * join_rounds;
  plan.setup = split_stage + join_stage;
  return plan;
}

ScheduleDecision CircuitScheduler::decide(const fabric::FlowSpec& spec) {
  ScheduleDecision d;
  auto plan = plan_for(spec);
  if (!plan) return d;

  d.path_hops = static_cast<int>(plan->path_links.size());
  d.est_setup = plan->setup;
  d.est_packet_completion =
      completion_time(spec.size, plan->packet_rate, plan->packet_latency_overhead);
  d.est_circuit_completion = completion_time(spec.size, plan->circuit_rate,
                                             plan->setup + plan->circuit_prop);
  d.break_even = break_even_size(plan->packet_rate, plan->circuit_rate, plan->setup);
  d.use_circuit = spec.size >= config_.min_circuit_size &&
                  active_circuits_ < config_.max_concurrent_circuits &&
                  d.est_circuit_completion < d.est_packet_completion;
  return d;
}

void CircuitScheduler::submit(const fabric::FlowSpec& spec, Callback cb) {
  auto plan = plan_for(spec);
  if (!plan) {
    run_packet(spec, std::move(cb));
    return;
  }
  const ScheduleDecision d = decide(spec);
  if (!d.use_circuit) {
    run_packet(spec, std::move(cb));
    return;
  }
  build_and_run(spec, std::move(*plan), std::move(cb));
}

void CircuitScheduler::run_packet(const fabric::FlowSpec& spec, Callback cb) {
  ++packet_flows_;
  net_->start_flow(spec, [cb = std::move(cb)](const fabric::FlowResult& r) {
    if (cb) cb(r, /*used_circuit=*/false);
  });
}

void CircuitScheduler::build_and_run(const fabric::FlowSpec& spec, CircuitPlan plan,
                                     Callback cb) {
  ++active_circuits_;
  const int keep = plant_->link(plan.path_links.front()).lane_count() - 1;
  split_many(
      engine_, plan.path_links, keep,
      [this, spec, cb = std::move(cb)](std::vector<std::optional<SplitOutcome>> outs) mutable {
        std::vector<phy::LinkId> spares;
        std::vector<phy::LinkId> kept;
        for (const auto& o : outs) {
          if (!o) break;
          spares.push_back(o->spare);
          kept.push_back(o->kept);
        }
        if (spares.size() != outs.size()) {
          // Partial failure: re-bundle what we split and fall back.
          for (std::size_t i = 0; i < spares.size(); ++i) {
            engine_->submit(plp::BundleCommand{kept[i], spares[i]});
          }
          --active_circuits_;
          run_packet(spec, std::move(cb));
          return;
        }
        chain_bypass(
            engine_, spares,
            [this, spec, kept = std::move(kept),
             cb = std::move(cb)](std::optional<phy::LinkId> circuit) mutable {
              if (!circuit) {
                --active_circuits_;
                run_packet(spec, std::move(cb));
                return;
              }
              ++circuits_built_;
              ++circuit_flows_;
              // Dedicate the circuit: public routing no longer sees it
              // and only this flow's packets cross it.
              plant_->set_reservation(*circuit, spec.id);
              fabric::FlowSpec launched = spec;
              launched.start = sim_->now();
              net_->start_flow(
                  launched, [this, circuit = *circuit, kept = std::move(kept),
                             cb = std::move(cb)](const fabric::FlowResult& r) mutable {
                    if (cb) cb(r, /*used_circuit=*/true);
                    teardown(circuit, std::move(kept));
                  });
            });
      });
}

void CircuitScheduler::teardown(phy::LinkId circuit, std::vector<phy::LinkId> kept_links) {
  unchain_bypass(
      engine_, plant_, circuit,
      [this, kept_links = std::move(kept_links)](std::vector<phy::LinkId> pieces) {
        --active_circuits_;
        // Pieces come back in path order; re-bundle with the sibling
        // that kept serving the packet fabric.
        for (std::size_t i = 0; i < pieces.size() && i < kept_links.size(); ++i) {
          if (plant_->has_link(kept_links[i]) && plant_->has_link(pieces[i])) {
            engine_->submit(plp::BundleCommand{kept_links[i], pieces[i]});
          }
        }
      });
}

}  // namespace rsf::core
