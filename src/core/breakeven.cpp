#include "core/breakeven.hpp"

#include <cmath>

namespace rsf::core {

using rsf::phy::DataRate;
using rsf::phy::DataSize;
using rsf::sim::SimTime;

std::optional<DataSize> break_even_size(DataRate old_rate, DataRate new_rate,
                                        SimTime reconfig_time) {
  if (new_rate.bits_per_second() <= old_rate.bits_per_second()) return std::nullopt;
  if (old_rate.is_zero()) return DataSize::zero();
  const double inv_delta =
      1.0 / old_rate.bits_per_second() - 1.0 / new_rate.bits_per_second();
  const double bits = reconfig_time.sec() / inv_delta;
  return DataSize::bits(static_cast<std::int64_t>(std::ceil(bits)));
}

bool worth_reconfiguring(DataSize size, DataRate old_rate, DataRate new_rate,
                         SimTime reconfig_time) {
  const auto threshold = break_even_size(old_rate, new_rate, reconfig_time);
  return threshold.has_value() && size >= *threshold;
}

SimTime completion_time(DataSize size, DataRate rate, SimTime setup) {
  return setup + rsf::phy::transmission_time(size, rate);
}

std::optional<std::uint64_t> break_even_packets(SimTime saved_per_packet,
                                                SimTime reconfig_time) {
  if (saved_per_packet <= SimTime::zero()) return std::nullopt;
  const double packets = static_cast<double>(reconfig_time.ps()) /
                         static_cast<double>(saved_per_packet.ps());
  return static_cast<std::uint64_t>(std::ceil(packets));
}

}  // namespace rsf::core
