#include "core/ring.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace rsf::core {

using rsf::sim::SimTime;

ControlRing::ControlRing(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant,
                         plp::PlpEngine* engine, fabric::Topology* topo,
                         fabric::Network* net, ControlRingConfig config)
    : sim_(sim), plant_(plant), engine_(engine), topo_(topo), net_(net), config_(config) {
  if (sim_ == nullptr || plant_ == nullptr || engine_ == nullptr || topo_ == nullptr ||
      net_ == nullptr) {
    throw std::invalid_argument("ControlRing: null dependency");
  }
}

SimTime ControlRing::circulation_time() const {
  return (config_.hop_latency + config_.node_processing) *
         static_cast<std::int64_t>(topo_->node_count());
}

void ControlRing::circulate(SimTime epoch_length, SnapshotCallback cb) {
  auto snap = std::make_shared<RackSnapshot>();
  snap->epoch_length = epoch_length;
  const SimTime per_node = config_.hop_latency + config_.node_processing;
  const std::uint32_t n = topo_->node_count();
  // The token visits node i at i-th multiple of the per-node time; the
  // snapshot completes after the full loop.
  // Weak events: telemetry collection serves the workload, it must not
  // keep an otherwise-finished simulation running.
  for (std::uint32_t node = 0; node < n; ++node) {
    sim_->schedule_weak_after(per_node * static_cast<std::int64_t>(node + 1),
                              [this, node, epoch_length, snap] {
                                collect_node(node, epoch_length, snap.get());
                              });
  }
  // rsf-lint: cold-event(one snapshot completion per epoch; the shared_ptr + callback captures cannot be trivially copyable)
  sim_->schedule_weak_after(per_node * static_cast<std::int64_t>(n),
                       [this, snap, cb = std::move(cb)] {
                         snap->taken_at = sim_->now();
                         snap->rack_power_watts =
                             plant_->total_power_watts() + net_->switch_power_watts();
                         cb(*snap);
                       });
}

void ControlRing::collect_node(phy::NodeId node, SimTime epoch_length, RackSnapshot* snap) {
  for (phy::LinkId id : topo_->links_at(node)) {
    const phy::LogicalLink& l = plant_->link(id);
    // Each link reports at its lower-numbered endpoint only.
    if (std::min(l.end_a(), l.end_b()) != node) continue;

    LinkObservation obs;
    obs.link = id;
    obs.end_a = l.end_a();
    obs.end_b = l.end_b();
    obs.lane_count = l.lane_count();
    obs.bypass_joints = l.bypass_joints();
    obs.ready = topo_->usable(id);
    obs.unloaded_latency_ns = l.one_way_latency(config_.ref_frame).ns();
    obs.effective_gbps = l.effective_rate().gbps_value();
    obs.worst_pre_fec_ber = config_.use_estimated_ber
                                ? plant_->estimated_pre_fec_ber(id)
                                : l.worst_pre_fec_ber();
    obs.post_fec_ber = l.post_fec_ber();
    obs.frame_loss = l.frame_loss_prob(config_.ref_frame);
    obs.power_watts = l.power_watts();
    obs.mean_queue_delay_ns = net_->link_mean_queue_delay(id).ns();

    const SimTime busy_now = net_->link_busy_time(id);
    const SimTime busy_prev =
        prev_busy_.contains(id) ? prev_busy_[id] : SimTime::zero();
    prev_busy_[id] = busy_now;
    if (epoch_length > SimTime::zero()) {
      obs.utilization = (busy_now - busy_prev).ratio(epoch_length);
      if (obs.utilization < 0) obs.utilization = 0;
      if (obs.utilization > 1) obs.utilization = 1;
    }

    const std::uint64_t pkts_now = net_->link_packets(id);
    const std::uint64_t pkts_prev = prev_packets_.contains(id) ? prev_packets_[id] : 0;
    prev_packets_[id] = pkts_now;
    obs.packets_in_epoch = pkts_now - pkts_prev;

    snap->links.push_back(obs);
  }
}

}  // namespace rsf::core
