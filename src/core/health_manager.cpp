#include "core/health_manager.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsf::core {

HealthManager::HealthManager(plp::PlpEngine* engine, phy::PhysicalPlant* plant,
                             HealthManagerConfig config)
    : engine_(engine), plant_(plant), config_(config) {
  if (engine_ == nullptr || plant_ == nullptr) {
    throw std::invalid_argument("HealthManager: null dependency");
  }
}

int HealthManager::apply(const RackSnapshot& snapshot) {
  int ops = 0;
  for (const LinkObservation& obs : snapshot.links) {
    if (ops >= config_.max_ops_per_epoch) break;
    if (obs.ready) continue;
    if (!plant_->has_link(obs.link)) continue;          // already gone
    if (engine_->link_busy(obs.link)) continue;         // being actuated
    if (in_flight_.contains(obs.link)) continue;        // already remediating
    if (plant_->failed_lanes_of_link(obs.link).empty()) continue;  // dark, not broken
    remediate(obs.link);
    ++ops;
  }
  return ops;
}

void HealthManager::remediate(phy::LinkId link) {
  const phy::LogicalLink& l = plant_->link(link);
  ++started_;
  in_flight_.insert(link);

  // Multi-segment (bypass) links: tear down only. The planner that
  // built the chain can rebuild it from surviving lanes if still
  // worthwhile; routing has already been steered off by the infinite
  // price of a not-ready link.
  if (l.segments().size() != 1) {
    engine_->submit(plp::DecommissionCommand{link}, [this, link](const plp::PlpResult& r) {
      in_flight_.erase(link);
      r.ok ? ++completed_ : ++failed_;
    });
    return;
  }

  // Adjacent link: rebuild on the same cable, swapping failed member
  // lanes for free healthy ones.
  const phy::LinkSegment seg = l.segments().front();
  const phy::CableId cable = seg.cable;
  const phy::FecScheme fec = l.fec().scheme;

  std::vector<int> healthy_members;
  for (int lane : seg.lanes) {
    if (!plant_->cable(cable).lane(lane).is_failed()) healthy_members.push_back(lane);
  }
  const int needed = static_cast<int>(seg.lanes.size() - healthy_members.size());
  std::vector<int> replacements;
  for (int lane : plant_->free_lanes(cable)) {
    if (static_cast<int>(replacements.size()) == needed) break;
    if (!plant_->cable(cable).lane(lane).is_failed()) replacements.push_back(lane);
  }

  std::vector<int> new_lanes = healthy_members;
  new_lanes.insert(new_lanes.end(), replacements.begin(), replacements.end());
  if (new_lanes.empty()) {
    // Nothing usable on this cable: decommission and let routing cope.
    engine_->submit(plp::DecommissionCommand{link}, [this, link](const plp::PlpResult& r) {
      in_flight_.erase(link);
      r.ok ? ++completed_ : ++failed_;
    });
    return;
  }
  // Note: if there were not enough spares, the link comes back
  // narrower (degraded but alive) — the same graceful degradation the
  // power manager uses.
  engine_->submit(
      plp::DecommissionCommand{link},
      [this, link, cable, new_lanes, fec](const plp::PlpResult& r) {
        if (!r.ok) {
          in_flight_.erase(link);
          ++failed_;
          return;
        }
        engine_->submit(plp::ProvisionCommand{cable, new_lanes, fec},
                        [this, link](const plp::PlpResult& r2) {
                          in_flight_.erase(link);
                          r2.ok ? ++completed_ : ++failed_;
                        });
      });
}

}  // namespace rsf::core
