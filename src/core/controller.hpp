// rsf::core — the Closed Ring Control (the paper's contribution).
//
// CrcController runs the closed loop: every epoch a telemetry token
// circulates the control ring (sense), the snapshot is priced
// (decide), and PLP commands actuate the decisions (act) — adaptive
// FEC, power-cap lane shedding, and topology moves like Figure 2's
// grid -> torus conversion, triggered either programmatically or
// autonomously when sustained utilisation shows the grid is the
// bottleneck. Prices are published to the Router so forwarding is
// always cost-aware. Everything the controller does is observable
// through time series for the reaction-time benches.
#pragma once

#include <memory>
#include <optional>

#include "core/fec_adapter.hpp"
#include "core/health_manager.hpp"
#include "core/observations.hpp"
#include "core/power_manager.hpp"
#include "core/price.hpp"
#include "core/reconfig.hpp"
#include "core/ring.hpp"
#include "core/scheduler.hpp"
#include "fabric/network.hpp"
#include "fabric/router.hpp"
#include "fabric/topology.hpp"
#include "phy/plant.hpp"
#include "plp/engine.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/series.hpp"

namespace rsf::core {

struct CrcConfig {
  /// Control epoch. Must exceed the ring circulation time; the
  /// controller stretches it if not.
  rsf::sim::SimTime epoch = rsf::sim::SimTime::microseconds(100);
  PriceWeights weights = PriceWeights::balanced();
  bool enable_price_routing = true;

  bool enable_adaptive_fec = false;
  FecAdapterConfig fec;

  bool enable_power_manager = false;
  PowerManagerConfig power;

  bool enable_health_manager = false;
  HealthManagerConfig health;

  /// Autonomous Figure-2 trigger: convert grid to torus after
  /// `torus_trigger_epochs` consecutive epochs of mean adjacent-link
  /// utilisation above `torus_util_threshold`.
  bool enable_auto_torus = false;
  double torus_util_threshold = 0.45;
  int torus_trigger_epochs = 2;

  ControlRingConfig ring;
  CircuitSchedulerConfig circuits;
};

class CrcController {
 public:
  /// Metrics land in `registry` under "crc.*" when one is supplied
  /// (the FabricRuntime passes its own); without one the controller
  /// owns a private registry, keeping direct construction in unit
  /// tests working.
  CrcController(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant, plp::PlpEngine* engine,
                fabric::Topology* topo, fabric::Router* router, fabric::Network* net,
                CrcConfig config = {}, telemetry::Registry* registry = nullptr);

  CrcController(const CrcController&) = delete;
  CrcController& operator=(const CrcController&) = delete;

  /// Begin epoch ticking (first circulation launches immediately).
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Programmatic Figure-2 move (benches drive this directly).
  void request_grid_to_torus(TopologyPlanner::DoneCallback done);

  [[nodiscard]] TopologyPlanner& planner() { return planner_; }
  [[nodiscard]] CircuitScheduler& circuits() { return circuits_; }
  [[nodiscard]] FecAdapter& fec_adapter() { return fec_; }
  [[nodiscard]] PowerManager& power_manager() { return power_; }
  [[nodiscard]] HealthManager& health_manager() { return health_; }
  [[nodiscard]] const PriceBook& prices() const { return prices_; }
  [[nodiscard]] const CrcConfig& config() const { return config_; }

  [[nodiscard]] std::uint64_t epochs_completed() const { return epochs_; }
  [[nodiscard]] const std::optional<RackSnapshot>& last_snapshot() const {
    return last_snapshot_;
  }

  // Reaction-time observability.
  [[nodiscard]] const telemetry::TimeSeries& power_series() const { return power_series_; }
  [[nodiscard]] const telemetry::TimeSeries& utilization_series() const {
    return util_series_;
  }
  [[nodiscard]] const telemetry::TimeSeries& mean_price_series() const {
    return price_series_;
  }
  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

 private:
  void tick();
  void on_snapshot(const RackSnapshot& snapshot);
  void maybe_trigger_torus(const RackSnapshot& snapshot);

  rsf::sim::Simulator* sim_;
  fabric::Router* router_;
  CrcConfig config_;
  ControlRing ring_;
  TopologyPlanner planner_;
  CircuitScheduler circuits_;
  FecAdapter fec_;
  PowerManager power_;
  HealthManager health_;
  PriceBook prices_;

  bool running_ = false;
  rsf::sim::EventId next_tick_ = rsf::sim::kInvalidEventId;
  rsf::sim::SimTime last_circulation_ = rsf::sim::SimTime::zero();
  std::uint64_t epochs_ = 0;
  int hot_epochs_ = 0;
  bool torus_triggered_ = false;
  std::optional<RackSnapshot> last_snapshot_;

  // Instruments live in the registry (owned locally only when the
  // caller supplied none).
  std::unique_ptr<telemetry::Registry> own_registry_;
  telemetry::Registry* registry_;
  telemetry::TimeSeries& power_series_;
  telemetry::TimeSeries& util_series_;
  telemetry::TimeSeries& price_series_;
  telemetry::CounterSet& counters_;
};

}  // namespace rsf::core
