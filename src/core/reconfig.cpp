#include "core/reconfig.hpp"

#include <memory>
#include <stdexcept>

namespace rsf::core {

void split_many(plp::PlpEngine* engine, const std::vector<phy::LinkId>& links, int k,
                std::function<void(std::vector<std::optional<SplitOutcome>>)> done) {
  if (engine == nullptr) throw std::invalid_argument("split_many: null engine");
  struct State {
    std::vector<std::optional<SplitOutcome>> outcomes;
    std::size_t remaining = 0;
    std::function<void(std::vector<std::optional<SplitOutcome>>)> done;
  };
  auto state = std::make_shared<State>();
  state->outcomes.resize(links.size());
  state->remaining = links.size();
  state->done = std::move(done);
  if (links.empty()) {
    state->done({});
    return;
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    engine->submit(plp::SplitCommand{links[i], k}, [state, i](const plp::PlpResult& r) {
      if (r.ok && r.created.size() == 2) {
        state->outcomes[i] = SplitOutcome{r.created[0], r.created[1]};
      }
      if (--state->remaining == 0) state->done(std::move(state->outcomes));
    });
  }
}

void chain_bypass(plp::PlpEngine* engine, std::vector<phy::LinkId> path,
                  std::function<void(std::optional<phy::LinkId>)> done) {
  if (engine == nullptr) throw std::invalid_argument("chain_bypass: null engine");
  if (path.empty()) {
    done(std::nullopt);
    return;
  }
  if (path.size() == 1) {
    done(path.front());
    return;
  }
  // One tree-reduction round: join adjacent pairs concurrently, then
  // recurse on the survivors. Odd tail carries over untouched.
  struct Round {
    std::vector<std::optional<phy::LinkId>> next;
    std::size_t remaining = 0;
    bool failed = false;
  };
  auto round = std::make_shared<Round>();
  const std::size_t pairs = path.size() / 2;
  round->next.resize(pairs + (path.size() % 2));
  round->remaining = pairs;
  if (path.size() % 2 == 1) round->next.back() = path.back();

  auto finish_round = [engine, round, done](std::size_t) mutable {
    if (--round->remaining > 0) return;
    std::vector<phy::LinkId> survivors;
    survivors.reserve(round->next.size());
    for (const auto& l : round->next) {
      if (!l) {
        done(std::nullopt);
        return;
      }
      survivors.push_back(*l);
    }
    chain_bypass(engine, std::move(survivors), std::move(done));
  };

  for (std::size_t p = 0; p < pairs; ++p) {
    engine->submit(plp::BypassJoinCommand{path[2 * p], path[2 * p + 1]},
                   [round, p, finish_round](const plp::PlpResult& r) mutable {
                     if (r.ok && r.created.size() == 1) round->next[p] = r.created[0];
                     finish_round(p);
                   });
  }
}

std::vector<phy::NodeId> interior_joints(const phy::PhysicalPlant& plant, phy::LinkId link) {
  const phy::LogicalLink& l = plant.link(link);
  std::vector<phy::NodeId> joints;
  phy::NodeId cursor = l.end_a();
  for (std::size_t i = 0; i + 1 < l.segments().size(); ++i) {
    cursor = plant.cable(l.segments()[i].cable).other_end(cursor);
    joints.push_back(cursor);
  }
  return joints;
}

void unchain_bypass(plp::PlpEngine* engine, phy::PhysicalPlant* plant, phy::LinkId link,
                    std::function<void(std::vector<phy::LinkId>)> done) {
  if (engine == nullptr || plant == nullptr) {
    throw std::invalid_argument("unchain_bypass: null dependency");
  }
  const auto joints = interior_joints(*plant, link);
  if (joints.empty()) {
    done({link});
    return;
  }
  // Sever at the first joint, then recurse into the right-hand piece.
  engine->submit(
      plp::BypassSeverCommand{link, joints.front()},
      [engine, plant, done = std::move(done)](const plp::PlpResult& r) mutable {
        if (!r.ok || r.created.size() != 2) {
          done({});
          return;
        }
        const phy::LinkId head = r.created[0];
        const phy::LinkId rest = r.created[1];
        unchain_bypass(engine, plant, rest,
                       [head, done = std::move(done)](std::vector<phy::LinkId> tail) mutable {
                         if (tail.empty()) {
                           done({});
                           return;
                         }
                         tail.insert(tail.begin(), head);
                         done(std::move(tail));
                       });
      });
}

TopologyPlanner::TopologyPlanner(rsf::sim::Simulator* sim, plp::PlpEngine* engine,
                                 phy::PhysicalPlant* plant, fabric::Topology* topo)
    : sim_(sim), engine_(engine), plant_(plant), topo_(topo) {
  if (sim_ == nullptr || engine_ == nullptr || plant_ == nullptr || topo_ == nullptr) {
    throw std::invalid_argument("TopologyPlanner: null dependency");
  }
}

void TopologyPlanner::close_path(std::vector<phy::NodeId> nodes,
                                 std::function<void(std::optional<phy::LinkId>)> done) {
  if (nodes.size() < 3) {
    done(std::nullopt);
    return;
  }
  // Find the current adjacent link between each consecutive pair.
  std::vector<phy::LinkId> links;
  links.reserve(nodes.size() - 1);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    std::optional<phy::LinkId> found;
    for (phy::LinkId id : topo_->links_at(nodes[i])) {
      const phy::LogicalLink& l = plant_->link(id);
      if (l.bypass_joints() == 0 && l.connects(nodes[i + 1]) && l.lane_count() >= 2) {
        found = id;
        break;
      }
    }
    if (!found) {
      done(std::nullopt);
      return;
    }
    links.push_back(*found);
  }
  // Split every link; keep the first half in place, chain the spares.
  split_many(engine_, links, /*k=*/(plant_->link(links.front()).lane_count() + 1) / 2,
             [this, done = std::move(done)](std::vector<std::optional<SplitOutcome>> outs) mutable {
               std::vector<phy::LinkId> spares;
               spares.reserve(outs.size());
               for (const auto& o : outs) {
                 if (!o) {
                   done(std::nullopt);
                   return;
                 }
                 spares.push_back(o->spare);
               }
               chain_bypass(engine_, std::move(spares), std::move(done));
             });
}

void TopologyPlanner::close_row(int y, std::function<void(std::optional<phy::LinkId>)> done) {
  const int w = topo_->grid_w();
  if (w < 3 || y < 0 || y >= topo_->grid_h()) {
    done(std::nullopt);
    return;
  }
  std::vector<phy::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(w));
  for (int x = 0; x < w; ++x) nodes.push_back(static_cast<phy::NodeId>(y * w + x));
  close_path(std::move(nodes), std::move(done));
}

void TopologyPlanner::close_column(int x,
                                   std::function<void(std::optional<phy::LinkId>)> done) {
  const int w = topo_->grid_w();
  const int h = topo_->grid_h();
  if (h < 3 || x < 0 || x >= w) {
    done(std::nullopt);
    return;
  }
  std::vector<phy::NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(h));
  for (int y = 0; y < h; ++y) nodes.push_back(static_cast<phy::NodeId>(y * w + x));
  close_path(std::move(nodes), std::move(done));
}

void TopologyPlanner::grid_to_torus(DoneCallback done) {
  struct State {
    Report report;
    int remaining = 0;
    DoneCallback done;
  };
  auto state = std::make_shared<State>();
  state->done = std::move(done);
  const int w = topo_->grid_w();
  const int h = topo_->grid_h();
  state->remaining = (w >= 3 ? h : 0) + (h >= 3 ? w : 0);
  if (state->remaining == 0) {
    state->done(state->report);
    return;
  }
  auto on_piece = [state](bool is_row, std::optional<phy::LinkId> wrap) {
    if (wrap) {
      state->report.wrap_links.push_back(*wrap);
      if (is_row) {
        ++state->report.rows_closed;
      } else {
        ++state->report.cols_closed;
      }
    } else {
      ++state->report.failures;
    }
    if (--state->remaining == 0) state->done(state->report);
  };
  if (w >= 3) {
    for (int y = 0; y < h; ++y) {
      close_row(y, [on_piece](std::optional<phy::LinkId> wrap) { on_piece(true, wrap); });
    }
  }
  if (h >= 3) {
    for (int x = 0; x < w; ++x) {
      close_column(x,
                   [on_piece](std::optional<phy::LinkId> wrap) { on_piece(false, wrap); });
    }
  }
}

}  // namespace rsf::core
