// rsf::core — the CRC flow scheduler.
//
// "…a control mechanism that also schedules flows according to the
// availability of PLPs" (paper §3). For every submitted flow the
// scheduler compares finishing over the packet fabric against paying
// for a dedicated physical-layer circuit: split a spare lane off each
// link along the path and chain them with bypasses into one direct
// link, so the flow crosses zero switching elements. The break-even
// model (breakeven.hpp) gates the decision; circuits are torn down
// and the lanes re-bundled when the flow lands.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/breakeven.hpp"
#include "fabric/network.hpp"
#include "fabric/router.hpp"
#include "fabric/topology.hpp"
#include "phy/plant.hpp"
#include "plp/engine.hpp"
#include "sim/simulator.hpp"

namespace rsf::core {

struct CircuitSchedulerConfig {
  /// Flows below this never consider a circuit (fast path).
  phy::DataSize min_circuit_size = phy::DataSize::kilobytes(256);
  /// Concurrent circuits the scheduler will hold.
  int max_concurrent_circuits = 4;
};

/// The scheduler's reasoning about one flow, exposed for benches and
/// tests (EXT2 prints these columns).
struct ScheduleDecision {
  bool use_circuit = false;
  rsf::sim::SimTime est_packet_completion = rsf::sim::SimTime::zero();
  rsf::sim::SimTime est_circuit_completion = rsf::sim::SimTime::zero();
  rsf::sim::SimTime est_setup = rsf::sim::SimTime::zero();
  std::optional<phy::DataSize> break_even = std::nullopt;
  int path_hops = 0;
};

class CircuitScheduler {
 public:
  using Callback = std::function<void(const fabric::FlowResult&, bool used_circuit)>;

  CircuitScheduler(rsf::sim::Simulator* sim, plp::PlpEngine* engine,
                   phy::PhysicalPlant* plant, fabric::Topology* topo,
                   fabric::Router* router, fabric::Network* net,
                   CircuitSchedulerConfig config = {});

  /// Evaluate the circuit-vs-packet decision without acting.
  [[nodiscard]] ScheduleDecision decide(const fabric::FlowSpec& spec);

  /// Schedule the flow: builds a circuit first when decide() says so
  /// (falling back to the packet fabric if construction fails).
  void submit(const fabric::FlowSpec& spec, Callback cb = nullptr);

  [[nodiscard]] std::uint64_t circuits_built() const { return circuits_built_; }
  [[nodiscard]] std::uint64_t circuit_flows() const { return circuit_flows_; }
  [[nodiscard]] std::uint64_t packet_flows() const { return packet_flows_; }
  [[nodiscard]] int active_circuits() const { return active_circuits_; }

 private:
  struct CircuitPlan {
    std::vector<phy::LinkId> path_links;
    phy::DataRate circuit_rate = phy::DataRate::zero();
    phy::DataRate packet_rate = phy::DataRate::zero();
    rsf::sim::SimTime packet_latency_overhead = rsf::sim::SimTime::zero();
    rsf::sim::SimTime circuit_prop = rsf::sim::SimTime::zero();
    rsf::sim::SimTime setup = rsf::sim::SimTime::zero();
  };

  [[nodiscard]] std::optional<CircuitPlan> plan_for(const fabric::FlowSpec& spec);
  void run_packet(const fabric::FlowSpec& spec, Callback cb);
  void build_and_run(const fabric::FlowSpec& spec, CircuitPlan plan, Callback cb);
  void teardown(phy::LinkId circuit, std::vector<phy::LinkId> kept_links);

  rsf::sim::Simulator* sim_;
  plp::PlpEngine* engine_;
  phy::PhysicalPlant* plant_;
  fabric::Topology* topo_;
  fabric::Router* router_;
  fabric::Network* net_;
  CircuitSchedulerConfig config_;
  std::uint64_t circuits_built_ = 0;
  std::uint64_t circuit_flows_ = 0;
  std::uint64_t packet_flows_ = 0;
  int active_circuits_ = 0;
};

}  // namespace rsf::core
