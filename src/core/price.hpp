// rsf::core — per-link price tags (paper §3.2).
//
// The CRC tags every link with a scalar price combining latency,
// congestion, link health and power. Routing minimises total price, so
// tuning the weights turns the same fabric into a latency-minimising,
// congestion-spreading or power-frugal network. Prices are in
// nanosecond-equivalent units so the latency term needs no scaling.
#pragma once

#include <unordered_map>

#include "core/observations.hpp"
#include "phy/types.hpp"

namespace rsf::core {

struct PriceWeights {
  /// Weight of the unloaded latency term (ns -> price units).
  double alpha_latency = 1.0;
  /// Weight of the congestion term: measured queue delay plus an
  /// M/M/1-style utilisation penalty (ns at the knee).
  double beta_congestion = 1.0;
  /// Weight of link health: frame-loss probability, scaled to ns by
  /// `loss_penalty_ns` (a lost frame costs a retransmit round trip).
  double gamma_health = 1.0;
  /// Weight of power: watts scaled to ns by `watt_penalty_ns`.
  double delta_power = 0.0;

  double loss_penalty_ns = 50'000.0;  // ~ retry delay + requeue
  double watt_penalty_ns = 100.0;

  /// Latency-only pricing (ablation baseline).
  [[nodiscard]] static PriceWeights latency_only() {
    return PriceWeights{1.0, 0.0, 0.0, 0.0, 50'000.0, 100.0};
  }
  /// Balanced default: latency + congestion + health.
  [[nodiscard]] static PriceWeights balanced() { return PriceWeights{}; }
  /// Power-aware: like balanced but power-expensive links repel flows.
  [[nodiscard]] static PriceWeights power_aware() {
    return PriceWeights{1.0, 1.0, 1.0, 1.0, 50'000.0, 100.0};
  }
};

/// Price one observation under the given weights.
[[nodiscard]] double price_link(const LinkObservation& obs, const PriceWeights& w);

/// A published set of prices, consumable as the Router's PriceFn.
class PriceBook {
 public:
  void update(const RackSnapshot& snapshot, const PriceWeights& weights);

  /// Price of `link`. Three-valued: a finite price for observed ready
  /// links; +inf for links observed not-ready (the router excludes
  /// them); NaN for links the book has no opinion on yet (the router
  /// falls back to its default cost) — this keeps the fabric routable
  /// between CRC start and the first snapshot, and covers links
  /// created mid-epoch.
  [[nodiscard]] double price(phy::LinkId link) const;

  [[nodiscard]] std::size_t size() const { return prices_.size(); }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  // rsf-lint: order-insensitive(rebuilt wholesale per epoch, read by per-link point lookup only)
  std::unordered_map<phy::LinkId, double> prices_;
  std::uint64_t generation_ = 0;
};

}  // namespace rsf::core
