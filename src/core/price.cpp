#include "core/price.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rsf::core {

double price_link(const LinkObservation& obs, const PriceWeights& w) {
  if (!obs.ready) return std::numeric_limits<double>::infinity();

  const double latency_term = w.alpha_latency * obs.unloaded_latency_ns;

  // Congestion: what queueing we have measured, plus a convex
  // utilisation penalty so routing spreads load *before* queues build.
  // The penalty is the M/M/1 waiting-time shape rho/(1-rho), scaled by
  // the link's own serialization scale (its unloaded latency).
  const double rho = std::clamp(obs.utilization, 0.0, 0.99);
  const double util_penalty = obs.unloaded_latency_ns * rho / (1.0 - rho);
  const double congestion_term = w.beta_congestion * (obs.mean_queue_delay_ns + util_penalty);

  const double health_term = w.gamma_health * obs.frame_loss * w.loss_penalty_ns;

  const double power_term = w.delta_power * obs.power_watts * w.watt_penalty_ns;

  return latency_term + congestion_term + health_term + power_term;
}

void PriceBook::update(const RackSnapshot& snapshot, const PriceWeights& weights) {
  prices_.clear();
  for (const LinkObservation& obs : snapshot.links) {
    prices_[obs.link] = price_link(obs, weights);
  }
  ++generation_;
}

double PriceBook::price(phy::LinkId link) const {
  auto it = prices_.find(link);
  return it == prices_.end() ? std::numeric_limits<double>::quiet_NaN() : it->second;
}

}  // namespace rsf::core
