// rsf::core — the closed control ring.
//
// The CRC's feedback channel (and its name): a telemetry token
// circulates node to node around the rack on a dedicated control ring.
// Each node appends observations for the links it owns (the links
// whose lower-numbered endpoint it is, so each link is reported once);
// when the token returns to the controller the rack snapshot is
// complete. Collection therefore costs simulated time proportional to
// the rack size — the controller's epoch must absorb the circulation
// latency, which the benches report as part of reaction time.
#pragma once

#include <functional>
#include <unordered_map>

#include "core/observations.hpp"
#include "fabric/network.hpp"
#include "fabric/topology.hpp"
#include "phy/plant.hpp"
#include "plp/engine.hpp"
#include "sim/simulator.hpp"

namespace rsf::core {

struct ControlRingConfig {
  /// Token flight time between adjacent nodes on the control ring.
  rsf::sim::SimTime hop_latency = rsf::sim::SimTime::nanoseconds(200);
  /// Per-node processing (stat readout, append).
  rsf::sim::SimTime node_processing = rsf::sim::SimTime::nanoseconds(100);
  /// Reference frame used for unloaded latency / loss observations.
  phy::DataSize ref_frame = phy::DataSize::bytes(1024);
  /// Report the BER *estimated from FEC decoder telemetry* instead of
  /// the oracle lane value — what a real deployment has to live with.
  /// Links without RS FEC (no telemetry) then report BER 0 until the
  /// adaptive-FEC ladder gives them one.
  bool use_estimated_ber = false;
};

class ControlRing {
 public:
  using SnapshotCallback = std::function<void(const RackSnapshot&)>;

  ControlRing(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant, plp::PlpEngine* engine,
              fabric::Topology* topo, fabric::Network* net, ControlRingConfig config = {});

  /// Launch one token circulation. `epoch_length` is the window the
  /// utilisation numbers are normalised over (time since the previous
  /// circulation). The callback fires when the token completes the
  /// ring, carrying the snapshot.
  void circulate(rsf::sim::SimTime epoch_length, SnapshotCallback cb);

  /// Simulated time one full circulation takes right now.
  [[nodiscard]] rsf::sim::SimTime circulation_time() const;

  [[nodiscard]] const ControlRingConfig& config() const { return config_; }

 private:
  void collect_node(phy::NodeId node, rsf::sim::SimTime epoch_length, RackSnapshot* snap);

  rsf::sim::Simulator* sim_;
  phy::PhysicalPlant* plant_;
  plp::PlpEngine* engine_;
  fabric::Topology* topo_;
  fabric::Network* net_;
  ControlRingConfig config_;
  // Cumulative counters from the previous circulation, for epoch diffs.
  std::unordered_map<phy::LinkId, rsf::sim::SimTime> prev_busy_;
  std::unordered_map<phy::LinkId, std::uint64_t> prev_packets_;
};

}  // namespace rsf::core
