// rsf::core — a trivially copyable small-buffer callable.
//
// SmallFunction<R(Args...), Capacity> stores a callable inline, with a
// monomorphized trampoline pointer for invocation — no heap, no
// virtual dispatch, and (unlike std::function) the wrapper itself is
// trivially copyable. That last property is what the event kernel
// cares about: a scheduled continuation that captures a SmallFunction
// stays eligible for the Simulator's inline event arm
// (sim::is_inline_event_v), whereas one capturing a std::function is
// forced onto the cold allocation path.
//
// The trade-offs against std::function are deliberate and enforced at
// compile time: the target must itself be trivially copyable and
// destructible and fit in Capacity bytes. Per-packet callbacks
// (Interconnect delivery/loss continuations) capture a few words of
// POD and meet the bar naturally; anything that doesn't belongs on a
// cold path and should keep using std::function.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rsf::core {

template <typename Signature, std::size_t Capacity = 32>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFunction>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "SmallFunction: callable signature mismatch");
    static_assert(std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>,
                  "SmallFunction holds trivially copyable callables; use std::function "
                  "for owning captures");
    static_assert(sizeof(Fn) <= Capacity,
                  "SmallFunction: capture exceeds the inline capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
    invoke_ = [](void* buffer, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(buffer)))(
          std::forward<Args>(args)...);
    };
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    return invoke_(const_cast<std::byte*>(buffer_), std::forward<Args>(args)...);
  }

 private:
  R (*invoke_)(void*, Args...) = nullptr;
  alignas(std::max_align_t) std::byte buffer_[Capacity] = {};
};

}  // namespace rsf::core
