// rsf::core — reconfiguration orchestration.
//
// PLP commands are asynchronous and create links whose ids are only
// known at completion, so multi-step plans (split a whole row, then
// chain the spare lanes into a wraparound link) need orchestration.
// This module provides:
//
//  * split_many  — split a set of links concurrently;
//  * chain_bypass — fold a path of links into one long link by
//    pairwise bypass joins, tree-reduced so the actuation time grows
//    with log2(path length), not linearly;
//  * TopologyPlanner — the Figure 2 move: close grid rows/columns into
//    rings by splitting every link and chaining the spare lanes into a
//    wraparound, converting an W x H grid at L lanes/link into a torus
//    at L/2 lanes/link with zero added cabling.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "fabric/topology.hpp"
#include "phy/plant.hpp"
#include "plp/engine.hpp"
#include "sim/simulator.hpp"

namespace rsf::core {

/// Result of splitting one link: the half that keeps serving the
/// original role and the freed spare.
struct SplitOutcome {
  phy::LinkId kept = phy::kInvalidLink;
  phy::LinkId spare = phy::kInvalidLink;
};

/// Split every link in `links` into (k, rest) concurrently. The
/// callback fires when all splits finish, with outcomes in input
/// order; nullopt entries mark failed splits.
void split_many(plp::PlpEngine* engine, const std::vector<phy::LinkId>& links, int k,
                std::function<void(std::vector<std::optional<SplitOutcome>>)> done);

/// Join a path of links (ordered, consecutive links sharing a node)
/// into a single link via tree-reduced bypass joins. Callback fires
/// with the final link id, or nullopt on any failure.
void chain_bypass(plp::PlpEngine* engine,
                  std::vector<phy::LinkId> path,
                  std::function<void(std::optional<phy::LinkId>)> done);

/// Tear a multi-segment link apart at every interior joint, yielding
/// the adjacent pieces (in path order).
void unchain_bypass(plp::PlpEngine* engine, phy::PhysicalPlant* plant, phy::LinkId link,
                    std::function<void(std::vector<phy::LinkId>)> done);

/// Interior nodes of a multi-segment link, in path order.
[[nodiscard]] std::vector<phy::NodeId> interior_joints(const phy::PhysicalPlant& plant,
                                                       phy::LinkId link);

/// Executes Figure 2's grid -> torus conversion (and its inverse
/// building blocks) against live links.
class TopologyPlanner {
 public:
  struct Report {
    int rows_closed = 0;
    int cols_closed = 0;
    int failures = 0;
    std::vector<phy::LinkId> wrap_links;
  };
  using DoneCallback = std::function<void(const Report&)>;

  TopologyPlanner(rsf::sim::Simulator* sim, plp::PlpEngine* engine,
                  phy::PhysicalPlant* plant, fabric::Topology* topo);

  /// Close row `y` into a ring: split every horizontal link of the row
  /// into halves, keep one half in place, chain the spares into a
  /// west<->east wraparound. Requires every link to have >= 2 lanes.
  void close_row(int y, std::function<void(std::optional<phy::LinkId>)> done);

  /// Same for column `x` (vertical links, north<->south wraparound).
  void close_column(int x, std::function<void(std::optional<phy::LinkId>)> done);

  /// Close every row and every column: the full grid -> torus move.
  void grid_to_torus(DoneCallback done);

 private:
  void close_path(std::vector<phy::NodeId> nodes,
                  std::function<void(std::optional<phy::LinkId>)> done);

  rsf::sim::Simulator* sim_;
  plp::PlpEngine* engine_;
  phy::PhysicalPlant* plant_;
  fabric::Topology* topo_;
};

}  // namespace rsf::core
