// rsf::core — link observations and rack snapshots.
//
// The unit of feedback in the Closed Ring Control: each control epoch,
// every node contributes what it sees about its links; the assembled
// RackSnapshot is what pricing and planning run on.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/types.hpp"
#include "sim/time.hpp"

namespace rsf::core {

struct LinkObservation {
  phy::LinkId link = phy::kInvalidLink;
  phy::NodeId end_a = phy::kInvalidNode;
  phy::NodeId end_b = phy::kInvalidNode;
  int lane_count = 0;
  int bypass_joints = 0;
  bool ready = false;

  /// Fraction of the epoch the link spent transmitting, [0,1].
  double utilization = 0.0;
  /// Mean output-queueing delay, ns, over the whole run so far.
  double mean_queue_delay_ns = 0.0;
  /// Unloaded one-way latency of a reference frame, ns.
  double unloaded_latency_ns = 0.0;
  double effective_gbps = 0.0;
  double worst_pre_fec_ber = 0.0;
  double post_fec_ber = 0.0;
  /// Loss probability of the reference frame at current BER and FEC.
  double frame_loss = 0.0;
  double power_watts = 0.0;
  std::uint64_t packets_in_epoch = 0;
};

struct RackSnapshot {
  rsf::sim::SimTime taken_at = rsf::sim::SimTime::zero();
  rsf::sim::SimTime epoch_length = rsf::sim::SimTime::zero();
  std::vector<LinkObservation> links;
  /// Total rack power when the snapshot completed (plant + switching).
  double rack_power_watts = 0.0;
};

}  // namespace rsf::core
