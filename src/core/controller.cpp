#include "core/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace rsf::core {

using rsf::sim::SimTime;

CrcController::CrcController(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant,
                             plp::PlpEngine* engine, fabric::Topology* topo,
                             fabric::Router* router, fabric::Network* net, CrcConfig config,
                             telemetry::Registry* registry)
    : sim_(sim),
      router_(router),
      config_(config),
      ring_(sim, plant, engine, topo, net, config.ring),
      planner_(sim, engine, plant, topo),
      circuits_(sim, engine, plant, topo, router, net, config.circuits),
      fec_(engine, plant, config.fec),
      power_(engine, plant, config.power),
      health_(engine, plant, config.health),
      own_registry_(registry ? nullptr : std::make_unique<telemetry::Registry>()),
      registry_(registry ? registry : own_registry_.get()),
      power_series_(registry_->series("crc.rack_power_w")),
      util_series_(registry_->series("crc.mean_utilization")),
      price_series_(registry_->series("crc.mean_price")),
      counters_(registry_->counters("crc")) {
  if (router_ == nullptr) throw std::invalid_argument("CrcController: null router");
  // The epoch cannot be shorter than one token circulation.
  if (config_.epoch < ring_.circulation_time()) {
    config_.epoch = ring_.circulation_time();
  }
}

void CrcController::start() {
  if (running_) return;
  running_ = true;
  last_circulation_ = sim_->now();
  if (config_.enable_price_routing) {
    router_->set_price_fn([this](phy::LinkId id) { return prices_.price(id); });
  }
  tick();
}

void CrcController::stop() {
  running_ = false;
  if (next_tick_ != rsf::sim::kInvalidEventId) {
    sim_->cancel(next_tick_);
    next_tick_ = rsf::sim::kInvalidEventId;
  }
  router_->set_price_fn(nullptr);
}

void CrcController::tick() {
  if (!running_) return;
  const SimTime epoch_len = sim_->now() - last_circulation_;
  last_circulation_ = sim_->now();
  ring_.circulate(epoch_len == SimTime::zero() ? config_.epoch : epoch_len,
                  [this](const RackSnapshot& snap) {
                    if (running_) on_snapshot(snap);
                  });
  // Weak: the control loop must not keep the simulation alive once the
  // foreground workload has drained.
  next_tick_ = sim_->schedule_weak_after(config_.epoch, [this] { tick(); });
}

void CrcController::on_snapshot(const RackSnapshot& snapshot) {
  ++epochs_;
  counters_.add("crc.epochs");
  last_snapshot_ = snapshot;

  // 1. Price every link and publish to the router.
  prices_.update(snapshot, config_.weights);
  if (config_.enable_price_routing) router_->bump_prices();

  // 2. Adaptive FEC.
  if (config_.enable_adaptive_fec) {
    const int changes = fec_.apply(snapshot);
    if (changes > 0) counters_.add("crc.fec_changes", static_cast<std::uint64_t>(changes));
  }

  // 3. Power cap.
  if (config_.enable_power_manager) {
    const int ops = power_.apply(snapshot);
    if (ops > 0) counters_.add("crc.power_ops", static_cast<std::uint64_t>(ops));
  }

  // 4. Link-health remediation (replace failed lanes from the dark
  // pool).
  if (config_.enable_health_manager) {
    const int ops = health_.apply(snapshot);
    if (ops > 0) counters_.add("crc.health_ops", static_cast<std::uint64_t>(ops));
  }

  // 5. Autonomous topology move.
  if (config_.enable_auto_torus && !torus_triggered_) maybe_trigger_torus(snapshot);

  // 6. Observability.
  const SimTime now = sim_->now();
  power_series_.record(now, snapshot.rack_power_watts);
  double util_sum = 0;
  double price_sum = 0;
  int ready = 0;
  for (const LinkObservation& obs : snapshot.links) {
    if (!obs.ready) continue;
    util_sum += obs.utilization;
    price_sum += price_link(obs, config_.weights);
    ++ready;
  }
  if (ready > 0) {
    util_series_.record(now, util_sum / ready);
    price_series_.record(now, price_sum / ready);
  }
}

void CrcController::maybe_trigger_torus(const RackSnapshot& snapshot) {
  double util_sum = 0;
  int counted = 0;
  for (const LinkObservation& obs : snapshot.links) {
    if (!obs.ready || obs.bypass_joints > 0) continue;
    util_sum += obs.utilization;
    ++counted;
  }
  if (counted == 0) return;
  const double mean = util_sum / counted;
  if (mean >= config_.torus_util_threshold) {
    ++hot_epochs_;
  } else {
    hot_epochs_ = 0;
  }
  if (hot_epochs_ >= config_.torus_trigger_epochs) {
    torus_triggered_ = true;
    counters_.add("crc.auto_torus_triggered");
    planner_.grid_to_torus([this](const TopologyPlanner::Report& report) {
      counters_.add("crc.torus_wraps_created",
                    static_cast<std::uint64_t>(report.wrap_links.size()));
      counters_.add("crc.torus_failures", static_cast<std::uint64_t>(report.failures));
    });
  }
}

void CrcController::request_grid_to_torus(TopologyPlanner::DoneCallback done) {
  torus_triggered_ = true;
  planner_.grid_to_torus(std::move(done));
}

}  // namespace rsf::core
