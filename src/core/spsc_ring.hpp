// rsf::core — a bounded single-producer / single-consumer ring.
//
// SpscRing<T> is the cross-thread mailbox of the conservative-PDES
// fleet engine (runtime::ParallelFleetEngine): a shard worker pushes
// deferred cross-shard continuations at one end, the merge thread pops
// them at the other. The classic two-index scheme needs no locks: the
// producer owns head_, the consumer owns tail_, and each publishes its
// index with a release store the other side reads with an acquire
// load, so the payload write happens-before the matching pop.
//
// The producer *role* may be handed between threads (a shard's worker
// during a drain window, the merge thread while it injects), as long
// as the handoff itself synchronizes (the engine's window-done
// release/acquire edge provides that) — what the ring forbids is two
// concurrent pushers, not two pushers over its lifetime.
//
// Capacity is fixed at construction (rounded up to a power of two) and
// push() on a full ring returns false: the engine sizes mailboxes to
// its window depth and treats overflow as a deterministic logic error,
// never a silent drop or an unbounded allocation on the hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace rsf::core {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity = 1024) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when full (the consumer is behind by a whole
  /// capacity); the element is untouched in that case.
  [[nodiscard]] bool push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  [[nodiscard]] bool pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side size estimate (exact when the producer is quiet).
  [[nodiscard]] std::size_t size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Padded apart so the producer's and consumer's indices never share
  // a cache line (false sharing would serialize the two sides).
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace rsf::core
