#include "core/fec_adapter.hpp"

#include <array>
#include <stdexcept>

namespace rsf::core {

namespace {
/// Candidate ladder, lightest first.
constexpr std::array<phy::FecScheme, 4> kLadder = {
    phy::FecScheme::kNone, phy::FecScheme::kFireCode, phy::FecScheme::kRsKr4,
    phy::FecScheme::kRsKp4};

int ladder_index(phy::FecScheme s) {
  for (std::size_t i = 0; i < kLadder.size(); ++i) {
    if (kLadder[i] == s) return static_cast<int>(i);
  }
  return 0;
}
}  // namespace

FecAdapter::FecAdapter(plp::PlpEngine* engine, phy::PhysicalPlant* plant,
                       FecAdapterConfig config)
    : engine_(engine), plant_(plant), config_(config) {
  if (engine_ == nullptr || plant_ == nullptr) {
    throw std::invalid_argument("FecAdapter: null dependency");
  }
}

phy::FecScheme FecAdapter::choose(double ber, phy::FecScheme current) const {
  const int cur_idx = ladder_index(current);
  const int floor_idx = ladder_index(config_.floor_scheme);

  // Lightest mode meeting the plain target, not below the floor.
  int want = -1;
  for (std::size_t i = static_cast<std::size_t>(floor_idx); i < kLadder.size(); ++i) {
    const auto spec = phy::FecSpec::of(kLadder[i]);
    if (spec.frame_loss_prob(ber, config_.ref_frame) <= config_.target_frame_loss) {
      want = static_cast<int>(i);
      break;
    }
  }
  if (want < 0) return kLadder.back();  // nothing meets target: max protection
  if (want > cur_idx) return kLadder[static_cast<std::size_t>(want)];  // escalate now
  if (want < cur_idx) {
    // De-escalate only with margin to spare: the lightest mode below
    // the current one that beats the strict target. (Checking rungs
    // between `want` and `current` matters — the very lightest mode
    // may meet the plain target but sit inside the hysteresis band.)
    const double strict = config_.target_frame_loss * config_.relax_margin;
    for (int i = want; i < cur_idx; ++i) {
      const auto spec = phy::FecSpec::of(kLadder[static_cast<std::size_t>(i)]);
      if (spec.frame_loss_prob(ber, config_.ref_frame) <= strict) {
        return kLadder[static_cast<std::size_t>(i)];
      }
    }
  }
  return current;
}

int FecAdapter::apply(const RackSnapshot& snapshot) {
  int submitted = 0;
  for (const LinkObservation& obs : snapshot.links) {
    if (!obs.ready || !plant_->has_link(obs.link)) continue;
    const phy::FecScheme current = plant_->link(obs.link).fec().scheme;
    const phy::FecScheme want = choose(obs.worst_pre_fec_ber, current);
    if (want != current && !engine_->link_busy(obs.link)) {
      engine_->submit(plp::SetFecCommand{obs.link, want});
      ++changes_;
      ++submitted;
    }
  }
  return submitted;
}

}  // namespace rsf::core
