// rsf::core — link-health remediation (the "link health" term of the
// paper's §3.2 made actionable).
//
// Price tags already steer traffic away from sick links; the health
// manager goes further and *repairs the fabric*: when a link goes dark
// (hard lane failure) it decommissions the link and re-provisions it
// on the same cable, substituting dark spare lanes for the failed
// ones. The rack heals at the physical layer in roughly one
// provision time (~60 µs) instead of waiting for a technician.
#pragma once

#include <cstdint>
#include <set>

#include "core/observations.hpp"
#include "phy/plant.hpp"
#include "plp/engine.hpp"

namespace rsf::core {

struct HealthManagerConfig {
  /// Links whose post-FEC BER exceeds this are treated as sick even if
  /// still up (precautionary re-provisioning is not implemented; they
  /// are only priced out — see PriceWeights::gamma_health).
  double sick_post_fec_ber = 1e-6;
  /// Maximum remediations started per epoch.
  int max_ops_per_epoch = 2;
};

class HealthManager {
 public:
  HealthManager(plp::PlpEngine* engine, phy::PhysicalPlant* plant,
                HealthManagerConfig config = {});

  /// Inspect the snapshot; start decommission+re-provision chains for
  /// dark links with failed lanes. Returns remediations started.
  int apply(const RackSnapshot& snapshot);

  [[nodiscard]] std::uint64_t remediations_started() const { return started_; }
  [[nodiscard]] std::uint64_t remediations_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t remediations_failed() const { return failed_; }

 private:
  void remediate(phy::LinkId link);

  plp::PlpEngine* engine_;
  phy::PhysicalPlant* plant_;
  HealthManagerConfig config_;
  std::set<phy::LinkId> in_flight_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace rsf::core
