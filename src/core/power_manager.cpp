#include "core/power_manager.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rsf::core {

PowerManager::PowerManager(plp::PlpEngine* engine, phy::PhysicalPlant* plant,
                           PowerManagerConfig config)
    : engine_(engine), plant_(plant), config_(config) {
  if (engine_ == nullptr || plant_ == nullptr) {
    throw std::invalid_argument("PowerManager: null dependency");
  }
}

int PowerManager::apply(const RackSnapshot& snapshot) {
  int ops = 0;
  if (snapshot.rack_power_watts > config_.cap_watts) {
    for (int i = 0; i < config_.max_ops_per_epoch &&
                    snapshot.rack_power_watts > config_.cap_watts;
         ++i) {
      const std::size_t before = sheds_;
      shed_one(snapshot);
      if (sheds_ == before) break;  // no candidate left
      ++ops;
    }
  } else if (snapshot.rack_power_watts < config_.cap_watts - config_.restore_margin_watts &&
             !shed_.empty()) {
    // Restore only under demand pressure: some link is running hot.
    const bool pressure =
        std::any_of(snapshot.links.begin(), snapshot.links.end(),
                    [this](const LinkObservation& o) {
                      return o.ready && o.utilization >= config_.restore_utilization;
                    });
    if (pressure) {
      for (int i = 0; i < config_.max_ops_per_epoch && !shed_.empty(); ++i) {
        restore_one();
        ++ops;
      }
    }
  }
  return ops;
}

void PowerManager::shed_one(const RackSnapshot& snapshot) {
  // Least-utilised ready link that still has lanes to give.
  const LinkObservation* best = nullptr;
  for (const LinkObservation& obs : snapshot.links) {
    if (!obs.ready || obs.lane_count <= config_.min_lanes) continue;
    if (!plant_->has_link(obs.link) || engine_->link_busy(obs.link)) continue;
    if (best == nullptr || obs.utilization < best->utilization) best = &obs;
  }
  if (best == nullptr) return;
  ++sheds_;
  const int keep = best->lane_count - 1;
  engine_->submit(plp::SplitCommand{best->link, keep}, [this](const plp::PlpResult& r) {
    if (!r.ok || r.created.size() != 2) return;
    const phy::LinkId kept = r.created[0];
    const phy::LinkId spare = r.created[1];
    engine_->submit(plp::ShutdownCommand{spare}, [this, kept, spare](const plp::PlpResult& r2) {
      if (r2.ok) shed_.push_back(ShedRecord{spare, kept});
    });
  });
}

void PowerManager::restore_one() {
  ShedRecord rec = shed_.back();
  shed_.pop_back();
  if (!plant_->has_link(rec.spare)) return;  // consumed by other planners
  ++restores_;
  engine_->submit(plp::BringUpCommand{rec.spare}, [this, rec](const plp::PlpResult& r) {
    if (!r.ok) return;
    // Re-bundle with the sibling if it still exists; otherwise the
    // spare simply serves as an independent one-lane link.
    if (plant_->has_link(rec.partner)) {
      engine_->submit(plp::BundleCommand{rec.partner, rec.spare});
    }
  });
}

}  // namespace rsf::core
