// rsf::core — adaptive FEC policy (PLP #4 driver).
//
// Chooses, per link and per control epoch, the lightest FEC mode that
// meets a frame-loss target at the link's observed pre-FEC BER.
// Light FEC = less rate overhead and less codec latency, so the
// adapter rides as light as the error environment allows and deepens
// protection when lanes degrade. Hysteresis: escalation is immediate
// (loss is visible damage), de-escalation requires the lighter mode to
// hold the target with `relax_margin` to spare, so the adapter cannot
// flap between modes at a noisy BER boundary.
#pragma once

#include <optional>

#include "core/observations.hpp"
#include "phy/fec.hpp"
#include "phy/units.hpp"
#include "plp/engine.hpp"

namespace rsf::core {

struct FecAdapterConfig {
  /// Maximum acceptable loss probability for the reference frame.
  double target_frame_loss = 1e-9;
  /// De-escalation requires the lighter mode to beat target by this
  /// factor (loss <= target * relax_margin).
  double relax_margin = 1e-2;
  /// Never relax below this mode. Essential when the control loop
  /// runs on *estimated* BER (ControlRingConfig::use_estimated_ber):
  /// an uncoded link has no decoder and therefore no telemetry, so
  /// de-escalating to kNone would blind the estimator permanently —
  /// keep at least a light RS code watching the channel.
  phy::FecScheme floor_scheme = phy::FecScheme::kNone;
  phy::DataSize ref_frame = phy::DataSize::bytes(1024);
};

class FecAdapter {
 public:
  FecAdapter(plp::PlpEngine* engine, phy::PhysicalPlant* plant, FecAdapterConfig config = {});

  /// The mode the policy wants for a link at bit-error-rate `ber`,
  /// given it currently runs `current`. Pure function of config —
  /// exposed for tests and for the bench's static-vs-adaptive sweep.
  [[nodiscard]] phy::FecScheme choose(double ber, phy::FecScheme current) const;

  /// Inspect a snapshot and submit SetFec commands where the policy
  /// disagrees with the installed mode. Returns number of changes
  /// submitted.
  int apply(const RackSnapshot& snapshot);

  [[nodiscard]] const FecAdapterConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t changes_submitted() const { return changes_; }

 private:
  plp::PlpEngine* engine_;
  phy::PhysicalPlant* plant_;
  FecAdapterConfig config_;
  std::uint64_t changes_ = 0;
};

}  // namespace rsf::core
