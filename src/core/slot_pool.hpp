// rsf::core — the shared dense-slot free-list pool.
//
// SlotPool<T> is the one implementation of the recycled-slot idiom the
// hot paths rely on (previously hand-rolled per site: Network probe
// and flow slots, Interconnect reservation slots, FleetRuntime flow
// and packet slots). Storage is a dense std::vector<T> addressed by small integer
// indices; freed slots return to a LIFO free list, so claim() reuses
// the most recently recycled slot — churning millions of short-lived
// objects holds the pool at its peak concurrency, and the LIFO order
// keeps recycled-index sequences (and therefore whole simulations)
// bit-for-bit identical to the hand-rolled pools this replaces.
//
// Staleness is detected by generation: every slot carries a counter
// bumped at recycle, and claim() returns a {index, generation} Handle.
// A closure (or an externally held versioned handle like
// SpineReservationHandle) that captured a handle outliving its slot
// fails is_live() / get_live() instead of corrupting the slot's next
// occupant. The generation wraps at its type's limit; staleness
// checks are pure equality, so the wrap is benign (only an exact
// generation collision after a full wrap of one slot could alias —
// pick a wider Gen where closures can outlive 2^32 recycles).
//
// Recycle ordering contract: recycle() resets the slot to T{} and
// pushes it on the free list *before* the caller runs any completion
// callback, so a callback that immediately claims again (a chained
// relaunch) reuses the very slot that just drained. Every migrated
// call site follows recycle-before-callback; a future fix to that
// ordering lands here, once.
//
// Gate policy: pools whose slots drain asynchronously (a flow is
// recyclable only when it is done AND its last straggler packet has
// drained) construct the pool with a Gate functor and use
// maybe_recycle(), which recycles only when the gate passes. The
// default gate always passes, so plain pools (probes, packets,
// reservations) call recycle() directly or maybe_recycle()
// interchangeably.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rsf::core {

/// Default recycle gate: every slot is recyclable the moment the call
/// site asks.
struct AlwaysRecyclable {
  template <typename T>
  [[nodiscard]] constexpr bool operator()(const T&) const {
    return true;
  }
};

/// Default recycle reset: assign a default-constructed T. Pools whose
/// T makes that needlessly expensive (e.g. std::function's
/// construct-and-swap move assignment) supply a cheaper Reset policy
/// that clears the slot in place.
struct AssignDefault {
  template <typename T>
  void operator()(T& slot) const {
    slot = T{};
  }
};

template <typename T, typename Gen = std::uint32_t, typename Gate = AlwaysRecyclable,
          typename Reset = AssignDefault>
class SlotPool {
 public:
  /// A versioned slot reference: the index addresses the dense
  /// storage, the generation detects reuse since the handle was made.
  struct Handle {
    static constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;
    std::uint32_t index = kInvalidIndex;
    Gen generation = 0;

    [[nodiscard]] constexpr bool valid() const { return index != kInvalidIndex; }
    friend constexpr bool operator==(const Handle&, const Handle&) = default;
  };

  SlotPool() = default;
  explicit SlotPool(Gate gate) : gate_(std::move(gate)) {}

  /// Claim a slot: the most recently recycled one when the free list
  /// has any (LIFO — bounded pools under churn), else a fresh slot
  /// grown at the back. The slot's contents are default-constructed
  /// (recycle resets in place); the caller fills it through
  /// operator[]. Returns the slot's versioned handle.
  ///
  /// The free list's top element lives in spare_, not the vector:
  /// one-deep churn (claim, recycle, claim, ... — every per-event hot
  /// path) never touches vector bookkeeping. LIFO order is unchanged;
  /// spare_ is simply the top of the stack.
  [[nodiscard]] Handle claim() {
    std::uint32_t idx;
    if (spare_ != Handle::kInvalidIndex) {
      idx = spare_;
      spare_ = Handle::kInvalidIndex;
    } else if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      meta_.emplace_back();
    }
    meta_[idx].live = true;
    return Handle{idx, meta_[idx].generation};
  }

  /// Return the slot to the free list: reset to T{} in place (dropping
  /// captured callbacks / shared_ptr refs), bump the generation so
  /// every outstanding handle to it goes detectably stale, then push.
  /// Call this *before* running any completion callback, so a callback
  /// that immediately claims again reuses this very slot.
  void recycle(std::uint32_t index) {
    // Double-recycle is the one corruption the generation could not
    // catch later (the index would sit on the free list twice and two
    // claims would alias one slot at the same generation): fail
    // loudly at the bug instead of corrupting a future claimant.
    if (index >= meta_.size() || !meta_[index].live) {
      throw std::logic_error("SlotPool: recycle of a free or unknown slot");
    }
    reset_(slots_[index]);
    ++meta_[index].generation;
    meta_[index].live = false;
    if (spare_ != Handle::kInvalidIndex) free_.push_back(spare_);
    spare_ = index;
  }

  /// Gate-checked recycle: a no-op (false) while the pool's Gate says
  /// the slot has not fully drained — or when the slot is already
  /// free (drain paths may legitimately ask again after a completion
  /// callback's recycle; only an index the pool never allocated is
  /// misuse). `cleanup` runs on the still-intact slot just before the
  /// reset (e.g. erasing an id -> index map entry).
  template <typename Cleanup>
  bool maybe_recycle(std::uint32_t index, Cleanup&& cleanup) {
    if (index >= meta_.size()) {
      throw std::logic_error("SlotPool: maybe_recycle of an unknown slot");
    }
    if (!meta_[index].live || !gate_(slots_[index])) return false;
    std::forward<Cleanup>(cleanup)(slots_[index]);
    recycle(index);
    return true;
  }
  bool maybe_recycle(std::uint32_t index) {
    return maybe_recycle(index, [](T&) {});
  }

  /// True while `handle` names the live occupant it was claimed for:
  /// the slot is claimed and has not been recycled since. The bounds
  /// check runs against meta_ (same length as slots_) because its
  /// element size is a power of two — hot callers pay a shift, not a
  /// divide by sizeof(T).
  [[nodiscard]] bool is_live(Handle handle) const {
    return handle.valid() && handle.index < meta_.size() && meta_[handle.index].live &&
           meta_[handle.index].generation == handle.generation;
  }
  [[nodiscard]] bool is_live(std::uint32_t index, Gen generation) const {
    return is_live(Handle{index, generation});
  }

  /// The slot behind a handle, or nullptr when the handle is stale.
  [[nodiscard]] T* get_live(Handle handle) {
    return is_live(handle) ? &slots_[handle.index] : nullptr;
  }
  [[nodiscard]] const T* get_live(Handle handle) const {
    return is_live(handle) ? &slots_[handle.index] : nullptr;
  }
  [[nodiscard]] T* get_live(std::uint32_t index, Gen generation) {
    return get_live(Handle{index, generation});
  }
  [[nodiscard]] const T* get_live(std::uint32_t index, Gen generation) const {
    return get_live(Handle{index, generation});
  }

  /// Unchecked dense access (hot paths that already validated, and
  /// claim-site initialization).
  [[nodiscard]] T& operator[](std::uint32_t index) { return slots_[index]; }
  [[nodiscard]] const T& operator[](std::uint32_t index) const { return slots_[index]; }

  /// Whether the slot at `index` is currently claimed (pool-iteration
  /// sites skip free slots).
  [[nodiscard]] bool live(std::uint32_t index) const { return meta_[index].live; }
  /// The slot's current generation (handle minting at claim sites that
  /// publish their own handle type).
  [[nodiscard]] Gen generation(std::uint32_t index) const {
    return meta_[index].generation;
  }

  /// Test seam: force a slot's generation counter so wrap-around
  /// behaviour is coverable without 2^32 claim/recycle cycles. Never
  /// called from production code.
  void set_generation_for_test(std::uint32_t index, Gen generation) {
    meta_.at(index).generation = generation;
  }

  /// Total slots ever allocated — the pool's high-water concurrency,
  /// not the number of objects that passed through it.
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  /// Slots currently on the free list (spare_ included).
  [[nodiscard]] std::size_t free_count() const {
    return free_.size() + (spare_ != Handle::kInvalidIndex ? 1 : 0);
  }

 private:
  struct Meta {
    Gen generation = 0;
    bool live = false;
  };

  std::vector<T> slots_;
  std::vector<Meta> meta_;
  std::vector<std::uint32_t> free_;  // LIFO below spare_
  std::uint32_t spare_ = Handle::kInvalidIndex;  // top of the free stack
  [[no_unique_address]] Gate gate_{};
  [[no_unique_address]] Reset reset_{};
};

}  // namespace rsf::core
