#include "phy/units.hpp"

#include <cstdio>

namespace rsf::phy {

std::string DataSize::to_string() const {
  char buf[64];
  const double bytes = byte_count();
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

std::string DataRate::to_string() const {
  char buf[64];
  if (bps_ >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGbps", bps_ / 1e9);
  } else if (bps_ >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMbps", bps_ / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fbps", bps_);
  }
  return buf;
}

rsf::sim::SimTime transmission_time(DataSize size, DataRate rate) {
  if (size.bit_count() <= 0) return rsf::sim::SimTime::zero();
  if (rate.is_zero()) return rsf::sim::SimTime::infinity();
  const double seconds = static_cast<double>(size.bit_count()) / rate.bits_per_second();
  return rsf::sim::SimTime::picoseconds(static_cast<std::int64_t>(seconds * 1e12 + 0.5));
}

}  // namespace rsf::phy
