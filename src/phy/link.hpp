// rsf::phy — logical links.
//
// A logical link is what routing and flow scheduling see: a pipe
// between two nodes with a rate, a latency, an error model and a power
// draw. Under the hood it is an ordered chain of cable segments joined
// by physical-layer bypasses (PLP #2); a plain adjacent link is the
// one-segment special case. Splitting/bundling (PLP #1) rearranges the
// lanes each segment uses.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "phy/fec.hpp"
#include "phy/types.hpp"
#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::phy {

class PhysicalPlant;

/// One hop of a logical link across one cable, using a subset of that
/// cable's lanes.
struct LinkSegment {
  CableId cable = kInvalidCable;
  std::vector<int> lanes;
};

class LogicalLink {
 public:
  LogicalLink(const PhysicalPlant* plant, LinkId id, NodeId end_a, NodeId end_b,
              std::vector<LinkSegment> segments, FecSpec fec)
      : plant_(plant),
        id_(id),
        end_a_(end_a),
        end_b_(end_b),
        segments_(std::move(segments)),
        fec_(fec) {}

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] NodeId end_a() const { return end_a_; }
  [[nodiscard]] NodeId end_b() const { return end_b_; }
  [[nodiscard]] bool connects(NodeId n) const { return n == end_a_ || n == end_b_; }
  [[nodiscard]] NodeId other_end(NodeId n) const;

  [[nodiscard]] const std::vector<LinkSegment>& segments() const { return segments_; }
  /// Number of physical bypass joints traffic crosses (segments - 1).
  [[nodiscard]] int bypass_joints() const { return static_cast<int>(segments_.size()) - 1; }

  [[nodiscard]] const FecSpec& fec() const { return fec_; }

  /// Lanes per segment (equal across segments by construction).
  [[nodiscard]] int lane_count() const {
    return segments_.empty() ? 0 : static_cast<int>(segments_.front().lanes.size());
  }

  // --- Derived transport metrics (computed against the owning plant) ---

  /// Sum of member lane rates of one segment (all segments equal).
  [[nodiscard]] DataRate raw_rate() const;
  /// Raw rate minus FEC overhead — what payload actually gets.
  [[nodiscard]] DataRate effective_rate() const;
  /// End-to-end propagation: cable flight times + per-joint bypass
  /// latency. No switching logic is traversed at joints — that is the
  /// point of PLP #2.
  [[nodiscard]] rsf::sim::SimTime propagation_delay() const;
  /// Serialization of `frame` at the effective rate.
  [[nodiscard]] rsf::sim::SimTime serialization_delay(DataSize frame) const;
  /// serialization + propagation + FEC codec latency for one frame.
  [[nodiscard]] rsf::sim::SimTime one_way_latency(DataSize frame) const;

  /// Worst pre-FEC BER across all member lanes (conservative link BER).
  [[nodiscard]] double worst_pre_fec_ber() const;
  /// Probability a frame is lost to uncorrectable errors end-to-end.
  [[nodiscard]] double frame_loss_prob(DataSize frame) const;
  /// Residual post-FEC BER at the link's current worst-lane BER.
  [[nodiscard]] double post_fec_ber() const;

  /// Member-lane power plus bypass-joint power.
  [[nodiscard]] double power_watts() const;

  /// True when every member lane is up (link can carry traffic).
  /// Cached: lane state only changes through PhysicalPlant mutators,
  /// which invalidate the cache — so the per-hop usability check is a
  /// flag read, not a lane scan.
  [[nodiscard]] bool ready() const {
    if (ready_cache_ < 0) ready_cache_ = compute_ready() ? 1 : 0;
    return ready_cache_ != 0;
  }

  /// Reservation: a link handed to one flow as a dedicated circuit.
  /// Reserved links are invisible to general routing; only the owning
  /// flow's packets cross them. Cleared implicitly by any structural
  /// operation (the successor links start unreserved).
  [[nodiscard]] const std::optional<std::uint64_t>& reserved_for() const {
    return reserved_for_;
  }

 private:
  friend class PhysicalPlant;
  std::optional<std::uint64_t> reserved_for_;

  [[nodiscard]] bool compute_ready() const;
  /// Called by the plant whenever a member lane's state may have
  /// changed (training transitions, power-off, hard failure/repair).
  void invalidate_ready() const { ready_cache_ = -1; }

  /// Drop every cache derived from fec_. Lane rates, cable lengths and
  /// the segment chain are immutable for a link's lifetime, so the
  /// rate/propagation caches only need computing once; the FEC caches
  /// are re-primed lazily after a mode change.
  void invalidate_fec_caches() {
    eff_rate_valid_ = false;
    loss_memo_.fill(LossMemo{});
  }

  const PhysicalPlant* plant_;
  LinkId id_;
  NodeId end_a_;
  NodeId end_b_;
  std::vector<LinkSegment> segments_;
  FecSpec fec_;

  // Derived-metric caches: these sit on the per-packet hop path, where
  // recomputing (lane loops, lgamma-based FEC tail sums) dominated the
  // event loop. BER is part of the loss-memo key, so out-of-band BER
  // changes miss the memo instead of reading stale values.
  mutable bool raw_rate_valid_ = false;
  mutable DataRate raw_rate_cache_ = DataRate::zero();
  mutable bool prop_valid_ = false;
  mutable rsf::sim::SimTime prop_cache_ = rsf::sim::SimTime::zero();
  mutable bool eff_rate_valid_ = false;
  mutable DataRate eff_rate_cache_ = DataRate::zero();
  struct LossMemo {
    double ber = -1.0;
    std::int64_t frame_bits = -1;
    double loss = 0.0;
  };
  mutable std::array<LossMemo, 4> loss_memo_{};
  mutable unsigned loss_memo_next_ = 0;
  /// -1 unknown, else 0/1. See ready().
  mutable std::int8_t ready_cache_ = -1;
};

}  // namespace rsf::phy
