// rsf::phy — physical-layer units.
//
// Strong types for data rates and sizes so Gb/s, GB and lane counts
// cannot be confused, plus the one conversion everything needs:
// size / rate = time.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace rsf::phy {

/// A data size in bits. Factories for bytes and common frame sizes.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bits(std::int64_t b) { return DataSize(b); }
  [[nodiscard]] static constexpr DataSize bytes(std::int64_t b) { return DataSize(b * 8); }
  [[nodiscard]] static constexpr DataSize kilobytes(double kb) {
    return DataSize(static_cast<std::int64_t>(kb * 8e3));
  }
  [[nodiscard]] static constexpr DataSize megabytes(double mb) {
    return DataSize(static_cast<std::int64_t>(mb * 8e6));
  }
  [[nodiscard]] static constexpr DataSize gigabytes(double gb) {
    return DataSize(static_cast<std::int64_t>(gb * 8e9));
  }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize(0); }

  [[nodiscard]] constexpr std::int64_t bit_count() const { return bits_; }
  [[nodiscard]] constexpr double byte_count() const { return static_cast<double>(bits_) / 8.0; }

  /// Packets needed to carry this payload at `packet_size` (ceiling
  /// division; the last packet may be short). Both transports —
  /// Network flows and the fleet's packetized spine streams — cut
  /// payloads through these two helpers so their packet arithmetic
  /// can never diverge. Requires packet_size > 0.
  [[nodiscard]] constexpr std::int64_t packet_count(DataSize packet_size) const {
    return (bits_ + packet_size.bits_ - 1) / packet_size.bits_;
  }
  /// Size of 0-based packet `seq` when this payload is cut into
  /// `packet_size` packets: full packets, then the short tail.
  [[nodiscard]] constexpr DataSize packet_at(std::int64_t seq, DataSize packet_size) const {
    const std::int64_t remaining = bits_ - seq * packet_size.bits_;
    return remaining >= packet_size.bits_ ? packet_size : DataSize(remaining);
  }

  constexpr auto operator<=>(const DataSize&) const = default;

  friend constexpr DataSize operator+(DataSize a, DataSize b) { return DataSize(a.bits_ + b.bits_); }
  friend constexpr DataSize operator-(DataSize a, DataSize b) { return DataSize(a.bits_ - b.bits_); }
  friend constexpr DataSize operator*(DataSize a, std::int64_t k) { return DataSize(a.bits_ * k); }
  constexpr DataSize& operator+=(DataSize rhs) {
    bits_ += rhs.bits_;
    return *this;
  }
  constexpr DataSize& operator-=(DataSize rhs) {
    bits_ -= rhs.bits_;
    return *this;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr DataSize(std::int64_t b) : bits_(b) {}
  std::int64_t bits_ = 0;
};

/// A data rate in bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bps(double v) { return DataRate(v); }
  [[nodiscard]] static constexpr DataRate gbps(double v) { return DataRate(v * 1e9); }
  [[nodiscard]] static constexpr DataRate mbps(double v) { return DataRate(v * 1e6); }
  [[nodiscard]] static constexpr DataRate zero() { return DataRate(0); }

  [[nodiscard]] constexpr double bits_per_second() const { return bps_; }
  [[nodiscard]] constexpr double gbps_value() const { return bps_ / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ <= 0.0; }

  constexpr auto operator<=>(const DataRate&) const = default;

  friend constexpr DataRate operator+(DataRate a, DataRate b) { return DataRate(a.bps_ + b.bps_); }
  friend constexpr DataRate operator-(DataRate a, DataRate b) { return DataRate(a.bps_ - b.bps_); }
  friend constexpr DataRate operator*(DataRate a, double k) { return DataRate(a.bps_ * k); }
  friend constexpr DataRate operator*(double k, DataRate a) { return DataRate(k * a.bps_); }
  friend constexpr double operator/(DataRate a, DataRate b) { return a.bps_ / b.bps_; }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr DataRate(double bps) : bps_(bps) {}
  double bps_ = 0;
};

/// Time to clock `size` onto a medium at `rate`. Infinite rate or zero
/// size degenerate to zero; zero rate yields SimTime::infinity().
[[nodiscard]] rsf::sim::SimTime transmission_time(DataSize size, DataRate rate);

}  // namespace rsf::phy
