// rsf::phy — the physical plant.
//
// PhysicalPlant owns every cable and logical link in the rack and is
// the single authority for structural reconfiguration: link creation,
// splitting/bundling (PLP #1), bypass join/sever (PLP #2), FEC changes
// (PLP #4) and statistics (PLP #5). All operations are *instantaneous
// state changes with validated preconditions*; the PLP engine layers
// actuation latency and lane retraining on top.
//
// Invariants maintained (checked by validate(), exercised by the
// property tests):
//   I1  every lane belongs to at most one logical link;
//   I2  a link's segments form a contiguous node path end_a -> end_b;
//   I3  every segment of a link carries the same lane count;
//   I4  every segment's lanes exist on its cable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phy/cable.hpp"
#include "sim/random.hpp"
#include "phy/link.hpp"
#include "phy/types.hpp"

namespace rsf::phy {

/// Plant-wide physical constants.
struct PlantConfig {
  /// Latency added by one bypass joint (retimer / optical coupler).
  rsf::sim::SimTime bypass_latency = rsf::sim::SimTime::nanoseconds(25);
  /// Power of one active bypass joint.
  double bypass_power_w = 0.3;
};

class PhysicalPlant {
 public:
  explicit PhysicalPlant(PlantConfig config = {}) : config_(config) {}

  PhysicalPlant(const PhysicalPlant&) = delete;
  PhysicalPlant& operator=(const PhysicalPlant&) = delete;

  [[nodiscard]] const PlantConfig& config() const { return config_; }

  // --- Construction-time plumbing ---

  CableId add_cable(NodeId a, NodeId b, double length_m, Medium medium, int lane_count,
                    DataRate lane_rate, LanePowerParams lane_power = {},
                    double initial_ber = 1e-12);

  [[nodiscard]] Cable& cable(CableId id);
  [[nodiscard]] const Cable& cable(CableId id) const;
  [[nodiscard]] std::size_t cable_count() const { return cables_.size(); }

  /// The cable between adjacent nodes a and b, if one exists.
  [[nodiscard]] std::optional<CableId> find_cable(NodeId a, NodeId b) const;

  // --- Link lifecycle ---

  /// Create a link over explicit segments. Validates I1-I4 and claims
  /// the lanes. Lanes start in kOff; callers (normally the PLP engine)
  /// bring them up.
  LinkId create_link(NodeId end_a, NodeId end_b, std::vector<LinkSegment> segments,
                     FecSpec fec = FecSpec::of(FecScheme::kNone));

  /// Convenience: single-segment link over `lanes` of `cable`.
  LinkId create_adjacent_link(CableId cable, std::vector<int> lanes,
                              FecSpec fec = FecSpec::of(FecScheme::kNone));

  /// Destroy a link and release its lanes. Lane power states are left
  /// unchanged — powering freed lanes down is a separate PLP #3
  /// decision made by the control plane.
  void destroy_link(LinkId id);

  [[nodiscard]] bool has_link(LinkId id) const {
    return id < links_.size() && links_[id] != nullptr;
  }
  /// Inline: called several times per packet hop.
  [[nodiscard]] const LogicalLink& link(LinkId id) const {
    if (id >= links_.size() || links_[id] == nullptr) {
      throw std::invalid_argument("link: unknown id");
    }
    return *links_[id];
  }
  [[nodiscard]] std::vector<LinkId> link_ids() const;
  [[nodiscard]] std::size_t link_count() const { return link_count_; }

  // --- PLP #1: breaking / bundling ---

  /// Split `id` into a k-lane link and an (N-k)-lane link over the same
  /// segment chain. The first k lanes (per segment, in stored order) go
  /// to the first result. Lane states are preserved. `id` is destroyed.
  std::pair<LinkId, LinkId> split_link(LinkId id, int k);

  /// Merge two links with identical endpoints and identical cable
  /// chains into one. Lane states preserved; FEC taken from `first`.
  /// Both inputs are destroyed.
  LinkId bundle_links(LinkId first, LinkId second);

  // --- PLP #2: high-speed bypass ---

  /// Join two links sharing exactly one endpoint into a single link
  /// bypassing the shared node at the physical layer. Lane counts must
  /// match. FEC taken from `first`. Both inputs are destroyed.
  LinkId bypass_join(LinkId first, LinkId second);

  /// Sever a multi-segment link at intermediate node `at`, restoring
  /// two independent links that terminate there.
  std::pair<LinkId, LinkId> bypass_sever(LinkId id, NodeId at);

  // --- PLP #3: lane state (the plant flips state; timing is PLP's) ---

  void lane_begin_training(LinkId id);
  void lane_complete_training(LinkId id);
  void lane_power_off(LinkId id);

  // --- PLP #4: adaptive FEC ---

  void set_fec(LinkId id, FecSpec fec);

  /// Reserve a link for one flow (or clear with nullopt). See
  /// LogicalLink::reserved_for. An effective change notifies the
  /// change observers (routing caches key on the topology version).
  void set_reservation(LinkId id, std::optional<std::uint64_t> flow);

  // --- PLP #5: statistics ---

  /// Account `bits` carried by every member lane (split evenly).
  void account_bits(LinkId id, std::int64_t bits);

  /// Account one frame crossing the link *and* sample the FEC decoder
  /// telemetry real transceivers expose: the number of corrected
  /// codewords, drawn per lane from the lane's true BER. Feeds the
  /// pre-FEC BER estimator below (PLP #5).
  void account_frame(LinkId id, DataSize frame, rsf::sim::RandomStream& rng);

  /// Pre-FEC BER of the link as *estimated from decoder telemetry*
  /// (worst estimating lane). Requires an RS FEC mode and traffic:
  /// returns 0 when nothing has been observed — exactly like a real
  /// transceiver MIB. Compare Lane::pre_fec_ber(), the oracle truth.
  [[nodiscard]] double estimated_pre_fec_ber(LinkId id) const;

  /// Set the environmental pre-FEC BER on every lane of a cable.
  void set_cable_ber(CableId id, double ber);

  // --- Failures ---

  /// Observer of out-of-band physical changes (lane failure/repair).
  /// Loss-of-signal propagates to the fabric layer immediately, the
  /// way real PHYs raise link-down interrupts; routing caches must
  /// invalidate on it.
  using ChangeObserver = std::function<void()>;
  void add_change_observer(ChangeObserver obs) {
    change_observers_.push_back(std::move(obs));
  }

  /// Hard-fail one lane (see Lane::fail). Any link using it goes
  /// not-ready until the control plane re-provisions around it.
  void fail_lane(LaneRef ref);
  /// Out-of-band physical repair of a lane.
  void repair_lane(LaneRef ref);
  /// Lanes of `cable` that are hard-failed.
  [[nodiscard]] std::vector<int> failed_lanes(CableId cable) const;
  /// Member lanes of `link` (per segment) that are hard-failed.
  [[nodiscard]] std::vector<LaneRef> failed_lanes_of_link(LinkId id) const;

  // --- Whole-plant queries ---

  /// Total plant power: every cable's lanes + every active bypass joint.
  [[nodiscard]] double total_power_watts() const;
  /// Number of active bypass joints across all links.
  [[nodiscard]] int total_bypass_joints() const;

  /// Check invariants I1-I4; returns an error description or empty.
  [[nodiscard]] std::string validate() const;

  /// Owner of a lane, if any.
  [[nodiscard]] std::optional<LinkId> lane_owner(LaneRef ref) const;
  /// Lanes of `cable` not owned by any link.
  [[nodiscard]] std::vector<int> free_lanes(CableId cable) const;

 private:
  LinkId install_link(NodeId end_a, NodeId end_b, std::vector<LinkSegment> segments,
                      FecSpec fec);
  void claim_lanes(const std::vector<LinkSegment>& segments, LinkId id);
  void release_lanes(const std::vector<LinkSegment>& segments);
  void check_segments(NodeId end_a, NodeId end_b,
                      const std::vector<LinkSegment>& segments) const;
  [[nodiscard]] LogicalLink& mutable_link(LinkId id);
  void for_each_lane(const LogicalLink& link, const std::function<void(Lane&)>& fn);

  PlantConfig config_;
  std::vector<ChangeObserver> change_observers_;
  std::vector<std::unique_ptr<Cable>> cables_;
  // Dense id-indexed pool: link ids are assigned sequentially and never
  // reused, so the per-hop link(id) lookup is one bounds check and one
  // pointer chase. Destroyed links leave nullptr holes; link_ids()
  // skips them (and stays sorted for deterministic iteration).
  std::vector<std::unique_ptr<LogicalLink>> links_;
  std::size_t link_count_ = 0;
  // rsf-lint: order-insensitive(point lookups only — lane_owner()/free_lanes() probe by key, never iterate)
  std::unordered_map<LaneRef, LinkId> lane_owner_;
  LinkId next_link_id_ = 0;
};

}  // namespace rsf::phy
