#include "phy/plant.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rsf::phy {

CableId PhysicalPlant::add_cable(NodeId a, NodeId b, double length_m, Medium medium,
                                 int lane_count, DataRate lane_rate,
                                 LanePowerParams lane_power, double initial_ber) {
  const auto id = static_cast<CableId>(cables_.size());
  cables_.push_back(std::make_unique<Cable>(id, a, b, length_m, medium, lane_count,
                                            lane_rate, lane_power, initial_ber));
  return id;
}

Cable& PhysicalPlant::cable(CableId id) {
  if (id >= cables_.size()) throw std::out_of_range("PhysicalPlant::cable: bad id");
  return *cables_[id];
}

const Cable& PhysicalPlant::cable(CableId id) const {
  if (id >= cables_.size()) throw std::out_of_range("PhysicalPlant::cable: bad id");
  return *cables_[id];
}

std::optional<CableId> PhysicalPlant::find_cable(NodeId a, NodeId b) const {
  for (const auto& c : cables_) {
    if ((c->end_a() == a && c->end_b() == b) || (c->end_a() == b && c->end_b() == a)) {
      return c->id();
    }
  }
  return std::nullopt;
}

void PhysicalPlant::check_segments(NodeId end_a, NodeId end_b,
                                   const std::vector<LinkSegment>& segments) const {
  if (segments.empty()) throw std::invalid_argument("link: no segments");
  if (end_a == end_b) throw std::invalid_argument("link: end_a == end_b");

  const std::size_t lanes_per_segment = segments.front().lanes.size();
  if (lanes_per_segment == 0) throw std::invalid_argument("link: zero lanes");

  NodeId cursor = end_a;
  for (const LinkSegment& seg : segments) {
    if (seg.cable >= cables_.size()) throw std::invalid_argument("link: unknown cable");
    const Cable& c = *cables_[seg.cable];
    if (!c.connects(cursor)) {
      throw std::invalid_argument("link: segment chain broken at node " +
                                  std::to_string(cursor));
    }
    if (seg.lanes.size() != lanes_per_segment) {
      throw std::invalid_argument("link: unequal lane counts across segments");
    }
    std::set<int> unique(seg.lanes.begin(), seg.lanes.end());
    if (unique.size() != seg.lanes.size()) {
      throw std::invalid_argument("link: duplicate lane in segment");
    }
    for (int lane : seg.lanes) {
      if (lane < 0 || lane >= c.lane_count()) {
        throw std::invalid_argument("link: lane index out of range");
      }
      if (lane_owner_.contains(LaneRef{seg.cable, lane})) {
        throw std::invalid_argument("link: lane already owned (cable " +
                                    std::to_string(seg.cable) + " lane " +
                                    std::to_string(lane) + ")");
      }
    }
    cursor = c.other_end(cursor);
  }
  if (cursor != end_b) {
    throw std::invalid_argument("link: segment chain does not terminate at end_b");
  }
}

void PhysicalPlant::claim_lanes(const std::vector<LinkSegment>& segments, LinkId id) {
  for (const LinkSegment& seg : segments) {
    for (int lane : seg.lanes) lane_owner_.emplace(LaneRef{seg.cable, lane}, id);
  }
}

void PhysicalPlant::release_lanes(const std::vector<LinkSegment>& segments) {
  for (const LinkSegment& seg : segments) {
    for (int lane : seg.lanes) lane_owner_.erase(LaneRef{seg.cable, lane});
  }
}

LinkId PhysicalPlant::install_link(NodeId end_a, NodeId end_b,
                                   std::vector<LinkSegment> segments, FecSpec fec) {
  // Internal callers (split/bundle/join/sever) construct segments from
  // already-valid links, but re-validating is cheap defence in depth.
  check_segments(end_a, end_b, segments);
  const LinkId id = next_link_id_++;
  claim_lanes(segments, id);
  if (links_.size() <= id) links_.resize(id + 1);
  links_[id] =
      std::make_unique<LogicalLink>(this, id, end_a, end_b, std::move(segments), fec);
  ++link_count_;
  return id;
}

LinkId PhysicalPlant::create_link(NodeId end_a, NodeId end_b,
                                  std::vector<LinkSegment> segments, FecSpec fec) {
  return install_link(end_a, end_b, std::move(segments), fec);
}

LinkId PhysicalPlant::create_adjacent_link(CableId cable_id, std::vector<int> lanes,
                                           FecSpec fec) {
  const Cable& c = cable(cable_id);
  std::vector<LinkSegment> segs{LinkSegment{cable_id, std::move(lanes)}};
  return create_link(c.end_a(), c.end_b(), std::move(segs), fec);
}

void PhysicalPlant::destroy_link(LinkId id) {
  if (!has_link(id)) throw std::invalid_argument("destroy_link: unknown link");
  release_lanes(links_[id]->segments());
  links_[id].reset();
  --link_count_;
}

LogicalLink& PhysicalPlant::mutable_link(LinkId id) {
  if (!has_link(id)) throw std::invalid_argument("link: unknown id");
  return *links_[id];
}

std::vector<LinkId> PhysicalPlant::link_ids() const {
  std::vector<LinkId> ids;
  ids.reserve(link_count_);
  for (LinkId id = 0; id < links_.size(); ++id) {
    if (links_[id] != nullptr) ids.push_back(id);
  }
  return ids;
}

std::pair<LinkId, LinkId> PhysicalPlant::split_link(LinkId id, int k) {
  const LogicalLink& l = link(id);
  const int n = l.lane_count();
  if (k <= 0 || k >= n) {
    throw std::invalid_argument("split_link: need 0 < k < lane_count");
  }
  std::vector<LinkSegment> first_segs;
  std::vector<LinkSegment> second_segs;
  first_segs.reserve(l.segments().size());
  second_segs.reserve(l.segments().size());
  for (const LinkSegment& seg : l.segments()) {
    LinkSegment a{seg.cable, {seg.lanes.begin(), seg.lanes.begin() + k}};
    LinkSegment b{seg.cable, {seg.lanes.begin() + k, seg.lanes.end()}};
    first_segs.push_back(std::move(a));
    second_segs.push_back(std::move(b));
  }
  const NodeId ea = l.end_a();
  const NodeId eb = l.end_b();
  const FecSpec fec = l.fec();
  destroy_link(id);
  const LinkId first = install_link(ea, eb, std::move(first_segs), fec);
  const LinkId second = install_link(ea, eb, std::move(second_segs), fec);
  return {first, second};
}

LinkId PhysicalPlant::bundle_links(LinkId first, LinkId second) {
  if (first == second) throw std::invalid_argument("bundle_links: same link");
  const LogicalLink& a = link(first);
  const LogicalLink& b = link(second);

  // Orient b's segments to match a.
  std::vector<LinkSegment> b_segs = b.segments();
  if (a.end_a() == b.end_b() && a.end_b() == b.end_a()) {
    std::reverse(b_segs.begin(), b_segs.end());
  } else if (!(a.end_a() == b.end_a() && a.end_b() == b.end_b())) {
    throw std::invalid_argument("bundle_links: endpoint mismatch");
  }
  if (a.segments().size() != b_segs.size()) {
    throw std::invalid_argument("bundle_links: segment count mismatch");
  }
  std::vector<LinkSegment> merged;
  merged.reserve(a.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    if (a.segments()[i].cable != b_segs[i].cable) {
      throw std::invalid_argument("bundle_links: cable chain mismatch");
    }
    LinkSegment seg{a.segments()[i].cable, a.segments()[i].lanes};
    seg.lanes.insert(seg.lanes.end(), b_segs[i].lanes.begin(), b_segs[i].lanes.end());
    merged.push_back(std::move(seg));
  }
  const NodeId ea = a.end_a();
  const NodeId eb = a.end_b();
  const FecSpec fec = a.fec();
  destroy_link(first);
  destroy_link(second);
  return install_link(ea, eb, std::move(merged), fec);
}

LinkId PhysicalPlant::bypass_join(LinkId first, LinkId second) {
  if (first == second) throw std::invalid_argument("bypass_join: same link");
  const LogicalLink& a = link(first);
  const LogicalLink& b = link(second);
  if (a.lane_count() != b.lane_count()) {
    throw std::invalid_argument("bypass_join: lane count mismatch");
  }

  // Find the single shared endpoint.
  NodeId joint = kInvalidNode;
  for (NodeId n : {a.end_a(), a.end_b()}) {
    if (b.connects(n)) {
      if (joint != kInvalidNode) {
        throw std::invalid_argument("bypass_join: links share both endpoints");
      }
      joint = n;
    }
  }
  if (joint == kInvalidNode) {
    throw std::invalid_argument("bypass_join: links share no endpoint");
  }
  const NodeId new_a = a.other_end(joint);
  const NodeId new_b = b.other_end(joint);
  if (new_a == new_b) {
    throw std::invalid_argument("bypass_join: would create a loop");
  }

  // Orient a to run new_a -> joint and b to run joint -> new_b.
  std::vector<LinkSegment> segs = a.segments();
  if (a.end_b() != joint) std::reverse(segs.begin(), segs.end());
  std::vector<LinkSegment> b_segs = b.segments();
  if (b.end_a() != joint) std::reverse(b_segs.begin(), b_segs.end());
  segs.insert(segs.end(), std::make_move_iterator(b_segs.begin()),
              std::make_move_iterator(b_segs.end()));

  const FecSpec fec = a.fec();
  destroy_link(first);
  destroy_link(second);
  return install_link(new_a, new_b, std::move(segs), fec);
}

std::pair<LinkId, LinkId> PhysicalPlant::bypass_sever(LinkId id, NodeId at) {
  const LogicalLink& l = link(id);
  if (l.segments().size() < 2) {
    throw std::invalid_argument("bypass_sever: link has no bypass joints");
  }
  // Walk the node path end_a, n1, ..., end_b; interior joints are the
  // nodes between consecutive segments.
  std::size_t split_idx = 0;
  NodeId cursor = l.end_a();
  for (std::size_t i = 1; i < l.segments().size(); ++i) {
    cursor = cable(l.segments()[i - 1].cable).other_end(cursor);
    if (cursor == at) {
      split_idx = i;
      break;
    }
  }
  if (split_idx == 0) {
    throw std::invalid_argument("bypass_sever: node is not an interior joint");
  }
  std::vector<LinkSegment> first_segs(l.segments().begin(),
                                      l.segments().begin() + static_cast<long>(split_idx));
  std::vector<LinkSegment> second_segs(l.segments().begin() + static_cast<long>(split_idx),
                                       l.segments().end());
  const NodeId ea = l.end_a();
  const NodeId eb = l.end_b();
  const FecSpec fec = l.fec();
  destroy_link(id);
  const LinkId f = install_link(ea, at, std::move(first_segs), fec);
  const LinkId s = install_link(at, eb, std::move(second_segs), fec);
  return {f, s};
}

void PhysicalPlant::for_each_lane(const LogicalLink& l,
                                  const std::function<void(Lane&)>& fn) {
  for (const LinkSegment& seg : l.segments()) {
    Cable& c = cable(seg.cable);
    for (int lane : seg.lanes) fn(c.lane(lane));
  }
}

void PhysicalPlant::lane_begin_training(LinkId id) {
  LogicalLink& l = mutable_link(id);
  for_each_lane(l, [](Lane& lane) { lane.begin_training(); });
  l.invalidate_ready();
}

void PhysicalPlant::lane_complete_training(LinkId id) {
  LogicalLink& l = mutable_link(id);
  for_each_lane(l, [](Lane& lane) { lane.complete_training(); });
  l.invalidate_ready();
}

void PhysicalPlant::lane_power_off(LinkId id) {
  LogicalLink& l = mutable_link(id);
  for_each_lane(l, [](Lane& lane) { lane.power_off(); });
  l.invalidate_ready();
}

void PhysicalPlant::set_fec(LinkId id, FecSpec fec) {
  LogicalLink& l = mutable_link(id);
  l.fec_ = fec;
  l.invalidate_fec_caches();
}

void PhysicalPlant::set_reservation(LinkId id, std::optional<std::uint64_t> flow) {
  LogicalLink& l = mutable_link(id);
  if (l.reserved_for_ == flow) return;
  l.reserved_for_ = flow;
  // Reservations change what public routing may use without changing
  // the link set: notify, so topology versions bump and memoized
  // routing state (dist tables, next-hop argmins) refreshes.
  for (const auto& obs : change_observers_) obs();
}

void PhysicalPlant::account_bits(LinkId id, std::int64_t bits) {
  LogicalLink& l = mutable_link(id);
  const int lanes = l.lane_count();
  if (lanes == 0 || bits <= 0) return;
  const auto per_lane = static_cast<std::uint64_t>(bits / lanes);
  for_each_lane(l, [per_lane](Lane& lane) { lane.mutable_stats().bits_carried += per_lane; });
}

void PhysicalPlant::account_frame(LinkId id, DataSize frame, rsf::sim::RandomStream& rng) {
  LogicalLink& l = mutable_link(id);
  const int lanes = l.lane_count();
  if (lanes == 0 || frame.bit_count() <= 0) return;
  const FecSpec& fec = l.fec();
  account_bits(id, frame.bit_count());
  if (fec.n == 0) return;  // uncoded: no decoder telemetry
  // Codewords per frame, striped across lanes.
  const double payload_per_cw = static_cast<double>(fec.k * fec.symbol_bits);
  const double cw_total = std::ceil(static_cast<double>(frame.bit_count()) / payload_per_cw);
  for (const LinkSegment& seg : l.segments()) {
    Cable& c = cable(seg.cable);
    for (int lane_idx : seg.lanes) {
      Lane& lane = c.lane(lane_idx);
      const double ber = lane.pre_fec_ber();
      if (ber <= 0) continue;
      // Mean corrected codewords on this lane: its share of codeword
      // symbols times the symbol error rate (small-p approximation:
      // one corrected codeword per symbol error).
      const double p_sym = 1.0 - std::pow(1.0 - ber, fec.symbol_bits);
      const double mean = cw_total / lanes * fec.n * p_sym;
      lane.mutable_stats().corrected_codewords += rng.poisson(mean);
    }
  }
}

double PhysicalPlant::estimated_pre_fec_ber(LinkId id) const {
  const LogicalLink& l = link(id);
  const FecSpec& fec = l.fec();
  if (fec.n == 0) return 0.0;
  double worst = 0.0;
  for (const LinkSegment& seg : l.segments()) {
    const Cable& c = cable(seg.cable);
    for (int lane_idx : seg.lanes) {
      const LaneStats& st = c.lane(lane_idx).stats();
      if (st.bits_carried == 0) continue;
      // Symbols this lane has carried, including parity expansion.
      const double symbols = static_cast<double>(st.bits_carried) *
                             (static_cast<double>(fec.n) / fec.k) / fec.symbol_bits;
      if (symbols <= 0) continue;
      const double p_sym = static_cast<double>(st.corrected_codewords) / symbols;
      // Invert the symbol error rate to a bit error rate.
      const double ber = p_sym >= 1.0 ? 1.0
                                      : -std::expm1(std::log1p(-p_sym) / fec.symbol_bits);
      worst = std::max(worst, ber);
    }
  }
  return worst;
}

void PhysicalPlant::set_cable_ber(CableId id, double ber) {
  Cable& c = cable(id);
  for (int i = 0; i < c.lane_count(); ++i) c.lane(i).set_pre_fec_ber(ber);
}

void PhysicalPlant::fail_lane(LaneRef ref) {
  cable(ref.cable).lane(ref.lane).fail();
  if (const auto owner = lane_owner(ref)) mutable_link(*owner).invalidate_ready();
  for (const auto& obs : change_observers_) obs();
}

void PhysicalPlant::repair_lane(LaneRef ref) {
  cable(ref.cable).lane(ref.lane).repair();
  if (const auto owner = lane_owner(ref)) mutable_link(*owner).invalidate_ready();
  for (const auto& obs : change_observers_) obs();
}

std::vector<int> PhysicalPlant::failed_lanes(CableId cable_id) const {
  const Cable& c = cable(cable_id);
  std::vector<int> out;
  for (int i = 0; i < c.lane_count(); ++i) {
    if (c.lane(i).is_failed()) out.push_back(i);
  }
  return out;
}

std::vector<LaneRef> PhysicalPlant::failed_lanes_of_link(LinkId id) const {
  const LogicalLink& l = link(id);
  std::vector<LaneRef> out;
  for (const LinkSegment& seg : l.segments()) {
    const Cable& c = cable(seg.cable);
    for (int lane : seg.lanes) {
      if (c.lane(lane).is_failed()) out.push_back(LaneRef{seg.cable, lane});
    }
  }
  return out;
}

double PhysicalPlant::total_power_watts() const {
  double w = 0;
  for (const auto& c : cables_) w += c->power_watts();
  w += config_.bypass_power_w * total_bypass_joints();
  return w;
}

int PhysicalPlant::total_bypass_joints() const {
  int joints = 0;
  for (const auto& l : links_) {
    if (l) joints += l->bypass_joints();
  }
  return joints;
}

std::optional<LinkId> PhysicalPlant::lane_owner(LaneRef ref) const {
  auto it = lane_owner_.find(ref);
  if (it == lane_owner_.end()) return std::nullopt;
  return it->second;
}

std::vector<int> PhysicalPlant::free_lanes(CableId cable_id) const {
  const Cable& c = cable(cable_id);
  std::vector<int> out;
  for (int i = 0; i < c.lane_count(); ++i) {
    if (!lane_owner_.contains(LaneRef{cable_id, i})) out.push_back(i);
  }
  return out;
}

std::string PhysicalPlant::validate() const {
  // Ordered on purpose: validate() is cold (debug/test only) and the
  // error it returns must not depend on hash iteration order.
  std::map<LaneRef, LinkId> recomputed;
  for (LinkId id = 0; id < links_.size(); ++id) {
    const auto& l = links_[id];
    if (!l) continue;
    // I2 + I3 + I4 via the same checker used at creation, but lanes are
    // owned (by this link), so re-check ownership separately.
    const std::size_t lanes_per_segment =
        l->segments().empty() ? 0 : l->segments().front().lanes.size();
    if (lanes_per_segment == 0) return "link " + std::to_string(id) + ": zero lanes";
    NodeId cursor = l->end_a();
    for (const LinkSegment& seg : l->segments()) {
      if (seg.cable >= cables_.size()) return "link " + std::to_string(id) + ": bad cable";
      const Cable& c = *cables_[seg.cable];
      if (!c.connects(cursor)) return "link " + std::to_string(id) + ": broken chain";
      if (seg.lanes.size() != lanes_per_segment) {
        return "link " + std::to_string(id) + ": unequal lane counts";
      }
      for (int lane : seg.lanes) {
        if (lane < 0 || lane >= c.lane_count()) {
          return "link " + std::to_string(id) + ": lane out of range";
        }
        const LaneRef ref{seg.cable, lane};
        if (recomputed.contains(ref)) {
          return "lane (" + std::to_string(seg.cable) + "," + std::to_string(lane) +
                 ") owned by two links";  // violates I1
        }
        recomputed.emplace(ref, id);
      }
      cursor = c.other_end(cursor);
    }
    if (cursor != l->end_b()) return "link " + std::to_string(id) + ": wrong terminus";
  }
  if (recomputed.size() != lane_owner_.size()) {
    return "lane ownership table out of sync";
  }
  for (const auto& [ref, id] : recomputed) {
    auto it = lane_owner_.find(ref);
    if (it == lane_owner_.end() || it->second != id) {
      return "lane ownership table entry mismatch";
    }
  }
  return {};
}

}  // namespace rsf::phy
