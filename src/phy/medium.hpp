// rsf::phy — transmission media.
//
// The architecture is media-agnostic (paper §2): the fabric only asks a
// medium for its propagation velocity and which Physical Layer
// Primitives it supports. Both optical and electrical media are
// modelled; primitive support sets differ (e.g. wavelength-style
// bundling vs copper lane bundling behave identically at this level).
#pragma once

#include <string_view>

#include "sim/time.hpp"

namespace rsf::phy {

enum class Medium {
  kFiber,          // single-mode fibre, ~5 ns/m (group index ~1.5)
  kCopper,         // twinax / backplane, ~4.3 ns/m
  kFreeSpaceOptic  // ProjecToR-style free-space links, ~3.34 ns/m
};

[[nodiscard]] std::string_view to_string(Medium m);

/// One-way propagation delay per metre of the medium.
[[nodiscard]] rsf::sim::SimTime propagation_per_meter(Medium m);

/// One-way propagation delay over `meters` of the medium.
[[nodiscard]] rsf::sim::SimTime propagation_delay(Medium m, double meters);

}  // namespace rsf::phy
