// rsf::phy — time-varying bit-error-rate environments.
//
// Real lanes see BER drift with temperature, ageing and crosstalk. The
// adaptive-FEC experiments need a controllable environment: a BerProfile
// maps simulation time to pre-FEC BER, and a BerDriver periodically
// applies the profile to a cable inside the simulation.
#pragma once

#include <functional>
#include <vector>

#include "phy/plant.hpp"
#include "phy/types.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rsf::phy {

/// BER as a function of simulation time.
using BerProfile = std::function<double(rsf::sim::SimTime)>;

/// A constant environment.
[[nodiscard]] BerProfile constant_ber(double ber);

/// Exponential ramp from `start_ber` at t=`from` to `end_ber` at
/// t=`to` (log-linear interpolation — BER moves in decades), constant
/// outside the window.
[[nodiscard]] BerProfile ramp_ber(double start_ber, double end_ber, rsf::sim::SimTime from,
                                  rsf::sim::SimTime to);

/// Baseline BER with a burst window at `spike_ber` during [from, to).
[[nodiscard]] BerProfile spike_ber(double base_ber, double spike_ber,
                                   rsf::sim::SimTime from, rsf::sim::SimTime to);

/// Applies a profile to a cable every `period`.
class BerDriver {
 public:
  BerDriver(rsf::sim::Simulator* sim, PhysicalPlant* plant, CableId cable,
            BerProfile profile, rsf::sim::SimTime period);

  /// Begin periodic application (applies immediately, then every period).
  void start();
  void stop();

 private:
  void tick();

  rsf::sim::Simulator* sim_;
  PhysicalPlant* plant_;
  CableId cable_;
  BerProfile profile_;
  rsf::sim::SimTime period_;
  rsf::sim::EventId pending_ = rsf::sim::kInvalidEventId;
  bool running_ = false;
};

}  // namespace rsf::phy
