#include "phy/fec.hpp"

#include <algorithm>
#include <cmath>

namespace rsf::phy {

using rsf::sim::SimTime;

std::string_view to_string(FecScheme s) {
  switch (s) {
    case FecScheme::kNone:
      return "none";
    case FecScheme::kFireCode:
      return "fire-code";
    case FecScheme::kRsKr4:
      return "rs-kr4";
    case FecScheme::kRsKp4:
      return "rs-kp4";
  }
  return "?";
}

FecSpec FecSpec::of(FecScheme s) {
  switch (s) {
    case FecScheme::kNone:
      return FecSpec{s, 0.0, SimTime::zero(), 0, 0, 0, 0};
    case FecScheme::kFireCode:
      // Clause 74 FEC(2112,2080): ~1.5% overhead, very low latency.
      // Correction power approximated as a 1-symbol-correcting code
      // over 32-bit blocks (it corrects a single burst <= 11 bits).
      return FecSpec{s, 32.0 / 2112.0, SimTime::nanoseconds(80), 32, 66, 65, 1};
    case FecScheme::kRsKr4:
      // RS(528,514) over 10-bit symbols, corrects t=7 symbols.
      return FecSpec{s, 14.0 / 528.0, SimTime::nanoseconds(120), 10, 528, 514, 7};
    case FecScheme::kRsKp4:
      // RS(544,514) over 10-bit symbols, corrects t=15 symbols.
      return FecSpec{s, 30.0 / 544.0, SimTime::nanoseconds(250), 10, 544, 514, 15};
  }
  return FecSpec{};
}

namespace {

/// log of the binomial coefficient C(n, k).
double log_choose(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

/// P(X > t) for X ~ Binomial(n, p), computed as 1 - sum_{j<=t} pmf(j)
/// with pmf evaluated in log space for numerical stability at tiny p.
double binomial_tail_above(int n, int t, double p) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return t >= n ? 0.0 : 1.0;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double below = 0.0;
  for (int j = 0; j <= t; ++j) {
    const double log_pmf = log_choose(n, j) + j * log_p + (n - j) * log_q;
    below += std::exp(log_pmf);
  }
  // Tiny tails: 1 - below loses precision below ~1e-16; compute the
  // dominant term of the tail directly instead.
  const double tail = 1.0 - below;
  if (tail > 1e-12) return std::clamp(tail, 0.0, 1.0);
  const int j = t + 1;
  if (j > n) return 0.0;
  const double log_lead = log_choose(n, j) + j * log_p + (n - j) * log_q;
  return std::clamp(std::exp(log_lead), 0.0, 1.0);
}

}  // namespace

double FecSpec::codeword_error_prob(double ber) const {
  ber = std::clamp(ber, 0.0, 1.0);
  if (n == 0) {
    // Uncoded: treat a "codeword" as a single bit.
    return ber;
  }
  // Symbol error rate from bit error rate.
  const double p_sym = 1.0 - std::pow(1.0 - ber, symbol_bits);
  return binomial_tail_above(n, t, p_sym);
}

double FecSpec::frame_loss_prob(double ber, DataSize frame) const {
  ber = std::clamp(ber, 0.0, 1.0);
  if (frame.bit_count() <= 0) return 0.0;
  if (n == 0) {
    // Any bit error kills the frame (FCS check).
    const double bits = static_cast<double>(frame.bit_count());
    // 1-(1-ber)^bits, stable for tiny ber via expm1.
    return std::clamp(-std::expm1(bits * std::log1p(-ber)), 0.0, 1.0);
  }
  const double payload_bits_per_cw = static_cast<double>(k * symbol_bits);
  const double codewords = std::ceil(static_cast<double>(frame.bit_count()) / payload_bits_per_cw);
  const double cw_err = codeword_error_prob(ber);
  if (cw_err <= 0.0) return 0.0;
  return std::clamp(-std::expm1(codewords * std::log1p(-cw_err)), 0.0, 1.0);
}

double FecSpec::post_fec_ber(double ber) const {
  ber = std::clamp(ber, 0.0, 1.0);
  if (n == 0) return ber;
  const double cw_err = codeword_error_prob(ber);
  // When a codeword fails, roughly t+1 symbol errors leak; spread over
  // the k-symbol payload that is (t+1)*symbol_bits/2 bit errors per
  // k*symbol_bits payload bits (half the bits in a bad symbol flip).
  const double bits_leaked = (t + 1.0) * symbol_bits * 0.5;
  const double payload_bits = static_cast<double>(k) * symbol_bits;
  return std::clamp(cw_err * bits_leaked / payload_bits, 0.0, 1.0);
}

}  // namespace rsf::phy
