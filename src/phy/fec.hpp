// rsf::phy — forward error correction models (PLP #4, adaptive FEC).
//
// Each FEC mode is characterised by its rate overhead, added
// encode+decode latency, and a correction model from which post-FEC
// error rates are computed analytically. The Reed–Solomon modes use
// the exact binomial tail over symbol errors; the fire-code mode is
// approximated as a short RS code. Parameters follow the IEEE 802.3
// Clause 74 (BASE-R), Clause 91 (RS 528,514 "KR4") and RS(544,514)
// "KP4" codes, the modes real 25/50/100G lanes negotiate.
#pragma once

#include <array>
#include <string_view>

#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::phy {

enum class FecScheme {
  kNone = 0,   // no correction, no overhead
  kFireCode,   // BASE-R (Clause 74): light, low-latency
  kRsKr4,      // RS(528,514), 10-bit symbols, t=7
  kRsKp4,      // RS(544,514), 10-bit symbols, t=15: heavy, high-gain
};

inline constexpr std::array<FecScheme, 4> kAllFecSchemes = {
    FecScheme::kNone, FecScheme::kFireCode, FecScheme::kRsKr4, FecScheme::kRsKp4};

[[nodiscard]] std::string_view to_string(FecScheme s);

/// Static description of one FEC mode.
struct FecSpec {
  FecScheme scheme = FecScheme::kNone;
  /// Fraction of raw lane rate consumed by parity (0 => none).
  double overhead = 0.0;
  /// Added one-way latency (encoder + decoder pipeline).
  rsf::sim::SimTime latency = rsf::sim::SimTime::zero();
  /// Codeword length in symbols and correctable symbols. n == 0 means
  /// uncoded.
  int symbol_bits = 0;
  int n = 0;
  int k = 0;
  int t = 0;

  /// Spec for a scheme. Specs are value types; callers may tweak the
  /// fields (e.g. to model future codes) before installing on a link.
  [[nodiscard]] static FecSpec of(FecScheme s);

  /// Effective payload rate through this FEC at raw rate `raw`.
  [[nodiscard]] DataRate effective_rate(DataRate raw) const {
    return raw * (1.0 - overhead);
  }

  /// Probability an n-symbol codeword is uncorrectable at lane
  /// bit-error-rate `ber`.
  [[nodiscard]] double codeword_error_prob(double ber) const;

  /// Probability a frame of `frame` payload bits is delivered with an
  /// uncorrected error (and therefore dropped / retransmitted).
  [[nodiscard]] double frame_loss_prob(double ber, DataSize frame) const;

  /// Residual bit error rate after correction; used for PLP per-lane
  /// statistics and CRC link-health pricing.
  [[nodiscard]] double post_fec_ber(double ber) const;
};

}  // namespace rsf::phy
