#include "phy/ber_profile.hpp"

#include <cmath>
#include <stdexcept>

namespace rsf::phy {

using rsf::sim::SimTime;

BerProfile constant_ber(double ber) {
  return [ber](SimTime) { return ber; };
}

BerProfile ramp_ber(double start_ber, double end_ber, SimTime from, SimTime to) {
  if (!(start_ber > 0) || !(end_ber > 0)) {
    throw std::invalid_argument("ramp_ber: BERs must be positive for a log ramp");
  }
  if (to <= from) throw std::invalid_argument("ramp_ber: to <= from");
  const double log_start = std::log10(start_ber);
  const double log_end = std::log10(end_ber);
  return [=](SimTime t) {
    if (t <= from) return start_ber;
    if (t >= to) return end_ber;
    const double f = (t - from).ratio(to - from);
    return std::pow(10.0, log_start + f * (log_end - log_start));
  };
}

BerProfile spike_ber(double base_ber, double spike, SimTime from, SimTime to) {
  if (to <= from) throw std::invalid_argument("spike_ber: to <= from");
  return [=](SimTime t) { return (t >= from && t < to) ? spike : base_ber; };
}

BerDriver::BerDriver(rsf::sim::Simulator* sim, PhysicalPlant* plant, CableId cable,
                     BerProfile profile, SimTime period)
    : sim_(sim), plant_(plant), cable_(cable), profile_(std::move(profile)), period_(period) {
  if (sim_ == nullptr || plant_ == nullptr) {
    throw std::invalid_argument("BerDriver: null simulator or plant");
  }
  if (!profile_) throw std::invalid_argument("BerDriver: empty profile");
  if (period_ <= SimTime::zero()) throw std::invalid_argument("BerDriver: period <= 0");
}

void BerDriver::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void BerDriver::stop() {
  running_ = false;
  if (pending_ != rsf::sim::kInvalidEventId) {
    sim_->cancel(pending_);
    pending_ = rsf::sim::kInvalidEventId;
  }
}

void BerDriver::tick() {
  if (!running_) return;
  plant_->set_cable_ber(cable_, profile_(sim_->now()));
  pending_ = sim_->schedule_weak_after(period_, [this] { tick(); });
}

}  // namespace rsf::phy
