// rsf::phy — individual physical lanes.
//
// A lane is one SerDes-to-SerDes bit pipe (one fibre wavelength, one
// copper pair group). Lanes have a state machine (off / training / up),
// a signalling rate, a time-varying pre-FEC bit error rate, and a power
// draw per state. PLP #3 (on/off) and PLP #5 (per-lane statistics)
// operate at this granularity.
#pragma once

#include <cstdint>
#include <string_view>

#include "phy/units.hpp"
#include "sim/time.hpp"

namespace rsf::phy {

enum class LaneState {
  kOff = 0,    // powered down
  kTraining,   // retraining after power-on or re-bundle; carries no data
  kUp,         // carrying data
};

[[nodiscard]] std::string_view to_string(LaneState s);

/// Power draw of one lane per state, in watts. Defaults follow
/// published 25G SerDes figures (~1.1 W active including driver).
struct LanePowerParams {
  double active_w = 1.1;
  double training_w = 1.1;  // training drives the line at full swing
  double off_w = 0.05;      // leakage + wake logic

  [[nodiscard]] double watts(LaneState s) const {
    switch (s) {
      case LaneState::kOff:
        return off_w;
      case LaneState::kTraining:
        return training_w;
      case LaneState::kUp:
        return active_w;
    }
    return 0.0;
  }
};

/// PLP #5 — per-lane statistics the control plane can query.
struct LaneStats {
  std::uint64_t bits_carried = 0;
  std::uint64_t corrected_codewords = 0;
  std::uint64_t uncorrected_codewords = 0;
  double observed_pre_fec_ber = 0.0;
  rsf::sim::SimTime total_up_time = rsf::sim::SimTime::zero();
  rsf::sim::SimTime total_training_time = rsf::sim::SimTime::zero();
};

class Lane {
 public:
  Lane(DataRate rate, LanePowerParams power, double pre_fec_ber)
      : rate_(rate), power_(power), pre_fec_ber_(pre_fec_ber) {}

  [[nodiscard]] DataRate rate() const { return rate_; }
  [[nodiscard]] LaneState state() const { return state_; }
  [[nodiscard]] bool is_up() const { return state_ == LaneState::kUp && !failed_; }
  /// A hard-failed lane (broken fibre, dead SerDes). Training cannot
  /// revive it; only repair() (a physical intervention) clears it.
  [[nodiscard]] bool is_failed() const { return failed_; }
  [[nodiscard]] double power_watts() const { return power_.watts(state_); }
  [[nodiscard]] const LanePowerParams& power_params() const { return power_; }

  /// Current environmental pre-FEC BER on this lane.
  [[nodiscard]] double pre_fec_ber() const { return pre_fec_ber_; }
  void set_pre_fec_ber(double ber) { pre_fec_ber_ = ber; }

  /// State transitions. The *timing* of transitions (training takes
  /// tens of microseconds) is enforced by the PLP engine; the lane
  /// object only validates legality. Failed lanes ignore training
  /// transitions (the PHY keeps trying, the lane stays dark).
  void begin_training();
  void complete_training();
  void power_off();

  /// Hard failure injection and (out-of-band) repair.
  void fail();
  void repair();

  [[nodiscard]] const LaneStats& stats() const { return stats_; }
  LaneStats& mutable_stats() { return stats_; }

 private:
  DataRate rate_;
  LanePowerParams power_;
  double pre_fec_ber_;
  LaneState state_ = LaneState::kOff;
  bool failed_ = false;
  LaneStats stats_;
};

}  // namespace rsf::phy
