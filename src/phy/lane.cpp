#include "phy/lane.hpp"

#include <stdexcept>

namespace rsf::phy {

std::string_view to_string(LaneState s) {
  switch (s) {
    case LaneState::kOff:
      return "off";
    case LaneState::kTraining:
      return "training";
    case LaneState::kUp:
      return "up";
  }
  return "?";
}

void Lane::begin_training() {
  if (failed_) return;  // the PHY retrains in vain; the lane stays dark
  // Training can be (re)entered from any state: power-on (off->training)
  // or retrain after a re-bundle (up->training).
  state_ = LaneState::kTraining;
}

void Lane::complete_training() {
  if (failed_) return;
  if (state_ != LaneState::kTraining) {
    throw std::logic_error("Lane::complete_training: lane not training");
  }
  state_ = LaneState::kUp;
}

void Lane::power_off() {
  if (!failed_) state_ = LaneState::kOff;
}

void Lane::fail() {
  failed_ = true;
  state_ = LaneState::kOff;
}

void Lane::repair() { failed_ = false; }

}  // namespace rsf::phy
