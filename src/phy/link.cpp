#include "phy/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "phy/plant.hpp"

namespace rsf::phy {

using rsf::sim::SimTime;

NodeId LogicalLink::other_end(NodeId n) const {
  if (n == end_a_) return end_b_;
  if (n == end_b_) return end_a_;
  throw std::invalid_argument("LogicalLink::other_end: node not an endpoint");
}

DataRate LogicalLink::raw_rate() const {
  if (raw_rate_valid_) return raw_rate_cache_;
  if (segments_.empty()) return DataRate::zero();
  const LinkSegment& seg = segments_.front();
  const Cable& c = plant_->cable(seg.cable);
  DataRate r = DataRate::zero();
  for (int lane : seg.lanes) r = r + c.lane(lane).rate();
  raw_rate_cache_ = r;
  raw_rate_valid_ = true;
  return r;
}

DataRate LogicalLink::effective_rate() const {
  if (eff_rate_valid_) return eff_rate_cache_;
  eff_rate_cache_ = fec_.effective_rate(raw_rate());
  eff_rate_valid_ = true;
  return eff_rate_cache_;
}

SimTime LogicalLink::propagation_delay() const {
  if (prop_valid_) return prop_cache_;
  SimTime t = SimTime::zero();
  for (const LinkSegment& seg : segments_) {
    t += plant_->cable(seg.cable).propagation_delay();
  }
  if (bypass_joints() > 0) {
    t += plant_->config().bypass_latency * static_cast<std::int64_t>(bypass_joints());
  }
  prop_cache_ = t;
  prop_valid_ = true;
  return t;
}

SimTime LogicalLink::serialization_delay(DataSize frame) const {
  return transmission_time(frame, effective_rate());
}

SimTime LogicalLink::one_way_latency(DataSize frame) const {
  return serialization_delay(frame) + propagation_delay() + fec_.latency;
}

double LogicalLink::worst_pre_fec_ber() const {
  double worst = 0.0;
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    for (int lane : seg.lanes) worst = std::max(worst, c.lane(lane).pre_fec_ber());
  }
  return worst;
}

double LogicalLink::frame_loss_prob(DataSize frame) const {
  // A frame crosses every segment; an uncorrectable error on any
  // segment loses it. Segments share the FEC config, so combine the
  // per-segment loss probabilities (worst-lane BER per segment).
  // The FEC tail sum is expensive (lgamma loop) and its inputs repeat
  // hop after hop, so memoize it per (ber, frame) — a fresh BER simply
  // misses the memo.
  double survive = 1.0;
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    double seg_ber = 0.0;
    for (int lane : seg.lanes) seg_ber = std::max(seg_ber, c.lane(lane).pre_fec_ber());
    double seg_loss = -1.0;
    for (const LossMemo& m : loss_memo_) {
      if (m.frame_bits == frame.bit_count() && m.ber == seg_ber) {
        seg_loss = m.loss;
        break;
      }
    }
    if (seg_loss < 0.0) {
      seg_loss = fec_.frame_loss_prob(seg_ber, frame);
      loss_memo_[loss_memo_next_] = LossMemo{seg_ber, frame.bit_count(), seg_loss};
      loss_memo_next_ = (loss_memo_next_ + 1) % loss_memo_.size();
    }
    survive *= 1.0 - seg_loss;
  }
  return 1.0 - survive;
}

double LogicalLink::post_fec_ber() const { return fec_.post_fec_ber(worst_pre_fec_ber()); }

double LogicalLink::power_watts() const {
  double w = 0.0;
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    for (int lane : seg.lanes) w += c.lane(lane).power_watts();
  }
  w += plant_->config().bypass_power_w * bypass_joints();
  return w;
}

bool LogicalLink::compute_ready() const {
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    for (int lane : seg.lanes) {
      if (!c.lane(lane).is_up()) return false;
    }
  }
  return !segments_.empty();
}

}  // namespace rsf::phy
