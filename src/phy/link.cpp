#include "phy/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "phy/plant.hpp"

namespace rsf::phy {

using rsf::sim::SimTime;

NodeId LogicalLink::other_end(NodeId n) const {
  if (n == end_a_) return end_b_;
  if (n == end_b_) return end_a_;
  throw std::invalid_argument("LogicalLink::other_end: node not an endpoint");
}

DataRate LogicalLink::raw_rate() const {
  if (segments_.empty()) return DataRate::zero();
  const LinkSegment& seg = segments_.front();
  const Cable& c = plant_->cable(seg.cable);
  DataRate r = DataRate::zero();
  for (int lane : seg.lanes) r = r + c.lane(lane).rate();
  return r;
}

DataRate LogicalLink::effective_rate() const { return fec_.effective_rate(raw_rate()); }

SimTime LogicalLink::propagation_delay() const {
  SimTime t = SimTime::zero();
  for (const LinkSegment& seg : segments_) {
    t += plant_->cable(seg.cable).propagation_delay();
  }
  if (bypass_joints() > 0) {
    t += plant_->config().bypass_latency * static_cast<std::int64_t>(bypass_joints());
  }
  return t;
}

SimTime LogicalLink::serialization_delay(DataSize frame) const {
  return transmission_time(frame, effective_rate());
}

SimTime LogicalLink::one_way_latency(DataSize frame) const {
  return serialization_delay(frame) + propagation_delay() + fec_.latency;
}

double LogicalLink::worst_pre_fec_ber() const {
  double worst = 0.0;
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    for (int lane : seg.lanes) worst = std::max(worst, c.lane(lane).pre_fec_ber());
  }
  return worst;
}

double LogicalLink::frame_loss_prob(DataSize frame) const {
  // A frame crosses every segment; an uncorrectable error on any
  // segment loses it. Segments share the FEC config, so combine the
  // per-segment loss probabilities (worst-lane BER per segment).
  double survive = 1.0;
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    double seg_ber = 0.0;
    for (int lane : seg.lanes) seg_ber = std::max(seg_ber, c.lane(lane).pre_fec_ber());
    survive *= 1.0 - fec_.frame_loss_prob(seg_ber, frame);
  }
  return 1.0 - survive;
}

double LogicalLink::post_fec_ber() const { return fec_.post_fec_ber(worst_pre_fec_ber()); }

double LogicalLink::power_watts() const {
  double w = 0.0;
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    for (int lane : seg.lanes) w += c.lane(lane).power_watts();
  }
  w += plant_->config().bypass_power_w * bypass_joints();
  return w;
}

bool LogicalLink::ready() const {
  for (const LinkSegment& seg : segments_) {
    const Cable& c = plant_->cable(seg.cable);
    for (int lane : seg.lanes) {
      if (!c.lane(lane).is_up()) return false;
    }
  }
  return !segments_.empty();
}

}  // namespace rsf::phy
