#include "phy/medium.hpp"

namespace rsf::phy {

using rsf::sim::SimTime;

std::string_view to_string(Medium m) {
  switch (m) {
    case Medium::kFiber:
      return "fiber";
    case Medium::kCopper:
      return "copper";
    case Medium::kFreeSpaceOptic:
      return "free-space";
  }
  return "?";
}

SimTime propagation_per_meter(Medium m) {
  switch (m) {
    case Medium::kFiber:
      return SimTime::picoseconds(5000);  // n ~ 1.5
    case Medium::kCopper:
      return SimTime::picoseconds(4300);
    case Medium::kFreeSpaceOptic:
      return SimTime::picoseconds(3336);  // c in vacuum
  }
  return SimTime::picoseconds(5000);
}

SimTime propagation_delay(Medium m, double meters) {
  return propagation_per_meter(m) * meters;
}

}  // namespace rsf::phy
