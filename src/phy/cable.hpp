// rsf::phy — physical cables.
//
// A cable is the fixed physical resource between two adjacent nodes:
// a bundle of lanes over one medium with one length. Cables never
// change at runtime — reconfiguration (splitting, bypassing) rearranges
// how *logical links* use cable lanes, not the cables themselves.
#pragma once

#include <stdexcept>
#include <vector>

#include "phy/lane.hpp"
#include "phy/medium.hpp"
#include "phy/types.hpp"

namespace rsf::phy {

class Cable {
 public:
  Cable(CableId id, NodeId end_a, NodeId end_b, double length_m, Medium medium,
        int lane_count, DataRate lane_rate, LanePowerParams lane_power,
        double initial_ber)
      : id_(id), end_a_(end_a), end_b_(end_b), length_m_(length_m), medium_(medium) {
    if (end_a == end_b) throw std::invalid_argument("Cable: self-loop");
    if (lane_count <= 0) throw std::invalid_argument("Cable: need >= 1 lane");
    if (length_m <= 0) throw std::invalid_argument("Cable: non-positive length");
    lanes_.reserve(static_cast<std::size_t>(lane_count));
    for (int i = 0; i < lane_count; ++i) {
      lanes_.emplace_back(lane_rate, lane_power, initial_ber);
    }
  }

  [[nodiscard]] CableId id() const { return id_; }
  [[nodiscard]] NodeId end_a() const { return end_a_; }
  [[nodiscard]] NodeId end_b() const { return end_b_; }
  [[nodiscard]] double length_m() const { return length_m_; }
  [[nodiscard]] Medium medium() const { return medium_; }
  [[nodiscard]] int lane_count() const { return static_cast<int>(lanes_.size()); }

  [[nodiscard]] bool connects(NodeId n) const { return n == end_a_ || n == end_b_; }
  /// The far end relative to `n`; throws if `n` is not an endpoint.
  [[nodiscard]] NodeId other_end(NodeId n) const {
    if (n == end_a_) return end_b_;
    if (n == end_b_) return end_a_;
    throw std::invalid_argument("Cable::other_end: node not an endpoint");
  }

  [[nodiscard]] Lane& lane(int i) { return lanes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const Lane& lane(int i) const { return lanes_.at(static_cast<std::size_t>(i)); }

  [[nodiscard]] rsf::sim::SimTime propagation_delay() const {
    return rsf::phy::propagation_delay(medium_, length_m_);
  }

  /// Total electrical power of all lanes in their current states.
  [[nodiscard]] double power_watts() const {
    double w = 0;
    for (const Lane& l : lanes_) w += l.power_watts();
    return w;
  }

 private:
  CableId id_;
  NodeId end_a_;
  NodeId end_b_;
  double length_m_;
  Medium medium_;
  std::vector<Lane> lanes_;
};

}  // namespace rsf::phy
