// rsf::phy — shared identifier types for the physical plant.
#pragma once

#include <cstdint>
#include <functional>

namespace rsf::phy {

/// A node (endpoint) in the rack: a stripped-down component board
/// (compute, NVMe, DRAM pool...) with a switching element and PHY ports.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// A physical cable (bundle of lanes) between two adjacent nodes.
using CableId = std::uint32_t;
inline constexpr CableId kInvalidCable = 0xFFFFFFFFu;

/// A logical link: what routing sees. May span several cables joined
/// by physical-layer bypasses.
using LinkId = std::uint32_t;
inline constexpr LinkId kInvalidLink = 0xFFFFFFFFu;

/// One lane within one cable.
struct LaneRef {
  CableId cable = kInvalidCable;
  int lane = -1;

  friend bool operator==(const LaneRef&, const LaneRef&) = default;
  friend auto operator<=>(const LaneRef&, const LaneRef&) = default;
};

}  // namespace rsf::phy

template <>
struct std::hash<rsf::phy::LaneRef> {
  std::size_t operator()(const rsf::phy::LaneRef& r) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(r.cable) << 32) ^
                                      static_cast<std::uint32_t>(r.lane));
  }
};
