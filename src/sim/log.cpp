#include "sim/log.hpp"

#include <cstdio>
#include <mutex>

#include "sim/simulator.hpp"

namespace rsf::sim {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace {

struct GlobalLogState {
  std::mutex mu;
  LogLevel level = LogLevel::kWarn;
  LogConfig::Sink sink;  // empty => stderr
};

GlobalLogState& state() {
  static GlobalLogState s;
  return s;
}

}  // namespace

LogLevel LogConfig::level() {
  std::lock_guard lock(state().mu);
  return state().level;
}

void LogConfig::set_level(LogLevel level) {
  std::lock_guard lock(state().mu);
  state().level = level;
}

void LogConfig::set_sink(Sink sink) {
  std::lock_guard lock(state().mu);
  state().sink = std::move(sink);
}

void LogConfig::reset_sink() {
  std::lock_guard lock(state().mu);
  state().sink = nullptr;
}

void LogConfig::emit(LogLevel level, std::string_view line) {
  Sink sink_copy;
  {
    std::lock_guard lock(state().mu);
    sink_copy = state().sink;
  }
  if (sink_copy) {
    sink_copy(level, line);
  } else {
    std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()), line.data());
  }
}

void Logger::format_prefix(std::ostream& os, LogLevel level) const {
  os << '[';
  if (sim_ != nullptr) {
    os << sim_->now().to_string();
  } else {
    os << "--";
  }
  os << "] [" << to_string(level) << "] [" << tag_ << "] ";
}

}  // namespace rsf::sim
