#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace rsf::sim {

EventId Simulator::schedule_impl(SimTime when, EventHandler handler, bool weak) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: time " + when.to_string() +
                           " precedes now " + now_.to_string());
  }
  if (!handler) {
    throw std::invalid_argument("Simulator::schedule_at: empty handler");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(handler)});
  (weak ? weak_ids_ : strong_ids_).insert(id);
  return id;
}

EventId Simulator::schedule_at(SimTime when, EventHandler handler) {
  return schedule_impl(when, std::move(handler), /*weak=*/false);
}

EventId Simulator::schedule_weak_at(SimTime when, EventHandler handler) {
  return schedule_impl(when, std::move(handler), /*weak=*/true);
}

bool Simulator::cancel(EventId id) {
  // An id absent from both sets has either fired, been cancelled
  // already, or never existed — all report false.
  return strong_ids_.erase(id) > 0 || weak_ids_.erase(id) > 0;
}

bool Simulator::pop_next(Event& out, bool* was_weak) {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the handler must be copied
    // out before pop. Handlers are small (std::function) so this is
    // acceptable on the event path.
    Event ev = queue_.top();
    queue_.pop();
    bool weak = false;
    if (strong_ids_.erase(ev.id) == 0) {
      if (weak_ids_.erase(ev.id) == 0) continue;  // cancelled tombstone
      weak = true;
    }
    if (was_weak != nullptr) *was_weak = weak;
    out = std::move(ev);
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(SimTime until) {
  const bool unbounded = until == SimTime::infinity();
  std::size_t count = 0;
  Event ev;
  while (!queue_.empty() && queue_.top().time <= until) {
    // With no horizon, only weak events left means we are done — they
    // exist to serve foreground work, not to be it.
    if (unbounded && strong_ids_.empty()) break;
    bool was_weak = false;
    if (!pop_next(ev, &was_weak)) break;
    if (ev.time > until) {
      // The heap top was a tombstone hiding a live event beyond the
      // horizon; restore it untouched.
      (was_weak ? weak_ids_ : strong_ids_).insert(ev.id);
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.time;
    ++executed_;
    ++count;
    ev.handler();
  }
  if (idle() && !unbounded && now_ < until) {
    now_ = until;
  }
  return count;
}

std::size_t Simulator::run_events(std::size_t max_events) {
  std::size_t count = 0;
  Event ev;
  while (count < max_events && pop_next(ev)) {
    now_ = ev.time;
    ++executed_;
    ++count;
    ev.handler();
  }
  return count;
}

void Simulator::fast_forward_to(SimTime when) {
  if (!strong_ids_.empty() || !weak_ids_.empty()) {
    throw std::logic_error("Simulator::fast_forward_to: events pending");
  }
  if (when < now_) {
    throw std::logic_error("Simulator::fast_forward_to: cannot rewind");
  }
  now_ = when;
}

}  // namespace rsf::sim
