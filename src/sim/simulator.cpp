#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace rsf::sim {

Simulator::Simulator() {
  heads_.fill(kNilIndex);
  batch_.reserve(16);
}

void Simulator::throw_empty_handler() {
  throw std::invalid_argument("Simulator::schedule_at: empty handler");
}

void Simulator::throw_past_time(SimTime when) const {
  throw std::logic_error("Simulator::schedule_at: time " + when.to_string() +
                         " precedes now " + now_.to_string());
}

// Overflow-to-ring migration only: the record already carries a full
// header, it just needs a slab slot and a bucket link.
void Simulator::insert_record(const EventRecord& rec) {
  const std::int64_t rel = rec.time.ps() - base_ps_;
  if (rel >= kWindowPs) {
    overflow_.push_back(rec);
    return;
  }
  const auto b = static_cast<std::size_t>(rel >> kBucketShift);
  const std::uint32_t index = claim_record_index();
  records_[index] = rec;
  record_next_[index] = heads_[b];
  heads_[b] = index;
  occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  if ((b >> 6) < scan_word_) scan_word_ = b >> 6;
  sole_ring_index_ = ring_count_ == 0 ? index : kNilIndex;
  ++ring_count_;
}

bool Simulator::cancel(EventId id) {
  const std::uint64_t slot_plus_1 = id >> 32;
  if (slot_plus_1 == 0) return false;
  const auto index = static_cast<std::uint32_t>(slot_plus_1 - 1);
  const auto generation = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (!slots_.is_live(index, generation)) return false;
  --(slots_[index].weak ? weak_count_ : strong_count_);
  slots_.recycle(index);
  return true;
}

bool Simulator::next_batch(SimTime until) {
  for (;;) {
    if (ring_count_ == 0 && !promote_overflow(until)) return false;
    // Sole-record fast path: with exactly one record in the ring it is
    // the earliest by definition and the head (and only node) of its
    // bucket — no scan, no walk.
    if (sole_ring_index_ != kNilIndex) {
      const std::uint32_t index = sole_ring_index_;
      sole_ring_index_ = kNilIndex;
      const EventRecord& rec = records_[index];
      const auto b =
          static_cast<std::size_t>((rec.time.ps() - base_ps_) >> kBucketShift);
      if (!slots_.is_live(rec.slot, rec.generation)) {
        // A tombstone: reclaim it here and fall back around the loop.
        heads_[b] = kNilIndex;
        occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
        free_record_index(index);
        ring_count_ = 0;
        continue;
      }
      if (rec.time > until) {
        sole_ring_index_ = index;  // still pending; keep the hint
        return false;
      }
      heads_[b] = kNilIndex;
      occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      ring_count_ = 0;
      batch_.clear();
      batch_cursor_ = 0;
      batch_.push_back(index);
      now_ = rec.time;
      batch_time_ = rec.time;
      return true;
    }
    std::size_t word = scan_word_;
    while (occupied_[word] == 0) ++word;
    scan_word_ = word;
    const std::size_t b =
        (word << 6) + static_cast<std::size_t>(std::countr_zero(occupied_[word]));
    // Pass 1: unlink tombstones, find the earliest live time.
    SimTime min_time = SimTime::infinity();
    std::uint32_t index = heads_[b];
    std::uint32_t prev = kNilIndex;
    while (index != kNilIndex) {
      const std::uint32_t next = record_next_[index];
      const EventRecord& rec = records_[index];
      if (!slots_.is_live(rec.slot, rec.generation)) {
        (prev == kNilIndex ? heads_[b] : record_next_[prev]) = next;
        free_record_index(index);
        --ring_count_;
      } else {
        if (rec.time < min_time) min_time = rec.time;
        prev = index;
      }
      index = next;
    }
    if (heads_[b] == kNilIndex) {
      occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      continue;
    }
    if (min_time > until) return false;
    batch_.clear();
    batch_cursor_ = 0;
    if (record_next_[heads_[b]] == kNilIndex) {
      // Lone record in the bucket: it is the whole batch.
      batch_.push_back(heads_[b]);
      heads_[b] = kNilIndex;
      occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      --ring_count_;
      now_ = min_time;
      batch_time_ = min_time;
      return true;
    }
    // Pass 2: extract every record at min_time into the batch (their
    // slab indices; the records stay in place until drained).
    index = heads_[b];
    prev = kNilIndex;
    while (index != kNilIndex) {
      const std::uint32_t next = record_next_[index];
      if (records_[index].time == min_time) {
        batch_.push_back(index);
        (prev == kNilIndex ? heads_[b] : record_next_[prev]) = next;
        --ring_count_;
      } else {
        prev = index;
      }
      index = next;
    }
    if (heads_[b] == kNilIndex) {
      occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    if (batch_.size() > 1) {
      std::sort(batch_.begin(), batch_.end(), [this](std::uint32_t a, std::uint32_t c) {
        return records_[a].seq < records_[c].seq;
      });
    }
    now_ = min_time;
    batch_time_ = min_time;
    return true;
  }
}

bool Simulator::promote_overflow(SimTime until) {
  // The ring is empty. Sweep overflow tombstones and find the earliest
  // live event without committing to anything.
  SimTime min_time = SimTime::infinity();
  std::size_t i = 0;
  while (i < overflow_.size()) {
    const EventRecord& rec = overflow_[i];
    if (!slots_.is_live(rec.slot, rec.generation)) {
      overflow_[i] = overflow_.back();
      overflow_.pop_back();
      continue;
    }
    if (rec.time < min_time) min_time = rec.time;
    ++i;
  }
  if (overflow_.empty() || min_time > until) return false;
  // Committed to executing at min_time: re-anchor the window there and
  // migrate everything that now fits. Peeking alone must not re-anchor:
  // base_ps_ may never pass now_, or a schedule between them would
  // compute a negative bucket.
  base_ps_ = (min_time.ps() >> kBucketShift) << kBucketShift;
  i = 0;
  while (i < overflow_.size()) {
    if (overflow_[i].time.ps() - base_ps_ < kWindowPs) {
      insert_record(overflow_[i]);
      overflow_[i] = overflow_.back();
      overflow_.pop_back();
      continue;
    }
    ++i;
  }
  return true;
}

std::size_t Simulator::drain_one() {
  const std::uint32_t index = batch_[batch_cursor_++];
  // `stored` stays valid until a handler runs: freeing the slab index
  // only touches the free list, and everything the handler could need
  // is copied out below before invocation.
  const EventRecord& stored = records_[index];
  const std::uint32_t slot = stored.slot;
  const std::uint32_t generation = stored.generation;
  void (*const invoke)(void*) = stored.invoke;
  free_record_index(index);
  if (!slots_.is_live(slot, generation)) {
    return 0;  // cancelled while batched; cancel already freed the slot
  }
  --(slots_[slot].weak ? weak_count_ : strong_count_);
  ++executed_;
  if (invoke != nullptr) {
    slots_.recycle(slot);
    // The trampoline copies the functor off the slab before running
    // it; no user code touches the record between here and that copy.
    invoke(const_cast<std::byte*>(stored.payload));
  } else {
    // Move the handler out before recycling and invoking: the slot is
    // recycled first (so a handler cancelling its own id sees false,
    // and a chained reschedule reuses it), and the handler may grow
    // the pool mid-call.
    EventHandler fn = std::move(slots_[slot].cold);
    slots_.recycle(slot);
    fn();
  }
  return 1;
}

// Flattened: the per-event loop must not pay call prologues for
// next_batch/drain_one on every event.
__attribute__((flatten)) std::size_t Simulator::run_until(SimTime until) {
  const bool unbounded = until == SimTime::infinity();
  std::size_t count = 0;
  for (;;) {
    if (unbounded && strong_count_ == 0) break;
    if (batch_cursor_ < batch_.size()) {
      if (batch_time_ > until) break;  // resumed batch beyond this horizon
    } else if (!next_batch(until)) {
      break;
    }
    count += drain_one();
  }
  if (strong_count_ == 0 && !unbounded && now_ < until) {
    now_ = until;
  }
  return count;
}

__attribute__((flatten)) std::size_t Simulator::run_events(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events) {
    if (batch_cursor_ == batch_.size() && !next_batch(SimTime::infinity())) break;
    count += drain_one();
  }
  return count;
}

Simulator::PendingKey Simulator::next_key() const {
  PendingKey best = PendingKey::infinite();
  // An in-flight batch resumes first: any live remainder runs at
  // batch_time_, which is <= every still-queued time, and the batch is
  // seq-sorted, so the first live record from the cursor is minimal.
  for (std::size_t c = batch_cursor_; c < batch_.size(); ++c) {
    const EventRecord& rec = records_[batch_[c]];
    if (slots_.is_live(rec.slot, rec.generation)) return {batch_time_, rec.seq};
  }
  // Ring scan, earliest occupied bucket first. Buckets partition the
  // window by time, so the first bucket holding a live record contains
  // the ring minimum (and every record at that time — one time maps to
  // one bucket — so the min seq is found in the same walk). Tombstone-
  // only buckets are skipped, not swept — this is a const peek;
  // next_batch() reclaims them.
  if (ring_count_ != 0) {
    for (std::size_t word = scan_word_; word < occupied_.size(); ++word) {
      std::uint64_t bits = occupied_[word];
      while (bits != 0) {
        const auto b = (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        for (std::uint32_t index = heads_[b]; index != kNilIndex;
             index = record_next_[index]) {
          const EventRecord& rec = records_[index];
          if (slots_.is_live(rec.slot, rec.generation) &&
              PendingKey{rec.time, rec.seq} < best) {
            best = {rec.time, rec.seq};
          }
        }
        if (best.time != SimTime::infinity()) return best;
      }
    }
  }
  // Overflow only matters when the ring has no live record: overflow
  // times sit beyond the window, hence beyond every ring time.
  for (const EventRecord& rec : overflow_) {
    if (slots_.is_live(rec.slot, rec.generation) &&
        PendingKey{rec.time, rec.seq} < best) {
      best = {rec.time, rec.seq};
    }
  }
  return best;
}

void Simulator::fast_forward_to(SimTime when) {
  if (strong_count_ != 0 || weak_count_ != 0) {
    throw std::logic_error("Simulator::fast_forward_to: events pending");
  }
  if (when < now_) {
    throw std::logic_error("Simulator::fast_forward_to: cannot rewind");
  }
  // Everything still queued is a tombstone (no live events, and a
  // tombstone owns nothing — cancel freed its slot and handler). Drop
  // them all and re-anchor the ring at the new clock.
  heads_.fill(kNilIndex);
  batch_.clear();
  batch_cursor_ = 0;
  overflow_.clear();
  records_.clear();
  record_next_.clear();
  record_free_.clear();
  record_spare_ = kNilIndex;
  occupied_.fill(0);
  ring_count_ = 0;
  sole_ring_index_ = kNilIndex;
  now_ = when;
  base_ps_ = (when.ps() >> kBucketShift) << kBucketShift;
}

}  // namespace rsf::sim
