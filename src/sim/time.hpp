// rsf::sim — simulation time.
//
// All simulation time is kept as a signed 64-bit count of picoseconds.
// Picosecond resolution lets us represent sub-nanosecond artefacts
// (serialization of a single byte at 100 Gb/s is 80 ps) while still
// covering ~106 days of simulated time, far beyond any experiment here.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>
#include <string>

namespace rsf::sim {

/// A point in simulated time, or a duration, counted in picoseconds.
///
/// SimTime is deliberately a strong type (not a bare integer) so that
/// times cannot be silently mixed with byte counts, lane counts, etc.
/// Arithmetic is closed over the type: the difference of two points is
/// a duration and both share the representation.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Prefer these over the raw-picosecond factory.
  [[nodiscard]] static constexpr SimTime picoseconds(std::int64_t ps) { return SimTime(ps); }
  [[nodiscard]] static constexpr SimTime nanoseconds(double ns) {
    return SimTime(static_cast<std::int64_t>(ns * 1e3));
  }
  [[nodiscard]] static constexpr SimTime microseconds(double us) {
    return SimTime(static_cast<std::int64_t>(us * 1e6));
  }
  [[nodiscard]] static constexpr SimTime milliseconds(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1e9));
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e12));
  }

  /// Zero duration / simulation epoch.
  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }
  /// A time later than every representable event; useful as a sentinel.
  [[nodiscard]] static constexpr SimTime infinity() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t ps() const { return ps_; }
  [[nodiscard]] constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    ps_ += rhs.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ps_ -= rhs.ps_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime(a.ps_ + b.ps_); }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime(a.ps_ - b.ps_); }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime(a.ps_ * k); }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime(k * a.ps_); }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(a.ps_) * k));
  }
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) { return a.ps_ / b.ps_; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime(a.ps_ / k); }

  /// Ratio of two durations as a double (e.g. utilisation computations).
  [[nodiscard]] constexpr double ratio(SimTime denom) const {
    return static_cast<double>(ps_) / static_cast<double>(denom.ps_);
  }

  /// Human-readable rendering with an auto-selected unit, e.g. "12.50us".
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

namespace literals {
constexpr SimTime operator""_ps(unsigned long long v) {
  return SimTime::picoseconds(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ns(unsigned long long v) {
  return SimTime::picoseconds(static_cast<std::int64_t>(v) * 1000);
}
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::picoseconds(static_cast<std::int64_t>(v) * 1000 * 1000);
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::picoseconds(static_cast<std::int64_t>(v) * 1000 * 1000 * 1000);
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::picoseconds(static_cast<std::int64_t>(v) * 1000 * 1000 * 1000 * 1000);
}
}  // namespace literals

}  // namespace rsf::sim
