// rsf::sim — the discrete-event simulation kernel.
//
// A Simulator owns a future-event set (binary heap) and the simulation
// clock. Components schedule closures at absolute or relative times;
// run() drains events in (time, insertion) order. The kernel is
// single-threaded: determinism is a design requirement because every
// experiment in the benchmark suite must be re-runnable bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace rsf::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at zero.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `handler` to run at absolute time `when`.
  /// `when` must not precede now(); scheduling in the past is a logic
  /// error and throws.
  EventId schedule_at(SimTime when, EventHandler handler);

  /// Schedule `handler` to run `delay` after the current time.
  EventId schedule_after(SimTime delay, EventHandler handler) {
    return schedule_at(now_ + delay, std::move(handler));
  }

  /// Weak events do not keep the simulation alive: run_until() with no
  /// horizon stops once only weak events remain. Periodic background
  /// activities (controller epochs, BER drivers, watchdogs) schedule
  /// weak so "run until the workload drains" terminates naturally.
  EventId schedule_weak_at(SimTime when, EventHandler handler);
  EventId schedule_weak_after(SimTime delay, EventHandler handler) {
    return schedule_weak_at(now_ + delay, std::move(handler));
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// pending (it will no longer fire); false if it already fired, was
  /// already cancelled, or never existed. Cancellation is O(1): the
  /// event is tombstoned and skipped when popped.
  bool cancel(EventId id);

  /// Run until the event set is empty or `until` is reached (events at
  /// exactly `until` DO fire). Returns the number of events processed.
  std::size_t run_until(SimTime until = SimTime::infinity());

  /// Run at most `max_events` events. Useful to bound runaway loops in
  /// tests. Returns the number processed.
  std::size_t run_events(std::size_t max_events);

  /// True if no live *strong* events remain (weak events do not count).
  [[nodiscard]] bool idle() const { return strong_ids_.empty(); }

  /// Number of live pending strong events.
  [[nodiscard]] std::size_t pending() const { return strong_ids_.size(); }
  /// Number of live pending weak events.
  [[nodiscard]] std::size_t pending_weak() const { return weak_ids_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Advance the clock with no event processing. Only valid while idle;
  /// used by tests to set up mid-run scenarios.
  void fast_forward_to(SimTime when);

 private:
  struct Compare {
    bool operator()(const Event& a, const Event& b) const { return a > b; }
  };

  bool pop_next(Event& out, bool* was_weak = nullptr);
  EventId schedule_impl(SimTime when, EventHandler handler, bool weak);

  SimTime now_ = SimTime::zero();
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Compare> queue_;
  // Ids of live (scheduled, not yet fired, not cancelled) events,
  // partitioned by strength. An id present in the heap but in neither
  // set has been cancelled and is skipped on pop.
  std::unordered_set<EventId> strong_ids_;
  std::unordered_set<EventId> weak_ids_;
  std::uint64_t executed_ = 0;
};

}  // namespace rsf::sim
