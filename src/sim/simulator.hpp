// rsf::sim — the discrete-event simulation kernel.
//
// A Simulator owns the future-event set and the simulation clock.
// Components schedule closures at absolute or relative times; run()
// drains events in (time, insertion-sequence) order. The kernel is
// single-threaded: determinism is a design requirement because every
// experiment in the benchmark suite must be re-runnable bit-for-bit.
//
// Internally the future-event set is a calendar queue of trivially
// copyable EventRecords (see event.hpp):
//
//  - **Calendar ring.** 1024 buckets of 2^12 ps (~4 ns) cover a ~4.2 µs
//    window starting at base_ps_; scheduling into the window is an
//    index computation and a push onto that bucket's intrusive list.
//    Records live in one grow-only slab (recycled through a free
//    list), so a bucket is just a head index — constructing a
//    Simulator allocates nothing and steady-state scheduling reuses
//    slab slots. Events beyond the window land in an overflow list
//    and migrate into the ring when the window re-anchors past them
//    (watchdogs, far-future epochs).
//  - **Liveness slots.** Each pending event claims a dense
//    core::SlotPool slot; its EventId packs {slot+1, generation}, so
//    cancel() and liveness checks are an index + generation compare —
//    no hashing. Cancelled events leave tombstone records that are
//    reclaimed when the queue next touches their bucket.
//  - **Batch drain.** run_*() extracts every record sharing the
//    earliest pending timestamp as one batch, sorts it by insertion
//    sequence, advances the clock once, and fires the batch in order.
//    Handlers scheduling at now() extend the drain with a follow-on
//    batch at the same instant.
//
// The (time, insertion-sequence) total order is what callers observe;
// bucket layout and batch boundaries are invisible to it. Handlers
// must not re-enter run_until()/run_events().
//
// The record/queue split is deliberate groundwork for conservative-
// PDES sharding: a shard is this queue plus its slot pool, and records
// already move by memcpy.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/slot_pool.hpp"
#include "sim/event.hpp"
#include "sim/time.hpp"

namespace rsf::sim {

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at zero.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule a callable to run at absolute time `when`.
  /// `when` must not precede now(); scheduling in the past is a logic
  /// error and throws. Small trivially copyable callables are stored
  /// inline in the event record (no allocation); anything else takes
  /// the cold EventHandler arm. An empty handler throws.
  template <typename F>
  EventId schedule_at(SimTime when, F&& f) {
    return schedule_arm(when, std::forward<F>(f), /*weak=*/false);
  }

  /// Schedule a callable to run `delay` after the current time.
  template <typename F>
  EventId schedule_after(SimTime delay, F&& f) {
    return schedule_arm(now_ + delay, std::forward<F>(f), /*weak=*/false);
  }

  /// Weak events do not keep the simulation alive: run_until() with no
  /// horizon stops once only weak events remain. Periodic background
  /// activities (controller epochs, BER drivers, watchdogs) schedule
  /// weak so "run until the workload drains" terminates naturally.
  template <typename F>
  EventId schedule_weak_at(SimTime when, F&& f) {
    return schedule_arm(when, std::forward<F>(f), /*weak=*/true);
  }
  template <typename F>
  EventId schedule_weak_after(SimTime delay, F&& f) {
    return schedule_arm(now_ + delay, std::forward<F>(f), /*weak=*/true);
  }

  /// Cancel a previously scheduled event. Returns true if the event was
  /// pending (it will no longer fire); false if it already fired, was
  /// already cancelled, or never existed. Cancellation is O(1): the
  /// liveness slot is recycled and the record becomes a tombstone.
  bool cancel(EventId id);

  /// Run until the event set is empty or `until` is reached (events at
  /// exactly `until` DO fire). Returns the number of events processed.
  std::size_t run_until(SimTime until = SimTime::infinity());

  /// Run at most `max_events` events. Useful to bound runaway loops in
  /// tests. Returns the number processed.
  std::size_t run_events(std::size_t max_events);

  /// True if no live *strong* events remain (weak events do not count).
  [[nodiscard]] bool idle() const { return strong_count_ == 0; }

  /// Number of live pending strong events.
  [[nodiscard]] std::size_t pending() const { return strong_count_; }
  /// Number of live pending weak events.
  [[nodiscard]] std::size_t pending_weak() const { return weak_count_; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Advance the clock with no event processing. Only valid while idle;
  /// used by tests to set up mid-run scenarios.
  void fast_forward_to(SimTime when);

  /// The (time, insertion-sequence) key of the earliest live pending
  /// event. Orders lexicographically; infinite() when nothing is
  /// pending.
  struct PendingKey {
    SimTime time = SimTime::infinity();
    std::uint64_t seq = UINT64_MAX;
    [[nodiscard]] static PendingKey infinite() { return {}; }
    [[nodiscard]] bool operator<(const PendingKey& o) const {
      return time < o.time || (time == o.time && seq < o.seq);
    }
  };

  /// Time of the earliest live pending event (strong or weak), or
  /// infinity when none remain. A pure peek: no batch is formed, no
  /// window re-anchor is committed (tombstones are skipped, not
  /// reclaimed). This is the horizon the conservative-PDES merge
  /// engine compares across shard rings.
  [[nodiscard]] SimTime next_time() const { return next_key().time; }

  /// Full merge key of the earliest live pending event. With rings
  /// sharing one sequence counter (ParallelMergePeer::share_sequence)
  /// the keys are totally ordered across rings, and merging on them
  /// replays the single-clock oracle's (time, insertion-sequence)
  /// schedule exactly — including cross-ring same-instant ties.
  [[nodiscard]] PendingKey next_key() const;

 private:
  friend struct SimulatorTestPeer;
  /// Conservative-PDES merge seam (runtime::ParallelFleetEngine): a
  /// clock advance that skips fast_forward_to's idle check because the
  /// engine has *proved* no pending event precedes the target (the
  /// merge invariant: it only advances a ring to the fleet-wide
  /// frontier, which is <= every ring's next_time()).
  friend struct ParallelMergePeer;

  // Calendar geometry: 1024 buckets of 2^12 ps give a ~4.2 us window,
  // matching the sub-us inter-event gaps of the packet paths. The ring
  // is a flat window [base_ps_, base_ps_ + kWindowPs) — it only
  // re-anchors when empty, so buckets never wrap.
  static constexpr int kBucketShift = 12;  // 2^12 ps ≈ 4 ns per bucket
  static constexpr std::size_t kBucketCount = 1024;
  static constexpr std::int64_t kBucketWidthPs = std::int64_t{1} << kBucketShift;
  static constexpr std::int64_t kWindowPs =
      static_cast<std::int64_t>(kBucketCount) << kBucketShift;

  struct EventSlot {
    /// Engaged only for cold-arm events; the handler dies with the
    /// slot (fire moves it out, cancel's recycle destroys it in
    /// place), so tombstone records never own anything.
    EventHandler cold;
    bool weak = false;
  };

  /// Recycle reset for the event pool: clearing in place is one
  /// engaged-check branch, where the default assign-T{} would run
  /// std::function's construct-and-swap move on every drained event.
  struct EventSlotReset {
    void operator()(EventSlot& slot) const {
      slot.cold = nullptr;
      slot.weak = false;
    }
  };

  template <typename F>
  EventId schedule_arm(SimTime when, F&& f, bool weak) {
    using Fn = std::decay_t<F>;
    if constexpr (is_inline_event_v<Fn>) {
      if constexpr (std::is_convertible_v<const Fn&, bool>) {
        if (!static_cast<bool>(f)) throw_empty_handler();
      }
      // The record is built in its final storage: acquire writes the
      // header, the payload is placement-new'd directly into the slab.
      EventRecord& rec = acquire_record(when, weak);
      ::new (static_cast<void*>(rec.payload)) Fn(std::forward<F>(f));
      rec.invoke = [](void* payload) {
        // Copy out before running: the trampoline knows sizeof(Fn), so
        // it copies just the functor (not the whole payload), and the
        // handler may then schedule, growing or reusing the slab
        // behind `payload`.
        Fn fn = *std::launder(reinterpret_cast<Fn*>(payload));
        fn();
      };
      return encode_id(rec.slot, rec.generation);
    } else {
      return schedule_cold(when, EventHandler(std::forward<F>(f)), weak);
    }
  }

  static constexpr std::uint32_t kNilIndex = 0xFFFFFFFFu;

  // Defined below the class: the whole schedule fast path is in the
  // header so every call site inlines it — scheduling an event must
  // not cost a cross-TU call.
  EventId schedule_cold(SimTime when, EventHandler handler, bool weak);
  EventRecord& acquire_record(SimTime when, bool weak);
  void insert_record(const EventRecord& rec);
  [[noreturn]] static void throw_empty_handler();
  [[noreturn]] void throw_past_time(SimTime when) const;

  bool next_batch(SimTime until);
  bool promote_overflow(SimTime until);
  std::size_t drain_one();

  /// Record-slab free list with its top element in record_spare_:
  /// one-deep churn (the schedule/drain cycle of chained events) stays
  /// out of the vector. LIFO reuse order is unchanged.
  std::uint32_t claim_record_index() {
    std::uint32_t index;
    if (record_spare_ != kNilIndex) {
      index = record_spare_;
      record_spare_ = kNilIndex;
    } else if (!record_free_.empty()) {
      index = record_free_.back();
      record_free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(records_.size());
      records_.emplace_back();
      record_next_.emplace_back();
    }
    return index;
  }
  void free_record_index(std::uint32_t index) {
    if (record_spare_ != kNilIndex) record_free_.push_back(record_spare_);
    record_spare_ = index;
  }

  static EventId encode_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  /// Where insertion sequences are drawn from — self by default. The
  /// parallel fleet drive points every shard ring at the fleet ring's
  /// counter so the (time, seq) order stays total across rings. One
  /// extra indirection on schedule; never concurrent (at most one
  /// thread executes simulation code at a time, and the engine's
  /// window handoff orders the accesses).
  std::uint64_t* seq_src_ = &next_seq_;
  std::uint64_t executed_ = 0;
  std::size_t strong_count_ = 0;
  std::size_t weak_count_ = 0;

  // Liveness slots for pending events; a cold-arm event's handler
  // rides in its slot. Slots recycle, so steady-state scheduling never
  // allocates.
  core::SlotPool<EventSlot, std::uint32_t, core::AlwaysRecyclable, EventSlotReset> slots_;

  // The record slab: ring records live here, threaded into per-bucket
  // singly linked lists via record_next_. Freed indices recycle LIFO.
  std::vector<EventRecord> records_;
  std::vector<std::uint32_t> record_next_;
  std::vector<std::uint32_t> record_free_;
  std::uint32_t record_spare_ = kNilIndex;  // top of the record free stack
  std::array<std::uint32_t, kBucketCount> heads_;
  // One bit per non-empty bucket; the next candidate bucket is the
  // lowest set bit (buckets below it were swept empty). scan_word_ is
  // a lower bound on the first non-zero word: every word below it is
  // zero. Scans advance it past zeros; inserts pull it back down.
  std::array<std::uint64_t, kBucketCount / 64> occupied_{};
  std::size_t scan_word_ = 0;
  std::vector<EventRecord> overflow_;
  std::int64_t base_ps_ = 0;        // ring window origin, bucket-aligned
  std::size_t ring_count_ = 0;      // records (live + tombstone) in the ring
  // When ring_count_ == 1, the slab index of that one record (else
  // kNilIndex). Chained workloads — one pending event at a time —
  // spend their whole life in this state, and next_batch() then skips
  // the bitmap scan and bucket walk outright.
  std::uint32_t sole_ring_index_ = kNilIndex;

  // The batch being drained: slab indices of all records at
  // batch_time_, in insertion order. Persists across run_*() calls so
  // a run that stops mid-batch (event budget, weak-only break) resumes
  // exactly where it left off.
  std::vector<std::uint32_t> batch_;
  std::size_t batch_cursor_ = 0;
  SimTime batch_time_ = SimTime::zero();
};

/// The parallel fleet drive's window into the kernel (the engine and
/// FleetRuntime's shard setup). Every member assumes the drive's
/// conservative invariants; nothing else may use this (tests use
/// SimulatorTestPeer).
struct ParallelMergePeer {
  /// Set the clock to `t` without draining. Caller proves t <= the
  /// ring's next_time(); times at or before now() are a no-op, so the
  /// engine can blanket-advance every ring to the frontier.
  static void advance_clock(Simulator& s, SimTime t) {
    if (t > s.now_) s.now_ = t;
  }
  static std::size_t strong_pending(const Simulator& s) { return s.strong_count_; }
  static std::size_t weak_pending(const Simulator& s) { return s.weak_count_; }
  /// Draw `follower`'s insertion sequences from `leader`'s counter.
  /// Must run before anything schedules on `follower`; with every
  /// shard ring following the fleet ring, schedule calls interleave
  /// into one total (time, seq) order — the oracle's.
  static void share_sequence(Simulator& follower, Simulator& leader) {
    follower.seq_src_ = leader.seq_src_;
  }
};

inline EventRecord& Simulator::acquire_record(SimTime when, bool weak) {
  if (when < now_) throw_past_time(when);
  const auto slot = slots_.claim();
  slots_[slot.index].weak = weak;
  ++(weak ? weak_count_ : strong_count_);
  const std::int64_t rel = when.ps() - base_ps_;
  EventRecord* rec;
  if (rel >= kWindowPs) {
    rec = &overflow_.emplace_back();
  } else {
    const auto b = static_cast<std::size_t>(rel >> kBucketShift);
    const std::uint32_t index = claim_record_index();
    record_next_[index] = heads_[b];
    heads_[b] = index;
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
    if ((b >> 6) < scan_word_) scan_word_ = b >> 6;
    sole_ring_index_ = ring_count_ == 0 ? index : kNilIndex;
    ++ring_count_;
    rec = &records_[index];
  }
  rec->time = when;
  rec->seq = (*seq_src_)++;
  rec->slot = slot.index;
  rec->generation = slot.generation;
  return *rec;
}

inline EventId Simulator::schedule_cold(SimTime when, EventHandler handler, bool weak) {
  if (!handler) throw_empty_handler();
  EventRecord& rec = acquire_record(when, weak);
  // The slot's handler is empty (recycle clears it), so a swap is a
  // plain member exchange — no construct-and-swap temporary.
  slots_[rec.slot].cold.swap(handler);
  rec.invoke = nullptr;
  return encode_id(rec.slot, rec.generation);
}

}  // namespace rsf::sim
