// rsf::sim — deterministic random streams.
//
// Every stochastic component takes its own named RandomStream, derived
// from a single experiment seed. Streams are independent (splitmix64
// seeding of xoshiro256**), so adding a new component never perturbs
// the draw sequence of existing ones — a property the regression tests
// rely on.
#pragma once

#include <cstdint>
#include <string_view>

namespace rsf::sim {

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator so it can
/// be used with <random> distributions, but the common distributions
/// needed by the fabric models are provided as members with stable,
/// implementation-defined-free semantics across platforms.
class RandomStream {
 public:
  using result_type = std::uint64_t;

  /// Stream seeded from an experiment seed and a component name. Equal
  /// (seed, name) pairs always produce identical streams.
  RandomStream(std::uint64_t seed, std::string_view component_name);

  explicit RandomStream(std::uint64_t seed);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (> 0).
  double exponential(double mean);
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  /// Standard normal via Box–Muller (cached pair).
  double normal(double mean, double stddev);
  /// Bounded Pareto on [lo, hi] with shape alpha — heavy-tailed flow
  /// sizes use this.
  double bounded_pareto(double alpha, double lo, double hi);
  /// Poisson-distributed count with the given mean (Knuth for small
  /// means, normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Derive an independent child stream; used to hand sub-components
  /// their own streams without threading the experiment seed around.
  [[nodiscard]] RandomStream fork(std::string_view child_name) const;

 private:
  std::uint64_t next();

  std::uint64_t s_[4];
  std::uint64_t origin_seed_ = 0;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// FNV-1a of a string; used to mix component names into seeds and to
/// give tests a stable cross-platform hash.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s);

}  // namespace rsf::sim
