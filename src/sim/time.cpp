#include "sim/time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace rsf::sim {

std::string SimTime::to_string() const {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 5> kUnits = {{
      {1e12, "s"},
      {1e9, "ms"},
      {1e6, "us"},
      {1e3, "ns"},
      {1e0, "ps"},
  }};
  const double v = static_cast<double>(ps_);
  for (const Unit& u : kUnits) {
    if (std::abs(v) >= u.scale || u.scale == 1e0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3f%s", v / u.scale, u.suffix);
      return buf;
    }
  }
  return "0ps";
}

std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.to_string(); }

}  // namespace rsf::sim
