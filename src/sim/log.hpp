// rsf::sim — lightweight leveled logging bound to simulation time.
//
// Components log through a Logger that prefixes simulation time and a
// component tag. The sink is process-global but injectable, so tests
// can capture output and benches can silence it.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace rsf::sim {

class Simulator;

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Global log configuration. Defaults: level kWarn, sink = stderr.
class LogConfig {
 public:
  using Sink = std::function<void(LogLevel, std::string_view line)>;

  static LogLevel level();
  static void set_level(LogLevel level);
  static void set_sink(Sink sink);
  /// Restore the default stderr sink.
  static void reset_sink();
  static void emit(LogLevel level, std::string_view line);
};

/// Per-component logger. Cheap to copy; holds only a tag and a pointer
/// to the simulator whose clock timestamps the lines.
class Logger {
 public:
  Logger(const Simulator* sim, std::string tag) : sim_(sim), tag_(std::move(tag)) {}
  explicit Logger(std::string tag) : Logger(nullptr, std::move(tag)) {}

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= LogConfig::level(); }

  template <typename... Args>
  void log(LogLevel level, const Args&... args) const {
    if (!enabled(level)) return;
    std::ostringstream oss;
    format_prefix(oss, level);
    (oss << ... << args);
    LogConfig::emit(level, oss.str());
  }

  template <typename... Args>
  void trace(const Args&... args) const {
    log(LogLevel::kTrace, args...);
  }
  template <typename... Args>
  void debug(const Args&... args) const {
    log(LogLevel::kDebug, args...);
  }
  template <typename... Args>
  void info(const Args&... args) const {
    log(LogLevel::kInfo, args...);
  }
  template <typename... Args>
  void warn(const Args&... args) const {
    log(LogLevel::kWarn, args...);
  }
  template <typename... Args>
  void error(const Args&... args) const {
    log(LogLevel::kError, args...);
  }

  [[nodiscard]] const std::string& tag() const { return tag_; }

 private:
  void format_prefix(std::ostream& os, LogLevel level) const;

  const Simulator* sim_;
  std::string tag_;
};

}  // namespace rsf::sim
