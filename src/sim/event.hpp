// rsf::sim — events and event handles.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.hpp"

namespace rsf::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are unique
/// for the lifetime of a Simulator and never reused.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// The action an event performs when it fires. Handlers run at the
/// event's timestamp; they may schedule further events but must not
/// block. Handlers are plain callbacks — the kernel is single-threaded
/// and deterministic by construction.
using EventHandler = std::function<void()>;

/// A scheduled event, ordered by (time, sequence). The sequence number
/// makes the ordering a strict total order, so two events scheduled for
/// the same instant always fire in scheduling order: determinism does
/// not depend on heap tie-breaking.
struct Event {
  SimTime time;
  EventId id = kInvalidEventId;
  EventHandler handler;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

}  // namespace rsf::sim
