// rsf::sim — event ids, the tagged event record, and its two arms.
//
// The kernel stores every scheduled event as a fixed-size, trivially
// copyable EventRecord. A record has two arms:
//
//  - **Inline arm.** A callable that is trivially copyable, trivially
//    destructible, and at most kInlineEventBytes big is placement-new'd
//    straight into the record's payload, with a monomorphized
//    trampoline as the invoke pointer. This covers every per-packet
//    continuation on the hot paths (rack-fabric hops, spine hops, FIFO
//    releases, probe/flow pumps) — scheduling one is a memcpy into a
//    bucket, not a heap allocation.
//  - **Cold arm.** Anything else (move-captured vectors, stored
//    std::functions, oversized captures) is wrapped in an EventHandler
//    riding in the event's liveness slot inside the Simulator. Cold
//    callers keep working unchanged — they just don't get the inline
//    fast path.
//
// The arm is selected automatically per call site by Simulator's
// templated schedule_* front end (is_inline_event_v below), so no
// caller migrates by hand and a capture that grows past the budget
// degrades to the cold arm instead of breaking the build. Hot paths
// pin their eligibility with static_asserts at the call site.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "sim/time.hpp"

namespace rsf::sim {

/// Identifies a scheduled event so it can be cancelled. An id packs
/// the event's dense liveness slot and that slot's generation; slots
/// are recycled, so a stale id (fired, cancelled, never existed, or
/// outlived by 2^32 recycles of one slot) fails the generation check
/// and cancel() reports false instead of touching the new occupant.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// The cold arm's closure type. Handlers run at the event's timestamp;
/// they may schedule further events but must not block and must not
/// re-enter the Simulator's run loops.
using EventHandler = std::function<void()>;

/// Inline payload budget. Sized for the largest per-packet
/// continuation on the hot paths — Network::hop's
/// [this, Packet, NodeId, SimTime, SimTime] capture (96 bytes) —
/// which also lands the whole record on exactly two cache lines
/// (static_assert below). A capture that outgrows the budget falls
/// off the fast path onto the cold arm; the hot paths pin themselves
/// with static_asserts at the call site.
inline constexpr std::size_t kInlineEventBytes = 96;

/// True when scheduling `F` takes the inline arm: invocable, trivially
/// copyable and destructible (records move between buckets by memcpy,
/// and tombstones are dropped without running destructors), within the
/// payload budget, and not over-aligned.
template <typename F>
inline constexpr bool is_inline_event_v =
    std::is_invocable_r_v<void, F&> && std::is_trivially_copyable_v<F> &&
    std::is_trivially_destructible_v<F> && sizeof(F) <= kInlineEventBytes &&
    alignof(F) <= alignof(std::max_align_t);

/// One scheduled event. Ordered by (time, seq): seq is the global
/// insertion sequence, so two events scheduled for the same instant
/// always fire in scheduling order — determinism does not depend on
/// queue internals. Trivially copyable by design: calendar buckets
/// shuffle records freely.
/// Deliberately without default member initializers: records are
/// constructed in place inside the calendar slab and every field is
/// written at schedule time — a trivial default constructor keeps slab
/// growth a pure reallocation.
struct EventRecord {
  SimTime time;
  std::uint64_t seq;
  /// Liveness: dense slot index + the generation it was claimed at.
  /// A record whose slot has moved on (cancel, or fire + reuse) is a
  /// tombstone, skipped and reclaimed when the queue next touches it.
  std::uint32_t slot;
  std::uint32_t generation;
  /// Inline arm: monomorphized trampoline over `payload`.
  /// nullptr tags the cold arm; the EventHandler then lives in the
  /// event's liveness slot and the payload is unused.
  void (*invoke)(void*);
  alignas(alignof(std::max_align_t)) std::byte payload[kInlineEventBytes];
};

static_assert(std::is_trivially_copyable_v<EventRecord>);
// Exactly two cache lines: slab addressing is a shift, and a record
// never straddles a third line.
static_assert(sizeof(EventRecord) == 128);

}  // namespace rsf::sim
