#include "sim/random.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rsf::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

RandomStream::RandomStream(std::uint64_t seed) : RandomStream(seed, "") {}

RandomStream::RandomStream(std::uint64_t seed, std::string_view component_name) {
  origin_seed_ = seed ^ fnv1a(component_name);
  std::uint64_t sm = origin_seed_;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro requires a nonzero state; splitmix64 output of any seed is
  // astronomically unlikely to be all-zero, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t RandomStream::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RandomStream::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RandomStream::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / span) * span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double RandomStream::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential: mean must be > 0");
  double u = uniform();
  // uniform() may return exactly 0; -log(0) is inf.
  while (u == 0.0) u = uniform();
  return -mean * std::log(u);
}

bool RandomStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double RandomStream::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double RandomStream::bounded_pareto(double alpha, double lo, double hi) {
  if (!(alpha > 0) || !(lo > 0) || !(hi > lo)) {
    throw std::invalid_argument("bounded_pareto: need alpha>0, 0<lo<hi");
  }
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t RandomStream::poisson(double mean) {
  if (mean < 0) throw std::invalid_argument("poisson: mean must be >= 0");
  if (mean == 0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

RandomStream RandomStream::fork(std::string_view child_name) const {
  return RandomStream(origin_seed_ ^ 0xA5A5A5A55A5A5A5AULL, child_name);
}

}  // namespace rsf::sim
