#include "runtime/runtime.hpp"

#include <stdexcept>
#include <utility>

namespace rsf::runtime {

namespace {

fabric::Rack build_rack(rsf::sim::Simulator* sim, const RuntimeConfig& config,
                        telemetry::Registry* registry) {
  fabric::RackParams params = config.rack;
  params.registry = registry;
  const int n = config.nodes > 0 ? config.nodes : params.width;
  switch (config.shape) {
    case RackShape::kGrid:
      return fabric::build_grid(sim, params);
    case RackShape::kTorus:
      return fabric::build_torus(sim, params);
    case RackShape::kChain:
      return fabric::build_chain(sim, n, params);
    case RackShape::kRing:
      return fabric::build_ring(sim, n, params);
  }
  throw std::invalid_argument("FabricRuntime: unknown rack shape");
}

}  // namespace

FabricRuntime::FabricRuntime(RuntimeConfig config)
    : config_(std::move(config)),
      own_sim_(std::make_unique<rsf::sim::Simulator>()),
      sim_(own_sim_.get()),
      rack_(build_rack(sim_, config_, &registry_)) {
  init_crc();
}

FabricRuntime::FabricRuntime(rsf::sim::Simulator* sim, RuntimeConfig config)
    : config_(std::move(config)), sim_(sim), rack_(build_rack(sim_, config_, &registry_)) {
  // build_rack already rejected a null simulator.
  init_crc();
}

void FabricRuntime::init_crc() {
  if (!config_.enable_crc) return;
  crc_ = std::make_unique<core::CrcController>(
      sim_, rack_.plant.get(), rack_.engine.get(), rack_.topology.get(),
      rack_.router.get(), rack_.network.get(), config_.crc, &registry_);
}

core::CrcController& FabricRuntime::controller() {
  if (!crc_) throw std::logic_error("FabricRuntime: built with enable_crc = false");
  return *crc_;
}

telemetry::Table FabricRuntime::metrics_table() const {
  return registry_.to_table("rack metrics");
}

void FabricRuntime::start() {
  if (crc_) crc_->start();
}

void FabricRuntime::stop() {
  if (crc_) crc_->stop();
}

workload::FlowGenerator& FabricRuntime::add_generator(workload::TrafficMatrix matrix,
                                                      workload::GeneratorConfig cfg) {
  generators_.push_back(std::make_unique<workload::FlowGenerator>(
      sim_, rack_.network.get(), std::move(matrix), cfg));
  return *generators_.back();
}

workload::ShuffleJob& FabricRuntime::add_shuffle(workload::ShuffleConfig cfg) {
  shuffles_.push_back(
      std::make_unique<workload::ShuffleJob>(sim_, rack_.network.get(), std::move(cfg)));
  return *shuffles_.back();
}

}  // namespace rsf::runtime
