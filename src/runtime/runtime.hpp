// rsf::runtime — the FabricRuntime facade.
//
// FabricRuntime owns and wires the entire reproduction stack from one
// RuntimeConfig: the discrete-event simulator, the physical plant and
// PLP engine, the topology view, the router, the packet transport, the
// Closed Ring Control, and any workloads an experiment attaches. It is
// the single entry point every example, bench and integration test
// builds on — adding a scenario is a config change, not eighty lines
// of hand-wiring — and it owns the telemetry::Registry all components
// publish their metrics into, so one call dumps the whole rack's
// telemetry as a unified table.
//
// Unit tests that target an individual class (Network, Router, ...)
// may still construct it directly; everything else goes through here.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "fabric/builders.hpp"
#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/table.hpp"
#include "workload/generator.hpp"
#include "workload/mapreduce.hpp"

namespace rsf::runtime {

/// The standard rack shapes (see fabric/builders.hpp). kTorus builds
/// the native-torus baseline; the adaptive fabric instead *reaches*
/// torus from kGrid via request_grid_to_torus().
enum class RackShape { kGrid, kTorus, kChain, kRing };

struct RuntimeConfig {
  RackShape shape = RackShape::kGrid;
  /// Rack geometry, PHY, PLP and transport parameters. For kChain and
  /// kRing `nodes` overrides width/height.
  fabric::RackParams rack{};
  /// Node count for kChain / kRing (0 means "use rack.width").
  int nodes = 0;
  /// Construct the Closed Ring Control. start() arms its epoch loop.
  bool enable_crc = true;
  core::CrcConfig crc{};
};

class FabricRuntime {
 public:
  explicit FabricRuntime(RuntimeConfig config = {});

  /// Shard constructor: build the rack on an external (shared) clock.
  /// `sim` must outlive the runtime. This is how a FleetRuntime drives
  /// N racks from one Simulator; a standalone runtime owns its own.
  FabricRuntime(rsf::sim::Simulator* sim, RuntimeConfig config);

  FabricRuntime(const FabricRuntime&) = delete;
  FabricRuntime& operator=(const FabricRuntime&) = delete;

  // --- the wired stack ---

  [[nodiscard]] rsf::sim::Simulator& sim() { return *sim_; }
  [[nodiscard]] phy::PhysicalPlant& plant() { return *rack_.plant; }
  [[nodiscard]] plp::PlpEngine& engine() { return *rack_.engine; }
  [[nodiscard]] fabric::Topology& topology() { return *rack_.topology; }
  [[nodiscard]] fabric::Router& router() { return *rack_.router; }
  [[nodiscard]] fabric::Network& network() { return *rack_.network; }
  [[nodiscard]] bool has_controller() const { return crc_ != nullptr; }
  /// Throws std::logic_error when built with enable_crc = false.
  [[nodiscard]] core::CrcController& controller();

  /// The unified metric registry every component publishes into.
  [[nodiscard]] telemetry::Registry& metrics() { return registry_; }
  [[nodiscard]] const telemetry::Registry& metrics() const { return registry_; }
  /// One table with every counter, gauge, histogram and series.
  [[nodiscard]] telemetry::Table metrics_table() const;

  // --- geometry ---

  [[nodiscard]] const fabric::RackParams& rack_params() const { return rack_.params; }
  [[nodiscard]] phy::NodeId node_at(int x, int y) const { return rack_.node_at(x, y); }
  [[nodiscard]] std::uint32_t node_count() const { return rack_.topology->node_count(); }
  /// Total electrical power: plant (lanes + bypass) plus switching.
  [[nodiscard]] double total_power_watts() const { return rack_.total_power_watts(); }

  // --- control ---

  /// Arm the CRC epoch loop (no-op without a controller).
  void start();
  /// Stop the CRC (no-op without one / when not running).
  void stop();
  /// Drain events until `until` (or until idle with no horizon). Runs
  /// the simulation this runtime schedules on (note: with an external
  /// simulator this drives the shared clock); returns events processed.
  std::size_t run_until(rsf::sim::SimTime until = rsf::sim::SimTime::infinity()) {
    return sim_->run_until(until);
  }
  [[nodiscard]] rsf::sim::SimTime now() const { return sim_->now(); }

  // --- workloads (owned by the runtime, destroyed with it) ---

  workload::FlowGenerator& add_generator(workload::TrafficMatrix matrix,
                                         workload::GeneratorConfig cfg);
  workload::ShuffleJob& add_shuffle(workload::ShuffleConfig cfg);

 private:
  void init_crc();

  RuntimeConfig config_;
  // Owned only when constructed standalone; sim_ always points at the
  // clock the whole stack schedules on.
  std::unique_ptr<rsf::sim::Simulator> own_sim_;
  rsf::sim::Simulator* sim_;
  // Declared before the rack: component metric references point here.
  telemetry::Registry registry_;
  fabric::Rack rack_;
  std::unique_ptr<core::CrcController> crc_;
  std::vector<std::unique_ptr<workload::FlowGenerator>> generators_;
  std::vector<std::unique_ptr<workload::ShuffleJob>> shuffles_;
};

}  // namespace rsf::runtime
