// rsf::runtime — the spine-aware fleet controller.
//
// A FleetController is the fleet's brain: a periodic control loop on
// the shared clock that closes the gap PR 2 left open — racks adapted
// independently and nothing repriced the spine. Every epoch it
// observes each spine link's per-direction utilisation (serialization
// time diffed between ticks) and queue backlog (how far ahead the FIFO
// is booked), derives a congestion cost, and reprices the link through
// Interconnect::set_link_cost. Repricing bumps the spine version,
// which invalidates the memoized rack routes — so the per-packet
// transport re-plans onto cheaper links at the next packet, shifting
// traffic off hot spine links without touching any in-flight packet.
//
// The controller also mirrors the CRC's intra-rack circuit loop at
// fleet scope: with the reservation policy enabled it diffs the
// spine's per-(src, dst) rack-pair demand between epochs, promotes
// pairs that stay hot for `promote_after` consecutive epochs into
// spine circuit reservations (Interconnect::reserve, hottest decayed
// demand score first — `demand_half_life_epochs` forgets ancient
// heat), and demotes pairs that stay idle for `demote_after` epochs
// (release) — hysteresis on both edges so bursty demand doesn't
// thrash the reservation table. Pairs preempted by a link failure are
// forgotten and must re-earn their promotion on the surviving
// topology.
//
// Repricing is reservation-aware: utilisation is judged against the
// residual rate a direction advertises (Interconnect::residual_rate),
// with the carved fraction counted as spoken-for capacity — so a hot
// reserved link can no longer advertise itself as cheap to the shared
// traffic that would only get its residual.
//
// The loop schedules weak events (like the CRC's epochs), so "run
// until the workload drains" still terminates, and it draws no random
// numbers: fleet runs stay bit-for-bit deterministic with the
// controller on.
//
// Metrics land in the owning registry under "fleet.*":
// fleet.epochs, fleet.reprices, fleet.hot_links, fleet.promotions,
// fleet.demotions (counters) and fleet.max_spine_util (time series).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "fabric/interconnect.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/series.hpp"

namespace rsf::runtime {

/// Promote/demote policy for spine circuit reservations. Disabled by
/// default: the packetized shared path is the untouched baseline and
/// the reservation layer composes on top.
struct FleetReservationPolicy {
  bool enable = false;
  /// Per-direction capacity fraction carved per promoted pair.
  double fraction = 0.4;
  /// Offered byte·hops per epoch (the pair's spine resource
  /// footprint, see Interconnect::pair_demand_slot) at or above which
  /// a pair counts hot.
  std::uint64_t hot_bytes_per_epoch = 64 * 1024;
  /// Offered byte·hops per epoch at or below which a promoted pair
  /// counts idle (set well below hot_bytes_per_epoch for hysteresis).
  std::uint64_t idle_bytes_per_epoch = 4 * 1024;
  /// Consecutive hot epochs before a pair is promoted.
  int promote_after = 2;
  /// Consecutive idle epochs before a promoted pair is demoted.
  int demote_after = 4;
  /// Cap on concurrently promoted pairs.
  std::size_t max_reservations = 4;
};

/// Promote/demote policy for spine slot schedules — the TDMA regime's
/// counterpart of FleetReservationPolicy, building rotor-style
/// periodic schedules for the hottest rack pairs from the same
/// byte·hops demand ranking. Mutually exclusive with the reservation
/// policy (one circuit discipline per controller; the constructor
/// refuses both). Disabled by default.
struct FleetSchedulePolicy {
  bool enable = false;
  /// Slot set booked per promoted pair: `duty` owned offsets per
  /// `period` slots (period must divide SlotCalendar::kFrameSlots,
  /// 1 <= duty <= period). duty/period is the pair's capacity share.
  int period = 4;
  int duty = 2;
  /// Hot/idle demand thresholds and hysteresis streaks, same
  /// semantics as FleetReservationPolicy.
  std::uint64_t hot_bytes_per_epoch = 64 * 1024;
  std::uint64_t idle_bytes_per_epoch = 4 * 1024;
  int promote_after = 2;
  int demote_after = 4;
  /// Cap on concurrently scheduled pairs (a split pair counts once).
  std::size_t max_schedules = 4;
  /// Split a promoted pair's duty across two routes when possible:
  /// duty − duty/2 on the cheapest route, duty/2 on the cheapest
  /// route avoiding the primary's links (parallel spine links carry
  /// the pair concurrently; packets round-robin the legs). When no
  /// disjoint second route exists the remainder books on the default
  /// route; when even that fails the pair keeps the reduced primary.
  bool multipath = false;
};

struct FleetControllerConfig {
  /// Control epoch: how often spine links are observed and repriced.
  rsf::sim::SimTime epoch = rsf::sim::SimTime::microseconds(100);
  /// Cost floor every link returns to when idle.
  double base_cost = 1.0;
  /// Cost added per unit of utilisation (fraction of the epoch the
  /// direction spent serializing; can exceed 1 when the FIFO is booked
  /// ahead of real time).
  double utilization_weight = 8.0;
  /// Cost added per microsecond of queued backlog at the tick.
  double backlog_weight_per_us = 0.25;
  /// Reprice only when the derived cost moved more than this from the
  /// link's current cost — hysteresis so stable load doesn't thrash
  /// the route cache every epoch.
  double cost_epsilon = 0.5;
  /// Utilisation at or above which a link counts toward
  /// "fleet.hot_links".
  double hot_threshold = 0.7;
  /// Half-life, in epochs, of the per-pair demand score the promotion
  /// ranking orders by: each epoch the score decays by 2^(−1/h)
  /// before the epoch's fresh byte·hops are added, so a pair that was
  /// hot an hour ago stops outranking a pair that is hot now. 0
  /// disables decay (a decay factor of 1 — the cumulative ranking).
  double demand_half_life_epochs = 0.0;
  /// Spine circuit reservation promote/demote policy.
  FleetReservationPolicy reservations{};
  /// Spine slot-schedule promote/demote policy (mutually exclusive
  /// with the reservation policy).
  FleetSchedulePolicy schedules{};
};

/// A serialized snapshot of the controller's learned state: per-pair
/// demand baselines, decayed ranking scores, hysteresis streaks, and
/// reservation *intents*. Intents, not handles: a controller that died
/// lost its leases (the fabric releases a dead controller's carves, the
/// mcsotdma renewal/timeout model collapsed to immediate expiry), so a
/// restore never resurrects a handle — it marks the pair as holding a
/// full promote streak, and the first post-restart epoch re-earns the
/// carve through the normal admission path if the pair is still hot.
struct FleetControllerCheckpoint {
  struct PairEntry {
    /// (src_rack << 32) | dst_rack.
    std::uint64_t key = 0;
    std::uint64_t last_bytes = 0;
    double score = 0.0;
    int hot_streak = 0;
    int idle_streak = 0;
    /// The pair held a live reservation at checkpoint time.
    bool reserved = false;
    /// The pair held live slot schedules at checkpoint time. Same
    /// intent-not-handle contract: restore marks a full promote
    /// streak and the first post-restart epoch re-books through the
    /// normal admission path if the pair is still hot.
    bool scheduled = false;
  };
  std::vector<PairEntry> pairs;
  /// Epochs the checkpointing controller had completed (informational;
  /// a restored controller's own epoch count starts at zero).
  std::uint64_t epochs = 0;
};

class FleetController {
 public:
  /// Metrics land in `registry` under "fleet.*" when one is supplied
  /// (the FleetRuntime passes the fleet registry); without one the
  /// controller owns a private registry, keeping direct construction
  /// in unit tests working.
  FleetController(rsf::sim::Simulator* sim, fabric::Interconnect* spine,
                  FleetControllerConfig config = {},
                  telemetry::Registry* registry = nullptr);

  FleetController(const FleetController&) = delete;
  FleetController& operator=(const FleetController&) = delete;

  /// Begin epoch ticking. The first observation window opens now; the
  /// first repricing decision lands one epoch later. A controller
  /// starting on a warm spine (a mid-run restart) seeds its demand
  /// baselines at the current cumulative totals for pairs it has no
  /// state for, so the fleet's entire history is not misread as one
  /// epoch's delta — restored pairs keep their checkpointed baselines
  /// (the outage gap *is* their post-restart heat).
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  // --- checkpoint / restore (the chaos harness's restart primitive) ---

  /// Freeze the learned state. Cheap (one pass over the pair map) and
  /// side-effect free; safe to take mid-epoch on a running controller.
  [[nodiscard]] FleetControllerCheckpoint checkpoint() const;

  /// Load a checkpoint into a stopped (typically freshly built)
  /// controller, replacing any existing pair state. Reservation
  /// intents are restored as full promote streaks — see
  /// FleetControllerCheckpoint. Throws while running.
  void restore(const FleetControllerCheckpoint& ckpt);

  /// Release every reservation this controller holds and forget the
  /// handles (streaks survive). The kill path: the fabric expiring a
  /// dead controller's leases before the process goes away. Returns
  /// how many were released.
  std::size_t release_reservations();

  /// The slot-schedule counterpart of release_reservations(): release
  /// every schedule this controller booked and forget the handles
  /// (streaks survive). Returns how many were released. Note that
  /// unlike carves, schedules would also expire on their own after
  /// slot_timeout() of inactivity — this just returns them promptly.
  std::size_t release_schedules();

  [[nodiscard]] std::uint64_t epochs_completed() const { return epochs_; }
  [[nodiscard]] std::uint64_t reprices() const { return reprices_; }
  /// Rack pairs promoted into / demoted out of spine reservations.
  [[nodiscard]] std::uint64_t promotions() const { return promotions_; }
  [[nodiscard]] std::uint64_t demotions() const { return demotions_; }
  [[nodiscard]] const FleetControllerConfig& config() const { return config_; }

  /// Peak per-direction utilisation seen in the last completed epoch.
  [[nodiscard]] double last_max_utilization() const { return last_max_util_; }

  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }
  [[nodiscard]] const telemetry::TimeSeries& utilization_series() const {
    return util_series_;
  }

 private:
  void tick();
  /// Capture every direction's cumulative busy time as the baseline
  /// the next tick diffs against (links added mid-run start cold).
  void snapshot_busy();
  /// One epoch of the reservation policy: diff per-pair demand,
  /// advance hot/idle streaks, promote and demote.
  void run_reservation_policy();
  /// One epoch of the slot-schedule policy: the same demand machinery
  /// driving reserve_slots/release_slots, including the multi-path
  /// duty split.
  void run_schedule_policy();

  rsf::sim::Simulator* sim_;
  fabric::Interconnect* spine_;
  FleetControllerConfig config_;

  bool running_ = false;
  rsf::sim::EventId next_tick_ = rsf::sim::kInvalidEventId;
  std::uint64_t epochs_ = 0;
  std::uint64_t reprices_ = 0;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  double last_max_util_ = 0.0;
  /// Per link, per direction ([0]: leaving a.rack): busy_total at the
  /// last tick.
  std::vector<std::array<rsf::sim::SimTime, 2>> last_busy_;
  /// Reservation policy state per (src << 32 | dst) rack pair:
  /// demand baseline, the decayed ranking score, hysteresis streaks,
  /// and the held handle. Ordered map → deterministic promote order
  /// within an epoch.
  struct PairState {
    std::uint64_t last_bytes = 0;
    /// Decayed byte·hops: score × 2^(−1/half_life) per epoch, plus
    /// the epoch's delta. With decay off this is the cumulative total.
    double score = 0.0;
    int hot_streak = 0;
    int idle_streak = 0;
    fabric::SpineReservationHandle handle;
    /// Slot-schedule handles (schedule policy): one, or two when the
    /// promotion split across disjoint routes. Empty = not scheduled.
    std::vector<fabric::SpineScheduleHandle> sched;
  };
  /// Book a promoted pair's schedule(s) into `st`; false when the
  /// spine refused everything (the caller backs the streak off).
  bool book_pair_schedules(std::uint32_t src, std::uint32_t dst, PairState& st);
  std::map<std::uint64_t, PairState> pair_state_;
  /// Pairs holding live reservations (≤ max_reservations) or live
  /// schedules (≤ max_schedules) — the policies are exclusive, so one
  /// count serves both.
  std::size_t promoted_ = 0;

  // Instruments live in the registry (owned locally only when the
  // caller supplied none).
  std::unique_ptr<telemetry::Registry> own_registry_;
  telemetry::Registry* registry_;
  telemetry::CounterSet& counters_;
  telemetry::TimeSeries& util_series_;
};

}  // namespace rsf::runtime
