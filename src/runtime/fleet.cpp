#include "runtime/fleet.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/fleet_parallel.hpp"

namespace rsf::runtime {

using rsf::sim::SimTime;

// Serial drive (the oracle) runs the body inline with zero
// indirection added; parallel drive materializes it as the mailbox
// continuation. A template so the 1-worker hot path never constructs
// a std::function it won't defer.
template <typename F>
void FleetRuntime::defer_rack(std::uint32_t rack, F&& fn) {
  if (engine_ == nullptr) {
    fn();
    return;
  }
  engine_->emit(rack, std::function<void()>(std::forward<F>(fn)));
}

FleetRuntime::FleetRuntime(FleetConfig config) : config_(std::move(config)) {
  if (config_.racks.empty()) {
    throw std::invalid_argument("FleetRuntime: need at least one rack");
  }
  if (config_.flow_window < 1) {
    throw std::invalid_argument("FleetRuntime: flow_window < 1");
  }
  if (config_.max_retries < 0) {
    throw std::invalid_argument("FleetRuntime: negative max_retries");
  }
  if (config_.retry_delay < SimTime::zero()) {
    throw std::invalid_argument("FleetRuntime: negative retry_delay");
  }
  if (config_.workers < 1) {
    throw std::invalid_argument("FleetRuntime: workers < 1");
  }
  const bool parallel = config_.workers > 1;
  racks_.reserve(config_.racks.size());
  if (parallel) shard_sims_.reserve(config_.racks.size());
  for (const RackSpec& spec : config_.racks) {
    if (parallel) {
      // Each rack on its own calendar ring: same EventRecord format,
      // private slab and SlotPool, drained by the merge engine. All
      // rings draw insertion sequences from the fleet ring's counter
      // (before the rack schedules anything), so the fleet-wide
      // (time, seq) order is total — the merge replays the oracle's
      // schedule key for key.
      shard_sims_.push_back(std::make_unique<rsf::sim::Simulator>());
      rsf::sim::ParallelMergePeer::share_sequence(*shard_sims_.back(), sim_);
      racks_.push_back(
          std::make_unique<FabricRuntime>(shard_sims_.back().get(), spec.config));
    } else {
      racks_.push_back(std::make_unique<FabricRuntime>(&sim_, spec.config));
    }
  }
  for (std::size_t i = 0; i < config_.racks.size(); ++i) {
    const phy::NodeId gw = config_.racks[i].gateway;
    if (gw >= racks_[i]->node_count()) {
      throw std::invalid_argument("FleetRuntime: gateway outside rack " + std::to_string(i));
    }
  }
  spine_ = std::make_unique<fabric::Interconnect>(&sim_, &registry_, config_.seed);
  for (const SpineSpec& s : config_.spine) {
    if (s.rack_a >= racks_.size() || s.rack_b >= racks_.size()) {
      throw std::invalid_argument("FleetRuntime: spine link references unknown rack");
    }
    fabric::SpineLinkParams p;
    p.a = {s.rack_a, s.gateway_a == phy::kInvalidNode ? gateway(s.rack_a) : s.gateway_a};
    p.b = {s.rack_b, s.gateway_b == phy::kInvalidNode ? gateway(s.rack_b) : s.gateway_b};
    if (p.a.node >= racks_[s.rack_a]->node_count() ||
        p.b.node >= racks_[s.rack_b]->node_count()) {
      throw std::invalid_argument("FleetRuntime: spine gateway outside its rack");
    }
    p.rate = s.rate;
    p.latency = s.latency;
    p.loss_prob = s.loss_prob;
    p.cost = s.cost;
    spine_->add_link(p);
  }
  if (config_.enable_controller) {
    controller_ = std::make_unique<FleetController>(&sim_, spine_.get(),
                                                    config_.controller, &registry_);
  }
  if (parallel) {
    // Zero-lookahead refusal: a zero-latency spine link makes
    // gateway-to-gateway influence same-instant, degenerating the
    // conservative horizon fleet-wide. Refuse with a clear error
    // instead of deadlocking or silently serializing. (A spineless
    // fleet has infinite lookahead and passes.)
    if (spine_->min_lookahead() <= SimTime::zero()) {
      throw std::invalid_argument(
          "FleetRuntime: workers > 1 needs a positive conservative lookahead, "
          "but a spine link has zero latency; run with workers = 1");
    }
    std::vector<rsf::sim::Simulator*> shard_ptrs;
    shard_ptrs.reserve(shard_sims_.size());
    for (auto& s : shard_sims_) shard_ptrs.push_back(s.get());
    engine_ = std::make_unique<ParallelFleetEngine>(&sim_, std::move(shard_ptrs),
                                                    config_.workers);
  }
}

FleetRuntime::~FleetRuntime() = default;

std::size_t FleetRuntime::run_until(SimTime until) {
  if (engine_) return engine_->run_until(until);
  return sim_.run_until(until);
}

std::uint64_t FleetRuntime::sync_windows() const {
  return engine_ ? engine_->sync_windows() : 0;
}

std::uint64_t FleetRuntime::cross_shard_events() const {
  return engine_ ? engine_->cross_shard_events() : 0;
}

FabricRuntime& FleetRuntime::rack(std::size_t i) {
  if (i >= racks_.size()) throw std::out_of_range("FleetRuntime: unknown rack");
  return *racks_[i];
}

FleetController& FleetRuntime::controller() {
  if (controller_ == nullptr) {
    throw std::logic_error("FleetRuntime: built with enable_controller = false");
  }
  return *controller_;
}

phy::NodeId FleetRuntime::gateway(std::uint32_t rack) const {
  if (rack >= config_.racks.size()) throw std::out_of_range("FleetRuntime: unknown rack");
  return config_.racks[rack].gateway;
}

fabric::RackNode FleetRuntime::at(std::uint32_t rack_idx, int x, int y) {
  return {rack_idx, rack(rack_idx).node_at(x, y)};
}

void FleetRuntime::start() {
  started_ = true;
  for (auto& r : racks_) r->start();
  if (controller_) controller_->start();
}

void FleetRuntime::stop() {
  started_ = false;
  for (auto& r : racks_) r->stop();
  if (controller_) controller_->stop();
}

void FleetRuntime::kill_controller() {
  if (controller_ == nullptr) {
    throw std::logic_error("FleetRuntime: no controller alive to kill");
  }
  controller_->stop();
  // The fabric expires a dead controller's leases: its carves and
  // booked slots return to the shared residual immediately, and any
  // traffic still tagged with the old handles degrades through the
  // stale-handle fallback. (Schedules would also self-expire after
  // slot_timeout() of inactivity; the kill just doesn't wait.)
  controller_->release_reservations();
  controller_->release_schedules();
  controller_.reset();
  registry_.counters("fleet").add("fleet.controller_kills");
}

void FleetRuntime::restart_controller(const FleetControllerCheckpoint* ckpt) {
  if (!config_.enable_controller) {
    throw std::logic_error("FleetRuntime: built with enable_controller = false");
  }
  if (controller_ != nullptr) {
    throw std::logic_error("FleetRuntime: controller still alive; kill it first");
  }
  controller_ = std::make_unique<FleetController>(&sim_, spine_.get(), config_.controller,
                                                  &registry_);
  if (ckpt != nullptr) controller_->restore(*ckpt);
  registry_.counters("fleet").add("fleet.controller_restarts");
  if (started_) controller_->start();
}

void FleetRuntime::start_flow(const FleetFlowSpec& spec, FleetFlowCallback on_complete) {
  if (spec.src.rack >= racks_.size() || spec.dst.rack >= racks_.size()) {
    throw std::invalid_argument("FleetRuntime: flow references unknown rack");
  }
  if (spec.src.node >= racks_[spec.src.rack]->node_count() ||
      spec.dst.node >= racks_[spec.dst.rack]->node_count()) {
    throw std::invalid_argument("FleetRuntime: flow endpoint outside its rack");
  }
  // Fail at the call site, not from inside a leg's event handler.
  if (spec.size.bit_count() <= 0 || spec.packet_size.bit_count() <= 0) {
    throw std::invalid_argument("FleetRuntime: non-positive flow sizes");
  }
  FleetFlowState state;
  state.spec = spec;
  state.on_complete = std::move(on_complete);
  state.at = spec.src;
  state.packets_total =
      static_cast<std::uint64_t>(spec.size.packet_count(spec.packet_size));
  // Claim a slot (a drained one when the free list has any — bounded
  // pool under flow churn); the pool's generation makes stale closures
  // miss.
  const auto handle = flows_.claim();
  const std::uint32_t idx = handle.index;
  flows_[idx] = std::move(state);
  const std::uint64_t gen = handle.generation;
  sim_.schedule_at(std::max(spec.start, sim_.now()), [this, idx, gen] {
    if (!flows_.is_live(idx, gen)) return;  // slot recycled before the start fired
    FleetFlowState& f = flows_[idx];
    f.started = sim_.now();
    // Same-rack flows collapse to one plain Network flow in either
    // transport mode: a 1-shard fleet stays identical to a standalone
    // FabricRuntime.
    if (f.spec.src.rack == f.spec.dst.rack ||
        config_.transport == SpineTransport::kStoreAndForward) {
      const auto path = spine_->route(f.spec.src.rack, f.spec.dst.rack);
      if (!path) {  // no usable spine path
        finish_fleet_flow(idx, true);
        return;
      }
      f.path = *path;
      advance(idx);
      return;
    }
    // pump_packets resolves the route itself and fails the flow
    // cleanly when the fleet is partitioned.
    pump_packets(idx);
  });
}

// ---------------------------------------------------------------------------
// Packetized spine transport: each packet runs its own rack-leg /
// spine-hop event chain; the flow windows packets across the whole
// path (cut-through pipelining across stages).
// ---------------------------------------------------------------------------

void FleetRuntime::pump_packets(std::uint32_t flow_idx) {
  // A packet reaching a terminal stage inside the loop can finish the
  // flow, recycle the slot, and (through the completion callback)
  // hand it to a brand-new flow — the generation detects that.
  const std::uint64_t gen = flows_.generation(flow_idx);
  while (true) {
    if (!flows_.is_live(flow_idx, gen)) return;
    FleetFlowState& f = flows_[flow_idx];
    if (f.done || f.inflight >= config_.flow_window ||
        f.next_seq >= f.packets_total) {
      return;
    }
    // Reservation binding: when the spine's reservation table moved,
    // adopt (or drop) the pair's circuit. reservation_version() stays
    // 0 until the first reserve(), so unreserved fleets never enter
    // this branch and the default path is untouched.
    if (f.reservation_version != spine_->reservation_version()) {
      f.reservation_version = spine_->reservation_version();
      f.reservation =
          spine_->find_reservation(f.spec.src.rack, f.spec.dst.rack)
              .value_or(fabric::SpineReservationHandle{});
      f.route.reset();  // re-resolve: pinned circuit or shared route
    }
    // Slot-schedule binding: the same version-gated adoption for the
    // TDMA regime. schedule_version() stays 0 until the first
    // reserve_slots(), so unslotted fleets never enter this branch
    // either. A pair may hold several schedules (the controller's
    // multi-path split); each pins its own route, copied once per
    // adoption and shared by every packet riding it.
    if (f.schedule_version != spine_->schedule_version()) {
      f.schedule_version = spine_->schedule_version();
      f.schedules.clear();
      f.schedule_routes.clear();
      for (const fabric::SpineScheduleHandle h :
           spine_->find_schedules(f.spec.src.rack, f.spec.dst.rack)) {
        f.schedules.push_back(h);
        f.schedule_routes.push_back(
            std::make_shared<const std::vector<fabric::SpineLinkId>>(
                spine_->schedule_route(h)));
      }
    }
    // The route is resolved against the spine version: controller
    // repricing (a version bump) redirects the very next packet, and
    // between bumps every packet shares one immutable path (refcount,
    // not a per-packet vector copy). A live reservation pins its
    // route instead — repricing cannot shift circuit traffic.
    if (!f.route || f.route_version != spine_->version()) {
      const bool reserved = spine_->reservation_active(f.reservation);
      // A live reservation's route is immutable: copy it once when
      // the flow binds, then just refresh the stamp across repricing
      // version bumps instead of re-copying an identical vector every
      // controller epoch.
      if (!reserved || !f.route) {
        if (reserved) {
          f.route = std::make_shared<const std::vector<fabric::SpineLinkId>>(
              spine_->reservation_route(f.reservation));
        } else {
          auto route = spine_->route(f.spec.src.rack, f.spec.dst.rack);
          if (!route) {
            finish_fleet_flow(flow_idx, true);
            return;
          }
          f.route = std::make_shared<const std::vector<fabric::SpineLinkId>>(
              std::move(*route));
        }
        // Demand slot rides the route resolution: cross-rack flows
        // bump a stable byte·hop counter per packet (no map walk).
        f.demand_hops = f.route->size();
        f.demand_slot =
            f.demand_hops > 0
                ? &spine_->pair_demand_slot(f.spec.src.rack, f.spec.dst.rack)
                : nullptr;
      }
      f.route_version = spine_->version();
    }
    const std::uint32_t pkt_idx = packets_.claim().index;
    FleetPacket& pkt = packets_[pkt_idx];
    pkt.flow_idx = flow_idx;
    pkt.flow_gen = gen;
    pkt.reservation = f.reservation;
    pkt.size = f.spec.size.packet_at(static_cast<std::int64_t>(f.next_seq),
                                     f.spec.packet_size);
    if (!f.schedules.empty()) {
      // Round-robin across the pair's schedules (the multi-path
      // split): successive packets alternate the parallel routes.
      const auto k = static_cast<std::size_t>(f.next_seq % f.schedules.size());
      pkt.schedule = f.schedules[k];
      pkt.path = f.schedule_routes[k];
    } else {
      pkt.schedule = fabric::SpineScheduleHandle{};
      pkt.path = f.route;
    }
    pkt.next_hop = 0;
    pkt.at = f.spec.src;
    pkt.leg_to = phy::kInvalidNode;
    pkt.rack_legs = 0;
    pkt.spine_hops = 0;
    pkt.retries = 0;
    // Offered cross-rack load in byte·hops, the controller's
    // promotion input.
    if (f.demand_slot != nullptr) {
      *f.demand_slot +=
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, pkt.size.bit_count() / 8)) *
          f.demand_hops;
    }
    ++f.next_seq;
    ++f.inflight;
    packet_step(pkt_idx);
  }
}

std::uint32_t FleetRuntime::release_packet(std::uint32_t pkt_idx) {
  FleetPacket& pkt = packets_[pkt_idx];
  const std::uint32_t flow_idx = pkt.flow_idx;
  if (FleetFlowState* f = live_flow(pkt)) {
    --f->inflight;
    // The last straggler of a finished flow returns the flow slot.
    maybe_recycle_flow(flow_idx);
  }
  // The recycle resets the slot in place, dropping the route refcount
  // and the reservation handle.
  packets_.recycle(pkt_idx);
  return flow_idx;
}

/// Move one packet one stage further: the rack leg toward the current
/// rack's exit gateway (or the final destination), else the next spine
/// crossing, else delivery. A dead next hop re-plans from the rack the
/// packet is in.
void FleetRuntime::packet_step(std::uint32_t pkt_idx) {
  FleetPacket& pkt = packets_[pkt_idx];
  FleetFlowState* fp = live_flow(pkt);
  if (fp == nullptr || fp->done) {  // flow failed or recycled; evaporate
    release_packet(pkt_idx);
    return;
  }
  FleetFlowState& f = *fp;
  if (pkt.next_hop < pkt.path->size()) {
    const fabric::SpineLinkId hop = (*pkt.path)[pkt.next_hop];
    if (!spine_->link_up(hop)) {
      // Mid-flight spine failure: re-plan from where the packet is.
      auto replan = spine_->route(pkt.at.rack, f.spec.dst.rack);
      if (!replan) {
        packet_failed(pkt_idx);
        return;
      }
      ++spine_reroutes_slot_;
      pkt.path = std::make_shared<const std::vector<fabric::SpineLinkId>>(
          std::move(*replan));
      pkt.next_hop = 0;
      packet_step(pkt_idx);  // depth bounded by the rack count
      return;
    }
    const fabric::SpineLinkParams& lp = spine_->link(hop);
    const fabric::RackNode exit = lp.a.rack == pkt.at.rack ? lp.a : lp.b;
    if (pkt.at.node != exit.node) {
      packet_rack_leg(pkt_idx, exit.node);
      return;
    }
    packet_spine_hop(pkt_idx);
    return;
  }
  if (pkt.at.node != f.spec.dst.node) {
    packet_rack_leg(pkt_idx, f.spec.dst.node);
    return;
  }
  packet_delivered(pkt_idx);
}

void FleetRuntime::packet_rack_leg(std::uint32_t pkt_idx, phy::NodeId to) {
  FleetPacket& pkt = packets_[pkt_idx];
  pkt.leg_to = to;
  const std::uint32_t rack = pkt.at.rack;
  // Both lambdas fit std::function's inline buffer: no per-stage heap
  // allocation on the packet hot path. The delivery event fires inside
  // the rack shard, so everything touching fleet state rides
  // defer_rack back to the fleet layer (inline under serial drive).
  racks_[rack]->network().send_probe(
      pkt.at.node, to, pkt.size,
      [this, rack, pkt_idx](SimTime, int, bool delivered) {
        defer_rack(rack, [this, pkt_idx, delivered] {
          // rsf-lint: unguarded-slot-ok(each packet slot has exactly one in-flight event; release happens only inside it)
          FleetPacket& p = packets_[pkt_idx];
          const FleetFlowState* f = live_flow(p);
          if (f == nullptr || f->done) {
            release_packet(pkt_idx);
            return;
          }
          if (!delivered) {  // the rack fabric exhausted its own retries
            packet_retry(pkt_idx);
            return;
          }
          p.at.node = p.leg_to;
          ++p.rack_legs;
          packet_step(pkt_idx);
        });
      });
}

void FleetRuntime::packet_spine_hop(std::uint32_t pkt_idx) {
  FleetPacket& pkt = packets_[pkt_idx];
  const fabric::SpineLinkId hop = (*pkt.path)[pkt.next_hop];
  const std::uint32_t from_rack = pkt.at.rack;
  const auto on_hop = [this, pkt_idx](SimTime, bool delivered) {
    // rsf-lint: unguarded-slot-ok(each packet slot has exactly one in-flight event; release happens only inside it)
    FleetPacket& p = packets_[pkt_idx];
    const FleetFlowState* f = live_flow(p);
    if (f == nullptr || f->done) {
      release_packet(pkt_idx);
      return;
    }
    if (!delivered) {  // spine loss: the fleet layer retransmits
      packet_retry(pkt_idx);
      return;
    }
    const fabric::SpineLinkId crossed = (*p.path)[p.next_hop];
    p.at = spine_->far_end(crossed, p.at.rack);
    ++p.next_hop;
    ++p.spine_hops;
    packet_step(pkt_idx);
  };
  // Slotted packets ride their schedule's owned calendar slots; the
  // rest ride the reservation overload (which itself degrades a stale
  // or absent handle to the shared residual). Either way the delivery
  // continuation is the same.
  const bool ok =
      pkt.schedule.valid()
          ? spine_->send_packet(hop, from_rack, pkt.size, pkt.schedule, on_hop)
          : spine_->send_packet(hop, from_rack, pkt.size, pkt.reservation, on_hop);
  // packet_step checked link_up() synchronously, so today a refusal
  // can't happen — but it is a failure-path event, not a logic
  // regression: treat a link that died between the check and the send
  // like a loss, so the retry's re-entry into packet_step re-resolves
  // the route around the dead hop (bounded by max_retries) instead of
  // failing a flow a detour could still deliver.
  if (!ok) packet_retry(pkt_idx);
}

void FleetRuntime::packet_retry(std::uint32_t pkt_idx) {
  FleetPacket& pkt = packets_[pkt_idx];
  if (pkt.retries >= config_.max_retries) {
    packet_failed(pkt_idx);
    return;
  }
  ++pkt.retries;
  if (FleetFlowState* f = live_flow(pkt)) ++f->retransmits;
  ++spine_retransmits_slot_;
  // Even at retry_delay == 0 the retry lands in a follow-on batch at
  // the same instant — after any link failure scheduled in the current
  // batch has applied. packet_step then re-checks the (possibly stale)
  // path's next hop against live administrative state and re-plans a
  // dead hop before sending, so a zero-delay retry can never ping-pong
  // a pre-failure route into a link that died in its own batch.
  const auto retry = [this, pkt_idx] { packet_step(pkt_idx); };
  static_assert(sim::is_inline_event_v<decltype(retry)>,
                "the per-packet retry must stay on the inline event arm");
  sim_.schedule_after(config_.retry_delay, retry);
}

void FleetRuntime::packet_delivered(std::uint32_t pkt_idx) {
  const int rack_legs = packets_[pkt_idx].rack_legs;
  const int spine_hops = packets_[pkt_idx].spine_hops;
  const std::uint32_t flow_idx = release_packet(pkt_idx);
  FleetFlowState& f = flows_[flow_idx];
  ++f.delivered;
  f.rack_legs = std::max(f.rack_legs, rack_legs);
  f.spine_hops = std::max(f.spine_hops, spine_hops);
  if (f.delivered == f.packets_total) {
    finish_fleet_flow(flow_idx, false);
    return;
  }
  pump_packets(flow_idx);
}

void FleetRuntime::packet_failed(std::uint32_t pkt_idx) {
  // Decide before releasing: if this was a finished flow's last
  // straggler, release recycles the slot and flows_[flow_idx] would
  // already belong to someone else.
  const FleetFlowState* f = live_flow(packets_[pkt_idx]);
  const bool fail_flow = f != nullptr && !f->done;
  const std::uint32_t flow_idx = release_packet(pkt_idx);
  if (fail_flow) finish_fleet_flow(flow_idx, true);
}

// ---------------------------------------------------------------------------
// Store-and-forward transport (the PR 2 baseline) and the same-rack
// collapse: the whole payload moves stage by stage.
// ---------------------------------------------------------------------------

/// Move the payload one stage further: the next intra-rack leg toward
/// the current rack's exit gateway (or the final destination), else
/// the next spine crossing, else done.
void FleetRuntime::advance(std::uint32_t flow_idx) {
  FleetFlowState& f = flows_[flow_idx];
  if (f.next_hop < f.path.size()) {
    const fabric::SpineLinkId hop = f.path[f.next_hop];
    const fabric::RackNode exit = f.at.rack == spine_->link(hop).a.rack
                                      ? spine_->link(hop).a
                                      : spine_->link(hop).b;
    if (f.at.node != exit.node) {
      run_rack_leg(flow_idx, exit.node);
      return;
    }
    const std::uint32_t from_rack = f.at.rack;
    const std::uint64_t gen = flows_.generation(flow_idx);
    const bool ok =
        spine_->transfer(hop, from_rack, f.spec.size, [this, flow_idx, gen](SimTime) {
          if (!flows_.is_live(flow_idx, gen)) return;  // slot recycled since
          advance(flow_idx);
        });
    if (!ok) {  // spine link went down since routing
      finish_fleet_flow(flow_idx, true);
      return;
    }
    // Bulk crossings note pair demand too (payload bytes per spine
    // hop crossed — byte·hops, the same unit the packetized path
    // records): without this the reservation policy is blind under
    // the store-and-forward comparison baseline.
    spine_->pair_demand_slot(f.spec.src.rack, f.spec.dst.rack) +=
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, f.spec.size.bit_count() / 8));
    ++f.next_hop;
    ++f.spine_hops;
    f.at = spine_->far_end(hop, from_rack);
    return;
  }
  if (f.at.node != f.spec.dst.node) {
    run_rack_leg(flow_idx, f.spec.dst.node);
    return;
  }
  finish_fleet_flow(flow_idx, false);
}

void FleetRuntime::run_rack_leg(std::uint32_t flow_idx, phy::NodeId to) {
  FleetFlowState& f = flows_[flow_idx];
  fabric::FlowSpec leg;
  leg.id = next_leg_id_++;
  leg.src = f.at.node;
  leg.dst = to;
  leg.size = f.spec.size;
  leg.packet_size = f.spec.packet_size;
  leg.start = sim_.now();
  ++f.rack_legs;
  const std::uint64_t gen = flows_.generation(flow_idx);
  const std::uint32_t rack = f.at.rack;
  // The completion fires inside the rack shard; the body defers back
  // to the fleet layer (inline under serial drive).
  racks_[rack]->network().start_flow(
      leg, [this, rack, flow_idx, gen, to](const fabric::FlowResult& r) {
        defer_rack(rack, [this, flow_idx, gen, to, failed = r.failed] {
          if (!flows_.is_live(flow_idx, gen)) return;  // slot recycled since
          if (failed) {
            finish_fleet_flow(flow_idx, true);
            return;
          }
          flows_[flow_idx].at.node = to;
          advance(flow_idx);
        });
      });
}

void FleetRuntime::finish_fleet_flow(std::uint32_t flow_idx, bool failed) {
  FleetFlowState& f = flows_[flow_idx];
  f.done = true;
  FleetFlowResult result;
  result.spec = f.spec;
  result.started = f.started;
  result.finished = sim_.now();
  result.rack_legs = f.rack_legs;
  result.spine_hops = f.spine_hops;
  result.retransmits = f.retransmits;
  result.failed = failed;
  (failed ? flows_failed_ : flows_completed_)++;
  // Detach the callback before invoking: it may start new fleet flows
  // and grow flows_, invalidating f. Recycle first, so a callback that
  // immediately starts another flow reuses this very slot (a finished
  // packetized flow with stragglers still in flight keeps the slot via
  // the inflight gate until the last one drains).
  FleetFlowCallback cb = std::move(f.on_complete);
  f.on_complete = nullptr;
  maybe_recycle_flow(flow_idx);
  if (cb) cb(result);
}

void FleetRuntime::maybe_recycle_flow(std::uint32_t flow_idx) {
  // Gated on done + last straggler drained. The pool reset drops the
  // route/reservation refs and the bumped generation makes every
  // closure that captured the old (idx, gen) pair detectably stale.
  flows_.maybe_recycle(flow_idx);
}

workload::CrossRackShuffle& FleetRuntime::add_shuffle(workload::CrossRackShuffleConfig cfg) {
  shuffles_.push_back(std::make_unique<workload::CrossRackShuffle>(this, std::move(cfg)));
  return *shuffles_.back();
}

workload::CrossRackIncast& FleetRuntime::add_incast(workload::CrossRackIncastConfig cfg) {
  incasts_.push_back(std::make_unique<workload::CrossRackIncast>(this, std::move(cfg)));
  return *incasts_.back();
}

telemetry::Registry& FleetRuntime::metrics() {
  for (std::size_t i = 0; i < racks_.size(); ++i) {
    registry_.import_prefixed(racks_[i]->metrics(), "rack" + std::to_string(i) + ".");
  }
  return registry_;
}

telemetry::Table FleetRuntime::metrics_table() {
  return metrics().to_table("fleet metrics");
}

}  // namespace rsf::runtime
