#include "runtime/fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace rsf::runtime {

using rsf::sim::SimTime;

FleetRuntime::FleetRuntime(FleetConfig config) : config_(std::move(config)) {
  if (config_.racks.empty()) {
    throw std::invalid_argument("FleetRuntime: need at least one rack");
  }
  racks_.reserve(config_.racks.size());
  for (const RackSpec& spec : config_.racks) {
    racks_.push_back(std::make_unique<FabricRuntime>(&sim_, spec.config));
  }
  for (std::size_t i = 0; i < config_.racks.size(); ++i) {
    const phy::NodeId gw = config_.racks[i].gateway;
    if (gw >= racks_[i]->node_count()) {
      throw std::invalid_argument("FleetRuntime: gateway outside rack " + std::to_string(i));
    }
  }
  spine_ = std::make_unique<fabric::Interconnect>(&sim_, &registry_);
  for (const SpineSpec& s : config_.spine) {
    if (s.rack_a >= racks_.size() || s.rack_b >= racks_.size()) {
      throw std::invalid_argument("FleetRuntime: spine link references unknown rack");
    }
    fabric::SpineLinkParams p;
    p.a = {s.rack_a, s.gateway_a == phy::kInvalidNode ? gateway(s.rack_a) : s.gateway_a};
    p.b = {s.rack_b, s.gateway_b == phy::kInvalidNode ? gateway(s.rack_b) : s.gateway_b};
    if (p.a.node >= racks_[s.rack_a]->node_count() ||
        p.b.node >= racks_[s.rack_b]->node_count()) {
      throw std::invalid_argument("FleetRuntime: spine gateway outside its rack");
    }
    p.rate = s.rate;
    p.latency = s.latency;
    spine_->add_link(p);
  }
}

FabricRuntime& FleetRuntime::rack(std::size_t i) {
  if (i >= racks_.size()) throw std::out_of_range("FleetRuntime: unknown rack");
  return *racks_[i];
}

phy::NodeId FleetRuntime::gateway(std::uint32_t rack) const {
  if (rack >= config_.racks.size()) throw std::out_of_range("FleetRuntime: unknown rack");
  return config_.racks[rack].gateway;
}

fabric::RackNode FleetRuntime::at(std::uint32_t rack_idx, int x, int y) {
  return {rack_idx, rack(rack_idx).node_at(x, y)};
}

void FleetRuntime::start() {
  for (auto& r : racks_) r->start();
}

void FleetRuntime::stop() {
  for (auto& r : racks_) r->stop();
}

void FleetRuntime::start_flow(const FleetFlowSpec& spec, FleetFlowCallback on_complete) {
  if (spec.src.rack >= racks_.size() || spec.dst.rack >= racks_.size()) {
    throw std::invalid_argument("FleetRuntime: flow references unknown rack");
  }
  if (spec.src.node >= racks_[spec.src.rack]->node_count() ||
      spec.dst.node >= racks_[spec.dst.rack]->node_count()) {
    throw std::invalid_argument("FleetRuntime: flow endpoint outside its rack");
  }
  // Fail at the call site, not from inside a leg's event handler.
  if (spec.size.bit_count() <= 0 || spec.packet_size.bit_count() <= 0) {
    throw std::invalid_argument("FleetRuntime: non-positive flow sizes");
  }
  FleetFlowState state;
  state.spec = spec;
  state.on_complete = std::move(on_complete);
  state.at = spec.src;
  const auto idx = static_cast<std::uint32_t>(flows_.size());
  flows_.push_back(std::move(state));
  sim_.schedule_at(std::max(spec.start, sim_.now()), [this, idx] {
    FleetFlowState& f = flows_[idx];
    f.started = sim_.now();
    const auto path = spine_->route(f.spec.src.rack, f.spec.dst.rack);
    if (!path) {  // no usable spine path
      finish_fleet_flow(idx, true);
      return;
    }
    f.path = *path;
    advance(idx);
  });
}

/// Move the payload one stage further: the next intra-rack leg toward
/// the current rack's exit gateway (or the final destination), else
/// the next spine crossing, else done.
void FleetRuntime::advance(std::uint32_t flow_idx) {
  FleetFlowState& f = flows_[flow_idx];
  if (f.next_hop < f.path.size()) {
    const fabric::SpineLinkId hop = f.path[f.next_hop];
    const fabric::RackNode exit = f.at.rack == spine_->link(hop).a.rack
                                      ? spine_->link(hop).a
                                      : spine_->link(hop).b;
    if (f.at.node != exit.node) {
      run_rack_leg(flow_idx, exit.node);
      return;
    }
    const std::uint32_t from_rack = f.at.rack;
    const bool ok = spine_->transfer(hop, from_rack, f.spec.size, [this, flow_idx](SimTime) {
      advance(flow_idx);
    });
    if (!ok) {  // spine link went down since routing
      finish_fleet_flow(flow_idx, true);
      return;
    }
    ++f.next_hop;
    ++f.spine_hops;
    f.at = spine_->far_end(hop, from_rack);
    return;
  }
  if (f.at.node != f.spec.dst.node) {
    run_rack_leg(flow_idx, f.spec.dst.node);
    return;
  }
  finish_fleet_flow(flow_idx, false);
}

void FleetRuntime::run_rack_leg(std::uint32_t flow_idx, phy::NodeId to) {
  FleetFlowState& f = flows_[flow_idx];
  fabric::FlowSpec leg;
  leg.id = next_leg_id_++;
  leg.src = f.at.node;
  leg.dst = to;
  leg.size = f.spec.size;
  leg.packet_size = f.spec.packet_size;
  leg.start = sim_.now();
  ++f.rack_legs;
  racks_[f.at.rack]->network().start_flow(
      leg, [this, flow_idx, to](const fabric::FlowResult& r) {
        if (r.failed) {
          finish_fleet_flow(flow_idx, true);
          return;
        }
        flows_[flow_idx].at.node = to;
        advance(flow_idx);
      });
}

void FleetRuntime::finish_fleet_flow(std::uint32_t flow_idx, bool failed) {
  FleetFlowState& f = flows_[flow_idx];
  FleetFlowResult result;
  result.spec = f.spec;
  result.started = f.started;
  result.finished = sim_.now();
  result.rack_legs = f.rack_legs;
  result.spine_hops = f.spine_hops;
  result.failed = failed;
  (failed ? flows_failed_ : flows_completed_)++;
  if (f.on_complete) {
    // Detach the callback before invoking: it may start new fleet
    // flows and grow flows_, invalidating f.
    FleetFlowCallback cb = std::move(f.on_complete);
    cb(result);
  }
}

workload::CrossRackShuffle& FleetRuntime::add_shuffle(workload::CrossRackShuffleConfig cfg) {
  shuffles_.push_back(std::make_unique<workload::CrossRackShuffle>(this, std::move(cfg)));
  return *shuffles_.back();
}

workload::CrossRackIncast& FleetRuntime::add_incast(workload::CrossRackIncastConfig cfg) {
  incasts_.push_back(std::make_unique<workload::CrossRackIncast>(this, std::move(cfg)));
  return *incasts_.back();
}

telemetry::Registry& FleetRuntime::metrics() {
  for (std::size_t i = 0; i < racks_.size(); ++i) {
    registry_.import_prefixed(racks_[i]->metrics(), "rack" + std::to_string(i) + ".");
  }
  return registry_;
}

telemetry::Table FleetRuntime::metrics_table() {
  return metrics().to_table("fleet metrics");
}

}  // namespace rsf::runtime
