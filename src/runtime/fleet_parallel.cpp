#include "runtime/fleet_parallel.hpp"

#include <stdexcept>
#include <string>

namespace rsf::runtime {

using rsf::sim::ParallelMergePeer;
using rsf::sim::SimTime;
using rsf::sim::Simulator;

ParallelFleetEngine::ParallelFleetEngine(Simulator* fleet_ring,
                                         std::vector<Simulator*> shard_rings,
                                         int workers)
    : fleet_(fleet_ring), shards_(std::move(shard_rings)), workers_(workers) {
  if (fleet_ == nullptr) {
    throw std::invalid_argument("ParallelFleetEngine: null fleet ring");
  }
  if (workers_ < 2) {
    throw std::invalid_argument(
        "ParallelFleetEngine: workers < 2 (the 1-worker path is FleetRuntime "
        "itself)");
  }
  mail_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i] == nullptr) {
      throw std::invalid_argument("ParallelFleetEngine: null shard ring");
    }
    mail_.push_back(std::make_unique<Mailbox>());
  }
  threads_.reserve(static_cast<std::size_t>(workers_) - 1);
  for (int id = 1; id < workers_; ++id) {
    threads_.emplace_back([this, id] { worker_main(id); });
  }
}

ParallelFleetEngine::~ParallelFleetEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_worker_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelFleetEngine::emit(std::uint32_t shard, std::function<void()> fn) {
  Mailbox& mb = *mail_[shard];
  if (!mb.ring.push(Emission{shards_[shard]->now(), std::move(fn)})) {
    throw std::runtime_error(
        "ParallelFleetEngine: mailbox overflow on shard " +
        std::to_string(shard) +
        " (windows stop at the first emission; this is a logic error, not "
        "load)");
  }
  mb.emitted.store(true, std::memory_order_relaxed);
}

std::size_t ParallelFleetEngine::total_strong() const {
  std::size_t n = ParallelMergePeer::strong_pending(*fleet_);
  for (const Simulator* s : shards_) n += ParallelMergePeer::strong_pending(*s);
  return n;
}

void ParallelFleetEngine::advance_all_clocks(SimTime t) {
  ParallelMergePeer::advance_clock(*fleet_, t);
  for (Simulator* s : shards_) ParallelMergePeer::advance_clock(*s, t);
}

void ParallelFleetEngine::drain_mail() {
  // Continuations run in push order — exactly where the oracle's inline
  // callback ran, right after the emitting event. Each emission's time
  // is <= every ring's pending minimum (the window bound guaranteed
  // it), so hoisting every clock to it cannot rewind or overtake.
  bool any = true;
  while (any) {
    any = false;
    for (std::unique_ptr<Mailbox>& mb : mail_) {
      Emission e;
      while (mb->ring.pop(e)) {
        any = true;
        ++cross_shard_events_;
        advance_all_clocks(e.time);
        e.fn();
      }
    }
  }
}

std::size_t ParallelFleetEngine::drain_window(const Window& w) {
  Simulator& s = *shards_[w.shard];
  Mailbox& mb = *mail_[w.shard];
  mb.emitted.store(false, std::memory_order_relaxed);
  std::size_t n = 0;
  for (;;) {
    // The oracle stops an unbounded run when only weak events remain
    // fleet-wide; frozen (everything outside this shard, quiescent for
    // the whole window) + local replays that check exactly.
    if (w.frozen_strong != SIZE_MAX &&
        w.frozen_strong + ParallelMergePeer::strong_pending(s) == 0) {
      break;
    }
    const SimTime t = s.next_time();
    if (t >= w.bound || t > w.until) break;
    n += s.run_events(1);
    if (mb.emitted.load(std::memory_order_relaxed)) break;
  }
  return n;
}

void ParallelFleetEngine::worker_main(int id) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_worker_.wait(lk, [&] {
      return stop_ || (job_pending_ && owner_of(job_.shard) == id);
    });
    if (stop_) return;
    job_pending_ = false;
    const Window w = job_;
    lk.unlock();
    std::size_t n = 0;
    std::exception_ptr err;
    try {
      n = drain_window(w);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    job_events_ = n;
    job_error_ = err;
    job_done_ = true;
    cv_main_.notify_one();
  }
}

std::size_t ParallelFleetEngine::run_until(SimTime until) {
  const bool unbounded = until == SimTime::infinity();
  const int kFleetRing = -1;
  std::size_t count = 0;
  for (;;) {
    drain_mail();
    const std::size_t strong_total = total_strong();
    if (unbounded && strong_total == 0) break;
    // Frontier scan: the lexicographically earliest (time, seq) key
    // across every ring, plus the tightest *time* bound any other
    // ring imposes on the winner. The rings share one sequence
    // counter, so the key order IS the oracle's schedule order —
    // cross-ring same-instant ties (spine FIFO booking, RNG draw
    // order) resolve exactly as the single clock would.
    Simulator::PendingKey best = fleet_->next_key();
    int who = kFleetRing;
    SimTime bound = SimTime::infinity();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Simulator::PendingKey k = shards_[i]->next_key();
      if (k < best) {
        // The dethroned minimum is <= every previously seen time, so
        // it is the new bound.
        bound = best.time;
        best = k;
        who = static_cast<int>(i);
      } else if (k.time < bound) {
        bound = k.time;
      }
    }
    if (best.time == SimTime::infinity() || best.time > until) break;
    advance_all_clocks(best.time);
    if (who == kFleetRing) {
      // Fleet-layer events (spine hops, controller epochs, retries,
      // flow starts) always run serially on the merge thread; they may
      // touch any shard's state (scheduling into shard rings is safe:
      // everyone else is parked).
      count += fleet_->run_events(1);
      continue;
    }
    if (bound <= best.time) {
      // Frontier tie across rings: no conservative window exists, so
      // the key winner single-steps inline and the merge re-evaluates.
      count += shards_[static_cast<std::size_t>(who)]->run_events(1);
      continue;
    }
    ++sync_windows_;
    Window w;
    w.shard = static_cast<std::uint32_t>(who);
    w.bound = bound;
    w.until = until;
    w.frozen_strong =
        unbounded ? strong_total - ParallelMergePeer::strong_pending(
                                       *shards_[static_cast<std::size_t>(who)])
                  : SIZE_MAX;
    const int owner = owner_of(w.shard);
    if (owner == 0) {
      count += drain_window(w);
    } else {
      std::unique_lock<std::mutex> lk(mu_);
      job_ = w;
      job_pending_ = true;
      job_done_ = false;
      cv_worker_.notify_all();
      cv_main_.wait(lk, [&] { return job_done_; });
      if (job_error_) {
        std::exception_ptr err = job_error_;
        job_error_ = nullptr;
        std::rethrow_exception(err);
      }
      count += job_events_;
    }
  }
  drain_mail();
  // Oracle tail: a bounded run that drained every strong event parks
  // the clock at the horizon.
  if (!unbounded && total_strong() == 0) advance_all_clocks(until);
  return count;
}

}  // namespace rsf::runtime
