#include "runtime/fleet_controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rsf::runtime {

using rsf::sim::SimTime;

FleetController::FleetController(rsf::sim::Simulator* sim, fabric::Interconnect* spine,
                                 FleetControllerConfig config,
                                 telemetry::Registry* registry)
    : sim_(sim),
      spine_(spine),
      config_(config),
      own_registry_(registry ? nullptr : std::make_unique<telemetry::Registry>()),
      registry_(registry ? registry : own_registry_.get()),
      counters_(registry_->counters("fleet")),
      util_series_(registry_->series("fleet.max_spine_util")) {
  if (sim_ == nullptr || spine_ == nullptr) {
    throw std::invalid_argument("FleetController: null simulator or spine");
  }
  if (config_.epoch <= SimTime::zero()) {
    throw std::invalid_argument("FleetController: non-positive epoch");
  }
  if (config_.base_cost <= 0) {
    throw std::invalid_argument("FleetController: non-positive base cost");
  }
  if (config_.demand_half_life_epochs < 0) {
    throw std::invalid_argument("FleetController: negative demand half-life");
  }
  const FleetReservationPolicy& rp = config_.reservations;
  if (rp.enable) {
    if (rp.fraction <= 0 || rp.fraction >= 1) {
      throw std::invalid_argument("FleetController: reservation fraction outside (0, 1)");
    }
    if (rp.promote_after < 1 || rp.demote_after < 1) {
      throw std::invalid_argument("FleetController: non-positive hysteresis epochs");
    }
  }
  const FleetSchedulePolicy& sp = config_.schedules;
  if (sp.enable) {
    // One circuit discipline per controller: a pair holding both a
    // carve and a schedule would double-subtract from the shared
    // residual and the policies' demotion logic would fight.
    if (rp.enable) {
      throw std::invalid_argument(
          "FleetController: reservation and schedule policies are mutually exclusive");
    }
    if (sp.period < 1 || sp.period > fabric::SlotCalendar::kFrameSlots ||
        fabric::SlotCalendar::kFrameSlots % sp.period != 0 || sp.duty < 1 ||
        sp.duty > sp.period) {
      throw std::invalid_argument("FleetController: invalid slot schedule shape");
    }
    if (sp.promote_after < 1 || sp.demote_after < 1) {
      throw std::invalid_argument("FleetController: non-positive hysteresis epochs");
    }
  }
}

void FleetController::snapshot_busy() {
  last_busy_.resize(spine_->link_count());
  for (fabric::SpineLinkId id = 0; id < spine_->link_count(); ++id) {
    const fabric::SpineLinkParams& p = spine_->link(id);
    last_busy_[id][0] = spine_->busy_time(id, p.a.rack);
    last_busy_[id][1] = spine_->busy_time(id, p.b.rack);
  }
}

void FleetController::start() {
  if (running_) return;
  running_ = true;
  snapshot_busy();  // open the first observation window at "now"
  // Warm-spine start: pairs this controller knows nothing about get
  // their demand baseline pinned to the current cumulative total, so a
  // cold mid-run restart diffs only post-restart traffic instead of
  // misreading the fleet's whole history as one epoch's delta. At
  // t = 0 the demand map is empty and this is a no-op; checkpointed
  // pairs were restored into pair_state_ already and keep their
  // (deliberately stale) baselines.
  for (const auto& [key, total] : spine_->pair_demand()) {
    auto [it, inserted] = pair_state_.try_emplace(key);
    if (inserted) it->second.last_bytes = total;
  }
  next_tick_ = sim_->schedule_weak_after(config_.epoch, [this] { tick(); });
}

FleetControllerCheckpoint FleetController::checkpoint() const {
  FleetControllerCheckpoint ckpt;
  ckpt.epochs = epochs_;
  ckpt.pairs.reserve(pair_state_.size());
  for (const auto& [key, st] : pair_state_) {
    bool scheduled = false;
    for (const fabric::SpineScheduleHandle h : st.sched) {
      scheduled = scheduled || spine_->schedule_active(h);
    }
    ckpt.pairs.push_back({key, st.last_bytes, st.score, st.hot_streak, st.idle_streak,
                          st.handle.valid() && spine_->reservation_active(st.handle),
                          scheduled});
  }
  return ckpt;
}

void FleetController::restore(const FleetControllerCheckpoint& ckpt) {
  if (running_) {
    throw std::logic_error("FleetController: restore into a running controller");
  }
  pair_state_.clear();
  promoted_ = 0;
  for (const FleetControllerCheckpoint::PairEntry& e : ckpt.pairs) {
    PairState st;
    st.last_bytes = e.last_bytes;
    st.score = e.score;
    st.hot_streak = e.hot_streak;
    st.idle_streak = e.idle_streak;
    // A reservation intent restores as a full promote streak: if the
    // pair is still hot in the first post-restart epoch, the normal
    // pass-2 admission re-earns the carve immediately; if it cooled
    // during the outage, the streak resets to zero there and nothing
    // is re-reserved. Handles are never resurrected.
    if (e.reserved) {
      st.hot_streak = std::max(st.hot_streak, config_.reservations.promote_after);
    }
    // Schedule intents restore the same way: a full promote streak,
    // never a handle (the booked slots expired with the outage).
    if (e.scheduled) {
      st.hot_streak = std::max(st.hot_streak, config_.schedules.promote_after);
    }
    pair_state_.emplace(e.key, st);
  }
}

std::size_t FleetController::release_reservations() {
  std::size_t released = 0;
  for (auto& [key, st] : pair_state_) {
    if (!st.handle.valid() || !spine_->reservation_active(st.handle)) {
      st.handle = {};
      continue;
    }
    spine_->release(st.handle);
    st.handle = {};
    ++released;
  }
  promoted_ = 0;
  return released;
}

std::size_t FleetController::release_schedules() {
  std::size_t released = 0;
  for (auto& [key, st] : pair_state_) {
    for (const fabric::SpineScheduleHandle h : st.sched) {
      if (!spine_->schedule_active(h)) continue;  // expired/preempted already
      spine_->release_slots(h);
      ++released;
    }
    st.sched.clear();
  }
  promoted_ = 0;
  return released;
}

void FleetController::stop() {
  if (!running_) return;
  running_ = false;
  sim_->cancel(next_tick_);
  next_tick_ = rsf::sim::kInvalidEventId;
}

void FleetController::tick() {
  if (!running_) return;
  const double epoch_s = std::max(config_.epoch.sec(), 1e-12);
  // Links added since the last tick diff against a zero baseline.
  const std::size_t known = last_busy_.size();
  last_busy_.resize(spine_->link_count());
  for (std::size_t i = known; i < last_busy_.size(); ++i) last_busy_[i] = {};

  double max_util = 0.0;
  for (fabric::SpineLinkId id = 0; id < spine_->link_count(); ++id) {
    const fabric::SpineLinkParams& p = spine_->link(id);
    const std::uint32_t rack_of[2] = {p.a.rack, p.b.rack};
    double util = 0.0;
    SimTime backlog = SimTime::zero();
    for (int d = 0; d < 2; ++d) {
      const SimTime busy = spine_->busy_time(id, rack_of[d]);
      // busy_total is booked at send time, so an epoch that enqueued a
      // deep FIFO can show > 1: that is pressure, and the cost should
      // reflect it — no clamping here.
      double u = (busy - last_busy_[id][d]).sec() / epoch_s;
      last_busy_[id][d] = busy;
      // Price what shared traffic actually sees, not the nameplate
      // rate: `u` is the fraction of the epoch the *residual* FIFO
      // spent serializing, so re-express it against full capacity
      // (× residual/rate) and add the carved fraction back — carved
      // capacity is spoken-for whether or not the circuit is busy, so
      // a hot reserved direction can no longer advertise itself as
      // cheap. With nothing carved the ratio is exactly 1 and this is
      // the pre-reservation arithmetic, bit for bit.
      const double residual_ratio = spine_->residual_rate(id, rack_of[d]) / p.rate;
      u = u * residual_ratio + (1.0 - residual_ratio);
      util = std::max(util, u);
      backlog = std::max(backlog, spine_->queue_backlog(id, rack_of[d]));
    }
    max_util = std::max(max_util, util);
    if (util >= config_.hot_threshold) counters_.add("fleet.hot_links");
    const double cost = config_.base_cost + config_.utilization_weight * util +
                        config_.backlog_weight_per_us * backlog.us();
    if (std::abs(cost - spine_->link_cost(id)) > config_.cost_epsilon) {
      // set_link_cost bumps the spine version: memoized routes drop
      // and the packetized transport re-plans at its next packet.
      spine_->set_link_cost(id, cost);
      ++reprices_;
      counters_.add("fleet.reprices");
    }
  }
  last_max_util_ = max_util;
  util_series_.record(sim_->now(), max_util);
  if (config_.reservations.enable) run_reservation_policy();
  if (config_.schedules.enable) run_schedule_policy();
  ++epochs_;
  counters_.add("fleet.epochs");
  next_tick_ = sim_->schedule_weak_after(config_.epoch, [this] { tick(); });
}

void FleetController::run_reservation_policy() {
  const FleetReservationPolicy& rp = config_.reservations;
  // Per-epoch multiplicative decay of the ranking score: 2^(−1/h)
  // halves a silent pair's score every h epochs, so ancient heat
  // stops outranking current heat. Half-life 0 disables decay (factor
  // 1): the score is then exactly the cumulative byte·hop total.
  const double decay = config_.demand_half_life_epochs > 0
                           ? std::exp2(-1.0 / config_.demand_half_life_epochs)
                           : 1.0;
  // Pass 1 — streaks and demotions. The demand map only ever grows,
  // so iterating it visits every pair this fleet has offered
  // cross-rack load for — including pairs that went silent this
  // epoch (their delta is 0, their score decays, and their idle
  // streak advances).
  std::vector<std::pair<double, std::uint64_t>> candidates;  // (score, key)
  for (const auto& [key, total_bytes] : spine_->pair_demand()) {
    PairState& st = pair_state_[key];
    const std::uint64_t delta = total_bytes - st.last_bytes;
    st.last_bytes = total_bytes;
    st.score = st.score * decay + static_cast<double>(delta);
    if (st.handle.valid() && !spine_->reservation_active(st.handle)) {
      // Preempted by a link failure since the last epoch: forget the
      // handle; the pair re-earns its promotion on the new topology.
      st.handle = {};
      st.hot_streak = 0;
      st.idle_streak = 0;
      --promoted_;
    }
    if (!st.handle.valid()) {
      st.hot_streak = delta >= rp.hot_bytes_per_epoch ? st.hot_streak + 1 : 0;
      // Rank candidates by the decayed demand score, not this epoch's
      // delta: a long multi-hop pair fills its pipeline slower and
      // would lose an early delta race to a short-haul burst.
      if (st.hot_streak >= rp.promote_after) candidates.emplace_back(st.score, key);
      continue;
    }
    st.idle_streak = delta <= rp.idle_bytes_per_epoch ? st.idle_streak + 1 : 0;
    if (st.idle_streak >= rp.demote_after) {
      spine_->release(st.handle);
      st.handle = {};
      st.hot_streak = 0;
      st.idle_streak = 0;
      --promoted_;
      ++demotions_;
      counters_.add("fleet.demotions");
    }
  }
  // Pass 2 — promotions, hottest first: when several pairs cleared
  // the streak this epoch, the scarce carve goes to the largest
  // decayed demand score (key ascending on ties — deterministic).
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first : a.second < b.second;
            });
  for (const auto& [score, key] : candidates) {
    if (promoted_ >= rp.max_reservations) break;
    PairState& st = pair_state_[key];
    const auto src = static_cast<std::uint32_t>(key >> 32);
    const auto dst = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    if (auto h = spine_->reserve(src, dst, rp.fraction)) {
      st.handle = *h;
      st.idle_streak = 0;
      ++promoted_;
      ++promotions_;
      counters_.add("fleet.promotions");
    } else {
      // No headroom (or no route): back off a full promote window
      // instead of hammering the admission check every epoch.
      st.hot_streak = 0;
    }
  }
}

bool FleetController::book_pair_schedules(std::uint32_t src, std::uint32_t dst,
                                          PairState& st) {
  const FleetSchedulePolicy& sp = config_.schedules;
  if (sp.multipath && sp.duty >= 2) {
    // Rotor-style split: duty − duty/2 on the cheapest route, the
    // rest on the cheapest route avoiding the primary's links, so
    // parallel spine links carry the pair concurrently (the transport
    // round-robins its packets across the legs).
    const int secondary_duty = sp.duty / 2;
    const int primary_duty = sp.duty - secondary_duty;
    if (auto h1 = spine_->reserve_slots(src, dst, sp.period, primary_duty)) {
      if (auto h2 = spine_->reserve_slots(src, dst, sp.period, secondary_duty,
                                          spine_->schedule_route(*h1))) {
        st.sched = {*h1, *h2};
        counters_.add("fleet.schedule_splits");
        return true;
      }
      // No disjoint second route (or no capacity there): top the pair
      // back up to the full duty on the default route.
      if (auto h2 = spine_->reserve_slots(src, dst, sp.period, secondary_duty)) {
        st.sched = {*h1, *h2};
        return true;
      }
      // Even the top-up was refused; the reduced primary still beats
      // nothing — keep it.
      st.sched = {*h1};
      return true;
    }
    return false;
  }
  if (auto h = spine_->reserve_slots(src, dst, sp.period, sp.duty)) {
    st.sched = {*h};
    return true;
  }
  return false;
}

void FleetController::run_schedule_policy() {
  const FleetSchedulePolicy& sp = config_.schedules;
  // The same two-pass machinery as the reservation policy, driving
  // reserve_slots/release_slots instead of reserve/release. One extra
  // wrinkle: schedules can disappear on their own (inactivity expiry,
  // failure preemption), possibly one leg of a split at a time — a
  // pair that lost any leg forfeits the rest and re-earns promotion.
  const double decay = config_.demand_half_life_epochs > 0
                           ? std::exp2(-1.0 / config_.demand_half_life_epochs)
                           : 1.0;
  std::vector<std::pair<double, std::uint64_t>> candidates;  // (score, key)
  for (const auto& [key, total_bytes] : spine_->pair_demand()) {
    PairState& st = pair_state_[key];
    const std::uint64_t delta = total_bytes - st.last_bytes;
    st.last_bytes = total_bytes;
    st.score = st.score * decay + static_cast<double>(delta);
    if (!st.sched.empty()) {
      bool lost = false;
      for (const fabric::SpineScheduleHandle h : st.sched) {
        lost = lost || !spine_->schedule_active(h);
      }
      if (lost) {
        for (const fabric::SpineScheduleHandle h : st.sched) {
          if (spine_->schedule_active(h)) spine_->release_slots(h);
        }
        st.sched.clear();
        st.hot_streak = 0;
        st.idle_streak = 0;
        --promoted_;
      }
    }
    if (st.sched.empty()) {
      st.hot_streak = delta >= sp.hot_bytes_per_epoch ? st.hot_streak + 1 : 0;
      if (st.hot_streak >= sp.promote_after) candidates.emplace_back(st.score, key);
      continue;
    }
    st.idle_streak = delta <= sp.idle_bytes_per_epoch ? st.idle_streak + 1 : 0;
    if (st.idle_streak >= sp.demote_after) {
      for (const fabric::SpineScheduleHandle h : st.sched) {
        if (spine_->schedule_active(h)) spine_->release_slots(h);
      }
      st.sched.clear();
      st.hot_streak = 0;
      st.idle_streak = 0;
      --promoted_;
      ++demotions_;
      counters_.add("fleet.schedule_demotions");
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first : a.second < b.second;
            });
  for (const auto& [score, key] : candidates) {
    if (promoted_ >= sp.max_schedules) break;
    PairState& st = pair_state_[key];
    const auto src = static_cast<std::uint32_t>(key >> 32);
    const auto dst = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    if (book_pair_schedules(src, dst, st)) {
      st.idle_streak = 0;
      ++promoted_;
      ++promotions_;
      counters_.add("fleet.schedule_promotions");
    } else {
      // No slots anywhere: back off a full promote window instead of
      // hammering the calendar every epoch.
      st.hot_streak = 0;
    }
  }
}

}  // namespace rsf::runtime
