// rsf::runtime — the conservative-PDES merge engine behind
// FleetConfig::workers > 1.
//
// Ownership model (see docs/ARCHITECTURE.md, "The parallel kernel"):
// every rack shard owns a private calendar ring (its FabricRuntime is
// built on its own sim::Simulator — own slab, own SlotPool liveness,
// shared EventRecord format), the fleet layer (spine, controller,
// packet pump, flow bookkeeping) keeps the FleetRuntime's ring, and
// this engine replays the oracle's single-clock total order as a
// cross-ring merge:
//
//  - **Frontier merge.** Each round the engine peeks every ring's
//    next_key() — its earliest (time, insertion-seq) pair — and
//    executes the lexicographic minimum. The rings share one sequence
//    counter (ParallelMergePeer::share_sequence), so the keys are the
//    oracle's own schedule keys and the merged order is the oracle's
//    total order — independent of the worker count and of wall-clock
//    interleaving, including cross-ring same-instant ties.
//  - **Conservative windows.** When one shard's frontier is strictly
//    earliest, that shard may drain ahead of everyone, bounded by the
//    minimum over every *other* ring's next_time(): nothing outside
//    the shard can inject work below that bound (all cross-shard
//    influence flows through the fleet ring or through a deferred
//    continuation, and both carry times at or above it). The window
//    runs on the shard's owner worker thread — the shard→worker map
//    is shard index modulo workers, owner 0 being the merge thread.
//  - **Mailboxes.** Rack-network callbacks (probe deliveries, leg
//    completions) are the fleet layer's only re-entry points from
//    shard events. FleetRuntime defers each one into the shard's
//    core::SpscRing mailbox; the window stops at the first emission
//    and the merge thread runs the continuation immediately after —
//    the same "right after the emitting event, before any other
//    event" position the oracle's inline callback had (the rack
//    network invokes callbacks in tail position).
//  - **Clock coherence.** Before executing anything at frontier t the
//    engine advances every ring's clock to t (sound: t <= every
//    ring's next_time()), so fleet code reading sim().now() or
//    booking spine FIFO slots sees exactly the oracle's clock.
//
// The lookahead story is deliberately honest: the spine's
// serialization+propagation latency (Interconnect::min_lookahead())
// bounds gateway-to-gateway influence, but the fleet's *window pump*
// (a delivery at the destination rack refills the flow's window from
// the source rack at the same instant) is a zero-lag edge that no
// spine-latency horizon covers. The conservative bound above is
// therefore the neighbor frontier, not frontier+lookahead — windows
// widen when rack frontiers spread (store-and-forward legs, skewed
// racks) and collapse to single steps under tight pump coupling.
// FleetRuntime still refuses workers > 1 on a zero-lookahead fabric
// (a zero-latency spine link), where even gateway influence would be
// same-instant and the horizon degenerates everywhere.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/spsc_ring.hpp"
#include "sim/simulator.hpp"

namespace rsf::runtime {

class ParallelFleetEngine {
 public:
  /// `fleet_ring` is the FleetRuntime's own simulator (spine,
  /// controller, retries, flow starts); `shard_rings[i]` is rack i's
  /// private simulator. `workers` >= 2 spawns workers-1 helper
  /// threads (owner 0 is the calling merge thread).
  ParallelFleetEngine(rsf::sim::Simulator* fleet_ring,
                      std::vector<rsf::sim::Simulator*> shard_rings, int workers);
  ~ParallelFleetEngine();

  ParallelFleetEngine(const ParallelFleetEngine&) = delete;
  ParallelFleetEngine& operator=(const ParallelFleetEngine&) = delete;

  /// Defer a fleet-layer continuation out of a shard event. Called on
  /// whichever thread is draining `shard` (its worker during a
  /// window, the merge thread during a single step); the continuation
  /// runs on the merge thread at the shard clock's current instant,
  /// immediately after the emitting event. Throws on mailbox overflow
  /// (a deterministic logic error, never a silent drop).
  void emit(std::uint32_t shard, std::function<void()> fn);

  /// Drain the merged fleet in oracle order until `until` (inclusive,
  /// like Simulator::run_until); with no horizon, until only weak
  /// events remain anywhere. Returns events executed (continuations
  /// are part of their emitting event, as in the oracle). Merge-thread
  /// only; not re-entrant.
  std::size_t run_until(rsf::sim::SimTime until);

  /// Conservative windows opened on shard rings so far (documented in
  /// docs/METRICS.md as the fleet.sync_windows gauge; an accessor, not
  /// a registry row, so N-worker metrics tables stay byte-identical
  /// to the 1-worker oracle's).
  [[nodiscard]] std::uint64_t sync_windows() const { return sync_windows_; }
  /// Continuations exchanged through the shard mailboxes (the
  /// fleet.cross_shard_events gauge in docs/METRICS.md).
  [[nodiscard]] std::uint64_t cross_shard_events() const { return cross_shard_events_; }

 private:
  struct Emission {
    rsf::sim::SimTime time = rsf::sim::SimTime::zero();
    std::function<void()> fn;
  };
  /// One per shard. The atomic flag is written by the thread draining
  /// the shard and read back by the same thread (window stop); the
  /// mutex handing a window back to the merge thread orders the ring
  /// contents themselves.
  struct Mailbox {
    core::SpscRing<Emission> ring{4096};
    std::atomic<bool> emitted{false};
  };
  struct Window {
    std::uint32_t shard = 0;
    rsf::sim::SimTime bound = rsf::sim::SimTime::zero();  // exclusive
    rsf::sim::SimTime until = rsf::sim::SimTime::zero();  // inclusive
    /// Strong events pending outside the shard at window start; the
    /// worker replays the oracle's "stop when only weak events
    /// remain" rule as frozen + local == 0. SIZE_MAX on bounded runs
    /// (which never stop early).
    std::size_t frozen_strong = 0;
  };

  [[nodiscard]] int owner_of(std::uint32_t shard) const {
    return static_cast<int>(shard % static_cast<std::uint32_t>(workers_));
  }
  [[nodiscard]] std::size_t total_strong() const;
  void advance_all_clocks(rsf::sim::SimTime t);
  /// Execute pending mailbox continuations (merge thread).
  void drain_mail();
  /// Drain one conservative window; runs on the shard's owner thread.
  std::size_t drain_window(const Window& w);
  void worker_main(int id);

  rsf::sim::Simulator* fleet_;
  std::vector<rsf::sim::Simulator*> shards_;
  std::vector<std::unique_ptr<Mailbox>> mail_;
  int workers_;

  std::uint64_t sync_windows_ = 0;
  std::uint64_t cross_shard_events_ = 0;

  // Window handoff: at most one window is in flight at a time (the
  // conservative bound admits a single runnable shard per round), so
  // one job slot + two condvars carry the whole protocol.
  std::mutex mu_;
  std::condition_variable cv_worker_;
  std::condition_variable cv_main_;
  Window job_;
  bool job_pending_ = false;
  bool job_done_ = true;
  std::size_t job_events_ = 0;
  std::exception_ptr job_error_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rsf::runtime
