// rsf::runtime — the FleetRuntime: multi-rack sharded simulation.
//
// A FleetRuntime owns N FabricRuntime shards (one rack each, every
// rack independently configured — grid here, torus there, a ring of
// storage nodes in the corner), wires their gateway nodes together
// through an Interconnect of spine links, and drives everything from
// ONE shared Simulator clock, so cross-rack causality is exact and
// runs stay bit-for-bit deterministic.
//
// FleetConfig::workers > 1 switches the drive train, not the model:
// each rack shard gets a private calendar ring and a worker thread
// pool drains them under a conservative-PDES merge
// (ParallelFleetEngine, fleet_parallel.hpp), while the fleet layer —
// spine, controller, retries, flow bookkeeping — stays serial on the
// caller's thread. The 1-worker default is exactly the shared-clock
// code path above (the determinism oracle), and the engine is built
// so N-worker runs replay the oracle's event order byte for byte —
// CI diffs the two on every scenario.
//
// Cross-rack transport is per-packet (SpineTransport::kPacketized, the
// default): a fleet flow is packetized at the source and each packet
// streams over the whole path — rack leg to the gateway, spine hop(s),
// far rack leg — with cut-through pipelining across stages (while
// packet k serializes on the spine, packet k+1 is already crossing the
// source rack). The flow keeps at most `flow_window` packets in
// flight; spine losses retransmit from the fleet layer; packets whose
// next spine hop died mid-flight re-plan from the rack they are in (or
// fail the flow deterministically when the fleet is partitioned).
// Routes are resolved per packet through the Interconnect's memoized
// route cache, so FleetController repricing shifts later packets onto
// cheaper links. SpineTransport::kStoreAndForward keeps PR 2's staged
// bulk pipeline as the comparison baseline. Same-rack (src.rack ==
// dst.rack) flows collapse to a plain Network flow in both modes, so a
// 1-shard fleet is behaviourally identical to a standalone
// FabricRuntime.
//
// Spine circuit reservations compose on top of the packetized path:
// every pump a flow re-checks (against the spine's reservation
// version, 0 while reservations are unused) whether its (src, dst)
// rack pair holds a live reservation; if so the flow pins the
// reservation's route and tags its packets with the versioned handle,
// so they ride the carved per-hop slices instead of the shared
// residual FIFOs. Preemption (spine link failure) makes the handle
// stale: in-flight packets fall back to the shared residual and the
// next pump re-plans the shared route. Offered cross-rack load is
// noted per (src, dst) pair at packetization time — the
// FleetController's promotion input.
//
// Completed fleet flows recycle their dense flows_ slots through the
// shared core::SlotPool (like Network::flows_): a slot returns when
// the flow is done AND its last in-flight packet has drained (the
// pool's recycle gate), and the pool's per-slot generation makes any
// straggler closure (scheduled starts, rack-leg and spine
// continuations) detectably stale, so a service churning millions of
// fleet flows holds flows_ at peak concurrency.
//
// Telemetry: the fleet registry holds "spine.*" and "fleet.*" live,
// and metrics() snapshots every shard's registry into it under
// "rack<N>." prefixes ("rack0.net.packet_latency",
// "rack2.crc.rack_power_w") — one table for the whole fleet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/slot_pool.hpp"
#include "fabric/interconnect.hpp"
#include "runtime/fleet_controller.hpp"
#include "runtime/runtime.hpp"
#include "workload/crossrack.hpp"

namespace rsf::runtime {

class ParallelFleetEngine;

struct RackSpec {
  RuntimeConfig config;
  /// Spine attach point used when a SpineSpec doesn't name one.
  phy::NodeId gateway = 0;
};

struct SpineSpec {
  std::uint32_t rack_a = 0;
  std::uint32_t rack_b = 0;
  /// Gateway overrides; kInvalidNode means "the rack's default".
  phy::NodeId gateway_a = phy::kInvalidNode;
  phy::NodeId gateway_b = phy::kInvalidNode;
  phy::DataRate rate = phy::DataRate::gbps(400);
  rsf::sim::SimTime latency = rsf::sim::SimTime::microseconds(1);
  /// Per-packet loss probability on this spine hop (0 = lossless).
  double loss_prob = 0.0;
  /// Initial routing cost (the FleetController reprices live).
  double cost = 1.0;
};

/// How fleet flows cross the spine. Packetized is the real model;
/// store-and-forward is PR 2's staged bulk pipeline, kept as the
/// comparison baseline (the ext8 bench reports both).
enum class SpineTransport { kPacketized, kStoreAndForward };

struct FleetConfig {
  std::vector<RackSpec> racks;
  std::vector<SpineSpec> spine;
  SpineTransport transport = SpineTransport::kPacketized;
  /// Packets a fleet flow keeps in flight across the whole path.
  int flow_window = 16;
  /// Per-packet retry budget (spine loss or rack-leg drop) before the
  /// flow fails.
  int max_retries = 16;
  /// Delay before a lost packet re-enters the pipeline.
  rsf::sim::SimTime retry_delay = rsf::sim::SimTime::microseconds(5);
  /// Seeds the spine's loss sampler; racks derive their own streams
  /// from their RackSpec configs, so adding a rack never perturbs
  /// another rack's draws.
  std::uint64_t seed = 1;
  /// Drive threads. 1 (the default) is the shared-clock serial path —
  /// the determinism oracle. N > 1 gives every rack its own calendar
  /// ring, drained by N threads (the caller's plus N-1 helpers) under
  /// the conservative-PDES merge; results and telemetry are
  /// byte-identical to workers = 1. Requires a positive spine
  /// lookahead (no zero-latency spine link) — the constructor refuses
  /// otherwise rather than risking a degenerate horizon.
  int workers = 1;
  /// Construct the spine-aware FleetController. start() arms its
  /// epoch loop.
  bool enable_controller = false;
  FleetControllerConfig controller{};
};

/// A fleet-level flow: size bytes from src to dst, possibly crossing
/// the spine. Ids are caller bookkeeping (results echo them); the
/// intra-rack legs draw from a reserved per-network id space.
struct FleetFlowSpec {
  fabric::FlowId id = 1;
  fabric::RackNode src;
  fabric::RackNode dst;
  phy::DataSize size = phy::DataSize::kilobytes(64);
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
};

struct FleetFlowResult {
  FleetFlowSpec spec;
  rsf::sim::SimTime started = rsf::sim::SimTime::zero();
  rsf::sim::SimTime finished = rsf::sim::SimTime::zero();
  /// Deepest intra-rack leg / spine crossing count any packet of the
  /// flow traversed (for a bulk flow: the staged path itself).
  int rack_legs = 0;
  int spine_hops = 0;
  /// Fleet-level retransmits (spine losses and rack-leg drops).
  std::uint64_t retransmits = 0;
  bool failed = false;

  [[nodiscard]] rsf::sim::SimTime completion_time() const { return finished - started; }
};

class FleetRuntime {
 public:
  using FleetFlowCallback = std::function<void(const FleetFlowResult&)>;

  /// Leg flows injected into shard networks use ids at and above this
  /// base; experiment flows on the same networks must stay below it.
  static constexpr fabric::FlowId kLegFlowBase = fabric::FlowId{1} << 62;

  explicit FleetRuntime(FleetConfig config);
  ~FleetRuntime();  // out of line: ParallelFleetEngine is incomplete here

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  // --- the sharded stack ---

  [[nodiscard]] rsf::sim::Simulator& sim() { return sim_; }
  [[nodiscard]] std::size_t rack_count() const { return racks_.size(); }
  [[nodiscard]] FabricRuntime& rack(std::size_t i);
  [[nodiscard]] fabric::Interconnect& spine() { return *spine_; }
  [[nodiscard]] bool has_controller() const { return controller_ != nullptr; }
  /// Throws std::logic_error when built with enable_controller = false.
  [[nodiscard]] FleetController& controller();
  [[nodiscard]] phy::NodeId gateway(std::uint32_t rack) const;
  /// Convenience (rack, node_at(x, y)) address.
  [[nodiscard]] fabric::RackNode at(std::uint32_t rack, int x, int y);

  // --- control ---

  /// Arm every rack's CRC epoch loop and the fleet controller (either
  /// no-ops when absent).
  void start();
  void stop();

  // --- controller kill/restart (the chaos harness's primitive) ---

  /// Crash the controller mid-epoch: stop its tick loop, expire its
  /// reservation leases (the fabric releases a dead controller's
  /// carves), and destroy it. Learned state is lost unless a
  /// checkpoint was taken beforehand (controller().checkpoint()).
  /// Throws std::logic_error when no controller is alive.
  void kill_controller();

  /// Bring a controller back after kill_controller(): rebuild it from
  /// the fleet's controller config, optionally load `ckpt`, and — when
  /// the fleet is started — arm its epoch loop at the current time. A
  /// cold restart (null ckpt) re-learns reservations from scratch; a
  /// checkpointed restart re-earns them on the first post-restart
  /// epoch if the pair is still hot. Counts fleet.controller_restarts.
  /// Throws std::logic_error when built with enable_controller = false
  /// or while a controller is still alive.
  void restart_controller(const FleetControllerCheckpoint* ckpt = nullptr);
  /// Drain the fleet to `until`. workers = 1 runs the shared clock
  /// directly; workers > 1 hands the same horizon to the
  /// conservative-PDES merge engine (identical semantics and event
  /// order, down to the parked clock at a drained horizon).
  std::size_t run_until(rsf::sim::SimTime until = rsf::sim::SimTime::infinity());
  [[nodiscard]] rsf::sim::SimTime now() const { return sim_.now(); }

  // --- cross-rack transport ---

  /// Start a fleet flow; the callback fires when the last packet lands
  /// (or on deterministic failure: no spine route, spine partition
  /// mid-flow, or retry exhaustion).
  void start_flow(const FleetFlowSpec& spec, FleetFlowCallback on_complete = nullptr);

  // --- workloads (owned by the fleet, destroyed with it) ---

  workload::CrossRackShuffle& add_shuffle(workload::CrossRackShuffleConfig cfg);
  workload::CrossRackIncast& add_incast(workload::CrossRackIncastConfig cfg);

  // --- telemetry ---

  /// The fleet registry: "spine.*" and "fleet.*" live, plus a fresh
  /// "rack<N>.*" snapshot of every shard taken by this call. Prefixed
  /// entries are refreshed in place, so instrument references stay
  /// valid across calls (they are snapshots — re-call after running
  /// further).
  [[nodiscard]] telemetry::Registry& metrics();
  /// One table with every rack's and the spine's instruments.
  [[nodiscard]] telemetry::Table metrics_table();

  [[nodiscard]] std::uint64_t flows_completed() const { return flows_completed_; }
  [[nodiscard]] std::uint64_t flows_failed() const { return flows_failed_; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }

  /// Flow-slot pool observability (mirrors Network): total slots ever
  /// allocated and how many are free right now. Churning millions of
  /// fleet flows holds flow_slots() at peak concurrency.
  [[nodiscard]] std::size_t flow_slots() const { return flows_.size(); }
  [[nodiscard]] std::size_t free_flow_slots() const { return flows_.free_count(); }
  /// Packet-slot pool observability, same contract: after a fleet
  /// quiesces (every flow terminal, pipeline drained) free must equal
  /// total — the chaos verifier's stale-handle/leak check.
  [[nodiscard]] std::size_t packet_slots() const { return packets_.size(); }
  [[nodiscard]] std::size_t free_packet_slots() const { return packets_.free_count(); }

  /// Parallel-drive observability (both 0 with workers = 1). Exposed
  /// as accessors — the fleet.sync_windows / fleet.cross_shard_events
  /// gauges of docs/METRICS.md — rather than registry rows, so the
  /// metrics table stays byte-identical across worker counts.
  [[nodiscard]] std::uint64_t sync_windows() const;
  [[nodiscard]] std::uint64_t cross_shard_events() const;

 private:
  struct FleetFlowState {
    FleetFlowSpec spec;
    FleetFlowCallback on_complete;
    rsf::sim::SimTime started = rsf::sim::SimTime::zero();
    bool done = false;
    // --- packetized transport ---
    std::uint64_t packets_total = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t delivered = 0;
    std::uint64_t retransmits = 0;
    int inflight = 0;
    /// The flow's current route, shared by its packets (refcount, not
    /// copy, per packet) and re-resolved when the spine version moves.
    std::shared_ptr<const std::vector<fabric::SpineLinkId>> route;
    std::uint64_t route_version = 0;
    /// The pair's spine reservation, re-checked when the spine's
    /// reservation version moves (it stays 0 while reservations are
    /// never used, so unreserved fleets skip the whole branch).
    fabric::SpineReservationHandle reservation;
    std::uint64_t reservation_version = 0;
    /// The pair's slot schedules and their pinned routes (the
    /// multi-path split books several; packets round-robin across
    /// them), re-checked when the spine's schedule version moves — it
    /// stays 0 while slot schedules are never used, so unslotted
    /// fleets skip that branch the same way.
    std::vector<fabric::SpineScheduleHandle> schedules;
    std::vector<std::shared_ptr<const std::vector<fabric::SpineLinkId>>> schedule_routes;
    std::uint64_t schedule_version = 0;
    /// Demand accounting resolved with the route: a stable slot into
    /// the spine's pair-demand map plus the route's hop count, so the
    /// per-packet byte·hop bump is a pointer add, not a map lookup.
    std::uint64_t* demand_slot = nullptr;
    std::uint64_t demand_hops = 0;
    // --- store-and-forward transport (and result bookkeeping) ---
    /// Remaining spine links, in crossing order (bulk mode only).
    std::vector<fabric::SpineLinkId> path;
    std::size_t next_hop = 0;
    fabric::RackNode at;  // current position of the bulk payload
    int rack_legs = 0;
    int spine_hops = 0;
  };

  /// One fleet packet in flight. Packets live in a dense recycled
  /// pool (like Network's probes) so the per-stage continuations
  /// capture only [this, pkt_idx] — small enough for std::function's
  /// inline buffer, no heap allocation per stage.
  struct FleetPacket {
    std::uint32_t flow_idx = 0;
    /// Generation of the flow slot at injection (stale-slot guard).
    std::uint64_t flow_gen = 0;
    /// The flow's reservation at injection; a handle gone stale by
    /// arrival (preemption) degrades to the shared residual.
    fabric::SpineReservationHandle reservation;
    /// The slot schedule this packet rides (valid() only when its flow
    /// bound one at injection); same stale-handle degradation.
    fabric::SpineScheduleHandle schedule;
    phy::DataSize size = phy::DataSize::zero();
    /// Spine links still ahead of the packet (from path[next_hop] on).
    /// Shared with the flow until a mid-flight re-plan clones it.
    std::shared_ptr<const std::vector<fabric::SpineLinkId>> path;
    std::size_t next_hop = 0;
    fabric::RackNode at;
    /// Destination node of the rack leg currently in flight.
    phy::NodeId leg_to = phy::kInvalidNode;
    int rack_legs = 0;
    int spine_hops = 0;
    int retries = 0;
  };

  // Packetized pipeline. Stages address packets by pool index; a
  // packet's slot recycles at its terminal stage (delivery, failure,
  // or evaporation after its flow already failed).
  void pump_packets(std::uint32_t flow_idx);
  void packet_step(std::uint32_t pkt_idx);
  void packet_rack_leg(std::uint32_t pkt_idx, phy::NodeId to);
  void packet_spine_hop(std::uint32_t pkt_idx);
  void packet_delivered(std::uint32_t pkt_idx);
  void packet_retry(std::uint32_t pkt_idx);
  void packet_failed(std::uint32_t pkt_idx);
  /// Drop the packet out of flight and recycle its slot; returns its
  /// flow index.
  std::uint32_t release_packet(std::uint32_t pkt_idx);

  // Store-and-forward pipeline (and the same-rack collapse).
  void advance(std::uint32_t flow_idx);
  void run_rack_leg(std::uint32_t flow_idx, phy::NodeId to);

  /// Route a rack-network callback body back to the fleet layer.
  /// Serial drive invokes it inline (the oracle's synchronous call);
  /// parallel drive defers it through the shard's mailbox so it runs
  /// on the merge thread at the same instant, right after the
  /// emitting event — the oracle's exact position. Defined in
  /// fleet.cpp (all callers live there).
  template <typename F>
  void defer_rack(std::uint32_t rack, F&& fn);

  void finish_fleet_flow(std::uint32_t flow_idx, bool failed);
  /// Return the slot to the free list once the flow is done and its
  /// last straggler packet has drained (the pool's FleetFlowDrained
  /// gate); the recycle bumps the slot generation.
  void maybe_recycle_flow(std::uint32_t flow_idx);
  /// The packet's flow, or nullptr when the slot was recycled since
  /// (the inflight gate makes that impossible for live packets;
  /// defensive, like Network::live_flow).
  [[nodiscard]] FleetFlowState* live_flow(const FleetPacket& pkt) {
    return flows_.get_live(pkt.flow_idx, pkt.flow_gen);
  }

  /// SlotPool recycle gate for flows_: hold the slot until the flow is
  /// done AND its last in-flight packet has drained.
  struct FleetFlowDrained {
    [[nodiscard]] bool operator()(const FleetFlowState& f) const {
      return f.done && f.inflight == 0;
    }
  };

  FleetConfig config_;
  rsf::sim::Simulator sim_;
  /// Parallel drive only: rack i runs on shard_sims_[i] instead of
  /// sim_. Declared before racks_ so shards outlive their runtimes.
  std::vector<std::unique_ptr<rsf::sim::Simulator>> shard_sims_;
  // Declared before the racks/spine: spine instruments point here.
  telemetry::Registry registry_;
  // Fleet-layer accounting folded into the live "spine.*" set; cached
  // slots keep the retry/reroute paths off the registry maps.
  std::uint64_t& spine_retransmits_slot_ = registry_.counters("spine").slot("spine.retransmits");
  std::uint64_t& spine_reroutes_slot_ =
      registry_.counters("spine").slot("spine.packet_reroutes");
  std::vector<std::unique_ptr<FabricRuntime>> racks_;
  std::unique_ptr<fabric::Interconnect> spine_;
  std::unique_ptr<FleetController> controller_;
  // Flow and packet state live in shared SlotPools; flow closures
  // capture (index, generation) pairs validated through the pool.
  core::SlotPool<FleetFlowState, std::uint64_t, FleetFlowDrained> flows_;
  core::SlotPool<FleetPacket> packets_;
  fabric::FlowId next_leg_id_ = kLegFlowBase;
  /// Between start() and stop(): a controller restarted while the
  /// fleet is live arms its epoch loop immediately.
  bool started_ = false;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_failed_ = 0;
  std::vector<std::unique_ptr<workload::CrossRackShuffle>> shuffles_;
  std::vector<std::unique_ptr<workload::CrossRackIncast>> incasts_;
  /// Null with workers = 1. Declared last: its destructor parks the
  /// worker threads before anything they reference goes away.
  std::unique_ptr<ParallelFleetEngine> engine_;
};

}  // namespace rsf::runtime
