// rsf::runtime — the FleetRuntime: multi-rack sharded simulation.
//
// A FleetRuntime owns N FabricRuntime shards (one rack each, every
// rack independently configured — grid here, torus there, a ring of
// storage nodes in the corner), wires their gateway nodes together
// through an Interconnect of spine links, and drives everything from
// ONE shared Simulator clock, so cross-rack causality is exact and
// runs stay bit-for-bit deterministic.
//
// Cross-rack flows are staged: an intra-rack flow carries the bytes
// from the source to its rack's gateway, the spine serializes them to
// the next rack's gateway (store-and-forward at gateways — spine
// transfers are bulk, not per-packet cut-through), and a final
// intra-rack flow delivers them to the destination; multi-hop spine
// paths chain gateway-to-gateway legs through intermediate racks.
// Same-rack (src.rack == dst.rack) flows collapse to a plain Network
// flow, so a 1-shard fleet is behaviourally identical to a standalone
// FabricRuntime.
//
// Telemetry: the fleet registry holds "spine.*" live, and metrics()
// snapshots every shard's registry into it under "rack<N>." prefixes
// ("rack0.net.packet_latency", "rack2.crc.rack_power_w") — one table
// for the whole fleet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/interconnect.hpp"
#include "runtime/runtime.hpp"
#include "workload/crossrack.hpp"

namespace rsf::runtime {

struct RackSpec {
  RuntimeConfig config;
  /// Spine attach point used when a SpineSpec doesn't name one.
  phy::NodeId gateway = 0;
};

struct SpineSpec {
  std::uint32_t rack_a = 0;
  std::uint32_t rack_b = 0;
  /// Gateway overrides; kInvalidNode means "the rack's default".
  phy::NodeId gateway_a = phy::kInvalidNode;
  phy::NodeId gateway_b = phy::kInvalidNode;
  phy::DataRate rate = phy::DataRate::gbps(400);
  rsf::sim::SimTime latency = rsf::sim::SimTime::microseconds(1);
};

struct FleetConfig {
  std::vector<RackSpec> racks;
  std::vector<SpineSpec> spine;
};

/// A fleet-level flow: size bytes from src to dst, possibly crossing
/// the spine. Ids are caller bookkeeping (results echo them); the
/// intra-rack legs draw from a reserved per-network id space.
struct FleetFlowSpec {
  fabric::FlowId id = 1;
  fabric::RackNode src;
  fabric::RackNode dst;
  phy::DataSize size = phy::DataSize::kilobytes(64);
  phy::DataSize packet_size = phy::DataSize::bytes(1024);
  rsf::sim::SimTime start = rsf::sim::SimTime::zero();
};

struct FleetFlowResult {
  FleetFlowSpec spec;
  rsf::sim::SimTime started = rsf::sim::SimTime::zero();
  rsf::sim::SimTime finished = rsf::sim::SimTime::zero();
  /// Intra-rack legs run and spine links crossed.
  int rack_legs = 0;
  int spine_hops = 0;
  bool failed = false;

  [[nodiscard]] rsf::sim::SimTime completion_time() const { return finished - started; }
};

class FleetRuntime {
 public:
  using FleetFlowCallback = std::function<void(const FleetFlowResult&)>;

  /// Leg flows injected into shard networks use ids at and above this
  /// base; experiment flows on the same networks must stay below it.
  static constexpr fabric::FlowId kLegFlowBase = fabric::FlowId{1} << 62;

  explicit FleetRuntime(FleetConfig config);

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  // --- the sharded stack ---

  [[nodiscard]] rsf::sim::Simulator& sim() { return sim_; }
  [[nodiscard]] std::size_t rack_count() const { return racks_.size(); }
  [[nodiscard]] FabricRuntime& rack(std::size_t i);
  [[nodiscard]] fabric::Interconnect& spine() { return *spine_; }
  [[nodiscard]] phy::NodeId gateway(std::uint32_t rack) const;
  /// Convenience (rack, node_at(x, y)) address.
  [[nodiscard]] fabric::RackNode at(std::uint32_t rack, int x, int y);

  // --- control ---

  /// Arm every rack's CRC epoch loop (racks without one no-op).
  void start();
  void stop();
  std::size_t run_until(rsf::sim::SimTime until = rsf::sim::SimTime::infinity()) {
    return sim_.run_until(until);
  }
  [[nodiscard]] rsf::sim::SimTime now() const { return sim_.now(); }

  // --- cross-rack transport ---

  /// Start a fleet flow; the callback fires when the last leg lands
  /// (or on the first failed leg / no spine route).
  void start_flow(const FleetFlowSpec& spec, FleetFlowCallback on_complete = nullptr);

  // --- workloads (owned by the fleet, destroyed with it) ---

  workload::CrossRackShuffle& add_shuffle(workload::CrossRackShuffleConfig cfg);
  workload::CrossRackIncast& add_incast(workload::CrossRackIncastConfig cfg);

  // --- telemetry ---

  /// The fleet registry: "spine.*" live, plus a fresh "rack<N>.*"
  /// snapshot of every shard taken by this call. Prefixed entries are
  /// refreshed in place, so instrument references stay valid across
  /// calls (they are snapshots — re-call after running further).
  [[nodiscard]] telemetry::Registry& metrics();
  /// One table with every rack's and the spine's instruments.
  [[nodiscard]] telemetry::Table metrics_table();

  [[nodiscard]] std::uint64_t flows_completed() const { return flows_completed_; }
  [[nodiscard]] std::uint64_t flows_failed() const { return flows_failed_; }

 private:
  struct FleetFlowState {
    FleetFlowSpec spec;
    FleetFlowCallback on_complete;
    /// Remaining spine links, in crossing order.
    std::vector<fabric::SpineLinkId> path;
    std::size_t next_hop = 0;
    fabric::RackNode at;  // current position of the payload
    rsf::sim::SimTime started = rsf::sim::SimTime::zero();
    int rack_legs = 0;
    int spine_hops = 0;
  };

  void advance(std::uint32_t flow_idx);
  void run_rack_leg(std::uint32_t flow_idx, phy::NodeId to);
  void finish_fleet_flow(std::uint32_t flow_idx, bool failed);

  FleetConfig config_;
  rsf::sim::Simulator sim_;
  // Declared before the racks/spine: spine instruments point here.
  telemetry::Registry registry_;
  std::vector<std::unique_ptr<FabricRuntime>> racks_;
  std::unique_ptr<fabric::Interconnect> spine_;
  std::vector<FleetFlowState> flows_;  // dense, append-only per run
  fabric::FlowId next_leg_id_ = kLegFlowBase;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t flows_failed_ = 0;
  std::vector<std::unique_ptr<workload::CrossRackShuffle>> shuffles_;
  std::vector<std::unique_ptr<workload::CrossRackIncast>> incasts_;
};

}  // namespace rsf::runtime
