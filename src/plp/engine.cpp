#include "plp/engine.hpp"

#include <stdexcept>
#include <utility>

namespace rsf::plp {

using rsf::sim::SimTime;

bool PlpCapabilities::supports(const PlpCommand& cmd) const {
  struct Visitor {
    const PlpCapabilities& caps;
    bool operator()(const SplitCommand&) const { return caps.split_bundle; }
    bool operator()(const BundleCommand&) const { return caps.split_bundle; }
    bool operator()(const BypassJoinCommand&) const { return caps.bypass; }
    bool operator()(const BypassSeverCommand&) const { return caps.bypass; }
    bool operator()(const BringUpCommand&) const { return caps.on_off; }
    bool operator()(const ShutdownCommand&) const { return caps.on_off; }
    bool operator()(const SetFecCommand&) const { return caps.adaptive_fec; }
    bool operator()(const QueryStatsCommand&) const { return caps.stats; }
    bool operator()(const ProvisionCommand&) const {
      return caps.on_off && caps.split_bundle;
    }
    bool operator()(const DecommissionCommand&) const {
      return caps.on_off && caps.split_bundle;
    }
  };
  return std::visit(Visitor{*this}, cmd);
}

PlpEngine::PlpEngine(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant,
                     PlpTimings timings, PlpCapabilities caps)
    : sim_(sim), plant_(plant), timings_(timings), caps_(caps), log_(sim, "plp") {
  if (sim_ == nullptr || plant_ == nullptr) {
    throw std::invalid_argument("PlpEngine: null simulator or plant");
  }
}

void PlpEngine::submit(PlpCommand cmd, Callback callback) {
  counters_.add("plp.submitted." + command_name(cmd));
  if (!caps_.supports(cmd)) {
    fail(Pending{std::move(cmd), std::move(callback)}, "primitive not supported by media");
    return;
  }
  try_execute(Pending{std::move(cmd), std::move(callback)});
}

void PlpEngine::try_execute(Pending pending) {
  // Stats queries are non-intrusive: run even against busy links.
  const bool intrusive = !std::holds_alternative<QueryStatsCommand>(pending.cmd);
  if (intrusive) {
    for (phy::LinkId id : referenced_links(pending.cmd)) {
      if (link_busy(id)) {
        queue_.push_back(std::move(pending));
        return;
      }
    }
  }
  execute_now(std::move(pending));
}

void PlpEngine::execute_now(Pending pending) {
  // Validate link existence up front so primitives can assume it.
  for (phy::LinkId id : referenced_links(pending.cmd)) {
    if (!plant_->has_link(id)) {
      fail(pending, "link " + std::to_string(id) + " does not exist");
      return;
    }
  }
  ++inflight_;
  struct Visitor {
    PlpEngine& e;
    Pending& p;
    void operator()(const SplitCommand&) { e.run_split(std::move(p)); }
    void operator()(const BundleCommand&) { e.run_bundle(std::move(p)); }
    void operator()(const BypassJoinCommand&) { e.run_bypass_join(std::move(p)); }
    void operator()(const BypassSeverCommand&) { e.run_bypass_sever(std::move(p)); }
    void operator()(const BringUpCommand&) { e.run_bring_up(std::move(p)); }
    void operator()(const ShutdownCommand&) { e.run_shutdown(std::move(p)); }
    void operator()(const SetFecCommand&) { e.run_set_fec(std::move(p)); }
    void operator()(const QueryStatsCommand&) { e.run_query_stats(std::move(p)); }
    void operator()(const ProvisionCommand&) { e.run_provision(std::move(p)); }
    void operator()(const DecommissionCommand&) { e.run_decommission(std::move(p)); }
  };
  auto cmd = pending.cmd;  // copy: visitor consumes `pending`
  std::visit(Visitor{*this, pending}, cmd);
}

void PlpEngine::finish(Pending pending, PlpResult result) {
  result.completed_at = sim_->now();
  counters_.add(result.ok ? "plp.completed." + command_name(pending.cmd)
                          : "plp.failed." + command_name(pending.cmd));
  --inflight_;
  clear_busy(result.removed);
  clear_busy(result.created);
  if (pending.callback) pending.callback(result);
  drain_queue();
}

void PlpEngine::fail(const Pending& pending, std::string error) {
  log_.debug("command ", command_name(pending.cmd), " failed: ", error);
  counters_.add("plp.failed." + command_name(pending.cmd));
  if (pending.callback) {
    PlpResult result;
    result.ok = false;
    result.error = std::move(error);
    result.completed_at = sim_->now();
    pending.callback(result);
  }
}

void PlpEngine::drain_queue() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      bool blocked = false;
      bool dead = false;
      for (phy::LinkId id : referenced_links(it->cmd)) {
        if (link_busy(id)) blocked = true;
        if (!plant_->has_link(id) && !link_busy(id)) dead = true;
      }
      if (dead) {
        Pending p = std::move(*it);
        queue_.erase(it);
        fail(p, "referenced link destroyed while queued");
        progress = true;
        break;
      }
      if (!blocked) {
        Pending p = std::move(*it);
        queue_.erase(it);
        execute_now(std::move(p));
        progress = true;
        break;
      }
    }
  }
}

void PlpEngine::mark_busy(const std::vector<phy::LinkId>& links) {
  for (phy::LinkId id : links) {
    if (id >= busy_.size()) busy_.resize(id + 1, false);
    busy_[id] = true;
  }
}

void PlpEngine::clear_busy(const std::vector<phy::LinkId>& links) {
  for (phy::LinkId id : links) {
    if (id < busy_.size()) busy_[id] = false;
  }
}

void PlpEngine::notify_topology(const std::vector<phy::LinkId>& removed,
                                const std::vector<phy::LinkId>& created) {
  for (const auto& obs : topo_observers_) obs(removed, created);
}

void PlpEngine::notify_readiness(phy::LinkId id, bool ready) {
  for (const auto& obs : readiness_observers_) obs(id, ready);
}

// --- primitives ---

void PlpEngine::run_split(Pending pending) {
  const auto& cmd = std::get<SplitCommand>(pending.cmd);
  std::pair<phy::LinkId, phy::LinkId> halves;
  try {
    halves = plant_->split_link(cmd.link, cmd.k);
  } catch (const std::exception& ex) {
    --inflight_;
    fail(pending, ex.what());
    return;
  }
  PlpResult result;
  result.ok = true;
  result.removed = {cmd.link};
  result.created = {halves.first, halves.second};
  // The datapath pauses for the reconfiguration window: both halves are
  // busy (unusable) until actuation completes. Lane states carry over,
  // so no retrain is needed.
  mark_busy(result.created);
  notify_topology(result.removed, result.created);
  const SimTime duration = timings_.command_overhead + timings_.split;
  sim_->schedule_after(duration, [this, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    for (phy::LinkId id : result.created) notify_readiness(id, plant_->link(id).ready());
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_bundle(Pending pending) {
  const auto& cmd = std::get<BundleCommand>(pending.cmd);
  phy::LinkId merged;
  try {
    merged = plant_->bundle_links(cmd.first, cmd.second);
  } catch (const std::exception& ex) {
    --inflight_;
    fail(pending, ex.what());
    return;
  }
  PlpResult result;
  result.ok = true;
  result.removed = {cmd.first, cmd.second};
  result.created = {merged};
  mark_busy(result.created);
  notify_topology(result.removed, result.created);
  const SimTime duration = timings_.command_overhead + timings_.bundle;
  sim_->schedule_after(duration, [this, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    for (phy::LinkId id : result.created) notify_readiness(id, plant_->link(id).ready());
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_bypass_join(Pending pending) {
  const auto& cmd = std::get<BypassJoinCommand>(pending.cmd);
  phy::LinkId joined;
  try {
    joined = plant_->bypass_join(cmd.first, cmd.second);
  } catch (const std::exception& ex) {
    --inflight_;
    fail(pending, ex.what());
    return;
  }
  PlpResult result;
  result.ok = true;
  result.removed = {cmd.first, cmd.second};
  result.created = {joined};
  mark_busy(result.created);
  // The joined path must retrain end-to-end through the new bypass
  // element, so the link is down for setup + retrain.
  plant_->lane_begin_training(joined);
  notify_topology(result.removed, result.created);
  notify_readiness(joined, false);
  const SimTime duration =
      timings_.command_overhead + timings_.bypass_setup + timings_.lane_retrain;
  sim_->schedule_after(duration, [this, joined, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    plant_->lane_complete_training(joined);
    notify_readiness(joined, true);
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_bypass_sever(Pending pending) {
  const auto& cmd = std::get<BypassSeverCommand>(pending.cmd);
  std::pair<phy::LinkId, phy::LinkId> halves;
  try {
    halves = plant_->bypass_sever(cmd.link, cmd.at);
  } catch (const std::exception& ex) {
    --inflight_;
    fail(pending, ex.what());
    return;
  }
  PlpResult result;
  result.ok = true;
  result.removed = {cmd.link};
  result.created = {halves.first, halves.second};
  mark_busy(result.created);
  plant_->lane_begin_training(halves.first);
  plant_->lane_begin_training(halves.second);
  notify_topology(result.removed, result.created);
  const SimTime duration =
      timings_.command_overhead + timings_.bypass_teardown + timings_.lane_retrain;
  sim_->schedule_after(duration, [this, halves, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    plant_->lane_complete_training(halves.first);
    plant_->lane_complete_training(halves.second);
    notify_readiness(halves.first, true);
    notify_readiness(halves.second, true);
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_bring_up(Pending pending) {
  const auto& cmd = std::get<BringUpCommand>(pending.cmd);
  const phy::LinkId id = cmd.link;
  mark_busy({id});
  plant_->lane_begin_training(id);
  PlpResult result;
  result.ok = true;
  result.created = {id};  // becomes usable
  const SimTime duration =
      timings_.command_overhead + timings_.lane_power_on + timings_.lane_retrain;
  sim_->schedule_after(duration, [this, id, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    plant_->lane_complete_training(id);
    notify_readiness(id, true);
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_shutdown(Pending pending) {
  const auto& cmd = std::get<ShutdownCommand>(pending.cmd);
  const phy::LinkId id = cmd.link;
  mark_busy({id});
  notify_readiness(id, false);
  PlpResult result;
  result.ok = true;
  result.created = {id};  // still exists, just dark
  const SimTime duration = timings_.command_overhead + timings_.lane_power_off;
  sim_->schedule_after(duration, [this, id, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    plant_->lane_power_off(id);
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_set_fec(Pending pending) {
  const auto& cmd = std::get<SetFecCommand>(pending.cmd);
  const phy::LinkId id = cmd.link;
  mark_busy({id});
  notify_readiness(id, false);
  PlpResult result;
  result.ok = true;
  result.created = {id};
  const SimTime duration = timings_.command_overhead + timings_.fec_switch;
  sim_->schedule_after(duration, [this, id, scheme = cmd.scheme,
                                  pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    plant_->set_fec(id, phy::FecSpec::of(scheme));
    notify_readiness(id, plant_->link(id).ready());
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_query_stats(Pending pending) {
  const auto& cmd = std::get<QueryStatsCommand>(pending.cmd);
  PlpResult result;
  result.ok = true;
  result.stats = stats_report(cmd.link);
  const SimTime duration = timings_.command_overhead + timings_.stats_query;
  sim_->schedule_after(duration, [this, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_provision(Pending pending) {
  const auto& cmd = std::get<ProvisionCommand>(pending.cmd);
  phy::LinkId id;
  try {
    // Reject lanes that are hard-failed — provisioning them would
    // produce a link that can never come up.
    const phy::Cable& c = plant_->cable(cmd.cable);
    for (int lane : cmd.lanes) {
      if (lane < 0 || lane >= c.lane_count()) {
        throw std::invalid_argument("provision: lane out of range");
      }
      if (c.lane(lane).is_failed()) {
        throw std::invalid_argument("provision: lane " + std::to_string(lane) +
                                    " is failed");
      }
    }
    id = plant_->create_adjacent_link(cmd.cable, cmd.lanes, phy::FecSpec::of(cmd.fec));
  } catch (const std::exception& ex) {
    --inflight_;
    fail(pending, ex.what());
    return;
  }
  PlpResult result;
  result.ok = true;
  result.created = {id};
  mark_busy(result.created);
  plant_->lane_begin_training(id);
  notify_topology({}, result.created);
  const SimTime duration =
      timings_.command_overhead + timings_.lane_power_on + timings_.lane_retrain;
  sim_->schedule_after(duration, [this, id, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    plant_->lane_complete_training(id);
    notify_readiness(id, plant_->link(id).ready());
    finish(std::move(pending), std::move(result));
  });
}

void PlpEngine::run_decommission(Pending pending) {
  const auto& cmd = std::get<DecommissionCommand>(pending.cmd);
  const phy::LinkId id = cmd.link;
  mark_busy({id});
  notify_readiness(id, false);
  PlpResult result;
  result.ok = true;
  result.removed = {id};
  const SimTime duration = timings_.command_overhead + timings_.lane_power_off;
  sim_->schedule_after(duration, [this, id, pending = std::move(pending),
                                  result = std::move(result)]() mutable {
    plant_->lane_power_off(id);
    plant_->destroy_link(id);
    notify_topology(result.removed, {});
    finish(std::move(pending), std::move(result));
  });
}

LinkStatsReport PlpEngine::stats_report(phy::LinkId id) const {
  const phy::LogicalLink& l = plant_->link(id);
  LinkStatsReport report;
  report.link = id;
  report.lane_count = l.lane_count();
  report.bypass_joints = l.bypass_joints();
  report.raw_gbps = l.raw_rate().gbps_value();
  report.effective_gbps = l.effective_rate().gbps_value();
  report.worst_pre_fec_ber = l.worst_pre_fec_ber();
  report.post_fec_ber = l.post_fec_ber();
  report.power_watts = l.power_watts();
  report.propagation = l.propagation_delay();
  report.ready = l.ready() && !link_busy(id);
  std::uint64_t bits = 0;
  for (const phy::LinkSegment& seg : l.segments()) {
    const phy::Cable& c = plant_->cable(seg.cable);
    for (int lane : seg.lanes) bits += c.lane(lane).stats().bits_carried;
  }
  report.bits_carried = bits;
  return report;
}

void PlpEngine::instant_bring_up(phy::LinkId link) {
  plant_->lane_begin_training(link);
  plant_->lane_complete_training(link);
  notify_readiness(link, true);
}

}  // namespace rsf::plp
