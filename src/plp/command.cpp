#include "plp/command.hpp"

namespace rsf::plp {

namespace {

struct RefVisitor {
  std::vector<phy::LinkId> operator()(const SplitCommand& c) const { return {c.link}; }
  std::vector<phy::LinkId> operator()(const BundleCommand& c) const {
    return {c.first, c.second};
  }
  std::vector<phy::LinkId> operator()(const BypassJoinCommand& c) const {
    return {c.first, c.second};
  }
  std::vector<phy::LinkId> operator()(const BypassSeverCommand& c) const { return {c.link}; }
  std::vector<phy::LinkId> operator()(const BringUpCommand& c) const { return {c.link}; }
  std::vector<phy::LinkId> operator()(const ShutdownCommand& c) const { return {c.link}; }
  std::vector<phy::LinkId> operator()(const SetFecCommand& c) const { return {c.link}; }
  std::vector<phy::LinkId> operator()(const QueryStatsCommand& c) const { return {c.link}; }
  std::vector<phy::LinkId> operator()(const ProvisionCommand&) const { return {}; }
  std::vector<phy::LinkId> operator()(const DecommissionCommand& c) const { return {c.link}; }
};

struct NameVisitor {
  std::string operator()(const SplitCommand&) const { return "split"; }
  std::string operator()(const BundleCommand&) const { return "bundle"; }
  std::string operator()(const BypassJoinCommand&) const { return "bypass-join"; }
  std::string operator()(const BypassSeverCommand&) const { return "bypass-sever"; }
  std::string operator()(const BringUpCommand&) const { return "bring-up"; }
  std::string operator()(const ShutdownCommand&) const { return "shutdown"; }
  std::string operator()(const SetFecCommand&) const { return "set-fec"; }
  std::string operator()(const QueryStatsCommand&) const { return "query-stats"; }
  std::string operator()(const ProvisionCommand&) const { return "provision"; }
  std::string operator()(const DecommissionCommand&) const { return "decommission"; }
};

}  // namespace

std::vector<phy::LinkId> referenced_links(const PlpCommand& cmd) {
  return std::visit(RefVisitor{}, cmd);
}

std::string command_name(const PlpCommand& cmd) { return std::visit(NameVisitor{}, cmd); }

}  // namespace rsf::plp
