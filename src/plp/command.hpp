// rsf::plp — the Physical Layer Primitive command set (paper §3.1).
//
// Commands are the wire format between the Closed Ring Control and the
// physical layer. Each command names links by id; execution is
// asynchronous (primitives take real time to actuate) and completes
// with a PlpResult describing the links destroyed/created.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "phy/fec.hpp"
#include "phy/lane.hpp"
#include "phy/types.hpp"
#include "sim/time.hpp"

namespace rsf::plp {

/// PLP #1a — break a link of N lanes into k and N-k lane links.
struct SplitCommand {
  phy::LinkId link = phy::kInvalidLink;
  int k = 0;
};

/// PLP #1b — re-bundle two parallel links into one.
struct BundleCommand {
  phy::LinkId first = phy::kInvalidLink;
  phy::LinkId second = phy::kInvalidLink;
};

/// PLP #2a — join two links at their shared node, bypassing its
/// switching logic at the lowest physical level.
struct BypassJoinCommand {
  phy::LinkId first = phy::kInvalidLink;
  phy::LinkId second = phy::kInvalidLink;
};

/// PLP #2b — undo a bypass at an interior node.
struct BypassSeverCommand {
  phy::LinkId link = phy::kInvalidLink;
  phy::NodeId at = phy::kInvalidNode;
};

/// PLP #3a — power a link's lanes on and train them.
struct BringUpCommand {
  phy::LinkId link = phy::kInvalidLink;
};

/// PLP #3b — power a link's lanes off.
struct ShutdownCommand {
  phy::LinkId link = phy::kInvalidLink;
};

/// PLP #4 — switch a link's FEC mode (brief datapath pause).
struct SetFecCommand {
  phy::LinkId link = phy::kInvalidLink;
  phy::FecScheme scheme = phy::FecScheme::kNone;
};

/// PLP #1+#3 composite — stand up a brand-new adjacent link over
/// explicit lanes of one cable (dark-lane provisioning: how the CRC
/// replaces failed lanes and grows capacity on demand).
struct ProvisionCommand {
  phy::CableId cable = phy::kInvalidCable;
  std::vector<int> lanes;
  phy::FecScheme fec = phy::FecScheme::kNone;
};

/// Inverse of ProvisionCommand: drain, power off and release a link's
/// lanes back to the dark pool.
struct DecommissionCommand {
  phy::LinkId link = phy::kInvalidLink;
};

/// PLP #5 — sample a link's statistics.
struct QueryStatsCommand {
  phy::LinkId link = phy::kInvalidLink;
};

using PlpCommand =
    std::variant<SplitCommand, BundleCommand, BypassJoinCommand, BypassSeverCommand,
                 BringUpCommand, ShutdownCommand, SetFecCommand, QueryStatsCommand,
                 ProvisionCommand, DecommissionCommand>;

/// Which links a command touches (used for busy-tracking).
[[nodiscard]] std::vector<phy::LinkId> referenced_links(const PlpCommand& cmd);

/// Human-readable command name for logs and telemetry.
[[nodiscard]] std::string command_name(const PlpCommand& cmd);

/// PLP #5 result payload: link-granularity statistics.
struct LinkStatsReport {
  phy::LinkId link = phy::kInvalidLink;
  int lane_count = 0;
  int bypass_joints = 0;
  double raw_gbps = 0;
  double effective_gbps = 0;
  double worst_pre_fec_ber = 0;
  double post_fec_ber = 0;
  double power_watts = 0;
  rsf::sim::SimTime propagation = rsf::sim::SimTime::zero();
  std::uint64_t bits_carried = 0;
  bool ready = false;
};

/// Completion record for an executed command.
struct PlpResult {
  bool ok = false;
  std::string error;
  /// Links that ceased to exist (their lanes moved to `created`).
  std::vector<phy::LinkId> removed;
  /// Links that now exist.
  std::vector<phy::LinkId> created;
  std::optional<LinkStatsReport> stats;
  /// When the primitive finished actuating.
  rsf::sim::SimTime completed_at = rsf::sim::SimTime::zero();
};

}  // namespace rsf::plp
