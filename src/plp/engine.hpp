// rsf::plp — the PLP execution engine.
//
// PlpEngine is the actuator between the control plane and the physical
// plant. It executes PlpCommands asynchronously on the simulator:
// each primitive has an actuation latency (from the PlpTimings table),
// links under reconfiguration are marked busy (their lanes retrain, so
// the fabric sees them not-ready), and completion fires a callback and
// notifies registered observers of topology-visible changes.
//
// Commands referencing busy links queue FIFO; commands referencing
// links destroyed while queued fail cleanly. One engine serves the
// whole rack — it models the rack's management plane, not a CPU.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "phy/plant.hpp"
#include "plp/command.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "telemetry/counters.hpp"

namespace rsf::plp {

/// Actuation latency of each primitive. Defaults are calibrated to
/// published reconfigurable-fabric figures: electrical circuit setup
/// in the low microseconds (Shoal), lane retrain tens of microseconds
/// for PAM4 refresh-style retraining, sub-µs management overhead.
struct PlpTimings {
  rsf::sim::SimTime command_overhead = rsf::sim::SimTime::nanoseconds(500);
  rsf::sim::SimTime split = rsf::sim::SimTime::microseconds(1);
  rsf::sim::SimTime bundle = rsf::sim::SimTime::microseconds(1);
  rsf::sim::SimTime bypass_setup = rsf::sim::SimTime::microseconds(5);
  rsf::sim::SimTime bypass_teardown = rsf::sim::SimTime::microseconds(5);
  rsf::sim::SimTime lane_power_on = rsf::sim::SimTime::microseconds(10);
  rsf::sim::SimTime lane_retrain = rsf::sim::SimTime::microseconds(50);
  rsf::sim::SimTime lane_power_off = rsf::sim::SimTime::microseconds(1);
  rsf::sim::SimTime fec_switch = rsf::sim::SimTime::microseconds(2);
  rsf::sim::SimTime stats_query = rsf::sim::SimTime::nanoseconds(200);
};

/// Which primitives the underlying media supports (paper §2: a medium
/// provides "some subset of the Physical Layer Primitives").
struct PlpCapabilities {
  bool split_bundle = true;
  bool bypass = true;
  bool on_off = true;
  bool adaptive_fec = true;
  bool stats = true;

  [[nodiscard]] static PlpCapabilities all() { return {}; }
  [[nodiscard]] bool supports(const PlpCommand& cmd) const;
};

class PlpEngine {
 public:
  using Callback = std::function<void(const PlpResult&)>;
  /// Observer of structural changes: (removed link ids, created link ids).
  using TopologyObserver =
      std::function<void(const std::vector<phy::LinkId>&, const std::vector<phy::LinkId>&)>;
  /// Observer of link availability: (link id, now_ready).
  using ReadinessObserver = std::function<void(phy::LinkId, bool)>;

  PlpEngine(rsf::sim::Simulator* sim, phy::PhysicalPlant* plant, PlpTimings timings = {},
            PlpCapabilities caps = PlpCapabilities::all());

  PlpEngine(const PlpEngine&) = delete;
  PlpEngine& operator=(const PlpEngine&) = delete;

  /// Submit a command. Executes immediately if its links are idle,
  /// otherwise queues. The callback (optional) fires on completion or
  /// failure, at simulated completion time.
  void submit(PlpCommand cmd, Callback callback = nullptr);

  /// Synchronous convenience used at rack bring-up (before the clock
  /// starts): power + train a link with no simulated delay.
  void instant_bring_up(phy::LinkId link);

  void add_topology_observer(TopologyObserver obs) {
    topo_observers_.push_back(std::move(obs));
  }
  void add_readiness_observer(ReadinessObserver obs) {
    readiness_observers_.push_back(std::move(obs));
  }

  /// O(1): links under actuation are tracked in a dense bitmap (link
  /// ids are small sequential integers) — this sits on the per-hop
  /// Topology::usable() path.
  [[nodiscard]] bool link_busy(phy::LinkId id) const {
    return id < busy_.size() && busy_[id];
  }
  [[nodiscard]] std::size_t queued_commands() const { return queue_.size(); }
  [[nodiscard]] std::size_t inflight_commands() const { return inflight_; }
  [[nodiscard]] const PlpTimings& timings() const { return timings_; }
  [[nodiscard]] const PlpCapabilities& capabilities() const { return caps_; }
  [[nodiscard]] const telemetry::CounterSet& counters() const { return counters_; }

  /// Build a PLP #5 stats report for a link (also available without
  /// going through a command, for zero-cost in-process consumers).
  [[nodiscard]] LinkStatsReport stats_report(phy::LinkId id) const;

 private:
  struct Pending {
    PlpCommand cmd;
    Callback callback;
  };

  void try_execute(Pending pending);
  void execute_now(Pending pending);
  void finish(Pending pending, PlpResult result);
  void fail(const Pending& pending, std::string error);
  void drain_queue();
  void mark_busy(const std::vector<phy::LinkId>& links);
  void clear_busy(const std::vector<phy::LinkId>& links);
  void notify_topology(const std::vector<phy::LinkId>& removed,
                       const std::vector<phy::LinkId>& created);
  void notify_readiness(phy::LinkId id, bool ready);

  // Per-primitive implementations. Each returns the simulated duration
  // and schedules the plant mutation appropriately.
  void run_split(Pending pending);
  void run_bundle(Pending pending);
  void run_bypass_join(Pending pending);
  void run_bypass_sever(Pending pending);
  void run_bring_up(Pending pending);
  void run_shutdown(Pending pending);
  void run_set_fec(Pending pending);
  void run_query_stats(Pending pending);
  void run_provision(Pending pending);
  void run_decommission(Pending pending);

  rsf::sim::Simulator* sim_;
  phy::PhysicalPlant* plant_;
  PlpTimings timings_;
  PlpCapabilities caps_;
  // Dense busy bitmap indexed by LinkId (ids are sequential, never
  // reused); grown on demand by mark_busy.
  std::vector<bool> busy_;
  std::deque<Pending> queue_;
  std::size_t inflight_ = 0;
  std::vector<TopologyObserver> topo_observers_;
  std::vector<ReadinessObserver> readiness_observers_;
  telemetry::CounterSet counters_;
  rsf::sim::Logger log_;
};

}  // namespace rsf::plp
