// Quickstart: build an adaptive rack, start the Closed Ring Control,
// push traffic through it, and read the statistics back.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface in one page: the FabricRuntime
// facade, the PLP engine, the CRC controller, flows, probes, and the
// unified telemetry registry.
#include <cstdio>

#include "runtime/runtime.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kWarn);

  // 1. One RuntimeConfig wires the whole stack: a simulated clock and
  //    a 4x4 rack — grid topology, every cable has 2 lanes of 25G,
  //    nodes 2 m apart, RS(528,514) FEC — plus the Closed Ring
  //    Control: telemetry circulates the control ring every epoch,
  //    prices every link, and publishes the prices to the router so
  //    forwarding is cost-aware.
  runtime::RuntimeConfig cfg;
  cfg.shape = runtime::RackShape::kGrid;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  cfg.crc.epoch = 100_us;
  runtime::FabricRuntime rt(cfg);
  std::printf("rack: %u nodes, %zu links, %.1f W\n", rt.node_count(),
              rt.plant().link_count(), rt.total_power_watts());

  // 2. Arm the control loop.
  rt.start();

  // 3. A latency probe: one 1 KB packet corner to corner.
  rt.network().send_probe(rt.node_at(0, 0), rt.node_at(3, 3), phy::DataSize::bytes(1024),
                          [](sim::SimTime latency, int hops, bool ok) {
                            std::printf("probe: %s over %d hops (%s)\n",
                                        latency.to_string().c_str(), hops,
                                        ok ? "delivered" : "dropped");
                          });

  // 4. A 1 MB flow with a completion callback.
  fabric::FlowSpec flow;
  flow.id = 1;
  flow.src = rt.node_at(0, 0);
  flow.dst = rt.node_at(3, 3);
  flow.size = phy::DataSize::megabytes(1);
  rt.network().start_flow(flow, [](const fabric::FlowResult& r) {
    std::printf("flow: %s in %s (%llu packets, %llu retransmits)\n",
                r.spec.size.to_string().c_str(), r.completion_time().to_string().c_str(),
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.retransmits));
  });

  // 5. Issue a PLP command directly: split a link into two halves.
  const phy::LinkId some_link = rt.plant().link_ids().front();
  rt.engine().submit(plp::SplitCommand{some_link, 1}, [](const plp::PlpResult& r) {
    std::printf("plp split: %s -> created links %u and %u\n", r.ok ? "ok" : "failed",
                r.created.size() == 2 ? r.created[0] : 0,
                r.created.size() == 2 ? r.created[1] : 0);
  });

  // 6. Run the simulation until everything completes.
  rt.run_until(10_ms);
  rt.stop();
  rt.run_until();

  // 7. Telemetry: every component published into the runtime's
  //    registry, so one lookup (or one table) covers the whole rack.
  std::printf("packet latency: %s\n",
              rt.network().packet_latency().summary_time().c_str());
  std::printf("crc: %llu epochs, last rack power %.1f W\n",
              static_cast<unsigned long long>(rt.controller().epochs_completed()),
              rt.controller().last_snapshot()
                  ? rt.controller().last_snapshot()->rack_power_watts
                  : 0.0);
  rt.metrics_table().print();
  return 0;
}
