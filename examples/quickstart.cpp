// Quickstart: build an adaptive rack, start the Closed Ring Control,
// push traffic through it, and read the statistics back.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface in one page: rack builders, the
// PLP engine, the CRC controller, flows, probes and telemetry.
#include <cstdio>

#include "core/controller.hpp"
#include "fabric/builders.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kWarn);

  // 1. A simulated clock and a 4x4 rack: grid topology, every cable
  //    has 2 lanes of 25G, nodes 2 m apart, RS(528,514) FEC.
  sim::Simulator sim;
  fabric::RackParams params;
  params.width = 4;
  params.height = 4;
  fabric::Rack rack = fabric::build_grid(&sim, params);
  std::printf("rack: %d nodes, %zu links, %.1f W\n", rack.node_count(),
              rack.plant->link_count(), rack.total_power_watts());

  // 2. The Closed Ring Control: telemetry circulates the control ring
  //    every epoch, prices every link, and publishes the prices to the
  //    router so forwarding is cost-aware.
  core::CrcConfig cfg;
  cfg.epoch = 100_us;
  core::CrcController crc(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                          rack.router.get(), rack.network.get(), cfg);
  crc.start();

  // 3. A latency probe: one 1 KB packet corner to corner.
  rack.network->send_probe(rack.node_at(0, 0), rack.node_at(3, 3),
                           phy::DataSize::bytes(1024),
                           [](sim::SimTime latency, int hops, bool ok) {
                             std::printf("probe: %s over %d hops (%s)\n",
                                         latency.to_string().c_str(), hops,
                                         ok ? "delivered" : "dropped");
                           });

  // 4. A 1 MB flow with a completion callback.
  fabric::FlowSpec flow;
  flow.id = 1;
  flow.src = rack.node_at(0, 0);
  flow.dst = rack.node_at(3, 3);
  flow.size = phy::DataSize::megabytes(1);
  rack.network->start_flow(flow, [](const fabric::FlowResult& r) {
    std::printf("flow: %s in %s (%llu packets, %llu retransmits)\n",
                r.spec.size.to_string().c_str(), r.completion_time().to_string().c_str(),
                static_cast<unsigned long long>(r.packets),
                static_cast<unsigned long long>(r.retransmits));
  });

  // 5. Issue a PLP command directly: split a link into two halves.
  const phy::LinkId some_link = rack.plant->link_ids().front();
  rack.engine->submit(plp::SplitCommand{some_link, 1}, [](const plp::PlpResult& r) {
    std::printf("plp split: %s -> created links %u and %u\n", r.ok ? "ok" : "failed",
                r.created.size() == 2 ? r.created[0] : 0,
                r.created.size() == 2 ? r.created[1] : 0);
  });

  // 6. Run the simulation until everything completes.
  sim.run_until(10_ms);
  crc.stop();
  sim.run_until();

  // 7. Telemetry: packet latency distribution and controller state.
  std::printf("packet latency: %s\n",
              rack.network->packet_latency().summary_time().c_str());
  std::printf("crc: %llu epochs, last rack power %.1f W\n",
              static_cast<unsigned long long>(crc.epochs_completed()),
              crc.last_snapshot() ? crc.last_snapshot()->rack_power_watts : 0.0);
  return 0;
}
