// Power-capped rack — the paper's §2 power constraint in action.
//
// The rack starts over its power budget; the CRC sheds lanes (PLP #1
// split + PLP #3 off) until it fits, then restores capacity when load
// spikes and the budget allows. This example prints the power timeline
// so you can watch the control loop settle.
#include <cstdio>

#include "core/controller.hpp"
#include "fabric/builders.hpp"
#include "workload/generator.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);
  sim::Simulator sim;
  fabric::RackParams params;
  params.width = 6;
  params.height = 6;
  fabric::Rack rack = fabric::build_grid(&sim, params);

  const double uncapped = rack.total_power_watts();
  core::CrcConfig cfg;
  cfg.epoch = 100_us;
  cfg.enable_power_manager = true;
  cfg.power.cap_watts = uncapped * 0.85;  // 15% cut
  cfg.power.max_ops_per_epoch = 3;
  core::CrcController crc(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                          rack.router.get(), rack.network.get(), cfg);
  std::printf("rack power %.1f W, cap %.1f W (-15%%)\n\n", uncapped, cfg.power.cap_watts);
  crc.start();

  // Light background load while the manager sheds.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 150_us;
  gen_cfg.horizon = 10_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(phy::DataSize::kilobytes(32));
  workload::FlowGenerator gen(&sim, rack.network.get(),
                              workload::TrafficMatrix::uniform(36), gen_cfg);
  gen.start();
  sim.run_until(12_ms);
  crc.stop();
  sim.run_until();

  std::printf("time_ms  rack_power_w\n");
  sim::SimTime next_print = sim::SimTime::zero();
  for (const auto& sample : crc.power_series().samples()) {
    if (sample.time < next_print) continue;
    std::printf("%7.2f  %8.1f%s\n", sample.time.ms(), sample.value,
                sample.value <= cfg.power.cap_watts ? "" : "  (over cap)");
    next_print = sample.time + 500_us;
  }

  std::printf("\nlanes shed: %llu, restored: %llu, final power %.1f W (cap %.1f W)\n",
              static_cast<unsigned long long>(crc.power_manager().sheds()),
              static_cast<unsigned long long>(crc.power_manager().restores()),
              rack.total_power_watts(), cfg.power.cap_watts);
  std::printf("traffic: %llu flows, %llu failed, goodput %.2f Gbps\n",
              static_cast<unsigned long long>(gen.flows_generated()),
              static_cast<unsigned long long>(rack.network->flows_failed()),
              gen.goodput_gbps());
  return 0;
}
