// Power-capped rack — the paper's §2 power constraint in action.
//
// The rack starts over its power budget; the CRC sheds lanes (PLP #1
// split + PLP #3 off) until it fits, then restores capacity when load
// spikes and the budget allows. This example prints the power timeline
// so you can watch the control loop settle.
#include <cstdio>

#include "runtime/runtime.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);

  // Build without the controller first to read the uncapped draw, then
  // the real run with the cap set 15% below it. Both racks are wired
  // identically from the same config.
  runtime::RuntimeConfig cfg;
  cfg.rack.width = 6;
  cfg.rack.height = 6;
  cfg.enable_crc = false;
  const double uncapped = runtime::FabricRuntime(cfg).total_power_watts();

  cfg.enable_crc = true;
  cfg.crc.epoch = 100_us;
  cfg.crc.enable_power_manager = true;
  cfg.crc.power.cap_watts = uncapped * 0.85;  // 15% cut
  cfg.crc.power.max_ops_per_epoch = 3;
  runtime::FabricRuntime rt(cfg);
  std::printf("rack power %.1f W, cap %.1f W (-15%%)\n\n", uncapped,
              cfg.crc.power.cap_watts);
  rt.start();

  // Light background load while the manager sheds.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 150_us;
  gen_cfg.horizon = 10_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(phy::DataSize::kilobytes(32));
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(36), gen_cfg);
  gen.start();
  rt.run_until(12_ms);
  rt.stop();
  rt.run_until();

  std::printf("time_ms  rack_power_w\n");
  sim::SimTime next_print = sim::SimTime::zero();
  for (const auto& sample : rt.controller().power_series().samples()) {
    if (sample.time < next_print) continue;
    std::printf("%7.2f  %8.1f%s\n", sample.time.ms(), sample.value,
                sample.value <= cfg.crc.power.cap_watts ? "" : "  (over cap)");
    next_print = sample.time + 500_us;
  }

  std::printf("\nlanes shed: %llu, restored: %llu, final power %.1f W (cap %.1f W)\n",
              static_cast<unsigned long long>(rt.controller().power_manager().sheds()),
              static_cast<unsigned long long>(rt.controller().power_manager().restores()),
              rt.total_power_watts(), cfg.crc.power.cap_watts);
  std::printf("traffic: %llu flows, %llu failed, goodput %.2f Gbps\n",
              static_cast<unsigned long long>(gen.flows_generated()),
              static_cast<unsigned long long>(rt.network().flows_failed()),
              gen.goodput_gbps());
  return 0;
}
