// Media-agnostic operation — the paper's §2 design goal.
//
// "The specific underlying media is irrelevant. We only expect it to
// provide some subset of the Physical Layer Primitives that we define."
//
// This example runs the same CRC against two racks with different
// media capabilities:
//   * an optical fabric exposing every primitive, and
//   * an electrical backplane that cannot do physical-layer bypass
//     (no PLP #2) but still splits lanes and adapts FEC.
// The CRC issues the same requests to both; the electrical fabric
// rejects what its PHY cannot do and keeps everything else working —
// no code changes, just a different capability subset.
#include <cstdio>

#include "phy/ber_profile.hpp"
#include "runtime/runtime.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

namespace {

void run_fabric(const char* name, phy::Medium medium, plp::PlpCapabilities caps) {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  cfg.rack.medium = medium;
  cfg.rack.plp_caps = caps;
  cfg.rack.fec = phy::FecScheme::kNone;
  cfg.crc.epoch = 100_us;
  cfg.crc.enable_adaptive_fec = true;
  runtime::FabricRuntime rt(cfg);
  rt.start();

  // Ask for the Figure-2 move: needs PLP #1 (split) and #2 (bypass).
  std::optional<core::TopologyPlanner::Report> report;
  rt.controller().request_grid_to_torus(
      [&](const core::TopologyPlanner::Report& r) { report = r; });
  rt.run_until(rt.now() + 5_ms);

  // Degrade a cable: needs PLP #4 (adaptive FEC) + #5 (stats).
  const phy::LinkId victim = *rt.topology().link_between(0, 1);
  const phy::CableId cable = rt.plant().link(victim).segments().front().cable;
  rt.plant().set_cable_ber(cable, 1e-5);
  rt.run_until(rt.now() + 2_ms);
  rt.stop();
  rt.run_until();

  std::printf("%-28s medium=%s\n", name, std::string(phy::to_string(medium)).c_str());
  if (report) {
    std::printf("  grid->torus : %d rows + %d cols closed, %d failures\n",
                report->rows_closed, report->cols_closed, report->failures);
  } else {
    std::printf("  grid->torus : still pending (should not happen)\n");
  }
  std::printf("  adaptive FEC: link 0-1 now %s (BER 1e-5)\n",
              std::string(phy::to_string(
                              rt.plant().link(*rt.topology().link_between(0, 1)).fec().scheme))
                  .c_str());
  std::printf("  PLP failures rejected by media: %llu bypass-join\n\n",
              static_cast<unsigned long long>(
                  rt.engine().counters().get("plp.failed.bypass-join")));
}

}  // namespace

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);
  std::printf("Same CRC, two media (paper §2: media agnostic)\n\n");

  run_fabric("optical (full PLP)", phy::Medium::kFiber, plp::PlpCapabilities::all());

  plp::PlpCapabilities electrical;
  electrical.bypass = false;  // copper backplane: no physical bypass
  run_fabric("electrical (no bypass)", phy::Medium::kCopper, electrical);

  std::printf("The electrical fabric keeps lane splitting, FEC adaptation and\n"
              "telemetry; only the bypass-dependent torus conversion degrades —\n"
              "and it degrades by *refusing*, not by breaking.\n");
  return 0;
}
