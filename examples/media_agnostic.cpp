// Media-agnostic operation — the paper's §2 design goal.
//
// "The specific underlying media is irrelevant. We only expect it to
// provide some subset of the Physical Layer Primitives that we define."
//
// This example runs the same CRC against two racks with different
// media capabilities:
//   * an optical fabric exposing every primitive, and
//   * an electrical backplane that cannot do physical-layer bypass
//     (no PLP #2) but still splits lanes and adapts FEC.
// The CRC issues the same requests to both; the electrical fabric
// rejects what its PHY cannot do and keeps everything else working —
// no code changes, just a different capability subset.
#include <cstdio>

#include "core/controller.hpp"
#include "fabric/builders.hpp"
#include "phy/ber_profile.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

namespace {

void run_fabric(const char* name, phy::Medium medium, plp::PlpCapabilities caps) {
  sim::Simulator sim;
  fabric::RackParams params;
  params.width = 4;
  params.height = 4;
  params.medium = medium;
  params.plp_caps = caps;
  params.fec = phy::FecScheme::kNone;
  fabric::Rack rack = fabric::build_grid(&sim, params);

  core::CrcConfig cfg;
  cfg.epoch = 100_us;
  cfg.enable_adaptive_fec = true;
  core::CrcController crc(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                          rack.router.get(), rack.network.get(), cfg);
  crc.start();

  // Ask for the Figure-2 move: needs PLP #1 (split) and #2 (bypass).
  std::optional<core::TopologyPlanner::Report> report;
  crc.request_grid_to_torus([&](const core::TopologyPlanner::Report& r) { report = r; });
  sim.run_until(sim.now() + 5_ms);

  // Degrade a cable: needs PLP #4 (adaptive FEC) + #5 (stats).
  const phy::LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  rack.plant->set_cable_ber(cable, 1e-5);
  sim.run_until(sim.now() + 2_ms);
  crc.stop();
  sim.run_until();

  std::printf("%-28s medium=%s\n", name, std::string(phy::to_string(medium)).c_str());
  if (report) {
    std::printf("  grid->torus : %d rows + %d cols closed, %d failures\n",
                report->rows_closed, report->cols_closed, report->failures);
  } else {
    std::printf("  grid->torus : still pending (should not happen)\n");
  }
  std::printf("  adaptive FEC: link 0-1 now %s (BER 1e-5)\n",
              std::string(phy::to_string(rack.plant->link(
                              *rack.topology->link_between(0, 1)).fec().scheme))
                  .c_str());
  std::printf("  PLP failures rejected by media: %llu bypass-join\n\n",
              static_cast<unsigned long long>(
                  rack.engine->counters().get("plp.failed.bypass-join")));
}

}  // namespace

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);
  std::printf("Same CRC, two media (paper §2: media agnostic)\n\n");

  run_fabric("optical (full PLP)", phy::Medium::kFiber, plp::PlpCapabilities::all());

  plp::PlpCapabilities electrical;
  electrical.bypass = false;  // copper backplane: no physical bypass
  run_fabric("electrical (no bypass)", phy::Medium::kCopper, electrical);

  std::printf("The electrical fabric keeps lane splitting, FEC adaptation and\n"
              "telemetry; only the bypass-dependent torus conversion degrades —\n"
              "and it degrades by *refusing*, not by breaking.\n");
  return 0;
}
