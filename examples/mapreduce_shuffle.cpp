// MapReduce shuffle on an adaptive rack — the paper's §2 motivation.
//
// A reducer waits for every mapper, so the slowest transfer gates the
// job. This example runs the same shuffle twice on a 6x6 rack:
// first on the stock grid, then after asking the CRC to execute the
// Figure-2 move (grid -> torus via lane splitting and bypass), and
// prints how the barrier time and the straggler gap change.
#include <cstdio>
#include <optional>

#include "runtime/runtime.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

namespace {

workload::ShuffleResult run_shuffle(runtime::FabricRuntime& rt) {
  workload::ShuffleConfig cfg;
  const auto& p = rt.rack_params();
  for (int x = 0; x < p.width; ++x) {
    cfg.mappers.push_back(rt.node_at(x, 0));
    cfg.reducers.push_back(rt.node_at(x, p.height - 1));
  }
  cfg.bytes_per_pair = phy::DataSize::kilobytes(256);
  cfg.start = rt.now();
  cfg.first_flow_id = 1'000'000 + static_cast<fabric::FlowId>(rt.now().ps());
  auto& job = rt.add_shuffle(cfg);
  std::optional<workload::ShuffleResult> result;
  job.run([&](const workload::ShuffleResult& r) { result = r; });
  rt.run_until();
  return *result;
}

}  // namespace

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);

  runtime::RuntimeConfig cfg;
  cfg.rack.width = 6;
  cfg.rack.height = 6;
  runtime::FabricRuntime rt(cfg);
  rt.start();

  std::printf("shuffle: 6 mappers (top row) x 6 reducers (bottom row), 256 KB/pair\n\n");

  const auto on_grid = run_shuffle(rt);
  std::printf("grid  : job %s  median flow %s  slowest flow %s  straggler x%.2f\n",
              on_grid.job_completion.to_string().c_str(),
              on_grid.median_flow.to_string().c_str(),
              on_grid.max_flow.to_string().c_str(), on_grid.straggler_ratio());

  // The Figure-2 move: split every 2-lane link, chain the spare lanes
  // into wraparound links -> torus at 1 lane per link.
  bool converted = false;
  rt.controller().request_grid_to_torus([&](const core::TopologyPlanner::Report& r) {
    converted = r.failures == 0;
    std::printf("\ncrc   : closed %d rows + %d columns with %zu wrap links\n\n",
                r.rows_closed, r.cols_closed, r.wrap_links.size());
  });
  rt.run_until();
  if (!converted) {
    std::printf("conversion failed\n");
    return 1;
  }

  const auto on_torus = run_shuffle(rt);
  std::printf("torus : job %s  median flow %s  slowest flow %s  straggler x%.2f\n",
              on_torus.job_completion.to_string().c_str(),
              on_torus.median_flow.to_string().c_str(),
              on_torus.max_flow.to_string().c_str(), on_torus.straggler_ratio());

  std::printf("\nspeedup: x%.2f on the job barrier\n",
              static_cast<double>(on_grid.job_completion.ps()) /
                  static_cast<double>(on_torus.job_completion.ps()));
  rt.stop();
  rt.run_until();
  return 0;
}
