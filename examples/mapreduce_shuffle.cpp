// MapReduce shuffle on an adaptive rack — the paper's §2 motivation.
//
// A reducer waits for every mapper, so the slowest transfer gates the
// job. This example runs the same shuffle twice on a 6x6 rack:
// first on the stock grid, then after asking the CRC to execute the
// Figure-2 move (grid -> torus via lane splitting and bypass), and
// prints how the barrier time and the straggler gap change.
#include <cstdio>
#include <optional>

#include "core/controller.hpp"
#include "fabric/builders.hpp"
#include "workload/mapreduce.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

namespace {

workload::ShuffleResult run_shuffle(sim::Simulator& sim, fabric::Rack& rack) {
  workload::ShuffleConfig cfg;
  for (int x = 0; x < rack.params.width; ++x) {
    cfg.mappers.push_back(rack.node_at(x, 0));
    cfg.reducers.push_back(rack.node_at(x, rack.params.height - 1));
  }
  cfg.bytes_per_pair = phy::DataSize::kilobytes(256);
  cfg.start = sim.now();
  cfg.first_flow_id = 1'000'000 + static_cast<fabric::FlowId>(sim.now().ps());
  workload::ShuffleJob job(&sim, rack.network.get(), cfg);
  std::optional<workload::ShuffleResult> result;
  job.run([&](const workload::ShuffleResult& r) { result = r; });
  sim.run_until();
  return *result;
}

}  // namespace

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);
  sim::Simulator sim;
  fabric::RackParams params;
  params.width = 6;
  params.height = 6;
  fabric::Rack rack = fabric::build_grid(&sim, params);
  core::CrcController crc(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                          rack.router.get(), rack.network.get(), {});
  crc.start();

  std::printf("shuffle: 6 mappers (top row) x 6 reducers (bottom row), 256 KB/pair\n\n");

  const auto on_grid = run_shuffle(sim, rack);
  std::printf("grid  : job %s  median flow %s  slowest flow %s  straggler x%.2f\n",
              on_grid.job_completion.to_string().c_str(),
              on_grid.median_flow.to_string().c_str(),
              on_grid.max_flow.to_string().c_str(), on_grid.straggler_ratio());

  // The Figure-2 move: split every 2-lane link, chain the spare lanes
  // into wraparound links -> torus at 1 lane per link.
  bool converted = false;
  crc.request_grid_to_torus([&](const core::TopologyPlanner::Report& r) {
    converted = r.failures == 0;
    std::printf("\ncrc   : closed %d rows + %d columns with %zu wrap links\n\n",
                r.rows_closed, r.cols_closed, r.wrap_links.size());
  });
  sim.run_until();
  if (!converted) {
    std::printf("conversion failed\n");
    return 1;
  }

  const auto on_torus = run_shuffle(sim, rack);
  std::printf("torus : job %s  median flow %s  slowest flow %s  straggler x%.2f\n",
              on_torus.job_completion.to_string().c_str(),
              on_torus.median_flow.to_string().c_str(),
              on_torus.max_flow.to_string().c_str(), on_torus.straggler_ratio());

  std::printf("\nspeedup: x%.2f on the job barrier\n",
              static_cast<double>(on_grid.job_completion.ps()) /
                  static_cast<double>(on_torus.job_completion.ps()));
  crc.stop();
  sim.run_until();
  return 0;
}
