// Bulk transfers over CRC-scheduled circuits — §3.2's flow scheduling.
//
// The CRC "schedules flows according to the availability of PLPs": a
// flow big enough to repay the reconfiguration cost gets a dedicated
// physical-layer circuit (spare lanes split off every hop and chained
// with bypasses), everything else rides the packet fabric. This
// example submits a mixed batch and prints what the scheduler decided
// for each flow and why (the break-even math).
#include <cstdio>

#include "runtime/runtime.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);

  runtime::RuntimeConfig cfg;
  cfg.rack.width = 8;
  cfg.rack.height = 1;  // a storage shelf: one long chain
  runtime::FabricRuntime rt(cfg);
  core::CircuitScheduler& sched = rt.controller().circuits();

  // Keep the packet fabric busy so circuits have something to beat.
  for (fabric::FlowId i = 0; i < 3; ++i) {
    fabric::FlowSpec bg;
    bg.id = 900 + i;
    bg.src = 0;
    bg.dst = 7;
    bg.size = phy::DataSize::megabytes(80);
    rt.network().start_flow(bg, nullptr);
  }
  rt.run_until(500_us);

  std::printf("%-10s %-14s %-14s %-12s %-8s %s\n", "size", "est_packet", "est_circuit",
              "break_even", "choice", "measured");
  const double sizes_mb[] = {0.064, 0.5, 2.0, 8.0, 32.0};
  fabric::FlowId id = 1;
  for (double mb : sizes_mb) {
    fabric::FlowSpec spec;
    spec.id = id++;
    spec.src = 0;
    spec.dst = 7;
    spec.size = phy::DataSize::megabytes(mb);
    const auto d = sched.decide(spec);
    sched.submit(spec, [d, size = spec.size](const fabric::FlowResult& r, bool circuit) {
      std::printf("%-10s %-14s %-14s %-12s %-8s %s\n", size.to_string().c_str(),
                  d.est_packet_completion.to_string().c_str(),
                  d.est_circuit_completion.to_string().c_str(),
                  d.break_even ? d.break_even->to_string().c_str() : "-",
                  circuit ? "circuit" : "packet", r.completion_time().to_string().c_str());
    });
    rt.run_until();  // one at a time so the printout reads in order
  }

  std::printf("\ncircuits built %llu, circuit flows %llu, packet flows %llu\n",
              static_cast<unsigned long long>(sched.circuits_built()),
              static_cast<unsigned long long>(sched.circuit_flows()),
              static_cast<unsigned long long>(sched.packet_flows()));
  std::printf("fabric restored: %d bypass joints, plant %s\n",
              rt.plant().total_bypass_joints(),
              rt.plant().validate().empty() ? "valid" : "INVALID");
  return 0;
}
