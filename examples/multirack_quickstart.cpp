// Multi-rack quickstart: one page from zero to a 3-rack fleet.
//
// Three independently configured racks — an adaptive 4x4 grid, a
// native 4x4 torus baseline, and an 8-node storage ring — are joined
// by spine links into a line (rack0 - rack1 - rack2), all driven from
// ONE shared simulation clock. Cross-rack traffic is per-packet:
// every packet streams over its rack legs and spine hops with
// cut-through pipelining, and the spine-aware FleetController
// reprices hot spine links each epoch so later packets re-plan. A
// cross-rack MapReduce shuffle moves data from mappers in rack 0 to
// reducers in rack 2 (every flow crosses two spine hops via rack 1's
// gateways), an all-to-all incast converges on a single sink, and the
// fleet metrics table shows every rack's telemetry under its
// "rack<N>." prefix next to the spine's and the controller's.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/fleet.hpp"
#include "sim/log.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main(int argc, char** argv) {
  sim::LogConfig::set_level(sim::LogLevel::kOff);

  // --workers N drives the same fleet through the conservative-PDES
  // engine; the output must stay byte-identical to the default (the
  // CI determinism gate diffs the two).
  int workers = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    }
  }

  // --- 1. Describe the fleet: three racks, three shapes ---
  runtime::FleetConfig cfg;
  cfg.workers = workers;

  runtime::RackSpec compute;  // adaptive grid, CRC on
  compute.config.shape = runtime::RackShape::kGrid;
  compute.config.rack.width = 4;
  compute.config.rack.height = 4;
  compute.gateway = 0;  // node (0,0) attaches to the spine
  cfg.racks.push_back(compute);

  runtime::RackSpec transit;  // torus baseline in the middle
  transit.config.shape = runtime::RackShape::kTorus;
  transit.config.rack.width = 4;
  transit.config.rack.height = 4;
  cfg.racks.push_back(transit);

  runtime::RackSpec storage;  // 8-node ring
  storage.config.shape = runtime::RackShape::kRing;
  storage.config.nodes = 8;
  cfg.racks.push_back(storage);

  // Spine: a line 0 - 1 - 2 (rack 0 reaches rack 2 through rack 1).
  runtime::SpineSpec s01;
  s01.rack_a = 0;
  s01.rack_b = 1;
  s01.rate = phy::DataRate::gbps(400);
  s01.latency = 2_us;
  cfg.spine.push_back(s01);
  runtime::SpineSpec s12;
  s12.rack_a = 1;
  s12.rack_b = 2;
  // Exit rack 1 at the far corner, so transit payloads actually cross
  // the torus between the two gateways.
  s12.gateway_a = 15;
  s12.rate = phy::DataRate::gbps(400);
  s12.latency = 2_us;
  cfg.spine.push_back(s12);

  // The fleet controller: observe spine utilisation every 50 us,
  // reprice links that run hot, let the route cache re-plan packets —
  // and promote persistently hot rack pairs into spine circuit
  // reservations (a carved per-direction slice their packets ride,
  // bypassing the shared FIFO), demoting them when they go idle.
  cfg.enable_controller = true;
  cfg.controller.epoch = 50_us;
  cfg.controller.utilization_weight = 8.0;
  cfg.controller.reservations.enable = true;
  cfg.controller.reservations.fraction = 0.5;

  runtime::FleetRuntime fleet(cfg);
  fleet.start();  // arm every rack's control loop + the fleet's
  std::printf("fleet: %zu racks, %zu spine links, one clock\n\n", fleet.rack_count(),
              fleet.spine().link_count());

  // --- 2. Shuffle between racks: mappers in rack 0, reducers in rack 2 ---
  workload::CrossRackShuffleConfig shuffle;
  for (int x = 0; x < 4; ++x) shuffle.mappers.push_back(fleet.at(0, x, 3));
  for (phy::NodeId n = 2; n <= 5; ++n) shuffle.reducers.push_back({2, n});
  shuffle.bytes_per_pair = phy::DataSize::kilobytes(256);
  auto& job = fleet.add_shuffle(shuffle);
  job.run([](const workload::CrossRackResult& r) {
    std::printf("shuffle done: %llu flows (%llu cross-rack, %llu spine hops), "
                "job %.1f us, straggler x%.2f\n",
                static_cast<unsigned long long>(r.flows),
                static_cast<unsigned long long>(r.cross_rack_flows),
                static_cast<unsigned long long>(r.spine_hops), r.job_completion.us(),
                r.straggler_ratio());
  });

  // --- 3. All-to-all incast: everyone piles onto one storage node ---
  workload::CrossRackIncastConfig incast;
  for (int x = 0; x < 4; ++x) incast.sources.push_back(fleet.at(0, x, 0));
  for (int x = 0; x < 4; ++x) incast.sources.push_back(fleet.at(1, x, 0));
  incast.sink = {2, 0};
  incast.bytes_per_source = phy::DataSize::kilobytes(128);
  incast.start = 50_us;
  auto& sink_job = fleet.add_incast(incast);
  sink_job.run([](const workload::CrossRackResult& r) {
    std::printf("incast done:  %llu flows (%llu cross-rack), job %.1f us, "
                "straggler x%.2f\n",
                static_cast<unsigned long long>(r.flows),
                static_cast<unsigned long long>(r.cross_rack_flows), r.job_completion.us(),
                r.straggler_ratio());
  });

  // --- 4. Run the shared clock until both jobs drain ---
  fleet.run_until(20_ms);
  fleet.stop();
  fleet.run_until();

  // --- 5. One registry for the whole fleet ---
  auto& metrics = fleet.metrics();
  std::printf("\nper-rack packet latency (one clock, three fabrics):\n");
  for (std::size_t i = 0; i < fleet.rack_count(); ++i) {
    const auto* h =
        metrics.find_histogram("rack" + std::to_string(i) + ".net.packet_latency");
    std::printf("  rack%zu: %s\n", i, h ? h->summary_time().c_str() : "(none)");
  }
  const auto* spine = metrics.find_counters("spine");
  std::printf("  spine: %llu packets, %llu bytes, %llu retransmits\n",
              static_cast<unsigned long long>(spine->get("spine.packets")),
              static_cast<unsigned long long>(spine->get("spine.bytes")),
              static_cast<unsigned long long>(spine->get("spine.retransmits")));
  std::printf("  controller: %llu epochs, %llu reprices, peak spine util %.2f\n",
              static_cast<unsigned long long>(fleet.controller().epochs_completed()),
              static_cast<unsigned long long>(fleet.controller().reprices()),
              fleet.controller().utilization_series().max_value());
  std::printf("  circuits: %llu promotions, %llu demotions, %llu bytes on slices\n\n",
              static_cast<unsigned long long>(fleet.controller().promotions()),
              static_cast<unsigned long long>(fleet.controller().demotions()),
              static_cast<unsigned long long>(spine->get("spine.reserved_bytes")));

  fleet.metrics_table().print();
  return 0;
}
