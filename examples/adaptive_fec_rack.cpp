// Adaptive FEC under lane degradation — PLP #4 driven by the CRC.
//
// A cable's bit error rate climbs four decades over a few
// milliseconds (thermal drift, ageing, a marginal connector). The CRC
// watches per-lane statistics (PLP #5) on the closed control ring and
// walks the link up the FEC ladder exactly as far as the target frame
// loss requires. This example prints each mode change as it happens.
#include <cstdio>

#include "core/controller.hpp"
#include "fabric/builders.hpp"
#include "phy/ber_profile.hpp"
#include "workload/generator.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);
  sim::Simulator sim;
  fabric::RackParams params;
  params.width = 3;
  params.height = 3;
  params.fec = phy::FecScheme::kNone;  // start with the cheapest mode
  fabric::Rack rack = fabric::build_grid(&sim, params);

  // Degrade the cable between nodes 0 and 1.
  const phy::LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  phy::BerDriver ber(&sim, rack.plant.get(), cable,
                     phy::ramp_ber(1e-12, 1e-4, 1_ms, 9_ms), 100_us);
  ber.start();

  core::CrcConfig cfg;
  cfg.epoch = 200_us;
  cfg.enable_adaptive_fec = true;
  core::CrcController crc(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                          rack.router.get(), rack.network.get(), cfg);
  crc.start();

  // Watch the victim link's mode.
  std::printf("time_ms  ber        fec_mode   post_fec_ber\n");
  phy::FecScheme last = phy::FecScheme::kNone;
  std::function<void()> watch = [&] {
    if (rack.plant->has_link(victim)) {
      const auto& l = rack.plant->link(victim);
      if (l.fec().scheme != last || sim.now() == sim::SimTime::zero()) {
        last = l.fec().scheme;
        std::printf("%7.2f  %.2e  %-9s  %.2e\n", sim.now().ms(), l.worst_pre_fec_ber(),
                    std::string(phy::to_string(last)).c_str(), l.post_fec_ber());
      }
    }
    if (sim.now() < 12_ms) sim.schedule_after(50_us, watch);
  };
  sim.schedule_at(sim::SimTime::zero(), watch);

  // Keep traffic flowing through the degradation.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 200_us;
  gen_cfg.horizon = 12_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(phy::DataSize::kilobytes(64));
  workload::FlowGenerator gen(&sim, rack.network.get(),
                              workload::TrafficMatrix::uniform(9), gen_cfg);
  gen.start();

  sim.run_until(15_ms);
  ber.stop();
  crc.stop();
  sim.run_until();

  std::uint64_t retx = 0;
  for (const auto& r : gen.results()) retx += r.retransmits;
  std::printf("\n%llu flows, %llu retransmits, goodput %.2f Gbps, %llu FEC changes\n",
              static_cast<unsigned long long>(gen.flows_generated()),
              static_cast<unsigned long long>(retx), gen.goodput_gbps(),
              static_cast<unsigned long long>(crc.fec_adapter().changes_submitted()));
  return 0;
}
