// Adaptive FEC under lane degradation — PLP #4 driven by the CRC.
//
// A cable's bit error rate climbs four decades over a few
// milliseconds (thermal drift, ageing, a marginal connector). The CRC
// watches per-lane statistics (PLP #5) on the closed control ring and
// walks the link up the FEC ladder exactly as far as the target frame
// loss requires. This example prints each mode change as it happens.
#include <cstdio>

#include "phy/ber_profile.hpp"
#include "runtime/runtime.hpp"

using namespace rsf;
using namespace rsf::sim::literals;

int main() {
  sim::LogConfig::set_level(sim::LogLevel::kOff);

  runtime::RuntimeConfig cfg;
  cfg.rack.width = 3;
  cfg.rack.height = 3;
  cfg.rack.fec = phy::FecScheme::kNone;  // start with the cheapest mode
  cfg.crc.epoch = 200_us;
  cfg.crc.enable_adaptive_fec = true;
  runtime::FabricRuntime rt(cfg);
  auto& sim = rt.sim();

  // Degrade the cable between nodes 0 and 1.
  const phy::LinkId victim = *rt.topology().link_between(0, 1);
  const phy::CableId cable = rt.plant().link(victim).segments().front().cable;
  phy::BerDriver ber(&sim, &rt.plant(), cable, phy::ramp_ber(1e-12, 1e-4, 1_ms, 9_ms),
                     100_us);
  ber.start();

  rt.start();

  // Watch the victim link's mode.
  std::printf("time_ms  ber        fec_mode   post_fec_ber\n");
  phy::FecScheme last = phy::FecScheme::kNone;
  std::function<void()> watch = [&] {
    if (rt.plant().has_link(victim)) {
      const auto& l = rt.plant().link(victim);
      if (l.fec().scheme != last || sim.now() == sim::SimTime::zero()) {
        last = l.fec().scheme;
        std::printf("%7.2f  %.2e  %-9s  %.2e\n", sim.now().ms(), l.worst_pre_fec_ber(),
                    std::string(phy::to_string(last)).c_str(), l.post_fec_ber());
      }
    }
    if (sim.now() < 12_ms) sim.schedule_after(50_us, watch);
  };
  sim.schedule_at(sim::SimTime::zero(), watch);

  // Keep traffic flowing through the degradation.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 200_us;
  gen_cfg.horizon = 12_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(phy::DataSize::kilobytes(64));
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(9), gen_cfg);
  gen.start();

  rt.run_until(15_ms);
  ber.stop();
  rt.stop();
  rt.run_until();

  std::uint64_t retx = 0;
  for (const auto& r : gen.results()) retx += r.retransmits;
  std::printf("\n%llu flows, %llu retransmits, goodput %.2f Gbps, %llu FEC changes\n",
              static_cast<unsigned long long>(gen.flows_generated()),
              static_cast<unsigned long long>(retx), gen.goodput_gbps(),
              static_cast<unsigned long long>(
                  rt.controller().fec_adapter().changes_submitted()));
  return 0;
}
