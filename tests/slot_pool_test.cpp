// SlotPool<T>: the one dense free-list implementation every recycled
// pool in the repo rides on (Network probe/flow slots, Interconnect
// reservation slots, FleetRuntime flow/packet slots). Claim/recycle
// ordering (LIFO reuse — the property that kept the migration
// byte-identical), generation-stale handle inertness including across
// a generation wrap, the recycle gate policy hook, and churn holding
// the pool at peak concurrency.
#include "core/slot_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace rsf {
namespace {

using core::SlotPool;

struct Payload {
  std::string name;
  int value = 0;
};

TEST(SlotPool, ClaimGrowsDenselyAndRecycleReusesLifo) {
  SlotPool<Payload> pool;
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.free_count(), 0u);

  const auto a = pool.claim();
  const auto b = pool.claim();
  const auto c = pool.claim();
  EXPECT_EQ(a.index, 0u);
  EXPECT_EQ(b.index, 1u);
  EXPECT_EQ(c.index, 2u);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.free_count(), 0u);

  // LIFO: the most recently recycled slot is the next claim — chained
  // relaunches reuse the very slot that just drained.
  pool.recycle(b.index);
  pool.recycle(a.index);
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.claim().index, 0u);
  EXPECT_EQ(pool.claim().index, 1u);
  // Free list empty again: the pool grows at the back.
  EXPECT_EQ(pool.claim().index, 3u);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(SlotPool, RecycleResetsTheSlotAndStaleifiesHandles) {
  SlotPool<Payload> pool;
  const auto h = pool.claim();
  pool[h.index].name = "first";
  pool[h.index].value = 42;
  ASSERT_TRUE(pool.is_live(h));
  ASSERT_NE(pool.get_live(h), nullptr);
  EXPECT_EQ(pool.get_live(h)->value, 42);

  pool.recycle(h.index);
  // The handle went stale and the slot was reset in place.
  EXPECT_FALSE(pool.is_live(h));
  EXPECT_EQ(pool.get_live(h), nullptr);
  EXPECT_FALSE(pool.live(h.index));

  // The next occupant starts from T{} with a bumped generation; the
  // old handle stays stale even though the index matches.
  const auto h2 = pool.claim();
  EXPECT_EQ(h2.index, h.index);
  EXPECT_NE(h2.generation, h.generation);
  EXPECT_TRUE(pool[h2.index].name.empty());
  EXPECT_EQ(pool[h2.index].value, 0);
  EXPECT_TRUE(pool.is_live(h2));
  EXPECT_FALSE(pool.is_live(h));
}

TEST(SlotPool, DoubleRecycleFailsLoudly) {
  // A double-recycle would put the index on the free list twice and
  // alias two future claimants at the same generation — the one
  // corruption the generation check could not catch later, so the
  // pool refuses it at the bug.
  SlotPool<Payload> pool;
  const auto h = pool.claim();
  pool.recycle(h.index);
  EXPECT_THROW(pool.recycle(h.index), std::logic_error);
  EXPECT_THROW(pool.recycle(42u), std::logic_error);  // never allocated
  EXPECT_EQ(pool.free_count(), 1u);  // the failed recycles left no residue
  // maybe_recycle answers false on an already-free slot (drain paths
  // legitimately ask again after a completion callback's recycle);
  // only an index the pool never allocated is misuse.
  EXPECT_FALSE(pool.maybe_recycle(h.index));
  EXPECT_THROW(static_cast<void>(pool.maybe_recycle(42u)), std::logic_error);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(SlotPool, InvalidAndForeignHandlesAreNeverLive) {
  SlotPool<Payload> pool;
  EXPECT_FALSE(pool.is_live({}));  // default handle: invalid index
  EXPECT_EQ(pool.get_live(SlotPool<Payload>::Handle{}), nullptr);
  // An index the pool never allocated.
  EXPECT_FALSE(pool.is_live(7u, 0u));
  const auto h = pool.claim();
  // Right index, wrong generation.
  EXPECT_FALSE(pool.is_live(h.index, h.generation + 1));
  EXPECT_TRUE(pool.is_live(h));
}

TEST(SlotPool, StaleHandlesStayInertAcrossAGenerationWrap) {
  // A narrow generation type reaches its wrap in-test. Walk one slot
  // to the top of the generation range, then recycle across the wrap:
  // the pre-wrap handle must stay stale and the post-wrap occupant
  // must be live — staleness is equality on the generation, so the
  // wrap itself is benign.
  SlotPool<Payload, std::uint8_t> pool;
  auto h = pool.claim();
  for (int i = 0; i < 255; ++i) {
    pool.recycle(h.index);
    h = pool.claim();
    ASSERT_EQ(h.index, 0u);
  }
  ASSERT_EQ(h.generation, 255);
  ASSERT_TRUE(pool.is_live(h));

  pool.recycle(h.index);  // 255 wraps to 0
  EXPECT_FALSE(pool.is_live(h));
  const auto wrapped = pool.claim();
  EXPECT_EQ(wrapped.index, 0u);
  EXPECT_EQ(wrapped.generation, 0);
  EXPECT_TRUE(pool.is_live(wrapped));
  EXPECT_FALSE(pool.is_live(h));  // pre-wrap handle still stale
}

struct Drainable {
  bool done = false;
  int inflight = 0;
};

struct DrainedGate {
  [[nodiscard]] bool operator()(const Drainable& d) const {
    return d.done && d.inflight == 0;
  }
};

TEST(SlotPool, MaybeRecycleHonorsTheGateAndRunsCleanupBeforeReset) {
  SlotPool<Drainable, std::uint32_t, DrainedGate> pool;
  const auto h = pool.claim();
  pool[h.index].inflight = 2;

  // Not done, stragglers in flight: the gate holds the slot.
  EXPECT_FALSE(pool.maybe_recycle(h.index));
  pool[h.index].done = true;
  EXPECT_FALSE(pool.maybe_recycle(h.index));  // still draining
  EXPECT_TRUE(pool.is_live(h));

  pool[h.index].inflight = 0;
  // Cleanup sees the slot intact (before the T{} reset) exactly once.
  int cleanup_inflight = -1;
  bool cleanup_done = false;
  EXPECT_TRUE(pool.maybe_recycle(h.index, [&](Drainable& d) {
    cleanup_done = d.done;
    cleanup_inflight = d.inflight;
  }));
  EXPECT_TRUE(cleanup_done);
  EXPECT_EQ(cleanup_inflight, 0);
  EXPECT_FALSE(pool.is_live(h));
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(SlotPool, ChurnHoldsThePoolAtPeakConcurrency) {
  SlotPool<Payload> pool;
  // A million sequential claim/recycle cycles never grow past one
  // slot: churn is bounded by concurrency, not throughput.
  for (int i = 0; i < 1'000'000; ++i) {
    const auto h = pool.claim();
    pool.recycle(h.index);
  }
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.free_count(), 1u);

  // An 8-wide burst followed by sustained 8-deep churn holds the pool
  // at the burst's peak.
  SlotPool<Payload> burst;
  std::uint32_t live[8];
  for (auto& idx : live) idx = burst.claim().index;
  for (int wave = 0; wave < 10'000; ++wave) {
    for (auto& idx : live) {
      burst.recycle(idx);
      idx = burst.claim().index;
    }
  }
  EXPECT_EQ(burst.size(), 8u);
  EXPECT_EQ(burst.free_count(), 0u);
}

}  // namespace
}  // namespace rsf
