#include "fabric/router.hpp"

#include <gtest/gtest.h>

#include "fabric/builders.hpp"

namespace rsf::fabric {
namespace {

using phy::LinkId;
using phy::NodeId;
using rsf::sim::Simulator;

struct GridFixture : ::testing::Test {
  Simulator sim;
  Rack rack;

  GridFixture() {
    RackParams p;
    p.width = 4;
    p.height = 4;
    rack = build_grid(&sim, p);
  }
};

TEST_F(GridFixture, NextHopNulloptAtDestination) {
  EXPECT_FALSE(rack.router->next_hop(3, 3).has_value());
}

TEST_F(GridFixture, MinCostFindsManhattanPath) {
  // 0 (0,0) -> 15 (3,3): 6 hops on a 4x4 grid.
  EXPECT_EQ(rack.router->hop_count(rack.node_at(0, 0), rack.node_at(3, 3)), 6);
  EXPECT_EQ(rack.router->hop_count(rack.node_at(0, 0), rack.node_at(1, 0)), 1);
  EXPECT_EQ(rack.router->hop_count(rack.node_at(0, 0), rack.node_at(0, 0)), 0);
}

TEST_F(GridFixture, PathWalksConnectedLinks) {
  const NodeId src = rack.node_at(0, 0);
  const NodeId dst = rack.node_at(3, 2);
  const auto path = rack.router->path(src, dst);
  ASSERT_EQ(path.size(), 5u);
  NodeId at = src;
  for (LinkId id : path) {
    const auto& l = rack.plant->link(id);
    ASSERT_TRUE(l.connects(at));
    at = l.other_end(at);
  }
  EXPECT_EQ(at, dst);
}

TEST_F(GridFixture, PathCostIsPositiveAndAdditive) {
  const auto c1 = rack.router->path_cost(rack.node_at(0, 0), rack.node_at(1, 0));
  const auto c2 = rack.router->path_cost(rack.node_at(0, 0), rack.node_at(2, 0));
  ASSERT_TRUE(c1 && c2);
  EXPECT_GT(*c1, 0.0);
  EXPECT_NEAR(*c2, 2.0 * *c1, 1e-6);
  EXPECT_DOUBLE_EQ(rack.router->path_cost(5, 5).value(), 0.0);
}

TEST_F(GridFixture, UnreachableAfterLinkShutdown) {
  // Cut both links of corner (0,0): unreachable.
  for (LinkId id : rack.topology->links_at(rack.node_at(0, 0))) {
    rack.engine->submit(plp::ShutdownCommand{id});
  }
  sim.run_until();
  EXPECT_FALSE(rack.router->next_hop(rack.node_at(0, 0), rack.node_at(3, 3)).has_value());
  EXPECT_EQ(rack.router->hop_count(rack.node_at(0, 0), rack.node_at(3, 3)), -1);
  EXPECT_FALSE(rack.router->path_cost(rack.node_at(0, 0), rack.node_at(3, 3)).has_value());
}

TEST_F(GridFixture, PriceFnSteersRouting) {
  // Make the direct west-east row prohibitively expensive; the path
  // from (0,0) to (3,0) should then dodge through row 1.
  const NodeId src = rack.node_at(0, 0);
  const NodeId dst = rack.node_at(3, 0);
  EXPECT_EQ(rack.router->hop_count(src, dst), 3);

  rack.router->set_price_fn([this](LinkId id) {
    const auto& l = rack.plant->link(id);
    const auto ca = rack.topology->coord(l.end_a());
    const auto cb = rack.topology->coord(l.end_b());
    const bool in_row0 = ca && cb && ca->y == 0 && cb->y == 0;
    return in_row0 ? 1e9 : 100.0;
  });
  const int hops = rack.router->hop_count(src, dst);
  EXPECT_EQ(hops, 5);  // down, 3 east, up
  // Restoring default prices restores the short path.
  rack.router->set_price_fn(nullptr);
  EXPECT_EQ(rack.router->hop_count(src, dst), 3);
}

TEST_F(GridFixture, BumpPricesInvalidatesCache) {
  double price = 100.0;
  rack.router->set_price_fn([&price](LinkId) { return price; });
  const auto c1 = rack.router->path_cost(rack.node_at(0, 0), rack.node_at(1, 0));
  price = 200.0;
  rack.router->bump_prices();
  const auto c2 = rack.router->path_cost(rack.node_at(0, 0), rack.node_at(1, 0));
  ASSERT_TRUE(c1 && c2);
  EXPECT_GT(*c2, *c1);
}

TEST_F(GridFixture, InfinitePriceExcludesLink) {
  // Price the (0,0)-(1,0) link infinite: routing goes around it.
  const auto direct = rack.topology->link_between(rack.node_at(0, 0), rack.node_at(1, 0));
  ASSERT_TRUE(direct.has_value());
  rack.router->set_price_fn([&](LinkId id) {
    return id == *direct ? std::numeric_limits<double>::infinity() : 100.0;
  });
  const auto next = rack.router->next_hop(rack.node_at(0, 0), rack.node_at(1, 0));
  ASSERT_TRUE(next.has_value());
  EXPECT_NE(*next, *direct);
}

TEST_F(GridFixture, DefaultCostReflectsLatencyPlusHopPenalty) {
  const LinkId id = rack.plant->link_ids().front();
  const double cost = rack.router->default_cost(id);
  const double latency_ns =
      rack.plant->link(id).one_way_latency(phy::DataSize::bytes(1024)).ns();
  EXPECT_NEAR(cost, latency_ns + 450.0, 1.0);
}

TEST_F(GridFixture, DimensionOrderRoutesXThenY) {
  rack.router->set_policy(RoutingPolicy::kDimensionOrder);
  const NodeId src = rack.node_at(0, 0);
  const NodeId dst = rack.node_at(2, 2);
  // First hop must move in x.
  const auto first = rack.router->next_hop(src, dst);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(rack.plant->link(*first).other_end(src), rack.node_at(1, 0));
  // From (2,0) the x is correct: moves in y.
  const auto later = rack.router->next_hop(rack.node_at(2, 0), dst);
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(rack.plant->link(*later).other_end(rack.node_at(2, 0)), rack.node_at(2, 1));
}

TEST(RouterTorus, DimensionOrderUsesWraparound) {
  Simulator sim;
  RackParams p;
  p.width = 4;
  p.height = 4;
  p.routing = RoutingPolicy::kDimensionOrder;
  Rack rack = build_torus(&sim, p);
  // 0 (0,0) -> (3,0): wrap is 1 hop, interior is 3.
  const auto first = rack.router->next_hop(rack.node_at(0, 0), rack.node_at(3, 0));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(rack.plant->link(*first).other_end(rack.node_at(0, 0)), rack.node_at(3, 0));
}

TEST(RouterTorus, MinCostExploitsWraparound) {
  Simulator sim;
  RackParams p;
  p.width = 6;
  p.height = 6;
  Rack rack = build_torus(&sim, p);
  // Opposite corners on a 6x6 torus: <= 6 hops (3+3 with wraps),
  // where the grid needs 10.
  const int hops = rack.router->hop_count(rack.node_at(0, 0), rack.node_at(5, 5));
  EXPECT_LE(hops, 6);
  EXPECT_GE(hops, 2);
}

TEST(Router, NullTopologyRejected) {
  EXPECT_THROW(Router(nullptr), std::invalid_argument);
}

TEST_F(GridFixture, MemoizedNextHopEqualsFreshSearch) {
  // Every (at, dst) pair, asked twice of the long-lived router (the
  // second answer is the memo hit), must match what a cold router
  // computes from scratch.
  auto expect_all_equal_fresh = [&] {
    for (NodeId at = 0; at < 16; ++at) {
      for (NodeId dst = 0; dst < 16; ++dst) {
        Router cold(rack.topology.get());
        const auto fresh = cold.next_hop(at, dst);
        EXPECT_EQ(rack.router->next_hop(at, dst), fresh) << at << " -> " << dst;
        EXPECT_EQ(rack.router->next_hop(at, dst), fresh) << at << " -> " << dst;
      }
    }
  };
  expect_all_equal_fresh();
}

TEST_F(GridFixture, SetReservationBumpsTheVersionAndRefreshesTheMemo) {
  const NodeId a = rack.node_at(0, 0);
  const NodeId b = rack.node_at(1, 0);
  const auto direct = rack.topology->link_between(a, b);
  ASSERT_TRUE(direct.has_value());
  // Warm the memo on the direct hop.
  const auto before = rack.router->next_hop(a, b);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(*before, *direct);

  // Reserving the link must invalidate the memo: set_reservation
  // notifies the plant's change observers, which bump the topology
  // version the router's tables key on.
  const std::uint64_t version = rack.topology->version();
  rack.plant->set_reservation(*direct, 42);
  EXPECT_GT(rack.topology->version(), version);
  const auto around = rack.router->next_hop(a, b);
  ASSERT_TRUE(around.has_value());
  EXPECT_NE(*around, *direct);  // private circuits are invisible
  {
    Router cold(rack.topology.get());
    EXPECT_EQ(cold.next_hop(a, b), around);  // hit == fresh search
  }

  // A redundant set is a no-op (no version churn), and clearing the
  // reservation restores the direct hop.
  const std::uint64_t reserved_version = rack.topology->version();
  rack.plant->set_reservation(*direct, 42);
  EXPECT_EQ(rack.topology->version(), reserved_version);
  rack.plant->set_reservation(*direct, std::nullopt);
  EXPECT_EQ(rack.router->next_hop(a, b), before);
}

}  // namespace
}  // namespace rsf::fabric
