#include <gtest/gtest.h>

#include <optional>

#include "core/reconfig.hpp"
#include "core/ring.hpp"
#include "fabric/builders.hpp"

namespace rsf::core {
namespace {

using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct RingFixture : ::testing::Test {
  Simulator sim;
  fabric::Rack rack;

  RingFixture() {
    fabric::RackParams p;
    p.width = 4;
    p.height = 4;
    rack = fabric::build_grid(&sim, p);
  }

  ControlRing make_ring(ControlRingConfig cfg = {}) {
    return ControlRing(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                       rack.network.get(), cfg);
  }
};

TEST_F(RingFixture, CirculationTimeScalesWithNodes) {
  ControlRing ring = make_ring();
  const SimTime expected =
      (ring.config().hop_latency + ring.config().node_processing) * std::int64_t{16};
  EXPECT_EQ(ring.circulation_time(), expected);
}

TEST_F(RingFixture, SnapshotCoversEveryLinkOnce) {
  ControlRing ring = make_ring();
  std::optional<RackSnapshot> snap;
  ring.circulate(100_us, [&](const RackSnapshot& s) { snap = s; });
  // Telemetry events are weak; give them an explicit horizon.
  sim.run_until(sim.now() + ring.circulation_time());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->links.size(), rack.plant->link_count());
  // No duplicates.
  std::set<LinkId> seen;
  for (const auto& o : snap->links) EXPECT_TRUE(seen.insert(o.link).second);
  EXPECT_EQ(snap->taken_at, ring.circulation_time());
  EXPECT_GT(snap->rack_power_watts, 0.0);
}

TEST_F(RingFixture, SnapshotArrivesOnlyAfterCirculation) {
  ControlRing ring = make_ring();
  bool got = false;
  ring.circulate(100_us, [&](const RackSnapshot&) { got = true; });
  sim.run_until(ring.circulation_time() - 1_ns);
  EXPECT_FALSE(got);
  sim.run_until(ring.circulation_time());
  EXPECT_TRUE(got);
}

TEST_F(RingFixture, UtilizationDiffsBetweenEpochs) {
  ControlRing ring = make_ring();
  // Saturate one link for a while.
  fabric::FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 1;
  spec.size = phy::DataSize::megabytes(5);
  rack.network->start_flow(spec, nullptr);
  sim.run_until(500_us);

  std::optional<RackSnapshot> snap;
  ring.circulate(500_us, [&](const RackSnapshot& s) { snap = s; });
  sim.run_until(600_us);
  ASSERT_TRUE(snap.has_value());
  const LinkId hot = *rack.topology->link_between(0, 1);
  double hot_util = -1;
  for (const auto& o : snap->links) {
    EXPECT_GE(o.utilization, 0.0);
    EXPECT_LE(o.utilization, 1.0);
    if (o.link == hot) hot_util = o.utilization;
  }
  EXPECT_GT(hot_util, 0.5);

  // Flow finishes; a later epoch must show the link cooling off.
  sim.run_until(2_ms);
  std::optional<RackSnapshot> snap2;
  ring.circulate(1_ms, [&](const RackSnapshot& s) { snap2 = s; });
  sim.run_until(sim.now() + ring.circulation_time());
  ASSERT_TRUE(snap2.has_value());
  for (const auto& o : snap2->links) {
    if (o.link == hot) EXPECT_LT(o.utilization, hot_util);
  }
}

// --- reconfig orchestration ---

TEST_F(RingFixture, SplitManySplitsAll) {
  std::vector<LinkId> row;
  for (int x = 0; x + 1 < 4; ++x) {
    row.push_back(*rack.topology->link_between(rack.node_at(x, 0), rack.node_at(x + 1, 0)));
  }
  std::optional<std::vector<std::optional<SplitOutcome>>> outcomes;
  split_many(rack.engine.get(), row, 1, [&](auto outs) { outcomes = std::move(outs); });
  sim.run_until();
  ASSERT_TRUE(outcomes.has_value());
  ASSERT_EQ(outcomes->size(), 3u);
  for (const auto& o : *outcomes) {
    ASSERT_TRUE(o.has_value());
    EXPECT_EQ(rack.plant->link(o->kept).lane_count(), 1);
    EXPECT_EQ(rack.plant->link(o->spare).lane_count(), 1);
  }
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(RingFixture, SplitManyEmptyInput) {
  bool called = false;
  split_many(rack.engine.get(), {}, 1, [&](auto outs) {
    called = true;
    EXPECT_TRUE(outs.empty());
  });
  EXPECT_TRUE(called);
}

TEST_F(RingFixture, SplitManyReportsFailures) {
  const LinkId one_lane_target = *rack.topology->link_between(0, 1);
  // First make a 1-lane link that cannot be split again.
  std::optional<SplitOutcome> first;
  split_many(rack.engine.get(), {one_lane_target}, 1, [&](auto outs) { first = outs[0]; });
  sim.run_until();
  ASSERT_TRUE(first.has_value());
  std::optional<std::vector<std::optional<SplitOutcome>>> outcomes;
  split_many(rack.engine.get(), {first->kept}, 1,
             [&](auto outs) { outcomes = std::move(outs); });
  sim.run_until();
  ASSERT_TRUE(outcomes.has_value());
  EXPECT_FALSE((*outcomes)[0].has_value());
}

TEST_F(RingFixture, ChainBypassBuildsWraparound) {
  // Split row 0, chain the spares: 0 <-> 3 wrap link appears.
  std::vector<LinkId> row;
  for (int x = 0; x + 1 < 4; ++x) {
    row.push_back(*rack.topology->link_between(rack.node_at(x, 0), rack.node_at(x + 1, 0)));
  }
  std::vector<LinkId> spares;
  split_many(rack.engine.get(), row, 1, [&](auto outs) {
    for (auto& o : outs) spares.push_back(o->spare);
  });
  sim.run_until();

  std::optional<std::optional<LinkId>> wrap;
  chain_bypass(rack.engine.get(), spares, [&](std::optional<LinkId> l) { wrap = l; });
  sim.run_until();
  ASSERT_TRUE(wrap.has_value());
  ASSERT_TRUE(wrap->has_value());
  const phy::LogicalLink& l = rack.plant->link(**wrap);
  EXPECT_TRUE(l.connects(rack.node_at(0, 0)));
  EXPECT_TRUE(l.connects(rack.node_at(3, 0)));
  EXPECT_EQ(l.bypass_joints(), 2);
  EXPECT_TRUE(l.ready());
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(RingFixture, ChainBypassSingleLinkIsIdentity) {
  const LinkId id = rack.plant->link_ids().front();
  std::optional<std::optional<LinkId>> out;
  chain_bypass(rack.engine.get(), {id}, [&](std::optional<LinkId> l) { out = l; });
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, id);
}

TEST_F(RingFixture, ChainBypassTreeReductionIsLogDepth) {
  // 8-node chain: 7 links -> ceil(log2 7) = 3 rounds of joins.
  Simulator sim2;
  fabric::Rack chain = fabric::build_chain(&sim2, 8, fabric::RackParams{});
  std::vector<LinkId> links = chain.plant->link_ids();
  SimTime done_at;
  chain_bypass(chain.engine.get(), links, [&](std::optional<LinkId> l) {
    ASSERT_TRUE(l.has_value());
    done_at = sim2.now();
  });
  sim2.run_until();
  const auto& t = chain.engine->timings();
  const SimTime per_round = t.command_overhead + t.bypass_setup + t.lane_retrain;
  EXPECT_EQ(done_at, per_round * std::int64_t{3});
}

TEST_F(RingFixture, UnchainRestoresAdjacentPieces) {
  Simulator sim2;
  fabric::Rack chain = fabric::build_chain(&sim2, 5, fabric::RackParams{});
  std::vector<LinkId> links = chain.plant->link_ids();
  std::optional<LinkId> joined;
  chain_bypass(chain.engine.get(), links, [&](std::optional<LinkId> l) { joined = l; });
  sim2.run_until();
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(interior_joints(*chain.plant, *joined), (std::vector<phy::NodeId>{1, 2, 3}));

  std::optional<std::vector<LinkId>> pieces;
  unchain_bypass(chain.engine.get(), chain.plant.get(), *joined,
                 [&](std::vector<LinkId> p) { pieces = std::move(p); });
  sim2.run_until();
  ASSERT_TRUE(pieces.has_value());
  ASSERT_EQ(pieces->size(), 4u);
  for (LinkId id : *pieces) {
    EXPECT_EQ(chain.plant->link(id).bypass_joints(), 0);
    EXPECT_TRUE(chain.plant->link(id).ready());
  }
  EXPECT_TRUE(chain.plant->validate().empty());
}

// --- TopologyPlanner ---

TEST_F(RingFixture, CloseRowCreatesWrap) {
  TopologyPlanner planner(&sim, rack.engine.get(), rack.plant.get(), rack.topology.get());
  std::optional<std::optional<LinkId>> wrap;
  planner.close_row(1, [&](std::optional<LinkId> l) { wrap = l; });
  sim.run_until();
  ASSERT_TRUE(wrap.has_value());
  ASSERT_TRUE(wrap->has_value());
  const auto& l = rack.plant->link(**wrap);
  EXPECT_TRUE(l.connects(rack.node_at(0, 1)));
  EXPECT_TRUE(l.connects(rack.node_at(3, 1)));
  // Row links are now 1 lane.
  EXPECT_EQ(rack.plant
                ->link(*rack.topology->link_between(rack.node_at(0, 1), rack.node_at(1, 1)))
                .lane_count(),
            1);
}

TEST_F(RingFixture, GridToTorusClosesAllRowsAndColumns) {
  TopologyPlanner planner(&sim, rack.engine.get(), rack.plant.get(), rack.topology.get());
  std::optional<TopologyPlanner::Report> report;
  planner.grid_to_torus([&](const TopologyPlanner::Report& r) { report = r; });
  sim.run_until();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->rows_closed, 4);
  EXPECT_EQ(report->cols_closed, 4);
  EXPECT_EQ(report->failures, 0);
  EXPECT_EQ(report->wrap_links.size(), 8u);
  EXPECT_TRUE(rack.plant->validate().empty());
  // Torus effect: opposite corners now 3+3 hops at most via wraps
  // instead of 6.
  EXPECT_LT(rack.router->hop_count(rack.node_at(0, 0), rack.node_at(3, 3)), 6);
}

TEST_F(RingFixture, CloseRowFailsOnOneLaneLinks) {
  Simulator sim2;
  fabric::RackParams p;
  p.lanes_per_cable = 1;
  p.lanes_per_link = 1;
  fabric::Rack thin = fabric::build_grid(&sim2, p);
  TopologyPlanner planner(&sim2, thin.engine.get(), thin.plant.get(), thin.topology.get());
  std::optional<std::optional<LinkId>> wrap;
  planner.close_row(0, [&](std::optional<LinkId> l) { wrap = l; });
  sim2.run_until();
  ASSERT_TRUE(wrap.has_value());
  EXPECT_FALSE(wrap->has_value());
}

TEST_F(RingFixture, CloseRowRejectsBadIndex) {
  TopologyPlanner planner(&sim, rack.engine.get(), rack.plant.get(), rack.topology.get());
  std::optional<std::optional<LinkId>> wrap;
  planner.close_row(9, [&](std::optional<LinkId> l) { wrap = l; });
  ASSERT_TRUE(wrap.has_value());
  EXPECT_FALSE(wrap->has_value());
}

}  // namespace
}  // namespace rsf::core
