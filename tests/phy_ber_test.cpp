#include "phy/ber_profile.hpp"

#include <gtest/gtest.h>

namespace rsf::phy {
namespace {

using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

TEST(BerProfile, ConstantIsConstant) {
  const BerProfile p = constant_ber(1e-9);
  EXPECT_DOUBLE_EQ(p(0_ns), 1e-9);
  EXPECT_DOUBLE_EQ(p(1_s), 1e-9);
}

TEST(BerProfile, RampEndpointsAndMonotonicity) {
  const BerProfile p = ramp_ber(1e-12, 1e-6, 1_ms, 2_ms);
  EXPECT_DOUBLE_EQ(p(0_ns), 1e-12);
  EXPECT_DOUBLE_EQ(p(1_ms), 1e-12);
  EXPECT_DOUBLE_EQ(p(2_ms), 1e-6);
  EXPECT_DOUBLE_EQ(p(3_ms), 1e-6);
  double prev = 0;
  for (int i = 0; i <= 10; ++i) {
    const double v = p(1_ms + SimTime::microseconds(i * 100.0));
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Log-linear: midpoint is the geometric mean.
  EXPECT_NEAR(p(SimTime::microseconds(1500)), 1e-9, 1e-10);
}

TEST(BerProfile, RampRejectsBadArgs) {
  EXPECT_THROW(ramp_ber(0.0, 1e-6, 0_ns, 1_ms), std::invalid_argument);
  EXPECT_THROW(ramp_ber(1e-9, 1e-6, 1_ms, 1_ms), std::invalid_argument);
}

TEST(BerProfile, SpikeWindow) {
  const BerProfile p = spike_ber(1e-12, 1e-4, 10_us, 20_us);
  EXPECT_DOUBLE_EQ(p(5_us), 1e-12);
  EXPECT_DOUBLE_EQ(p(10_us), 1e-4);
  EXPECT_DOUBLE_EQ(p(19_us), 1e-4);
  EXPECT_DOUBLE_EQ(p(20_us), 1e-12);
}

TEST(BerDriver, AppliesProfileOverTime) {
  Simulator sim;
  PhysicalPlant plant;
  const CableId cable =
      plant.add_cable(0, 1, 2.0, Medium::kFiber, 2, DataRate::gbps(25));
  BerDriver driver(&sim, &plant, cable, ramp_ber(1e-12, 1e-6, 0_ns, 100_us), 10_us);
  driver.start();
  sim.run_until(50_us);
  const double mid = plant.cable(cable).lane(0).pre_fec_ber();
  EXPECT_GT(mid, 1e-12);
  EXPECT_LT(mid, 1e-6);
  sim.run_until(100_us);
  driver.stop();
  const std::size_t events_after_stop = sim.pending();
  EXPECT_EQ(events_after_stop, 0u);
  EXPECT_NEAR(plant.cable(cable).lane(0).pre_fec_ber(), 1e-6, 1e-7);
  EXPECT_DOUBLE_EQ(plant.cable(cable).lane(0).pre_fec_ber(),
                   plant.cable(cable).lane(1).pre_fec_ber());
}

TEST(BerDriver, StartIsIdempotent) {
  Simulator sim;
  PhysicalPlant plant;
  const CableId cable = plant.add_cable(0, 1, 2.0, Medium::kFiber, 1, DataRate::gbps(25));
  BerDriver driver(&sim, &plant, cable, constant_ber(1e-9), 10_us);
  driver.start();
  driver.start();
  EXPECT_LE(sim.pending(), 1u);
  driver.stop();
}

TEST(BerDriver, ValidatesArguments) {
  Simulator sim;
  PhysicalPlant plant;
  const CableId cable = plant.add_cable(0, 1, 2.0, Medium::kFiber, 1, DataRate::gbps(25));
  EXPECT_THROW(BerDriver(nullptr, &plant, cable, constant_ber(1e-9), 1_us),
               std::invalid_argument);
  EXPECT_THROW(BerDriver(&sim, &plant, cable, BerProfile{}, 1_us), std::invalid_argument);
  EXPECT_THROW(BerDriver(&sim, &plant, cable, constant_ber(1e-9), 0_ns),
               std::invalid_argument);
}

}  // namespace
}  // namespace rsf::phy
