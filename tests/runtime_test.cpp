// FabricRuntime facade: config-driven wiring must be byte-identical to
// the hand-wired stack it replaced (builder parity for a fixed seed),
// and the runtime's registry must expose every component's metrics.
#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "fabric/builders.hpp"
#include "runtime/runtime.hpp"
#include "workload/generator.hpp"

namespace rsf {
namespace {

using phy::DataSize;
using rsf::sim::SimTime;
using runtime::FabricRuntime;
using runtime::RackShape;
using runtime::RuntimeConfig;
using namespace rsf::sim::literals;

/// Fingerprint of a fixed-seed uniform workload run: event count,
/// completed flows, and the flow-completion/packet-latency moments.
using Fingerprint = std::tuple<std::uint64_t, std::uint64_t, double, double>;

workload::GeneratorConfig workload_config() {
  workload::GeneratorConfig cfg;
  cfg.seed = 42;
  cfg.mean_interarrival = 80_us;
  cfg.horizon = 3_ms;
  cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(16));
  return cfg;
}

Fingerprint fingerprint(rsf::sim::Simulator& sim, fabric::Network& net,
                        workload::FlowGenerator& gen) {
  gen.start();
  sim.run_until();
  return {sim.executed(), net.flows_completed(), net.flow_completion().mean(),
          net.packet_latency().mean()};
}

Fingerprint run_runtime(RackShape shape, int w, int h, int nodes = 0) {
  RuntimeConfig cfg;
  cfg.shape = shape;
  cfg.rack.width = w;
  cfg.rack.height = h;
  cfg.nodes = nodes;
  cfg.enable_crc = false;
  FabricRuntime rt(cfg);
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(rt.node_count()),
                               workload_config());
  return fingerprint(rt.sim(), rt.network(), gen);
}

Fingerprint run_hand_wired(RackShape shape, int w, int h, int nodes = 0) {
  rsf::sim::Simulator sim;
  fabric::RackParams p;
  p.width = w;
  p.height = h;
  fabric::Rack rack = shape == RackShape::kGrid    ? fabric::build_grid(&sim, p)
                      : shape == RackShape::kTorus ? fabric::build_torus(&sim, p)
                      : shape == RackShape::kRing  ? fabric::build_ring(&sim, nodes, p)
                                                   : fabric::build_chain(&sim, nodes, p);
  workload::FlowGenerator gen(&sim, rack.network.get(),
                              workload::TrafficMatrix::uniform(rack.topology->node_count()),
                              workload_config());
  return fingerprint(sim, *rack.network, gen);
}

TEST(FabricRuntime, GridParityWithHandWiring) {
  EXPECT_EQ(run_runtime(RackShape::kGrid, 4, 4), run_hand_wired(RackShape::kGrid, 4, 4));
}

TEST(FabricRuntime, TorusParityWithHandWiring) {
  EXPECT_EQ(run_runtime(RackShape::kTorus, 4, 4), run_hand_wired(RackShape::kTorus, 4, 4));
}

TEST(FabricRuntime, RingParityWithHandWiring) {
  EXPECT_EQ(run_runtime(RackShape::kRing, 4, 4, /*nodes=*/8),
            run_hand_wired(RackShape::kRing, 4, 4, /*nodes=*/8));
}

TEST(FabricRuntime, RuntimeRunsAreDeterministic) {
  EXPECT_EQ(run_runtime(RackShape::kGrid, 4, 4), run_runtime(RackShape::kGrid, 4, 4));
}

TEST(FabricRuntime, ControllerLifecycle) {
  RuntimeConfig cfg;
  cfg.rack.width = 3;
  cfg.rack.height = 3;
  FabricRuntime rt(cfg);
  ASSERT_TRUE(rt.has_controller());
  rt.start();
  EXPECT_TRUE(rt.controller().running());
  rt.run_until(1_ms);
  rt.stop();
  EXPECT_FALSE(rt.controller().running());
  rt.run_until();
  EXPECT_GT(rt.controller().epochs_completed(), 0u);
}

TEST(FabricRuntime, ControllerAccessThrowsWhenDisabled) {
  RuntimeConfig cfg;
  cfg.rack.width = 3;
  cfg.rack.height = 3;
  cfg.enable_crc = false;
  FabricRuntime rt(cfg);
  EXPECT_FALSE(rt.has_controller());
  EXPECT_THROW(static_cast<void>(rt.controller()), std::logic_error);
}

TEST(FabricRuntime, RegistryExposesComponentMetrics) {
  RuntimeConfig cfg;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  FabricRuntime rt(cfg);
  rt.start();

  fabric::FlowSpec spec;
  spec.id = 1;
  spec.src = rt.node_at(0, 0);
  spec.dst = rt.node_at(3, 3);
  spec.size = DataSize::kilobytes(64);
  std::optional<fabric::FlowResult> result;
  rt.network().start_flow(spec, [&](const fabric::FlowResult& r) { result = r; });
  rt.run_until(2_ms);
  rt.stop();
  rt.run_until();
  ASSERT_TRUE(result && !result->failed);

  // The network's instruments ARE the registry's: same objects.
  const auto* pkt = rt.metrics().find_histogram("net.packet_latency");
  ASSERT_NE(pkt, nullptr);
  EXPECT_EQ(pkt, &rt.network().packet_latency());
  EXPECT_GT(pkt->count(), 0u);

  // Controller metrics land in the same registry ("crc.*").
  const auto* power = rt.metrics().find_series("crc.rack_power_w");
  ASSERT_NE(power, nullptr);
  EXPECT_EQ(power, &rt.controller().power_series());
  EXPECT_FALSE(power->empty());

  const auto* net_counters = rt.metrics().find_counters("net");
  ASSERT_NE(net_counters, nullptr);
  EXPECT_GT(net_counters->get("net.packets_delivered"), 0u);

  // Unknown names stay absent (find does not create).
  EXPECT_EQ(rt.metrics().find_histogram("no.such.metric"), nullptr);

  // The unified dump carries every instrument registered above.
  const telemetry::Table table = rt.metrics_table();
  EXPECT_GE(table.num_rows(), rt.metrics().size());
}

TEST(FabricRuntime, StandaloneNetworkStillOwnsPrivateMetrics) {
  // Unit-test construction without a registry keeps working: the
  // network owns a private registry and its accessors stay live.
  rsf::sim::Simulator sim;
  fabric::RackParams p;
  p.width = 3;
  p.height = 3;
  fabric::Rack rack = fabric::build_grid(&sim, p);
  std::optional<SimTime> latency;
  rack.network->send_probe(0, 1, DataSize::bytes(1024),
                           [&](SimTime lat, int, bool ok) {
                             if (ok) latency = lat;
                           });
  sim.run_until();
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(rack.network->packet_latency().count(), 0u);
  EXPECT_GT(rack.network->counters().get("net.probes"), 0u);
}

}  // namespace
}  // namespace rsf
