#include <gtest/gtest.h>

#include "phy/medium.hpp"
#include "phy/units.hpp"

namespace rsf::phy {
namespace {

using rsf::sim::SimTime;
using namespace rsf::sim::literals;

TEST(DataSize, Factories) {
  EXPECT_EQ(DataSize::bits(8).bit_count(), 8);
  EXPECT_EQ(DataSize::bytes(1).bit_count(), 8);
  EXPECT_EQ(DataSize::kilobytes(1).bit_count(), 8000);
  EXPECT_EQ(DataSize::megabytes(1).bit_count(), 8'000'000);
  EXPECT_EQ(DataSize::gigabytes(1).bit_count(), 8'000'000'000);
  EXPECT_EQ(DataSize::zero().bit_count(), 0);
}

TEST(DataSize, ByteCount) {
  EXPECT_DOUBLE_EQ(DataSize::bytes(1500).byte_count(), 1500.0);
  EXPECT_DOUBLE_EQ(DataSize::bits(4).byte_count(), 0.5);
}

TEST(DataSize, Arithmetic) {
  EXPECT_EQ(DataSize::bytes(1) + DataSize::bytes(2), DataSize::bytes(3));
  EXPECT_EQ(DataSize::bytes(5) - DataSize::bytes(2), DataSize::bytes(3));
  EXPECT_EQ(DataSize::bytes(2) * 3, DataSize::bytes(6));
  DataSize s = DataSize::bytes(1);
  s += DataSize::bytes(1);
  EXPECT_EQ(s, DataSize::bytes(2));
}

TEST(DataSize, Comparisons) {
  EXPECT_LT(DataSize::bytes(1), DataSize::bytes(2));
  EXPECT_GE(DataSize::kilobytes(1), DataSize::bytes(1000));
}

TEST(DataSize, ToString) {
  EXPECT_EQ(DataSize::bytes(64).to_string(), "64B");
  EXPECT_EQ(DataSize::kilobytes(1.5).to_string(), "1.50KB");
  EXPECT_EQ(DataSize::megabytes(2).to_string(), "2.00MB");
  EXPECT_EQ(DataSize::gigabytes(3).to_string(), "3.00GB");
}

TEST(DataRate, Factories) {
  EXPECT_DOUBLE_EQ(DataRate::gbps(25).bits_per_second(), 25e9);
  EXPECT_DOUBLE_EQ(DataRate::mbps(100).bits_per_second(), 1e8);
  EXPECT_DOUBLE_EQ(DataRate::gbps(100).gbps_value(), 100.0);
  EXPECT_TRUE(DataRate::zero().is_zero());
}

TEST(DataRate, Arithmetic) {
  EXPECT_EQ(DataRate::gbps(25) + DataRate::gbps(25), DataRate::gbps(50));
  EXPECT_EQ(DataRate::gbps(50) - DataRate::gbps(20), DataRate::gbps(30));
  EXPECT_EQ(DataRate::gbps(25) * 4.0, DataRate::gbps(100));
  EXPECT_DOUBLE_EQ(DataRate::gbps(50) / DataRate::gbps(25), 2.0);
}

TEST(DataRate, ToString) {
  EXPECT_EQ(DataRate::gbps(25).to_string(), "25.00Gbps");
  EXPECT_EQ(DataRate::mbps(10).to_string(), "10.00Mbps");
}

TEST(TransmissionTime, CanonicalValues) {
  // 1500B at 100G: 12000 bits / 1e11 bps = 120 ns.
  EXPECT_EQ(transmission_time(DataSize::bytes(1500), DataRate::gbps(100)), 120_ns);
  // 64B at 25G: 512 / 25e9 = 20.48 ns.
  EXPECT_EQ(transmission_time(DataSize::bytes(64), DataRate::gbps(25)),
            SimTime::picoseconds(20480));
}

TEST(TransmissionTime, Degenerates) {
  EXPECT_EQ(transmission_time(DataSize::zero(), DataRate::gbps(1)), SimTime::zero());
  EXPECT_EQ(transmission_time(DataSize::bytes(1), DataRate::zero()), SimTime::infinity());
}

TEST(TransmissionTime, ScalesLinearlyWithSize) {
  const auto t1 = transmission_time(DataSize::bytes(1000), DataRate::gbps(10));
  const auto t2 = transmission_time(DataSize::bytes(2000), DataRate::gbps(10));
  EXPECT_EQ(t2.ps(), 2 * t1.ps());
}

TEST(Medium, PropagationPerMeter) {
  EXPECT_EQ(propagation_per_meter(Medium::kFiber), 5_ns);
  EXPECT_EQ(propagation_per_meter(Medium::kCopper), SimTime::picoseconds(4300));
  EXPECT_LT(propagation_per_meter(Medium::kFreeSpaceOptic),
            propagation_per_meter(Medium::kCopper));
}

TEST(Medium, PropagationScalesWithDistance) {
  EXPECT_EQ(propagation_delay(Medium::kFiber, 2.0), 10_ns);
  // The paper's point: 40 m of fibre is only 200 ns.
  EXPECT_EQ(propagation_delay(Medium::kFiber, 40.0), 200_ns);
}

TEST(Medium, Names) {
  EXPECT_EQ(to_string(Medium::kFiber), "fiber");
  EXPECT_EQ(to_string(Medium::kCopper), "copper");
  EXPECT_EQ(to_string(Medium::kFreeSpaceOptic), "free-space");
}

}  // namespace
}  // namespace rsf::phy
