// Interconnect: the packet-switched spine layer. Routing edge cases
// (partitions, tie-breaking, self-routes), the version-stamped route
// cache (set_link_up flaps and repricing must invalidate; hits must
// equal a fresh search), per-packet FIFO serialization and loss
// accounting.
#include "fabric/interconnect.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"

namespace rsf::fabric {
namespace {

using phy::DataSize;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct SpineFixture : ::testing::Test {
  Simulator sim;
  telemetry::Registry registry;
  Interconnect spine{&sim, &registry};

  SpineLinkId add(std::uint32_t a, std::uint32_t b, double cost = 1.0,
                  double loss = 0.0) {
    SpineLinkParams p;
    p.a = {a, 0};
    p.b = {b, 0};
    p.cost = cost;
    p.loss_prob = loss;
    return spine.add_link(p);
  }

  std::uint64_t hits() { return spine.counters().get("spine.route_cache_hits"); }
  std::uint64_t misses() { return spine.counters().get("spine.route_cache_misses"); }
};

TEST_F(SpineFixture, SelfRackRouteIsEmpty) {
  add(0, 1);
  const auto r = spine.route(0, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
  // Self-routes to racks the spine has never seen behave the same.
  EXPECT_TRUE(spine.route(5, 5).has_value());
}

TEST_F(SpineFixture, PartitionedGraphReturnsNoRouteNotAHang) {
  // Two islands: {0, 1} and {2, 3}. Queries across return nullopt and
  // the simulation stays idle — nothing was scheduled.
  add(0, 1);
  add(2, 3);
  EXPECT_FALSE(spine.route(0, 2).has_value());
  EXPECT_FALSE(spine.route(1, 3).has_value());
  EXPECT_FALSE(spine.route(0, 7).has_value());  // rack id off the map
  EXPECT_TRUE(spine.route(2, 3).has_value());
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run_until(), 0u);
}

TEST_F(SpineFixture, TieBreakPrefersLowestLinkId) {
  // Two parallel 0-1 links: the lower id wins deterministically.
  const SpineLinkId first = add(0, 1);
  add(0, 1);
  auto r = spine.route(0, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, std::vector<SpineLinkId>{first});

  // Diamond 0-1-3 vs 0-2-3, all unit cost: the expansion through the
  // lowest-id first edge (and lowest-id intermediate rack) wins.
  add(0, 2);   // id 2
  add(1, 3);   // id 3
  add(2, 3);   // id 4
  r = spine.route(0, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (std::vector<SpineLinkId>{0, 3}));
}

TEST_F(SpineFixture, RoutingIsCostAware) {
  // Direct 0-2 at cost 10 vs the two-hop 0-1-2 at cost 2.
  const SpineLinkId direct = add(0, 2, /*cost=*/10.0);
  const SpineLinkId leg01 = add(0, 1);
  const SpineLinkId leg12 = add(1, 2);
  auto r = spine.route(0, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (std::vector<SpineLinkId>{leg01, leg12}));

  // Repricing the direct link below the detour flips the decision.
  spine.set_link_cost(direct, 1.0);
  r = spine.route(0, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, std::vector<SpineLinkId>{direct});

  // Equal cost: fewer hops win.
  spine.set_link_cost(direct, 2.0);
  r = spine.route(0, 2);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, std::vector<SpineLinkId>{direct});
}

TEST_F(SpineFixture, RouteCacheHitReturnsSameRouteAsFreshSearch) {
  add(0, 1);
  add(1, 2);
  add(0, 2, /*cost=*/5.0);
  const auto first = spine.route(0, 2);  // miss: populates
  const auto second = spine.route(0, 2);  // hit
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, spine.compute_route(0, 2));
  EXPECT_EQ(hits(), 1u);
  EXPECT_EQ(misses(), 1u);
  // Unreachable results are cached too.
  EXPECT_FALSE(spine.route(0, 9).has_value());
  EXPECT_FALSE(spine.route(0, 9).has_value());
  EXPECT_EQ(hits(), 2u);
  EXPECT_EQ(misses(), 2u);
}

TEST_F(SpineFixture, CacheInvalidatesOnLinkFlapsAndRepricing) {
  const SpineLinkId direct = add(0, 2);
  const SpineLinkId leg01 = add(0, 1);
  const SpineLinkId leg12 = add(1, 2);
  const std::uint64_t v0 = spine.version();

  ASSERT_EQ(*spine.route(0, 2), std::vector<SpineLinkId>{direct});
  // Down: the cached direct route must not survive the flap.
  spine.set_link_up(direct, false);
  EXPECT_GT(spine.version(), v0);
  ASSERT_EQ(*spine.route(0, 2), (std::vector<SpineLinkId>{leg01, leg12}));
  // Back up: the detour entry is invalidated in turn.
  spine.set_link_up(direct, true);
  ASSERT_EQ(*spine.route(0, 2), std::vector<SpineLinkId>{direct});

  // Controller-style repricing: each effective set_link_cost bumps the
  // version and the next query re-plans.
  const std::uint64_t v1 = spine.version();
  spine.set_link_cost(direct, 7.0);
  EXPECT_EQ(spine.version(), v1 + 1);
  ASSERT_EQ(*spine.route(0, 2), (std::vector<SpineLinkId>{leg01, leg12}));
  // A no-op repricing (same cost) must NOT thrash the cache.
  const std::uint64_t m = misses();
  spine.set_link_cost(direct, 7.0);
  EXPECT_EQ(spine.version(), v1 + 1);
  EXPECT_EQ(*spine.route(0, 2), (std::vector<SpineLinkId>{leg01, leg12}));
  EXPECT_EQ(misses(), m);  // served from cache
}

TEST_F(SpineFixture, SendPacketSerializesFifoPerDirection) {
  SpineLinkParams p;
  p.a = {0, 0};
  p.b = {1, 0};
  p.rate = phy::DataRate::gbps(8);  // 1024 B -> 1.024 us serialization
  p.latency = 2_us;
  const SpineLinkId id = spine.add_link(p);

  const DataSize size = DataSize::bytes(1024);
  std::vector<SimTime> arrivals;
  ASSERT_TRUE(spine.send_packet(id, 0, size, [&](SimTime t, bool ok) {
    EXPECT_TRUE(ok);
    arrivals.push_back(t);
  }));
  ASSERT_TRUE(spine.send_packet(id, 0, size, [&](SimTime t, bool ok) {
    EXPECT_TRUE(ok);
    arrivals.push_back(t);
  }));
  // The reverse direction has its own FIFO: no queueing behind a->b.
  std::optional<SimTime> reverse;
  ASSERT_TRUE(spine.send_packet(id, 1, size, [&](SimTime t, bool) { reverse = t; }));
  sim.run_until();

  const SimTime ser = phy::transmission_time(size, p.rate);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], ser + p.latency);
  EXPECT_EQ(arrivals[1], ser + ser + p.latency);  // queued behind the first
  ASSERT_TRUE(reverse.has_value());
  EXPECT_EQ(*reverse, ser + p.latency);
  EXPECT_EQ(spine.link_packets(id, 0), 2u);
  EXPECT_EQ(spine.link_packets(id, 1), 1u);
  EXPECT_EQ(spine.busy_time(id, 0), ser + ser);
  EXPECT_EQ(spine.queue_backlog(id, 0), SimTime::zero());  // all drained
}

TEST_F(SpineFixture, QueueBacklogTracksBookedSerialization) {
  SpineLinkParams p;
  p.a = {0, 0};
  p.b = {1, 0};
  p.rate = phy::DataRate::gbps(8);
  const SpineLinkId id = spine.add_link(p);
  const DataSize size = DataSize::bytes(1024);
  spine.send_packet(id, 0, size, nullptr);
  spine.send_packet(id, 0, size, nullptr);
  const SimTime ser = phy::transmission_time(size, p.rate);
  EXPECT_EQ(spine.queue_backlog(id, 0), ser + ser);
  EXPECT_EQ(spine.queue_backlog(id, 1), SimTime::zero());
}

TEST_F(SpineFixture, PacketLossIsSampledAndCounted) {
  const SpineLinkId id = add(0, 1, 1.0, /*loss=*/0.5);
  int delivered = 0;
  int lost = 0;
  for (int i = 0; i < 200; ++i) {
    spine.send_packet(id, 0, DataSize::bytes(256),
                      [&](SimTime, bool ok) { (ok ? delivered : lost)++; });
  }
  sim.run_until();
  EXPECT_EQ(delivered + lost, 200);
  EXPECT_GT(lost, 0);
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(spine.counters().get("spine.packet_drops"),
            static_cast<std::uint64_t>(lost));
  EXPECT_EQ(spine.link_drops(id, 0), static_cast<std::uint64_t>(lost));
  EXPECT_EQ(spine.counters().get("spine.packets"), 200u);
}

TEST_F(SpineFixture, DownLinkRefusesPacketsAndTransfers) {
  const SpineLinkId id = add(0, 1);
  spine.set_link_up(id, false);
  EXPECT_FALSE(spine.send_packet(id, 0, DataSize::bytes(64), nullptr));
  EXPECT_FALSE(spine.transfer(id, 0, DataSize::bytes(64), nullptr));
  EXPECT_EQ(spine.counters().get("spine.packets_refused"), 1u);
  EXPECT_EQ(spine.counters().get("spine.transfers_refused"), 1u);
  EXPECT_EQ(spine.counters().get("spine.packets"), 0u);
}

TEST_F(SpineFixture, RejectsBadLinkParams) {
  SpineLinkParams same_rack;
  same_rack.a = {0, 0};
  same_rack.b = {0, 1};
  EXPECT_THROW(spine.add_link(same_rack), std::invalid_argument);

  SpineLinkParams bad_cost;
  bad_cost.a = {0, 0};
  bad_cost.b = {1, 0};
  bad_cost.cost = 0.0;
  EXPECT_THROW(spine.add_link(bad_cost), std::invalid_argument);

  // loss_prob accepts the closed interval: 1.0 is a legal blackhole
  // link (routes normally, drops everything); only out-of-range
  // probabilities are rejected.
  SpineLinkParams bad_loss;
  bad_loss.a = {0, 0};
  bad_loss.b = {1, 0};
  bad_loss.loss_prob = 1.01;
  EXPECT_THROW(spine.add_link(bad_loss), std::invalid_argument);
  bad_loss.loss_prob = -0.01;
  EXPECT_THROW(spine.add_link(bad_loss), std::invalid_argument);

  const SpineLinkId id = add(0, 1);
  EXPECT_THROW(spine.set_link_cost(id, -1.0), std::invalid_argument);
  EXPECT_THROW(spine.set_link_cost(99, 1.0), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(spine.link_packets(id, 7)), std::invalid_argument);
}

}  // namespace
}  // namespace rsf::fabric
