// Spine slot schedules: the TDMA regime between the carve and the
// packet FIFO. Slot-boundary wait and full-rate ride semantics,
// all-or-nothing admission against third-party calendar overlap,
// lease renewal on every slotted send with inactivity self-expiry,
// failure-driven preemption with shared-path fallback for stale
// handles, recycled-slot staleness, the controller's promote /
// multipath-split / demote cycle over parallel legs, the
// reservation-vs-schedule mutual-exclusivity guard, and the
// slotted-scenario determinism anchor.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>

#include "fabric/interconnect.hpp"
#include "fabric/slot_calendar.hpp"
#include "runtime/fleet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "workload/slotted.hpp"

namespace rsf {
namespace {

using fabric::Interconnect;
using fabric::SlotCalendar;
using fabric::SpineLinkParams;
using fabric::SpineScheduleHandle;
using phy::DataSize;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using runtime::FleetConfig;
using runtime::FleetRuntime;
using runtime::RackShape;
using runtime::RackSpec;
using runtime::RuntimeConfig;
using runtime::SpineSpec;
using namespace rsf::sim::literals;

// ---------------------------------------------------------------------------
// Interconnect-level semantics.
// ---------------------------------------------------------------------------

struct SlottedFixture : ::testing::Test {
  Simulator sim;
  telemetry::Registry registry;
  Interconnect spine{&sim, &registry};

  fabric::SpineLinkId add(std::uint32_t a, std::uint32_t b, double gbps = 8.0) {
    SpineLinkParams p;
    p.a = {a, 0};
    p.b = {b, 0};
    p.rate = phy::DataRate::gbps(gbps);
    p.latency = SimTime::zero();  // keep the arithmetic bare
    return spine.add_link(p);
  }

  /// Send one packet and run to completion; returns the arrival time.
  SimTime send(fabric::SpineLinkId id, std::uint32_t from, std::int64_t bytes,
               SpineScheduleHandle sched = {}) {
    std::optional<SimTime> arrival;
    EXPECT_TRUE(spine.send_packet(id, from, DataSize::bytes(bytes), sched,
                                  [&](SimTime t, bool) { arrival = t; }));
    sim.run_until();
    EXPECT_TRUE(arrival.has_value());
    return arrival.value_or(SimTime::zero());
  }

  std::uint64_t count(const std::string& name) { return spine.counters().get(name); }
};

TEST_F(SlottedFixture, WaitsForOwnedSlotsAndRidesThemAtFullRate) {
  // 8 Gb/s, 1000-byte packet: 1 us at the full rate; slot duration is
  // the default 1 us, so one packet fills exactly one slot.
  const auto link = add(0, 1);
  const auto sched = spine.reserve_slots(0, 1, 4, 1);
  ASSERT_TRUE(sched.has_value());
  EXPECT_TRUE(spine.schedule_active(*sched));
  // A fresh calendar books the first contention-free offsets: the
  // pair owns offset 0 of every period — wall-clock [0, 1), [4, 5)...
  EXPECT_EQ(spine.schedule_mask(*sched), SlotCalendar::periodic_mask(4, 0));
  EXPECT_DOUBLE_EQ(spine.schedule_fraction(*sched), 0.25);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(link, 0), 0.25);
  ASSERT_EQ(spine.schedule_route(*sched).size(), 1u);
  EXPECT_EQ(spine.schedule_route(*sched)[0], link);

  // Sent inside an owned slot: serializes immediately at the FULL
  // link rate — 1 us — even though the pair owns only a quarter of
  // the calendar. A shared packet alongside it sees the 0.75
  // residual: the same bytes take 4/3 us.
  std::optional<SimTime> shared_arrival;
  spine.send_packet(link, 0, DataSize::bytes(1000),
                    [&](SimTime t, bool) { shared_arrival = t; });
  EXPECT_EQ(send(link, 0, 1000, *sched).ns(), 1000.0);
  ASSERT_TRUE(shared_arrival.has_value());
  EXPECT_EQ(shared_arrival->ps(), 1'333'333);
  EXPECT_EQ(count("spine.slotted_bytes"), 1000u);

  // The slotted lane is now busy until t = 1 us, the start of an
  // unowned slot: the next slotted packet waits for the pair's next
  // owned slot at 4 us and arrives at 5 us.
  EXPECT_EQ(send(link, 0, 1000, *sched).us(), 5.0);
  EXPECT_EQ(count("spine.slot_reservations"), 1u);
}

TEST_F(SlottedFixture, AdmissionIsAllOrNothingAcrossTheWholeRoute) {
  const auto l01 = add(0, 1);
  const auto l12 = add(1, 2);
  // Stagger the two lines' occupancy so their free offsets misalign:
  // l01 owns {0,1,2} via the neighbor pair, l12 owns {3,4,5} via a
  // booked-then-released shift of the far pair.
  const auto neighbor = spine.reserve_slots(0, 1, 8, 3);
  ASSERT_TRUE(neighbor.has_value());
  const auto far_first = spine.reserve_slots(1, 2, 8, 3);
  const auto far_second = spine.reserve_slots(1, 2, 8, 3);
  ASSERT_TRUE(far_first.has_value() && far_second.has_value());
  EXPECT_EQ(spine.schedule_mask(*far_second), SlotCalendar::periodic_mask(8, 3) |
                                                  SlotCalendar::periodic_mask(8, 4) |
                                                  SlotCalendar::periodic_mask(8, 5));
  spine.release_slots(*far_first);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(l01, 0), 0.375);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(l12, 1), 0.375);

  // Headroom refusal: a schedule may never starve a direction's
  // shared residual outright (duty 5 of 8 on a 0.375-slotted line).
  EXPECT_FALSE(spine.reserve_slots(0, 1, 8, 5).has_value());
  EXPECT_EQ(count("spine.slot_refusals"), 1u);

  // Contention refusal is judged across the WHOLE route at once:
  // each line has five free offsets, but only {6, 7} are free on
  // both, so the transit pair's duty-4 ask is refused outright and no
  // partial claim leaks onto either line.
  EXPECT_FALSE(spine.reserve_slots(0, 2, 8, 4).has_value());
  EXPECT_EQ(count("spine.slot_refusals"), 2u);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(l01, 0), 0.375);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(l12, 1), 0.375);
  EXPECT_EQ(spine.schedule_count(), 2u);

  // The duty that fits the shared free offsets is admitted on both
  // hops simultaneously.
  const auto transit = spine.reserve_slots(0, 2, 8, 2);
  ASSERT_TRUE(transit.has_value());
  EXPECT_EQ(spine.schedule_mask(*transit), SlotCalendar::periodic_mask(8, 6) |
                                               SlotCalendar::periodic_mask(8, 7));
  ASSERT_EQ(spine.schedule_route(*transit).size(), 2u);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(l01, 0), 0.625);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(l12, 1), 0.625);

  // Shape validation mirrors the calendar's contract.
  EXPECT_THROW(static_cast<void>(spine.reserve_slots(0, 1, 3, 1)),
               std::invalid_argument);  // period must divide the frame
  EXPECT_THROW(static_cast<void>(spine.reserve_slots(0, 1, 8, 9)),
               std::invalid_argument);  // duty > period
  // Unroutable pairs are refusals, not errors.
  EXPECT_FALSE(spine.reserve_slots(0, 7, 4, 1).has_value());
}

TEST_F(SlottedFixture, SendsRenewTheLeaseAndInactivityExpiresIt) {
  spine.set_slot_timeout(10_us);
  const auto link = add(0, 1);
  const auto sched = spine.reserve_slots(0, 1, 4, 2);
  ASSERT_TRUE(sched.has_value());
  const std::uint64_t booked_version = spine.schedule_version();

  // A send every 6 us keeps the schedule alive well past 3x the
  // 10 us inactivity window: every slotted send renews the lease.
  for (const auto t : {0_us, 6_us, 12_us, 18_us, 24_us, 30_us}) {
    sim.schedule_at(t, [this, link, sched] {
      spine.send_packet(link, 0, DataSize::bytes(500), *sched,
                        [](SimTime, bool) {});
    });
  }
  // Sentinel keeps the simulator alive past the (weak) expiry event.
  sim.schedule_at(60_us, [] {});
  sim.run_until(35_us);
  EXPECT_TRUE(spine.schedule_active(*sched));
  EXPECT_EQ(count("spine.slot_expirations"), 0u);

  // Then the pair goes quiet: 10 us after the last send the schedule
  // self-expires — slots and residual return, the handle goes stale,
  // and the version bumps so transports drop it without a lookup.
  sim.run_until();
  EXPECT_FALSE(spine.schedule_active(*sched));
  EXPECT_EQ(count("spine.slot_expirations"), 1u);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(link, 0), 0.0);
  EXPECT_EQ(spine.schedule_count(), 0u);
  EXPECT_GT(spine.schedule_version(), booked_version);
}

TEST_F(SlottedFixture, LinkFailurePreemptsAndStaleHandlesFallBackShared) {
  add(0, 1);
  const auto l12 = add(1, 2);
  const auto sched = spine.reserve_slots(0, 2, 4, 2);
  ASSERT_TRUE(sched.has_value());
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(0, 0), 0.5);

  // A failed link on the route preempts the whole schedule: capacity
  // returns on the surviving hop too, and the preemption is counted.
  spine.set_link_up(l12, false);
  EXPECT_FALSE(spine.schedule_active(*sched));
  EXPECT_EQ(count("spine.slot_preemptions"), 1u);
  EXPECT_DOUBLE_EQ(spine.slotted_fraction(0, 0), 0.0);

  // Traffic still holding the stale handle rides the shared FIFO of
  // the surviving link at the full rate instead of erroring.
  EXPECT_EQ(send(0, 0, 1000, *sched).ns(), 1000.0);
  EXPECT_EQ(count("spine.slotted_bytes"), 0u);

  // Releasing a stale handle is an idempotent no-op.
  spine.release_slots(*sched);
  EXPECT_EQ(count("spine.slot_releases"), 0u);
}

TEST_F(SlottedFixture, RecycledScheduleSlotsStaleifyOldHandles) {
  add(0, 1);
  const auto first = spine.reserve_slots(0, 1, 4, 1);
  ASSERT_TRUE(first.has_value());
  spine.release_slots(*first);
  EXPECT_EQ(count("spine.slot_releases"), 1u);
  // The next booking reuses the slot with a bumped generation: the
  // old handle stays stale and its accessors throw.
  const auto second = spine.reserve_slots(1, 0, 4, 1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, first->id);
  EXPECT_NE(second->generation, first->generation);
  EXPECT_FALSE(spine.schedule_active(*first));
  EXPECT_TRUE(spine.schedule_active(*second));
  EXPECT_THROW(static_cast<void>(spine.schedule_route(*first)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(spine.schedule_mask(*first)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fleet-level: the controller's schedule policy.
// ---------------------------------------------------------------------------

RuntimeConfig rack_config() {
  RuntimeConfig cfg;
  cfg.shape = RackShape::kGrid;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  cfg.enable_crc = false;
  return cfg;
}

/// Two racks over two parallel spine links; the controller runs the
/// schedule policy with fast hysteresis and multipath splitting.
FleetConfig schedule_fleet(bool schedules) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{rack_config(), 0});
  fc.racks.push_back(RackSpec{rack_config(), 0});
  for (int i = 0; i < 2; ++i) {
    SpineSpec s;
    s.rack_a = 0;
    s.rack_b = 1;
    s.rate = phy::DataRate::gbps(10);
    fc.spine.push_back(s);
  }
  fc.enable_controller = true;
  fc.controller.epoch = 20_us;
  fc.controller.schedules.enable = schedules;
  fc.controller.schedules.period = 4;
  fc.controller.schedules.duty = 2;
  fc.controller.schedules.hot_bytes_per_epoch = 8 * 1024;
  fc.controller.schedules.idle_bytes_per_epoch = 1024;
  fc.controller.schedules.promote_after = 2;
  fc.controller.schedules.demote_after = 3;
  fc.controller.schedules.multipath = true;
  return fc;
}

TEST(FleetSchedulePolicy, PromotesHotPairsSplitsLegsAndDemotesIdleOnes) {
  FleetRuntime fleet(schedule_fleet(true));
  // Keep the fabric's own inactivity expiry out of the way: this test
  // pins the demotion on the controller's idle hysteresis.
  fleet.spine().set_slot_timeout(100'000_us);
  std::optional<runtime::FleetFlowResult> result;
  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 0, 0);
  spec.size = DataSize::megabytes(1);  // many epochs hot on 2 x 10G
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.start();
  fleet.run_until();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->failed);
  // The pair went hot, was promoted once, and its duty was split into
  // two schedules across the parallel legs; packets rode the slots on
  // both links.
  EXPECT_EQ(fleet.controller().promotions(), 1u);
  EXPECT_EQ(fleet.controller().counters().get("fleet.schedule_splits"), 1u);
  EXPECT_EQ(fleet.spine().find_schedules(0, 1).size(), 2u);
  EXPECT_GT(fleet.spine().counters().get("spine.slotted_bytes"), 0u);
  EXPECT_GT(fleet.spine().link_packets(0, 0), 0u);
  EXPECT_GT(fleet.spine().link_packets(1, 0), 0u);
  // Hysteresis: demote_after consecutive idle epochs return every leg.
  EXPECT_EQ(fleet.controller().demotions(), 0u);
  fleet.run_until(fleet.now() + 200_us);
  EXPECT_EQ(fleet.controller().demotions(), 1u);
  EXPECT_TRUE(fleet.spine().find_schedules(0, 1).empty());
  EXPECT_EQ(fleet.spine().schedule_count(), 0u);
  EXPECT_EQ(fleet.spine().counters().get("spine.slot_releases"), 2u);
  fleet.stop();
}

TEST(FleetSchedulePolicy, PolicyOffNeverTouchesTheCalendar) {
  FleetRuntime fleet(schedule_fleet(false));
  std::optional<runtime::FleetFlowResult> result;
  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 0, 0);
  spec.size = DataSize::megabytes(1);
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.start();
  fleet.run_until();
  fleet.stop();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(fleet.controller().promotions(), 0u);
  EXPECT_EQ(fleet.spine().schedule_count(), 0u);
  EXPECT_EQ(fleet.spine().schedule_version(), 0u);
  EXPECT_EQ(fleet.spine().counters().get("spine.slotted_bytes"), 0u);
}

TEST(FleetSchedulePolicy, ReservationAndSchedulePoliciesAreMutuallyExclusive) {
  // A pair holding both a carve and a slot schedule would
  // double-subtract from the shared residual: the controller refuses
  // the configuration outright.
  FleetConfig fc = schedule_fleet(true);
  fc.controller.reservations.enable = true;
  EXPECT_THROW(FleetRuntime bad(fc), std::invalid_argument);
  fc.controller.reservations.enable = false;
  fc.controller.schedules.period = 3;  // does not divide the frame
  EXPECT_THROW(FleetRuntime bad(fc), std::invalid_argument);
  fc.controller.schedules.period = 4;
  fc.controller.schedules.duty = 5;  // duty > period
  EXPECT_THROW(FleetRuntime bad(fc), std::invalid_argument);
  fc.controller.schedules.duty = 2;
  fc.controller.schedules.promote_after = 0;
  EXPECT_THROW(FleetRuntime bad(fc), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scenario determinism anchor (the heavy seed sweep lives in the
// property suite).
// ---------------------------------------------------------------------------

TEST(SlottedFleetScenario, SameSeedRunsAreByteIdenticalInEveryArm) {
  for (const auto arm : {workload::SlottedArm::kSkew, workload::SlottedArm::kChurn,
                         workload::SlottedArm::kFlap}) {
    workload::SlottedScenarioConfig cfg;
    cfg.arm = arm;
    cfg.regime = workload::SlottedRegime::kSlotted;
    cfg.loss_prob = 0.005;  // exercise the spine RNG too
    cfg.hot_bytes = DataSize::kilobytes(48);
    workload::SlottedFleetScenario a(cfg);
    const auto ra = a.run();
    workload::SlottedFleetScenario b(cfg);
    const auto rb = b.run();
    EXPECT_EQ(ra.hot.job_completion.ps(), rb.hot.job_completion.ps());
    EXPECT_EQ(ra.background.job_completion.ps(), rb.background.job_completion.ps());
    EXPECT_EQ(ra.promotions, rb.promotions);
    EXPECT_EQ(ra.slot_reservations, rb.slot_reservations);
    EXPECT_EQ(ra.slotted_bytes, rb.slotted_bytes);
    EXPECT_EQ(a.fleet().metrics_table().to_string(),
              b.fleet().metrics_table().to_string());
    // The slotted regime actually engaged.
    EXPECT_GT(ra.slot_reservations, 0u);
    EXPECT_GT(ra.slotted_bytes, 0u);
  }
}

}  // namespace
}  // namespace rsf
