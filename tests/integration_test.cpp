// End-to-end scenarios across all modules: the paper's Figure 2 move
// under live traffic, adaptive vs static comparisons, and circuit
// reservation semantics.
#include <gtest/gtest.h>

#include <optional>

#include "core/controller.hpp"
#include "fabric/builders.hpp"
#include "phy/ber_profile.hpp"
#include "workload/generator.hpp"
#include "workload/mapreduce.hpp"

namespace rsf {
namespace {

using fabric::Rack;
using fabric::RackParams;
using phy::DataSize;
using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

core::CrcController make_crc(Simulator& sim, Rack& rack, core::CrcConfig cfg = {}) {
  return core::CrcController(&sim, rack.plant.get(), rack.engine.get(),
                             rack.topology.get(), rack.router.get(), rack.network.get(),
                             cfg);
}

TEST(Integration, Figure2GridToTorusUnderLiveTraffic) {
  Simulator sim;
  RackParams p;
  p.width = 6;
  p.height = 6;
  Rack rack = fabric::build_grid(&sim, p);
  core::CrcController crc = make_crc(sim, rack);
  crc.start();

  // Live background traffic across the conversion.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 100_us;
  gen_cfg.horizon = 10_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(32));
  workload::FlowGenerator gen(&sim, rack.network.get(),
                              workload::TrafficMatrix::uniform(36), gen_cfg);
  gen.start();

  const int hops_before =
      rack.router->hop_count(rack.node_at(0, 0), rack.node_at(5, 5));
  EXPECT_EQ(hops_before, 10);

  std::optional<core::TopologyPlanner::Report> report;
  sim.schedule_at(1_ms, [&] {
    crc.request_grid_to_torus(
        [&](const core::TopologyPlanner::Report& r) { report = r; });
  });
  sim.run_until();
  crc.stop();
  sim.run_until();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->failures, 0);
  EXPECT_EQ(report->wrap_links.size(), 12u);
  // Hop count between far corners roughly halves (paper Figure 2's
  // point: torus halves worst-case distance within the lane budget).
  const int hops_after = rack.router->hop_count(rack.node_at(0, 0), rack.node_at(5, 5));
  EXPECT_LE(hops_after, hops_before / 2 + 1);
  // No traffic was lost for good: every generated flow completed.
  EXPECT_EQ(rack.network->flows_failed(), 0u);
  EXPECT_EQ(gen.results().size(), gen.flows_generated());
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST(Integration, TorusConversionPreservesLanePowerBudget) {
  // Figure 2: "torus topology running at one lane per link" — the
  // conversion must not light additional lanes.
  Simulator sim;
  RackParams p;
  p.width = 4;
  p.height = 4;
  Rack rack = fabric::build_grid(&sim, p);
  const double power_before = rack.plant->total_power_watts();

  core::CrcController crc = make_crc(sim, rack);
  std::optional<core::TopologyPlanner::Report> report;
  crc.request_grid_to_torus([&](const core::TopologyPlanner::Report& r) { report = r; });
  sim.run_until();
  ASSERT_TRUE(report && report->failures == 0);

  // Same lanes up, plus only the bypass elements.
  const double power_after = rack.plant->total_power_watts();
  const double bypass_w =
      rack.plant->config().bypass_power_w * rack.plant->total_bypass_joints();
  EXPECT_NEAR(power_after, power_before + bypass_w, 1e-6);
  // Fewer logical links than a native torus would need ports for:
  // switching-port count drops (that is the power win of PLP #2).
  EXPECT_GT(rack.plant->total_bypass_joints(), 0);
}

TEST(Integration, LatencyBoundMapReduceFasterOnTorus) {
  // The torus conversion reorganises capacity (same lanes, shorter
  // paths); it cannot add bandwidth. A *latency-bound* shuffle (small
  // transfers, completion dominated by hop count) therefore speeds up,
  // while a bandwidth-bound one roughly ties — EXT1 shows both.
  const auto run_shuffle = [](bool convert) {
    Simulator sim;
    RackParams p;
    p.width = 6;
    p.height = 6;
    Rack rack = fabric::build_grid(&sim, p);
    // The paper's architecture keeps the CRC loop running: congestion
    // prices spread the shuffle across the torus's path diversity
    // (without them, deterministic single-path routing would hotspot
    // the one-lane links and squander the conversion).
    core::CrcConfig crc_cfg;
    crc_cfg.epoch = 50_us;
    core::CrcController crc = make_crc(sim, rack, crc_cfg);
    crc.start();
    if (convert) {
      bool done = false;
      crc.request_grid_to_torus([&](const core::TopologyPlanner::Report&) { done = true; });
      sim.run_until(sim.now() + 10_ms);
      EXPECT_TRUE(done);
    }
    workload::ShuffleConfig cfg;
    // Mappers on the top row, reducers on the bottom row: max-distance
    // traffic, the case wraparounds help most.
    for (int x = 0; x < 6; ++x) {
      cfg.mappers.push_back(rack.node_at(x, 0));
      cfg.reducers.push_back(rack.node_at(x, 5));
    }
    cfg.bytes_per_pair = DataSize::kilobytes(4);
    workload::ShuffleJob job(&sim, rack.network.get(), cfg);
    std::optional<workload::ShuffleResult> result;
    job.run([&](const workload::ShuffleResult& r) { result = r; });
    sim.run_until();
    crc.stop();
    EXPECT_TRUE(result.has_value());
    EXPECT_EQ(result->failed, 0u);
    // The torus run must also show the halved path lengths.
    if (convert) {
      EXPECT_LT(rack.network->hop_counts().mean(), 5.0);
    }
    return result->job_completion;
  };
  const SimTime grid = run_shuffle(false);
  const SimTime torus = run_shuffle(true);
  EXPECT_LT(torus, grid);
}

TEST(Integration, ReservedCircuitInvisibleToOtherTraffic) {
  Simulator sim;
  RackParams p;
  p.width = 5;
  p.height = 1;
  Rack rack = fabric::build_grid(&sim, p);

  // Hand-build a circuit 0 -> 4 and reserve it for flow 42.
  std::vector<LinkId> spares;
  std::vector<LinkId> path;
  for (int x = 0; x + 1 < 5; ++x) {
    path.push_back(*rack.topology->link_between(static_cast<phy::NodeId>(x),
                                                static_cast<phy::NodeId>(x + 1)));
  }
  core::split_many(rack.engine.get(), path, 1, [&](auto outs) {
    for (auto& o : outs) spares.push_back(o->spare);
  });
  sim.run_until();
  std::optional<LinkId> circuit;
  core::chain_bypass(rack.engine.get(), spares,
                     [&](std::optional<LinkId> l) { circuit = l; });
  sim.run_until();
  ASSERT_TRUE(circuit.has_value());
  rack.plant->set_reservation(*circuit, 42);

  // Public routing 0 -> 4 must not use the reserved direct link.
  const auto public_path = rack.router->path(0, 4);
  EXPECT_EQ(public_path.size(), 4u);
  for (LinkId id : public_path) EXPECT_NE(id, *circuit);

  // The owning flow crosses in one hop.
  fabric::FlowSpec spec;
  spec.id = 42;
  spec.src = 0;
  spec.dst = 4;
  spec.size = DataSize::kilobytes(64);
  std::optional<fabric::FlowResult> result;
  rack.network->start_flow(spec, [&](const fabric::FlowResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result && !result->failed);
  // All its packets took the 1-hop circuit.
  EXPECT_EQ(rack.network->link_packets(*circuit), result->packets);
}

TEST(Integration, AdaptiveFecKeepsGoodputUnderDegradation) {
  // BER ramp on every cable; adaptive CRC vs a static no-FEC fabric.
  const auto run = [](bool adaptive) {
    Simulator sim;
    RackParams p;
    p.width = 3;
    p.height = 3;
    p.fec = phy::FecScheme::kNone;
    Rack rack = fabric::build_grid(&sim, p);
    std::vector<std::unique_ptr<phy::BerDriver>> drivers;
    for (std::size_t c = 0; c < rack.plant->cable_count(); ++c) {
      drivers.push_back(std::make_unique<phy::BerDriver>(
          &sim, rack.plant.get(), static_cast<phy::CableId>(c),
          phy::ramp_ber(1e-12, 3e-5, 500_us, 2_ms), 100_us));
      drivers.back()->start();
    }
    core::CrcConfig cfg;
    cfg.epoch = 200_us;
    cfg.enable_adaptive_fec = adaptive;
    core::CrcController crc = make_crc(sim, rack, cfg);
    crc.start();

    workload::GeneratorConfig gen_cfg;
    gen_cfg.mean_interarrival = 200_us;
    gen_cfg.horizon = 5_ms;
    gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(64));
    workload::FlowGenerator gen(&sim, rack.network.get(),
                                workload::TrafficMatrix::uniform(9), gen_cfg);
    gen.start();
    sim.run_until(20_ms);
    crc.stop();
    for (auto& d : drivers) d->stop();
    sim.run_until();
    std::uint64_t retx = 0;
    for (const auto& r : gen.results()) retx += r.retransmits;
    return retx;
  };
  const std::uint64_t static_retx = run(false);
  const std::uint64_t adaptive_retx = run(true);
  // Adaptive FEC absorbs the BER ramp; the static fabric pays in
  // retransmissions.
  EXPECT_LT(adaptive_retx, static_retx / 2 + 1);
}

TEST(Integration, DeterministicEndToEnd) {
  const auto run = [] {
    Simulator sim;
    RackParams p;
    p.width = 4;
    p.height = 4;
    Rack rack = fabric::build_grid(&sim, p);
    core::CrcConfig cfg;
    cfg.epoch = 100_us;
    core::CrcController crc = make_crc(sim, rack, cfg);
    crc.start();
    workload::GeneratorConfig gen_cfg;
    gen_cfg.mean_interarrival = 50_us;
    gen_cfg.horizon = 2_ms;
    workload::FlowGenerator gen(&sim, rack.network.get(),
                                workload::TrafficMatrix::uniform(16), gen_cfg);
    gen.start();
    sim.run_until(5_ms);
    crc.stop();
    sim.run_until();
    return std::make_pair(sim.executed(), rack.network->packet_latency().mean());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace rsf
