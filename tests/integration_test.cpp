// End-to-end scenarios across all modules, driven through the
// FabricRuntime facade: the paper's Figure 2 move under live traffic,
// adaptive vs static comparisons, and circuit reservation semantics.
#include <gtest/gtest.h>

#include <optional>

#include "phy/ber_profile.hpp"
#include "runtime/runtime.hpp"

namespace rsf {
namespace {

using phy::DataSize;
using phy::LinkId;
using rsf::sim::SimTime;
using runtime::FabricRuntime;
using runtime::RuntimeConfig;
using namespace rsf::sim::literals;

TEST(Integration, Figure2GridToTorusUnderLiveTraffic) {
  RuntimeConfig cfg;
  cfg.rack.width = 6;
  cfg.rack.height = 6;
  FabricRuntime rt(cfg);
  rt.start();

  // Live background traffic across the conversion.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 100_us;
  gen_cfg.horizon = 10_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(32));
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(36), gen_cfg);
  gen.start();

  const int hops_before = rt.router().hop_count(rt.node_at(0, 0), rt.node_at(5, 5));
  EXPECT_EQ(hops_before, 10);

  std::optional<core::TopologyPlanner::Report> report;
  rt.sim().schedule_at(1_ms, [&] {
    rt.controller().request_grid_to_torus(
        [&](const core::TopologyPlanner::Report& r) { report = r; });
  });
  rt.run_until();
  rt.stop();
  rt.run_until();

  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->failures, 0);
  EXPECT_EQ(report->wrap_links.size(), 12u);
  // Hop count between far corners roughly halves (paper Figure 2's
  // point: torus halves worst-case distance within the lane budget).
  const int hops_after = rt.router().hop_count(rt.node_at(0, 0), rt.node_at(5, 5));
  EXPECT_LE(hops_after, hops_before / 2 + 1);
  // No traffic was lost for good: every generated flow completed.
  EXPECT_EQ(rt.network().flows_failed(), 0u);
  EXPECT_EQ(gen.results().size(), gen.flows_generated());
  EXPECT_TRUE(rt.plant().validate().empty());
}

TEST(Integration, TorusConversionPreservesLanePowerBudget) {
  // Figure 2: "torus topology running at one lane per link" — the
  // conversion must not light additional lanes.
  RuntimeConfig cfg;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  FabricRuntime rt(cfg);
  const double power_before = rt.plant().total_power_watts();

  std::optional<core::TopologyPlanner::Report> report;
  rt.controller().request_grid_to_torus(
      [&](const core::TopologyPlanner::Report& r) { report = r; });
  rt.run_until();
  ASSERT_TRUE(report && report->failures == 0);

  // Same lanes up, plus only the bypass elements.
  const double power_after = rt.plant().total_power_watts();
  const double bypass_w =
      rt.plant().config().bypass_power_w * rt.plant().total_bypass_joints();
  EXPECT_NEAR(power_after, power_before + bypass_w, 1e-6);
  // Fewer logical links than a native torus would need ports for:
  // switching-port count drops (that is the power win of PLP #2).
  EXPECT_GT(rt.plant().total_bypass_joints(), 0);
}

TEST(Integration, LatencyBoundMapReduceFasterOnTorus) {
  // The torus conversion reorganises capacity (same lanes, shorter
  // paths); it cannot add bandwidth. A *latency-bound* shuffle (small
  // transfers, completion dominated by hop count) therefore speeds up,
  // while a bandwidth-bound one roughly ties — EXT1 shows both.
  const auto run_shuffle = [](bool convert) {
    RuntimeConfig cfg;
    cfg.rack.width = 6;
    cfg.rack.height = 6;
    // The paper's architecture keeps the CRC loop running: congestion
    // prices spread the shuffle across the torus's path diversity
    // (without them, deterministic single-path routing would hotspot
    // the one-lane links and squander the conversion).
    cfg.crc.epoch = 50_us;
    FabricRuntime rt(cfg);
    rt.start();
    if (convert) {
      bool done = false;
      rt.controller().request_grid_to_torus(
          [&](const core::TopologyPlanner::Report&) { done = true; });
      rt.run_until(rt.now() + 10_ms);
      EXPECT_TRUE(done);
    }
    workload::ShuffleConfig shuffle_cfg;
    // Mappers on the top row, reducers on the bottom row: max-distance
    // traffic, the case wraparounds help most.
    for (int x = 0; x < 6; ++x) {
      shuffle_cfg.mappers.push_back(rt.node_at(x, 0));
      shuffle_cfg.reducers.push_back(rt.node_at(x, 5));
    }
    shuffle_cfg.bytes_per_pair = DataSize::kilobytes(4);
    shuffle_cfg.start = rt.now();
    auto& job = rt.add_shuffle(shuffle_cfg);
    std::optional<workload::ShuffleResult> result;
    job.run([&](const workload::ShuffleResult& r) { result = r; });
    rt.run_until();
    rt.stop();
    EXPECT_TRUE(result.has_value());
    EXPECT_EQ(result->failed, 0u);
    // The torus run must also show the halved path lengths.
    if (convert) {
      EXPECT_LT(rt.network().hop_counts().mean(), 5.0);
    }
    return result->job_completion;
  };
  const SimTime grid = run_shuffle(false);
  const SimTime torus = run_shuffle(true);
  EXPECT_LT(torus, grid);
}

TEST(Integration, ReservedCircuitInvisibleToOtherTraffic) {
  RuntimeConfig cfg;
  cfg.rack.width = 5;
  cfg.rack.height = 1;
  cfg.enable_crc = false;
  FabricRuntime rt(cfg);

  // Hand-build a circuit 0 -> 4 and reserve it for flow 42.
  std::vector<LinkId> spares;
  std::vector<LinkId> path;
  for (int x = 0; x + 1 < 5; ++x) {
    path.push_back(*rt.topology().link_between(static_cast<phy::NodeId>(x),
                                               static_cast<phy::NodeId>(x + 1)));
  }
  core::split_many(&rt.engine(), path, 1, [&](auto outs) {
    for (auto& o : outs) spares.push_back(o->spare);
  });
  rt.run_until();
  std::optional<LinkId> circuit;
  core::chain_bypass(&rt.engine(), spares,
                     [&](std::optional<LinkId> l) { circuit = l; });
  rt.run_until();
  ASSERT_TRUE(circuit.has_value());
  rt.plant().set_reservation(*circuit, 42);

  // Public routing 0 -> 4 must not use the reserved direct link.
  const auto public_path = rt.router().path(0, 4);
  EXPECT_EQ(public_path.size(), 4u);
  for (LinkId id : public_path) EXPECT_NE(id, *circuit);

  // The owning flow crosses in one hop.
  fabric::FlowSpec spec;
  spec.id = 42;
  spec.src = 0;
  spec.dst = 4;
  spec.size = DataSize::kilobytes(64);
  std::optional<fabric::FlowResult> result;
  rt.network().start_flow(spec, [&](const fabric::FlowResult& r) { result = r; });
  rt.run_until();
  ASSERT_TRUE(result && !result->failed);
  // All its packets took the 1-hop circuit.
  EXPECT_EQ(rt.network().link_packets(*circuit), result->packets);
}

TEST(Integration, AdaptiveFecKeepsGoodputUnderDegradation) {
  // BER ramp on every cable; adaptive CRC vs a static no-FEC fabric.
  const auto run = [](bool adaptive) {
    RuntimeConfig cfg;
    cfg.rack.width = 3;
    cfg.rack.height = 3;
    cfg.rack.fec = phy::FecScheme::kNone;
    cfg.crc.epoch = 200_us;
    cfg.crc.enable_adaptive_fec = adaptive;
    FabricRuntime rt(cfg);
    std::vector<std::unique_ptr<phy::BerDriver>> drivers;
    for (std::size_t c = 0; c < rt.plant().cable_count(); ++c) {
      drivers.push_back(std::make_unique<phy::BerDriver>(
          &rt.sim(), &rt.plant(), static_cast<phy::CableId>(c),
          phy::ramp_ber(1e-12, 3e-5, 500_us, 2_ms), 100_us));
      drivers.back()->start();
    }
    rt.start();

    workload::GeneratorConfig gen_cfg;
    gen_cfg.mean_interarrival = 200_us;
    gen_cfg.horizon = 5_ms;
    gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(64));
    auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(9), gen_cfg);
    gen.start();
    rt.run_until(20_ms);
    rt.stop();
    for (auto& d : drivers) d->stop();
    rt.run_until();
    std::uint64_t retx = 0;
    for (const auto& r : gen.results()) retx += r.retransmits;
    return retx;
  };
  const std::uint64_t static_retx = run(false);
  const std::uint64_t adaptive_retx = run(true);
  // Adaptive FEC absorbs the BER ramp; the static fabric pays in
  // retransmissions.
  EXPECT_LT(adaptive_retx, static_retx / 2 + 1);
}

TEST(Integration, DeterministicEndToEnd) {
  const auto run = [] {
    RuntimeConfig cfg;
    cfg.rack.width = 4;
    cfg.rack.height = 4;
    cfg.crc.epoch = 100_us;
    FabricRuntime rt(cfg);
    rt.start();
    workload::GeneratorConfig gen_cfg;
    gen_cfg.mean_interarrival = 50_us;
    gen_cfg.horizon = 2_ms;
    auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(16), gen_cfg);
    gen.start();
    rt.run_until(5_ms);
    rt.stop();
    rt.run_until();
    return std::make_pair(rt.sim().executed(), rt.network().packet_latency().mean());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace rsf
