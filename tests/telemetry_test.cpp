#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/series.hpp"
#include "telemetry/table.hpp"

namespace rsf::telemetry {
namespace {

using rsf::sim::SimTime;
using namespace rsf::sim::literals;

// --- Histogram ---

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  EXPECT_NEAR(h.p50(), 1000.0, 1000.0 * 0.02);
  EXPECT_DOUBLE_EQ(h.min(), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Histogram, MeanAndStddevExact) {
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.stddev(), 2.0, 1e-9);
}

TEST(Histogram, QuantileBoundedRelativeError) {
  Histogram h;
  rsf::sim::RandomStream rng(5);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(1.0, 1e9);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.05) << "q=" << q;
  }
}

TEST(Histogram, QuantileMonotonicInQ) {
  Histogram h;
  rsf::sim::RandomStream rng(6);
  for (int i = 0; i < 5000; ++i) h.record(rng.uniform(1.0, 1e6));
  double prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  for (double v : {10.0, 100.0, 1000.0}) h.record(v);
  EXPECT_LE(h.p999(), h.max());
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, SubUnitValuesCountedInQuantiles) {
  Histogram h;
  h.record(0.5);
  h.record(0.1);
  h.record(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(0.3), 1.0);
  EXPECT_GT(h.quantile(0.99), 50.0);
}

TEST(Histogram, RecordsSimTime) {
  Histogram h;
  h.record(5_us);
  EXPECT_DOUBLE_EQ(h.mean(), 5e6);  // ps
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 100; ++i) a.record(static_cast<double>(i));
  for (int i = 101; i <= 200; ++i) b.record(static_cast<double>(i));
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.mean(), 100.5);
  EXPECT_DOUBLE_EQ(a.max(), 200.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.record(42.0);
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 42.0);
}

TEST(Histogram, SinceDiffsPhaseWindowExactly) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const Histogram before = h.snapshot();
  for (int i = 0; i < 50; ++i) h.record(1000.0);
  const Histogram window = h.since(before);
  // Count, mean and stddev of the window are exact.
  EXPECT_EQ(window.count(), 50u);
  EXPECT_DOUBLE_EQ(window.mean(), 1000.0);
  EXPECT_DOUBLE_EQ(window.stddev(), 0.0);
  // Quantiles resolve within bucket relative error.
  EXPECT_NEAR(window.p50(), 1000.0, 1000.0 / 64 + 1);
  // Extremes are bucket-resolution bounds around the window's values.
  EXPECT_GE(window.max(), 1000.0 * (1.0 - 1.0 / 64));
  EXPECT_LE(window.max(), 1000.0 * (1.0 + 2.0 / 64));
  EXPECT_GE(window.min(), 1000.0 * (1.0 - 2.0 / 64));
  // The cumulative histogram is untouched.
  EXPECT_EQ(h.count(), 150u);
}

TEST(Histogram, SinceOfEqualOrNewerSnapshotIsEmpty) {
  Histogram h;
  h.record(5.0);
  const Histogram snap = h.snapshot();
  EXPECT_EQ(h.since(snap).count(), 0u);
  Histogram later = h;
  later.record(6.0);
  EXPECT_EQ(h.since(later).count(), 0u);  // not a predecessor: empty, not UB
}

TEST(Histogram, SinceOfUnrelatedHistogramClampsInsteadOfWrapping) {
  // Misuse guard: diffing against a histogram that is not a snapshot
  // of *this* must not unsigned-underflow bucket counts.
  Histogram a;
  for (int i = 0; i < 5; ++i) a.record(2000.0);
  Histogram unrelated;
  for (int i = 0; i < 3; ++i) unrelated.record(0.5);  // sub-unit bucket only
  const Histogram d = a.since(unrelated);
  EXPECT_EQ(d.count(), 2u);  // best-effort totals, no wraparound
  EXPECT_LE(d.quantile(0.99), a.max());
  EXPECT_GE(d.quantile(0.5), 0.0);
}

TEST(Histogram, SinceCountsSubUnitValues) {
  Histogram h;
  h.record(10.0);
  const Histogram before = h.snapshot();
  h.record(0.5);
  h.record(0.25);
  const Histogram window = h.since(before);
  EXPECT_EQ(window.count(), 2u);
  EXPECT_DOUBLE_EQ(window.mean(), 0.375);
  EXPECT_LE(window.max(), 1.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, SummaryStringsMention) {
  Histogram h;
  h.record(1_us);
  EXPECT_NE(h.summary_time().find("n=1"), std::string::npos);
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

// --- CounterSet ---

TEST(CounterSet, AddAndGet) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_TRUE(c.has("x"));
  EXPECT_FALSE(c.has("y"));
}

TEST(CounterSet, Gauges) {
  CounterSet c;
  c.set_gauge("power", 120.5);
  EXPECT_DOUBLE_EQ(c.gauge("power"), 120.5);
  c.set_gauge("power", 99.0);
  EXPECT_DOUBLE_EQ(c.gauge("power"), 99.0);
  EXPECT_TRUE(c.has("power"));
}

TEST(CounterSet, DiffSubtracts) {
  CounterSet before;
  before.add("pkts", 100);
  CounterSet after;
  after.add("pkts", 150);
  after.add("drops", 3);
  const CounterSet d = after.diff(before);
  EXPECT_EQ(d.get("pkts"), 50u);
  EXPECT_EQ(d.get("drops"), 3u);
}

TEST(CounterSet, MergeAccumulates) {
  CounterSet a;
  a.add("x", 1);
  CounterSet b;
  b.add("x", 2);
  b.add("y", 3);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 3u);
  EXPECT_EQ(a.get("y"), 3u);
}

TEST(CounterSet, ToStringStable) {
  CounterSet c;
  c.add("b", 2);
  c.add("a", 1);
  EXPECT_EQ(c.to_string(), "a=1 b=2");  // sorted by name
}

// --- TimeSeries ---

TEST(TimeSeries, ValueAtStepSemantics) {
  TimeSeries s("x");
  s.record(10_ns, 1.0);
  s.record(20_ns, 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(5_ns, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(s.value_at(10_ns), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(15_ns), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(25_ns), 2.0);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries s("x");
  s.record(0_ns, 1.0);
  s.record(10_ns, 3.0);
  // [0,10): 1.0, [10,20): 3.0 => mean over [0,20) = 2.0
  EXPECT_DOUBLE_EQ(s.time_weighted_mean(0_ns, 20_ns), 2.0);
}

TEST(TimeSeries, FirstReachFindsSettlingTime) {
  TimeSeries s("x");
  s.record(0_ns, 10.0);
  s.record(5_ns, 7.0);
  s.record(9_ns, 5.05);
  EXPECT_EQ(s.first_reach(5.0, 0.1), 9_ns);
  EXPECT_EQ(s.first_reach(5.0, 0.1, 10_ns), SimTime::infinity());
  EXPECT_EQ(s.first_reach(100.0, 0.1), SimTime::infinity());
}

TEST(TimeSeries, MinMax) {
  TimeSeries s("x");
  s.record(0_ns, 3.0);
  s.record(1_ns, -2.0);
  s.record(2_ns, 7.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 7.0);
  EXPECT_DOUBLE_EQ(s.min_value(), -2.0);
}

// --- Registry prefix-merge ---

TEST(Registry, ImportPrefixedSnapshotsAndRefreshesInPlace) {
  Registry shard;
  shard.histogram("net.packet_latency").record(10.0);
  shard.counters("net").add("net.packets_delivered", 3);
  shard.counters("net").set_gauge("queue_depth", 1.5);
  shard.series("crc.power").record(1_us, 7.0);

  Registry fleet;
  fleet.import_prefixed(shard, "rack0.");

  const auto* h = fleet.find_histogram("rack0.net.packet_latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  const auto* c = fleet.find_counters("rack0.net");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->get("rack0.net.packets_delivered"), 3u);
  // Bare gauge names get fully qualified so the prefixed set renders
  // them under its own name.
  EXPECT_DOUBLE_EQ(c->gauge("rack0.net.queue_depth"), 1.5);
  const auto* s = fleet.find_series("rack0.crc.power");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->samples().size(), 1u);

  // Re-import refreshes in place: same instruments, updated values,
  // no double counting.
  shard.histogram("net.packet_latency").record(20.0);
  shard.counters("net").add("net.packets_delivered", 2);
  fleet.import_prefixed(shard, "rack0.");
  EXPECT_EQ(h, fleet.find_histogram("rack0.net.packet_latency"));
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(c->get("rack0.net.packets_delivered"), 5u);

  // Two shards merge side by side; the source registry is untouched.
  Registry other;
  other.counters("net").add("net.packets_delivered", 9);
  fleet.import_prefixed(other, "rack1.");
  EXPECT_EQ(fleet.find_counters("rack1.net")->get("rack1.net.packets_delivered"), 9u);
  EXPECT_EQ(c->get("rack0.net.packets_delivered"), 5u);
  EXPECT_EQ(shard.counters("net").get("net.packets_delivered"), 5u);

  const std::string table = fleet.to_table("merged").to_string();
  EXPECT_NE(table.find("rack0.net.packets_delivered"), std::string::npos);
  EXPECT_NE(table.find("rack0.net.queue_depth"), std::string::npos);
}

// --- Table ---

TEST(Table, BuildsAndPrints) {
  Table t("demo", {"a", "b"});
  t.row().cell("x").cell(1.5, 1);
  t.row().cell("y").cell(std::uint64_t{42});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t("csv", {"c1", "c2"});
  t.row().cell("plain").cell("has,comma");
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_NE(oss.str().find("\"has,comma\""), std::string::npos);
}

TEST(Table, RejectsMalformedUse) {
  Table t("bad", {"only"});
  EXPECT_THROW(t.cell("no row yet"), std::logic_error);
  t.row().cell("ok");
  EXPECT_THROW(t.cell("too many"), std::logic_error);
  EXPECT_THROW(Table("empty", {}), std::invalid_argument);
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t("bad", {"a", "b"});
  t.row().cell("only one");
  EXPECT_THROW(t.row(), std::logic_error);
}

}  // namespace
}  // namespace rsf::telemetry
