// Correlated-failure chaos: shared-risk groups fail together (and
// idempotently), rack brownouts degrade instead of partitioning when a
// bypass exists, a killed FleetController loses its leases and a
// restarted one re-earns them (checkpointed: on the first post-restart
// epoch), and every ChaosScenario run holds the invariant triple —
// bounded, conserving, leak-free — byte-identically across worker
// counts. Plus the failure-path bugfix sweep: loss_prob == 1.0
// blackhole links, double set_link_up, and zero-delay retries against
// a link that died in the same batch.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/interconnect.hpp"
#include "runtime/fleet.hpp"
#include "runtime/fleet_controller.hpp"
#include "workload/chaos.hpp"

namespace rsf {
namespace {

using fabric::Interconnect;
using fabric::SpineLinkId;
using fabric::SpineLinkParams;
using phy::DataSize;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using runtime::FleetConfig;
using runtime::FleetController;
using runtime::FleetControllerConfig;
using runtime::FleetRuntime;
using runtime::RackShape;
using runtime::RackSpec;
using runtime::RuntimeConfig;
using runtime::SpineSpec;
using workload::ChaosAction;
using workload::ChaosEvent;
using workload::ChaosScenario;
using workload::ChaosScenarioConfig;
using workload::ChaosScenarioResult;
using namespace rsf::sim::literals;

// ---------------------------------------------------------------------
// Shared-risk groups on a bare Interconnect.
// ---------------------------------------------------------------------

struct SrlgFixture : ::testing::Test {
  Simulator sim;
  telemetry::Registry registry;
  Interconnect spine{&sim, &registry};

  SpineLinkId add(std::uint32_t a, std::uint32_t b, double loss = 0.0) {
    SpineLinkParams p;
    p.a = {a, 0};
    p.b = {b, 0};
    p.loss_prob = loss;
    return spine.add_link(p);
  }

  std::uint64_t count(const std::string& name) { return spine.counters().get(name); }
};

TEST_F(SrlgFixture, GroupCutFailsEveryMemberOnceAndRepairsRestoreThem) {
  const auto l0 = add(0, 1);
  const auto l1 = add(1, 2);
  const auto l2 = add(2, 3);
  const auto g = spine.add_shared_risk_group({l0, l1, l2});
  EXPECT_TRUE(spine.group_up(g));
  EXPECT_EQ(spine.shared_risk_group(g), (std::vector<SpineLinkId>{l0, l1, l2}));

  spine.set_group_up(g, false);
  EXPECT_FALSE(spine.group_up(g));
  for (const auto l : {l0, l1, l2}) EXPECT_FALSE(spine.link_up(l));
  EXPECT_EQ(count("spine.srlg_cuts"), 1u);
  EXPECT_EQ(count("spine.links_failed"), 3u);
  // A cut trench severs the line: 0 -> 3 is unreachable, not mispriced.
  EXPECT_FALSE(spine.route(0, 3).has_value());

  spine.set_group_up(g, true);
  for (const auto l : {l0, l1, l2}) EXPECT_TRUE(spine.link_up(l));
  EXPECT_EQ(count("spine.srlg_repairs"), 1u);
  EXPECT_EQ(count("spine.links_restored"), 3u);
  EXPECT_TRUE(spine.route(0, 3).has_value());
}

TEST_F(SrlgFixture, GroupTransitionsAreIdempotentEvenWithOverlap) {
  const auto l0 = add(0, 1);
  const auto l1 = add(1, 2);
  const auto ga = spine.add_shared_risk_group({l0, l1});
  const auto gb = spine.add_shared_risk_group({l1});  // overlaps ga on l1

  spine.set_group_up(ga, false);
  spine.set_group_up(ga, false);  // repeat: whole call is a no-op
  EXPECT_EQ(count("spine.srlg_cuts"), 1u);
  EXPECT_EQ(count("spine.links_failed"), 2u);

  // The overlapping group's cut transitions *it*, but l1 is already
  // down — per-link idempotence keeps links_failed exact.
  spine.set_group_up(gb, false);
  EXPECT_EQ(count("spine.srlg_cuts"), 2u);
  EXPECT_EQ(count("spine.links_failed"), 2u);

  // Repairing ga restores both links even while gb still claims l1:
  // link administrative state is last-writer-wins.
  spine.set_group_up(ga, true);
  EXPECT_TRUE(spine.link_up(l1));
  EXPECT_EQ(count("spine.links_restored"), 2u);
}

TEST_F(SrlgFixture, RepairOfAFullyShadowedCutIsAPureNoop) {
  // Regression: two groups covering the same trench. Cut A takes both
  // links down; cut B then takes nothing (every member already
  // failed). Repairing B used to resurrect links the still-cut A
  // holds; now it is a pure no-op — no link transition, no topology
  // version bump, no route-cache flush — with its own counter so
  // chaos timelines that emit one keep the phantom visible.
  const auto l0 = add(0, 1);
  const auto l1 = add(1, 2);
  const auto ga = spine.add_shared_risk_group({l0, l1});
  const auto gb = spine.add_shared_risk_group({l0, l1});

  spine.set_group_up(ga, false);
  spine.set_group_up(gb, false);  // shadowed: takes nothing down
  EXPECT_EQ(count("spine.srlg_cuts"), 2u);
  EXPECT_EQ(count("spine.links_failed"), 2u);

  const std::uint64_t version_under_cut = spine.version();
  spine.set_group_up(gb, true);
  EXPECT_EQ(count("spine.srlg_noop_repairs"), 1u);
  EXPECT_EQ(count("spine.srlg_repairs"), 0u);
  EXPECT_FALSE(spine.link_up(l0));
  EXPECT_FALSE(spine.link_up(l1));
  EXPECT_EQ(spine.version(), version_under_cut);
  EXPECT_EQ(count("spine.links_restored"), 0u);
  EXPECT_FALSE(spine.route(0, 2).has_value());

  // The group that actually took the trench down still repairs it.
  spine.set_group_up(ga, true);
  EXPECT_EQ(count("spine.srlg_repairs"), 1u);
  EXPECT_TRUE(spine.link_up(l0) && spine.link_up(l1));
  EXPECT_TRUE(spine.route(0, 2).has_value());
}

TEST_F(SrlgFixture, GroupRegistrationValidates) {
  const auto l0 = add(0, 1);
  EXPECT_THROW(spine.add_shared_risk_group({}), std::invalid_argument);
  EXPECT_THROW(spine.add_shared_risk_group({l0, 99}), std::invalid_argument);
  EXPECT_THROW(spine.set_group_up(0, false), std::invalid_argument);
  EXPECT_THROW((void)spine.group_up(0), std::invalid_argument);
  EXPECT_EQ(spine.shared_risk_group_count(), 0u);
}

TEST_F(SrlgFixture, RackAttachmentsListEverySpineLinkOfTheRackAscending) {
  const auto l0 = add(0, 1);
  const auto l1 = add(1, 2);
  const auto l2 = add(2, 0);
  add(2, 3);
  EXPECT_EQ(spine.rack_attachments(0), (std::vector<SpineLinkId>{l0, l2}));
  EXPECT_EQ(spine.rack_attachments(1), (std::vector<SpineLinkId>{l0, l1}));
  EXPECT_TRUE(spine.rack_attachments(7).empty());
}

// ---------------------------------------------------------------------
// Satellite bugfixes at the fabric layer.
// ---------------------------------------------------------------------

TEST_F(SrlgFixture, AddLinkAcceptsTheClosedLossProbInterval) {
  // loss_prob is a probability: [0, 1] inclusive. 1.0 is a blackhole
  // link — legal and useful (the chaos harness models dead optics that
  // still carry light); only genuinely impossible values are rejected.
  EXPECT_NO_THROW(add(0, 1, 0.0));
  EXPECT_NO_THROW(add(0, 1, 1.0));
  EXPECT_THROW(add(0, 1, -0.01), std::invalid_argument);
  EXPECT_THROW(add(0, 1, 1.01), std::invalid_argument);
}

TEST_F(SrlgFixture, BlackholeLinkDropsEveryPacketDeterministically) {
  const auto l = add(0, 1, 1.0);
  int callbacks = 0;
  int delivered = 0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(spine.send_packet(l, 0, DataSize::bytes(1000),
                                  [&](SimTime, bool ok) {
                                    ++callbacks;
                                    delivered += ok ? 1 : 0;
                                  }));
  }
  sim.run_until();
  EXPECT_EQ(callbacks, 8);  // loss still reports arrival — sender retries
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(spine.link_drops(l, 0), 8u);
}

TEST_F(SrlgFixture, SetLinkUpIsIdempotent) {
  const auto l = add(0, 1);
  (void)spine.route(0, 1);  // warm the cache so version bumps are visible
  const auto version = spine.version();

  spine.set_link_up(l, true);  // already up: nothing moves
  EXPECT_EQ(spine.version(), version);
  EXPECT_EQ(count("spine.links_restored"), 0u);

  spine.set_link_up(l, false);
  spine.set_link_up(l, false);  // repeat: no second count, no re-walk
  EXPECT_EQ(count("spine.links_failed"), 1u);
  const auto down_version = spine.version();
  spine.set_link_up(l, false);
  EXPECT_EQ(spine.version(), down_version);

  spine.set_link_up(l, true);
  spine.set_link_up(l, true);
  EXPECT_EQ(count("spine.links_restored"), 1u);
}

TEST_F(SrlgFixture, PreemptionLandsWhileAReservedPacketIsMidSpineHop) {
  // A reserved packet is serialized onto the carve, the link dies
  // before its last bit arrives, and the arrival callback still fires:
  // the handle is stale (preempted exactly once), the packet's fate is
  // already sealed, and nothing corrupts or hangs.
  const auto l = add(0, 1);
  const auto h = spine.reserve(0, 1, 0.5);
  ASSERT_TRUE(h.has_value());
  std::optional<bool> outcome;
  EXPECT_TRUE(spine.send_packet(l, 0, DataSize::bytes(1000), *h,
                                [&](SimTime, bool ok) { outcome = ok; }));
  // Mid-flight (propagation is 1 us): the trench backhoe arrives.
  sim.schedule_at(500_ns, [&] { spine.set_link_up(l, false); });
  sim.run_until();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);  // the in-flight packet was already committed
  EXPECT_FALSE(spine.reservation_active(*h));
  EXPECT_EQ(count("spine.reservation_preemptions"), 1u);
  // Stale-handle sends on the repaired link degrade to the shared
  // residual instead of erroring.
  spine.set_link_up(l, true);
  EXPECT_TRUE(spine.send_packet(l, 0, DataSize::bytes(1000), *h,
                                [](SimTime, bool) {}));
  sim.run_until();
  EXPECT_EQ(spine.reservation_count(), 0u);
}

// ---------------------------------------------------------------------
// Satellite bugfixes at the fleet layer.
// ---------------------------------------------------------------------

FleetConfig two_rack_fleet() {
  FleetConfig fc;
  RuntimeConfig rack;
  rack.shape = RackShape::kGrid;
  rack.rack.width = 4;
  rack.rack.height = 4;
  rack.enable_crc = false;
  fc.racks.push_back(RackSpec{rack, 0});
  fc.racks.push_back(RackSpec{rack, 0});
  return fc;
}

SpineSpec fast_link(std::uint32_t a, std::uint32_t b, double cost, double loss) {
  SpineSpec s;
  s.rack_a = a;
  s.rack_b = b;
  s.rate = phy::DataRate::gbps(25);
  s.latency = 2_us;
  s.cost = cost;
  s.loss_prob = loss;
  return s;
}

TEST(FleetChaosBugfix, FlowOverBlackholeOnlyRouteFailsCleanly) {
  FleetConfig fc = two_rack_fleet();
  fc.spine.push_back(fast_link(0, 1, 1.0, 1.0));  // the only route: a blackhole
  fc.max_retries = 3;
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 0, 0);
  spec.dst = fleet.at(1, 3, 3);
  spec.size = DataSize::kilobytes(8);
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.run_until();

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->failed);  // retry exhaustion, not a hang
  EXPECT_GE(result->retransmits, 3u);
  EXPECT_EQ(fleet.flows_failed(), 1u);
  EXPECT_EQ(fleet.flows_completed(), 0u);
  // The failure path recycled every flow and packet slot.
  EXPECT_EQ(fleet.free_flow_slots(), fleet.flow_slots());
  EXPECT_EQ(fleet.free_packet_slots(), fleet.packet_slots());
}

TEST(FleetChaosBugfix, ZeroDelayRetryReresolvesARouteThatDiedInTheSameBatch) {
  // Link 0 is cheap but loses every packet; link 1 is pricier and
  // clean. With retry_delay = 0 a loss's retry re-enters the pipeline
  // at the very instant the loss landed — and if link 0 was cut in
  // that same batch, the retry must re-resolve the route (finding
  // link 1) instead of blindly re-entering the dead hop. Workers 1
  // and 2 must agree byte for byte.
  auto run = [](int workers) {
    FleetConfig fc = two_rack_fleet();
    fc.spine.push_back(fast_link(0, 1, 1.0, 1.0));
    fc.spine.push_back(fast_link(0, 1, 3.0, 0.0));
    fc.retry_delay = SimTime::zero();
    fc.workers = workers;
    FleetRuntime fleet(fc);
    // The cut lands mid-run, between the first losses' arrivals, as a
    // fleet-ring event (deterministic across worker counts).
    fleet.sim().schedule_weak_at(2300_ns,
                                 [&] { fleet.spine().set_link_up(0, false); });
    runtime::FleetFlowSpec spec;
    spec.src = fleet.at(0, 0, 0);
    spec.dst = fleet.at(1, 3, 3);
    spec.size = DataSize::kilobytes(32);
    std::optional<runtime::FleetFlowResult> result;
    fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
    fleet.run_until();
    EXPECT_TRUE(result.has_value());
    if (result) {
      EXPECT_FALSE(result->failed);    // rerouted, not ping-ponged to death
      EXPECT_GE(result->retransmits, 1u);
    }
    EXPECT_EQ(fleet.flows_completed(), 1u);
    EXPECT_EQ(fleet.spine().counters().get("spine.link1.packets"), 32u);
    EXPECT_EQ(fleet.free_packet_slots(), fleet.packet_slots());
    return fleet.metrics_table().to_string();
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(2));
}

TEST(FleetChaosBugfix, KillAndRestartControllerValidateTheirPreconditions) {
  FleetConfig fc = two_rack_fleet();
  fc.spine.push_back(fast_link(0, 1, 1.0, 0.0));
  {
    FleetRuntime fleet(fc);  // no controller configured
    EXPECT_THROW(fleet.kill_controller(), std::logic_error);
    EXPECT_THROW(fleet.restart_controller(), std::logic_error);
  }
  fc.enable_controller = true;
  FleetRuntime fleet(fc);
  EXPECT_TRUE(fleet.has_controller());
  EXPECT_THROW(fleet.restart_controller(), std::logic_error);  // still alive
  fleet.kill_controller();
  EXPECT_FALSE(fleet.has_controller());
  EXPECT_THROW(fleet.kill_controller(), std::logic_error);  // already dead
  fleet.restart_controller();
  EXPECT_TRUE(fleet.has_controller());
  EXPECT_EQ(fleet.metrics().counters("fleet").get("fleet.controller_kills"), 1u);
  EXPECT_EQ(fleet.metrics().counters("fleet").get("fleet.controller_restarts"), 1u);
}

// ---------------------------------------------------------------------
// Controller checkpoint / restore.
// ---------------------------------------------------------------------

FleetControllerConfig hot_pair_config() {
  FleetControllerConfig cfg;
  cfg.epoch = 10_us;
  cfg.reservations.enable = true;
  cfg.reservations.fraction = 0.5;
  cfg.reservations.hot_bytes_per_epoch = 1000;
  cfg.reservations.idle_bytes_per_epoch = 10;
  cfg.reservations.promote_after = 2;
  cfg.reservations.demote_after = 100;
  cfg.reservations.max_reservations = 1;
  return cfg;
}

TEST(FleetControllerCheckpoint, CheckpointedRestartReearnsTheCarveInOneEpoch) {
  Simulator sim;
  telemetry::Registry registry;
  Interconnect spine(&sim, &registry);
  SpineLinkParams p;
  p.a = {0, 0};
  p.b = {1, 0};
  spine.add_link(p);
  std::uint64_t& demand = spine.pair_demand_slot(0, 1);

  auto ctrl = std::make_unique<FleetController>(&sim, &spine, hot_pair_config(),
                                                &registry);
  ctrl->start();
  for (const auto t : {5_us, 15_us, 25_us}) {
    sim.schedule_at(t, [&] { demand += 100'000; });
  }
  sim.run_until(35_us);
  ASSERT_TRUE(spine.find_reservation(0, 1).has_value());  // promoted at 20 us

  const auto ckpt = ctrl->checkpoint();
  ASSERT_EQ(ckpt.pairs.size(), 1u);
  EXPECT_EQ(ckpt.pairs[0].key, std::uint64_t{0} << 32 | 1u);
  EXPECT_TRUE(ckpt.pairs[0].reserved);
  EXPECT_GT(ckpt.pairs[0].score, 0.0);
  // A running controller refuses a restore (state would tear mid-epoch).
  EXPECT_THROW(ctrl->restore(ckpt), std::logic_error);

  // The kill: leases expire with their owner.
  ctrl->stop();
  EXPECT_EQ(ctrl->release_reservations(), 1u);
  EXPECT_FALSE(spine.find_reservation(0, 1).has_value());
  ctrl.reset();

  // The restarted controller restores intent, not handles — and while
  // the pair is still hot, the first post-restart epoch re-reserves
  // through the normal admission path.
  auto fresh = std::make_unique<FleetController>(&sim, &spine, hot_pair_config(),
                                                 &registry);
  fresh->restore(ckpt);
  sim.schedule_at(40_us, [&] { demand += 100'000; });
  fresh->start();
  sim.run_until(48_us);  // one tick, at 45 us
  EXPECT_EQ(fresh->epochs_completed(), 1u);
  EXPECT_TRUE(spine.find_reservation(0, 1).has_value());
  fresh->stop();
}

TEST(FleetControllerCheckpoint, ColdRestartSeedsBaselinesAndReearnsViaFullStreak) {
  // A cold controller starting on a warm spine must not misread the
  // fleet's entire demand history as one epoch's delta. With baselines
  // seeded at start(), promotion takes the full promote_after streak
  // driven by genuinely fresh demand.
  Simulator sim;
  telemetry::Registry registry;
  Interconnect spine(&sim, &registry);
  SpineLinkParams p;
  p.a = {0, 0};
  p.b = {1, 0};
  spine.add_link(p);
  std::uint64_t& demand = spine.pair_demand_slot(0, 1);
  demand = 50'000'000;  // ancient history from before this controller

  FleetController ctrl(&sim, &spine, hot_pair_config(), &registry);
  ctrl.start();
  sim.schedule_at(5_us, [&] { demand += 100; });  // keep ticks observing
  sim.run_until(12_us);  // first tick at 10 us
  // The pre-existing 50 MB never registered as heat: no promotion.
  EXPECT_FALSE(spine.find_reservation(0, 1).has_value());
  EXPECT_EQ(ctrl.promotions(), 0u);

  for (const auto t : {15_us, 25_us}) {
    sim.schedule_at(t, [&] { demand += 100'000; });
  }
  sim.run_until(35_us);  // two hot epochs -> streak 2 -> promote
  EXPECT_TRUE(spine.find_reservation(0, 1).has_value());
  ctrl.stop();
}

TEST(FleetControllerCheckpoint, FlapAtThePromotionBoundaryCostsTheFullStreak) {
  // The satellite's race, pinned at event granularity: the pair's hot
  // streak clears promote_after at the tick where the link is flapped
  // down — the promotion *decision* stands, but reserve() finds no
  // route. The policy backs off a full promote window (streak reset)
  // rather than holding a phantom carve, and the up-flap an instant
  // later doesn't resurrect it: the pair re-earns the whole streak.
  Simulator sim;
  telemetry::Registry registry;
  Interconnect spine(&sim, &registry);
  SpineLinkParams p;
  p.a = {0, 0};
  p.b = {1, 0};
  const SpineLinkId link = spine.add_link(p);
  std::uint64_t& demand = spine.pair_demand_slot(0, 1);

  FleetController ctrl(&sim, &spine, hot_pair_config(), &registry);
  // Scheduled before start(): at the 20 us tick instant the down-flap
  // fires first (earlier insertion), the tick runs against the dead
  // link, and the up-flap (inserted from inside the down handler)
  // lands after it — the flap window brackets exactly the
  // decision -> reserve() boundary.
  sim.schedule_at(20_us, [&] {
    spine.set_link_up(link, false);
    sim.schedule_at(20_us, [&] { spine.set_link_up(link, true); });
  });
  ctrl.start();
  for (const auto t : {5_us, 15_us, 25_us, 35_us}) {
    sim.schedule_at(t, [&] { demand += 100'000; });
  }
  sim.run_until(22_us);  // ticks at 10 (streak 1) and 20 (flapped)
  EXPECT_FALSE(spine.find_reservation(0, 1).has_value());
  EXPECT_EQ(ctrl.promotions(), 0u);
  EXPECT_EQ(registry.counters("spine").get("spine.links_failed"), 1u);
  EXPECT_EQ(registry.counters("spine").get("spine.links_restored"), 1u);

  // Re-earning takes promote_after = 2 fresh hot epochs: still nothing
  // at the 30 us tick, promoted at 40 us.
  sim.run_until(32_us);
  EXPECT_FALSE(spine.find_reservation(0, 1).has_value());
  sim.run_until(42_us);
  EXPECT_TRUE(spine.find_reservation(0, 1).has_value());
  EXPECT_EQ(ctrl.promotions(), 1u);
  ctrl.stop();
}

// ---------------------------------------------------------------------
// ChaosScenario: the invariant-verified end-to-end runs.
// ---------------------------------------------------------------------

void expect_invariants(const ChaosScenarioResult& r) {
  EXPECT_TRUE(r.conservation_ok);
  EXPECT_TRUE(r.completed_before_horizon);
  EXPECT_TRUE(r.slots_at_baseline);
  EXPECT_EQ(r.flows_offered, 8u);
  EXPECT_EQ(r.flows_delivered + r.flows_failed + r.flows_inflight_at_cutoff,
            r.flows_offered);
  EXPECT_EQ(r.bytes_delivered + r.bytes_failed + r.bytes_inflight_at_cutoff,
            r.bytes_offered);
}

TEST(ChaosScenario, QuietTimelineDeliversEverythingAndHoldsInvariants) {
  ChaosScenarioConfig cfg;
  ChaosScenario chaos(cfg);
  const ChaosScenarioResult r = chaos.run();
  expect_invariants(r);
  EXPECT_EQ(r.flows_failed, 0u);
  EXPECT_EQ(r.flows_delivered, 8u);
  EXPECT_EQ(r.flows_failed_pct, 0.0);
  EXPECT_GT(r.flow_p99, SimTime::zero());
  EXPECT_GT(r.hot_job, SimTime::zero());
  EXPECT_EQ(r.srlg_cuts, 0u);
  EXPECT_EQ(r.controller_restarts, 0u);
  // The hot incast promotes its pair without any chaos applied.
  EXPECT_GE(r.promotions, 1u);
  EXPECT_THROW(chaos.run(), std::logic_error);  // run() is once
}

TEST(ChaosScenario, TrenchCutDegradesWithoutFailingFlows) {
  // One trench down mid-run: every adjacency keeps its other link, so
  // flows reroute (or retry onto the survivor) and still deliver.
  ChaosScenarioConfig cfg;
  cfg.timeline.push_back({60_us, ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
  cfg.timeline.push_back({200_us, ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
  ChaosScenario chaos(cfg);
  const ChaosScenarioResult r = chaos.run();
  expect_invariants(r);
  EXPECT_EQ(r.flows_failed, 0u);
  EXPECT_EQ(r.srlg_cuts, 1u);
  // Packets whose next hop rode trench A at the cut re-planned onto
  // the survivor mid-flight instead of failing their flows.
  EXPECT_GE(r.reroutes, 1u);
  EXPECT_EQ(chaos.fleet().spine().counters().get("spine.links_failed"), 3u);
  EXPECT_EQ(chaos.fleet().spine().counters().get("spine.links_restored"), 3u);
}

TEST(ChaosScenario, DoubleTrenchCutPartitionsAndPreemptsButConserves) {
  // Both trenches down at once: every flow is mid-stream with packets
  // transiting rack 1 (the cheapest 1 -> 0 and 2 -> 1 -> 0 routes),
  // so when rack 1 loses all four attachments even the bypass can't
  // save a flow whose packet is stranded inside it — all eight fail
  // deterministically. The invariant story is the point: no hang, no
  // leak, exact conservation, and the hot pair's reservation is
  // preempted while its packets are mid-hop.
  ChaosScenarioConfig cfg;
  cfg.timeline.push_back({60_us, ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
  cfg.timeline.push_back({64_us, ChaosAction::kCutGroup, ChaosScenario::kTrenchB});
  cfg.timeline.push_back({400_us, ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
  cfg.timeline.push_back({404_us, ChaosAction::kRepairGroup, ChaosScenario::kTrenchB});
  ChaosScenario chaos(cfg);
  const ChaosScenarioResult r = chaos.run();
  expect_invariants(r);
  EXPECT_EQ(r.srlg_cuts, 2u);
  EXPECT_EQ(r.flows_failed, 8u);
  EXPECT_EQ(r.flows_delivered, 0u);
  EXPECT_DOUBLE_EQ(r.flows_failed_pct, 100.0);
  // The promoted hot pair was carrying packets when its route died.
  EXPECT_GE(r.preemptions, 1u);
}

TEST(ChaosScenario, RackBrownoutDegradesOverTheBypassInsteadOfPartitioning) {
  // Every rack-1 attachment dies. Unlike the double-trench cut this
  // is survivable: 3 -> 0 and 2 -> 0 stay routable over the 0 - 2
  // bypass, so flows whose packets were NOT transiting rack 1 at the
  // cut re-plan mid-flight and deliver. Rack 1's own sources fail
  // (every egress is gone), as do the flows with a packet stranded
  // inside rack 1 — deterministically 5 failed, 3 rerouted and
  // delivered.
  ChaosScenarioConfig cfg;
  cfg.timeline.push_back({80_us, ChaosAction::kBrownoutRack, 1});
  cfg.timeline.push_back({400_us, ChaosAction::kRestoreRack, 1});
  ChaosScenario chaos(cfg);
  const ChaosScenarioResult r = chaos.run();
  expect_invariants(r);
  EXPECT_EQ(r.flows_failed, 5u);
  EXPECT_EQ(r.flows_delivered, 3u);
  EXPECT_DOUBLE_EQ(r.flows_failed_pct, 62.5);
  // Mid-flight packets re-planned around the brownout.
  EXPECT_GE(r.reroutes, 1u);
}

TEST(ChaosScenario, SameSeedRunsAreByteIdenticalAndSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    ChaosScenarioConfig cfg;
    cfg.seed = seed;
    cfg.loss_prob = 0.02;
    cfg.random.enable = true;
    cfg.random.cuts = 2;
    cfg.random.flap_cycles = 2;
    ChaosScenario chaos(cfg);
    chaos.run();
    return chaos.fleet().metrics_table().to_string();
  };
  const std::string a1 = run(7);
  const std::string a2 = run(7);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, run(8));
}

TEST(ChaosScenario, RandomTimelineIsDeterministicPerSeedAndOrdered) {
  ChaosScenarioConfig cfg;
  cfg.seed = 21;
  cfg.random.enable = true;
  cfg.random.cuts = 3;
  cfg.random.flap_cycles = 1;
  ChaosScenario a(cfg);
  ChaosScenario b(cfg);
  ASSERT_EQ(a.timeline().size(), b.timeline().size());
  // cuts x (1 cut + 1 repair + flap_cycles x 2) events.
  EXPECT_EQ(a.timeline().size(), 12u);
  for (std::size_t i = 0; i < a.timeline().size(); ++i) {
    EXPECT_EQ(a.timeline()[i].at, b.timeline()[i].at);
    EXPECT_EQ(a.timeline()[i].action, b.timeline()[i].action);
    EXPECT_EQ(a.timeline()[i].target, b.timeline()[i].target);
    if (i > 0) EXPECT_LE(a.timeline()[i - 1].at, a.timeline()[i].at);
  }
  ChaosScenarioConfig bad = cfg;
  bad.random.window_end = 10_us;  // before window_start
  EXPECT_THROW(ChaosScenario{bad}, std::invalid_argument);
  ChaosScenarioConfig miss;
  miss.timeline.push_back({1_us, ChaosAction::kCutGroup, 9});  // no such group
  EXPECT_THROW(ChaosScenario{miss}, std::invalid_argument);
}

TEST(ChaosScenario, FlapStormUnderSeededLossStaysByteIdenticalAcrossWorkers) {
  // The hysteresis-defeating flap: trench cuts landing at controller
  // epoch boundaries (so a promotion decision and the cut race at the
  // same instant) plus seeded packet loss — the satellite's "flap
  // between the promotion decision and its reserve() call" window.
  // Workers 1 and 4 must agree byte for byte.
  auto run = [](int workers) {
    ChaosScenarioConfig cfg;
    cfg.seed = 5;
    cfg.workers = workers;
    cfg.loss_prob = 0.01;
    // Cuts at 40/80/120 us land exactly on 20 us epoch ticks, applied
    // (as earlier-scheduled weak events) just before each tick runs.
    for (const auto t : {40_us, 80_us, 120_us}) {
      cfg.timeline.push_back({t, ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
      cfg.timeline.push_back({t + 10_us, ChaosAction::kRepairGroup,
                              ChaosScenario::kTrenchA});
    }
    ChaosScenario chaos(cfg);
    const ChaosScenarioResult r = chaos.run();
    expect_invariants(r);
    EXPECT_EQ(r.flows_failed, 0u);
    EXPECT_EQ(r.srlg_cuts, 3u);
    return chaos.fleet().metrics_table().to_string();
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(4));
}

TEST(ChaosScenario, AcceptanceSrlgCutFlapAndCheckpointedRestartRelearns) {
  // The ISSUE's acceptance scenario: periodic checkpoints, a trench
  // cut, a mid-epoch controller kill, a checkpointed restart, repair,
  // and a flap tail — conservation holds, the restarted controller
  // re-earns the hot pair's reservation within K epochs, and the whole
  // run is byte-identical at fleet workers 1 vs 4.
  auto run = [](int workers) {
    ChaosScenarioConfig cfg;
    cfg.workers = workers;
    cfg.checkpoint_every = 60_us;
    cfg.timeline.push_back({100_us, ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
    cfg.timeline.push_back({110_us, ChaosAction::kKillController, 0});
    cfg.timeline.push_back({130_us, ChaosAction::kRestartController, 0, true});
    cfg.timeline.push_back({160_us, ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
    cfg.timeline.push_back({190_us, ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
    cfg.timeline.push_back({202_us, ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
    ChaosScenario chaos(cfg);
    const ChaosScenarioResult r = chaos.run();
    expect_invariants(r);
    EXPECT_EQ(r.flows_failed, 0u);
    EXPECT_EQ(r.srlg_cuts, 2u);
    EXPECT_EQ(r.controller_restarts, 1u);
    // The checkpointed restart restores the hot pair's intent as a
    // full streak: re-earned on an early post-restart epoch, well
    // inside the K = 6 bound.
    EXPECT_TRUE(r.reservation_relearned);
    EXPECT_GE(r.relearn_epochs, 1);
    EXPECT_LE(r.relearn_epochs, 6);
    return chaos.fleet().metrics_table().to_string();
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(4));
}

TEST(ChaosScenario, ColdRestartRelearnsMoreSlowlyThanCheckpointed) {
  auto relearn = [](bool with_ckpt) {
    ChaosScenarioConfig cfg;
    // Long-lived flows: the cold path needs the hot pair to still be
    // offering demand at restart + promote_after epochs.
    cfg.hot_bytes = DataSize::kilobytes(256);
    cfg.checkpoint_every = with_ckpt ? 60_us : SimTime::zero();
    cfg.timeline.push_back({110_us, ChaosAction::kKillController, 0});
    cfg.timeline.push_back({130_us, ChaosAction::kRestartController, 0, with_ckpt});
    ChaosScenario chaos(cfg);
    const ChaosScenarioResult r = chaos.run();
    expect_invariants(r);
    EXPECT_TRUE(r.reservation_relearned);
    EXPECT_EQ(r.controller_restarts, 1u);
    return r.relearn_epochs;
  };
  const int checkpointed = relearn(true);
  const int cold = relearn(false);
  // Cold: the streak rebuilds from zero (promote_after = 2 epochs);
  // checkpointed: the restored intent promotes on the first hot tick.
  EXPECT_EQ(checkpointed, 1);
  EXPECT_GT(cold, checkpointed);
  EXPECT_LE(cold, 6);
}

}  // namespace
}  // namespace rsf
