// FleetController: the spine-aware control loop. Repricing must shift
// packetized traffic off a hot spine link onto a parallel one, idle
// fleets must not be repriced, epochs must be weak events (they never
// keep the simulation alive), and controller runs must stay
// deterministic.
#include "runtime/fleet_controller.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "runtime/fleet.hpp"

namespace rsf {
namespace {

using phy::DataSize;
using rsf::sim::SimTime;
using runtime::FleetConfig;
using runtime::FleetController;
using runtime::FleetControllerConfig;
using runtime::FleetRuntime;
using runtime::RackShape;
using runtime::RackSpec;
using runtime::RuntimeConfig;
using runtime::SpineSpec;
using namespace rsf::sim::literals;

RuntimeConfig grid_config() {
  RuntimeConfig cfg;
  cfg.shape = RackShape::kGrid;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  cfg.enable_crc = false;  // isolate the fleet loop from rack control
  return cfg;
}

/// Two racks joined by two parallel spine links. The links are slow
/// (10 Gb/s) so sustained flows back their FIFOs up and the controller
/// sees real heat.
FleetConfig parallel_spine_config(bool with_controller) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  for (int i = 0; i < 2; ++i) {
    SpineSpec s;
    s.rack_a = 0;
    s.rack_b = 1;
    s.rate = phy::DataRate::gbps(10);
    fc.spine.push_back(s);
  }
  fc.enable_controller = with_controller;
  fc.controller.epoch = 20_us;
  return fc;
}

void run_hot_flow(FleetRuntime& fleet) {
  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 2, 2);
  spec.size = DataSize::megabytes(1);  // ~1000 packets, ~800 us on 10G
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.start();
  fleet.run_until();
  fleet.stop();
  fleet.run_until();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->failed);
}

TEST(FleetController, RepricingShiftsTrafficOffTheHotSpineLink) {
  // Without the controller every packet takes link 0 (lowest-id tie).
  FleetRuntime cold(parallel_spine_config(false));
  run_hot_flow(cold);
  EXPECT_GT(cold.spine().link_packets(0, 0), 0u);
  EXPECT_EQ(cold.spine().link_packets(1, 0), 0u);

  // With it, link 0 heats up, gets repriced, and later packets re-plan
  // onto link 1: both parallel links end up carrying traffic.
  FleetRuntime hot(parallel_spine_config(true));
  run_hot_flow(hot);
  EXPECT_GT(hot.controller().epochs_completed(), 0u);
  EXPECT_GT(hot.controller().reprices(), 0u);
  const auto& c = hot.spine().counters();
  EXPECT_GT(c.get("spine.link0.packets"), 0u);
  EXPECT_GT(c.get("spine.link1.packets"), 0u);
  EXPECT_GT(c.get("spine.reprices"), 0u);
  EXPECT_GT(c.get("spine.route_cache_misses"), 1u);  // re-planned post-bump
  // The controller observed real utilisation on the hot link.
  EXPECT_GT(hot.controller().utilization_series().max_value(), 0.0);
  // The fleet registry carries the controller's instruments.
  EXPECT_GT(hot.metrics().find_counters("fleet")->get("fleet.epochs"), 0u);
}

TEST(FleetController, IdleFleetIsNeverRepriced) {
  FleetRuntime fleet(parallel_spine_config(true));
  fleet.start();
  fleet.run_until(1_ms);  // explicit horizon: epochs are weak events
  fleet.stop();
  EXPECT_GT(fleet.controller().epochs_completed(), 0u);
  EXPECT_EQ(fleet.controller().reprices(), 0u);
  EXPECT_EQ(fleet.spine().link_cost(0), 1.0);
  EXPECT_EQ(fleet.spine().link_cost(1), 1.0);
  EXPECT_EQ(fleet.controller().last_max_utilization(), 0.0);
}

TEST(FleetController, EpochsAreWeakEventsThatNeverHoldTheClock) {
  FleetRuntime fleet(parallel_spine_config(true));
  fleet.start();
  // No workload: run_until() with no horizon must return immediately
  // instead of ticking forever.
  fleet.run_until();
  EXPECT_TRUE(fleet.sim().idle());
  fleet.stop();
}

TEST(FleetController, StartStopAreIdempotentAndObservable) {
  rsf::sim::Simulator sim;
  telemetry::Registry registry;
  fabric::Interconnect spine(&sim, &registry);
  fabric::SpineLinkParams p;
  p.a = {0, 0};
  p.b = {1, 0};
  spine.add_link(p);

  FleetController ctrl(&sim, &spine, FleetControllerConfig{}, &registry);
  EXPECT_FALSE(ctrl.running());
  ctrl.start();
  ctrl.start();  // no double scheduling
  EXPECT_TRUE(ctrl.running());
  sim.run_until(350_us);
  EXPECT_EQ(ctrl.epochs_completed(), 3u);  // 100 us epochs
  ctrl.stop();
  ctrl.stop();
  EXPECT_FALSE(ctrl.running());
  const auto epochs = ctrl.epochs_completed();
  sim.run_until(1_ms);
  EXPECT_EQ(ctrl.epochs_completed(), epochs);  // tick cancelled
}

TEST(FleetController, CarvedDirectionRepricesAgainstTheAdvertisedResidual) {
  // The same modest shared traffic, with and without a 60% carve on
  // the direction. Uncarved, utilisation stays inside the repricing
  // hysteresis and the link keeps its base cost. Carved, the shared
  // traffic only sees the 40% residual and the carve itself is
  // spoken-for capacity — the decision flips and the link reprices.
  // (The old controller priced the nameplate rate and kept the hot
  // reserved link looking cheap.)
  struct Outcome {
    double cost = 0;
    std::uint64_t reprices = 0;
    double residual_gbps = 0;
  };
  auto run = [](bool carve) {
    rsf::sim::Simulator sim;
    telemetry::Registry registry;
    fabric::Interconnect spine(&sim, &registry);
    fabric::SpineLinkParams p;
    p.a = {0, 0};
    p.b = {1, 0};
    p.rate = phy::DataRate::gbps(10);
    p.latency = SimTime::zero();
    const auto link = spine.add_link(p);
    if (carve) EXPECT_TRUE(spine.reserve(0, 1, 0.6).has_value());
    // Defaults: 100 us epoch, base 1, w_u 8, epsilon 0.5.
    FleetController ctrl(&sim, &spine, FleetControllerConfig{}, &registry);
    ctrl.start();
    // 2 x 1000 B at t=0: 1.6 us of nameplate serialization in a
    // 100 us epoch. Even at the carved direction's residual rate the
    // raw busy fraction is only 4% — the nameplate-blind cost
    // (1 + 8 x 0.04 = 1.32) stays inside the 0.5 hysteresis, so the
    // old controller left the carved link at base cost either way.
    for (int i = 0; i < 2; ++i) {
      spine.send_packet(link, 0, DataSize::bytes(1000), nullptr);
    }
    sim.run_until(150_us);  // one repricing tick
    ctrl.stop();
    return Outcome{spine.link_cost(link), ctrl.reprices(),
                   spine.residual_rate(link, 0).gbps_value()};
  };
  const Outcome uncarved = run(false);
  EXPECT_EQ(uncarved.reprices, 0u);
  EXPECT_EQ(uncarved.cost, 1.0);
  EXPECT_DOUBLE_EQ(uncarved.residual_gbps, 10.0);
  const Outcome carved = run(true);
  EXPECT_DOUBLE_EQ(carved.residual_gbps, 4.0);  // the advertised residual
  EXPECT_GE(carved.reprices, 1u);
  // util = 0.04 x 0.4 + 0.6 carved: cost = 1 + 8 x 0.616.
  EXPECT_GT(carved.cost, 5.0);
}

TEST(FleetController, DemandDecayForgetsAncientHeatInThePromotionRanking) {
  // Pair (0,1) had a massive burst eleven epochs ago and now trickles
  // at just-hot rate; pair (2,3) is genuinely hot right now. Both
  // clear the promote streak at the same tick and compete for the one
  // allowed carve. The cumulative ranking (decay off) hands it to the
  // ancient pair; with a one-epoch half-life the currently hot pair
  // wins.
  auto promoted_new_pair = [](double half_life) {
    rsf::sim::Simulator sim;
    telemetry::Registry registry;
    fabric::Interconnect spine(&sim, &registry);
    fabric::SpineLinkParams p;
    p.a = {0, 0};
    p.b = {1, 0};
    spine.add_link(p);
    p.a = {2, 0};
    p.b = {3, 0};
    spine.add_link(p);
    FleetControllerConfig cfg;
    cfg.epoch = 100_us;
    cfg.demand_half_life_epochs = half_life;
    cfg.reservations.enable = true;
    cfg.reservations.fraction = 0.4;
    cfg.reservations.hot_bytes_per_epoch = 1000;
    cfg.reservations.idle_bytes_per_epoch = 10;
    cfg.reservations.promote_after = 2;
    cfg.reservations.demote_after = 100;
    cfg.reservations.max_reservations = 1;
    FleetController ctrl(&sim, &spine, cfg, &registry);
    std::uint64_t& old_hot = spine.pair_demand_slot(0, 1);
    std::uint64_t& new_hot = spine.pair_demand_slot(2, 3);
    // Epoch 1: the ancient burst. Epochs 2-9: silence (the old pair's
    // streak resets; with decay on, its score halves every epoch).
    sim.schedule_at(50_us, [&] { old_hot += 10'000'000; });
    // Epochs 10 and 11: the old pair trickles just above the hot
    // threshold while the new pair runs genuinely hot — both reach
    // streak 2 at the epoch-11 tick.
    for (const auto t : {950_us, 1050_us}) {
      sim.schedule_at(t, [&] {
        old_hot += 2'000;
        new_hot += 500'000;
      });
    }
    ctrl.start();
    sim.run_until(1150_us);
    ctrl.stop();
    EXPECT_EQ(ctrl.promotions(), 1u);  // exactly one carve to hand out
    const bool new_pair = spine.find_reservation(2, 3).has_value();
    EXPECT_NE(new_pair, spine.find_reservation(0, 1).has_value());
    return new_pair;
  };
  // Decay off reproduces the cumulative ranking: ancient heat wins.
  EXPECT_FALSE(promoted_new_pair(0.0));
  // With a one-epoch half-life the pair that is hot *now* wins.
  EXPECT_TRUE(promoted_new_pair(1.0));
}

TEST(FleetController, RejectsBadConstruction) {
  rsf::sim::Simulator sim;
  telemetry::Registry registry;
  fabric::Interconnect spine(&sim, &registry);
  EXPECT_THROW(FleetController(nullptr, &spine), std::invalid_argument);
  EXPECT_THROW(FleetController(&sim, nullptr), std::invalid_argument);
  FleetControllerConfig bad_epoch;
  bad_epoch.epoch = SimTime::zero();
  EXPECT_THROW(FleetController(&sim, &spine, bad_epoch), std::invalid_argument);
  FleetControllerConfig bad_half_life;
  bad_half_life.demand_half_life_epochs = -1.0;
  EXPECT_THROW(FleetController(&sim, &spine, bad_half_life), std::invalid_argument);
  // Without a registry the controller owns a private one (unit-test
  // convenience, mirroring Network and CrcController).
  FleetController own(&sim, &spine);
  EXPECT_EQ(own.counters().get("fleet.epochs"), 0u);
}

}  // namespace
}  // namespace rsf
