// FleetController: the spine-aware control loop. Repricing must shift
// packetized traffic off a hot spine link onto a parallel one, idle
// fleets must not be repriced, epochs must be weak events (they never
// keep the simulation alive), and controller runs must stay
// deterministic.
#include "runtime/fleet_controller.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "runtime/fleet.hpp"

namespace rsf {
namespace {

using phy::DataSize;
using rsf::sim::SimTime;
using runtime::FleetConfig;
using runtime::FleetController;
using runtime::FleetControllerConfig;
using runtime::FleetRuntime;
using runtime::RackShape;
using runtime::RackSpec;
using runtime::RuntimeConfig;
using runtime::SpineSpec;
using namespace rsf::sim::literals;

RuntimeConfig grid_config() {
  RuntimeConfig cfg;
  cfg.shape = RackShape::kGrid;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  cfg.enable_crc = false;  // isolate the fleet loop from rack control
  return cfg;
}

/// Two racks joined by two parallel spine links. The links are slow
/// (10 Gb/s) so sustained flows back their FIFOs up and the controller
/// sees real heat.
FleetConfig parallel_spine_config(bool with_controller) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  for (int i = 0; i < 2; ++i) {
    SpineSpec s;
    s.rack_a = 0;
    s.rack_b = 1;
    s.rate = phy::DataRate::gbps(10);
    fc.spine.push_back(s);
  }
  fc.enable_controller = with_controller;
  fc.controller.epoch = 20_us;
  return fc;
}

void run_hot_flow(FleetRuntime& fleet) {
  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 2, 2);
  spec.size = DataSize::megabytes(1);  // ~1000 packets, ~800 us on 10G
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.start();
  fleet.run_until();
  fleet.stop();
  fleet.run_until();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->failed);
}

TEST(FleetController, RepricingShiftsTrafficOffTheHotSpineLink) {
  // Without the controller every packet takes link 0 (lowest-id tie).
  FleetRuntime cold(parallel_spine_config(false));
  run_hot_flow(cold);
  EXPECT_GT(cold.spine().link_packets(0, 0), 0u);
  EXPECT_EQ(cold.spine().link_packets(1, 0), 0u);

  // With it, link 0 heats up, gets repriced, and later packets re-plan
  // onto link 1: both parallel links end up carrying traffic.
  FleetRuntime hot(parallel_spine_config(true));
  run_hot_flow(hot);
  EXPECT_GT(hot.controller().epochs_completed(), 0u);
  EXPECT_GT(hot.controller().reprices(), 0u);
  const auto& c = hot.spine().counters();
  EXPECT_GT(c.get("spine.link0.packets"), 0u);
  EXPECT_GT(c.get("spine.link1.packets"), 0u);
  EXPECT_GT(c.get("spine.reprices"), 0u);
  EXPECT_GT(c.get("spine.route_cache_misses"), 1u);  // re-planned post-bump
  // The controller observed real utilisation on the hot link.
  EXPECT_GT(hot.controller().utilization_series().max_value(), 0.0);
  // The fleet registry carries the controller's instruments.
  EXPECT_GT(hot.metrics().find_counters("fleet")->get("fleet.epochs"), 0u);
}

TEST(FleetController, IdleFleetIsNeverRepriced) {
  FleetRuntime fleet(parallel_spine_config(true));
  fleet.start();
  fleet.run_until(1_ms);  // explicit horizon: epochs are weak events
  fleet.stop();
  EXPECT_GT(fleet.controller().epochs_completed(), 0u);
  EXPECT_EQ(fleet.controller().reprices(), 0u);
  EXPECT_EQ(fleet.spine().link_cost(0), 1.0);
  EXPECT_EQ(fleet.spine().link_cost(1), 1.0);
  EXPECT_EQ(fleet.controller().last_max_utilization(), 0.0);
}

TEST(FleetController, EpochsAreWeakEventsThatNeverHoldTheClock) {
  FleetRuntime fleet(parallel_spine_config(true));
  fleet.start();
  // No workload: run_until() with no horizon must return immediately
  // instead of ticking forever.
  fleet.run_until();
  EXPECT_TRUE(fleet.sim().idle());
  fleet.stop();
}

TEST(FleetController, StartStopAreIdempotentAndObservable) {
  rsf::sim::Simulator sim;
  telemetry::Registry registry;
  fabric::Interconnect spine(&sim, &registry);
  fabric::SpineLinkParams p;
  p.a = {0, 0};
  p.b = {1, 0};
  spine.add_link(p);

  FleetController ctrl(&sim, &spine, FleetControllerConfig{}, &registry);
  EXPECT_FALSE(ctrl.running());
  ctrl.start();
  ctrl.start();  // no double scheduling
  EXPECT_TRUE(ctrl.running());
  sim.run_until(350_us);
  EXPECT_EQ(ctrl.epochs_completed(), 3u);  // 100 us epochs
  ctrl.stop();
  ctrl.stop();
  EXPECT_FALSE(ctrl.running());
  const auto epochs = ctrl.epochs_completed();
  sim.run_until(1_ms);
  EXPECT_EQ(ctrl.epochs_completed(), epochs);  // tick cancelled
}

TEST(FleetController, RejectsBadConstruction) {
  rsf::sim::Simulator sim;
  telemetry::Registry registry;
  fabric::Interconnect spine(&sim, &registry);
  EXPECT_THROW(FleetController(nullptr, &spine), std::invalid_argument);
  EXPECT_THROW(FleetController(&sim, nullptr), std::invalid_argument);
  FleetControllerConfig bad_epoch;
  bad_epoch.epoch = SimTime::zero();
  EXPECT_THROW(FleetController(&sim, &spine, bad_epoch), std::invalid_argument);
  // Without a registry the controller owns a private one (unit-test
  // convenience, mirroring Network and CrcController).
  FleetController own(&sim, &spine);
  EXPECT_EQ(own.counters().get("fleet.epochs"), 0u);
}

}  // namespace
}  // namespace rsf
