// Property sweep: the determinism contract at fleet scope, stated as
// a property over seeds rather than a hand-picked scenario. For every
// seed, a run under the conservative-PDES drive (workers = 4) must
// produce the byte-identical metrics table of the serial oracle
// (workers = 1) — same packets, same retries, same controller
// decisions, same counter values, across both scenario families that
// stress the engine hardest: the chaos timeline (correlated failures,
// flaps, loss, carve policy) and the slotted transport (calendar
// bookings, expiry, multipath splits, weak flap events). The ctest
// label `property` runs this suite on its own CI leg.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "phy/units.hpp"
#include "runtime/fleet.hpp"
#include "workload/chaos.hpp"
#include "workload/slotted.hpp"

namespace rsf {
namespace {

constexpr std::uint64_t kSeeds = 16;
constexpr int kParallelWorkers = 4;

TEST(FleetPropertySweep, ChaosRunsAreByteIdenticalAcrossWorkerCounts) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto run = [seed](int workers) {
      workload::ChaosScenarioConfig cfg;
      cfg.seed = seed;
      cfg.workers = workers;
      cfg.loss_prob = 0.01;
      cfg.hot_bytes = phy::DataSize::kilobytes(48);
      cfg.random.enable = true;
      cfg.random.cuts = 2;
      cfg.random.flap_cycles = 1;
      workload::ChaosScenario scenario(cfg);
      const workload::ChaosScenarioResult r = scenario.run();
      // Every run must hold the invariant pair on its own before the
      // cross-worker diff means anything.
      EXPECT_TRUE(r.conservation_ok) << "seed " << seed << " workers " << workers;
      EXPECT_TRUE(r.completed_before_horizon)
          << "seed " << seed << " workers " << workers;
      return scenario.fleet().metrics_table().to_string();
    };
    EXPECT_EQ(run(1), run(kParallelWorkers)) << "chaos seed " << seed;
  }
}

TEST(FleetPropertySweep, SlottedRunsAreByteIdenticalAcrossWorkerCounts) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    // Cycle the arms so the sweep covers steady slots, per-wave
    // expiry/re-promotion, and weak-event flap preemption.
    const auto arm = static_cast<workload::SlottedArm>(seed % 3);
    auto run = [seed, arm](int workers) {
      workload::SlottedScenarioConfig cfg;
      cfg.arm = arm;
      cfg.regime = workload::SlottedRegime::kSlotted;
      cfg.loss_prob = 0.005;
      cfg.seed = seed;
      cfg.workers = workers;
      cfg.hot_bytes = phy::DataSize::kilobytes(48);
      workload::SlottedFleetScenario scenario(cfg);
      const workload::SlottedScenarioResult r = scenario.run();
      EXPECT_GT(r.slot_reservations, 0u) << "seed " << seed << " workers " << workers;
      return scenario.fleet().metrics_table().to_string();
    };
    EXPECT_EQ(run(1), run(kParallelWorkers)) << "slotted seed " << seed;
  }
}

}  // namespace
}  // namespace rsf
