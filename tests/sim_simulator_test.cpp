#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rsf::sim {
namespace {

using namespace rsf::sim::literals;

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsSingleEventAtItsTime) {
  Simulator sim;
  SimTime fired_at = SimTime::zero();
  sim.schedule_at(10_ns, [&] { fired_at = sim.now(); });
  EXPECT_EQ(sim.run_until(), 1u);
  EXPECT_EQ(fired_at, 10_ns);
  EXPECT_EQ(sim.now(), 10_ns);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ns, [&] { order.push_back(3); });
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime inner_fired = SimTime::zero();
  sim.schedule_at(10_ns, [&] {
    sim.schedule_after(5_ns, [&] { inner_fired = sim.now(); });
  });
  sim.run_until();
  EXPECT_EQ(inner_fired, 15_ns);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10_ns, [] {});
  sim.run_until();
  EXPECT_THROW(sim.schedule_at(5_ns, [] {}), std::logic_error);
}

TEST(Simulator, EmptyHandlerThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1_ns, EventHandler{}), std::invalid_argument);
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(100_ns, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(50_ns), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10_ns);  // clock stays at last event, horizon not reached by idle
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run_until(100_ns), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(50_ns, [&] { ++fired; });
  sim.run_until(50_ns);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockToHorizonWhenIdle) {
  Simulator sim;
  sim.run_until(1_us);
  EXPECT_EQ(sim.now(), 1_us);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(10_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10_ns, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10_ns, [] {});
  sim.run_until();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEventId));
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulator, CancelledEventsDontBlockHorizon) {
  Simulator sim;
  int fired = 0;
  const EventId early = sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(100_ns, [&] { ++fired; });
  sim.cancel(early);
  // Horizon between the tombstone and the live event: nothing fires.
  EXPECT_EQ(sim.run_until(50_ns), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunEventsBoundsExecution) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(SimTime::nanoseconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending(), 2u);
}

TEST(Simulator, SelfReschedulingEventTerminatesWithHorizon) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_after(10_ns, tick);
  };
  sim.schedule_at(SimTime::zero(), tick);
  sim.run_until(95_ns);
  EXPECT_EQ(count, 10);  // t = 0,10,...,90
}

TEST(Simulator, ExecutedCounterAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(SimTime::nanoseconds(i + 1), [] {});
  sim.run_until();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, FastForwardRequiresIdle) {
  Simulator sim;
  sim.schedule_at(10_ns, [] {});
  EXPECT_THROW(sim.fast_forward_to(1_us), std::logic_error);
  sim.run_until();
  sim.fast_forward_to(1_us);
  EXPECT_EQ(sim.now(), 1_us);
  EXPECT_THROW(sim.fast_forward_to(1_ns), std::logic_error);
}

TEST(Simulator, HandlerSchedulingAtCurrentInstantRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(10_ns, [&] { sim.schedule_at(sim.now(), [&] { ran = true; }); });
  sim.run_until();
  EXPECT_TRUE(ran);
}

TEST(Simulator, WeakEventsDoNotKeepSimulationAlive) {
  Simulator sim;
  int weak_fired = 0;
  // A self-rescheduling weak ticker (like a controller epoch).
  std::function<void()> tick = [&] {
    ++weak_fired;
    sim.schedule_weak_after(10_ns, tick);
  };
  sim.schedule_weak_at(0_ns, tick);
  int strong_fired = 0;
  sim.schedule_at(35_ns, [&] { ++strong_fired; });
  // Unbounded run terminates once only the ticker remains; the ticker
  // ran while the strong event kept the simulation alive.
  sim.run_until();
  EXPECT_EQ(strong_fired, 1);
  EXPECT_EQ(weak_fired, 4);  // t = 0, 10, 20, 30
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending_weak(), 1u);  // next tick still queued
}

TEST(Simulator, WeakEventsRunUnderFiniteHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_weak_at(10_ns, [&] { ++fired; });
  sim.run_until(20_ns);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_ns);
}

TEST(Simulator, OnlyWeakEventsMeansImmediateReturn) {
  Simulator sim;
  int fired = 0;
  sim.schedule_weak_at(10_ns, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelWeakEvent) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_weak_at(10_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run_until(1_us);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, WeakAndStrongInterleaveInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_weak_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.schedule_weak_at(15_ns, [&] { order.push_back(3); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, FastForwardBlockedByWeakEvents) {
  Simulator sim;
  sim.schedule_weak_at(10_ns, [] {});
  // Jumping past a queued weak event would let it fire "in the past".
  EXPECT_THROW(sim.fast_forward_to(1_us), std::logic_error);
}

TEST(Simulator, ManyEventsStaySorted) {
  Simulator sim;
  SimTime last = SimTime::zero();
  bool monotonic = true;
  // Deliberately adversarial insertion order.
  for (int i = 999; i >= 0; --i) {
    sim.schedule_at(SimTime::nanoseconds((i * 7919) % 1000 + 1), [&] {
      if (sim.now() < last) monotonic = false;
      last = sim.now();
    });
  }
  EXPECT_EQ(sim.run_until(), 1000u);
  EXPECT_TRUE(monotonic);
}

}  // namespace
}  // namespace rsf::sim
