#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rsf::sim {

/// Test seam: forces a liveness slot's generation counter so the
/// EventId generation wrap is coverable without 2^32 schedule/cancel
/// cycles per slot.
struct SimulatorTestPeer {
  static void set_slot_generation(Simulator& sim, std::uint32_t slot,
                                  std::uint32_t generation) {
    sim.slots_.set_generation_for_test(slot, generation);
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>((id >> 32) - 1);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  }
};

namespace {

using namespace rsf::sim::literals;

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsSingleEventAtItsTime) {
  Simulator sim;
  SimTime fired_at = SimTime::zero();
  sim.schedule_at(10_ns, [&] { fired_at = sim.now(); });
  EXPECT_EQ(sim.run_until(), 1u);
  EXPECT_EQ(fired_at, 10_ns);
  EXPECT_EQ(sim.now(), 10_ns);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30_ns, [&] { order.push_back(3); });
  sim.schedule_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SimultaneousEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5_ns, [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime inner_fired = SimTime::zero();
  sim.schedule_at(10_ns, [&] {
    sim.schedule_after(5_ns, [&] { inner_fired = sim.now(); });
  });
  sim.run_until();
  EXPECT_EQ(inner_fired, 15_ns);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10_ns, [] {});
  sim.run_until();
  EXPECT_THROW(sim.schedule_at(5_ns, [] {}), std::logic_error);
}

TEST(Simulator, EmptyHandlerThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1_ns, EventHandler{}), std::invalid_argument);
}

TEST(Simulator, RunUntilHorizonStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(100_ns, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(50_ns), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 10_ns);  // clock stays at last event, horizon not reached by idle
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run_until(100_ns), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilInclusiveOfBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(50_ns, [&] { ++fired; });
  sim.run_until(50_ns);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilAdvancesClockToHorizonWhenIdle) {
  Simulator sim;
  sim.run_until(1_us);
  EXPECT_EQ(sim.now(), 1_us);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(10_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10_ns, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10_ns, [] {});
  sim.run_until();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEventId));
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulator, CancelledEventsDontBlockHorizon) {
  Simulator sim;
  int fired = 0;
  const EventId early = sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(100_ns, [&] { ++fired; });
  sim.cancel(early);
  // Horizon between the tombstone and the live event: nothing fires.
  EXPECT_EQ(sim.run_until(50_ns), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunEventsBoundsExecution) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(SimTime::nanoseconds(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.pending(), 2u);
}

TEST(Simulator, SelfReschedulingEventTerminatesWithHorizon) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_after(10_ns, tick);
  };
  sim.schedule_at(SimTime::zero(), tick);
  sim.run_until(95_ns);
  EXPECT_EQ(count, 10);  // t = 0,10,...,90
}

TEST(Simulator, ExecutedCounterAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(SimTime::nanoseconds(i + 1), [] {});
  sim.run_until();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, FastForwardRequiresIdle) {
  Simulator sim;
  sim.schedule_at(10_ns, [] {});
  EXPECT_THROW(sim.fast_forward_to(1_us), std::logic_error);
  sim.run_until();
  sim.fast_forward_to(1_us);
  EXPECT_EQ(sim.now(), 1_us);
  EXPECT_THROW(sim.fast_forward_to(1_ns), std::logic_error);
}

TEST(Simulator, HandlerSchedulingAtCurrentInstantRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(10_ns, [&] { sim.schedule_at(sim.now(), [&] { ran = true; }); });
  sim.run_until();
  EXPECT_TRUE(ran);
}

TEST(Simulator, WeakEventsDoNotKeepSimulationAlive) {
  Simulator sim;
  int weak_fired = 0;
  // A self-rescheduling weak ticker (like a controller epoch).
  std::function<void()> tick = [&] {
    ++weak_fired;
    sim.schedule_weak_after(10_ns, tick);
  };
  sim.schedule_weak_at(0_ns, tick);
  int strong_fired = 0;
  sim.schedule_at(35_ns, [&] { ++strong_fired; });
  // Unbounded run terminates once only the ticker remains; the ticker
  // ran while the strong event kept the simulation alive.
  sim.run_until();
  EXPECT_EQ(strong_fired, 1);
  EXPECT_EQ(weak_fired, 4);  // t = 0, 10, 20, 30
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending_weak(), 1u);  // next tick still queued
}

TEST(Simulator, WeakEventsRunUnderFiniteHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_weak_at(10_ns, [&] { ++fired; });
  sim.run_until(20_ns);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20_ns);
}

TEST(Simulator, OnlyWeakEventsMeansImmediateReturn) {
  Simulator sim;
  int fired = 0;
  sim.schedule_weak_at(10_ns, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelWeakEvent) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_weak_at(10_ns, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run_until(1_us);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, WeakAndStrongInterleaveInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_weak_at(10_ns, [&] { order.push_back(1); });
  sim.schedule_at(20_ns, [&] { order.push_back(2); });
  sim.schedule_weak_at(15_ns, [&] { order.push_back(3); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, FastForwardBlockedByWeakEvents) {
  Simulator sim;
  sim.schedule_weak_at(10_ns, [] {});
  // Jumping past a queued weak event would let it fire "in the past".
  EXPECT_THROW(sim.fast_forward_to(1_us), std::logic_error);
}

TEST(Simulator, ManyEventsStaySorted) {
  Simulator sim;
  SimTime last = SimTime::zero();
  bool monotonic = true;
  // Deliberately adversarial insertion order.
  for (int i = 999; i >= 0; --i) {
    sim.schedule_at(SimTime::nanoseconds((i * 7919) % 1000 + 1), [&] {
      if (sim.now() < last) monotonic = false;
      last = sim.now();
    });
  }
  EXPECT_EQ(sim.run_until(), 1000u);
  EXPECT_TRUE(monotonic);
}

// A handler that schedules more work at the *same* timestamp extends
// the drain with a follow-on batch at that instant: the new events run
// after everything already pending there, still in insertion order.
TEST(Simulator, SameTimestampFifoAcrossBatchBoundaries) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5_ns, [&] {
    order.push_back(0);
    // Scheduled mid-batch for the batch's own timestamp: these form a
    // second batch at 5 ns and must fire after tags 1 and 2.
    sim.schedule_at(5_ns, [&] { order.push_back(3); });
    sim.schedule_at(5_ns, [&] {
      order.push_back(4);
      // And a third batch, from inside the second.
      sim.schedule_at(5_ns, [&] { order.push_back(5); });
    });
  });
  sim.schedule_at(5_ns, [&] { order.push_back(1); });
  sim.schedule_at(5_ns, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run_until(), 6u);
  EXPECT_EQ(sim.now(), 5_ns);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

// Cancelling a later member of the batch being drained must take
// effect even though the victim was already extracted from the queue.
TEST(Simulator, CancelDuringBatchSuppressesLaterMember) {
  Simulator sim;
  std::vector<int> order;
  EventId victim = kInvalidEventId;
  sim.schedule_at(5_ns, [&] {
    order.push_back(0);
    EXPECT_TRUE(sim.cancel(victim));
  });
  sim.schedule_at(5_ns, [&] { order.push_back(1); });
  victim = sim.schedule_at(5_ns, [&] { order.push_back(2); });
  sim.schedule_at(5_ns, [&] { order.push_back(3); });
  EXPECT_EQ(sim.run_until(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(sim.executed(), 3u);  // the cancelled member never counts
}

// A handler cancelling its own id observes false: the slot was
// recycled before invocation.
TEST(Simulator, HandlerCancellingItselfSeesFalse) {
  Simulator sim;
  EventId self = kInvalidEventId;
  bool self_cancel = true;
  self = sim.schedule_at(5_ns, [&] { self_cancel = sim.cancel(self); });
  sim.run_until();
  EXPECT_FALSE(self_cancel);
}

// Generation wrap: a slot whose generation counter wraps past the
// 32-bit limit keeps minting ids that stale correctly — an id from
// before the wrap can never cancel the slot's post-wrap occupant.
TEST(Simulator, GenerationWrapKeepsStaleIdsStale) {
  Simulator sim;
  // Claim and release once so slot 0 exists, then pin its generation
  // to the wrap boundary.
  const EventId warm = sim.schedule_at(1_ns, [] {});
  const std::uint32_t slot = SimulatorTestPeer::slot_of(warm);
  EXPECT_TRUE(sim.cancel(warm));
  SimulatorTestPeer::set_slot_generation(sim, slot, 0xFFFFFFFFu);

  // The LIFO free list hands the same slot back at the pinned
  // generation.
  const EventId pre_wrap = sim.schedule_at(1_ns, [] {});
  ASSERT_EQ(SimulatorTestPeer::slot_of(pre_wrap), slot);
  EXPECT_EQ(SimulatorTestPeer::generation_of(pre_wrap), 0xFFFFFFFFu);
  EXPECT_TRUE(sim.cancel(pre_wrap));  // recycle wraps the counter to 0

  // One more claim/cancel moves the slot to generation 1: `warm` was
  // minted at generation 0, and an exact generation collision after a
  // full wrap is the one alias the scheme cannot catch (documented in
  // SlotPool) — the occupant under test must sit at a fresh generation.
  const EventId mid = sim.schedule_at(1_ns, [] {});
  ASSERT_EQ(SimulatorTestPeer::slot_of(mid), slot);
  EXPECT_EQ(SimulatorTestPeer::generation_of(mid), 0u);
  EXPECT_TRUE(sim.cancel(mid));

  bool fired = false;
  const EventId post_wrap = sim.schedule_at(1_ns, [&] { fired = true; });
  ASSERT_EQ(SimulatorTestPeer::slot_of(post_wrap), slot);
  EXPECT_EQ(SimulatorTestPeer::generation_of(post_wrap), 1u);

  // Every pre-wrap id is stale; none may touch the new occupant.
  EXPECT_FALSE(sim.cancel(pre_wrap));
  EXPECT_FALSE(sim.cancel(warm));
  EXPECT_FALSE(sim.cancel(mid));
  EXPECT_EQ(sim.run_until(), 1u);
  EXPECT_TRUE(fired);
}

// Events beyond the calendar window land in the overflow list and
// migrate into the ring when the window re-anchors past them; their
// order and times are unaffected.
TEST(Simulator, FarFutureEventsMigrateFromOverflow) {
  Simulator sim;
  std::vector<int> order;
  std::vector<SimTime> at;
  // Far beyond the ~4.2 us window, deliberately out of order, with a
  // same-time pair to check seq ordering survives migration.
  sim.schedule_at(SimTime::milliseconds(2), [&] {
    order.push_back(3);
    at.push_back(sim.now());
  });
  sim.schedule_at(SimTime::milliseconds(1), [&] {
    order.push_back(1);
    at.push_back(sim.now());
  });
  sim.schedule_at(SimTime::milliseconds(1), [&] {
    order.push_back(2);
    at.push_back(sim.now());
  });
  sim.schedule_at(10_ns, [&] {
    order.push_back(0);
    at.push_back(sim.now());
  });
  EXPECT_EQ(sim.run_until(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(at[0], 10_ns);
  EXPECT_EQ(at[1], SimTime::milliseconds(1));
  EXPECT_EQ(at[2], SimTime::milliseconds(1));
  EXPECT_EQ(at[3], SimTime::milliseconds(2));
}

// A cancelled far-future event is a tombstone in the overflow list: it
// neither fires nor blocks the idle horizon.
TEST(Simulator, CancelledOverflowEventLeavesNoTrace) {
  Simulator sim;
  bool fired = false;
  const EventId id =
      sim.schedule_at(SimTime::milliseconds(5), [&] { fired = true; });
  bool near_fired = false;
  sim.schedule_at(10_ns, [&] { near_fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.run_until(SimTime::milliseconds(10)), 1u);
  EXPECT_TRUE(near_fired);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), SimTime::milliseconds(10));
}

// Randomized oracle: the calendar kernel against a straightforward
// sorted-reference kernel, over a seeded op mix of schedules (near,
// far, duplicate-time, weak), cancels (live and stale), and bounded
// runs. Execution order, cancel results, clocks, and the executed
// counter must agree exactly.
TEST(Simulator, RandomizedOracleAgainstSortedReference) {
  struct RefEvent {
    std::int64_t time_ps;
    std::uint64_t seq;
    int tag;
    bool weak;
    bool alive;
  };
  struct RefKernel {
    std::vector<RefEvent> events;
    std::int64_t now_ps = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;

    std::size_t schedule(std::int64_t t, int tag, bool weak) {
      events.push_back(RefEvent{t, next_seq++, tag, weak, true});
      return events.size() - 1;
    }
    bool cancel(std::size_t ref_id) {
      if (!events[ref_id].alive) return false;
      events[ref_id].alive = false;
      return true;
    }
    bool strong_pending() const {
      return std::any_of(events.begin(), events.end(),
                         [](const RefEvent& e) { return e.alive && !e.weak; });
    }
    void run_until(std::int64_t until_ps, std::vector<int>& fired) {
      for (;;) {
        const RefEvent* best = nullptr;
        for (const RefEvent& e : events) {
          if (!e.alive || e.time_ps > until_ps) continue;
          if (best == nullptr || e.time_ps < best->time_ps ||
              (e.time_ps == best->time_ps && e.seq < best->seq)) {
            best = &e;
          }
        }
        if (best == nullptr) break;
        RefEvent& e = events[static_cast<std::size_t>(best - events.data())];
        now_ps = e.time_ps;
        e.alive = false;
        ++executed;
        fired.push_back(e.tag);
      }
      if (!strong_pending() && now_ps < until_ps) now_ps = until_ps;
    }
  };

  Simulator sim;
  RefKernel ref;
  std::vector<int> sim_fired;
  std::vector<int> ref_fired;
  std::vector<std::pair<EventId, std::size_t>> ids;  // (sim id, ref id)

  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto rand_u32 = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<std::uint32_t>(rng >> 32);
  };

  int next_tag = 0;
  for (int round = 0; round < 400; ++round) {
    const std::uint32_t op = rand_u32() % 10;
    if (op < 6) {
      // Schedule: delays mix same-instant (0), in-window, and far
      // beyond the ~4.2 us calendar window to force overflow traffic.
      static constexpr std::int64_t kDelaysPs[] = {0, 100, 4096, 50000,
                                                   10000000, 60000000};
      const std::int64_t delay = kDelaysPs[rand_u32() % 6];
      const SimTime when = sim.now() + SimTime::picoseconds(delay);
      const bool weak = rand_u32() % 4 == 0;
      const int tag = next_tag++;
      EventId id;
      if (weak) {
        id = sim.schedule_weak_at(when, [&sim_fired, tag] { sim_fired.push_back(tag); });
      } else {
        id = sim.schedule_at(when, [&sim_fired, tag] { sim_fired.push_back(tag); });
      }
      ids.emplace_back(id, ref.schedule(when.ps(), tag, weak));
    } else if (op < 8 && !ids.empty()) {
      // Cancel a random id — may be live, fired, or already cancelled.
      const auto& [sim_id, ref_id] = ids[rand_u32() % ids.size()];
      EXPECT_EQ(sim.cancel(sim_id), ref.cancel(ref_id));
    } else {
      const SimTime until = sim.now() + SimTime::nanoseconds(rand_u32() % 20000);
      sim.run_until(until);
      ref.run_until(until.ps(), ref_fired);
      ASSERT_EQ(sim.now().ps(), ref.now_ps) << "round " << round;
      ASSERT_EQ(sim_fired, ref_fired) << "round " << round;
    }
  }
  sim.run_until(sim.now() + SimTime::seconds(1));
  ref.run_until(sim.now().ps(), ref_fired);
  EXPECT_EQ(sim_fired, ref_fired);
  EXPECT_EQ(sim.executed(), ref.executed);
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace rsf::sim
