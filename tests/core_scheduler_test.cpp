#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "fabric/builders.hpp"

namespace rsf::core {
namespace {

using phy::DataSize;
using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct SchedFixture : ::testing::Test {
  Simulator sim;
  fabric::Rack rack;
  std::optional<CircuitScheduler> sched;

  SchedFixture() {
    fabric::RackParams p;
    p.width = 6;
    p.height = 1;  // a chain: long paths, easy circuit reasoning
    rack = fabric::build_grid(&sim, p);
    sched.emplace(&sim, rack.engine.get(), rack.plant.get(), rack.topology.get(),
                  rack.router.get(), rack.network.get());
  }

  fabric::FlowSpec flow(phy::NodeId src, phy::NodeId dst, DataSize size,
                        fabric::FlowId id = 1) {
    fabric::FlowSpec spec;
    spec.id = id;
    spec.src = src;
    spec.dst = dst;
    spec.size = size;
    spec.packet_size = DataSize::bytes(1024);
    return spec;
  }

  /// Circuits pay off when the packet path is contended (a dedicated
  /// lane beats a shared pair): saturate the chain with background
  /// traffic and let utilisation build up.
  void saturate_path() {
    for (fabric::FlowId i = 0; i < 3; ++i) {
      fabric::FlowSpec bg = flow(0, 5, DataSize::megabytes(400), 900 + i);
      rack.network->start_flow(bg, nullptr);
    }
    sim.run_until(sim.now() + 500_us);
  }
};

TEST_F(SchedFixture, DecideSmallFlowStaysOnPacketFabric) {
  const auto d = sched->decide(flow(0, 5, DataSize::kilobytes(16)));
  EXPECT_FALSE(d.use_circuit);
  EXPECT_EQ(d.path_hops, 5);
}

TEST_F(SchedFixture, DecideHugeFlowWantsCircuitUnderLoad) {
  saturate_path();
  const auto d = sched->decide(flow(0, 5, DataSize::megabytes(100)));
  EXPECT_TRUE(d.use_circuit);
  EXPECT_LT(d.est_circuit_completion, d.est_packet_completion);
  ASSERT_TRUE(d.break_even.has_value());
  EXPECT_GT(d.break_even->bit_count(), 0);
}

TEST_F(SchedFixture, DecideUnloadedFabricPrefersPackets) {
  // With two idle lanes on every hop, the shared path out-rates a
  // one-lane dedicated circuit: the scheduler must not reconfigure.
  const auto d = sched->decide(flow(0, 5, DataSize::megabytes(100)));
  EXPECT_FALSE(d.use_circuit);
  EXPECT_GT(d.est_packet_completion, SimTime::zero());
}

TEST_F(SchedFixture, DecideAdjacentPairNeverCircuit) {
  const auto d = sched->decide(flow(0, 1, DataSize::megabytes(100)));
  EXPECT_FALSE(d.use_circuit);
  EXPECT_EQ(d.path_hops, 0);  // no plan
}

TEST_F(SchedFixture, BreakEvenConsistentWithEstimates) {
  saturate_path();
  // At sizes well below the break-even the packet estimate wins; well
  // above, the circuit estimate wins.
  const auto d_big = sched->decide(flow(0, 5, DataSize::megabytes(200)));
  ASSERT_TRUE(d_big.break_even.has_value());
  const auto small = DataSize::bits(d_big.break_even->bit_count() / 4);
  const auto d_small = sched->decide(flow(0, 5, small));
  EXPECT_GT(d_small.est_packet_completion, SimTime::zero());
  EXPECT_LT(d_small.est_packet_completion, d_small.est_circuit_completion);
}

TEST_F(SchedFixture, SmallFlowRunsOnPacketFabric) {
  std::optional<std::pair<bool, bool>> outcome;  // (failed, used_circuit)
  sched->submit(flow(0, 5, DataSize::kilobytes(16)),
                [&](const fabric::FlowResult& r, bool circuit) {
                  outcome = {r.failed, circuit};
                });
  sim.run_until();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->first);
  EXPECT_FALSE(outcome->second);
  EXPECT_EQ(sched->packet_flows(), 1u);
  EXPECT_EQ(sched->circuits_built(), 0u);
}

TEST_F(SchedFixture, LargeFlowBuildsUsesAndTearsDownCircuit) {
  saturate_path();
  std::optional<std::pair<bool, bool>> outcome;
  sched->submit(flow(0, 5, DataSize::megabytes(100)),
                [&](const fabric::FlowResult& r, bool circuit) {
                  outcome = {r.failed, circuit};
                });
  sim.run_until();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->first);
  EXPECT_TRUE(outcome->second);
  EXPECT_EQ(sched->circuits_built(), 1u);
  EXPECT_EQ(sched->circuit_flows(), 1u);
  // After teardown the fabric is fully re-bundled: every link 2 lanes,
  // no bypass joints, plant invariants hold.
  EXPECT_EQ(sched->active_circuits(), 0);
  EXPECT_EQ(rack.plant->total_bypass_joints(), 0);
  for (LinkId id : rack.plant->link_ids()) {
    EXPECT_EQ(rack.plant->link(id).lane_count(), 2);
  }
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(SchedFixture, CircuitBeatsContendedPacketFabricForBulk) {
  // Same bulk flow measured with the scheduler (builds a circuit) and
  // raw on the contended packet fabric.
  const auto size = DataSize::megabytes(100);
  saturate_path();
  std::optional<SimTime> circuit_time;
  sched->submit(flow(0, 5, size, 1), [&](const fabric::FlowResult& r, bool circuit) {
    EXPECT_TRUE(circuit);
    circuit_time = r.completion_time();
  });
  sim.run_until();

  Simulator sim2;
  fabric::RackParams p;
  p.width = 6;
  p.height = 1;
  fabric::Rack rack2 = fabric::build_grid(&sim2, p);
  for (fabric::FlowId i = 0; i < 3; ++i) {
    fabric::FlowSpec bg = flow(0, 5, DataSize::megabytes(400), 900 + i);
    rack2.network->start_flow(bg, nullptr);
  }
  sim2.run_until(500_us);
  std::optional<SimTime> packet_time;
  fabric::FlowSpec spec = flow(0, 5, size, 2);
  rack2.network->start_flow(spec, [&](const fabric::FlowResult& r) {
    packet_time = r.completion_time();
  });
  sim2.run_until();

  ASSERT_TRUE(circuit_time && packet_time);
  // The dedicated lane sidesteps the contention (and pays its own
  // setup time inside the measured completion) yet still wins.
  EXPECT_LT(circuit_time->sec(), packet_time->sec());
}

TEST_F(SchedFixture, ConcurrentCircuitLimitRespected) {
  CircuitSchedulerConfig cfg;
  cfg.max_concurrent_circuits = 1;
  CircuitScheduler limited(&sim, rack.engine.get(), rack.plant.get(), rack.topology.get(),
                           rack.router.get(), rack.network.get(), cfg);
  int circuits = 0;
  int packets = 0;
  auto cb = [&](const fabric::FlowResult&, bool circuit) {
    circuit ? ++circuits : ++packets;
  };
  saturate_path();
  limited.submit(flow(0, 5, DataSize::megabytes(100), 1), cb);
  limited.submit(flow(0, 4, DataSize::megabytes(100), 2), cb);
  sim.run_until();
  EXPECT_EQ(circuits + packets, 2);
  EXPECT_LE(limited.circuits_built(), 2u);
  // The second flow was submitted while the first circuit was active:
  // it must have fallen back (limit 1).
  EXPECT_GE(packets, 1);
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(SchedFixture, FallsBackWhenNoSpareLanes) {
  Simulator sim2;
  fabric::RackParams p;
  p.width = 6;
  p.height = 1;
  p.lanes_per_cable = 1;
  p.lanes_per_link = 1;  // nothing to split
  fabric::Rack thin = fabric::build_grid(&sim2, p);
  CircuitScheduler s(&sim2, thin.engine.get(), thin.plant.get(), thin.topology.get(),
                     thin.router.get(), thin.network.get());
  std::optional<bool> used_circuit;
  s.submit(flow(0, 5, DataSize::megabytes(100)),
           [&](const fabric::FlowResult& r, bool circuit) {
             EXPECT_FALSE(r.failed);
             used_circuit = circuit;
           });
  sim2.run_until();
  ASSERT_TRUE(used_circuit.has_value());
  EXPECT_FALSE(*used_circuit);
}

}  // namespace
}  // namespace rsf::core
