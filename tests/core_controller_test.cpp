#include "core/controller.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include <optional>

#include "fabric/builders.hpp"
#include "phy/ber_profile.hpp"
#include "workload/generator.hpp"

namespace rsf::core {
namespace {

using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct ControllerFixture : ::testing::Test {
  Simulator sim;
  fabric::Rack rack;

  ControllerFixture() {
    fabric::RackParams p;
    p.width = 4;
    p.height = 4;
    rack = fabric::build_grid(&sim, p);
  }

  CrcController make(CrcConfig cfg = {}) {
    return CrcController(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                         rack.router.get(), rack.network.get(), cfg);
  }
};

TEST_F(ControllerFixture, EpochLoopTakesSnapshots) {
  CrcConfig cfg;
  cfg.epoch = 100_us;
  CrcController crc = make(cfg);
  crc.start();
  sim.run_until(1_ms);
  crc.stop();
  EXPECT_GE(crc.epochs_completed(), 9u);
  ASSERT_TRUE(crc.last_snapshot().has_value());
  EXPECT_EQ(crc.last_snapshot()->links.size(), rack.plant->link_count());
  EXPECT_FALSE(crc.power_series().empty());
  EXPECT_FALSE(crc.utilization_series().empty());
}

TEST_F(ControllerFixture, EpochStretchesToRingCirculation) {
  CrcConfig cfg;
  cfg.epoch = 1_ns;  // absurd: shorter than circulation
  CrcController crc = make(cfg);
  EXPECT_GE(crc.config().epoch, (200_ns + 100_ns) * std::int64_t{16});
}

TEST_F(ControllerFixture, StopCancelsTicking) {
  CrcController crc = make();
  crc.start();
  sim.run_until(250_us);
  crc.stop();
  const auto epochs = crc.epochs_completed();
  sim.run_until(2_ms);
  EXPECT_EQ(crc.epochs_completed(), epochs);
  EXPECT_FALSE(crc.running());
}

TEST_F(ControllerFixture, PricesPublishedToRouter) {
  CrcConfig cfg;
  cfg.epoch = 100_us;
  CrcController crc = make(cfg);
  crc.start();
  sim.run_until(300_us);
  // The book has entries and the router consults them (a hot link
  // would repel traffic; here we just verify the plumbing: every ready
  // link has a finite price).
  for (LinkId id : rack.plant->link_ids()) {
    EXPECT_TRUE(std::isfinite(crc.prices().price(id))) << id;
  }
  crc.stop();
}

TEST_F(ControllerFixture, PriceRoutingSteersAroundHotLink) {
  // Saturate the (0,0)-(1,0) link with background flows, then check a
  // probe 0->1 no longer insists on the direct link once priced.
  CrcConfig cfg;
  cfg.epoch = 50_us;
  cfg.weights = PriceWeights::balanced();
  CrcController crc = make(cfg);
  crc.start();

  for (int i = 0; i < 4; ++i) {
    fabric::FlowSpec spec;
    spec.id = static_cast<fabric::FlowId>(100 + i);
    spec.src = rack.node_at(0, 0);
    spec.dst = rack.node_at(1, 0);
    spec.size = phy::DataSize::megabytes(8);
    rack.network->start_flow(spec, nullptr);
  }
  sim.run_until(400_us);
  const LinkId direct = *rack.topology->link_between(rack.node_at(0, 0), rack.node_at(1, 0));
  // The direct link's price must now reflect congestion: compare with
  // an idle link.
  const LinkId idle_link =
      *rack.topology->link_between(rack.node_at(2, 3), rack.node_at(3, 3));
  EXPECT_GT(crc.prices().price(direct), crc.prices().price(idle_link));
  crc.stop();
  sim.run_until();
}

TEST_F(ControllerFixture, AdaptiveFecReactsToBerRamp) {
  CrcConfig cfg;
  cfg.epoch = 100_us;
  cfg.enable_adaptive_fec = true;
  CrcController crc = make(cfg);

  const LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  phy::BerDriver ber(&sim, rack.plant.get(), cable,
                     phy::ramp_ber(1e-12, 1e-4, 200_us, 1_ms), 50_us);
  ber.start();
  crc.start();
  sim.run_until(2_ms);
  ber.stop();
  crc.stop();
  sim.run_until();
  // The controller escalated the victim link's FEC.
  EXPECT_EQ(rack.plant->link(victim).fec().scheme, phy::FecScheme::kRsKp4);
  EXPECT_GT(crc.counters().get("crc.fec_changes"), 0u);
}

TEST_F(ControllerFixture, PowerCapEnforced) {
  CrcConfig cfg;
  cfg.epoch = 100_us;
  cfg.enable_power_manager = true;
  cfg.power.cap_watts = rack.total_power_watts() - 3.0;
  cfg.power.max_ops_per_epoch = 2;
  CrcController crc = make(cfg);
  const double before = rack.plant->total_power_watts();
  crc.start();
  sim.run_until(2_ms);
  crc.stop();
  sim.run_until();
  EXPECT_LT(rack.plant->total_power_watts(), before);
  EXPECT_GT(crc.power_manager().sheds(), 0u);
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(ControllerFixture, RequestGridToTorusCompletes) {
  CrcController crc = make();
  std::optional<TopologyPlanner::Report> report;
  crc.request_grid_to_torus([&](const TopologyPlanner::Report& r) { report = r; });
  sim.run_until();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->rows_closed + report->cols_closed, 8);
  EXPECT_EQ(report->failures, 0);
}

TEST_F(ControllerFixture, AutoTorusTriggersUnderSustainedLoad) {
  CrcConfig cfg;
  cfg.epoch = 100_us;
  cfg.enable_auto_torus = true;
  cfg.torus_util_threshold = 0.3;
  cfg.torus_trigger_epochs = 2;
  CrcController crc = make(cfg);
  crc.start();

  // Saturating all-to-all-ish background load.
  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 20_us;
  gen_cfg.horizon = 3_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(phy::DataSize::kilobytes(256));
  workload::FlowGenerator gen(&sim, rack.network.get(),
                              workload::TrafficMatrix::opposite(16), gen_cfg);
  gen.start();
  sim.run_until(5_ms);
  crc.stop();
  sim.run_until();
  EXPECT_EQ(crc.counters().get("crc.auto_torus_triggered"), 1u);
  EXPECT_GT(crc.counters().get("crc.torus_wraps_created"), 0u);
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(ControllerFixture, AutoTorusDoesNotTriggerWhenIdle) {
  CrcConfig cfg;
  cfg.epoch = 100_us;
  cfg.enable_auto_torus = true;
  CrcController crc = make(cfg);
  crc.start();
  sim.run_until(2_ms);
  crc.stop();
  EXPECT_EQ(crc.counters().get("crc.auto_torus_triggered"), 0u);
}

}  // namespace
}  // namespace rsf::core
