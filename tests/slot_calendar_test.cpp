// SlotCalendar: the admission ledger behind the spine's TDMA slot
// regime. The shape/propose/book/release contract is pinned by small
// property cases (atomic all-or-nothing booking, release returning
// exactly the booked set, generation-stale handles staying inert even
// across the generation wrap), and a 400-round seeded randomized mix
// of book / release / contention probes is checked after every round
// against a brute-force linear-scan reference — per line, a 64-entry
// owner table — including the invariant that makes slotted transport
// collision-free: no two live bookings ever own the same slot of the
// same line-direction.
#include "fabric/slot_calendar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <random>
#include <stdexcept>
#include <vector>

namespace rsf {
namespace {

using fabric::SlotCalendar;
using fabric::SlotMask;
using LineId = SlotCalendar::LineId;

TEST(SlotCalendar, PeriodicMaskShapesAndShapeValidation) {
  EXPECT_EQ(SlotCalendar::periodic_mask(1, 0), ~SlotMask{0});
  EXPECT_EQ(SlotCalendar::periodic_mask(64, 0), SlotMask{1});
  EXPECT_EQ(SlotCalendar::periodic_mask(64, 63), SlotMask{1} << 63);
  SlotMask odd = 0;
  for (int s = 1; s < SlotCalendar::kFrameSlots; s += 2) odd |= SlotMask{1} << s;
  EXPECT_EQ(SlotCalendar::periodic_mask(2, 1), odd);
  // The pattern must tile the frame exactly: a period that does not
  // divide it, and offsets outside [0, period), are caller bugs.
  EXPECT_THROW(SlotCalendar::periodic_mask(3, 0), std::invalid_argument);
  EXPECT_THROW(SlotCalendar::periodic_mask(0, 0), std::invalid_argument);
  EXPECT_THROW(SlotCalendar::periodic_mask(128, 0), std::invalid_argument);
  EXPECT_THROW(SlotCalendar::periodic_mask(2, 2), std::invalid_argument);
  EXPECT_THROW(SlotCalendar::periodic_mask(2, -1), std::invalid_argument);

  SlotCalendar cal;
  EXPECT_THROW(static_cast<void>(cal.propose({1}, 3, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cal.propose({1}, 4, 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(cal.propose({1}, 4, 5)), std::invalid_argument);
}

TEST(SlotCalendar, ProposeScansOffsetsAscendingDeterministically) {
  SlotCalendar cal;
  const SlotMask first = cal.propose({7}, 4, 1);
  EXPECT_EQ(first, SlotCalendar::periodic_mask(4, 0));
  const auto h = cal.book({7}, first);
  ASSERT_TRUE(h.valid());
  // The next proposal on the occupied line takes the next free offset;
  // an untouched line still gets offset 0.
  EXPECT_EQ(cal.propose({7}, 4, 1), SlotCalendar::periodic_mask(4, 1));
  EXPECT_EQ(cal.propose({8}, 4, 1), SlotCalendar::periodic_mask(4, 0));
  // duty > 1 unions the first `duty` free offsets.
  EXPECT_EQ(cal.propose({7}, 4, 2),
            SlotCalendar::periodic_mask(4, 1) | SlotCalendar::periodic_mask(4, 2));
  // Refusal when fewer than duty offsets are free: 4 requested, 3 left.
  EXPECT_EQ(cal.propose({7}, 4, 4), 0u);
}

TEST(SlotCalendar, BookIsAtomicAcrossLines) {
  SlotCalendar cal;
  const auto h = cal.book({2}, SlotCalendar::periodic_mask(2, 0));
  ASSERT_TRUE(h.valid());
  // A booking spanning lines 1..3 with a mask line 2 already holds
  // must refuse outright and leave lines 1 and 3 untouched — a
  // contention overlap on *any* line never leaves a partial claim.
  const auto refused = cal.book({1, 2, 3}, SlotCalendar::periodic_mask(2, 0));
  EXPECT_FALSE(refused.valid());
  EXPECT_EQ(cal.occupancy(1), 0u);
  EXPECT_EQ(cal.occupancy(3), 0u);
  EXPECT_EQ(cal.booking_count(), 1u);
  // propose() routes the span around the contention.
  EXPECT_EQ(cal.propose({1, 2, 3}, 2, 1), SlotCalendar::periodic_mask(2, 1));
}

TEST(SlotCalendar, BookRefusesMalformedRequests) {
  SlotCalendar cal;
  EXPECT_FALSE(cal.book({}, SlotCalendar::periodic_mask(2, 0)).valid());
  EXPECT_FALSE(cal.book({1}, 0).valid());
  EXPECT_FALSE(cal.book({1, 1}, SlotCalendar::periodic_mask(2, 0)).valid());
  EXPECT_EQ(cal.booking_count(), 0u);
  EXPECT_EQ(cal.occupancy(1), 0u);
}

TEST(SlotCalendar, ReleaseReturnsExactlyTheBookedSet) {
  SlotCalendar cal;
  const SlotMask a = SlotCalendar::periodic_mask(4, 0);
  const SlotMask b = SlotCalendar::periodic_mask(4, 2);
  const auto ha = cal.book({5, 6}, a);
  const auto hb = cal.book({6, 7}, b);
  ASSERT_TRUE(ha.valid());
  ASSERT_TRUE(hb.valid());
  EXPECT_EQ(cal.occupancy(6), a | b);
  EXPECT_EQ(cal.free_slots(6), SlotCalendar::kFrameSlots - 32);

  EXPECT_TRUE(cal.release(ha));
  // Exactly a's slots came back on both of a's lines; b is untouched.
  EXPECT_EQ(cal.occupancy(5), 0u);
  EXPECT_EQ(cal.occupancy(6), b);
  EXPECT_EQ(cal.occupancy(7), b);
  // The released handle is stale everywhere from now on.
  EXPECT_FALSE(cal.release(ha));
  EXPECT_FALSE(cal.active(ha));
  EXPECT_EQ(cal.mask(ha), 0u);
  EXPECT_THROW(static_cast<void>(cal.lines(ha)), std::invalid_argument);
  EXPECT_EQ(cal.booking_count(), 1u);
}

TEST(SlotCalendar, StaleHandlesStayInertAcrossGenerationWrap) {
  SlotCalendar cal;
  const SlotMask m = SlotCalendar::periodic_mask(2, 0);
  const auto h1 = cal.book({1}, m);
  ASSERT_TRUE(h1.valid());
  ASSERT_TRUE(cal.release(h1));

  // Park the recycled slot's generation at the wrap point and walk it
  // over the edge: the handle minted just before the wrap must stay
  // stale after it, exactly like any other stale handle.
  cal.set_generation_for_test(h1.id, 0xFFFFFFFFu);
  const auto h2 = cal.book({1}, m);
  ASSERT_EQ(h2.id, h1.id);  // LIFO slot reuse
  ASSERT_EQ(h2.generation, 0xFFFFFFFFu);
  EXPECT_FALSE(cal.active(h1));
  ASSERT_TRUE(cal.release(h2));  // the generation wraps to 0 here

  const auto h3 = cal.book({1}, m);
  ASSERT_EQ(h3.id, h1.id);
  ASSERT_EQ(h3.generation, 0u);
  EXPECT_TRUE(cal.active(h3));
  // The pre-wrap handle is inert against the post-wrap occupant: no
  // release, no mask, no occupancy change.
  EXPECT_FALSE(cal.active(h2));
  EXPECT_FALSE(cal.release(h2));
  EXPECT_EQ(cal.mask(h2), 0u);
  EXPECT_EQ(cal.occupancy(1), m);
  EXPECT_EQ(cal.booking_count(), 1u);
}

// The oracle: 400 rounds of a seeded book / release / contention-probe
// mix, with the calendar checked against a brute-force per-slot owner
// table after every round — occupancy per line, per-booking masks, the
// live-booking census, and the no-overlapping-owners invariant.
TEST(SlotCalendar, FourHundredRoundRandomizedMixMatchesLinearScanReference) {
  constexpr int kRounds = 400;
  constexpr int kLines = 6;
  SlotCalendar cal;
  std::mt19937_64 rng(0xC0FFEEu);

  struct RefBooking {
    SlotCalendar::Handle handle;
    std::vector<LineId> lines;
    SlotMask mask = 0;
  };
  std::vector<RefBooking> live;
  // owner[line][slot]: booking serial, 0 = free. Maintained by linear
  // scan — deliberately the dumbest possible bookkeeping.
  std::map<LineId, std::array<int, SlotCalendar::kFrameSlots>> owner;
  int next_serial = 1;

  const auto table = [&](LineId line) -> std::array<int, SlotCalendar::kFrameSlots>& {
    return owner.try_emplace(line).first->second;  // value-initialized: all 0
  };
  const auto ref_occupancy = [&](LineId line) {
    SlotMask m = 0;
    const auto it = owner.find(line);
    if (it == owner.end()) return m;
    for (int s = 0; s < SlotCalendar::kFrameSlots; ++s) {
      if (it->second[s] != 0) m |= SlotMask{1} << s;
    }
    return m;
  };
  const auto ref_propose = [&](const std::vector<LineId>& lines, int period, int duty) {
    SlotMask combined = 0;
    int found = 0;
    for (int offset = 0; offset < period && found < duty; ++offset) {
      const SlotMask cand = SlotCalendar::periodic_mask(period, offset);
      bool free = true;
      for (const LineId l : lines) {
        if ((ref_occupancy(l) & cand) != 0) {
          free = false;
          break;
        }
      }
      if (free) {
        combined |= cand;
        ++found;
      }
    }
    return found == duty ? combined : SlotMask{0};
  };

  constexpr int kPeriods[] = {2, 4, 8, 16};
  for (int round = 0; round < kRounds; ++round) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 55 || live.empty()) {
      // Book: a 1-3 line span with a random periodic shape. The mix
      // saturates small line sets fast, so plenty of proposals hit
      // third-party contention and must refuse in lockstep with the
      // reference.
      const int period = kPeriods[rng() % 4];
      const int duty =
          1 + static_cast<int>(rng() % static_cast<unsigned>(std::min(period, 3)));
      const auto first = static_cast<int>(rng() % kLines);
      const int span = 1 + static_cast<int>(rng() % 3);
      std::vector<LineId> lines;
      for (int i = 0; i < span; ++i) lines.push_back((first + i) % kLines);
      const SlotMask expect = ref_propose(lines, period, duty);
      const SlotMask got = cal.propose(lines, period, duty);
      ASSERT_EQ(got, expect) << "round " << round;
      const auto h = cal.book(lines, got);
      if (expect == 0) {
        EXPECT_FALSE(h.valid()) << "round " << round;
      } else {
        ASSERT_TRUE(h.valid()) << "round " << round;
        for (const LineId l : lines) {
          auto& tab = table(l);
          for (int s = 0; s < SlotCalendar::kFrameSlots; ++s) {
            if ((expect >> s) & 1) {
              ASSERT_EQ(tab[s], 0) << "reference corrupted at round " << round;
              tab[s] = next_serial;
            }
          }
        }
        live.push_back(RefBooking{h, lines, expect});
        ++next_serial;
      }
    } else if (op < 85) {
      // Release a random live booking; its handle goes stale at once.
      const std::size_t pick = rng() % live.size();
      const RefBooking b = live[pick];
      ASSERT_TRUE(cal.release(b.handle)) << "round " << round;
      EXPECT_FALSE(cal.release(b.handle)) << "round " << round;
      for (const LineId l : b.lines) {
        auto& tab = table(l);
        for (int s = 0; s < SlotCalendar::kFrameSlots; ++s) {
          if ((b.mask >> s) & 1) tab[s] = 0;
        }
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      // Contention probe: a full-frame proposal is admitted exactly
      // when the line is completely free.
      const LineId line = rng() % kLines;
      const SlotMask got = cal.propose({line}, 1, 1);
      EXPECT_EQ(got != 0, ref_occupancy(line) == 0) << "round " << round;
    }

    // Lockstep invariants after every round.
    for (LineId l = 0; l < kLines; ++l) {
      ASSERT_EQ(cal.occupancy(l), ref_occupancy(l)) << "round " << round;
      ASSERT_EQ(cal.free_slots(l),
                SlotCalendar::kFrameSlots - std::popcount(ref_occupancy(l)))
          << "round " << round;
    }
    ASSERT_EQ(cal.booking_count(), live.size()) << "round " << round;
    std::array<SlotMask, kLines> per_line_union{};
    for (const RefBooking& b : live) {
      ASSERT_TRUE(cal.active(b.handle)) << "round " << round;
      ASSERT_EQ(cal.mask(b.handle), b.mask) << "round " << round;
      ASSERT_EQ(cal.lines(b.handle), b.lines) << "round " << round;
      for (const LineId l : b.lines) {
        // The collision-freedom invariant: no two live bookings own
        // the same slot of the same line.
        ASSERT_EQ(per_line_union[l] & b.mask, 0u)
            << "overlapping owners at round " << round;
        per_line_union[l] |= b.mask;
      }
    }
  }

  // Drain: releasing every survivor leaves no residue anywhere.
  for (const RefBooking& b : live) EXPECT_TRUE(cal.release(b.handle));
  for (LineId l = 0; l < kLines; ++l) EXPECT_EQ(cal.occupancy(l), 0u);
  EXPECT_EQ(cal.booking_count(), 0u);
}

}  // namespace
}  // namespace rsf
