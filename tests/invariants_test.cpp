// System-wide invariants checked under randomized load — the
// properties that must hold no matter what the control plane does:
//   * packet conservation: injected = delivered + dropped (+ probes);
//   * routing progress: every next_hop strictly decreases the
//     remaining min-cost distance (no cycles under consistent tables);
//   * plant lane conservation across arbitrary CRC activity;
//   * simulation determinism with every controller feature enabled.
#include <gtest/gtest.h>

#include "phy/ber_profile.hpp"
#include "runtime/runtime.hpp"

namespace rsf {
namespace {

using phy::DataSize;
using phy::LinkId;
using rsf::sim::SimTime;
using runtime::FabricRuntime;
using runtime::RuntimeConfig;
using namespace rsf::sim::literals;

struct EverythingOn {
  FabricRuntime rt;
  workload::FlowGenerator* gen = nullptr;
  std::vector<std::unique_ptr<phy::BerDriver>> ber;

  static RuntimeConfig config(std::uint64_t seed) {
    RuntimeConfig cfg;
    cfg.rack.width = 4;
    cfg.rack.height = 4;
    cfg.rack.lanes_per_cable = 4;
    cfg.rack.lanes_per_link = 2;
    cfg.rack.net_config.seed = seed;
    cfg.crc.epoch = 150_us;
    cfg.crc.enable_adaptive_fec = true;
    cfg.crc.enable_power_manager = true;
    cfg.crc.enable_health_manager = true;
    cfg.crc.enable_auto_torus = true;
    cfg.crc.torus_util_threshold = 0.3;
    return cfg;
  }

  explicit EverythingOn(std::uint64_t seed) : rt(config(seed)) {
    // The cap depends on the built rack's draw; set it post-build.
    rt.controller().power_manager().set_cap(rt.total_power_watts() * 0.95);
    rt.start();

    workload::GeneratorConfig gen_cfg;
    gen_cfg.seed = seed;
    gen_cfg.mean_interarrival = 40_us;
    gen_cfg.horizon = 6_ms;
    gen_cfg.sizes = workload::SizeDistribution::heavy_tail(1.3, 2e3, 2e5);
    gen = &rt.add_generator(workload::TrafficMatrix::uniform(16), gen_cfg);
    gen->start();

    // A BER spike and a lane failure mid-run keep every manager busy.
    ber.push_back(std::make_unique<phy::BerDriver>(
        &rt.sim(), &rt.plant(), 0, phy::spike_ber(1e-12, 5e-5, 2_ms, 4_ms), 100_us));
    ber.back()->start();
    rt.sim().schedule_at(3_ms, [this] { rt.plant().fail_lane(phy::LaneRef{5, 0}); });
  }

  void run() {
    rt.run_until(20_ms);
    rt.stop();
    for (auto& d : ber) d->stop();
    rt.run_until();
  }
};

TEST(Invariants, PacketConservationUnderFullChaos) {
  EverythingOn world(11);
  world.run();
  const auto& c = world.rt.network().counters();
  const std::uint64_t injected = c.get("net.packets_injected");
  const std::uint64_t delivered = c.get("net.packets_delivered");
  const std::uint64_t dropped = c.get("net.drops.no_route") +
                                c.get("net.drops.retries_exhausted");
  const std::uint64_t corrupted = c.get("net.frames_corrupted");
  const std::uint64_t retransmits = c.get("net.retransmits");
  // Every injected packet is eventually delivered or dropped; corrupted
  // frames re-enter as retransmissions (which are not re-injections).
  EXPECT_EQ(injected, delivered + dropped) << c.to_string();
  EXPECT_LE(dropped, corrupted + 64);  // drops only via exhausted retries/no-route
  EXPECT_GE(retransmits + dropped, corrupted);
  EXPECT_GT(delivered, 0u);
}

TEST(Invariants, FlowAccountingConsistent) {
  EverythingOn world(13);
  world.run();
  const auto& net = world.rt.network();
  EXPECT_EQ(net.flows_completed() + net.flows_failed(), world.gen->flows_generated());
  EXPECT_EQ(world.gen->results().size(), world.gen->flows_generated());
}

TEST(Invariants, PlantValidAfterFullChaos) {
  EverythingOn world(17);
  world.run();
  EXPECT_TRUE(world.rt.plant().validate().empty()) << world.rt.plant().validate();
  // Lane conservation: owned + free + (possibly failed-free) = total.
  std::size_t owned = 0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < world.rt.plant().cable_count(); ++c) {
    const auto id = static_cast<phy::CableId>(c);
    total += static_cast<std::size_t>(world.rt.plant().cable(id).lane_count());
    owned += static_cast<std::size_t>(world.rt.plant().cable(id).lane_count()) -
             world.rt.plant().free_lanes(id).size();
  }
  EXPECT_LE(owned, total);
  EXPECT_GT(owned, 0u);
}

TEST(Invariants, DeterministicUnderFullChaos) {
  auto fingerprint = [](std::uint64_t seed) {
    EverythingOn world(seed);
    world.run();
    return std::make_tuple(world.rt.sim().executed(),
                           world.rt.network().packet_latency().mean(),
                           world.rt.network().counters().to_string());
  };
  const auto a = fingerprint(23);
  const auto b = fingerprint(23);
  EXPECT_EQ(a, b);
  const auto c = fingerprint(29);
  EXPECT_NE(std::get<0>(a), std::get<0>(c));
}

TEST(Invariants, NextHopStrictlyDecreasesDistance) {
  // Under any fixed price state, following next_hop from every node to
  // every destination must terminate (strictly decreasing remaining
  // cost) — the no-routing-cycle property.
  RuntimeConfig cfg;
  cfg.shape = runtime::RackShape::kTorus;
  cfg.rack.width = 5;
  cfg.rack.height = 5;
  cfg.enable_crc = false;
  FabricRuntime rt(cfg);
  for (phy::NodeId dst = 0; dst < 25; ++dst) {
    for (phy::NodeId src = 0; src < 25; ++src) {
      if (src == dst) continue;
      phy::NodeId at = src;
      int steps = 0;
      auto last_cost = rt.router().path_cost(at, dst);
      ASSERT_TRUE(last_cost.has_value());
      while (at != dst && steps <= 25) {
        const auto hop = rt.router().next_hop(at, dst);
        ASSERT_TRUE(hop.has_value()) << "stuck at " << at << " -> " << dst;
        at = rt.plant().link(*hop).other_end(at);
        const auto cost = rt.router().path_cost(at, dst);
        ASSERT_TRUE(cost.has_value());
        EXPECT_LT(*cost, *last_cost + 1e-9);
        last_cost = cost;
        ++steps;
      }
      EXPECT_EQ(at, dst);
    }
  }
}

TEST(Invariants, BusyTimeNeverExceedsWallClock) {
  EverythingOn world(31);
  world.run();
  const double wall = world.rt.sim().now().sec();
  for (LinkId id : world.rt.plant().link_ids()) {
    // Each direction can be busy at most the whole run; we track both
    // directions in one counter, so the bound is 2x.
    EXPECT_LE(world.rt.network().link_busy_time(id).sec(), 2.0 * wall + 1e-9);
  }
}

}  // namespace
}  // namespace rsf
