// FleetRuntime: sharded multi-rack simulation on one clock. A 1-shard
// fleet must be byte-identical to a standalone FabricRuntime, cross-
// rack flows must stage correctly over the spine (including multi-hop
// and failure), and the fleet registry must expose every shard's
// metrics under its "rack<N>." prefix next to the live "spine.*" set.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "runtime/fleet.hpp"
#include "runtime/runtime.hpp"
#include "workload/crossrack.hpp"
#include "workload/generator.hpp"

namespace rsf {
namespace {

using phy::DataSize;
using rsf::sim::SimTime;
using runtime::FabricRuntime;
using runtime::FleetConfig;
using runtime::FleetRuntime;
using runtime::RackShape;
using runtime::RackSpec;
using runtime::RuntimeConfig;
using runtime::SpineSpec;
using namespace rsf::sim::literals;

RuntimeConfig grid_config(int w = 4, int h = 4) {
  RuntimeConfig cfg;
  cfg.shape = RackShape::kGrid;
  cfg.rack.width = w;
  cfg.rack.height = h;
  return cfg;
}

/// A fixed-seed workload driven identically against a standalone
/// runtime and a 1-shard fleet's rack.
workload::GeneratorConfig workload_config() {
  workload::GeneratorConfig cfg;
  cfg.seed = 99;
  cfg.mean_interarrival = 60_us;
  cfg.horizon = 2_ms;
  cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(8));
  return cfg;
}

TEST(FleetRuntime, OneShardFleetIsByteIdenticalToStandaloneRuntime) {
  // Standalone.
  FabricRuntime rt(grid_config());
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(rt.node_count()),
                               workload_config());
  rt.start();
  gen.start();
  rt.run_until();
  rt.stop();
  rt.run_until();

  // 1-shard fleet, same rack config, same workload.
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  FleetRuntime fleet(fc);
  auto& fgen = fleet.rack(0).add_generator(
      workload::TrafficMatrix::uniform(fleet.rack(0).node_count()), workload_config());
  fleet.start();
  fgen.start();
  fleet.run_until();
  fleet.stop();
  fleet.run_until();

  EXPECT_EQ(rt.sim().executed(), fleet.sim().executed());
  // Byte-identical metrics: the shard's rendered table equals the
  // standalone runtime's, row for row.
  EXPECT_EQ(rt.metrics_table().to_string(), fleet.rack(0).metrics_table().to_string());
}

TEST(FleetRuntime, CrossRackFlowDelivers) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  s.latency = 3_us;
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 2, 2);
  spec.size = DataSize::kilobytes(64);
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.run_until();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_EQ(result->spine_hops, 1);
  EXPECT_EQ(result->rack_legs, 2);  // src->gw in rack 0, gw->dst in rack 1
  // The payload crossed the spine at least once: serialization + the
  // 3 us propagation put completion past the pure-latency floor.
  EXPECT_GT(result->completion_time(), 3_us);
  EXPECT_EQ(fleet.flows_completed(), 1u);
  // Per-packet transport: every one of the 63 packets (64 kB SI at
  // 1024 B) crossed both rack fabrics (as probes) and the spine
  // individually.
  EXPECT_EQ(fleet.rack(0).network().counters().get("net.probes"), 63u);
  EXPECT_EQ(fleet.rack(1).network().counters().get("net.probes"), 63u);
  EXPECT_EQ(fleet.spine().counters().get("spine.packets"), 63u);
  EXPECT_EQ(fleet.spine().counters().get("spine.link0.packets"), 63u);
  EXPECT_EQ(fleet.spine().link_packets(0, 0), 63u);
  EXPECT_EQ(fleet.spine().link_packets(0, 1), 0u);  // one-directional flow
}

TEST(FleetRuntime, MultiHopSpineRoutesThroughIntermediateRack) {
  // Line 0 - 1 - 2 with distinct entry/exit gateways on rack 1, so the
  // payload must cross rack 1's fabric between them.
  FleetConfig fc;
  for (int i = 0; i < 3; ++i) fc.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s01;
  s01.rack_a = 0;
  s01.rack_b = 1;
  fc.spine.push_back(s01);
  SpineSpec s12;
  s12.rack_a = 1;
  s12.rack_b = 2;
  s12.gateway_a = 15;  // far corner of rack 1
  fc.spine.push_back(s12);
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 1, 1);
  spec.dst = fleet.at(2, 2, 2);
  spec.size = DataSize::kilobytes(32);
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.run_until();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_EQ(result->spine_hops, 2);
  EXPECT_EQ(result->rack_legs, 3);  // rack0 egress, rack1 transit, rack2 ingress
  // Packets transited rack 1's fabric between its two gateways.
  EXPECT_GT(fleet.rack(1).network().counters().get("net.probes"), 0u);
  EXPECT_GT(fleet.rack(1).network().counters().get("net.packets_delivered"), 0u);
}

TEST(FleetRuntime, DownSpineLinkFailsOrReroutes) {
  // Triangle 0-1, 1-2, 0-2: killing 0-2 reroutes through rack 1;
  // killing both 0-2 and 1-2 leaves rack 2 unreachable.
  FleetConfig fc;
  for (int i = 0; i < 3; ++i) fc.racks.push_back(RackSpec{grid_config(), 0});
  for (auto [a, b] : {std::pair{0, 1}, {1, 2}, {0, 2}}) {
    SpineSpec s;
    s.rack_a = static_cast<std::uint32_t>(a);
    s.rack_b = static_cast<std::uint32_t>(b);
    fc.spine.push_back(s);
  }
  FleetRuntime fleet(fc);
  fleet.spine().set_link_up(2, false);  // 0-2 down

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 0, 0);
  spec.dst = fleet.at(2, 0, 1);
  spec.size = DataSize::kilobytes(16);
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_EQ(result->spine_hops, 2);  // took the detour via rack 1

  fleet.spine().set_link_up(1, false);  // 1-2 down too: rack 2 cut off
  spec.id = 2;
  spec.start = fleet.now();
  std::optional<runtime::FleetFlowResult> cut;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { cut = r; });
  fleet.run_until();
  ASSERT_TRUE(cut.has_value());
  EXPECT_TRUE(cut->failed);
  EXPECT_EQ(fleet.flows_failed(), 1u);
}

TEST(FleetRuntime, CrossRackShuffleCompletesAndCountsSpineHops) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);

  workload::CrossRackShuffleConfig cfg;
  for (int x = 0; x < 3; ++x) cfg.mappers.push_back(fleet.at(0, x, 0));
  for (int x = 0; x < 2; ++x) cfg.reducers.push_back(fleet.at(1, x, 3));
  cfg.bytes_per_pair = DataSize::kilobytes(32);
  auto& job = fleet.add_shuffle(cfg);
  std::optional<workload::CrossRackResult> result;
  job.run([&](const workload::CrossRackResult& r) { result = r; });
  fleet.run_until();

  ASSERT_TRUE(job.finished());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->flows, 6u);  // 3 mappers x 2 reducers
  EXPECT_EQ(result->failed, 0u);
  EXPECT_EQ(result->cross_rack_flows, 6u);
  EXPECT_EQ(result->spine_hops, 6u);
  EXPECT_GE(result->straggler_ratio(), 1.0);
  EXPECT_GT(result->job_completion, SimTime::zero());
}

TEST(FleetRuntime, RegistryExposesPrefixedRackAndSpineMetrics) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 0, 1);
  spec.dst = fleet.at(1, 1, 0);
  spec.size = DataSize::kilobytes(16);
  fleet.start_flow(spec);
  fleet.run_until();

  auto& metrics = fleet.metrics();
  for (const std::string rack : {"rack0", "rack1"}) {
    const auto* pkt = metrics.find_histogram(rack + ".net.packet_latency");
    ASSERT_NE(pkt, nullptr) << rack;
    EXPECT_GT(pkt->count(), 0u) << rack;
    const auto* counters = metrics.find_counters(rack + ".net");
    ASSERT_NE(counters, nullptr) << rack;
    EXPECT_GT(counters->get(rack + ".net.packets_delivered"), 0u) << rack;
  }
  EXPECT_NE(metrics.find_counters("spine"), nullptr);
  EXPECT_EQ(metrics.find_counters("spine")->get("spine.packets"), 16u);  // 16 kB / 1 KiB
  EXPECT_NE(metrics.find_histogram("spine.transfer_latency"), nullptr);

  // The snapshot matches the shard's own registry, and re-collecting
  // refreshes in place (no double counting, stable instruments).
  const auto* before = metrics.find_histogram("rack0.net.packet_latency");
  const auto count = before->count();
  EXPECT_EQ(count, fleet.rack(0).network().packet_latency().count());
  auto& again = fleet.metrics();
  EXPECT_EQ(before, again.find_histogram("rack0.net.packet_latency"));
  EXPECT_EQ(before->count(), count);

  // The fleet table carries rows from every prefix.
  const std::string table = fleet.metrics_table().to_string();
  EXPECT_NE(table.find("rack0.net.packet_latency"), std::string::npos);
  EXPECT_NE(table.find("rack1.net.packet_latency"), std::string::npos);
  EXPECT_NE(table.find("spine.packets"), std::string::npos);
}

TEST(FleetRuntime, SameRackFleetFlowCollapsesToPlainNetworkFlow) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 0, 0);
  spec.dst = fleet.at(0, 3, 3);
  spec.size = DataSize::kilobytes(16);
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.run_until();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_EQ(result->spine_hops, 0);
  EXPECT_EQ(result->rack_legs, 1);
}

TEST(FleetRuntime, MidFlowSpineFailureReroutesInFlightPackets) {
  // Triangle 0-1 (link 0), 1-2 (link 1), 0-2 (link 2). A long flow
  // 0 -> 2 starts on the direct link; killing it mid-flow must re-plan
  // the remaining packets through rack 1 and still complete.
  FleetConfig fc;
  for (int i = 0; i < 3; ++i) fc.racks.push_back(RackSpec{grid_config(), 0});
  for (auto [a, b] : {std::pair{0, 1}, {1, 2}, {0, 2}}) {
    SpineSpec s;
    s.rack_a = static_cast<std::uint32_t>(a);
    s.rack_b = static_cast<std::uint32_t>(b);
    fc.spine.push_back(s);
  }
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(2, 2, 2);
  spec.size = DataSize::megabytes(1);  // ~1024 packets: far from done at 50 us
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.sim().schedule_at(50_us, [&] { fleet.spine().set_link_up(2, false); });
  fleet.run_until();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  // Early packets took the direct hop, post-failure packets the detour.
  EXPECT_EQ(result->spine_hops, 2);
  const auto& c = fleet.spine().counters();
  EXPECT_GT(c.get("spine.link2.packets"), 0u);
  EXPECT_GT(c.get("spine.link0.packets"), 0u);
  EXPECT_GT(c.get("spine.link1.packets"), 0u);
  // At least one in-flight packet hit the dead hop and re-planned.
  EXPECT_GE(c.get("spine.packet_reroutes"), 1u);
  EXPECT_EQ(fleet.flows_completed(), 1u);
}

TEST(FleetRuntime, MidFlowSpinePartitionFailsDeterministically) {
  // Two racks, one spine link: killing it mid-flow leaves no route.
  // The flow must fail cleanly (callback fires, simulation drains).
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 2, 2);
  spec.size = DataSize::megabytes(1);
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.sim().schedule_at(50_us, [&] { fleet.spine().set_link_up(0, false); });
  fleet.run_until();  // must terminate, not hang on a stuck window

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->failed);
  EXPECT_EQ(fleet.flows_failed(), 1u);
  EXPECT_TRUE(fleet.sim().idle());
}

TEST(FleetRuntime, SpineLossRetransmitsUntilDelivered) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  s.loss_prob = 0.05;
  fc.spine.push_back(s);
  fc.seed = 7;
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 1, 1);
  spec.dst = fleet.at(1, 2, 2);
  spec.size = DataSize::kilobytes(256);  // 250 packets: losses certain
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.run_until();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_GT(result->retransmits, 0u);
  const auto& c = fleet.spine().counters();
  EXPECT_GT(c.get("spine.packet_drops"), 0u);
  EXPECT_EQ(c.get("spine.retransmits"), result->retransmits);
  // Every drop was re-sent: packets on the wire = clean packets + drops.
  EXPECT_EQ(c.get("spine.packets"), 250u + c.get("spine.packet_drops"));
  EXPECT_EQ(fleet.spine().link_drops(0, 0), c.get("spine.packet_drops"));
}

TEST(FleetRuntime, StoreAndForwardBaselineStillStages) {
  FleetConfig fc;
  fc.transport = runtime::SpineTransport::kStoreAndForward;
  fc.racks.push_back(RackSpec{grid_config(), 0});
  fc.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);

  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 2, 2);
  spec.size = DataSize::kilobytes(64);
  std::optional<runtime::FleetFlowResult> result;
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.run_until();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_EQ(result->spine_hops, 1);
  EXPECT_EQ(result->rack_legs, 2);
  // Bulk mode: ONE spine transfer for the whole payload, and the rack
  // legs run as real Network flows, not per-packet probes.
  EXPECT_EQ(fleet.spine().counters().get("spine.transfers"), 1u);
  EXPECT_EQ(fleet.spine().counters().get("spine.packets"), 0u);
  EXPECT_GT(fleet.rack(0).network().flows_completed(), 0u);
  EXPECT_GT(fleet.rack(1).network().flows_completed(), 0u);
}

/// Drive one fixed cross-rack workload against `fleet`; used by the
/// determinism regressions below.
void run_reference_shuffle(FleetRuntime& fleet) {
  workload::CrossRackShuffleConfig cfg;
  for (int x = 0; x < 3; ++x) cfg.mappers.push_back(fleet.at(0, x, 0));
  for (int x = 0; x < 2; ++x) cfg.reducers.push_back(fleet.at(1, x, 3));
  cfg.bytes_per_pair = DataSize::kilobytes(64);
  auto& gen = fleet.rack(0).add_generator(
      workload::TrafficMatrix::uniform(fleet.rack(0).node_count()), workload_config());
  fleet.start();
  gen.start();
  fleet.add_shuffle(cfg).run(nullptr);
  fleet.run_until();
  fleet.stop();
  fleet.run_until();
}

TEST(FleetRuntime, SameSeedRunsRenderByteIdenticalMetricsTables) {
  // Loss on the spine exercises the spine RNG; the controller
  // exercises repricing; both must be bit-for-bit reproducible.
  auto make_config = [] {
    FleetConfig fc;
    fc.racks.push_back(RackSpec{grid_config(), 0});
    fc.racks.push_back(RackSpec{grid_config(), 0});
    SpineSpec s;
    s.rack_a = 0;
    s.rack_b = 1;
    s.loss_prob = 0.02;
    fc.spine.push_back(s);
    fc.seed = 42;
    fc.enable_controller = true;
    fc.controller.epoch = 20_us;
    return fc;
  };
  FleetRuntime a(make_config());
  run_reference_shuffle(a);
  FleetRuntime b(make_config());
  run_reference_shuffle(b);
  EXPECT_EQ(a.sim().executed(), b.sim().executed());
  EXPECT_EQ(a.metrics_table().to_string(), b.metrics_table().to_string());
}

TEST(FleetRuntime, AddingARackDoesNotPerturbExistingRacksStreams) {
  // The same workload runs in a 2-rack fleet and a 3-rack fleet (the
  // extra rack idles): racks 0 and 1 must render byte-identical
  // metrics, because every rack derives its own child streams
  // (sim/random independence at fleet scope).
  auto make_config = [](int racks) {
    FleetConfig fc;
    for (int i = 0; i < racks; ++i) fc.racks.push_back(RackSpec{grid_config(), 0});
    SpineSpec s;
    s.rack_a = 0;
    s.rack_b = 1;
    s.loss_prob = 0.02;
    fc.spine.push_back(s);
    fc.seed = 42;
    return fc;
  };
  FleetRuntime two(make_config(2));
  run_reference_shuffle(two);
  FleetRuntime three(make_config(3));
  run_reference_shuffle(three);
  EXPECT_EQ(two.rack(0).metrics_table().to_string(),
            three.rack(0).metrics_table().to_string());
  EXPECT_EQ(two.rack(1).metrics_table().to_string(),
            three.rack(1).metrics_table().to_string());
}

TEST(FleetRuntime, RejectsBadConfigs) {
  EXPECT_THROW(FleetRuntime(FleetConfig{}), std::invalid_argument);

  FleetConfig bad_gateway;
  bad_gateway.racks.push_back(RackSpec{grid_config(), 99});
  EXPECT_THROW(FleetRuntime{bad_gateway}, std::invalid_argument);

  FleetConfig bad_window;
  bad_window.racks.push_back(RackSpec{grid_config(), 0});
  bad_window.flow_window = 0;
  EXPECT_THROW(FleetRuntime{bad_window}, std::invalid_argument);

  FleetConfig bad_retries;
  bad_retries.racks.push_back(RackSpec{grid_config(), 0});
  bad_retries.max_retries = -1;  // would disable the retry budget
  EXPECT_THROW(FleetRuntime{bad_retries}, std::invalid_argument);

  FleetConfig bad_delay;
  bad_delay.racks.push_back(RackSpec{grid_config(), 0});
  bad_delay.retry_delay = 0_us - 5_us;  // retries must not go backwards
  EXPECT_THROW(FleetRuntime{bad_delay}, std::invalid_argument);

  FleetConfig bad_spine;
  bad_spine.racks.push_back(RackSpec{grid_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 7;  // no such rack
  bad_spine.spine.push_back(s);
  EXPECT_THROW(FleetRuntime{bad_spine}, std::invalid_argument);

  // Bad flow specs fail at the call site, not mid-simulation.
  FleetConfig ok;
  ok.racks.push_back(RackSpec{grid_config(), 0});
  FleetRuntime fleet(ok);
  runtime::FleetFlowSpec empty_flow;
  empty_flow.src = fleet.at(0, 0, 0);
  empty_flow.dst = fleet.at(0, 1, 1);
  empty_flow.size = DataSize::bytes(0);
  EXPECT_THROW(fleet.start_flow(empty_flow), std::invalid_argument);
}

}  // namespace
}  // namespace rsf
