#include "fabric/topology.hpp"

#include <gtest/gtest.h>

#include "fabric/builders.hpp"

namespace rsf::fabric {
namespace {

using phy::LinkId;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

TEST(Topology, GridBuilderWiresExpectedLinkCount) {
  Simulator sim;
  RackParams p;
  p.width = 4;
  p.height = 3;
  Rack rack = build_grid(&sim, p);
  // Grid links: 3 per row x 3 rows horizontal (w-1)*h + w*(h-1) vertical.
  EXPECT_EQ(rack.plant->link_count(), static_cast<std::size_t>((4 - 1) * 3 + 4 * (3 - 1)));
  EXPECT_EQ(rack.topology->node_count(), 12u);
}

TEST(Topology, LinksAtCorrectDegree) {
  Simulator sim;
  RackParams p;
  p.width = 3;
  p.height = 3;
  Rack rack = build_grid(&sim, p);
  // Corner has degree 2, edge 3, centre 4.
  EXPECT_EQ(rack.topology->links_at(rack.node_at(0, 0)).size(), 2u);
  EXPECT_EQ(rack.topology->links_at(rack.node_at(1, 0)).size(), 3u);
  EXPECT_EQ(rack.topology->links_at(rack.node_at(1, 1)).size(), 4u);
}

TEST(Topology, AllInitialLinksUsable) {
  Simulator sim;
  Rack rack = build_grid(&sim, RackParams{});
  for (LinkId id : rack.plant->link_ids()) {
    EXPECT_TRUE(rack.topology->usable(id));
  }
}

TEST(Topology, LinkBetweenFindsAdjacent) {
  Simulator sim;
  RackParams p;
  p.width = 3;
  p.height = 1;
  Rack rack = build_grid(&sim, p);
  EXPECT_TRUE(rack.topology->link_between(0, 1).has_value());
  EXPECT_FALSE(rack.topology->link_between(0, 2).has_value());
}

TEST(Topology, CoordsAssigned) {
  Simulator sim;
  RackParams p;
  p.width = 4;
  p.height = 2;
  Rack rack = build_grid(&sim, p);
  const auto c = rack.topology->coord(rack.node_at(3, 1));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->x, 3);
  EXPECT_EQ(c->y, 1);
  EXPECT_EQ(rack.topology->grid_w(), 4);
  EXPECT_EQ(rack.topology->grid_h(), 2);
}

TEST(Topology, VersionBumpsOnReconfiguration) {
  Simulator sim;
  Rack rack = build_grid(&sim, RackParams{});
  const std::uint64_t v0 = rack.topology->version();
  const LinkId some = rack.plant->link_ids().front();
  rack.engine->submit(plp::SplitCommand{some, 1});
  sim.run_until();
  EXPECT_GT(rack.topology->version(), v0);
}

TEST(Topology, BusyLinkNotUsable) {
  Simulator sim;
  Rack rack = build_grid(&sim, RackParams{});
  const LinkId some = rack.plant->link_ids().front();
  rack.engine->submit(plp::SetFecCommand{some, phy::FecScheme::kRsKp4});
  // During actuation the link is busy -> unusable.
  EXPECT_FALSE(rack.topology->usable(some));
  sim.run_until();
  EXPECT_TRUE(rack.topology->usable(some));
}

TEST(Topology, TorusBuilderAddsWraparounds) {
  Simulator sim;
  RackParams p;
  p.width = 4;
  p.height = 4;
  Rack grid_rack = build_grid(&sim, p);
  Simulator sim2;
  Rack torus_rack = build_torus(&sim2, p);
  EXPECT_EQ(torus_rack.plant->link_count(),
            grid_rack.plant->link_count() + 4 /*rows*/ + 4 /*cols*/);
}

TEST(Topology, ChainAndRingBuilders) {
  Simulator sim;
  Rack chain = build_chain(&sim, 5, RackParams{});
  EXPECT_EQ(chain.plant->link_count(), 4u);
  EXPECT_EQ(chain.topology->node_count(), 5u);

  Simulator sim2;
  Rack ring = build_ring(&sim2, 5, RackParams{});
  EXPECT_EQ(ring.plant->link_count(), 5u);
  EXPECT_TRUE(ring.topology->link_between(4, 0).has_value());
}

TEST(Topology, BuilderValidation) {
  Simulator sim;
  RackParams bad;
  bad.lanes_per_link = 5;
  bad.lanes_per_cable = 2;
  EXPECT_THROW(build_grid(&sim, bad), std::invalid_argument);
  EXPECT_THROW(build_chain(&sim, 1, RackParams{}), std::invalid_argument);
  EXPECT_THROW(build_ring(&sim, 2, RackParams{}), std::invalid_argument);
  EXPECT_THROW(build_grid(nullptr, RackParams{}), std::invalid_argument);
}

TEST(Topology, NodeAtBoundsChecked) {
  Simulator sim;
  Rack rack = build_grid(&sim, RackParams{});
  EXPECT_THROW(rack.node_at(-1, 0), std::out_of_range);
  EXPECT_THROW(rack.node_at(4, 0), std::out_of_range);
}

TEST(Topology, DarkLanesStayFree) {
  Simulator sim;
  RackParams p;
  p.lanes_per_cable = 4;
  p.lanes_per_link = 2;
  Rack rack = build_grid(&sim, p);
  // Every cable keeps 2 free lanes for the CRC to provision.
  for (std::size_t c = 0; c < rack.plant->cable_count(); ++c) {
    EXPECT_EQ(rack.plant->free_lanes(static_cast<phy::CableId>(c)).size(), 2u);
  }
}

TEST(Topology, RackPowerIncludesPlantAndSwitching) {
  Simulator sim;
  Rack rack = build_grid(&sim, RackParams{});
  const double total = rack.total_power_watts();
  EXPECT_GT(total, rack.plant->total_power_watts());
}

}  // namespace
}  // namespace rsf::fabric
