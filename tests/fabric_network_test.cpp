#include "fabric/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <optional>

#include "fabric/builders.hpp"

namespace rsf::fabric {
namespace {

using phy::DataSize;
using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct NetFixture : ::testing::Test {
  Simulator sim;
  Rack rack;

  explicit NetFixture(int w = 4, int h = 4) {
    RackParams p;
    p.width = w;
    p.height = h;
    rack = build_grid(&sim, p);
  }

  SimTime probe_latency(phy::NodeId src, phy::NodeId dst,
                        DataSize size = DataSize::bytes(1024)) {
    std::optional<SimTime> out;
    rack.network->send_probe(src, dst, size, [&](SimTime lat, int, bool ok) {
      ASSERT_TRUE(ok);
      out = lat;
    });
    sim.run_until();
    EXPECT_TRUE(out.has_value());
    return out.value_or(SimTime::zero());
  }
};

TEST_F(NetFixture, ProbeDeliversWithExpectedSingleHopLatency) {
  const auto link = rack.topology->link_between(0, 1);
  ASSERT_TRUE(link.has_value());
  const auto& l = rack.plant->link(*link);
  const DataSize size = DataSize::bytes(1024);
  const SimTime expected = rack.network->config().switch_params.nic_latency +
                           l.serialization_delay(size) + l.propagation_delay() +
                           l.fec().latency +
                           rack.network->config().switch_params.nic_latency;
  EXPECT_EQ(probe_latency(0, 1, size), expected);
}

TEST_F(NetFixture, LatencyGrowsWithHopCount) {
  const SimTime l1 = probe_latency(rack.node_at(0, 0), rack.node_at(1, 0));
  const SimTime l2 = probe_latency(rack.node_at(0, 0), rack.node_at(2, 0));
  const SimTime l3 = probe_latency(rack.node_at(0, 0), rack.node_at(3, 0));
  EXPECT_GT(l2, l1);
  EXPECT_GT(l3, l2);
  // Per-hop increment includes the switch pipeline.
  EXPECT_GE((l2 - l1).ns(), rack.network->config().switch_params.switch_latency.ns());
}

TEST_F(NetFixture, CutThroughBeatsStoreAndForward) {
  RackParams sf;
  sf.net_config.switch_params.cut_through = false;
  Simulator sim2;
  Rack rack_sf = build_grid(&sim2, sf);

  std::optional<SimTime> sf_lat;
  rack_sf.network->send_probe(rack_sf.node_at(0, 0), rack_sf.node_at(3, 0),
                              DataSize::bytes(1024),
                              [&](SimTime lat, int, bool) { sf_lat = lat; });
  sim2.run_until();
  const SimTime ct_lat = probe_latency(rack.node_at(0, 0), rack.node_at(3, 0));
  ASSERT_TRUE(sf_lat.has_value());
  EXPECT_LT(ct_lat, *sf_lat);
}

TEST_F(NetFixture, ProbeHopCountMatchesRoute) {
  std::optional<int> hops;
  rack.network->send_probe(rack.node_at(0, 0), rack.node_at(3, 3), DataSize::bytes(256),
                           [&](SimTime, int h, bool) { hops = h; });
  sim.run_until();
  EXPECT_EQ(hops, 6);
}

TEST_F(NetFixture, FlowCompletesAndAccountsBytes) {
  FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 5;
  spec.size = DataSize::kilobytes(64);
  spec.packet_size = DataSize::bytes(1024);
  std::optional<FlowResult> result;
  rack.network->start_flow(spec, [&](const FlowResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  // 64 kB = 64000 B = ceil(62.5) = 63 packets of 1024 B.
  EXPECT_EQ(result->packets, 63u);
  EXPECT_GT(result->completion_time(), SimTime::zero());
  EXPECT_EQ(rack.network->flows_completed(), 1u);
}

TEST_F(NetFixture, ShortFinalPacketHandled) {
  FlowSpec spec;
  spec.id = 2;
  spec.src = 0;
  spec.dst = 1;
  spec.size = DataSize::bytes(2500);  // 2 full + 1 partial packet
  spec.packet_size = DataSize::bytes(1024);
  std::optional<FlowResult> result;
  rack.network->start_flow(spec, [&](const FlowResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->packets, 3u);
}

TEST_F(NetFixture, FlowThroughputApproachesLineRate) {
  // One flow, one hop, 2 lanes x 25G with KR4 FEC: ~48.7 Gbps effective.
  FlowSpec spec;
  spec.id = 3;
  spec.src = 0;
  spec.dst = 1;
  spec.size = DataSize::megabytes(10);
  spec.packet_size = DataSize::bytes(4096);
  std::optional<FlowResult> result;
  rack.network->start_flow(spec, [&](const FlowResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  const double gbps =
      static_cast<double>(spec.size.bit_count()) / result->completion_time().sec() / 1e9;
  const double line = rack.plant->link(*rack.topology->link_between(0, 1))
                          .effective_rate()
                          .gbps_value();
  EXPECT_GT(gbps, line * 0.9);
  EXPECT_LE(gbps, line * 1.01);
}

TEST_F(NetFixture, TwoFlowsShareBottleneckFairly) {
  FlowSpec a;
  a.id = 10;
  a.src = rack.node_at(0, 0);
  a.dst = rack.node_at(1, 0);
  a.size = DataSize::megabytes(1);
  FlowSpec b = a;
  b.id = 11;
  b.src = rack.node_at(0, 0);

  std::vector<FlowResult> results;
  rack.network->start_flow(a, [&](const FlowResult& r) { results.push_back(r); });
  rack.network->start_flow(b, [&](const FlowResult& r) { results.push_back(r); });
  sim.run_until();
  ASSERT_EQ(results.size(), 2u);
  // Both finish in roughly double the solo time, within 25%.
  const double t0 = results[0].completion_time().sec();
  const double t1 = results[1].completion_time().sec();
  EXPECT_NEAR(t0 / t1, 1.0, 0.25);
}

TEST_F(NetFixture, FrameLossCausesRetransmitsButFlowsComplete) {
  // Crank BER with no FEC: heavy loss, retransmissions recover.
  for (std::size_t c = 0; c < rack.plant->cable_count(); ++c) {
    rack.plant->set_cable_ber(static_cast<phy::CableId>(c), 1e-6);
  }
  for (LinkId id : rack.plant->link_ids()) {
    rack.plant->set_fec(id, phy::FecSpec::of(phy::FecScheme::kNone));
  }
  FlowSpec spec;
  spec.id = 4;
  spec.src = 0;
  spec.dst = 2;
  spec.size = DataSize::kilobytes(512);
  std::optional<FlowResult> result;
  rack.network->start_flow(spec, [&](const FlowResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_GT(result->retransmits, 0u);
  EXPECT_GT(rack.network->counters().get("net.frames_corrupted"), 0u);
}

TEST_F(NetFixture, ProbeDropsWhenDestinationUnreachable) {
  for (LinkId id : rack.topology->links_at(rack.node_at(3, 3))) {
    rack.engine->submit(plp::ShutdownCommand{id});
  }
  sim.run_until();
  std::optional<bool> delivered;
  rack.network->send_probe(rack.node_at(0, 0), rack.node_at(3, 3), DataSize::bytes(64),
                           [&](SimTime, int, bool ok) { delivered = ok; });
  sim.run_until();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_FALSE(*delivered);
  EXPECT_GT(rack.network->counters().get("net.drops.no_route"), 0u);
}

TEST_F(NetFixture, PacketsWaitOutReconfigurationWindow) {
  // Start a long flow 0->1, then set FEC on its only direct link; the
  // link is busy during actuation but packets reroute or wait and the
  // flow still completes.
  FlowSpec spec;
  spec.id = 5;
  spec.src = 0;
  spec.dst = 1;
  spec.size = DataSize::megabytes(1);
  std::optional<FlowResult> result;
  rack.network->start_flow(spec, [&](const FlowResult& r) { result = r; });
  sim.schedule_at(10_us, [&] {
    rack.engine->submit(
        plp::SetFecCommand{*rack.topology->link_between(0, 1), phy::FecScheme::kRsKp4});
  });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
}

TEST_F(NetFixture, LinkUsageStatsAccumulate) {
  FlowSpec spec;
  spec.id = 6;
  spec.src = 0;
  spec.dst = 1;
  spec.size = DataSize::kilobytes(100);
  rack.network->start_flow(spec, nullptr);
  sim.run_until();
  const LinkId direct = *rack.topology->link_between(0, 1);
  EXPECT_GT(rack.network->link_busy_time(direct), SimTime::zero());
  EXPECT_GT(rack.network->link_packets(direct), 0u);
  EXPECT_EQ(rack.network->link_packets(9999), 0u);
  // Lane statistics (PLP #5) see the same traffic.
  EXPECT_GT(rack.engine->stats_report(direct).bits_carried, 0u);
}

TEST_F(NetFixture, HistogramsPopulated) {
  FlowSpec spec;
  spec.id = 7;
  spec.src = 0;
  spec.dst = 5;
  spec.size = DataSize::kilobytes(10);
  rack.network->start_flow(spec, nullptr);
  sim.run_until();
  EXPECT_GT(rack.network->packet_latency().count(), 0u);
  EXPECT_EQ(rack.network->flow_completion().count(), 1u);
  EXPECT_GT(rack.network->hop_counts().mean(), 0.0);
}

TEST_F(NetFixture, RejectsBadFlowSpecs) {
  FlowSpec bad;
  bad.id = kNoFlow;
  bad.src = 0;
  bad.dst = 1;
  bad.size = DataSize::bytes(1);
  EXPECT_THROW(rack.network->start_flow(bad, nullptr), std::invalid_argument);
  bad.id = 1;
  bad.size = DataSize::zero();
  EXPECT_THROW(rack.network->start_flow(bad, nullptr), std::invalid_argument);
  bad.size = DataSize::bytes(10);
  rack.network->start_flow(bad, nullptr);
  EXPECT_THROW(rack.network->start_flow(bad, nullptr), std::invalid_argument);  // dup id
}

TEST_F(NetFixture, SwitchPowerGrowsWithTraffic) {
  const double idle = rack.network->switch_power_watts();
  FlowSpec spec;
  spec.id = 8;
  spec.src = 0;
  spec.dst = 1;
  spec.size = DataSize::megabytes(2);
  bool done = false;
  rack.network->start_flow(spec, [&](const FlowResult&) { done = true; });
  // Sample power mid-flow.
  sim.run_until(100_us);
  const double busy = rack.network->switch_power_watts(100_us);
  sim.run_until();
  EXPECT_TRUE(done);
  EXPECT_GT(busy, idle);
}

TEST_F(NetFixture, SwitchingPortCountCachesAgainstTopologyVersion) {
  const std::size_t ports = rack.network->switching_port_count();
  EXPECT_GT(ports, 0u);
  const double idle = rack.network->switch_power_watts();

  // Destroy a link behind the topology's back: the version does not
  // move, so the cache (by design) still serves the old count.
  const auto link = rack.topology->link_between(0, 1);
  const auto other = rack.topology->link_between(1, 2);  // resolve first
  ASSERT_TRUE(link.has_value());
  ASSERT_TRUE(other.has_value());
  rack.plant->destroy_link(*link);
  EXPECT_EQ(rack.network->switching_port_count(), ports);

  // A lane-state mutation (hard lane failure) bumps the version via
  // the plant's change observer: the next query recomputes and sees
  // the destroyed link gone — two cable ends stopped paying.
  rack.plant->fail_lane({rack.plant->link(*other).segments().front().cable, 0});
  EXPECT_EQ(rack.network->switching_port_count(), ports - 2);
  EXPECT_LT(rack.network->switch_power_watts(), idle);

  // A reconfig-style mutation (explicit rebuild) is a version bump
  // too: repairing the lane and rebuilding keeps the count coherent.
  rack.plant->repair_lane({rack.plant->link(*other).segments().front().cable, 0});
  rack.topology->rebuild();
  EXPECT_EQ(rack.network->switching_port_count(), ports - 2);
}

TEST_F(NetFixture, FlowSlotsRecycleThroughFreeList) {
  // Four concurrent flows occupy four distinct slots while live...
  for (FlowId id = 1; id <= 4; ++id) {
    FlowSpec spec;
    spec.id = id;
    spec.src = 0;
    spec.dst = 15;
    spec.size = DataSize::kilobytes(64);
    rack.network->start_flow(spec, nullptr);
  }
  EXPECT_EQ(rack.network->flow_slots(), 4u);
  EXPECT_EQ(rack.network->free_flow_slots(), 0u);
  sim.run_until();
  EXPECT_EQ(rack.network->flows_completed(), 4u);
  EXPECT_EQ(rack.network->free_flow_slots(), 4u);

  // ...and a second wave reuses them instead of growing the pool.
  // Completed ids are recycled, so restarting id 1 is legal now.
  for (FlowId id = 1; id <= 4; ++id) {
    FlowSpec spec;
    spec.id = id;
    spec.src = 0;
    spec.dst = 15;
    spec.size = DataSize::kilobytes(64);
    rack.network->start_flow(spec, nullptr);
  }
  EXPECT_EQ(rack.network->flow_slots(), 4u);
  EXPECT_EQ(rack.network->free_flow_slots(), 0u);
  sim.run_until();
  EXPECT_EQ(rack.network->flows_completed(), 8u);
}

TEST_F(NetFixture, MillionFlowChurnHoldsSlotPoolBounded) {
  // A long-lived service's flow churn: one million short flows, at
  // most `kWindow` alive at once, driven by completion callbacks. The
  // pool must stay at the peak concurrency — NOT grow with the flow
  // count — and no slot may ever be handed out while its flow lives.
  constexpr std::uint64_t kFlows = 1'000'000;
  constexpr int kWindow = 8;
  std::uint64_t launched = 0;
  std::uint64_t completed = 0;
  std::size_t peak_slots = 0;
  std::function<void()> launch_next = [&] {
    if (launched >= kFlows) return;
    FlowSpec spec;
    spec.id = ++launched;
    spec.src = 0;
    spec.dst = 1;
    spec.size = DataSize::bytes(1024);  // one packet per flow
    rack.network->start_flow(spec, [&](const FlowResult& r) {
      ASSERT_FALSE(r.failed);
      ++completed;
      peak_slots = std::max(peak_slots, rack.network->flow_slots());
      launch_next();
    });
  };
  for (int i = 0; i < kWindow; ++i) launch_next();
  sim.run_until();
  EXPECT_EQ(completed, kFlows);
  EXPECT_EQ(rack.network->flows_completed(), kFlows);
  // Bounded: finish_flow recycles the slot before invoking the
  // completion callback, so the chained relaunch reuses it and the
  // pool never exceeds the concurrency window.
  EXPECT_LE(peak_slots, static_cast<std::size_t>(kWindow));
  EXPECT_EQ(rack.network->flow_slots(), rack.network->free_flow_slots());
}

TEST_F(NetFixture, FailedFlowSlotRecyclesOnlyAfterStragglersDrain) {
  // Unroutable flow: every packet burns its retry budget and drops.
  // The first drop fails the flow; the slot must stay allocated until
  // the other in-flight packets drain, then recycle.
  for (phy::LinkId id : rack.topology->links_at(5)) {
    rack.plant->fail_lane({rack.plant->link(id).segments().front().cable, 0});
    rack.plant->fail_lane({rack.plant->link(id).segments().front().cable, 1});
  }
  FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 5;  // unreachable island
  spec.size = DataSize::kilobytes(8);
  std::optional<FlowResult> result;
  rack.network->start_flow(spec, [&](const FlowResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->failed);
  EXPECT_EQ(rack.network->flows_failed(), 1u);
  // All packets accounted: the slot came back.
  EXPECT_EQ(rack.network->free_flow_slots(), rack.network->flow_slots());
}

TEST_F(NetFixture, DeferredStartFiresAtStartTimeOnAFreshSlot) {
  // A spec.start in the future defers the first packet; the start
  // event must fire exactly then, not at schedule time.
  FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 5;
  spec.size = DataSize::kilobytes(8);
  spec.start = SimTime::microseconds(50);
  std::optional<FlowResult> result;
  rack.network->start_flow(spec, [&](const FlowResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_EQ(result->started, SimTime::microseconds(50));
}

TEST_F(NetFixture, DeferredStartOnRecycledSlotCarriesItsOwnGeneration) {
  // Regression for the start-flow slot guard: the deferred start event
  // captures the claim generation and validates it with is_live before
  // touching the slot. The guard must evaporate only for a genuinely
  // recycled slot — a deferred start scheduled against a RE-CLAIMED
  // slot (same index, newer generation) belongs to the new flow and
  // must still fire. Churn waves of completed flows followed by
  // deferred starts exercise exactly that reuse: with the generation
  // captured at claim each wave starts and completes; a guard keyed on
  // anything staler would silently strand every reused slot.
  const auto run_wave = [&](FlowId base, SimTime start_at) {
    int completed = 0;
    for (FlowId id = base; id < base + 4; ++id) {
      FlowSpec spec;
      spec.id = id;
      spec.src = 0;
      spec.dst = 15;
      spec.size = DataSize::kilobytes(8);
      spec.start = start_at;
      rack.network->start_flow(spec, [&](const FlowResult& r) {
        EXPECT_FALSE(r.failed);
        EXPECT_EQ(r.started, std::max(start_at, SimTime::zero()));
        ++completed;
      });
    }
    sim.run_until();
    EXPECT_EQ(completed, 4);
  };

  run_wave(1, SimTime::zero());  // wave 1: claims slots 0..3, recycles them
  EXPECT_EQ(rack.network->free_flow_slots(), rack.network->flow_slots());
  // Wave 2 re-claims the same four slots with deferred starts; each
  // start event must see ITS claim live, not the recycled wave-1 one.
  run_wave(11, sim.now() + SimTime::microseconds(25));
  EXPECT_EQ(rack.network->flows_completed(), 8u);
  EXPECT_EQ(rack.network->free_flow_slots(), rack.network->flow_slots());

  // Third wave mixes deferred and immediate starts on the reused
  // slots within one batch of claims.
  int completed = 0;
  for (FlowId id = 21; id <= 24; ++id) {
    FlowSpec spec;
    spec.id = id;
    spec.src = 0;
    spec.dst = 15;
    spec.size = DataSize::kilobytes(8);
    if (id % 2 == 0) spec.start = sim.now() + SimTime::microseconds(40);
    rack.network->start_flow(spec, [&](const FlowResult& r) {
      EXPECT_FALSE(r.failed);
      ++completed;
    });
  }
  sim.run_until();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(rack.network->flows_completed(), 12u);
}

}  // namespace
}  // namespace rsf::fabric
