#include <gtest/gtest.h>
#include <cmath>

#include "core/breakeven.hpp"
#include "core/price.hpp"

namespace rsf::core {
namespace {

using phy::DataRate;
using phy::DataSize;
using rsf::sim::SimTime;
using namespace rsf::sim::literals;

LinkObservation base_obs() {
  LinkObservation o;
  o.link = 1;
  o.ready = true;
  o.unloaded_latency_ns = 300.0;
  o.utilization = 0.0;
  o.mean_queue_delay_ns = 0.0;
  o.frame_loss = 0.0;
  o.power_watts = 2.0;
  return o;
}

// --- price_link ---

TEST(Price, NotReadyIsInfinite) {
  auto o = base_obs();
  o.ready = false;
  EXPECT_TRUE(std::isinf(price_link(o, PriceWeights::balanced())));
}

TEST(Price, LatencyOnlyEqualsLatency) {
  const auto o = base_obs();
  EXPECT_DOUBLE_EQ(price_link(o, PriceWeights::latency_only()), 300.0);
}

TEST(Price, CongestionTermGrowsConvexly) {
  const PriceWeights w = PriceWeights::balanced();
  auto o = base_obs();
  o.utilization = 0.2;
  const double p20 = price_link(o, w);
  o.utilization = 0.6;
  const double p60 = price_link(o, w);
  o.utilization = 0.9;
  const double p90 = price_link(o, w);
  EXPECT_LT(p20, p60);
  EXPECT_LT(p60, p90);
  // Convex: the 0.6 -> 0.9 jump dwarfs the 0.2 -> 0.6 jump.
  EXPECT_GT(p90 - p60, p60 - p20);
}

TEST(Price, QueueDelayAddsLinearly) {
  const PriceWeights w = PriceWeights::balanced();
  auto o = base_obs();
  const double base = price_link(o, w);
  o.mean_queue_delay_ns = 500.0;
  EXPECT_NEAR(price_link(o, w) - base, 500.0, 1e-9);
}

TEST(Price, HealthPenaltyScalesWithLoss) {
  const PriceWeights w = PriceWeights::balanced();
  auto o = base_obs();
  const double base = price_link(o, w);
  o.frame_loss = 0.01;
  EXPECT_NEAR(price_link(o, w) - base, 0.01 * w.loss_penalty_ns, 1e-9);
}

TEST(Price, PowerTermOnlyWhenWeighted) {
  auto o = base_obs();
  const double balanced = price_link(o, PriceWeights::balanced());
  const double power_aware = price_link(o, PriceWeights::power_aware());
  EXPECT_GT(power_aware, balanced);
  EXPECT_NEAR(power_aware - balanced, 2.0 * 100.0, 1e-9);
}

TEST(Price, UtilizationClampedBelowOne) {
  auto o = base_obs();
  o.utilization = 1.0;  // would divide by zero un-clamped
  EXPECT_TRUE(std::isfinite(price_link(o, PriceWeights::balanced())));
}

TEST(PriceBook, UpdateAndLookup) {
  RackSnapshot snap;
  snap.links.push_back(base_obs());
  auto dead = base_obs();
  dead.link = 2;
  dead.ready = false;
  snap.links.push_back(dead);

  PriceBook book;
  EXPECT_TRUE(std::isnan(book.price(1)));  // unknown yet: no opinion
  book.update(snap, PriceWeights::latency_only());
  EXPECT_DOUBLE_EQ(book.price(1), 300.0);
  EXPECT_TRUE(std::isinf(book.price(2)));   // observed not-ready: excluded
  EXPECT_TRUE(std::isnan(book.price(777)));  // never observed: no opinion
  EXPECT_EQ(book.size(), 2u);
  EXPECT_EQ(book.generation(), 1u);
}

// --- break-even ---

TEST(BreakEven, ClosedFormMatchesDefinition) {
  // 50G -> 100G with 100 us of reconfiguration dead time:
  // S* = T / (1/50G - 1/100G) = 1e-4 / 1e-11 = 1e7 bits.
  const auto s = break_even_size(DataRate::gbps(50), DataRate::gbps(100), 100_us);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(static_cast<double>(s->bit_count()), 1e7, 1.0);
}

TEST(BreakEven, AtThresholdBothChoicesTie) {
  const auto old_r = DataRate::gbps(50);
  const auto new_r = DataRate::gbps(100);
  const SimTime t = 100_us;
  const DataSize s = *break_even_size(old_r, new_r, t);
  const SimTime keep = completion_time(s, old_r, SimTime::zero());
  const SimTime move = completion_time(s, new_r, t);
  EXPECT_NEAR(static_cast<double>(keep.ps()), static_cast<double>(move.ps()),
              static_cast<double>(keep.ps()) * 1e-6);
}

TEST(BreakEven, NoGainMeansNoBreakEven) {
  EXPECT_FALSE(break_even_size(DataRate::gbps(100), DataRate::gbps(100), 1_us).has_value());
  EXPECT_FALSE(break_even_size(DataRate::gbps(100), DataRate::gbps(50), 1_us).has_value());
}

TEST(BreakEven, NoCurrentPathMakesAnyFlowWorthIt) {
  const auto s = break_even_size(DataRate::zero(), DataRate::gbps(25), 1_us);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, DataSize::zero());
}

TEST(BreakEven, WorthReconfiguringRespectsThreshold) {
  const auto old_r = DataRate::gbps(50);
  const auto new_r = DataRate::gbps(100);
  const SimTime t = 100_us;
  // Threshold is 1.25 MB; 2 MB is worth it, 0.5 MB is not.
  EXPECT_TRUE(worth_reconfiguring(DataSize::megabytes(2), old_r, new_r, t));
  EXPECT_FALSE(worth_reconfiguring(DataSize::kilobytes(500), old_r, new_r, t));
}

TEST(BreakEven, ThresholdScalesLinearlyWithReconfigCost) {
  const auto s1 = break_even_size(DataRate::gbps(50), DataRate::gbps(100), 10_us);
  const auto s2 = break_even_size(DataRate::gbps(50), DataRate::gbps(100), 100_us);
  ASSERT_TRUE(s1 && s2);
  EXPECT_NEAR(static_cast<double>(s2->bit_count()),
              10.0 * static_cast<double>(s1->bit_count()),
              static_cast<double>(s2->bit_count()) * 1e-6);
}

TEST(BreakEven, LargerGainLowersThreshold) {
  const auto small_gain = break_even_size(DataRate::gbps(50), DataRate::gbps(60), 100_us);
  const auto big_gain = break_even_size(DataRate::gbps(50), DataRate::gbps(200), 100_us);
  ASSERT_TRUE(small_gain && big_gain);
  EXPECT_GT(small_gain->bit_count(), big_gain->bit_count());
}

TEST(BreakEven, PacketsVariant) {
  // Saving 1 us per packet against 100 us of dead time: 100 packets.
  const auto n = break_even_packets(1_us, 100_us);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 100u);
  EXPECT_FALSE(break_even_packets(SimTime::zero(), 1_us).has_value());
  EXPECT_FALSE(break_even_packets(SimTime::zero() - 1_ns, 1_us).has_value());
}

TEST(BreakEven, CompletionTimeComposition) {
  // 1e6 bits at 1 Gbps = 1 ms of serialization on top of the setup.
  EXPECT_EQ(completion_time(DataSize::bits(1'000'000), DataRate::gbps(1), 5_us),
            5_us + 1_ms);
}

}  // namespace
}  // namespace rsf::core
