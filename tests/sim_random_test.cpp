#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rsf::sim {
namespace {

TEST(RandomStream, DeterministicForSameSeedAndName) {
  RandomStream a(42, "lane");
  RandomStream b(42, "lane");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RandomStream, DifferentNamesGiveDifferentStreams) {
  RandomStream a(42, "lane");
  RandomStream b(42, "link");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomStream, DifferentSeedsGiveDifferentStreams) {
  RandomStream a(1, "x");
  RandomStream b(2, "x");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomStream, UniformInUnitInterval) {
  RandomStream rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, UniformMeanNearHalf) {
  RandomStream rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomStream, UniformRangeRespected) {
  RandomStream rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(3.0, 7.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RandomStream, UniformIntInclusiveBounds) {
  RandomStream rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces appear
}

TEST(RandomStream, UniformIntSingleton) {
  RandomStream rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RandomStream, UniformIntRejectsInvertedRange) {
  RandomStream rng(11);
  EXPECT_THROW(rng.uniform_int(6, 1), std::invalid_argument);
}

TEST(RandomStream, ExponentialMeanConverges) {
  RandomStream rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RandomStream, ExponentialRejectsNonPositiveMean) {
  RandomStream rng(13);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RandomStream, BernoulliExtremes) {
  RandomStream rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RandomStream, BernoulliFrequency) {
  RandomStream rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomStream, NormalMomentsConverge) {
  RandomStream rng(19);
  double sum = 0;
  double sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RandomStream, BoundedParetoStaysInBounds) {
  RandomStream rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.2, 100.0, 1e6);
    EXPECT_GE(v, 100.0);
    EXPECT_LE(v, 1e6 + 1.0);
  }
}

TEST(RandomStream, BoundedParetoIsHeavyTailed) {
  RandomStream rng(23);
  // Most mass near the minimum but a visible tail.
  int below_double_min = 0;
  int above_100x = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.bounded_pareto(1.2, 100.0, 1e6);
    if (v < 200.0) ++below_double_min;
    if (v > 1e4) ++above_100x;
  }
  EXPECT_GT(below_double_min, n / 2);
  EXPECT_GT(above_100x, 10);
}

TEST(RandomStream, BoundedParetoRejectsBadParams) {
  RandomStream rng(23);
  EXPECT_THROW(rng.bounded_pareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.bounded_pareto(1.0, 2.0, 2.0), std::invalid_argument);
}

TEST(RandomStream, PoissonZeroMean) {
  RandomStream rng(29);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RandomStream, PoissonSmallMeanConverges) {
  RandomStream rng(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RandomStream, PoissonLargeMeanUsesNormalApprox) {
  RandomStream rng(29);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(RandomStream, ForkIsIndependentAndDeterministic) {
  RandomStream parent(31, "root");
  RandomStream c1 = parent.fork("child");
  RandomStream c2 = RandomStream(31, "root").fork("child");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Fnv1a, StableKnownValues) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("lane"), fnv1a("lane"));
}

}  // namespace
}  // namespace rsf::sim
