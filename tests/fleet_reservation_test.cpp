// Spine circuit reservations: the fleet-scale circuit vs. packet
// trade. Residual-rate arithmetic (a carve slows the shared FIFO by
// exactly the reserved fraction and the slice FIFO is independent),
// versioned-handle semantics (stale after release, idempotent,
// recycled slots detectable), survival across repricing but teardown
// on link failure with fallback to the shared residual, the
// controller's promote/demote hysteresis, skewed-scenario
// determinism, and the regression that the packetized default path is
// untouched while reservations are never configured.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "fabric/interconnect.hpp"
#include "runtime/fleet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "workload/crossrack.hpp"

namespace rsf {
namespace {

using fabric::Interconnect;
using fabric::SpineLinkParams;
using fabric::SpineReservationHandle;
using phy::DataSize;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using runtime::FleetConfig;
using runtime::FleetRuntime;
using runtime::RackShape;
using runtime::RackSpec;
using runtime::RuntimeConfig;
using runtime::SpineSpec;
using namespace rsf::sim::literals;

// ---------------------------------------------------------------------------
// Interconnect-level semantics.
// ---------------------------------------------------------------------------

struct ReservationFixture : ::testing::Test {
  Simulator sim;
  telemetry::Registry registry;
  Interconnect spine{&sim, &registry};

  fabric::SpineLinkId add(std::uint32_t a, std::uint32_t b,
                          double gbps = 8.0) {
    SpineLinkParams p;
    p.a = {a, 0};
    p.b = {b, 0};
    p.rate = phy::DataRate::gbps(gbps);
    p.latency = SimTime::zero();  // keep the arithmetic bare
    return spine.add_link(p);
  }

  /// Send one packet and run to completion; returns the arrival time.
  SimTime send(fabric::SpineLinkId id, std::uint32_t from, std::int64_t bytes,
               SpineReservationHandle res = {}) {
    std::optional<SimTime> arrival;
    EXPECT_TRUE(spine.send_packet(id, from, DataSize::bytes(bytes), res,
                                  [&](SimTime t, bool) { arrival = t; }));
    sim.run_until();
    EXPECT_TRUE(arrival.has_value());
    return arrival.value_or(SimTime::zero());
  }
};

TEST_F(ReservationFixture, ResidualRateArithmeticIsExact) {
  // 8 Gb/s, 1000-byte packet: 1 us at the full rate.
  const auto link = add(0, 1);
  EXPECT_EQ(send(link, 0, 1000).us(), 1.0);

  // Carving half leaves the shared residual at exactly half the rate:
  // the same packet now serializes in 2 us.
  const auto res = spine.reserve(0, 1, 0.5);
  ASSERT_TRUE(res.has_value());
  EXPECT_DOUBLE_EQ(spine.reserved_fraction(link, 0), 0.5);
  const SimTime t0 = sim.now();
  EXPECT_EQ((send(link, 0, 1000) - t0).us(), 2.0);

  // The reserved slice is an independent FIFO at the carved rate: a
  // reserved and a shared packet sent back-to-back do not queue
  // behind each other (both arrive 2 us after injection).
  const SimTime t1 = sim.now();
  std::optional<SimTime> shared_arrival;
  std::optional<SimTime> reserved_arrival;
  spine.send_packet(link, 0, DataSize::bytes(1000),
                    [&](SimTime t, bool) { shared_arrival = t; });
  spine.send_packet(link, 0, DataSize::bytes(1000), *res,
                    [&](SimTime t, bool) { reserved_arrival = t; });
  sim.run_until();
  ASSERT_TRUE(shared_arrival && reserved_arrival);
  EXPECT_EQ((*shared_arrival - t1).us(), 2.0);
  EXPECT_EQ((*reserved_arrival - t1).us(), 2.0);
  EXPECT_GT(spine.counters().get("spine.reserved_bytes"), 0u);

  // Releasing restores the full rate exactly.
  spine.release(*res);
  EXPECT_DOUBLE_EQ(spine.reserved_fraction(link, 0), 0.0);
  const SimTime t2 = sim.now();
  EXPECT_EQ((send(link, 0, 1000) - t2).us(), 1.0);
}

TEST_F(ReservationFixture, ReverseDirectionIsNeverTouchedByACarve) {
  const auto link = add(0, 1);
  const auto res = spine.reserve(0, 1, 0.5);
  ASSERT_TRUE(res.has_value());
  // The carve is per direction of travel: 1 -> 0 still runs at the
  // full rate.
  EXPECT_DOUBLE_EQ(spine.reserved_fraction(link, 1), 0.0);
  const SimTime t0 = sim.now();
  EXPECT_EQ((send(link, 1, 1000) - t0).us(), 1.0);
}

TEST_F(ReservationFixture, AdmissionRefusesOversubscriptionAndDuplicates) {
  add(0, 1);
  EXPECT_THROW(static_cast<void>(spine.reserve(0, 1, 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(spine.reserve(0, 1, 1.0)), std::invalid_argument);
  EXPECT_FALSE(spine.reserve(0, 0, 0.5).has_value());  // self pair
  EXPECT_FALSE(spine.reserve(0, 7, 0.5).has_value());  // unreachable
  const auto first = spine.reserve(0, 1, 0.6);
  ASSERT_TRUE(first.has_value());
  // Same pair again: refused while the first is live.
  EXPECT_FALSE(spine.reserve(0, 1, 0.1).has_value());
  // Another pair over the same direction: 0.6 + 0.6 has no headroom.
  // (A second link 1 -> 2 makes pair (0, 2) routable through link 0.)
  add(1, 2);
  EXPECT_FALSE(spine.reserve(0, 2, 0.6).has_value());
  EXPECT_EQ(spine.counters().get("spine.reservations_refused"), 1u);
  // A fitting fraction is admitted, and no partial carve leaked from
  // the refusal.
  EXPECT_DOUBLE_EQ(spine.reserved_fraction(0, 0), 0.6);
  EXPECT_TRUE(spine.reserve(0, 2, 0.3).has_value());
  EXPECT_DOUBLE_EQ(spine.reserved_fraction(0, 0), 0.9);
}

TEST_F(ReservationFixture, SurvivesRepricingButDiesWithItsLink) {
  add(0, 1);
  const auto l12 = add(1, 2);
  const auto res = spine.reserve(0, 2, 0.5);
  ASSERT_TRUE(res.has_value());
  ASSERT_EQ(spine.reservation_route(*res).size(), 2u);

  // Repricing every crossed link does not disturb the pinned circuit.
  spine.set_link_cost(0, 50.0);
  spine.set_link_cost(l12, 50.0);
  EXPECT_TRUE(spine.reservation_active(*res));
  EXPECT_EQ(spine.reservation_route(*res).size(), 2u);

  // A failed link on the route preempts it: capacity returns, the
  // handle goes stale, and the preemption is counted.
  spine.set_link_up(l12, false);
  EXPECT_FALSE(spine.reservation_active(*res));
  EXPECT_DOUBLE_EQ(spine.reserved_fraction(0, 0), 0.0);
  EXPECT_EQ(spine.counters().get("spine.reservation_preemptions"), 1u);

  // Traffic still holding the stale handle falls back to the shared
  // residual of a surviving link instead of erroring.
  const SimTime t0 = sim.now();
  EXPECT_EQ((send(0, 0, 1000, *res) - t0).us(), 1.0);  // full rate again

  // Release of a stale handle is an idempotent no-op.
  spine.release(*res);
  EXPECT_EQ(spine.counters().get("spine.reservation_releases"), 0u);
}

TEST_F(ReservationFixture, RecycledSlotsStaleifyOldHandles) {
  add(0, 1);
  const auto first = spine.reserve(0, 1, 0.4);
  ASSERT_TRUE(first.has_value());
  spine.release(*first);
  const std::uint64_t version_after_release = spine.reservation_version();
  // The next reservation reuses the slot with a bumped generation:
  // the old handle stays stale.
  const auto second = spine.reserve(1, 0, 0.4);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, first->id);
  EXPECT_NE(second->generation, first->generation);
  EXPECT_FALSE(spine.reservation_active(*first));
  EXPECT_TRUE(spine.reservation_active(*second));
  EXPECT_GT(spine.reservation_version(), version_after_release);
  EXPECT_THROW(static_cast<void>(spine.reservation_route(*first)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fleet-level: transport binding and the controller policy.
// ---------------------------------------------------------------------------

RuntimeConfig rack_config() {
  RuntimeConfig cfg;
  cfg.shape = RackShape::kGrid;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  cfg.enable_crc = false;
  return cfg;
}

/// Two racks over one slow spine link; the controller runs the
/// reservation policy with fast hysteresis so a short test exercises
/// both edges.
FleetConfig policy_fleet(bool reservations) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{rack_config(), 0});
  fc.racks.push_back(RackSpec{rack_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  s.rate = phy::DataRate::gbps(10);
  fc.spine.push_back(s);
  fc.enable_controller = true;
  fc.controller.epoch = 20_us;
  fc.controller.reservations.enable = reservations;
  fc.controller.reservations.fraction = 0.5;
  fc.controller.reservations.hot_bytes_per_epoch = 8 * 1024;
  fc.controller.reservations.idle_bytes_per_epoch = 1024;
  fc.controller.reservations.promote_after = 2;
  fc.controller.reservations.demote_after = 3;
  return fc;
}

TEST(FleetReservationPolicy, PromotesHotPairsAndDemotesIdleOnesWithHysteresis) {
  FleetRuntime fleet(policy_fleet(true));
  std::optional<runtime::FleetFlowResult> result;
  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 0, 0);
  spec.size = DataSize::megabytes(1);  // ~800 us on 10G: many epochs hot
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.start();
  fleet.run_until();
  ASSERT_TRUE(result.has_value());
  ASSERT_FALSE(result->failed);
  // The pair went hot for >= promote_after epochs and was promoted;
  // its packets rode the carved slice.
  EXPECT_EQ(fleet.controller().promotions(), 1u);
  EXPECT_GT(fleet.spine().counters().get("spine.reserved_bytes"), 0u);
  EXPECT_TRUE(fleet.spine().find_reservation(0, 1).has_value());
  // Hysteresis: one idle epoch is not a demotion...
  EXPECT_EQ(fleet.controller().demotions(), 0u);
  fleet.run_until(fleet.now() + 40_us);
  EXPECT_EQ(fleet.controller().demotions(), 0u);
  // ...but demote_after consecutive idle epochs are.
  fleet.run_until(fleet.now() + 200_us);
  EXPECT_EQ(fleet.controller().demotions(), 1u);
  EXPECT_FALSE(fleet.spine().find_reservation(0, 1).has_value());
  EXPECT_EQ(fleet.spine().reservation_count(), 0u);
  fleet.stop();
}

TEST(FleetReservationPolicy, PolicyOffNeverReserves) {
  FleetRuntime fleet(policy_fleet(false));
  std::optional<runtime::FleetFlowResult> result;
  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 0, 0);
  spec.size = DataSize::megabytes(1);
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.start();
  fleet.run_until();
  fleet.stop();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(fleet.controller().promotions(), 0u);
  EXPECT_EQ(fleet.spine().reservation_count(), 0u);
  EXPECT_EQ(fleet.spine().counters().get("spine.reserved_bytes"), 0u);
  EXPECT_EQ(fleet.spine().reservation_version(), 0u);
}

TEST(FleetReservationPolicy, PreemptedPairFallsBackAndKeepsDelivering) {
  // Two parallel spine links; the promoted circuit rides link 0, then
  // link 0 dies mid-flow: the reservation is preempted, packets fall
  // back to the shared residual of link 1, and the flow completes.
  FleetConfig fc = policy_fleet(true);
  SpineSpec s = fc.spine[0];
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);
  std::optional<runtime::FleetFlowResult> result;
  runtime::FleetFlowSpec spec;
  spec.src = fleet.at(0, 3, 3);
  spec.dst = fleet.at(1, 0, 0);
  spec.size = DataSize::megabytes(1);
  fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
  fleet.sim().schedule_at(200_us, [&fleet] { fleet.spine().set_link_up(0, false); });
  fleet.start();
  fleet.run_until();
  fleet.stop();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->failed);
  EXPECT_GE(fleet.controller().promotions(), 1u);
  EXPECT_EQ(fleet.spine().counters().get("spine.reservation_preemptions"), 1u);
  // Traffic kept flowing on the survivor after the preemption.
  EXPECT_GT(fleet.spine().link_packets(1, 0), 0u);
}

TEST(FleetReservationPolicy, PureBulkIncastNotesDemandAndPromotes) {
  // Store-and-forward flows must feed the pair-demand tracker too:
  // under the bulk comparison baseline the reservation policy used to
  // be blind (no packetization step ever noted byte·hops), so a
  // persistently hot rack pair was never promoted. A sustained
  // pure-bulk incast onto rack 1 must now earn its carve.
  FleetConfig fc = policy_fleet(true);
  fc.transport = runtime::SpineTransport::kStoreAndForward;
  fc.controller.epoch = 100_us;
  FleetRuntime fleet(fc);
  constexpr int kSenders = 6;
  constexpr int kFlows = 36;
  int launched = 0;
  int completed = 0;
  std::function<void()> launch = [&] {
    ++launched;
    runtime::FleetFlowSpec spec;
    spec.src = fleet.at(0, launched % 4, (launched / 4) % 4);
    spec.dst = fleet.at(1, 0, 0);
    spec.size = DataSize::kilobytes(64);
    fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) {
      ASSERT_FALSE(r.failed);
      ++completed;
      if (launched < kFlows) launch();
    });
  };
  for (int i = 0; i < kSenders; ++i) launch();
  fleet.start();
  fleet.run_until();
  fleet.stop();
  EXPECT_EQ(completed, kFlows);
  // Demand was recorded in byte·hops and the hot pair got promoted.
  EXPECT_FALSE(fleet.spine().pair_demand().empty());
  EXPECT_GE(fleet.controller().promotions(), 1u);
}

TEST(FleetReservationPolicy, RejectsBadPolicyConfig) {
  FleetConfig fc = policy_fleet(true);
  fc.controller.reservations.fraction = 1.0;
  EXPECT_THROW(FleetRuntime bad(fc), std::invalid_argument);
  fc.controller.reservations.fraction = 0.5;
  fc.controller.reservations.promote_after = 0;
  EXPECT_THROW(FleetRuntime bad(fc), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Default-path regression and skewed-scenario determinism.
// ---------------------------------------------------------------------------

TEST(FleetReservationPolicy, DefaultPacketizedPathIsUntouchedByTheReservationLayer) {
  // Arm A never touches the reservation API. Arm B carves and
  // releases a reservation before traffic starts. The shared path's
  // timing must be bit-identical: a released carve leaves no residue.
  auto run_arm = [](bool touch_reservations) {
    FleetConfig fc = policy_fleet(false);
    FleetRuntime fleet(fc);
    if (touch_reservations) {
      const auto res = fleet.spine().reserve(0, 1, 0.7);
      EXPECT_TRUE(res.has_value());
      fleet.spine().release(*res);
    }
    std::optional<runtime::FleetFlowResult> result;
    runtime::FleetFlowSpec spec;
    spec.src = fleet.at(0, 3, 3);
    spec.dst = fleet.at(1, 0, 0);
    spec.size = DataSize::kilobytes(256);
    fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { result = r; });
    fleet.start();
    fleet.run_until();
    fleet.stop();
    EXPECT_TRUE(result.has_value() && !result->failed);
    return std::pair{result->finished, fleet.sim().executed()};
  };
  const auto [finished_a, events_a] = run_arm(false);
  const auto [finished_b, events_b] = run_arm(true);
  EXPECT_EQ(finished_a.ps(), finished_b.ps());
  EXPECT_EQ(events_a, events_b);
}

TEST(SkewedFleetScenario, SameSeedRunsAreByteIdentical) {
  for (const auto kind : {workload::SkewedScenarioKind::kHotRackIncast,
                          workload::SkewedScenarioKind::kSlowSpineLeg,
                          workload::SkewedScenarioKind::kMixedRackSizes}) {
    workload::SkewedScenarioConfig cfg;
    cfg.kind = kind;
    cfg.reservations = true;
    cfg.loss_prob = 0.01;  // exercise the spine RNG too
    workload::SkewedFleetScenario a(cfg);
    const auto ra = a.run();
    workload::SkewedFleetScenario b(cfg);
    const auto rb = b.run();
    EXPECT_EQ(ra.hot.job_completion.ps(), rb.hot.job_completion.ps());
    EXPECT_EQ(ra.background.job_completion.ps(), rb.background.job_completion.ps());
    EXPECT_EQ(ra.promotions, rb.promotions);
    EXPECT_EQ(a.fleet().metrics_table().to_string(),
              b.fleet().metrics_table().to_string());
  }
}

TEST(SkewedFleetScenario, HotRackIncastShowsTheReservationCrossover) {
  // The acceptance anchor: with a hot rack pair, reservations improve
  // that pair's job completion while the shared residual's
  // degradation stays bounded (under the 1/(1 - fraction) = 2.5x
  // worst case by a wide margin).
  workload::SkewedScenarioConfig cfg;
  cfg.kind = workload::SkewedScenarioKind::kHotRackIncast;
  cfg.reservations = false;
  workload::SkewedFleetScenario off(cfg);
  const auto packet = off.run();
  cfg.reservations = true;
  workload::SkewedFleetScenario on(cfg);
  const auto reserved = on.run();
  EXPECT_GE(reserved.promotions, 1u);
  EXPECT_GT(reserved.reserved_bytes, 0u);
  EXPECT_LT(reserved.hot.job_completion.ps(), packet.hot.job_completion.ps());
  EXPECT_GT(reserved.background.job_completion.ps(),
            packet.background.job_completion.ps());
  EXPECT_LT(reserved.background.job_completion.ps(),
            packet.background.job_completion.ps() * 2);
  EXPECT_EQ(packet.hot.failed + packet.background.failed, 0u);
  EXPECT_EQ(reserved.hot.failed + reserved.background.failed, 0u);
}

// ---------------------------------------------------------------------------
// Fleet flow slot recycling (the Network::flows_ pattern, one layer up).
// ---------------------------------------------------------------------------

TEST(FleetFlowChurn, SequentialFlowsHoldThePoolAtPeakConcurrency) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{rack_config(), 0});
  fc.racks.push_back(RackSpec{rack_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);
  constexpr int kFlows = 2000;
  int completed = 0;
  // Each completion immediately starts the next flow from inside the
  // callback — the recycled-before-callback slot must be reusable.
  std::function<void()> chain = [&] {
    runtime::FleetFlowSpec spec;
    spec.src = fleet.at(0, 0, 0);
    spec.dst = fleet.at(1, 3, 3);
    spec.size = DataSize::kilobytes(4);
    fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) {
      ASSERT_FALSE(r.failed);
      if (++completed < kFlows) chain();
    });
  };
  chain();
  fleet.run_until();
  EXPECT_EQ(completed, kFlows);
  EXPECT_EQ(fleet.flows_completed(), static_cast<std::uint64_t>(kFlows));
  // One flow alive at a time: the pool never grew past one slot.
  EXPECT_EQ(fleet.flow_slots(), 1u);
  EXPECT_EQ(fleet.free_flow_slots(), 1u);
}

TEST(FleetFlowChurn, StoreAndForwardChurnRecyclesToo) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{rack_config(), 0});
  fc.racks.push_back(RackSpec{rack_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  fc.spine.push_back(s);
  fc.transport = runtime::SpineTransport::kStoreAndForward;
  FleetRuntime fleet(fc);
  int completed = 0;
  std::function<void()> chain = [&] {
    runtime::FleetFlowSpec spec;
    spec.src = fleet.at(0, 0, 0);
    spec.dst = fleet.at(1, 3, 3);
    spec.size = DataSize::kilobytes(4);
    fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) {
      ASSERT_FALSE(r.failed);
      if (++completed < 500) chain();
    });
  };
  chain();
  fleet.run_until();
  EXPECT_EQ(completed, 500);
  EXPECT_EQ(fleet.flow_slots(), 1u);
}

TEST(FleetFlowChurn, ConcurrentBurstThenChurnKeepsThePeakBound) {
  FleetConfig fc;
  fc.racks.push_back(RackSpec{rack_config(), 0});
  fc.racks.push_back(RackSpec{rack_config(), 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  fc.spine.push_back(s);
  FleetRuntime fleet(fc);
  constexpr int kBurst = 8;
  constexpr int kWaves = 50;
  int launched = 0;
  int completed = 0;
  std::function<void()> launch = [&] {
    ++launched;
    runtime::FleetFlowSpec spec;
    spec.src = fleet.at(0, 0, 0);
    spec.dst = fleet.at(1, 3, 3);
    spec.size = DataSize::kilobytes(4);
    fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) {
      ASSERT_FALSE(r.failed);
      ++completed;
      if (launched < kBurst * kWaves) launch();
    });
  };
  for (int i = 0; i < kBurst; ++i) launch();
  fleet.run_until();
  EXPECT_EQ(completed, kBurst * kWaves);
  // The pool is bounded by the peak concurrency, not the flow count.
  EXPECT_LE(fleet.flow_slots(), static_cast<std::size_t>(kBurst));
}

}  // namespace
}  // namespace rsf
