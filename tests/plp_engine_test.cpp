// Tests of the PLP execution engine: actuation timing, busy tracking,
// queueing, observers, capabilities, and failure handling.
#include "plp/engine.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace rsf::plp {
namespace {

using phy::CableId;
using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct EngineFixture : ::testing::Test {
  Simulator sim;
  phy::PhysicalPlant plant;
  CableId c01, c12;
  LinkId l01, l12;
  PlpTimings timings;
  std::optional<PlpEngine> engine;

  void SetUp() override {
    c01 = plant.add_cable(0, 1, 2.0, phy::Medium::kFiber, 4, phy::DataRate::gbps(25));
    c12 = plant.add_cable(1, 2, 2.0, phy::Medium::kFiber, 4, phy::DataRate::gbps(25));
    l01 = plant.create_adjacent_link(c01, {0, 1});
    l12 = plant.create_adjacent_link(c12, {0, 1});
    engine.emplace(&sim, &plant, timings);
    engine->instant_bring_up(l01);
    engine->instant_bring_up(l12);
  }
};

TEST_F(EngineFixture, InstantBringUpMakesReady) {
  EXPECT_TRUE(plant.link(l01).ready());
  EXPECT_FALSE(engine->link_busy(l01));
}

TEST_F(EngineFixture, SplitCompletesAfterActuationTime) {
  std::optional<PlpResult> result;
  engine->submit(SplitCommand{l01, 1}, [&](const PlpResult& r) { result = r; });
  // Plant mutates eagerly but completion waits for the actuation time.
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(plant.has_link(l01));
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->created.size(), 2u);
  EXPECT_EQ(result->completed_at, timings.command_overhead + timings.split);
  EXPECT_EQ(plant.link(result->created[0]).lane_count(), 1);
  EXPECT_EQ(plant.link(result->created[1]).lane_count(), 1);
  // Lane states carried over: both halves ready immediately.
  EXPECT_TRUE(plant.link(result->created[0]).ready());
}

TEST_F(EngineFixture, LinksBusyDuringActuation) {
  std::optional<PlpResult> result;
  engine->submit(SplitCommand{l01, 1}, [&](const PlpResult& r) { result = r; });
  sim.run_events(0);  // nothing yet
  // The created links are busy until completion.
  const auto ids = plant.link_ids();
  int busy = 0;
  for (LinkId id : ids) {
    if (engine->link_busy(id)) ++busy;
  }
  EXPECT_EQ(busy, 2);
  sim.run_until();
  for (LinkId id : plant.link_ids()) EXPECT_FALSE(engine->link_busy(id));
}

TEST_F(EngineFixture, BundleRoundTrip) {
  std::optional<PlpResult> split_result;
  engine->submit(SplitCommand{l01, 1}, [&](const PlpResult& r) { split_result = r; });
  sim.run_until();
  ASSERT_TRUE(split_result && split_result->ok);

  std::optional<PlpResult> bundle_result;
  engine->submit(BundleCommand{split_result->created[0], split_result->created[1]},
                 [&](const PlpResult& r) { bundle_result = r; });
  sim.run_until();
  ASSERT_TRUE(bundle_result && bundle_result->ok);
  EXPECT_EQ(plant.link(bundle_result->created[0]).lane_count(), 2);
}

TEST_F(EngineFixture, BypassJoinRetrainsAndReportsReadiness) {
  std::vector<std::pair<LinkId, bool>> readiness_events;
  engine->add_readiness_observer(
      [&](LinkId id, bool ready) { readiness_events.emplace_back(id, ready); });

  std::optional<PlpResult> result;
  engine->submit(BypassJoinCommand{l01, l12}, [&](const PlpResult& r) { result = r; });
  // Immediately after submission the joined link exists but trains.
  ASSERT_EQ(plant.link_count(), 1u);
  const LinkId joined = plant.link_ids().front();
  EXPECT_FALSE(plant.link(joined).ready());

  sim.run_until();
  ASSERT_TRUE(result && result->ok);
  EXPECT_EQ(result->created.front(), joined);
  EXPECT_TRUE(plant.link(joined).ready());
  EXPECT_EQ(result->completed_at,
            timings.command_overhead + timings.bypass_setup + timings.lane_retrain);
  // Observed: down at join, up at completion.
  ASSERT_GE(readiness_events.size(), 2u);
  EXPECT_EQ(readiness_events.front(), std::make_pair(joined, false));
  EXPECT_EQ(readiness_events.back(), std::make_pair(joined, true));
}

TEST_F(EngineFixture, BypassSeverRestores) {
  engine->submit(BypassJoinCommand{l01, l12});
  sim.run_until();
  const LinkId joined = plant.link_ids().front();

  std::optional<PlpResult> result;
  engine->submit(BypassSeverCommand{joined, 1}, [&](const PlpResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result && result->ok);
  EXPECT_EQ(result->created.size(), 2u);
  EXPECT_TRUE(plant.link(result->created[0]).ready());
  EXPECT_TRUE(plant.link(result->created[1]).ready());
}

TEST_F(EngineFixture, ShutdownAndBringUpCycle) {
  std::optional<PlpResult> down;
  engine->submit(ShutdownCommand{l01}, [&](const PlpResult& r) { down = r; });
  sim.run_until();
  ASSERT_TRUE(down && down->ok);
  EXPECT_FALSE(plant.link(l01).ready());

  std::optional<PlpResult> up;
  engine->submit(BringUpCommand{l01}, [&](const PlpResult& r) { up = r; });
  sim.run_until();
  ASSERT_TRUE(up && up->ok);
  EXPECT_TRUE(plant.link(l01).ready());
  EXPECT_EQ(up->completed_at - down->completed_at,
            timings.command_overhead + timings.lane_power_on + timings.lane_retrain);
}

TEST_F(EngineFixture, SetFecSwapsSpec) {
  std::optional<PlpResult> result;
  engine->submit(SetFecCommand{l01, phy::FecScheme::kRsKp4},
                 [&](const PlpResult& r) { result = r; });
  // Not applied until the actuation completes.
  EXPECT_EQ(plant.link(l01).fec().scheme, phy::FecScheme::kNone);
  sim.run_until();
  ASSERT_TRUE(result && result->ok);
  EXPECT_EQ(plant.link(l01).fec().scheme, phy::FecScheme::kRsKp4);
}

TEST_F(EngineFixture, QueryStatsReportsLinkState) {
  plant.set_cable_ber(c01, 1e-7);
  std::optional<PlpResult> result;
  engine->submit(QueryStatsCommand{l01}, [&](const PlpResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result && result->ok);
  ASSERT_TRUE(result->stats.has_value());
  EXPECT_EQ(result->stats->link, l01);
  EXPECT_EQ(result->stats->lane_count, 2);
  EXPECT_DOUBLE_EQ(result->stats->worst_pre_fec_ber, 1e-7);
  EXPECT_DOUBLE_EQ(result->stats->raw_gbps, 50.0);
  EXPECT_TRUE(result->stats->ready);
}

TEST_F(EngineFixture, CommandsOnBusyLinkQueueFifo) {
  std::vector<int> completion_order;
  engine->submit(SetFecCommand{l01, phy::FecScheme::kRsKr4},
                 [&](const PlpResult&) { completion_order.push_back(1); });
  engine->submit(SetFecCommand{l01, phy::FecScheme::kRsKp4},
                 [&](const PlpResult&) { completion_order.push_back(2); });
  EXPECT_EQ(engine->queued_commands(), 1u);
  sim.run_until();
  EXPECT_EQ(completion_order, (std::vector<int>{1, 2}));
  EXPECT_EQ(plant.link(l01).fec().scheme, phy::FecScheme::kRsKp4);
}

TEST_F(EngineFixture, StatsQueriesBypassBusyQueue) {
  engine->submit(SetFecCommand{l01, phy::FecScheme::kRsKr4});
  bool stats_done = false;
  engine->submit(QueryStatsCommand{l01}, [&](const PlpResult& r) {
    stats_done = true;
    EXPECT_TRUE(r.ok);
  });
  EXPECT_EQ(engine->queued_commands(), 0u);  // not queued behind the busy link
  sim.run_until(timings.command_overhead + timings.stats_query);
  EXPECT_TRUE(stats_done);
  sim.run_until();
}

TEST_F(EngineFixture, QueuedCommandOnDestroyedLinkFails) {
  // Split l01; while busy, queue a bundle referencing l01 (which the
  // split destroys).
  engine->submit(SplitCommand{l01, 1});
  std::optional<PlpResult> result;
  engine->submit(SetFecCommand{l01, phy::FecScheme::kRsKp4},
                 [&](const PlpResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_FALSE(result->error.empty());
}

TEST_F(EngineFixture, UnknownLinkFailsCleanly) {
  std::optional<PlpResult> result;
  engine->submit(SplitCommand{9999, 1}, [&](const PlpResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());  // fails synchronously
  EXPECT_FALSE(result->ok);
}

TEST_F(EngineFixture, InvalidSplitFailsViaCallback) {
  std::optional<PlpResult> result;
  engine->submit(SplitCommand{l01, 5}, [&](const PlpResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  // The link is untouched and not leaked into the busy set.
  EXPECT_TRUE(plant.has_link(l01));
  EXPECT_FALSE(engine->link_busy(l01));
}

TEST_F(EngineFixture, TopologyObserverSeesChanges) {
  std::vector<phy::LinkId> removed;
  std::vector<phy::LinkId> created;
  engine->add_topology_observer([&](const std::vector<LinkId>& r,
                                    const std::vector<LinkId>& c) {
    removed.insert(removed.end(), r.begin(), r.end());
    created.insert(created.end(), c.begin(), c.end());
  });
  engine->submit(SplitCommand{l01, 1});
  sim.run_until();
  EXPECT_EQ(removed, std::vector<LinkId>{l01});
  EXPECT_EQ(created.size(), 2u);
}

TEST_F(EngineFixture, CountersTrackCommands) {
  engine->submit(SplitCommand{l01, 1});
  engine->submit(SplitCommand{9999, 1});
  sim.run_until();
  EXPECT_EQ(engine->counters().get("plp.submitted.split"), 2u);
  EXPECT_EQ(engine->counters().get("plp.completed.split"), 1u);
  EXPECT_EQ(engine->counters().get("plp.failed.split"), 1u);
}

TEST(PlpCapabilities, UnsupportedPrimitiveRejected) {
  Simulator sim;
  phy::PhysicalPlant plant;
  const CableId c = plant.add_cable(0, 1, 2.0, phy::Medium::kFiber, 4,
                                    phy::DataRate::gbps(25));
  const LinkId l = plant.create_adjacent_link(c, {0, 1});
  PlpCapabilities caps;
  caps.split_bundle = false;
  PlpEngine engine(&sim, &plant, PlpTimings{}, caps);
  std::optional<PlpResult> result;
  engine.submit(SplitCommand{l, 1}, [&](const PlpResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("not supported"), std::string::npos);
  EXPECT_TRUE(plant.has_link(l));
}

TEST(PlpCapabilities, SupportsMatrix) {
  PlpCapabilities caps;
  caps.bypass = false;
  EXPECT_TRUE(caps.supports(SplitCommand{}));
  EXPECT_FALSE(caps.supports(BypassJoinCommand{}));
  EXPECT_FALSE(caps.supports(BypassSeverCommand{}));
  EXPECT_TRUE(caps.supports(QueryStatsCommand{}));
}

TEST(PlpCommand, ReferencedLinksAndNames) {
  EXPECT_EQ(referenced_links(BundleCommand{3, 4}), (std::vector<LinkId>{3, 4}));
  EXPECT_EQ(referenced_links(SplitCommand{7, 1}), std::vector<LinkId>{7});
  EXPECT_EQ(command_name(PlpCommand{BypassJoinCommand{}}), "bypass-join");
  EXPECT_EQ(command_name(PlpCommand{ShutdownCommand{}}), "shutdown");
}

TEST_F(EngineFixture, ConcurrentDisjointCommandsOverlap) {
  SimTime done1;
  SimTime done2;
  engine->submit(SetFecCommand{l01, phy::FecScheme::kRsKr4},
                 [&](const PlpResult& r) { done1 = r.completed_at; });
  engine->submit(SetFecCommand{l12, phy::FecScheme::kRsKr4},
                 [&](const PlpResult& r) { done2 = r.completed_at; });
  sim.run_until();
  // Disjoint links actuate in parallel: both complete at the same time.
  EXPECT_EQ(done1, done2);
}

}  // namespace
}  // namespace rsf::plp
