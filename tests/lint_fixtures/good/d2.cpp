// D2 fixture (clean): the ordered default, plus an unordered map whose
// declaration and iteration both carry the order-insensitivity reason.

#include <map>
#include <unordered_map>

struct Table {
  std::map<int, double> ordered_scores_;
  // rsf-lint: order-insensitive(commutative sum over values; keys never observed)
  std::unordered_map<int, double> cache_;

  double sum() const {
    double total = 0;
    for (const auto& [key, value] : ordered_scores_) total += value;
    // rsf-lint: order-insensitive(addition over doubles drawn from exact integers — commutative here)
    for (const auto& [key, value] : cache_) total += value;
    return total;
  }
};
