// D1 fixture (clean): randomness from the seeded simulation RNG,
// time from SimTime, and the one legitimate wall-clock use carries a
// nondet-ok annotation because it never reaches simulation state.

#include <chrono>
#include <cstdint>
#include <iostream>

namespace fixture {

struct Random {
  explicit Random(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ = state_ * 6364136223846793005ULL + 1; }
  std::uint64_t state_;
};

struct Sim {
  long now() const { return now_; }
  long now_ = 0;
};

std::uint64_t draw(Random& rng) { return rng.next(); }

void progress_log() {
  // rsf-lint: nondet-ok(feeds the operator progress line on stderr only, never simulation state)
  const auto t0 = std::chrono::steady_clock::now();
  // rsf-lint: nondet-ok(same progress line; wall time never reaches simulation state)
  const auto t1 = std::chrono::steady_clock::now();
  std::cerr << "elapsed " << (t1 - t0).count() << "\n";
}

}  // namespace fixture
