// D3 fixture (clean): the canonical generation-guard pattern — the
// lambda carries the claim generation and re-establishes liveness
// before touching the slot — plus the annotated single-owner escape.

#include <cstdint>

#include "core/slot_pool.hpp"

namespace fixture {

struct Flow {
  long started = 0;
};

struct Scheduler {
  template <typename F>
  void schedule_at(long when, F fn);
};

struct Runtime {
  Scheduler sched_;
  rsf::core::SlotPool<Flow> flows_;

  void start(long when) {
    const auto handle = flows_.claim();
    const std::uint32_t idx = handle.index;
    sched_.schedule_at(when, [this, idx, gen = handle.generation] {
      if (!flows_.is_live(idx, gen)) return;
      flows_[idx].started = 1;
    });
  }

  void terminal(long when, std::uint32_t idx) {
    sched_.schedule_at(when, [this, idx] {
      // rsf-lint: unguarded-slot-ok(single in-flight event per slot; recycled only here)
      flows_[idx].started = 2;
      flows_.recycle(idx);
    });
  }
};

}  // namespace fixture
