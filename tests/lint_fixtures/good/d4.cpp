// D4 fixture (clean): the three sanctioned shapes — a lambda pinned
// inline by static_assert(is_inline_event_v<...>), a SmallFunction
// alias (trivially copyable, inline-arm eligible), and a genuinely
// cold event carrying the cold-event annotation.

#include <functional>
#include <type_traits>

namespace fixture {

template <typename F>
inline constexpr bool is_inline_event_v = std::is_trivially_copyable_v<F>;

namespace core {
template <typename Sig>
struct SmallFunction {
  void operator()() const {}
};
}  // namespace core

struct Scheduler {
  template <typename F>
  void schedule_at(long when, F fn);
};

using Callback = core::SmallFunction<void()>;

void schedule_hot(Scheduler& sched, int x) {
  const auto ev = [x] { (void)x; };
  static_assert(is_inline_event_v<decltype(ev)>);
  sched.schedule_at(5, ev);
}

// The parameter deliberately does not share a name with schedule_cold's
// std::function: the symbol table is name-based within a file stem.
void schedule_small(Scheduler& sched, Callback small_cb) {
  sched.schedule_at(7, small_cb);
}

void schedule_cold(Scheduler& sched, std::function<void()> cb) {
  // rsf-lint: cold-event(epoch rollover bookkeeping, fires once per epoch)
  sched.schedule_at(9, cb);
}

}  // namespace fixture
