// D5 fixture (clean): documented counters, including the link<N>
// normalization (link7 in code matches link<N> in the doc), and a
// non-metric string the rule must ignore.

namespace fixture {

struct Counters {
  void add(const char* name);
};

void record(Counters& c) {
  c.add("net.documented_counter");
  c.add("fleet.link7.util");
  c.add("not a metric at all");
}

}  // namespace fixture
