// D2 fixture: unordered containers with no order-insensitivity
// justification — the declaration itself, a range-for, and an
// iterator-style loop must each be flagged.

#include <unordered_map>

struct Table {
  std::unordered_map<int, double> scores_;

  double sum() const {
    double total = 0;
    for (const auto& [key, value] : scores_) {
      total += value;
    }
    return total;
  }

  double first() const {
    auto it = scores_.begin();
    return it->second;
  }
};
