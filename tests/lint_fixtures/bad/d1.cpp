// D1 fixture: every nondeterminism source the rule names. Simulation
// code must draw randomness from the seeded sim::Random and time from
// SimTime; all of these leak host state into results.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

std::uint64_t entropy_from_hardware() {
  std::random_device rd;
  return rd();
}

long long wall_clock_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int c_library_randomness() {
  srand(static_cast<unsigned>(time(nullptr)));
  return rand();
}

std::uintptr_t pointer_as_key(const int* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}

struct PtrHasher {
  std::hash<const int*> h;
};
