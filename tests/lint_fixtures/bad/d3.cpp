// D3 fixture: a scheduled lambda captures a SlotPool index and
// dereferences the slot without re-establishing liveness. By the time
// the event fires the slot may have been recycled to a new occupant.

#include <cstdint>

#include "core/slot_pool.hpp"

namespace fixture {

struct Flow {
  long started = 0;
};

struct Scheduler {
  template <typename F>
  void schedule_at(long when, F fn);
};

struct Runtime {
  Scheduler sched_;
  rsf::core::SlotPool<Flow> flows_;

  void start(long when) {
    const std::uint32_t idx = flows_.claim().index;
    sched_.schedule_at(when, [this, idx] {
      flows_[idx].started = 1;
    });
  }
};

}  // namespace fixture
