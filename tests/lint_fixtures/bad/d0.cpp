// D0 fixture: annotation hygiene. Both a malformed escape (empty
// reason) and an unknown directive must be flagged — a suppression
// that silently does nothing is worse than none. The code the
// annotations sit on is deliberately clean so only D0 fires.

#include <map>

struct BadAnnotations {
  // rsf-lint: order-insensitive()
  std::map<int, int> empty_reason_;

  // rsf-lint: because-i-said-so(the reviewer was asleep)
  std::map<int, int> unknown_directive_;
};
