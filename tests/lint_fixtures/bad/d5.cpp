// D5 fixture: a metric literal that docs/METRICS.md (here the fixture
// metrics_doc.md) does not document. D5 has no annotation escape —
// the only fix is documenting the counter — so the nondet-ok escape
// below must change nothing.

namespace fixture {

struct Counters {
  void add(const char* name);
};

void record(Counters& c) {
  // rsf-lint: nondet-ok(annotations cannot waive D5)
  c.add("net.undocumented_counter");
}

}  // namespace fixture
