// D4 fixture: events that silently ride the cold std::function arm.
// Both shapes must be flagged: a lambda that captures a std::function
// by value, and a std::function variable passed straight to a
// schedule call.

#include <functional>

namespace fixture {

struct Scheduler {
  template <typename F>
  void schedule_at(long when, F fn);
};

void schedule_cold(Scheduler& sched, std::function<void()> cb) {
  sched.schedule_at(5, [cb] { cb(); });
  sched.schedule_at(9, cb);
}

}  // namespace fixture
