#!/usr/bin/env bash
# Fixture gate for rsf-lint. This is the negative test that proves the
# lint ctest CAN fail: every bad fixture must be rejected with the
# right rule id (and only by its own rule), every good fixture must
# pass all rules, the baseline ratchet must both suppress matched
# entries and fail stale ones, and injecting a single fresh violation
# into a clean file must flip it to failing.
#
# Usage: run_fixtures.sh /path/to/rsf-lint
# Run from tests/lint_fixtures (the CMake test sets WORKING_DIRECTORY).

set -u

LINT="${1:?usage: run_fixtures.sh /path/to/rsf-lint}"
DOC=metrics_doc.md
FAILURES=0
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# run <expected-exit> <label> [lint args...]
# Captures output in $OUT for content assertions.
run() {
  local want="$1" label="$2"
  shift 2
  OUT="$("$LINT" --metrics-doc "$DOC" "$@" 2>&1)"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    fail "$label: exit $got, wanted $want"$'\n'"$OUT"
    return 1
  fi
  return 0
}

# ---- 1. every bad fixture fails, flagged by its own rule id ----
for r in 0 1 2 3 4 5; do
  if run 1 "bad/d$r.cpp (all rules)" "bad/d$r.cpp"; then
    echo "$OUT" | grep -q "\[D$r\]" || fail "bad/d$r.cpp: no [D$r] finding in:"$'\n'"$OUT"
  fi
  run 1 "bad/d$r.cpp (--rule D$r alone)" --rule "D$r" "bad/d$r.cpp"
done

# Rule-id precision: a bad fixture must be CLEAN under every rule that
# is not its own — cross-fire would make the ids meaningless.
for r in 0 1 2 3 4 5; do
  for other in 0 1 2 3 4 5; do
    [ "$r" -eq "$other" ] && continue
    run 0 "bad/d$r.cpp under --rule D$other (must not cross-fire)" \
        --rule "D$other" "bad/d$r.cpp"
  done
done

# Specific shapes that must each be present (one rule id can cover
# several distinct findings).
run 1 "bad/d1.cpp shapes" "bad/d1.cpp"
for needle in random_device steady_clock "srand()" "time()" "rand()" \
              pointer-identity "hashing a pointer"; do
  echo "$OUT" | grep -qF "$needle" || fail "bad/d1.cpp: missing D1 shape '$needle'"
done
run 1 "bad/d2.cpp shapes" "bad/d2.cpp"
[ "$(echo "$OUT" | grep -c '\[D2\]')" -ge 3 ] ||
  fail "bad/d2.cpp: wanted decl + range-for + iterator findings, got:"$'\n'"$OUT"
run 1 "bad/d4.cpp shapes" "bad/d4.cpp"
[ "$(echo "$OUT" | grep -c '\[D4\]')" -eq 2 ] ||
  fail "bad/d4.cpp: wanted capture + direct-pass findings, got:"$'\n'"$OUT"
run 1 "bad/d5.cpp has no annotation escape" --rule D5 "bad/d5.cpp"

# ---- 2. every good fixture passes all rules ----
for r in 1 2 3 4 5; do
  run 0 "good/d$r.cpp" "good/d$r.cpp"
done
run 0 "good corpus together" good/d1.cpp good/d2.cpp good/d3.cpp good/d4.cpp good/d5.cpp

# ---- 3. baseline ratchet mechanics ----
# 3a. --update-baseline then rerun: everything suppressed, exit 0.
"$LINT" --metrics-doc "$DOC" --baseline "$TMP/base.txt" --update-baseline \
        bad/d1.cpp bad/d2.cpp >/dev/null 2>&1 ||
  fail "update-baseline: nonzero exit"
[ -s "$TMP/base.txt" ] || fail "update-baseline: wrote no entries"
run 0 "baselined bad fixtures pass" --baseline "$TMP/base.txt" bad/d1.cpp bad/d2.cpp
echo "$OUT" | grep -q "baselined" || fail "baselined run did not report suppressions"

# 3b. a NEW violation is still caught through the baseline.
run 1 "baseline does not mask new findings" --baseline "$TMP/base.txt" \
    bad/d1.cpp bad/d2.cpp bad/d5.cpp
echo "$OUT" | grep -q "\[D5\]" || fail "new D5 finding not reported through baseline"

# 3c. stale entries fail: lint a clean file against that baseline.
run 1 "stale baseline entries fail" --baseline "$TMP/base.txt" good/d1.cpp
echo "$OUT" | grep -q "stale baseline entry" || fail "no stale-entry diagnostic in:"$'\n'"$OUT"

# 3d. the fingerprint survives line drift: prepend comment lines to a
# baselined file and the entries must still match.
mkdir -p "$TMP/drift/bad"
{ printf '// drifted\n// drifted again\n'; cat bad/d2.cpp; } > "$TMP/drift/bad/d2.cpp"
( cd "$TMP/drift" &&
  "$LINT" --metrics-doc "$OLDPWD/$DOC" --baseline "$TMP/line_base.txt" \
          --update-baseline bad/d2.cpp >/dev/null 2>&1 )
( cd "$TMP/drift" && sed -i '1i // more drift' bad/d2.cpp &&
  "$LINT" --metrics-doc "$OLDPWD/$DOC" --baseline "$TMP/line_base.txt" \
          bad/d2.cpp >/dev/null 2>&1 ) ||
  fail "baseline match did not survive line drift"

# ---- 4. injection: one fresh violation flips a clean file ----
inject() {
  local r="$1" snippet="$2"
  mkdir -p "$TMP/inject"
  cp "good/d$r.cpp" "$TMP/inject/d$r.cpp"
  printf '%s\n' "$snippet" >> "$TMP/inject/d$r.cpp"
  OUT="$("$LINT" --metrics-doc "$DOC" "$TMP/inject/d$r.cpp" 2>&1)"
  if [ $? -ne 1 ] || ! echo "$OUT" | grep -q "\[D$r\]"; then
    fail "injected D$r violation not caught:"$'\n'"$OUT"
  fi
}
inject 1 'int injected_entropy() { std::random_device rd; return (int)rd(); }'
inject 2 'std::unordered_map<int, int> injected_map;'
inject 3 'struct Injected { fixture::Scheduler s_; rsf::core::SlotPool<fixture::Flow> pool_;
  void go(unsigned i) { s_.schedule_at(1, [this, i] { pool_[i].started = 3; }); } };'
inject 4 'void injected(fixture::Scheduler& s, std::function<void()> hot) { s.schedule_at(1, hot); }'
inject 5 'void injected(fixture::Counters& c) { c.add("net.injected_counter"); }'

# ---- 5. annotation hygiene end-to-end: a malformed escape both fires
# D0 and fails to suppress the finding it decorates ----
cat > "$TMP/malformed.cpp" <<'EOF'
#include <unordered_map>
struct S {
  // rsf-lint: order-insensitive()
  std::unordered_map<int, int> m_;
};
EOF
OUT="$("$LINT" --metrics-doc "$DOC" "$TMP/malformed.cpp" 2>&1)"
if [ $? -ne 1 ] || ! echo "$OUT" | grep -q "\[D0\]" || ! echo "$OUT" | grep -q "\[D2\]"; then
  fail "malformed annotation must fire D0 and not suppress D2:"$'\n'"$OUT"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "rsf-lint fixtures: $FAILURES check(s) failed" >&2
  exit 1
fi
echo "rsf-lint fixtures: all checks passed"
